// Command leases walks through the lease layer: workers acquire TTL-bounded,
// token-fenced sessions over a sharded LevelArray, some "crash" without
// releasing, and the background expirer reclaims their slots — after which
// the crashed workers' stale tokens can neither renew nor free anything.
// This is the crash-safety contract the laserve name service exports over
// HTTP; here it runs in-process.
//
// Run with:
//
//	go run ./examples/leases -workers 8 -crash 25
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	levelarray "github.com/levelarray/levelarray"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leases:", err)
		os.Exit(1)
	}
}

func run() error {
	workers := flag.Int("workers", 8, "concurrent lease holders")
	rounds := flag.Int("rounds", 200, "acquire/release rounds per worker")
	crash := flag.Int("crash", 25, "percentage of leases abandoned without release")
	ttl := flag.Duration("ttl", 50*time.Millisecond, "lease TTL")
	flag.Parse()

	arr, err := levelarray.NewSharded(levelarray.ShardedConfig{Shards: 4, Capacity: 256})
	if err != nil {
		return err
	}
	mgr, err := levelarray.NewLeased(arr, levelarray.LeaseConfig{TickInterval: 10 * time.Millisecond})
	if err != nil {
		return err
	}
	mgr.Start()
	defer mgr.Close()

	// Phase 1: churn with crashes. A crashed worker keeps its token but
	// never releases; the expirer reaps the slot at the TTL deadline.
	type crashed struct {
		lease levelarray.Lease
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		abandoned []crashed
	)
	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < *rounds; r++ {
				l, err := mgr.Acquire(*ttl)
				if err != nil {
					if errors.Is(err, levelarray.ErrFull) {
						time.Sleep(10 * time.Millisecond)
						continue
					}
					fmt.Fprintf(os.Stderr, "worker %d: %v\n", w, err)
					return
				}
				if (w+r)%100 < *crash {
					mu.Lock()
					abandoned = append(abandoned, crashed{lease: l})
					mu.Unlock()
					continue // crash: no Release
				}
				if err := mgr.Release(l.Name, l.Token); err != nil {
					fmt.Fprintf(os.Stderr, "worker %d: release: %v\n", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("churned %d workers x %d rounds, %d leases abandoned mid-flight\n",
		*workers, *rounds, len(abandoned))

	// Phase 2: wait out the TTL; the expirer drains every abandoned slot.
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Active() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	stats := mgr.Stats()
	fmt.Printf("after the dust settles: active=%d expirations=%d (sum of crashes)\n",
		stats.Active, stats.Expirations)

	// Phase 3: the crashed workers come back with their old tokens. Every
	// renew and release is fenced off, so a zombie can never free a slot
	// that has since been reissued.
	rejected := 0
	for _, c := range abandoned {
		if _, err := mgr.Renew(c.lease.Name, c.lease.Token, *ttl); err != nil {
			rejected++
		}
	}
	fmt.Printf("zombie renew attempts rejected: %d/%d\n", rejected, len(abandoned))
	fmt.Printf("final stats: %+v\n", stats)
	return nil
}
