// Command healing demonstrates the self-healing property (Figure 3 of the
// paper): a LevelArray is initialized in an unbalanced state — batch 0 a
// quarter full and batch 1 half full, i.e. overcrowded — and ordinary
// register/deregister traffic is run against it. The per-batch occupancy
// distribution, printed every few thousand operations, drifts back to the
// stable balanced shape without any explicit rebuilding.
//
// Run with:
//
//	go run ./examples/healing -capacity 4096 -snapshot-every 4000 -snapshots 8
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/levelarray/levelarray/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "healing:", err)
		os.Exit(1)
	}
}

func run() error {
	capacity := flag.Int("capacity", 4096, "LevelArray capacity n")
	snapshotEvery := flag.Int("snapshot-every", 4000, "operations between occupancy snapshots")
	snapshots := flag.Int("snapshots", 8, "number of snapshots (states) to record")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	result, err := experiments.Fig3Healing(experiments.HealingConfig{
		Capacity:      *capacity,
		SnapshotEvery: *snapshotEvery,
		Snapshots:     *snapshots,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(result.Table.String())
	if result.HealedAfter < 0 {
		fmt.Println("the damaged batches were still overcrowded at the end of the run")
		return nil
	}
	fmt.Printf("damage repaired by state %d (%d operations)\n",
		result.HealedAfter, result.Snapshots[result.HealedAfter].Step)
	return nil
}
