// Command stm demonstrates the software-transactional-memory application from
// the paper's introduction: concurrent bank-account transfers run as
// transactions, every transaction registers in a LevelArray-backed reader
// registry for its duration, and a privatization barrier uses Collect to wait
// for readers — so registration speed is on the critical path of every
// transaction.
//
// Run with:
//
//	go run ./examples/stm -workers 8 -accounts 64 -transfers 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"github.com/levelarray/levelarray/internal/stm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stm:", err)
		os.Exit(1)
	}
}

func run() error {
	workers := flag.Int("workers", 8, "number of worker goroutines")
	accounts := flag.Int("accounts", 64, "number of bank accounts")
	transfers := flag.Int("transfers", 5000, "transfers per worker")
	initial := flag.Int64("initial", 1000, "initial balance per account")
	flag.Parse()

	system, err := stm.New(stm.Config{MaxThreads: *workers})
	if err != nil {
		return err
	}
	balances := make([]*stm.Var, *accounts)
	for i := range balances {
		balances[i] = system.NewVar(*initial)
	}

	var wg sync.WaitGroup
	regStats := make([]uint64, *workers)
	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			thread := system.Thread()
			for i := 0; i < *transfers; i++ {
				from := balances[(w*31+i)%*accounts]
				to := balances[(w*17+i*3+1)%*accounts]
				if from == to {
					continue
				}
				err := thread.Atomically(func(tx *stm.Tx) error {
					fromBalance, err := tx.Read(from)
					if err != nil {
						return err
					}
					toBalance, err := tx.Read(to)
					if err != nil {
						return err
					}
					tx.Write(from, fromBalance-1)
					tx.Write(to, toBalance+1)
					return nil
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "worker %d transfer %d: %v\n", w, i, err)
					return
				}
			}
			regStats[w] = thread.RegistrationStats().TotalProbes
		}()
	}
	wg.Wait()

	// Privatization barrier: wait until no transaction older than the final
	// clock is still running, then read the balances non-transactionally.
	system.WaitForReaders(system.Clock())
	var total int64
	for _, v := range balances {
		total += v.ReadDirect()
	}
	var regProbes uint64
	for _, p := range regStats {
		regProbes += p
	}

	expected := int64(*accounts) * (*initial)
	fmt.Printf("workers                  %d\n", *workers)
	fmt.Printf("accounts                 %d\n", *accounts)
	fmt.Printf("committed transactions   %d\n", system.Commits())
	fmt.Printf("conflict retries         %d\n", system.Retries())
	fmt.Printf("aborted transactions     %d\n", system.Aborts())
	fmt.Printf("registration probes      %d\n", regProbes)
	fmt.Printf("total balance            %d (expected %d)\n", total, expected)
	if total != expected {
		return fmt.Errorf("balance invariant violated: %d != %d", total, expected)
	}
	fmt.Println("balance invariant holds")
	return nil
}
