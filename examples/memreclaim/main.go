// Command memreclaim demonstrates the memory-reclamation application from the
// paper's introduction: worker goroutines push and pop a lock-free Treiber
// stack, registering every operation in a LevelArray-backed reclamation
// domain, while a reclaimer goroutine advances the epoch and frees retired
// nodes whose grace period has expired.
//
// Run with:
//
//	go run ./examples/memreclaim -workers 8 -ops 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/mem"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memreclaim:", err)
		os.Exit(1)
	}
}

func run() error {
	workers := flag.Int("workers", 8, "number of worker goroutines")
	ops := flag.Int("ops", 20000, "push/pop pairs per worker")
	flag.Parse()

	var reclaimedNodes atomic.Uint64
	domain, err := mem.NewDomain(mem.Config{
		MaxThreads: *workers,
		OnReclaim:  func(any) { reclaimedNodes.Add(1) },
	})
	if err != nil {
		return err
	}
	stack := mem.NewStack(domain)

	// Reclaimer: advances the epoch continuously. Every advance performs one
	// Collect over the activity array (cost O(n)) and reclaims the
	// generation whose grace period expired.
	stop := make(chan struct{})
	var reclaimerWG sync.WaitGroup
	reclaimerWG.Add(1)
	go func() {
		defer reclaimerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				domain.Advance()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			access := stack.Access()
			for i := 0; i < *ops; i++ {
				if err := access.Push(int64(w*(*ops) + i)); err != nil {
					fmt.Fprintf(os.Stderr, "worker %d push: %v\n", w, err)
					return
				}
				if _, _, err := access.Pop(); err != nil {
					fmt.Fprintf(os.Stderr, "worker %d pop: %v\n", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	reclaimerWG.Wait()
	domain.Drain()

	fmt.Printf("workers                 %d\n", *workers)
	fmt.Printf("stack operations        %d\n", 2*(*workers)*(*ops))
	fmt.Printf("nodes retired           %d\n", domain.Retired())
	fmt.Printf("nodes reclaimed         %d\n", domain.Reclaimed())
	fmt.Printf("nodes pending           %d\n", domain.Pending())
	fmt.Printf("final epoch             %d\n", domain.Epoch())
	fmt.Printf("reclaim callback calls  %d\n", reclaimedNodes.Load())
	return nil
}
