// Command quickstart demonstrates the core LevelArray API: a pool of worker
// goroutines repeatedly registers and deregisters from a shared activity
// array while a scanner goroutine periodically Collects the set of registered
// names — the usage pattern shared by memory reclamation, STM and flat
// combining.
//
// Run with:
//
//	go run ./examples/quickstart -workers 16 -rounds 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	levelarray "github.com/levelarray/levelarray"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	workers := flag.Int("workers", 16, "number of worker goroutines")
	rounds := flag.Int("rounds", 2000, "register/deregister rounds per worker")
	seed := flag.Uint64("seed", 42, "base random seed")
	flag.Parse()

	arr, err := levelarray.New(levelarray.Config{Capacity: *workers, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("LevelArray: capacity n=%d, namespace size %d (2n main + n backup)\n\n",
		arr.Capacity(), arr.Size())

	var (
		wg          sync.WaitGroup
		stop        atomic.Bool
		statsMu     sync.Mutex
		workerStats []levelarray.ProbeStats
	)

	// Scanner: periodically Collect the registered set while workers churn.
	scannerDone := make(chan struct{})
	var collects, maxRegistered int
	go func() {
		defer close(scannerDone)
		buf := make([]int, 0, arr.Size())
		for !stop.Load() {
			buf = arr.Collect(buf[:0])
			collects++
			if len(buf) > maxRegistered {
				maxRegistered = len(buf)
			}
		}
	}()

	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := arr.Handle()
			for i := 0; i < *rounds; i++ {
				name, err := h.Get()
				if err != nil {
					fmt.Fprintf(os.Stderr, "worker %d: Get: %v\n", w, err)
					return
				}
				// The name is a small integer the worker could use to index
				// per-thread state; here we only hold it briefly.
				_ = name
				if err := h.Free(); err != nil {
					fmt.Fprintf(os.Stderr, "worker %d: Free: %v\n", w, err)
					return
				}
			}
			statsMu.Lock()
			workerStats = append(workerStats, h.Stats())
			statsMu.Unlock()
		}()
	}
	wg.Wait()
	stop.Store(true)
	<-scannerDone

	var merged levelarray.ProbeStats
	for _, s := range workerStats {
		merged.Merge(s)
	}
	fmt.Printf("workers               %d\n", *workers)
	fmt.Printf("register/deregister   %d pairs\n", merged.Ops)
	fmt.Printf("avg probes per Get    %.3f\n", merged.Mean())
	fmt.Printf("stddev probes         %.3f\n", merged.StdDev())
	fmt.Printf("worst-case probes     %d\n", merged.MaxProbes)
	fmt.Printf("backup array used     %d times\n", merged.BackupOps)
	fmt.Printf("collect scans         %d (max %d registered at once)\n", collects, maxRegistered)
	return nil
}
