// Command sharded walks through the sharded LevelArray: a pool of worker
// goroutines churns registrations across S independent shards behind one
// global namespace, a scanner merges cross-shard Collects word-at-a-time,
// and the final report decodes global names into (shard, local) pairs and
// prints the per-shard breakdown. The last act force-fills one shard to
// demonstrate the steal path: a handle homed on a full shard transparently
// registers on the emptiest sibling.
//
// Run with:
//
//	go run ./examples/sharded -shards 4 -workers 16 -rounds 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	levelarray "github.com/levelarray/levelarray"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sharded:", err)
		os.Exit(1)
	}
}

func run() error {
	shards := flag.Int("shards", 4, "shard count (power of two)")
	workers := flag.Int("workers", 16, "number of worker goroutines")
	rounds := flag.Int("rounds", 2000, "register/deregister rounds per worker")
	seed := flag.Uint64("seed", 42, "base random seed")
	flag.Parse()

	arr, err := levelarray.NewSharded(levelarray.ShardedConfig{
		Shards:   *shards,
		Capacity: *workers,
		Steal:    levelarray.StealOccupancy,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Sharded LevelArray: %d shards x capacity %d, global namespace %d (stride %d)\n\n",
		arr.Shards(), arr.ShardCapacity(), arr.Size(), arr.Stride())

	// Churn: every worker owns one handle (with a round-robin home shard)
	// and repeatedly registers and deregisters, exactly as against a single
	// array — the global names just happen to live on different shards.
	var wg sync.WaitGroup
	errs := make([]error, *workers)
	for w := 0; w < *workers; w++ {
		w := w
		h := arr.Handle()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < *rounds; i++ {
				if _, err := h.Get(); err != nil {
					errs[w] = fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if err := h.Free(); err != nil {
					errs[w] = fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
			// Hold one last registration so the merged Collect below has
			// something to report.
			if _, err := h.Get(); err != nil {
				errs[w] = fmt.Errorf("worker %d: %w", w, err)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Merged Collect: one scan over all shards, word-at-a-time, returning
	// global names. ShardOf decodes the shard*stride+local layout.
	held := arr.Collect(nil)
	fmt.Printf("merged Collect sees %d registered names:\n", len(held))
	perShard := make(map[int][]int)
	for _, name := range held {
		s, local := arr.ShardOf(name)
		perShard[s] = append(perShard[s], local)
	}
	for s := 0; s < arr.Shards(); s++ {
		fmt.Printf("  shard %d: %2d names (locals %v)\n", s, len(perShard[s]), perShard[s])
	}

	fmt.Println("\nper-shard stats after the churn:")
	for _, s := range arr.ShardStats() {
		fmt.Printf("  shard %d: occupancy %d/%d, steals-in %d, home-fulls %d\n",
			s.Shard, s.Occupancy, s.Capacity, s.StealsIn, s.HomeFulls)
	}

	// Steal demonstration: exhaust shard 0's namespace directly, then Get
	// through a handle homed there. The Get finds its home full and steals
	// a slot on the emptiest sibling instead of failing.
	if arr.Shards() > 1 {
		var fillers []levelarray.Handle
		for {
			fh := arr.Shard(0).Handle()
			if _, err := fh.Get(); err != nil {
				break // shard 0 namespace exhausted
			}
			fillers = append(fillers, fh)
		}
		h := arr.HandleWithHome(0)
		name, err := h.Get()
		if err != nil {
			return fmt.Errorf("steal Get: %w", err)
		}
		s, local := arr.ShardOf(name)
		fmt.Printf("\nsteal path: home shard 0 is full (%d fillers); Get stole global name %d = shard %d, local %d (stolen=%v)\n",
			len(fillers), name, s, local, h.LastStolen())
		if err := h.Free(); err != nil {
			return err
		}
		for _, fh := range fillers {
			if err := fh.Free(); err != nil {
				return err
			}
		}
	}
	return nil
}
