// Command flatcombining demonstrates the flat-combining application from the
// paper's introduction: threads attach to a combining queue by registering in
// a LevelArray (obtaining a compact publication-record index), publish their
// operations, and the current combiner serves everyone it finds via Collect.
//
// Run with:
//
//	go run ./examples/flatcombining -producers 4 -consumers 4 -items 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/flatcombine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flatcombining:", err)
		os.Exit(1)
	}
}

func run() error {
	producers := flag.Int("producers", 4, "number of producer goroutines")
	consumers := flag.Int("consumers", 4, "number of consumer goroutines")
	items := flag.Int("items", 20000, "items produced per producer")
	flag.Parse()

	queue, err := flatcombine.New(flatcombine.Config{MaxThreads: *producers + *consumers})
	if err != nil {
		return err
	}

	var (
		wg        sync.WaitGroup
		consumed  atomic.Int64
		served    atomic.Uint64
		regProbes atomic.Uint64
	)
	target := int64(*producers) * int64(*items)

	for p := 0; p < *producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := queue.Handle()
			if err := h.Attach(); err != nil {
				fmt.Fprintf(os.Stderr, "producer %d attach: %v\n", p, err)
				return
			}
			for i := 0; i < *items; i++ {
				if err := h.Enqueue(int64(p*(*items) + i)); err != nil {
					fmt.Fprintf(os.Stderr, "producer %d enqueue: %v\n", p, err)
					return
				}
			}
			served.Add(h.Served())
			regProbes.Add(h.RegistrationStats().TotalProbes)
			if err := h.Detach(); err != nil {
				fmt.Fprintf(os.Stderr, "producer %d detach: %v\n", p, err)
			}
		}()
	}
	for c := 0; c < *consumers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := queue.Handle()
			if err := h.Attach(); err != nil {
				fmt.Fprintf(os.Stderr, "consumer %d attach: %v\n", c, err)
				return
			}
			for consumed.Load() < target {
				_, ok, err := h.Dequeue()
				if err != nil {
					fmt.Fprintf(os.Stderr, "consumer %d dequeue: %v\n", c, err)
					return
				}
				if ok {
					consumed.Add(1)
				}
			}
			served.Add(h.Served())
			regProbes.Add(h.RegistrationStats().TotalProbes)
			if err := h.Detach(); err != nil {
				fmt.Fprintf(os.Stderr, "consumer %d detach: %v\n", c, err)
			}
		}()
	}
	wg.Wait()

	fmt.Printf("producers/consumers    %d / %d\n", *producers, *consumers)
	fmt.Printf("items transferred      %d of %d\n", consumed.Load(), target)
	fmt.Printf("combining passes       %d\n", queue.Combines())
	fmt.Printf("ops served by others   %d\n", served.Load())
	fmt.Printf("registration probes    %d\n", regProbes.Load())
	fmt.Printf("final queue length     %d\n", queue.Len())
	if consumed.Load() != target || queue.Len() != 0 {
		return fmt.Errorf("queue accounting mismatch")
	}
	fmt.Println("all items transferred exactly once")
	return nil
}
