// Command laserve runs the LevelArray network name service: an HTTP/JSON
// front end over a lease manager over any of the registration algorithms
// (the sharded LevelArray by default). Remote clients acquire TTL-bounded
// names, renew and release them with fencing tokens, and a background
// expirer reclaims the slots of clients that crash without releasing.
//
//	go run ./cmd/laserve -addr :8080 -capacity 4096 -shards 8
//	curl -s -X POST localhost:8080/acquire -d '{"ttl_ms": 5000}'
//	curl -s localhost:8080/stats | jq .lease
//
// Member mode joins a cluster instead: -peers lists every member's
// advertised URL (the same list on every node), -node-id is this member's
// index into it, and -partitions cuts the global namespace into P slices
// dealt across the members. Each node serves the same API plus GET/POST
// /cluster (the epoch-versioned membership table), health-probes its peers,
// and fails partitions over when a member dies:
//
//	go run ./cmd/laserve -addr :7001 -node-id 0 -partitions 8 \
//	    -peers http://127.0.0.1:7001,http://127.0.0.2:7002,http://127.0.0.1:7003
//
// The service shuts down gracefully on SIGINT/SIGTERM: the listener drains
// in-flight requests, then the lease managers stop.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/cluster"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/metrics"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/trace"
	"github.com/levelarray/levelarray/internal/wal"
	"github.com/levelarray/levelarray/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "laserve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	wireAddr := flag.String("wire-addr", "", "binary wire-protocol listen address (host:port); empty = HTTP only")
	algorithmName := flag.String("algorithm", "Sharded", "algorithm: "+registry.KnownNames())
	capacity := flag.Int("capacity", 4096, "maximum simultaneously leased names (whole cluster in member mode)")
	sizeFactor := flag.Float64("size-factor", 2, "namespace size as a multiple of capacity")
	shards := flag.Int("shards", 0, "shard count: "+registry.ValidShardCounts)
	stealName := flag.String("steal", "occupancy", "sharded steal policy: "+shard.StealKindNames)
	spaceName := flag.String("space", "bitmap", "slot substrate: "+registry.ValidSpaceNames)
	probeName := flag.String("probe", "word", "LevelArray probe strategy (word claims suit high service fill)")
	rngName := flag.String("rng", "xorshift", "random generator: "+registry.ValidRNGNames)
	metricsAddr := flag.String("metrics-addr", "main", "metrics + pprof endpoint: "+registry.ValidMetricsAddrs)
	tick := flag.Duration("tick", 100*time.Millisecond, "lease expirer tick interval")
	defaultTTL := flag.Duration("default-ttl", 10*time.Second, "TTL applied when an acquire omits ttl_ms")
	maxTTL := flag.Duration("max-ttl", 0, "reject TTLs above this (0: unlimited standalone, 30s in member mode)")
	seed := flag.Uint64("seed", 1, "base random seed")

	// Durability.
	dataDir := flag.String("data-dir", "", "durable state directory (per-partition WAL + snapshots); empty = in-memory only")
	walSyncName := flag.String("wal-sync", "always", "WAL durability policy: "+registry.ValidWALSyncNames)
	walSyncEvery := flag.Duration("wal-sync-interval", 25*time.Millisecond, "fsync cadence under -wal-sync interval")
	checkpointEvery := flag.Duration("checkpoint-every", 30*time.Second, "snapshot cadence when -data-dir is set (log truncates at each snapshot)")

	// Tracing (the flight recorder). The event journal on /debug/events is
	// always on — it is the structured log — but spans cost a -trace opt-in.
	traceOn := flag.Bool("trace", false, "enable the flight recorder: phase-attributed spans on /debug/trace, slow ops on /debug/trace/slow")
	traceSample := flag.Int("trace-sample", 1, "retain one in N finished spans in the main trace ring (slow-op capture sees every span)")
	traceSlow := flag.Duration("trace-slow", trace.DefaultSlowThreshold, "latency at or above which a span is kept as a slow op")

	// Member (cluster) mode.
	peersFlag := flag.String("peers", "", "cluster member URLs ("+registry.ValidPeersFormat+"); empty = standalone")
	wirePeersFlag := flag.String("wire-peers", "", "cluster member wire endpoints ("+registry.ValidWirePeersFormat+"); empty = HTTP-only members")
	nodeID := flag.Int("node-id", 0, "this member's index into -peers")
	partitions := flag.Int("partitions", 0, "cluster partition count: "+registry.ValidPartitionCounts)
	probeEvery := flag.Duration("probe-interval", 250*time.Millisecond, "peer health-probe cadence (member mode)")
	downAfter := flag.Int("down-after", 3, "consecutive probe misses before a peer is marked down (member mode)")
	joinFlag := flag.String("join", "", "join a running cluster through this member instead of booting from -peers/-node-id: "+registry.ValidJoinFormat)
	advertise := flag.String("advertise", "", "this member's advertised base URL in -join mode, e.g. http://10.0.0.3:8080 (default: http://<-addr>)")
	rebalanceFlag := flag.String("rebalance-threshold", "0", "steward plans a load_spread migration when the hottest member's load factor exceeds the coolest's by this gap: "+registry.ValidRebalanceThresholds)
	flag.Parse()

	algo, err := registry.Parse(*algorithmName)
	if err != nil {
		return err
	}
	rngKind, err := registry.ParseRNGFlag(*rngName)
	if err != nil {
		return err
	}
	space, err := registry.ParseSpaceFlag(*spaceName)
	if err != nil {
		return err
	}
	probe, err := registry.ParseProbeFlag(*probeName, space)
	if err != nil {
		return err
	}
	steal, err := registry.ParseStealFlag(*stealName)
	if err != nil {
		return err
	}
	shardCount, err := registry.ValidateShardCount(*shards)
	if err != nil {
		return err
	}
	if *capacity < 1 {
		return fmt.Errorf("invalid -capacity %d (valid: at least 1)", *capacity)
	}
	if *tick <= 0 {
		return fmt.Errorf("invalid -tick %v (valid: above 0)", *tick)
	}
	walSync, err := registry.ParseWALSyncFlag(*walSyncName)
	if err != nil {
		return err
	}
	joinSeed, err := registry.ParseJoinFlag(*joinFlag)
	if err != nil {
		return err
	}
	rebalanceThreshold, err := registry.ParseRebalanceThresholdFlag(*rebalanceFlag)
	if err != nil {
		return err
	}
	if joinSeed != "" && *peersFlag != "" {
		return fmt.Errorf("-join and -peers are exclusive: join discovers the peer list from the seed")
	}

	newArray := func(capacity int, seed uint64) (activity.Array, error) {
		return registry.New(algo, registry.Options{
			Capacity:   capacity,
			SizeFactor: *sizeFactor,
			RNG:        rngKind,
			Seed:       seed,
			Space:      space,
			Probe:      probe,
			Shards:     shardCount,
			Steal:      steal,
		})
	}

	ms, err := newMetricsSetup(*metricsAddr)
	if err != nil {
		return err
	}

	newTracer := func(node int) *trace.Recorder {
		if !*traceOn {
			return nil
		}
		return trace.New(trace.Config{
			Enabled: true, SampleEvery: *traceSample, SlowThreshold: *traceSlow, Node: node,
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *peersFlag != "" || joinSeed != "" {
		return runMember(ctx, memberOptions{
			addr:            *addr,
			wireAddr:        *wireAddr,
			peers:           *peersFlag,
			wirePeers:       *wirePeersFlag,
			joinSeed:        joinSeed,
			advertise:       *advertise,
			threshold:       rebalanceThreshold,
			nodeID:          *nodeID,
			partitions:      *partitions,
			capacity:        *capacity,
			tick:            *tick,
			defaultTTL:      *defaultTTL,
			maxTTL:          *maxTTL,
			probeEvery:      *probeEvery,
			downAfter:       *downAfter,
			seed:            *seed,
			algo:            algo,
			newArray:        newArray,
			ms:              ms,
			dataDir:         *dataDir,
			walSync:         walSync,
			walSyncEvery:    *walSyncEvery,
			checkpointEvery: *checkpointEvery,
			tracer:          newTracer(*nodeID),
		})
	}

	tracer := newTracer(-1)
	events := trace.NewEventLog(trace.EventConfig{Node: -1, Dir: *dataDir})
	defer events.Close()

	arr, err := newArray(*capacity, *seed)
	if err != nil {
		return err
	}
	leaseCfg := lease.Config{TickInterval: *tick, MaxTTL: *maxTTL}
	var store *wal.Store
	if *dataDir != "" {
		store, err = wal.Open(filepath.Join(*dataDir, "p0"), walSync, *walSyncEvery)
		if err != nil {
			return err
		}
		leaseCfg.Journal = store
	}
	mgr, err := lease.NewManager(arr, leaseCfg)
	if err != nil {
		return err
	}
	var recovered time.Duration
	if store != nil {
		begin := time.Now()
		rst, err := mgr.Restore()
		if err != nil {
			return fmt.Errorf("restoring from %s: %w", *dataDir, err)
		}
		recovered = time.Since(begin)
		fmt.Printf("laserve: restored %d sessions (%d lapsed, %d tail records, %d orphan bits) from %s in %v\n",
			rst.Sessions, rst.Expired, rst.Records, rst.OrphanWords, *dataDir, recovered.Round(time.Microsecond))
		events.Eventf(trace.EvReplay, 0, 0, "restart", "restored %d sessions (%d lapsed, %d tail records) in %v",
			rst.Sessions, rst.Expired, rst.Records, recovered.Round(time.Microsecond))
		stopCk := mgr.StartCheckpoints(*checkpointEvery, func() (uint32, uint64) { return 0, 0 }, func(err error) {
			fmt.Fprintln(os.Stderr, "laserve: checkpoint:", err)
		})
		// Serve closes the manager on shutdown; once it returns no append can
		// race the final clean snapshot, which the next boot replays alone.
		defer func() {
			stopCk()
			if err := mgr.Checkpoint(0, 0, true); err != nil {
				fmt.Fprintln(os.Stderr, "laserve: final checkpoint:", err)
			}
			if err := store.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "laserve: closing wal:", err)
			}
		}()
	}
	mgr.Start()
	if ms.m != nil {
		server.RegisterManager(ms.m.Registry, mgr)
		server.RegisterShardStats(ms.m.Registry, mgr.Array())
		if store != nil {
			server.RegisterWAL(ms.m.Registry, store)
			server.RegisterRecovery(ms.m.Registry, func() float64 { return recovered.Seconds() })
		}
		if tracer != nil {
			server.RegisterTracer(ms.m.Registry, tracer)
		}
	}

	if *wireAddr != "" {
		ws, stop, err := startWire(*wireAddr, server.NewWireBackend(mgr, server.Config{DefaultTTL: *defaultTTL, Metrics: ms.m, Tracer: tracer}), tracer)
		if err != nil {
			return err
		}
		defer stop()
		if ms.m != nil {
			server.RegisterWireServer(ms.m.Registry, ws)
		}
	}
	stopMetrics, err := ms.serveDedicated()
	if err != nil {
		return err
	}
	defer stopMetrics()
	fmt.Printf("laserve: %s capacity=%d size=%d tick=%v listening on %s (wire: %s, metrics: %s)\n",
		algo, mgr.Capacity(), mgr.Size(), *tick, *addr, orNone(*wireAddr), ms.describe())
	return server.New(mgr, server.Config{
		DefaultTTL: *defaultTTL, Metrics: ms.m, MetricsElsewhere: ms.elsewhere(),
		Tracer: tracer, Events: events,
	}).Serve(ctx, *addr)
}

// metricsSetup resolves the -metrics-addr mode into the shared
// instrumentation bundle (nil when metrics are off) and, for host:port
// values, the dedicated listener.
type metricsSetup struct {
	mode registry.MetricsMode
	addr string
	m    *server.Metrics
}

func newMetricsSetup(flagVal string) (*metricsSetup, error) {
	mode, addr, err := registry.ParseMetricsAddrFlag(flagVal)
	if err != nil {
		return nil, err
	}
	ms := &metricsSetup{mode: mode, addr: addr}
	if mode != registry.MetricsOff {
		reg := metrics.NewRegistry()
		metrics.RegisterRuntime(reg)
		ms.m = server.NewMetrics(reg)
	}
	return ms, nil
}

func (ms *metricsSetup) elsewhere() bool { return ms.mode == registry.MetricsDedicated }

func (ms *metricsSetup) describe() string {
	switch ms.mode {
	case registry.MetricsOff:
		return "off"
	case registry.MetricsDedicated:
		return ms.addr
	default:
		return "main"
	}
}

// serveDedicated starts the dedicated metrics listener when one is
// configured, returning its shutdown function.
func (ms *metricsSetup) serveDedicated() (func(), error) {
	if ms.mode != registry.MetricsDedicated {
		return func() {}, nil
	}
	mux := http.NewServeMux()
	server.MountMetrics(mux, ms.m.Registry)
	ln, err := net.Listen("tcp", ms.addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener on %s: %w", ms.addr, err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return func() { _ = srv.Close() }, nil
}

// startWire binds and serves the binary protocol next to the HTTP listener,
// returning the server (for counter registration) and its shutdown function.
func startWire(addr string, backend wire.Backend, tracer *trace.Recorder) (*wire.Server, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("wire listener on %s: %w", addr, err)
	}
	srv := wire.NewServer(backend)
	srv.SetTracer(tracer)
	go func() { _ = srv.Serve(ln) }()
	return srv, func() { _ = srv.Close() }, nil
}

func orNone(s string) string {
	if s == "" {
		return "off"
	}
	return s
}

// memberOptions carries the resolved member-mode configuration.
type memberOptions struct {
	addr       string
	wireAddr   string
	peers      string
	wirePeers  string
	joinSeed   string
	advertise  string
	threshold  float64
	nodeID     int
	partitions int
	capacity   int
	tick       time.Duration
	defaultTTL time.Duration
	maxTTL     time.Duration
	probeEvery time.Duration
	downAfter  int
	seed       uint64
	algo       registry.Algorithm
	newArray   func(capacity int, seed uint64) (activity.Array, error)
	ms         *metricsSetup

	dataDir         string
	walSync         wal.SyncPolicy
	walSyncEvery    time.Duration
	checkpointEvery time.Duration
	tracer          *trace.Recorder
}

// runMember boots one cluster member: from its static -peers/-node-id
// identity, or — with -join — by asking a running member for admission and
// taking its identity (ID, peer list, partition count) from the admitted
// table.
func runMember(ctx context.Context, opts memberOptions) error {
	var (
		peers     []string
		wirePeers []string
		boot      *cluster.Table
		err       error
	)
	partitions := 0
	if opts.joinSeed != "" {
		adv := opts.advertise
		if adv == "" {
			adv = "http://" + opts.addr
		}
		if adv, err = registry.ParseJoinFlag(adv); err != nil || adv == "" {
			return fmt.Errorf("invalid -advertise %q: a join needs a reachable base URL (e.g. http://10.0.0.3:8080)", opts.advertise)
		}
		id, table, jerr := cluster.JoinCluster(nil, opts.joinSeed, adv, opts.wireAddr)
		if jerr != nil {
			return fmt.Errorf("joining via %s: %w", opts.joinSeed, jerr)
		}
		opts.nodeID = id
		boot = &table
		partitions = len(table.Assignment)
		anyWire := false
		for _, m := range table.Members {
			peers = append(peers, m.Addr)
			wirePeers = append(wirePeers, m.WireAddr)
			anyWire = anyWire || m.WireAddr != ""
		}
		if !anyWire {
			wirePeers = nil
		}
		fmt.Printf("laserve: admitted as member %d at epoch %d (joining; the steward promotes and fills this node)\n", id, table.Epoch)
	} else {
		if peers, err = registry.ParsePeersFlag(opts.peers); err != nil {
			return err
		}
		if err := registry.ValidateNodeID(opts.nodeID, len(peers)); err != nil {
			return err
		}
		if wirePeers, err = registry.ParseWirePeersFlag(opts.wirePeers, len(peers)); err != nil {
			return err
		}
		if partitions, err = registry.ValidatePartitionCount(opts.partitions); err != nil {
			return err
		}
	}
	// With advertised wire endpoints, this member serves its own entry unless
	// -wire-addr overrides the bind address (e.g. 0.0.0.0 behind NAT).
	if len(wirePeers) != 0 && opts.wireAddr == "" {
		opts.wireAddr = wirePeers[opts.nodeID]
	}
	if opts.maxTTL <= 0 {
		// The failover quarantine is bounded by MaxTTL, so member mode needs
		// a finite ceiling; 30s keeps handover windows short by default.
		opts.maxTTL = 30 * time.Second
	}
	perPartition := (opts.capacity + partitions - 1) / partitions

	node, err := cluster.NewNode(cluster.NodeConfig{
		NodeID:     opts.nodeID,
		Peers:      peers,
		WirePeers:  wirePeers,
		Partitions: partitions,
		NewPartitionArray: func(partition int) (activity.Array, error) {
			return opts.newArray(perPartition, opts.seed+uint64(partition)*0x9E3779B97F4A7C15+1)
		},
		Lease:              lease.Config{TickInterval: opts.tick},
		DefaultTTL:         opts.defaultTTL,
		MaxTTL:             opts.maxTTL,
		ProbeInterval:      opts.probeEvery,
		DownAfter:          opts.downAfter,
		Bootstrap:          boot,
		RebalanceThreshold: opts.threshold,
		DataDir:            opts.dataDir,
		WALSync:            opts.walSync,
		WALSyncInterval:    opts.walSyncEvery,
		CheckpointEvery:    opts.checkpointEvery,
		Metrics:            opts.ms.m,
		MetricsElsewhere:   opts.ms.elsewhere(),
		Tracer:             opts.tracer,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if opts.wireAddr != "" {
		ws, stop, err := startWire(opts.wireAddr, node, opts.tracer)
		if err != nil {
			return err
		}
		defer stop()
		if opts.ms.m != nil {
			server.RegisterWireServer(opts.ms.m.Registry, ws)
		}
	}
	stopMetrics, err := opts.ms.serveDedicated()
	if err != nil {
		return err
	}
	defer stopMetrics()
	t := node.Table()
	fmt.Printf("laserve: member %d/%d, %s x %d partitions (capacity %d each, stride %d, namespace %d), epoch %d, listening on %s (wire: %s, metrics: %s)\n",
		opts.nodeID, len(peers), opts.algo, partitions, perPartition, t.Stride, t.Size(), t.Epoch, opts.addr, orNone(opts.wireAddr), opts.ms.describe())
	return node.Serve(ctx, opts.addr)
}
