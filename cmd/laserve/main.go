// Command laserve runs the LevelArray network name service: an HTTP/JSON
// front end over a lease manager over any of the registration algorithms
// (the sharded LevelArray by default). Remote clients acquire TTL-bounded
// names, renew and release them with fencing tokens, and a background
// expirer reclaims the slots of clients that crash without releasing.
//
//	go run ./cmd/laserve -addr :8080 -capacity 4096 -shards 8
//	curl -s -X POST localhost:8080/acquire -d '{"ttl_ms": 5000}'
//	curl -s localhost:8080/stats | jq .lease
//
// The service shuts down gracefully on SIGINT/SIGTERM: the listener drains
// in-flight requests, then the lease manager stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "laserve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	algorithmName := flag.String("algorithm", "Sharded", "algorithm: "+registry.KnownNames())
	capacity := flag.Int("capacity", 4096, "maximum simultaneously leased names")
	sizeFactor := flag.Float64("size-factor", 2, "namespace size as a multiple of capacity")
	shards := flag.Int("shards", 0, "shard count: "+registry.ValidShardCounts)
	stealName := flag.String("steal", "occupancy", "sharded steal policy: "+shard.StealKindNames)
	spaceName := flag.String("space", "bitmap", "slot substrate: "+registry.ValidSpaceNames)
	probeName := flag.String("probe", "word", "LevelArray probe strategy (word claims suit high service fill)")
	rngName := flag.String("rng", "xorshift", "random generator: "+registry.ValidRNGNames)
	tick := flag.Duration("tick", 100*time.Millisecond, "lease expirer tick interval")
	defaultTTL := flag.Duration("default-ttl", 10*time.Second, "TTL applied when an acquire omits ttl_ms")
	maxTTL := flag.Duration("max-ttl", 0, "reject TTLs above this (0 = unlimited, infinite leases allowed)")
	seed := flag.Uint64("seed", 1, "base random seed")
	flag.Parse()

	algo, err := registry.Parse(*algorithmName)
	if err != nil {
		return err
	}
	rngKind, err := registry.ParseRNGFlag(*rngName)
	if err != nil {
		return err
	}
	space, err := registry.ParseSpaceFlag(*spaceName)
	if err != nil {
		return err
	}
	probe, err := registry.ParseProbeFlag(*probeName, space)
	if err != nil {
		return err
	}
	steal, err := registry.ParseStealFlag(*stealName)
	if err != nil {
		return err
	}
	shardCount, err := registry.ValidateShardCount(*shards)
	if err != nil {
		return err
	}
	if *capacity < 1 {
		return fmt.Errorf("invalid -capacity %d (valid: at least 1)", *capacity)
	}
	if *tick <= 0 {
		return fmt.Errorf("invalid -tick %v (valid: above 0)", *tick)
	}

	arr, err := registry.New(algo, registry.Options{
		Capacity:   *capacity,
		SizeFactor: *sizeFactor,
		RNG:        rngKind,
		Seed:       *seed,
		Space:      space,
		Probe:      probe,
		Shards:     shardCount,
		Steal:      steal,
	})
	if err != nil {
		return err
	}
	mgr, err := lease.NewManager(arr, lease.Config{TickInterval: *tick, MaxTTL: *maxTTL})
	if err != nil {
		return err
	}
	mgr.Start()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("laserve: %s capacity=%d size=%d tick=%v listening on %s\n",
		algo, mgr.Capacity(), mgr.Size(), *tick, *addr)
	return server.New(mgr, server.Config{DefaultTTL: *defaultTTL}).Serve(ctx, *addr)
}
