// Command benchhealing regenerates Figure 3 of the paper: the self-healing
// experiment. The LevelArray starts in an unbalanced state (batch 0 a quarter
// full, batch 1 half full and therefore overcrowded) and ordinary
// register/deregister traffic is run against it; the per-batch occupancy
// distribution is printed every snapshot interval and drifts back to the
// stable shape, with no explicit rebuilding.
//
//	go run ./cmd/benchhealing -capacity 65536 -snapshot-every 4000 -snapshots 8
//
// Pass -b0 / -b1 to change the degraded initial state and -probes to run the
// ablation with more than one test-and-set trial per batch.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/levelarray/levelarray/internal/balance"
	"github.com/levelarray/levelarray/internal/experiments"
	"github.com/levelarray/levelarray/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchhealing:", err)
		os.Exit(1)
	}
}

func run() error {
	capacity := flag.Int("capacity", 65536, "LevelArray capacity n")
	participants := flag.Int("participants", 0, "churning participants (default n/2)")
	snapshotEvery := flag.Int("snapshot-every", 4000, "operations between snapshots (the paper uses 4000)")
	snapshots := flag.Int("snapshots", 8, "number of states to record (the paper shows 8)")
	b0 := flag.Float64("b0", 0.25, "initial fill fraction of batch 0")
	b1 := flag.Float64("b1", 0.5, "initial fill fraction of batch 1")
	probes := flag.Int("probes", 1, "test-and-set trials per batch (c_i)")
	rngName := flag.String("rng", "xorshift", "random generator: xorshift, xorshift32, lehmer, splitmix")
	seed := flag.Uint64("seed", 1, "random seed")
	csv := flag.Bool("csv", false, "print CSV instead of an aligned table")
	flag.Parse()

	kind, ok := rng.ParseKind(*rngName)
	if !ok {
		return fmt.Errorf("unknown rng %q", *rngName)
	}
	state := balance.DegradedStateSpec{Fractions: []float64{*b0, *b1}}
	result, err := experiments.Fig3Healing(experiments.HealingConfig{
		Capacity:       *capacity,
		Participants:   *participants,
		InitialState:   &state,
		SnapshotEvery:  *snapshotEvery,
		Snapshots:      *snapshots,
		ProbesPerBatch: *probes,
		Seed:           *seed,
		RNG:            kind,
	})
	if err != nil {
		return err
	}
	fmt.Printf("# Figure 3 reproduction: n=%d, initial state batch0=%.0f%%, batch1=%.0f%% (overcrowded), snapshots every %d ops\n\n",
		*capacity, *b0*100, *b1*100, *snapshotEvery)
	if *csv {
		fmt.Println(result.Table.CSV())
	} else {
		fmt.Println(result.Table.String())
	}
	if result.HealedAfter >= 0 {
		fmt.Printf("damage repaired by state %d (%d operations)\n",
			result.HealedAfter, result.Snapshots[result.HealedAfter].Step)
	} else {
		fmt.Println("damaged batches still overcrowded at the end of the run; increase -snapshots")
	}
	return nil
}
