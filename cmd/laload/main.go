// Command laload is the closed-loop load generator and contract verifier for
// the laserve name service. Configurable clients acquire, hold (with an
// exponential hold-time distribution), renew and release leases over HTTP;
// a crash fraction abandons leases without releasing, exercising server-side
// expiry. Besides throughput and acquire-latency percentiles, the run
// verifies the lease contract end to end and exits non-zero on any
// violation: duplicate names among concurrently held leases, names reissued
// before an abandoned lease's TTL elapsed, lost releases, stale tokens
// accepted after the reclaim deadline, or abandoned leases that never
// expired. Saturation (503) responses are paced by the server's Retry-After
// hint, so saturated runs measure service time, not spin.
//
//	go run ./cmd/laload -addr http://127.0.0.1:8080 -clients 32 -ops 50000 -crash 10
//	go run ./cmd/laload -ops 5000 -hold 1ms -renew 25 -json report.json
//
// -proto wire speaks the binary wire protocol over pooled persistent
// connections instead of HTTP/JSON (point -addr at laserve's -wire-addr),
// and -batch N switches the clients to batched rounds: one AcquireN per
// round, one bulk RenewSession over the whole set, one ReleaseN for the
// survivors. The report then includes syscall-efficiency metrics (ops per
// connection, frames per flush) and the ledger additionally verifies the
// batch semantics: batch-granted names are distinct and individually
// fenced, and a bulk renew extends every acknowledged deadline.
//
//	go run ./cmd/laload -proto wire -addr 127.0.0.1:7101 -ops 200000
//	go run ./cmd/laload -proto wire -addr 127.0.0.1:7101 -batch 64 -ops 200000
//
// Cluster mode drives a partitioned laserve cluster through the routed
// client instead, verifying the same contract *across* nodes — zero
// duplicate names cluster-wide, failed-over names fenced and reissued:
//
//	go run ./cmd/laload -targets http://127.0.0.1:7001,http://127.0.0.1:7002 -ops 100000
//
// Chaos mode boots the cluster in-process (no external laserve needed) and
// kills a live node mid-run every -kill-every, verifying fenced failover and
// quarantine-bounded reissue on top:
//
//	go run ./cmd/laload -spawn 3 -partitions 8 -capacity 4096 \
//	    -ops 100000 -crash 10 -kill-every 4s
//
// With -data-dir the spawned nodes journal lease state to per-node WALs, and
// -restart-after brings each killed node back on the same addresses after the
// given pause — the ledger keeps verifying across the restart, so a reissued
// or double-granted name from a bad replay fails the run:
//
//	go run ./cmd/laload -spawn 3 -partitions 8 -data-dir /tmp/laload \
//	    -ops 100000 -kill-every 4s -restart-after 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/levelarray/levelarray/internal/cluster"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/stats"
	"github.com/levelarray/levelarray/internal/trace"
	"github.com/levelarray/levelarray/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "laload:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:8080", "service address (standalone mode): base URL for -proto http, host:port for -proto wire")
	protoName := flag.String("proto", "http", "transport protocol: "+registry.ValidProtoNames)
	batch := flag.Int("batch", 0, "batch size: >0 drives AcquireN/RenewSession/ReleaseN rounds (-proto wire only)")
	conns := flag.Int("conns", 0, "pooled wire connections shared by all clients (-proto wire; 0 = one per 8 clients)")
	targets := flag.String("targets", "", "cluster member URLs ("+registry.ValidPeersFormat+"); selects cluster mode")
	spawn := flag.Int("spawn", 0, "boot this many in-process cluster nodes and load them (chaos mode)")
	partitions := flag.Int("partitions", 0, "partitions for -spawn: "+registry.ValidPartitionCounts)
	capacity := flag.Int("capacity", 4096, "total capacity for -spawn")
	killEvery := flag.Duration("kill-every", 0, "kill one live node every interval (requires -spawn; 0 = never)")
	restartAfter := flag.Duration("restart-after", 0, "restart each killed node on its old addresses after this pause (requires -spawn and -kill-every; 0 = stay dead)")
	dataDir := flag.String("data-dir", "", "journal spawned nodes' lease state under this directory (one WAL per node, replayed on -restart-after)")
	snapshotAdopt := flag.Bool("snapshot-adopt", false, "adopt failed-over partitions from the dead node's fenced snapshot instead of quarantining (requires -data-dir)")
	minAlive := flag.Int("min-alive", 2, "the node killer stops at this many survivors")
	growTo := flag.Int("grow-to", 0, "join fresh members under load until the cluster reaches this size (requires -spawn; 0 = never)")
	growEvery := flag.Duration("grow-every", time.Second, "pause between joins (and before the -drain-one drain)")
	drainOne := flag.Bool("drain-one", false, "after growth, drain the highest-ID original member and verify it retires empty (requires -spawn)")
	rebalanceThreshold := flag.String("rebalance-threshold", "0", "plan a load_spread migration when the hottest member exceeds the coolest by this load-factor gap (requires -spawn; 0 disables)")
	tick := flag.Duration("tick", 100*time.Millisecond, "lease expirer tick for -spawn nodes")
	clients := flag.Int("clients", 16, "concurrent closed-loop clients")
	ops := flag.Int64("ops", 10000, "total acquire operations (renews/releases come on top)")
	ttl := flag.Duration("ttl", 2*time.Second, "lease TTL requested per acquire")
	holdMean := flag.Duration("hold", 500*time.Microsecond, "mean of the exponential hold-time distribution")
	crash := flag.Int("crash", 10, "percentage of leases abandoned without release: "+registry.ValidPercentRange)
	renew := flag.Int("renew", 20, "percentage of held leases renewed once mid-hold: "+registry.ValidPercentRange)
	seed := flag.Uint64("seed", 1, "base random seed")
	traceOn := flag.Bool("trace", false, "give every -spawn node a flight recorder (read mid-run with lactl trace / curl /debug/trace)")
	jsonPath := flag.String("json", "", "also write the report as JSON to this file")
	flag.Parse()

	proto, err := registry.ParseProtoFlag(*protoName)
	if err != nil {
		return err
	}
	if *batch < 0 {
		return fmt.Errorf("invalid -batch %d (valid: 0 or a positive batch size)", *batch)
	}
	if *batch > 0 && proto != registry.ProtoWire {
		return fmt.Errorf("-batch needs -proto wire (HTTP has no batch opcodes)")
	}
	if err := registry.ValidatePercent("crash", *crash); err != nil {
		return err
	}
	if err := registry.ValidatePercent("renew", *renew); err != nil {
		return err
	}
	if *clients < 1 {
		return fmt.Errorf("invalid -clients %d (valid: at least 1)", *clients)
	}
	if *ops < 1 {
		return fmt.Errorf("invalid -ops %d (valid: at least 1)", *ops)
	}
	if *killEvery > 0 && *spawn == 0 {
		return fmt.Errorf("-kill-every needs -spawn (laload can only kill nodes it booted)")
	}
	if *restartAfter > 0 && *killEvery == 0 {
		return fmt.Errorf("-restart-after needs -kill-every (nothing dies, nothing restarts)")
	}
	if *dataDir != "" && *spawn == 0 {
		return fmt.Errorf("-data-dir needs -spawn (external nodes own their own directories)")
	}
	if *snapshotAdopt && *dataDir == "" {
		return fmt.Errorf("-snapshot-adopt needs -data-dir (there is no snapshot to adopt without a journal)")
	}
	if *traceOn && *spawn == 0 {
		return fmt.Errorf("-trace needs -spawn (external nodes own their own recorders; start laserve with -trace)")
	}
	if (*growTo > 0 || *drainOne) && *spawn == 0 {
		return fmt.Errorf("-grow-to/-drain-one need -spawn (laload can only grow a cluster it booted)")
	}
	if *growTo > 0 && *growTo <= *spawn {
		return fmt.Errorf("invalid -grow-to %d (valid: above -spawn = %d)", *growTo, *spawn)
	}
	threshold, err := registry.ParseRebalanceThresholdFlag(*rebalanceThreshold)
	if err != nil {
		return err
	}
	if threshold > 0 && *spawn == 0 {
		return fmt.Errorf("-rebalance-threshold needs -spawn (external nodes set their own)")
	}
	if *spawn != 0 || *targets != "" {
		return runCluster(clusterOptions{
			proto:         proto,
			targets:       *targets,
			spawn:         *spawn,
			partitions:    *partitions,
			capacity:      *capacity,
			killEvery:     *killEvery,
			restartAfter:  *restartAfter,
			dataDir:       *dataDir,
			snapshotAdopt: *snapshotAdopt,
			trace:         *traceOn,
			minAlive:      *minAlive,
			growTo:        *growTo,
			growEvery:     *growEvery,
			drainOne:      *drainOne,
			threshold:     threshold,
			tick:          *tick,
			clients:       *clients,
			ops:           *ops,
			ttl:           *ttl,
			holdMean:      *holdMean,
			crash:         *crash,
			renew:         *renew,
			seed:          *seed,
			jsonPath:      *jsonPath,
		})
	}

	loadCfg := server.LoadConfig{
		Clients:      *clients,
		Acquires:     *ops,
		TTL:          *ttl,
		HoldMean:     *holdMean,
		CrashPercent: *crash,
		RenewPercent: *renew,
		Seed:         *seed,
		Batch:        *batch,
	}
	if proto == registry.ProtoWire {
		nConns := *conns
		if nConns <= 0 {
			nConns = (*clients + 7) / 8
		}
		wc := wire.NewClient(*addr, &wire.ClientConfig{Conns: nConns})
		defer wc.Close()
		loadCfg.API = server.NewWireClient(wc)
	} else {
		loadCfg.BaseURL = *addr
	}
	report, err := server.RunLoad(loadCfg)
	if err != nil {
		return err
	}

	mode := ""
	if *batch > 0 {
		mode = fmt.Sprintf(", batch %d", *batch)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("laload: %d clients, ttl %v, crash %d%%, renew %d%%, proto %s%s against %s",
			*clients, *ttl, *crash, *renew, proto, mode, *addr),
		"metric", "value")
	tbl.AddRow("operations (verified)", fmt.Sprintf("%d", report.Ops()))
	tbl.AddRow("  acquires", fmt.Sprintf("%d", report.Acquires))
	tbl.AddRow("  renews", fmt.Sprintf("%d", report.Renews))
	tbl.AddRow("  releases", fmt.Sprintf("%d", report.Releases))
	tbl.AddRow("  crashes (abandoned)", fmt.Sprintf("%d", report.Crashes))
	tbl.AddRow("  stale probes rejected", fmt.Sprintf("%d", report.StaleRejected))
	tbl.AddRow("duration", report.Elapsed.Round(time.Millisecond).String())
	tbl.AddRow("throughput (ops/s)", fmt.Sprintf("%.0f", report.Throughput()))
	tbl.AddRow("acquire latency p50", report.AcquireP50.String())
	tbl.AddRow("acquire latency p90", report.AcquireP90.String())
	tbl.AddRow("acquire latency p99", report.AcquireP99.String())
	tbl.AddRow("acquire latency max", report.AcquireMax.String())
	tbl.AddRow("full-namespace retries", fmt.Sprintf("%d", report.FullRetries))
	tbl.AddRow("server expirations", fmt.Sprintf("%d", report.FinalStats.Lease.Expirations))
	tbl.AddRow("server renew races", fmt.Sprintf("%d", report.FinalStats.Lease.RenewRaces))
	if w := report.Wire; w != nil {
		// Syscall efficiency: how much work each connection and each flush
		// (one writev) amortized.
		tbl.AddRow("wire connections dialed", fmt.Sprintf("%d", w.Dials))
		tbl.AddRow("wire ops per connection", fmt.Sprintf("%.0f", w.OpsPerConn()))
		tbl.AddRow("wire frames per flush", fmt.Sprintf("%.2f", w.FramesPerFlush()))
		tbl.AddRow("wire redial backoffs", fmt.Sprintf("%d", w.Backoffs))
	}
	fmt.Println(tbl.String())

	if err := writeJSONReport(*jsonPath, report); err != nil {
		return err
	}
	if violations := report.Violations(); violations != nil {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "laload: VIOLATION:", v)
		}
		return fmt.Errorf("%d lease-contract violations", len(violations))
	}
	fmt.Println("laload: lease contract verified: no duplicates, no early reissues, no lost releases, all abandoned leases reclaimed")
	return nil
}

// clusterOptions carries the resolved cluster/chaos-mode configuration.
type clusterOptions struct {
	proto         registry.Proto
	targets       string
	spawn         int
	partitions    int
	capacity      int
	killEvery     time.Duration
	restartAfter  time.Duration
	dataDir       string
	snapshotAdopt bool
	trace         bool
	minAlive      int
	growTo        int
	growEvery     time.Duration
	drainOne      bool
	threshold     float64
	tick          time.Duration
	clients       int
	ops           int64
	ttl           time.Duration
	holdMean      time.Duration
	crash         int
	renew         int
	seed          uint64
	jsonPath      string
}

// runCluster drives the chaos verifier against an external cluster
// (-targets) or an in-process one (-spawn).
func runCluster(opts clusterOptions) error {
	cfg := cluster.ChaosConfig{
		DisableWire:  opts.proto == registry.ProtoHTTP,
		Clients:      opts.clients,
		Acquires:     opts.ops,
		TTL:          opts.ttl,
		HoldMean:     opts.holdMean,
		CrashPercent: opts.crash,
		RenewPercent: opts.renew,
		Seed:         opts.seed,
		KillEvery:    opts.killEvery,
		RestartAfter: opts.restartAfter,
		MinAlive:     opts.minAlive,
		GrowTo:       opts.growTo,
		GrowEvery:    opts.growEvery,
		DrainOne:     opts.drainOne,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	where := opts.targets
	if opts.spawn != 0 {
		if opts.spawn < 2 {
			return fmt.Errorf("invalid -spawn %d (valid: at least 2 nodes)", opts.spawn)
		}
		partitions, err := registry.ValidatePartitionCount(opts.partitions)
		if err != nil {
			return err
		}
		if opts.capacity < partitions {
			return fmt.Errorf("invalid -capacity %d (valid: at least -partitions = %d)", opts.capacity, partitions)
		}
		local, err := cluster.StartLocal(cluster.LocalConfig{
			Nodes:         opts.spawn,
			Partitions:    partitions,
			Capacity:      opts.capacity,
			Seed:          opts.seed,
			DataDir:       opts.dataDir,
			SnapshotAdopt: opts.snapshotAdopt,
			Trace:         opts.trace,
			Node: cluster.NodeConfig{
				Lease:      lease.Config{TickInterval: opts.tick},
				DefaultTTL: opts.ttl,
				// MaxTTL bounds the failover quarantine; matching the load's
				// TTL keeps the reissue window exactly TTL + 2 ticks.
				MaxTTL:             opts.ttl,
				RebalanceThreshold: opts.threshold,
				Logf: func(format string, args ...any) {
					fmt.Printf(format+"\n", args...)
				},
			},
		})
		if err != nil {
			return err
		}
		defer local.Close()
		cfg.Local = local
		where = fmt.Sprintf("%d in-process nodes x %d partitions", opts.spawn, partitions)
	} else {
		urls, err := registry.ParsePeersFlag(opts.targets)
		if err != nil {
			return err
		}
		cfg.Targets = urls
	}

	report, err := cluster.RunChaos(cfg)
	if err != nil {
		return err
	}

	tbl := stats.NewTable(
		fmt.Sprintf("laload cluster: %d clients, ttl %v, crash %d%%, kill-every %v against %s",
			opts.clients, opts.ttl, opts.crash, opts.killEvery, where),
		"metric", "value")
	tbl.AddRow("operations (verified)", fmt.Sprintf("%d", report.Ops()))
	tbl.AddRow("  acquires", fmt.Sprintf("%d", report.Acquires))
	tbl.AddRow("  renews", fmt.Sprintf("%d", report.Renews))
	tbl.AddRow("  releases", fmt.Sprintf("%d", report.Releases))
	tbl.AddRow("  crashes (abandoned)", fmt.Sprintf("%d", report.Crashes))
	tbl.AddRow("  stale probes rejected", fmt.Sprintf("%d", report.StaleRejected))
	tbl.AddRow("  fill sweep grants", fmt.Sprintf("%d", report.FillAcquired))
	tbl.AddRow("duration (main phase)", report.Elapsed.Round(time.Millisecond).String())
	tbl.AddRow("throughput (ops/s)", fmt.Sprintf("%.0f", report.Throughput()))
	tbl.AddRow("acquire latency p50", report.AcquireP50.String())
	tbl.AddRow("acquire latency p90", report.AcquireP90.String())
	tbl.AddRow("acquire latency p99", report.AcquireP99.String())
	tbl.AddRow("acquire latency max", report.AcquireMax.String())
	tbl.AddRow("full/warming retries", fmt.Sprintf("%d", report.FullRetries))
	tbl.AddRow("nodes killed", fmt.Sprintf("%d %v", report.Kills, report.KilledNodes))
	if opts.restartAfter > 0 {
		tbl.AddRow("nodes restarted", fmt.Sprintf("%d %v", report.Restarts, report.RestartedNodes))
		tbl.AddRow("failovers preempted by restart", fmt.Sprintf("%d", report.RestartPreempts))
	}
	tbl.AddRow("epoch bumps observed", fmt.Sprintf("%d (final epoch %d)", report.EpochBumps, report.FinalEpoch))
	if opts.growTo > 0 || opts.drainOne {
		tbl.AddRow("members joined", fmt.Sprintf("%d %v", report.Joins, report.JoinedNodes))
		tbl.AddRow("members drained", fmt.Sprintf("%d %v", report.Drains, report.DrainedNodes))
		tbl.AddRow("migrations planned/staged/cutover/aborted", fmt.Sprintf("%d/%d/%d/%d",
			report.MigrationsPlanned, report.MigrationsStaged, report.MigrationsCutover, report.MigrationsAborted))
	}
	tbl.AddRow("orphaned by kills", fmt.Sprintf("%d (reissued %d)", report.OrphanEvents, report.OrphansReissued))
	tbl.AddRow("killed-session ops fenced", fmt.Sprintf("%d", report.KilledSessions))
	tbl.AddRow("routing refresh/412/421/dead", fmt.Sprintf("%d/%d/%d/%d",
		report.Routing.Refreshes, report.Routing.StaleEpochs, report.Routing.Misroutes, report.Routing.DeadHops))
	tbl.AddRow("wire ops / HTTP fallbacks", fmt.Sprintf("%d/%d", report.Routing.WireOps, report.Routing.WireFallbacks))
	tbl.AddRow("routing backoff pauses", fmt.Sprintf("%d", report.Routing.Backoffs))
	if report.MetricsDisabled {
		tbl.AddRow("metrics watcher", "disabled (/metrics 404)")
	} else {
		tbl.AddRow("metrics scrapes", fmt.Sprintf("%d", report.MetricsScrapes))
		tbl.AddRow("quarantines seen in /metrics", fmt.Sprintf("%d (mid-kill snapshots %v)", report.MetricsQuarantines, report.MetricsMidKillQuarantines))
	}
	if report.EventsDisabled {
		tbl.AddRow("events watcher", "disabled (/debug/events 404)")
	} else {
		tbl.AddRow("cluster events captured", fmt.Sprintf("%d (epoch bumps %d, failover decisions %d, quarantine starts %d)",
			report.EventsCaptured, report.EventCounts[trace.EvEpochBump],
			report.EventCounts[trace.EvFailoverDecision], report.EventCounts[trace.EvQuarantineStart]))
	}
	fmt.Println(tbl.String())

	if err := writeJSONReport(opts.jsonPath, report); err != nil {
		return err
	}
	if violations := report.Violations(); violations != nil {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "laload: VIOLATION:", v)
		}
		return fmt.Errorf("%d cluster lease-contract violations", len(violations))
	}
	fmt.Println("laload: cluster lease contract verified: no duplicates across nodes, no early reissues, no lost releases, all orphans fenced and reissued")
	return nil
}

// writeJSONReport writes the report to path when set.
func writeJSONReport(path string, report any) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
