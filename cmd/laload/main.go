// Command laload is the closed-loop load generator and contract verifier for
// the laserve name service. Configurable clients acquire, hold (with an
// exponential hold-time distribution), renew and release leases over HTTP;
// a crash fraction abandons leases without releasing, exercising server-side
// expiry. Besides throughput and acquire-latency percentiles, the run
// verifies the lease contract end to end and exits non-zero on any
// violation: duplicate names among concurrently held leases, names reissued
// before an abandoned lease's TTL elapsed, lost releases, stale tokens
// accepted after the reclaim deadline, or abandoned leases that never
// expired.
//
//	go run ./cmd/laload -addr http://127.0.0.1:8080 -clients 32 -ops 50000 -crash 10
//	go run ./cmd/laload -ops 5000 -hold 1ms -renew 25 -json report.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "laload:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:8080", "service base URL")
	clients := flag.Int("clients", 16, "concurrent closed-loop clients")
	ops := flag.Int64("ops", 10000, "total acquire operations (renews/releases come on top)")
	ttl := flag.Duration("ttl", 2*time.Second, "lease TTL requested per acquire")
	holdMean := flag.Duration("hold", 500*time.Microsecond, "mean of the exponential hold-time distribution")
	crash := flag.Int("crash", 10, "percentage of leases abandoned without release: "+registry.ValidPercentRange)
	renew := flag.Int("renew", 20, "percentage of held leases renewed once mid-hold: "+registry.ValidPercentRange)
	seed := flag.Uint64("seed", 1, "base random seed")
	jsonPath := flag.String("json", "", "also write the report as JSON to this file")
	flag.Parse()

	if err := registry.ValidatePercent("crash", *crash); err != nil {
		return err
	}
	if err := registry.ValidatePercent("renew", *renew); err != nil {
		return err
	}
	if *clients < 1 {
		return fmt.Errorf("invalid -clients %d (valid: at least 1)", *clients)
	}
	if *ops < 1 {
		return fmt.Errorf("invalid -ops %d (valid: at least 1)", *ops)
	}

	report, err := server.RunLoad(server.LoadConfig{
		BaseURL:      *addr,
		Clients:      *clients,
		Acquires:     *ops,
		TTL:          *ttl,
		HoldMean:     *holdMean,
		CrashPercent: *crash,
		RenewPercent: *renew,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}

	tbl := stats.NewTable(
		fmt.Sprintf("laload: %d clients, ttl %v, crash %d%%, renew %d%% against %s",
			*clients, *ttl, *crash, *renew, *addr),
		"metric", "value")
	tbl.AddRow("operations (verified)", fmt.Sprintf("%d", report.Ops()))
	tbl.AddRow("  acquires", fmt.Sprintf("%d", report.Acquires))
	tbl.AddRow("  renews", fmt.Sprintf("%d", report.Renews))
	tbl.AddRow("  releases", fmt.Sprintf("%d", report.Releases))
	tbl.AddRow("  crashes (abandoned)", fmt.Sprintf("%d", report.Crashes))
	tbl.AddRow("  stale probes rejected", fmt.Sprintf("%d", report.StaleRejected))
	tbl.AddRow("duration", report.Elapsed.Round(time.Millisecond).String())
	tbl.AddRow("throughput (ops/s)", fmt.Sprintf("%.0f", report.Throughput()))
	tbl.AddRow("acquire latency p50", report.AcquireP50.String())
	tbl.AddRow("acquire latency p90", report.AcquireP90.String())
	tbl.AddRow("acquire latency p99", report.AcquireP99.String())
	tbl.AddRow("acquire latency max", report.AcquireMax.String())
	tbl.AddRow("full-namespace retries", fmt.Sprintf("%d", report.FullRetries))
	tbl.AddRow("server expirations", fmt.Sprintf("%d", report.FinalStats.Lease.Expirations))
	tbl.AddRow("server renew races", fmt.Sprintf("%d", report.FinalStats.Lease.RenewRaces))
	fmt.Println(tbl.String())

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if violations := report.Violations(); violations != nil {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "laload: VIOLATION:", v)
		}
		return fmt.Errorf("%d lease-contract violations", len(violations))
	}
	fmt.Println("laload: lease contract verified: no duplicates, no early reissues, no lost releases, all abandoned leases reclaimed")
	return nil
}
