// Command lactl inspects a running laserve cluster (or a standalone
// laserve): membership, per-partition load, and active sessions.
//
//	lactl -addr http://127.0.0.1:7001 members   # epoch, members, partition map
//	lactl -addr http://127.0.0.1:7001 stats     # per-partition load across the cluster
//	lactl -addr http://127.0.0.1:7001 leases    # active sessions (paged via /leases)
//
// members and stats need a cluster member; leases also works against a
// standalone laserve (which serves the same /leases endpoint).
//
// -proto wire reads the same responses over the binary wire protocol
// instead of HTTP; point -addr at a member's wire endpoint (host:port,
// the laserve -wire-addr) and lactl walks the rest of the cluster via
// the wire endpoints advertised in the membership table:
//
//	lactl -proto wire -addr 127.0.0.1:7101 stats
//
// trace and events read the flight recorder (laserve -trace):
//
//	lactl trace                     # slow ops with per-phase latency breakdown
//	lactl events                    # cluster-wide control-plane timeline, merged
//	lactl events -type migration    # only migration_plan/cutover/abort events
//
// join, drain and rebalance drive elastic membership (proxied to the
// steward from any member):
//
//	lactl join http://10.0.0.9:8080          # admit a member by advertised URL
//	lactl drain 2                            # migrate member 2 empty, then retire it
//	lactl rebalance                          # force one planner round now
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/levelarray/levelarray/internal/cluster"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/metrics"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/stats"
	"github.com/levelarray/levelarray/internal/trace"
	"github.com/levelarray/levelarray/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lactl:", err)
		os.Exit(1)
	}
}

func usage() string {
	return "usage: lactl [-addr URL|host:port] [-proto http|wire] [-limit N] [-verify] [-type SUBSTR] " +
		"members|stats|leases|metrics|trace|events|rebalance | join ADDR [WIREADDR] | drain MEMBER"
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:8080", "any cluster member (or standalone laserve): base URL, or host:port with -proto wire")
	protoName := flag.String("proto", "http", "transport protocol: "+registry.ValidProtoNames)
	limit := flag.Int("limit", 50, "maximum sessions to list (leases)")
	verify := flag.Bool("verify", false, "metrics: fail unless occupancy gauges agree with /stats (within concurrent churn)")
	evType := flag.String("type", "", "events: only show event types containing this substring (e.g. migration, member_drain)")
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("%s", usage())
	}
	cmd := flag.Arg(0)
	rest := flag.Args()[1:]
	// Flags may also follow the command word (lactl events -type migration).
	if len(rest) > 0 && strings.HasPrefix(rest[0], "-") {
		if err := flag.CommandLine.Parse(rest); err != nil {
			return err
		}
		rest = flag.Args()
	}
	wantArgs := map[string][2]int{"join": {1, 2}, "drain": {1, 1}}
	lo, hi := 0, 0
	if w, ok := wantArgs[cmd]; ok {
		lo, hi = w[0], w[1]
	}
	if len(rest) < lo || len(rest) > hi {
		return fmt.Errorf("%s", usage())
	}
	proto, err := registry.ParseProtoFlag(*protoName)
	if err != nil {
		return err
	}
	src := &source{
		proto:    proto,
		base:     strings.TrimRight(*addr, "/"),
		hc:       &http.Client{Timeout: 5 * time.Second},
		wclients: map[string]*wire.Client{},
	}
	defer src.close()

	switch cmd {
	case "members":
		return runMembers(src)
	case "stats":
		return runStats(src)
	case "leases":
		return runLeases(src, *limit)
	case "metrics":
		return runMetrics(src, *verify)
	case "trace":
		return runTrace(src, *limit)
	case "events":
		return runEvents(src, *limit, *evType)
	case "join":
		wireAddr := ""
		if len(rest) == 2 {
			wireAddr = rest[1]
		}
		return runJoin(src, rest[0], wireAddr)
	case "drain":
		return runDrain(src, rest[0])
	case "rebalance":
		return runRebalance(src)
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage())
	}
}

// source reads inspection responses over either transport. The commands
// below only ever see decoded JSON bodies; whether they traveled as an
// HTTP response or as the Blob of a wire read-opcode is decided here.
type source struct {
	proto    registry.Proto
	base     string // HTTP base URL, or a wire host:port
	hc       *http.Client
	wclients map[string]*wire.Client // lazy, one per wire endpoint
}

func (s *source) close() {
	for _, c := range s.wclients {
		c.Close()
	}
}

// wireFor returns the pooled client for one wire endpoint.
func (s *source) wireFor(addr string) *wire.Client {
	c, ok := s.wclients[addr]
	if !ok {
		c = wire.NewClient(addr, nil)
		s.wclients[addr] = c
	}
	return c
}

// wireBlob issues one read opcode and decodes its JSON blob into out.
func (s *source) wireBlob(addr string, req wire.Request, out any) error {
	var resp wire.Response
	if err := s.wireFor(addr).Do(&req, &resp); err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("wire %s to %s returned status %d (%s)", req.Op, addr, resp.Status, resp.Code)
	}
	return json.Unmarshal(resp.Blob, out)
}

// getJSON fetches url and decodes the 2xx body into out.
func (s *source) getJSON(url string, out any) error {
	resp, err := s.hc.Get(url)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("GET %s returned %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// memberAddr picks the transport endpoint for one member; wire mode needs
// the member to advertise a wire endpoint in the table.
func (s *source) memberAddr(m cluster.Member) (string, error) {
	if s.proto == registry.ProtoWire {
		if m.WireAddr == "" {
			return "", fmt.Errorf("member %d advertises no wire endpoint", m.ID)
		}
		return m.WireAddr, nil
	}
	return m.Addr, nil
}

// nodeStats reads one member's /stats body.
func (s *source) nodeStats(addr string, out *cluster.NodeStatsResponse) error {
	if s.proto == registry.ProtoWire {
		return s.wireBlob(addr, wire.Request{Op: wire.OpStats}, out)
	}
	return s.getJSON(addr+"/stats", out)
}

// leasesPage reads one /leases page from addr.
func (s *source) leasesPage(addr string, start, limit int, out *server.LeasesResponse) error {
	if s.proto == registry.ProtoWire {
		return s.wireBlob(addr, wire.Request{Op: wire.OpLeases, Start: int64(start), Limit: int64(limit)}, out)
	}
	return s.getJSON(fmt.Sprintf("%s/leases?start=%d&limit=%d", addr, start, limit), out)
}

// fetchTable pulls the membership table; a 404 (HTTP) or 400 (wire) means
// the target is a standalone laserve, not a cluster member.
func (s *source) fetchTable() (cluster.Table, error) {
	var t cluster.Table
	if s.proto == registry.ProtoWire {
		if err := s.wireBlob(s.base, wire.Request{Op: wire.OpMembers}, &t); err != nil {
			return t, fmt.Errorf("%s serves no membership table (standalone laserve?): %w", s.base, err)
		}
		return t, t.Validate()
	}
	resp, err := s.hc.Get(s.base + "/cluster")
	if err != nil {
		return t, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return t, fmt.Errorf("%s serves no /cluster endpoint (standalone laserve?)", s.base)
	}
	if resp.StatusCode/100 != 2 {
		return t, fmt.Errorf("GET %s/cluster returned %d", s.base, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
		return t, err
	}
	return t, t.Validate()
}

func runMembers(src *source) error {
	t, err := src.fetchTable()
	if err != nil {
		return err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("cluster epoch %d: %d partitions x stride %d (namespace %d, capacity %d)",
			t.Epoch, t.Partitions, t.Stride, t.Size(), t.Capacity),
		"member", "addr", "wire", "state", "changed", "partitions")
	for _, m := range t.Members {
		wireAddr := m.WireAddr
		if wireAddr == "" {
			wireAddr = "-"
		}
		changed := "-"
		if m.ChangedAtUnixMillis > 0 {
			changed = time.Since(time.UnixMilli(m.ChangedAtUnixMillis)).Round(time.Second).String() + " ago"
		}
		tbl.AddRow(fmt.Sprintf("%d", m.ID), m.Addr, wireAddr, m.EffectiveState(), changed, fmt.Sprintf("%v", t.PartitionsOf(m.ID)))
	}
	fmt.Println(tbl.String())
	return nil
}

func runStats(src *source) error {
	t, err := src.fetchTable()
	if err != nil {
		return err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("cluster epoch %d: per-partition load", t.Epoch),
		"partition", "member", "active", "capacity", "load", "acquires", "expirations", "quarantine")
	var unreachable []string
	for _, m := range t.Alive() {
		addr, err := src.memberAddr(m)
		if err != nil {
			unreachable = append(unreachable, fmt.Sprintf("%d (%v)", m.ID, err))
			continue
		}
		var ns cluster.NodeStatsResponse
		if err := src.nodeStats(addr, &ns); err != nil {
			unreachable = append(unreachable, addr)
			continue
		}
		for _, p := range ns.Partitions {
			quarantine := "-"
			if p.QuarantinedMillis > 0 {
				quarantine = (time.Duration(p.QuarantinedMillis) * time.Millisecond).String()
			}
			tbl.AddRow(
				fmt.Sprintf("%d", p.Partition),
				fmt.Sprintf("%d", ns.NodeID),
				fmt.Sprintf("%d", p.Lease.Active),
				fmt.Sprintf("%d", p.Capacity),
				fmt.Sprintf("%.0f%%", p.LoadFactor*100),
				fmt.Sprintf("%d", p.Lease.Acquires),
				fmt.Sprintf("%d", p.Lease.Expirations),
				quarantine,
			)
		}
	}
	fmt.Println(tbl.String())
	for _, addr := range unreachable {
		fmt.Printf("lactl: member %s unreachable\n", addr)
	}
	return nil
}

// httpBase coerces an address to an HTTP base URL: the metrics endpoint is
// HTTP-only, so a bare host:port (wire style) gets the scheme prefixed.
func httpBase(addr string) string {
	addr = strings.TrimRight(addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// scrapeMetrics fetches and parses one node's /metrics exposition. The
// metrics endpoint is HTTP-only, so this always uses the member's base URL
// even when -proto wire reads everything else over frames.
func (s *source) scrapeMetrics(base string) ([]metrics.Sample, error) {
	resp, err := s.hc.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("GET %s/metrics returned %d (metrics disabled or served elsewhere?)", base, resp.StatusCode)
	}
	return metrics.ParseText(resp.Body)
}

// hasSample reports whether any sample of the family is present.
func hasSample(samples []metrics.Sample, name string) bool {
	_, ok := metrics.Find(samples, name)
	return ok
}

// statsProbe covers both /stats shapes: the clustered body carries a
// top-level active plus partitions, the standalone body a single lease block.
type statsProbe struct {
	Active     int64                    `json:"active"`
	Lease      lease.Stats              `json:"lease"`
	Partitions []cluster.PartitionStats `json:"partitions"`
}

func (p statsProbe) active() int64 {
	if len(p.Partitions) > 0 || p.Active != 0 {
		return p.Active
	}
	return p.Lease.Active
}

// opsTotal sums the operations that can move the node's occupancy; the delta
// between two snapshots bounds how far a mid-scrape gauge may drift.
func (p statsProbe) opsTotal() uint64 {
	ops := p.Lease.Acquires + p.Lease.Releases + p.Lease.Expirations + p.Lease.OrphansReclaimed
	for _, part := range p.Partitions {
		ops += part.Lease.Acquires + part.Lease.Releases + part.Lease.Expirations + part.Lease.OrphansReclaimed
	}
	return ops
}

// verifyNode checks one member's occupancy gauges against its /stats,
// bracketing a fresh scrape with two stats snapshots so concurrent churn
// cannot produce a false failure: the gauge must land inside the snapshot
// envelope widened by the operations that happened in between.
func (s *source) verifyNode(base string) error {
	var before, after statsProbe
	if err := s.getJSON(base+"/stats", &before); err != nil {
		return err
	}
	samples, err := s.scrapeMetrics(base)
	if err != nil {
		return err
	}
	if err := s.getJSON(base+"/stats", &after); err != nil {
		return err
	}
	var gauge float64
	switch {
	case hasSample(samples, "la_partition_active"):
		gauge = metrics.Sum(samples, "la_partition_active")
	case hasSample(samples, "la_leases_active"):
		gauge, _ = metrics.Find(samples, "la_leases_active")
	default:
		return fmt.Errorf("%s: no occupancy gauge (la_partition_active / la_leases_active) in /metrics", base)
	}
	lo, hi := before.active(), after.active()
	if lo > hi {
		lo, hi = hi, lo
	}
	churn := int64(after.opsTotal() - before.opsTotal())
	if churn < 0 {
		churn = -churn
	}
	if int64(gauge) < lo-churn || int64(gauge) > hi+churn {
		return fmt.Errorf("%s: occupancy gauge %d outside /stats envelope [%d, %d] (churn %d)", base, int64(gauge), lo-churn, hi+churn, churn)
	}
	return nil
}

// runMetrics scrapes /metrics from every member (or the standalone target)
// and renders per-partition occupancy plus a per-node operation summary.
func runMetrics(src *source, verify bool) error {
	bases := []string{httpBase(src.base)}
	t, terr := src.fetchTable()
	if terr == nil {
		bases = bases[:0]
		for _, m := range t.Alive() {
			bases = append(bases, httpBase(m.Addr))
		}
	}

	parts := stats.NewTable("per-partition occupancy (scraped from /metrics)",
		"partition", "node", "active", "capacity", "load", "quarantine")
	nodes := stats.NewTable("per-node operations",
		"node", "ops", "fences", "503s", "acquire p50", "acquire p99", "goroutines")
	var failures []string
	for _, base := range bases {
		samples, err := src.scrapeMetrics(base)
		if err != nil {
			failures = append(failures, err.Error())
			continue
		}
		nodeName := base
		if v, ok := metrics.Find(samples, "la_cluster_epoch"); ok {
			nodeName = fmt.Sprintf("%s (epoch %.0f)", base, v)
		}
		for _, sm := range samples {
			if sm.Name != "la_partition_active" {
				continue
			}
			p := sm.Label("partition")
			capacity, _ := metrics.Find(samples, "la_partition_capacity", metrics.L("partition", p))
			load, _ := metrics.Find(samples, "la_partition_load_factor", metrics.L("partition", p))
			quarantine := "-"
			if q, ok := metrics.Find(samples, "la_partition_quarantine_seconds", metrics.L("partition", p)); ok && q > 0 {
				quarantine = fmt.Sprintf("%.1fs", q)
			}
			parts.AddRow(p, base, fmt.Sprintf("%.0f", sm.Value), fmt.Sprintf("%.0f", capacity), fmt.Sprintf("%.0f%%", load*100), quarantine)
		}
		if active, ok := metrics.Find(samples, "la_leases_active"); ok {
			capacity, _ := metrics.Find(samples, "la_lease_capacity")
			load, _ := metrics.Find(samples, "la_lease_load_factor")
			parts.AddRow("-", base, fmt.Sprintf("%.0f", active), fmt.Sprintf("%.0f", capacity), fmt.Sprintf("%.0f%%", load*100), "-")
		}
		ops := metrics.Sum(samples, "la_ops_total")
		fences := metrics.Sum(samples, "la_fence_rejections_total")
		unavail := metrics.Sum(samples, "la_unavailable_total")
		goroutines, _ := metrics.Find(samples, "go_goroutines")
		p50, p99 := "-", "-"
		if q, ok := metrics.SampleQuantile(samples, "la_acquire_latency_seconds", 0.50); ok {
			p50 = (time.Duration(q * float64(time.Second))).Round(time.Microsecond).String()
		}
		if q, ok := metrics.SampleQuantile(samples, "la_acquire_latency_seconds", 0.99); ok {
			p99 = (time.Duration(q * float64(time.Second))).Round(time.Microsecond).String()
		}
		nodes.AddRow(nodeName, fmt.Sprintf("%.0f", ops), fmt.Sprintf("%.0f", fences), fmt.Sprintf("%.0f", unavail), p50, p99, fmt.Sprintf("%.0f", goroutines))
		if verify {
			if err := src.verifyNode(base); err != nil {
				failures = append(failures, err.Error())
			}
		}
	}
	fmt.Println(parts.String())
	fmt.Println(nodes.String())
	if len(failures) > 0 {
		return fmt.Errorf("metrics check failed:\n  %s", strings.Join(failures, "\n  "))
	}
	if verify {
		fmt.Println("lactl: occupancy gauges agree with /stats on every scraped node")
	}
	return nil
}

// debugBases lists the HTTP base URLs to read debug endpoints from: every
// live member of a cluster, or the standalone target itself. The debug
// endpoints are HTTP-only, like /metrics.
func debugBases(src *source) []string {
	t, err := src.fetchTable()
	if err != nil {
		return []string{httpBase(src.base)}
	}
	var bases []string
	for _, m := range t.Alive() {
		bases = append(bases, httpBase(m.Addr))
	}
	return bases
}

// fmtNanos renders a nanosecond latency compactly ("-" for zero).
func fmtNanos(ns int64) string {
	if ns == 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

// runTrace fetches every node's slow-op ring (falling back to the sampled
// ring when no op has crossed the threshold yet) and renders the slowest ops
// with their per-phase latency breakdown, plus an aggregate phase footer —
// the "where does the p99 go" view. Fsync wait is its own column so the
// durability tax is never conflated with lock contention.
func runTrace(src *source, limit int) error {
	type nodeSpans struct {
		base string
		resp trace.TraceResponse
	}
	var (
		all      []trace.SpanJSON
		disabled []string
		failures []string
		slowOnly = true
	)
	for _, base := range debugBases(src) {
		var ns nodeSpans
		ns.base = base
		if err := src.getJSON(base+"/debug/trace/slow", &ns.resp); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", base, err))
			continue
		}
		if !ns.resp.Enabled {
			disabled = append(disabled, base)
			continue
		}
		if len(ns.resp.Spans) == 0 {
			// Nothing slow yet: fall back to the sampled ring so the command
			// still shows where time goes on a healthy node.
			var sampled trace.TraceResponse
			if err := src.getJSON(base+"/debug/trace", &sampled); err == nil && len(sampled.Spans) > 0 {
				ns.resp.Spans = sampled.Spans
				slowOnly = false
			}
		}
		all = append(all, ns.resp.Spans...)
	}
	if len(failures) > 0 {
		return fmt.Errorf("trace fetch failed (laserve without /debug/trace?):\n  %s", strings.Join(failures, "\n  "))
	}
	if len(disabled) > 0 && len(all) == 0 {
		return fmt.Errorf("tracing is disabled on %s (start laserve with -trace)", strings.Join(disabled, ", "))
	}
	sort.Slice(all, func(i, j int) bool { return all[i].DurationNanos > all[j].DurationNanos })
	if len(all) > limit {
		all = all[:limit]
	}

	title := fmt.Sprintf("slowest ops (top %d of the slow-op rings)", limit)
	if !slowOnly {
		title = fmt.Sprintf("slowest ops (top %d; nothing over the slow threshold yet, showing sampled spans)", limit)
	}
	tbl := stats.NewTable(title,
		"rid", "op", "node", "part", "err", "total", "fsync-wait", "lock-wait", "other phases")
	agg := map[string]int64{}
	var aggTotal int64
	for _, s := range all {
		var other []string
		for _, name := range trace.PhaseNames() {
			ns := s.Phases[name]
			if ns == 0 {
				continue
			}
			agg[name] += ns
			if name != "fsync-wait" && name != "lock-wait" {
				other = append(other, fmt.Sprintf("%s=%s", name, fmtNanos(ns)))
			}
		}
		aggTotal += s.DurationNanos
		errCode := s.Err
		if errCode == "" {
			errCode = "-"
		}
		otherCol := strings.Join(other, " ")
		if otherCol == "" {
			otherCol = "-"
		}
		tbl.AddRow(s.RID, s.Op, fmt.Sprintf("%d", s.Node), fmt.Sprintf("%d", s.Partition), errCode,
			fmtNanos(s.DurationNanos), fmtNanos(s.Phases["fsync-wait"]), fmtNanos(s.Phases["lock-wait"]), otherCol)
	}
	fmt.Println(tbl.String())
	if aggTotal > 0 {
		var parts []string
		for _, name := range trace.PhaseNames() {
			if ns := agg[name]; ns > 0 {
				parts = append(parts, fmt.Sprintf("%s %s (%.0f%%)", name, fmtNanos(ns), 100*float64(ns)/float64(aggTotal)))
			}
		}
		fmt.Printf("lactl: aggregate phase attribution over %d spans: %s\n", len(all), strings.Join(parts, ", "))
	}
	return nil
}

// runEvents merges every node's control-plane journal into one causally
// ordered timeline: who bumped which epoch and why, which failovers were
// decided on what evidence, where fences were written, which partitions
// migrated where. typeFilter narrows by substring of the event type — e.g.
// "migration" keeps migration_plan/migration_cutover/migration_abort, and
// "member" keeps member_join/member_rejoin/member_drain.
func runEvents(src *source, limit int, typeFilter string) error {
	var (
		journals [][]trace.Event
		failures []string
	)
	for _, base := range debugBases(src) {
		var resp trace.EventsResponse
		if err := src.getJSON(base+"/debug/events", &resp); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", base, err))
			continue
		}
		journals = append(journals, resp.Events)
	}
	if len(failures) > 0 {
		return fmt.Errorf("events fetch failed (laserve without /debug/events?):\n  %s", strings.Join(failures, "\n  "))
	}
	merged := trace.MergeEvents(journals...)
	title := fmt.Sprintf("cluster event timeline (most recent %d, merged across %d journals)", limit, len(journals))
	if typeFilter != "" {
		var kept []trace.Event
		for _, e := range merged {
			if strings.Contains(e.Type, typeFilter) {
				kept = append(kept, e)
			}
		}
		merged = kept
		title = fmt.Sprintf("cluster event timeline (most recent %d of type *%s*, merged across %d journals)", limit, typeFilter, len(journals))
	}
	if len(merged) > limit {
		merged = merged[len(merged)-limit:]
	}
	tbl := stats.NewTable(title,
		"time", "node", "epoch", "type", "part", "cause", "detail")
	for _, e := range merged {
		part := "-"
		if e.Partition >= 0 {
			part = fmt.Sprintf("%d", e.Partition)
		}
		cause := e.Cause
		if cause == "" {
			cause = "-"
		}
		detail := e.Detail
		if e.RID != "" {
			detail = fmt.Sprintf("[%s] %s", e.RID, detail)
		}
		tbl.AddRow(
			time.Unix(0, e.TimeUnixNano).Format("15:04:05.000"),
			fmt.Sprintf("%d", e.Node),
			fmt.Sprintf("%d", e.Epoch),
			e.Type, part, cause, detail,
		)
	}
	fmt.Println(tbl.String())
	return nil
}

// postJSON POSTs in as JSON and decodes the 2xx body into out; non-2xx
// replies surface the server's error code when the body carries one.
func (s *source) postJSON(url string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	resp, err := s.hc.Post(url, "application/json", body)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var fail cluster.EpochResponse
		if json.Unmarshal(data, &fail) == nil && fail.Error != "" {
			return fmt.Errorf("POST %s returned %d (%s)", url, resp.StatusCode, fail.Error)
		}
		return fmt.Errorf("POST %s returned %d", url, resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}

// control issues one membership control call over the configured transport.
// HTTP posts to any member (the handlers proxy to the steward); the wire
// control plane is steward-direct, so wire mode resolves the steward from
// the membership table first.
func (s *source) control(path string, op wire.Opcode, in, out any) error {
	if s.proto != registry.ProtoWire {
		return s.postJSON(s.base+path, in, out)
	}
	t, err := s.fetchTable()
	if err != nil {
		return err
	}
	st, ok := t.Steward()
	if !ok {
		return fmt.Errorf("cluster has no steward (no serving member)")
	}
	if st.WireAddr == "" {
		return fmt.Errorf("steward %d advertises no wire endpoint; use -proto http", st.ID)
	}
	req := wire.Request{Op: op}
	if in != nil {
		if req.Blob, err = json.Marshal(in); err != nil {
			return err
		}
	}
	var resp wire.Response
	if err := s.wireFor(st.WireAddr).Do(&req, &resp); err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("wire %s to steward %d returned status %d (%s)", op, st.ID, resp.Status, resp.Code)
	}
	return json.Unmarshal(resp.Blob, out)
}

// runJoin admits a member by its advertised URL. Admission is idempotent per
// address: pre-admitting here and then booting the laserve with -join hands
// it the same member ID.
func runJoin(src *source, addr, wireAddr string) error {
	adv, err := registry.ParseJoinFlag(addr)
	if err != nil {
		return fmt.Errorf("join address: %w", err)
	}
	if adv == "" {
		return fmt.Errorf("join needs the member's advertised base URL\n%s", usage())
	}
	var out cluster.JoinResponse
	if err := src.control("/cluster/join", wire.OpJoin, cluster.JoinRequest{Addr: adv, WireAddr: wireAddr}, &out); err != nil {
		return err
	}
	fmt.Printf("lactl: admitted %s as member %d at epoch %d (%d members); boot it with: laserve -join %s -advertise %s\n",
		adv, out.ID, out.Table.Epoch, len(out.Table.Members), src.base, adv)
	return nil
}

// runDrain starts draining one member: the planner migrates it empty, then
// the steward retires it (left) under a bumped epoch.
func runDrain(src *source, arg string) error {
	id, err := strconv.Atoi(arg)
	if err != nil {
		return fmt.Errorf("drain needs a member ID, got %q\n%s", arg, usage())
	}
	var out cluster.EpochResponse
	if err := src.control("/cluster/drain", wire.OpDrain, cluster.DrainRequest{ID: id}, &out); err != nil {
		return err
	}
	fmt.Printf("lactl: member %d draining at epoch %d; the planner migrates it empty, then retires it\n", id, out.Epoch)
	return nil
}

// runRebalance forces one planner round on the steward and reports what it
// decided — the on-demand version of the periodic load-spreading pass.
func runRebalance(src *source) error {
	var out cluster.RebalanceResponse
	if err := src.control("/cluster/rebalance", wire.OpRebalance, nil, &out); err != nil {
		return err
	}
	if out.Error != "" {
		return fmt.Errorf("rebalance on steward %d failed at epoch %d: %s", out.Steward, out.Epoch, out.Error)
	}
	if out.Moved {
		fmt.Printf("lactl: steward %d moved a partition (%s); epoch now %d\n", out.Steward, out.Plan, out.Epoch)
	} else {
		reason := out.Reason
		if reason == "" {
			reason = "nothing to move"
		}
		fmt.Printf("lactl: steward %d moved nothing (%s); epoch %d\n", out.Steward, reason, out.Epoch)
	}
	return nil
}

func runLeases(src *source, limit int) error {
	// Cluster members are walked via the table; a standalone laserve is
	// paged directly.
	t, terr := src.fetchTable()
	type row struct {
		name     int
		token    uint64
		deadline int64
		member   string
	}
	var rows []row
	page := func(addr, member string) error {
		start := 0
		for start != -1 && len(rows) < limit {
			var resp server.LeasesResponse
			if err := src.leasesPage(addr, start, min(limit-len(rows), server.MaxLeasesPageLimit), &resp); err != nil {
				return err
			}
			for _, s := range resp.Sessions {
				rows = append(rows, row{name: s.Name, token: s.Token, deadline: s.DeadlineUnixMillis, member: member})
			}
			start = resp.Next
		}
		return nil
	}
	if terr != nil {
		if err := page(src.base, "-"); err != nil {
			return fmt.Errorf("%v (and not a cluster member: %v)", err, terr)
		}
	} else {
		for _, m := range t.Alive() {
			if len(rows) >= limit {
				break
			}
			addr, err := src.memberAddr(m)
			if err != nil {
				fmt.Printf("lactl: member %d skipped: %v\n", m.ID, err)
				continue
			}
			if err := page(addr, fmt.Sprintf("%d", m.ID)); err != nil {
				fmt.Printf("lactl: member %s unreachable: %v\n", addr, err)
			}
		}
	}

	tbl := stats.NewTable(
		fmt.Sprintf("active sessions (first %d)", limit),
		"name", "member", "token", "deadline")
	for _, r := range rows {
		deadline := "infinite"
		if r.deadline != 0 {
			deadline = time.UnixMilli(r.deadline).Format(time.RFC3339Nano)
		}
		tbl.AddRow(fmt.Sprintf("%d", r.name), r.member, fmt.Sprintf("%d", r.token), deadline)
	}
	fmt.Println(tbl.String())
	return nil
}
