// Command lactl inspects a running laserve cluster (or a standalone
// laserve): membership, per-partition load, and active sessions.
//
//	lactl -addr http://127.0.0.1:7001 members   # epoch, members, partition map
//	lactl -addr http://127.0.0.1:7001 stats     # per-partition load across the cluster
//	lactl -addr http://127.0.0.1:7001 leases    # active sessions (paged via /leases)
//
// members and stats need a cluster member; leases also works against a
// standalone laserve (which serves the same /leases endpoint).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/levelarray/levelarray/internal/cluster"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lactl:", err)
		os.Exit(1)
	}
}

func usage() string {
	return "usage: lactl [-addr URL] [-limit N] members|stats|leases"
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:8080", "any cluster member (or standalone laserve) base URL")
	limit := flag.Int("limit", 50, "maximum sessions to list (leases)")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("%s", usage())
	}
	base := strings.TrimRight(*addr, "/")
	hc := &http.Client{Timeout: 5 * time.Second}

	switch flag.Arg(0) {
	case "members":
		return runMembers(hc, base)
	case "stats":
		return runStats(hc, base)
	case "leases":
		return runLeases(hc, base, *limit)
	default:
		return fmt.Errorf("unknown command %q\n%s", flag.Arg(0), usage())
	}
}

// getJSON fetches url and decodes the 2xx body into out.
func getJSON(hc *http.Client, url string, out any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("GET %s returned %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// fetchTable pulls the membership table; a 404 means the target is a
// standalone laserve, not a cluster member.
func fetchTable(hc *http.Client, base string) (cluster.Table, error) {
	var t cluster.Table
	resp, err := hc.Get(base + "/cluster")
	if err != nil {
		return t, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return t, fmt.Errorf("%s serves no /cluster endpoint (standalone laserve?)", base)
	}
	if resp.StatusCode/100 != 2 {
		return t, fmt.Errorf("GET %s/cluster returned %d", base, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
		return t, err
	}
	return t, t.Validate()
}

func runMembers(hc *http.Client, base string) error {
	t, err := fetchTable(hc, base)
	if err != nil {
		return err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("cluster epoch %d: %d partitions x stride %d (namespace %d, capacity %d)",
			t.Epoch, t.Partitions, t.Stride, t.Size(), t.Capacity),
		"member", "addr", "state", "partitions")
	for _, m := range t.Members {
		state := "up"
		if m.Down {
			state = "down"
		}
		tbl.AddRow(fmt.Sprintf("%d", m.ID), m.Addr, state, fmt.Sprintf("%v", t.PartitionsOf(m.ID)))
	}
	fmt.Println(tbl.String())
	return nil
}

func runStats(hc *http.Client, base string) error {
	t, err := fetchTable(hc, base)
	if err != nil {
		return err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("cluster epoch %d: per-partition load", t.Epoch),
		"partition", "member", "active", "capacity", "load", "acquires", "expirations", "quarantine")
	var unreachable []string
	for _, m := range t.Alive() {
		var ns cluster.NodeStatsResponse
		if err := getJSON(hc, m.Addr+"/stats", &ns); err != nil {
			unreachable = append(unreachable, m.Addr)
			continue
		}
		for _, p := range ns.Partitions {
			quarantine := "-"
			if p.QuarantinedMillis > 0 {
				quarantine = (time.Duration(p.QuarantinedMillis) * time.Millisecond).String()
			}
			tbl.AddRow(
				fmt.Sprintf("%d", p.Partition),
				fmt.Sprintf("%d", ns.NodeID),
				fmt.Sprintf("%d", p.Lease.Active),
				fmt.Sprintf("%d", p.Capacity),
				fmt.Sprintf("%.0f%%", p.LoadFactor*100),
				fmt.Sprintf("%d", p.Lease.Acquires),
				fmt.Sprintf("%d", p.Lease.Expirations),
				quarantine,
			)
		}
	}
	fmt.Println(tbl.String())
	for _, addr := range unreachable {
		fmt.Printf("lactl: member %s unreachable\n", addr)
	}
	return nil
}

func runLeases(hc *http.Client, base string, limit int) error {
	// Cluster members are walked via the table; a standalone laserve is
	// paged directly.
	t, terr := fetchTable(hc, base)
	type row struct {
		name     int
		token    uint64
		deadline int64
		member   string
	}
	var rows []row
	page := func(addr, member string) error {
		start := 0
		for start != -1 && len(rows) < limit {
			var resp server.LeasesResponse
			url := fmt.Sprintf("%s/leases?start=%d&limit=%d", addr, start, min(limit-len(rows), server.MaxLeasesPageLimit))
			if err := getJSON(hc, url, &resp); err != nil {
				return err
			}
			for _, s := range resp.Sessions {
				rows = append(rows, row{name: s.Name, token: s.Token, deadline: s.DeadlineUnixMillis, member: member})
			}
			start = resp.Next
		}
		return nil
	}
	if terr != nil {
		if err := page(base, "-"); err != nil {
			return fmt.Errorf("%v (and not a cluster member: %v)", err, terr)
		}
	} else {
		for _, m := range t.Alive() {
			if len(rows) >= limit {
				break
			}
			if err := page(m.Addr, fmt.Sprintf("%d", m.ID)); err != nil {
				fmt.Printf("lactl: member %s unreachable: %v\n", m.Addr, err)
			}
		}
	}

	tbl := stats.NewTable(
		fmt.Sprintf("active sessions (first %d)", limit),
		"name", "member", "token", "deadline")
	for _, r := range rows {
		deadline := "infinite"
		if r.deadline != 0 {
			deadline = time.UnixMilli(r.deadline).Format(time.RFC3339Nano)
		}
		tbl.AddRow(fmt.Sprintf("%d", r.name), r.member, fmt.Sprintf("%d", r.token), deadline)
	}
	fmt.Println(tbl.String())
	return nil
}
