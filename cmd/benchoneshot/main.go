// Command benchoneshot runs the theory-validation experiments in the
// step-level oblivious-adversary simulator:
//
//   - the O(log log n) scaling of the worst-case Get complexity (Theorem 1),
//     in both one-shot and long-lived executions;
//
//   - the balance of the array under a family of adversarial schedules
//     (Proposition 3 / Theorem 2), together with the distribution of the
//     batch each Get stops in and a full linearizability/validity check of
//     the recorded trace.
//
//     go run ./cmd/benchoneshot                # long-lived scaling sweep
//     go run ./cmd/benchoneshot -oneshot       # one-shot scaling sweep
//     go run ./cmd/benchoneshot -balance       # adversarial balance check
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/levelarray/levelarray/internal/experiments"
	"github.com/levelarray/levelarray/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchoneshot:", err)
		os.Exit(1)
	}
}

func run() error {
	capacities := flag.String("capacities", "16,32,64,128,256,512,1024,2048,4096", "comma-separated capacities n to sweep")
	rounds := flag.Int("rounds", 32, "Get/Free rounds per process in long-lived mode")
	oneshot := flag.Bool("oneshot", false, "run the one-shot (single Get per process) regime")
	balanceCheck := flag.Bool("balance", false, "run the adversarial balance check instead of the scaling sweep")
	probes := flag.Int("probes", 0, "test-and-set trials per batch (0 = experiment default)")
	rngName := flag.String("rng", "xorshift", "random generator: xorshift, xorshift32, lehmer, splitmix")
	seed := flag.Uint64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "print CSV instead of aligned tables")
	flag.Parse()

	kind, ok := rng.ParseKind(*rngName)
	if !ok {
		return fmt.Errorf("unknown rng %q", *rngName)
	}

	if *balanceCheck {
		res, err := experiments.BalanceCheck(experiments.BalanceCheckConfig{
			RoundsPerProcess: *rounds,
			ProbesPerBatch:   *probes,
			Seed:             *seed,
			RNG:              kind,
		})
		if err != nil {
			return err
		}
		if *csv {
			fmt.Println(res.Table.CSV())
			fmt.Println(res.ReachTable.CSV())
		} else {
			fmt.Println(res.Table.String())
			fmt.Println(res.ReachTable.String())
		}
		return nil
	}

	ns, err := parseInts(*capacities)
	if err != nil {
		return err
	}
	res, err := experiments.LogLogScaling(experiments.LogLogConfig{
		Capacities:       ns,
		RoundsPerProcess: *rounds,
		OneShot:          *oneshot,
		ProbesPerBatch:   *probes,
		Seed:             *seed,
		RNG:              kind,
	})
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println(res.Table.CSV())
	} else {
		fmt.Println(res.Table.String())
	}
	return nil
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 2 {
			return nil, fmt.Errorf("invalid capacity %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no capacities given")
	}
	return out, nil
}
