// Command benchshard is the throughput-scaling driver for the sharded
// subsystem: it sweeps shard counts against goroutine counts and contention
// levels in a scale-out configuration (fixed per-shard capacity, fixed
// offered load) and reports aggregate Get/Free throughput, probe cost and
// steal counts, with the speedup of every shard count over the single-array
// baseline.
//
//	go run ./cmd/benchshard
//	go run ./cmd/benchshard -shards 1,2,4,8 -goroutines 1,8 -fill 50,85
//	go run ./cmd/benchshard -json results.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/stats"
	"github.com/levelarray/levelarray/internal/tas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchshard:", err)
		os.Exit(1)
	}
}

// cell is one measured configuration.
type cell struct {
	Fill       int     `json:"fill_percent"`
	Goroutines int     `json:"goroutines"`
	Shards     int     `json:"shards"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	AvgProbes  float64 `json:"avg_probes"`
	Steals     uint64  `json:"steals"`
	// Speedup is relative to this sweep's measured S=1 cell; 0 when the
	// sweep did not include (or could not run) S=1.
	Speedup float64 `json:"speedup_vs_one_shard,omitempty"`
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid -%s entry %q (valid: comma-separated positive integers)", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

func run() error {
	shardsFlag := flag.String("shards", "1,2,4,8", "comma-separated shard counts (each a power of two)")
	goroutinesFlag := flag.String("goroutines", "1,2,4,8", "comma-separated churn goroutine counts")
	fillFlag := flag.String("fill", "50,85", "comma-separated resident fill percentages of one shard's capacity")
	shardCapacity := flag.Int("shard-capacity", 64, "per-shard contention bound (fixed while shards scale out)")
	duration := flag.Duration("duration", 200*time.Millisecond, "measurement length per configuration")
	stealName := flag.String("steal", "occupancy", "steal policy: "+shard.StealKindNames)
	probeName := flag.String("probe", "slot", "per-shard LevelArray probe strategy: "+core.ProbeModeNames)
	seed := flag.Uint64("seed", 1, "base random seed")
	jsonPath := flag.String("json", "", "also write the cells as JSON to this file")
	flag.Parse()

	// Validate everything up-front with one-line errors through the shared
	// registry vocabulary helpers, as larun does.
	shardCounts, err := parseIntList("shards", *shardsFlag)
	if err != nil {
		return err
	}
	for _, s := range shardCounts {
		if _, err := registry.ValidateShardCount(s); err != nil {
			return err
		}
	}
	goroutineCounts, err := parseIntList("goroutines", *goroutinesFlag)
	if err != nil {
		return err
	}
	fills, err := parseIntList("fill", *fillFlag)
	if err != nil {
		return err
	}
	for _, f := range fills {
		if err := registry.ValidatePercent("fill", f); err != nil {
			return err
		}
	}
	steal, err := registry.ParseStealFlag(*stealName)
	if err != nil {
		return err
	}
	probe, err := registry.ParseProbeFlag(*probeName, tas.KindBitmap)
	if err != nil {
		return err
	}
	if *shardCapacity < 1 {
		return fmt.Errorf("invalid -shard-capacity %d (valid: at least 1)", *shardCapacity)
	}

	var cells []cell
	for _, fill := range fills {
		for _, g := range goroutineCounts {
			resident := *shardCapacity * fill / 100
			tbl := stats.NewTable(
				fmt.Sprintf("scale-out: %d resident (fill %d%%), %d goroutines, per-shard capacity %d, %v/cell",
					resident, fill, g, *shardCapacity, *duration),
				"shards", "throughput (ops/s)", "avg probes", "steals", "speedup vs S=1")
			var baseline float64
			for _, s := range shardCounts {
				if resident+g > s**shardCapacity {
					tbl.AddRow(fmt.Sprintf("%d", s), "oversubscribed", "-", "-", "-")
					continue
				}
				c, err := runCell(s, *shardCapacity, resident, g, steal, probe, *seed, *duration)
				if err != nil {
					return fmt.Errorf("S=%d g=%d fill=%d: %w", s, g, fill, err)
				}
				c.Fill = fill
				speedup := "-"
				if s == 1 {
					baseline = c.OpsPerSec
				}
				if baseline > 0 {
					c.Speedup = c.OpsPerSec / baseline
					speedup = fmt.Sprintf("%.2fx", c.Speedup)
				}
				cells = append(cells, c)
				tbl.AddRow(fmt.Sprintf("%d", s),
					fmt.Sprintf("%.0f", c.OpsPerSec),
					fmt.Sprintf("%.3f", c.AvgProbes),
					fmt.Sprintf("%d", c.Steals),
					speedup)
			}
			fmt.Println(tbl.String())
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(cells, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}

// runCell measures one (shards, goroutines, load) configuration: resident
// names are registered up-front and held, then g goroutines churn Get/Free
// pairs for the configured duration.
func runCell(shards, shardCapacity, resident, goroutines int, steal shard.StealKind, probe core.ProbeMode, seed uint64, d time.Duration) (cell, error) {
	arr, err := shard.New(shard.Config{
		Shards:   shards,
		Capacity: shards * shardCapacity,
		Steal:    steal,
		Seed:     seed,
		Array:    core.Config{Probe: probe},
	})
	if err != nil {
		return cell{}, err
	}
	for i := 0; i < resident; i++ {
		if _, err := arr.Handle().Get(); err != nil {
			return cell{}, fmt.Errorf("resident registration %d: %w", i, err)
		}
	}

	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		merged  activity.ProbeStats
		workErr error
	)
	start := time.Now()
	timer := time.AfterFunc(d, func() { stop.Store(true) })
	defer timer.Stop()
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := arr.Handle()
			for !stop.Load() {
				if _, err := h.Get(); err != nil {
					mu.Lock()
					workErr = err
					mu.Unlock()
					return
				}
				if err := h.Free(); err != nil {
					mu.Lock()
					workErr = err
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			merged.Merge(h.Stats())
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if workErr != nil {
		return cell{}, workErr
	}
	return cell{
		Goroutines: goroutines,
		Shards:     shards,
		OpsPerSec:  float64(merged.Ops+merged.Frees) / elapsed.Seconds(),
		AvgProbes:  merged.Mean(),
		Steals:     merged.Steals,
	}, nil
}
