// Command benchprefill regenerates the in-text robustness claims of the
// paper's evaluation: that the Figure 2 results are stable for pre-fill
// percentages between 0% and 90%, for array sizes L between 2N and 4N, and
// that the deterministic left-to-right scan is at least two orders of
// magnitude more expensive than the randomized algorithms.
//
//	go run ./cmd/benchprefill                 # pre-fill sweep
//	go run ./cmd/benchprefill -sizes          # array-size sweep
//	go run ./cmd/benchprefill -deterministic  # four-algorithm comparison
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/levelarray/levelarray/internal/experiments"
	"github.com/levelarray/levelarray/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchprefill:", err)
		os.Exit(1)
	}
}

func run() error {
	threads := flag.Int("threads", 8, "number of worker threads")
	emulation := flag.Int("emulation", 1000, "emulated registrations per thread")
	duration := flag.Duration("duration", 300*time.Millisecond, "wall-clock budget per point")
	sizes := flag.Bool("sizes", false, "sweep the array size L between 2N and 4N instead of the pre-fill percentage")
	deterministic := flag.Bool("deterministic", false, "run the four-algorithm comparison including the deterministic baseline")
	rngName := flag.String("rng", "xorshift", "random generator: xorshift, xorshift32, lehmer, splitmix")
	seed := flag.Uint64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "print CSV instead of aligned tables")
	flag.Parse()

	kind, ok := rng.ParseKind(*rngName)
	if !ok {
		return fmt.Errorf("unknown rng %q", *rngName)
	}
	common := experiments.CommonConfig{
		EmulationFactor: *emulation,
		Duration:        *duration,
		RNG:             kind,
		Seed:            *seed,
	}
	printTable := func(title, text, csvText string) {
		if *csv {
			fmt.Println("# " + title)
			fmt.Println(csvText)
			return
		}
		fmt.Println(text)
	}

	switch {
	case *deterministic:
		res, err := experiments.DeterministicComparison(experiments.DeterministicComparisonConfig{
			CommonConfig: common,
			Threads:      *threads,
		})
		if err != nil {
			return err
		}
		printTable(res.Table.Title(), res.Table.String(), res.Table.CSV())
	case *sizes:
		res, err := experiments.SizeSweep(experiments.SizeSweepConfig{
			CommonConfig: common,
			Threads:      *threads,
		})
		if err != nil {
			return err
		}
		for _, tbl := range res.Tables() {
			printTable(tbl.Title(), tbl.String(), tbl.CSV())
		}
	default:
		res, err := experiments.PrefillSweep(experiments.PrefillSweepConfig{
			CommonConfig: common,
			Threads:      *threads,
		})
		if err != nil {
			return err
		}
		for _, tbl := range res.Tables() {
			printTable(tbl.Title(), tbl.String(), tbl.CSV())
		}
	}
	return nil
}
