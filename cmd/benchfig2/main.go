// Command benchfig2 regenerates Figure 2 of the paper: throughput, average
// number of trials, standard deviation of trials, and worst-case number of
// trials per Get, for LevelArray vs Random vs LinearProbing across a sweep of
// thread counts.
//
// The paper's full-scale configuration is N = 1000·n emulated registrations,
// L = 2N slots, 50% pre-fill, and a 10-second timed run per point on an
// 80-hardware-thread machine:
//
//	go run ./cmd/benchfig2 -threads 1,2,4,8,16,32,40,60,80 -duration 10s
//
// The defaults below are scaled down so the whole figure regenerates in about
// a minute on a laptop; pass -long for the paper-scale run and -deterministic
// to include the (two orders of magnitude slower) deterministic baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/levelarray/levelarray/internal/experiments"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig2:", err)
		os.Exit(1)
	}
}

func run() error {
	threadsFlag := flag.String("threads", "1,2,4,8", "comma-separated thread counts to sweep")
	duration := flag.Duration("duration", 300*time.Millisecond, "wall-clock budget per (algorithm, thread-count) point")
	emulation := flag.Int("emulation", 1000, "emulated registrations per thread (the paper's N/n = 1000)")
	prefill := flag.Int("prefill", 50, "pre-fill percentage (0..100)")
	sizeFactor := flag.Float64("size-factor", 2, "array size L as a multiple of N")
	deterministic := flag.Bool("deterministic", false, "include the deterministic linear-scan baseline")
	long := flag.Bool("long", false, "run the paper-scale configuration (10s per point, thread sweep to 80)")
	rngName := flag.String("rng", "xorshift", "random generator: xorshift, xorshift32, lehmer, splitmix")
	seed := flag.Uint64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "print CSV instead of aligned tables")
	flag.Parse()

	threadCounts, err := parseInts(*threadsFlag)
	if err != nil {
		return err
	}
	if *long {
		threadCounts = experiments.DefaultThreadCounts()
		*duration = 10 * time.Second
	}
	kind, ok := rng.ParseKind(*rngName)
	if !ok {
		return fmt.Errorf("unknown rng %q", *rngName)
	}
	algorithms := registry.Randomized()
	if *deterministic {
		algorithms = registry.All()
	}

	fmt.Printf("# Figure 2 reproduction: N = %d*n, L = %.1f*N, pre-fill %d%%, %v per point, rng=%s\n\n",
		*emulation, *sizeFactor, *prefill, *duration, kind)

	result, err := experiments.Fig2(experiments.Fig2Config{
		CommonConfig: experiments.CommonConfig{
			Algorithms:      algorithms,
			EmulationFactor: *emulation,
			PrefillPercent:  *prefill,
			SizeFactor:      *sizeFactor,
			Duration:        *duration,
			RNG:             kind,
			Seed:            *seed,
		},
		ThreadCounts: threadCounts,
	})
	if err != nil {
		return err
	}
	for _, tbl := range result.Tables() {
		if *csv {
			fmt.Println("# " + tbl.Title())
			fmt.Println(tbl.CSV())
		} else {
			fmt.Println(tbl.String())
		}
	}
	return nil
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid thread count %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts given")
	}
	return out, nil
}
