// Command larun is the general benchmark driver: it runs one configuration of
// the concurrent harness against any of the four registration algorithms and
// prints the resulting throughput and probe statistics. It is the building
// block the figure-specific drivers are assembled from, and the quickest way
// to poke at a single data point (e.g. the paper's in-text "one billion
// operations at 80 threads, worst case 6 probes" claim).
//
//	go run ./cmd/larun -algorithm LevelArray -threads 8 -duration 2s
//	go run ./cmd/larun -algorithm Random -threads 8 -prefill 90
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/levelarray/levelarray/internal/harness"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/stats"
	"github.com/levelarray/levelarray/internal/tas"
	"github.com/levelarray/levelarray/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "larun:", err)
		os.Exit(1)
	}
}

func run() error {
	algorithmName := flag.String("algorithm", "LevelArray", "algorithm: LevelArray, Random, LinearProbing, Deterministic")
	threads := flag.Int("threads", 8, "number of worker threads")
	emulation := flag.Int("emulation", 1000, "emulated registrations per thread (N/n)")
	prefill := flag.Int("prefill", 50, "pre-fill percentage (0..100)")
	sizeFactor := flag.Float64("size-factor", 2, "array size L as a multiple of N")
	duration := flag.Duration("duration", time.Second, "wall-clock run length (ignored when -rounds > 0)")
	roundsPerThread := flag.Int("rounds", 0, "churn rounds per thread (0 = duration-based run)")
	collectEvery := flag.Int("collect-every", 0, "perform a Collect every k-th round (0 = never)")
	rngName := flag.String("rng", "xorshift", "random generator: xorshift, xorshift32, lehmer, splitmix")
	spaceName := flag.String("space", "bitmap", "slot substrate: bitmap, bitmap-padded, padded, compact")
	seed := flag.Uint64("seed", 1, "base random seed")
	flag.Parse()

	algo, err := registry.Parse(*algorithmName)
	if err != nil {
		return err
	}
	kind, ok := rng.ParseKind(*rngName)
	if !ok {
		return fmt.Errorf("unknown rng %q", *rngName)
	}
	space, ok := tas.ParseKind(*spaceName)
	if !ok {
		return fmt.Errorf("unknown space layout %q", *spaceName)
	}

	result, err := harness.Run(harness.Config{
		Algorithm: algo,
		Workload: workload.Spec{
			Threads:        *threads,
			EmulatedN:      *threads * *emulation,
			PrefillPercent: *prefill,
		},
		SizeFactor:      *sizeFactor,
		RoundsPerThread: *roundsPerThread,
		Duration:        *duration,
		CollectEvery:    *collectEvery,
		RNG:             kind,
		Space:           space,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}

	tbl := stats.NewTable(fmt.Sprintf("%s: n=%d threads, N=%d, L=%d, pre-fill %d%%",
		algo, result.Threads, result.Capacity, result.ArraySize, *prefill), "metric", "value")
	tbl.AddRow("duration", result.Duration.Round(time.Millisecond).String())
	tbl.AddRow("operations (Get+Free)", fmt.Sprintf("%d", result.Ops))
	tbl.AddRow("throughput (ops/s)", fmt.Sprintf("%.0f", result.Throughput()))
	tbl.AddRow("avg trials per Get", fmt.Sprintf("%.3f", result.Stats.Mean()))
	tbl.AddRow("stddev trials", fmt.Sprintf("%.3f", result.Stats.StdDev()))
	tbl.AddRow("worst case trials", fmt.Sprintf("%d", result.WorstCase()))
	tbl.AddRow("worst case (avg over threads)", fmt.Sprintf("%.2f", result.MeanWorstCase()))
	tbl.AddRow("backup array uses", fmt.Sprintf("%d", result.Stats.BackupOps))
	tbl.AddRow("collect scans", fmt.Sprintf("%d", result.Collects))
	fmt.Println(tbl.String())
	return nil
}
