// Command larun is the general benchmark driver: it runs one configuration of
// the concurrent harness against any of the registration algorithms and
// prints the resulting throughput and probe statistics. It is the building
// block the figure-specific drivers are assembled from, and the quickest way
// to poke at a single data point (e.g. the paper's in-text "one billion
// operations at 80 threads, worst case 6 probes" claim).
//
//	go run ./cmd/larun -algorithm LevelArray -threads 8 -duration 2s
//	go run ./cmd/larun -algorithm Random -threads 8 -prefill 90
//	go run ./cmd/larun -algorithm LevelArray -shards 8 -steal occupancy
//	go run ./cmd/larun -algorithm LevelArray -probe word -prefill 95
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/harness"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/stats"
	"github.com/levelarray/levelarray/internal/tas"
	"github.com/levelarray/levelarray/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "larun:", err)
		os.Exit(1)
	}
}

// parsedFlags is the validated run configuration.
type parsedFlags struct {
	algo   registry.Algorithm
	rng    rng.Kind
	space  tas.Kind
	probe  core.ProbeMode
	steal  shard.StealKind
	shards int
}

// validateFlags checks every enumerated or constrained flag up-front through
// the registry's shared vocabulary helpers, so the first problem fails with a
// one-line error naming the valid options.
func validateFlags(algorithm, rngName, spaceName, probeName, stealName string, shards, prefill int) (parsedFlags, error) {
	var p parsedFlags
	var err error
	if p.algo, err = registry.Parse(algorithm); err != nil {
		return p, err
	}
	if p.rng, err = registry.ParseRNGFlag(rngName); err != nil {
		return p, err
	}
	if p.space, err = registry.ParseSpaceFlag(spaceName); err != nil {
		return p, err
	}
	if p.probe, err = registry.ParseProbeFlag(probeName, p.space); err != nil {
		return p, err
	}
	if p.steal, err = registry.ParseStealFlag(stealName); err != nil {
		return p, err
	}
	if p.shards, err = registry.ValidateShardCount(shards); err != nil {
		return p, err
	}
	if err = registry.ValidatePercent("prefill", prefill); err != nil {
		return p, err
	}
	return p, nil
}

func run() error {
	algorithmName := flag.String("algorithm", "LevelArray", "algorithm: "+registry.KnownNames())
	threads := flag.Int("threads", 8, "number of worker threads")
	emulation := flag.Int("emulation", 1000, "emulated registrations per thread (N/n)")
	prefill := flag.Int("prefill", 50, "pre-fill percentage (0..100)")
	sizeFactor := flag.Float64("size-factor", 2, "array size L as a multiple of N")
	duration := flag.Duration("duration", time.Second, "wall-clock run length (ignored when -rounds > 0)")
	roundsPerThread := flag.Int("rounds", 0, "churn rounds per thread (0 = duration-based run)")
	collectEvery := flag.Int("collect-every", 0, "perform a Collect every k-th round (0 = never)")
	rngName := flag.String("rng", "xorshift", "random generator: "+registry.ValidRNGNames)
	spaceName := flag.String("space", "bitmap", "slot substrate: "+registry.ValidSpaceNames)
	probeName := flag.String("probe", "slot", "LevelArray probe strategy: "+core.ProbeModeNames)
	shards := flag.Int("shards", 1, "shard count: "+registry.ValidShardCounts)
	stealName := flag.String("steal", "occupancy", "sharded steal policy: "+shard.StealKindNames)
	leaseTTL := flag.Duration("lease-ttl", 0, "run the workload through a lease manager with this churn TTL (0 = raw handles)")
	leaseCrash := flag.Int("lease-crash", 0, "percentage of churn leases abandoned to the expirer (requires -lease-ttl): "+registry.ValidPercentRange)
	seed := flag.Uint64("seed", 1, "base random seed")
	flag.Parse()

	p, err := validateFlags(*algorithmName, *rngName, *spaceName, *probeName, *stealName, *shards, *prefill)
	if err != nil {
		return err
	}
	if err := registry.ValidatePercent("lease-crash", *leaseCrash); err != nil {
		return err
	}
	if *leaseCrash > 0 && *leaseTTL <= 0 {
		return fmt.Errorf("-lease-crash requires -lease-ttl")
	}

	result, err := harness.Run(harness.Config{
		Algorithm: p.algo,
		Workload: workload.Spec{
			Threads:        *threads,
			EmulatedN:      *threads * *emulation,
			PrefillPercent: *prefill,
		},
		SizeFactor:        *sizeFactor,
		RoundsPerThread:   *roundsPerThread,
		Duration:          *duration,
		CollectEvery:      *collectEvery,
		RNG:               p.rng,
		Space:             p.space,
		Probe:             p.probe,
		Shards:            p.shards,
		Steal:             p.steal,
		LeaseTTL:          *leaseTTL,
		LeaseCrashPercent: *leaseCrash,
		Seed:              *seed,
	})
	if err != nil {
		return err
	}

	title := fmt.Sprintf("%s: n=%d threads, N=%d, L=%d, pre-fill %d%%",
		p.algo, result.Threads, result.Capacity, result.ArraySize, *prefill)
	if len(result.ShardStats) > 0 {
		title = fmt.Sprintf("%s, %d shards (%s steal)", title, len(result.ShardStats), p.steal)
	}
	tbl := stats.NewTable(title, "metric", "value")
	tbl.AddRow("duration", result.Duration.Round(time.Millisecond).String())
	tbl.AddRow("operations (Get+Free)", fmt.Sprintf("%d", result.Ops))
	tbl.AddRow("throughput (ops/s)", fmt.Sprintf("%.0f", result.Throughput()))
	tbl.AddRow("avg trials per Get", fmt.Sprintf("%.3f", result.Stats.Mean()))
	tbl.AddRow("stddev trials", fmt.Sprintf("%.3f", result.Stats.StdDev()))
	tbl.AddRow("worst case trials", fmt.Sprintf("%d", result.WorstCase()))
	tbl.AddRow("worst case (avg over threads)", fmt.Sprintf("%.2f", result.MeanWorstCase()))
	tbl.AddRow("backup array uses", fmt.Sprintf("%d", result.Stats.BackupOps))
	tbl.AddRow("collect scans", fmt.Sprintf("%d", result.Collects))
	if len(result.ShardStats) > 0 {
		tbl.AddRow("cross-shard steals", fmt.Sprintf("%d", result.Stats.Steals))
	}
	fmt.Println(tbl.String())

	if len(result.ShardStats) > 0 {
		shardTbl := stats.NewTable("per-shard breakdown", "shard", "capacity", "occupancy", "steals-in", "home-fulls")
		for _, s := range result.ShardStats {
			shardTbl.AddRow(fmt.Sprintf("%d", s.Shard), fmt.Sprintf("%d", s.Capacity),
				fmt.Sprintf("%d", s.Occupancy), fmt.Sprintf("%d", s.StealsIn), fmt.Sprintf("%d", s.HomeFulls))
		}
		fmt.Println(shardTbl.String())
	}

	if ls := result.LeaseStats; ls != nil {
		leaseTbl := stats.NewTable(fmt.Sprintf("lease manager (ttl %v, crash %d%%)", *leaseTTL, *leaseCrash), "metric", "value")
		leaseTbl.AddRow("acquires", fmt.Sprintf("%d", ls.Acquires))
		leaseTbl.AddRow("releases", fmt.Sprintf("%d", ls.Releases))
		leaseTbl.AddRow("abandoned by workload", fmt.Sprintf("%d", result.Abandoned))
		leaseTbl.AddRow("expirations", fmt.Sprintf("%d", ls.Expirations))
		leaseTbl.AddRow("failed acquires (ErrFull)", fmt.Sprintf("%d", ls.FailedAcquires))
		leaseTbl.AddRow("renew/release races", fmt.Sprintf("%d", ls.RenewRaces+ls.ReleaseRaces))
		leaseTbl.AddRow("orphans reclaimed", fmt.Sprintf("%d", ls.OrphansReclaimed))
		leaseTbl.AddRow("still active (residents)", fmt.Sprintf("%d", ls.Active))
		leaseTbl.AddRow("expirer ticks", fmt.Sprintf("%d", ls.Ticks))
		fmt.Println(leaseTbl.String())
	}
	return nil
}
