// Command benchapps measures registration cost inside the application
// substrates the paper's introduction motivates — epoch-based memory
// reclamation over a lock-free stack, an STM running bank transfers, a
// flat-combining queue, and a dynamic-membership barrier — with the
// registration registry backed by a selectable algorithm. It shows the
// end-to-end effect of the LevelArray's fast registration compared to the
// deterministic scan, inside realistic clients rather than a microbenchmark.
//
//	go run ./cmd/benchapps -workers 8 -ops 5000
//	go run ./cmd/benchapps -algorithms LevelArray,Random,LinearProbing,Deterministic
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/levelarray/levelarray/internal/experiments"
	"github.com/levelarray/levelarray/internal/registry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchapps:", err)
		os.Exit(1)
	}
}

func run() error {
	workers := flag.Int("workers", 8, "worker goroutines per application")
	ops := flag.Int("ops", 5000, "application operations per worker")
	algorithmsFlag := flag.String("algorithms", "LevelArray,Deterministic", "comma-separated registry algorithms to compare")
	seed := flag.Uint64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "print CSV instead of an aligned table")
	flag.Parse()

	var algorithms []registry.Algorithm
	for _, name := range strings.Split(*algorithmsFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		algo, err := registry.Parse(name)
		if err != nil {
			return err
		}
		algorithms = append(algorithms, algo)
	}

	result, err := experiments.Applications(experiments.ApplicationsConfig{
		Workers:      *workers,
		OpsPerWorker: *ops,
		Algorithms:   algorithms,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println(result.Table.CSV())
	} else {
		fmt.Println(result.Table.String())
	}
	return nil
}
