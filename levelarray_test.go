package levelarray_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	levelarray "github.com/levelarray/levelarray"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow through
// the public façade only.
func TestPublicAPIQuickstart(t *testing.T) {
	arr, err := levelarray.New(levelarray.Config{Capacity: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h := arr.Handle()
	name, err := h.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if name < 0 || name >= arr.Size() {
		t.Fatalf("name %d outside namespace [0, %d)", name, arr.Size())
	}
	registered := arr.Collect(nil)
	if len(registered) != 1 || registered[0] != name {
		t.Fatalf("Collect = %v, want [%d]", registered, name)
	}
	if err := h.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := arr.Collect(nil); len(got) != 0 {
		t.Fatalf("Collect after Free = %v", got)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	arr := levelarray.MustNew(levelarray.Config{Capacity: 4})
	h := arr.Handle()
	if err := h.Free(); !errors.Is(err, levelarray.ErrNotRegistered) {
		t.Fatalf("Free before Get = %v", err)
	}
	if _, err := h.Get(); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if _, err := h.Get(); !errors.Is(err, levelarray.ErrAlreadyRegistered) {
		t.Fatalf("second Get = %v", err)
	}
}

func TestPublicAPIInvalidConfig(t *testing.T) {
	if _, err := levelarray.New(levelarray.Config{}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestPublicAPIRNGSelection(t *testing.T) {
	arr := levelarray.MustNew(levelarray.Config{Capacity: 8, RNG: levelarray.RNGLehmer, Seed: 5})
	h := arr.Handle()
	if _, err := h.Get(); err != nil {
		t.Fatalf("Get with Lehmer RNG: %v", err)
	}
	if h.LastProbes() < 1 {
		t.Fatal("no probes recorded")
	}
	var stats levelarray.ProbeStats = h.Stats()
	if stats.Ops != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPublicAPIConcurrentUse(t *testing.T) {
	const workers = 32
	arr := levelarray.MustNew(levelarray.Config{Capacity: workers, Seed: 7})
	var wg sync.WaitGroup
	names := make([]int, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var h levelarray.Handle = arr.Handle()
			for i := 0; i < 200; i++ {
				name, err := h.Get()
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				names[w] = name
				if err := h.Free(); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := arr.Collect(nil); len(got) != 0 {
		t.Fatalf("Collect after churn = %v", got)
	}
}

// TestPublicAPIAsInterface checks the façade type aliases compose: a
// LevelArray can be passed around as the generic Array interface.
func TestPublicAPIAsInterface(t *testing.T) {
	var arr levelarray.Array = levelarray.MustNew(levelarray.Config{Capacity: 16})
	if arr.Capacity() != 16 {
		t.Fatalf("Capacity = %d", arr.Capacity())
	}
	if arr.Size() < 16 {
		t.Fatalf("Size = %d", arr.Size())
	}
}

func TestPublicAPILeased(t *testing.T) {
	arr := levelarray.MustNew(levelarray.Config{Capacity: 16})
	mgr := levelarray.MustNewLeased(arr, levelarray.LeaseConfig{TickInterval: 5 * time.Millisecond})
	mgr.Start()
	defer mgr.Close()

	l, err := mgr.Acquire(30 * time.Millisecond)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if _, err := mgr.Renew(l.Name, l.Token+1, time.Second); err != levelarray.ErrStaleToken {
		t.Fatalf("Renew with a forged token = %v, want ErrStaleToken", err)
	}
	if err := mgr.Release(l.Name, l.Token); err != nil {
		t.Fatalf("Release: %v", err)
	}

	// An abandoned lease is reclaimed by the background expirer.
	if _, err := mgr.Acquire(20 * time.Millisecond); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for mgr.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned lease not reclaimed; stats %+v", mgr.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
