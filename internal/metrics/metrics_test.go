package metrics

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// buildFixtureRegistry assembles one of everything the render path supports,
// including the escaping edge cases the exposition format defines.
func buildFixtureRegistry() *Registry {
	r := NewRegistry()

	c := r.Counter("la_ops_total", "Operations by kind.", L("op", "acquire"))
	c.Add(41)
	c.Inc()
	r.Counter("la_ops_total", "Operations by kind.", L("op", "release")).Add(7)
	r.CounterFunc("la_ops_total", "Operations by kind.", func() uint64 { return 3 }, L("op", "renew"))

	g := r.Gauge("la_load_factor", "Occupied fraction.")
	g.Set(0.75)
	g.Add(-0.25)
	r.GaugeFunc("la_epoch", "Cluster epoch.", func() float64 { return 12 })

	h := r.Histogram("la_acquire_latency_seconds", "Acquire latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(2 * time.Second) // lands in +Inf

	r.Counter("la_escapes_total", "help with \\ backslash and\nnewline.",
		L("path", `C:\tmp`), L("msg", "say \"hi\"\nok"))

	r.Sampler("la_partition_active", "Active leases per partition.", TypeGauge, func(emit Emit) {
		emit(11, L("partition", "0"))
		emit(3, L("partition", "5"))
	})
	return r
}

// TestRenderGolden pins the full exposition output: HELP/TYPE lines, label
// escaping, histogram _bucket/_sum/_count shape, family sort order.
func TestRenderGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixtureRegistry().Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	golden := filepath.Join("testdata", "render.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("render mismatch\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestHistogramInvariants checks the exposition invariants directly: le
// buckets are cumulative and non-decreasing, the +Inf bucket equals _count,
// and _sum carries the observed total in seconds.
func TestHistogramInvariants(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixtureRegistry().Render(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("parse rendered output: %v", err)
	}

	var prev float64
	var infCount float64
	bucketCount := 0
	for _, s := range samples {
		if s.Name != "la_acquire_latency_seconds_bucket" {
			continue
		}
		bucketCount++
		if s.Value < prev {
			t.Errorf("bucket le=%s is %v, below previous %v (not cumulative)", s.Label("le"), s.Value, prev)
		}
		prev = s.Value
		if s.Label("le") == "+Inf" {
			infCount = s.Value
		}
	}
	if bucketCount != 4 {
		t.Fatalf("got %d bucket samples, want 4 (3 bounds + +Inf)", bucketCount)
	}
	count, ok := Find(samples, "la_acquire_latency_seconds_count")
	if !ok || count != 4 {
		t.Fatalf("_count = %v ok=%v, want 4", count, ok)
	}
	if infCount != count {
		t.Errorf("+Inf bucket %v != _count %v", infCount, count)
	}
	sum, ok := Find(samples, "la_acquire_latency_seconds_sum")
	wantSum := (2*500*time.Microsecond + 5*time.Millisecond + 2*time.Second).Seconds()
	if !ok || math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("_sum = %v, want %v", sum, wantSum)
	}
}

// TestParseRoundTrip: everything Render emits, ParseText reads back —
// including escaped label values.
func TestParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixtureRegistry().Render(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := Find(samples, "la_ops_total", L("op", "acquire")); !ok || v != 42 {
		t.Errorf("la_ops_total{op=acquire} = %v ok=%v, want 42", v, ok)
	}
	if got := Sum(samples, "la_ops_total"); got != 52 {
		t.Errorf("Sum(la_ops_total) = %v, want 52", got)
	}
	v, ok := Find(samples, "la_escapes_total", L("path", `C:\tmp`))
	if !ok || v != 0 {
		t.Errorf("escaped-label sample not found back (ok=%v v=%v)", ok, v)
	}
	for _, s := range samples {
		if s.Name == "la_escapes_total" && s.Labels["msg"] != "say \"hi\"\nok" {
			t.Errorf("msg label round-trip = %q", s.Labels["msg"])
		}
	}
	if v, ok := Find(samples, "la_partition_active", L("partition", "5")); !ok || v != 3 {
		t.Errorf("sampler series = %v ok=%v, want 3", v, ok)
	}
}

func TestSampleQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "t", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p50, ok := SampleQuantile(samples, "lat_seconds", 0.5)
	if !ok || p50 > 0.001 {
		t.Errorf("p50 = %v ok=%v, want <= 1ms", p50, ok)
	}
	p99, ok := SampleQuantile(samples, "lat_seconds", 0.99)
	if !ok || p99 < 0.01 || p99 > 0.1 {
		t.Errorf("p99 = %v ok=%v, want in (10ms, 100ms]", p99, ok)
	}
	if _, ok := SampleQuantile(nil, "lat_seconds", 0.5); ok {
		t.Error("quantile over no samples reported ok")
	}
}

// TestConcurrentScrape hammers every instrument kind while scraping, then
// checks the final render matches the exact totals: catches torn reads and
// (under -race) any unsynchronized state in the render path.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "t")
	g := r.Gauge("load", "t")
	h := r.Histogram("lat_seconds", "t", LatencyBuckets())

	const workers, perWorker = 8, 5000
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			var last float64
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := r.Render(&buf); err != nil {
					t.Errorf("render: %v", err)
					return
				}
				samples, err := ParseText(&buf)
				if err != nil {
					t.Errorf("parse: %v", err)
					return
				}
				v, ok := Find(samples, "ops_total")
				if !ok {
					t.Error("ops_total missing mid-scrape")
					return
				}
				if v < last {
					t.Errorf("counter went backwards: %v -> %v", last, v)
					return
				}
				last = v
			}
		}()
	}

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i%1000) * time.Microsecond)
			}
		}()
	}
	writers.Wait()
	close(stop)
	scrapes.Wait()

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := Find(samples, "ops_total"); v != workers*perWorker {
		t.Errorf("ops_total = %v, want %d", v, workers*perWorker)
	}
	if v, _ := Find(samples, "load"); v != workers*perWorker {
		t.Errorf("load = %v, want %d", v, workers*perWorker)
	}
	if v, _ := Find(samples, "lat_seconds_count"); v != workers*perWorker {
		t.Errorf("lat_seconds_count = %v, want %d", v, workers*perWorker)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 3)
	want := []float64{0.001, 0.01, 0.1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	if !strings.Contains(ContentType, "version=0.0.4") {
		t.Error("content type lost its exposition version")
	}
}

func TestRegistryMetadataConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "t")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "t")
}
