package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line. The parser exists for the
// repository's own scrapers (lactl, the chaos metrics watcher, CI
// assertions) — it handles exactly what Registry.Render emits plus ordinary
// Prometheus text, not the full OpenMetrics grammar.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for a label name ("" if absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseText parses an exposition document into samples, skipping comments
// and blank lines.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Sample, error) {
	s := Sample{}
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return s, fmt.Errorf("no value on sample line %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp (rare, optional) would be a second field; take
	// the first.
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {k="v",...} block (escapes honored) and returns
// the remainder of the line.
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return labels, in[i+1:], nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label block in %q", in)
		}
		name := strings.TrimSpace(in[i : i+eq])
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("unterminated label value in %q", in)
			}
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				switch in[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(in[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		labels[name] = b.String()
	}
}

// Find returns the value of the first sample matching name and every given
// label.
func Find(samples []Sample, name string, match ...Label) (float64, bool) {
	for _, s := range samples {
		if s.Name != name || !labelsMatch(s, match) {
			continue
		}
		return s.Value, true
	}
	return 0, false
}

// Sum adds every sample matching name and the given labels.
func Sum(samples []Sample, name string, match ...Label) float64 {
	var total float64
	for _, s := range samples {
		if s.Name == name && labelsMatch(s, match) {
			total += s.Value
		}
	}
	return total
}

func labelsMatch(s Sample, match []Label) bool {
	for _, m := range match {
		if s.Labels[m.Name] != m.Value {
			return false
		}
	}
	return true
}

// SampleQuantile estimates quantile q from a rendered histogram's _bucket
// samples (matching the given extra labels), interpolating linearly within
// the winning bucket the way promql's histogram_quantile does. It returns
// false when no observations match.
func SampleQuantile(samples []Sample, name string, q float64, match ...Label) (float64, bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, s := range samples {
		if s.Name != name+"_bucket" || !labelsMatch(s, match) {
			continue
		}
		le := s.Label("le")
		if le == "+Inf" {
			buckets = append(buckets, bucket{le: math.Inf(1), cum: s.Value})
			continue
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: b, cum: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	prevBound, prevCum := 0.0, 0.0
	for _, b := range buckets {
		if b.cum >= rank {
			if math.IsInf(b.le, 1) {
				return prevBound, true
			}
			if b.cum == prevCum {
				return b.le, true
			}
			frac := (rank - prevCum) / (b.cum - prevCum)
			return prevBound + (b.le-prevBound)*frac, true
		}
		prevBound, prevCum = b.le, b.cum
	}
	return buckets[len(buckets)-1].le, true
}
