package metrics

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Family types, as the TYPE line renders them.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// ContentType is the exposition content type served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair on a series. Label names must be fixed at
// registration; values are escaped at render time.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Emit is the callback a Sampler uses to produce one sample.
type Emit func(value float64, labels ...Label)

// series is one labeled time series inside a family. Exactly one of the
// value sources is set.
type series struct {
	labels    string // pre-rendered `k="v",...` (no braces), "" if unlabeled
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
}

// family is one metric family: a name, HELP/TYPE metadata, and either a
// static series list or a scrape-time sampler.
type family struct {
	name, help, typ string
	series          []*series
	sampler         func(Emit)
}

// Registry holds metric families and renders them in the Prometheus text
// format. Registration is cheap but synchronized; reads of registered
// instruments are lock-free.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// lookup returns the family, creating it on first registration and
// panicking on metadata disagreement (a programming error, not a runtime
// condition).
func (r *Registry) lookup(name, help, typ string) *family {
	if name == "" {
		panic("metrics: empty family name")
	}
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: family %s registered as %s and %s", name, f.typ, typ))
	}
	if f.sampler != nil {
		panic(fmt.Sprintf("metrics: family %s already has a sampler", name))
	}
	return f
}

// Counter registers (or extends) a counter family and returns the series'
// counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Counter{}
	f := r.lookup(name, help, TypeCounter)
	f.series = append(f.series, &series{labels: renderLabels(labels), counter: c})
	return c
}

// Gauge registers (or extends) a gauge family and returns the series' gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := &Gauge{}
	f := r.lookup(name, help, TypeGauge)
	f.series = append(f.series, &series{labels: renderLabels(labels), gauge: g})
	return g
}

// Histogram registers a histogram family (one series per call) and returns
// the instrument.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := NewHistogram(bounds)
	f := r.lookup(name, help, TypeHistogram)
	f.series = append(f.series, &series{labels: renderLabels(labels), hist: h})
	return h
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge to counters that already live in another
// subsystem's atomics.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, TypeCounter)
	f.series = append(f.series, &series{labels: renderLabels(labels), counterFn: fn})
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, TypeGauge)
	f.series = append(f.series, &series{labels: renderLabels(labels), gaugeFn: fn})
}

// Sampler registers a whole family (counter or gauge typed) whose series
// are produced fresh on every scrape — the shape for per-partition stats,
// where the partition set changes under failover.
func (r *Registry) Sampler(name, help, typ string, sample func(Emit)) {
	if typ != TypeCounter && typ != TypeGauge {
		panic("metrics: sampler families must be counter or gauge typed")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic(fmt.Sprintf("metrics: family %s already registered", name))
	}
	r.fams[name] = &family{name: name, help: help, typ: typ, sampler: sample}
}

// Render writes the whole registry in exposition format, families sorted by
// name, series in registration (or emission) order.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		renderFamily(&b, f)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func renderFamily(b *strings.Builder, f *family) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.typ)
	b.WriteByte('\n')

	if f.sampler != nil {
		f.sampler(func(value float64, labels ...Label) {
			writeSample(b, f.name, renderLabels(labels), value)
		})
		return
	}
	for _, s := range f.series {
		switch {
		case s.counter != nil:
			writeUintSample(b, f.name, s.labels, s.counter.Value())
		case s.counterFn != nil:
			writeUintSample(b, f.name, s.labels, s.counterFn())
		case s.gauge != nil:
			writeSample(b, f.name, s.labels, s.gauge.Value())
		case s.gaugeFn != nil:
			writeSample(b, f.name, s.labels, s.gaugeFn())
		case s.hist != nil:
			writeHistogram(b, f.name, s.labels, s.hist)
		}
	}
}

// writeHistogram renders the _bucket/_sum/_count triplet with cumulative
// bucket counts, per the exposition invariants (le is cumulative and ends
// at +Inf; _count equals the +Inf bucket). Buckets that captured an
// exemplar get a trailing comment line — text-format 0.0.4 parsers skip
// comments, and operators get the trace ID of each bucket's slowest recent
// op for free on every scrape.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	counts, count, sum := h.Snapshot()
	exemplars := h.Exemplars()
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		le := joinLabels(labels, `le="`+formatFloat(bound)+`"`)
		writeUintSample(b, name+"_bucket", le, cum)
		writeExemplar(b, name, le, exemplars[i])
	}
	leInf := joinLabels(labels, `le="+Inf"`)
	writeUintSample(b, name+"_bucket", leInf, count)
	writeExemplar(b, name, leInf, exemplars[len(h.bounds)])
	writeSample(b, name+"_sum", labels, sum.Seconds())
	writeUintSample(b, name+"_count", labels, count)
}

// writeExemplar renders one bucket exemplar as an exposition comment:
//
//	# exemplar la_acquire_latency_seconds_bucket{le="0.002"} rid=la-1a2b-3 duration_ns=1830211
func writeExemplar(b *strings.Builder, name, le string, e *Exemplar) {
	if e == nil {
		return
	}
	b.WriteString("# exemplar ")
	b.WriteString(name)
	b.WriteString("_bucket{")
	b.WriteString(le)
	b.WriteString("} rid=")
	b.WriteString(e.RID)
	b.WriteString(" duration_ns=")
	b.WriteString(strconv.FormatInt(e.DurationNanos, 10))
	b.WriteByte('\n')
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func writeUintSample(b *strings.Builder, name, labels string, v uint64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(v, 10))
	b.WriteByte('\n')
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// renderLabels pre-renders a label set to `k="v",...`, escaping values.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeHelp escapes backslash and newline, per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash, double quote and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry as GET /metrics content.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.Render(w)
	})
}

// RegisterRuntime adds the stock Go process gauges every scrape target is
// expected to carry (goroutines, heap, GC totals).
func RegisterRuntime(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	var mu sync.Mutex
	var ms runtime.MemStats
	var last time.Time
	read := func(f func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			// One ReadMemStats per scrape, shared by the mem gauges.
			if now := time.Now(); now.Sub(last) > 100*time.Millisecond {
				runtime.ReadMemStats(&ms)
				last = now
			}
			return f(&ms)
		}
	}
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		read(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }))
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.", func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		runtime.ReadMemStats(&ms)
		last = time.Now()
		return uint64(ms.NumGC)
	})
}
