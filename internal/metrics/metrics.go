// Package metrics is the repository's zero-dependency instrumentation
// layer: lock-free counters and gauges, fixed-bucket latency histograms, and
// a Registry that renders the Prometheus text exposition format
// (text/plain; version=0.0.4). It deliberately implements only what the
// name service needs — no labels-as-maps, no metric vectors with dynamic
// lifecycle, no client library — so the module keeps its empty go.mod.
//
// Two registration styles cover every producer in the stack:
//
//   - Owned instruments (Counter/Gauge/Histogram) for hot-path code that
//     increments directly: one atomic op per observation, no allocation.
//   - Func-backed series and Samplers for state that already lives in
//     someone else's atomics (wire connection counters, the cluster node's
//     fence counters, per-partition lease stats): the value is read at
//     scrape time, so the hot path pays nothing at all.
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use, but counters are normally created through Registry.Counter so they
// render.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; deltas are rare and uncontended
// in this codebase — hot-path occupancy is func-backed instead).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts duration observations into fixed exponential buckets.
// Observations and scrapes are both lock-free; a scrape taken mid-observation
// may see the bucket increment before the sum (or vice versa), which the
// Prometheus exposition model explicitly tolerates.
type Histogram struct {
	bounds    []float64 // upper bounds in seconds, ascending
	buckets   []atomic.Uint64
	inf       atomic.Uint64 // observations above the last bound
	sumNs     atomic.Uint64 // total observed time in nanoseconds
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one observation's request ID to a bucket: the trace handle
// behind "which op landed here?". Each bucket retains the slowest recent
// observation offered with a request ID; exemplars are immutable once
// published.
type Exemplar struct {
	// RID is the observation's request ID — a trace key for /debug/trace.
	RID string
	// DurationNanos is the observed latency.
	DurationNanos int64
	// AtUnixNano is when the observation was made.
	AtUnixNano int64
}

// exemplarMaxAge bounds how long a bucket's exemplar blocks replacement by a
// faster one, so exemplars track recent traffic instead of the all-time max.
const exemplarMaxAge = int64(60 * time.Second)

// NewHistogram builds a histogram over the given ascending upper bounds (in
// seconds). Registry.Histogram is the normal constructor.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be ascending")
	}
	return &Histogram{
		bounds:    bounds,
		buckets:   make([]atomic.Uint64, len(bounds)),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// ExpBuckets returns n ascending bounds starting at start seconds, each
// factor times the previous: the standard latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// LatencyBuckets is the default bucket layout for the service's operation
// latencies: 500ns up to ~8.4s in powers of four, covering the in-process
// sub-microsecond path and a saturated server's multi-second retry tail.
func LatencyBuckets() []float64 { return ExpBuckets(500e-9, 4, 13) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveEx(d, "")
}

// ObserveEx records one duration and, when rid is non-empty, offers it as
// the bucket's exemplar. The bucket keeps the offer when it is slower than
// the current exemplar or the current one has aged out, so each bucket
// advertises the request ID of its slowest recent landing — the handle to
// pull that op's phase breakdown from /debug/trace.
func (h *Histogram) ObserveEx(d time.Duration, rid string) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	idx := len(h.bounds)
	// Linear scan: bucket counts are small (~13) and the branch history is
	// dominated by the low buckets, so this beats a binary search in
	// practice and keeps the loop allocation- and bounds-check-friendly.
	for i, b := range h.bounds {
		if s <= b {
			idx = i
			break
		}
	}
	if idx == len(h.bounds) {
		h.inf.Add(1)
	} else {
		h.buckets[idx].Add(1)
	}
	h.sumNs.Add(uint64(d))
	if rid != "" {
		h.offerExemplar(idx, rid, d)
	}
}

// offerExemplar publishes rid as bucket idx's exemplar unless a slower,
// still-fresh one is already in place. Lock-free: a lost CAS means a
// concurrent offer won; retry against the new incumbent.
func (h *Histogram) offerExemplar(idx int, rid string, d time.Duration) {
	now := time.Now().UnixNano()
	slot := &h.exemplars[idx]
	for {
		cur := slot.Load()
		if cur != nil && cur.DurationNanos >= int64(d) && now-cur.AtUnixNano < exemplarMaxAge {
			return
		}
		if slot.CompareAndSwap(cur, &Exemplar{RID: rid, DurationNanos: int64(d), AtUnixNano: now}) {
			return
		}
	}
}

// Exemplars snapshots the per-bucket exemplars (aligned with Bounds, +Inf
// appended); entries are nil where no observation carried a request ID.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Snapshot returns the per-bucket counts (aligned with Bounds, with the
// +Inf bucket appended), the total observation count, and the sum.
func (h *Histogram) Snapshot() (counts []uint64, count uint64, sum time.Duration) {
	counts = make([]uint64, len(h.buckets)+1)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		count += c
	}
	c := h.inf.Load()
	counts[len(h.buckets)] = c
	count += c
	return counts, count, time.Duration(h.sumNs.Load())
}

// Bounds returns the bucket upper bounds in seconds (without +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }
