// Package shard composes many independent LevelArrays (or comparator
// arrays) behind one global namespace, the scaling layer on top of the
// paper's single-array algorithm.
//
// A Sharded array owns S independent shards (S a power of two), each a
// complete activity array with its own slot spaces and its own probe bounds.
// The global namespace interleaves the shards at a fixed stride: the global
// name of local name l on shard s is s*stride + l, where stride is the
// largest per-shard namespace size. Every handle is assigned a home
// shard — round-robin by default, or by a cheap rng-derived hash — and a Get
// probes only the home shard in the common case, so the paper's O(1)-expected
// per-array bound is preserved while aggregate capacity and throughput scale
// with S.
//
// When the home shard is full, the handle steals: it retries the Get on a
// bounded number of sibling shards chosen by the configured StealPolicy
// (least-occupied first by default, driven by a cached per-shard occupancy),
// and as a last resort sweeps every shard in order, so ErrFull is returned
// only when no shard had a free slot at probe time — the cross-shard analogue
// of the LevelArray's backup-array guarantee. Shards whose slot spaces are
// uninstrumented bitmaps are swept word-at-a-time (tas.Claimer.ClaimRange, a
// full shard costs one atomic load per 64 slots) with the claimed slot bound
// to the shard's sub-handle; probe accounting still records slots examined.
//
// Collect and Occupancies merge per-shard results word-at-a-time: shards
// whose slot spaces are uninstrumented tas.BitmapSpace values are scanned
// with AppendSet/OccupancyFast (one atomic load per 64 slots), so a
// cross-shard scan costs the same per slot as a single-array scan.
package shard

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/tas"
)

// StealKind selects the policy used to pick sibling shards when the home
// shard is full.
type StealKind int

const (
	// StealOccupancy tries siblings in ascending cached-occupancy order, so
	// a stealing handle lands on the emptiest shard it knows about. Default.
	StealOccupancy StealKind = iota
	// StealRandom tries uniformly random siblings.
	StealRandom
	// StealSequential tries siblings in ring order starting at home+1.
	StealSequential
)

// String returns the policy name as accepted by the cmd/ drivers' -steal flag.
func (k StealKind) String() string {
	switch k {
	case StealOccupancy:
		return "occupancy"
	case StealRandom:
		return "random"
	case StealSequential:
		return "sequential"
	default:
		return fmt.Sprintf("StealKind(%d)", int(k))
	}
}

// StealKindNames lists the valid -steal flag values.
const StealKindNames = "occupancy, random, sequential"

// ParseStealKind maps a policy name to a StealKind.
func ParseStealKind(name string) (StealKind, bool) {
	switch name {
	case "occupancy", "":
		return StealOccupancy, true
	case "random":
		return StealRandom, true
	case "sequential", "ring":
		return StealSequential, true
	default:
		return 0, false
	}
}

// AffinityKind selects how handles are assigned their home shard.
type AffinityKind int

const (
	// AffinityRoundRobin hands out homes cyclically, which balances the
	// resident load exactly. Default.
	AffinityRoundRobin AffinityKind = iota
	// AffinityRandom derives the home from a SplitMix64 hash of the handle's
	// seed, the cheap stateless assignment for callers that create handles
	// from many goroutines and care only about expected balance.
	AffinityRandom
)

// DefaultShards returns the default shard count: GOMAXPROCS rounded up to a
// power of two, one contention domain per processor.
func DefaultShards() int {
	return ceilPow2(runtime.GOMAXPROCS(0))
}

// ceilPow2 returns the smallest power of two >= n (minimum 1).
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Config parameterizes a Sharded array.
type Config struct {
	// Shards is S, the number of independent shards. It must be a power of
	// two; zero selects DefaultShards (GOMAXPROCS rounded up).
	Shards int

	// Capacity is the total contention bound across all shards. Each shard
	// is built for ceil(Capacity/Shards) participants, so the aggregate
	// capacity is at least Capacity. It must be at least 1.
	Capacity int

	// Steal selects the steal-target policy used when the home shard is
	// full. The zero value is StealOccupancy.
	Steal StealKind

	// StealAttempts bounds the number of policy-guided steal attempts before
	// the deterministic all-shard sweep. Zero selects min(Shards-1, 2): two
	// guided choices keep the steal path cheap while the sweep preserves the
	// aggregate-capacity guarantee.
	StealAttempts int

	// Affinity selects how handles are assigned home shards. The zero value
	// is AffinityRoundRobin.
	Affinity AffinityKind

	// Seed is the base seed; per-shard and per-handle seeds are derived from
	// it, so runs with equal configurations make equal probe choices.
	Seed uint64

	// Array is the configuration template for the default LevelArray shards.
	// Capacity and Seed are overridden per shard; every other field (Epsilon,
	// ProbesPerBatch, RNG, Space, Instrument, ...) applies to each shard
	// as-is. Ignored when NewShard is set.
	Array core.Config

	// NewShard, when non-nil, replaces the default LevelArray factory: it is
	// called once per shard with the shard index, the per-shard capacity and
	// a derived seed, and may build any activity.Array (e.g. a comparator
	// algorithm, for the sharded-baseline benchmarks). Shards whose slot
	// spaces are reachable as *tas.BitmapSpace keep the word-level merged
	// Collect; any other array falls back to its own Collect plus offsetting.
	NewShard func(shard, capacity int, seed uint64) (activity.Array, error)

	// CountProbes, when true, wraps every shard's slot spaces in a
	// tas.CountingSpace (stacked on top of any user Instrument decorator) so
	// ShardStats reports per-shard probe counts. Like every Instrument use
	// this routes the shard's hot path through the tas.Space interface; leave
	// it false to keep the dispatch-free fast path.
	CountProbes bool
}

// validate reports the first problem with the configuration.
func (c Config) validate() error {
	if c.Capacity < 1 {
		return fmt.Errorf("shard: capacity %d must be at least 1", c.Capacity)
	}
	if c.Shards < 0 {
		return fmt.Errorf("shard: shard count %d must not be negative", c.Shards)
	}
	if c.Shards > 0 && c.Shards&(c.Shards-1) != 0 {
		return fmt.Errorf("shard: shard count %d must be a power of two", c.Shards)
	}
	if c.StealAttempts < 0 {
		return fmt.Errorf("shard: steal attempts %d must not be negative", c.StealAttempts)
	}
	switch c.Steal {
	case StealOccupancy, StealRandom, StealSequential:
	default:
		return fmt.Errorf("shard: unknown steal policy %d (valid: %s)", int(c.Steal), StealKindNames)
	}
	switch c.Affinity {
	case AffinityRoundRobin, AffinityRandom:
	default:
		return fmt.Errorf("shard: unknown affinity kind %d", int(c.Affinity))
	}
	return nil
}

// bitmapView is the word-level fast path into one shard's slot spaces. main
// is nil when the shard's spaces are not uninstrumented bitmap spaces, in
// which case the merged scans fall back to the shard's own Collect.
type bitmapView struct {
	main     *tas.BitmapSpace
	backup   *tas.BitmapSpace // nil for single-space arrays
	mainSize int              // local offset of the first backup name
}

// pad keeps the per-shard counters on distinct cache lines so steal-path
// bookkeeping on one shard does not bounce its siblings' counters.
type shardCounters struct {
	occupancy atomic.Int64  // cached occupancy, refreshed by scans and steals
	stealsIn  atomic.Uint64 // registrations stolen into this shard
	homeFulls atomic.Uint64 // Gets that found this shard full as their home
	_         [40]byte
}

// Sharded is S independent activity arrays behind one global namespace. It
// implements activity.Array and is safe for concurrent use under the same
// rules as a single array: any number of goroutines on distinct handles,
// concurrent Collects allowed.
type Sharded struct {
	cfg      Config
	perShard int // capacity of each shard
	stride   int // global-name stride between shards, a multiple of 64

	shards   []activity.Array
	views    []bitmapView
	counting []countingPair // per-shard probe counters, only when CountProbes
	counters []shardCounters

	nextHome  atomic.Uint64
	failures  atomic.Uint64 // Gets that returned ErrFull after the full sweep
	handleIDs atomic.Uint64
	seeds     *rng.SeedSequence
}

// countingPair holds the probe-counting decorators of one shard's spaces.
type countingPair struct {
	main, backup *tas.CountingSpace
}

var _ activity.Array = (*Sharded)(nil)

// New builds a Sharded array from cfg.
func New(cfg Config) (*Sharded, error) {
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards()
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.StealAttempts == 0 {
		cfg.StealAttempts = cfg.Shards - 1
		if cfg.StealAttempts > 2 {
			cfg.StealAttempts = 2
		}
	}
	s := &Sharded{
		cfg:      cfg,
		perShard: (cfg.Capacity + cfg.Shards - 1) / cfg.Shards,
		shards:   make([]activity.Array, cfg.Shards),
		views:    make([]bitmapView, cfg.Shards),
		counters: make([]shardCounters, cfg.Shards),
		seeds:    rng.NewSeedSequence(cfg.Seed ^ 0x5A4D),
	}
	if cfg.CountProbes {
		s.counting = make([]countingPair, cfg.Shards)
	}
	for i := range s.shards {
		sh, err := s.buildShard(i)
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
		s.shards[i] = sh
		s.views[i] = viewOf(sh)
		if size := sh.Size(); size > s.stride {
			s.stride = size
		}
	}
	return s, nil
}

// MustNew is New but panics on error; for tests and examples.
func MustNew(cfg Config) *Sharded {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// buildShard constructs shard i from the factory or the LevelArray template.
func (s *Sharded) buildShard(i int) (activity.Array, error) {
	seed := s.seeds.Next()
	if s.cfg.NewShard != nil {
		return s.cfg.NewShard(i, s.perShard, seed)
	}
	tmpl := s.cfg.Array
	tmpl.Capacity = s.perShard
	tmpl.Seed = seed
	if s.cfg.CountProbes {
		user := tmpl.Instrument
		shardIdx := i
		tmpl.Instrument = func(role core.SpaceRole, inner tas.Space) tas.Space {
			if user != nil {
				if wrapped := user(role, inner); wrapped != nil {
					inner = wrapped
				}
			}
			counting := tas.NewCountingSpace(inner)
			if role == core.RoleBackup {
				s.counting[shardIdx].backup = counting
			} else {
				s.counting[shardIdx].main = counting
			}
			return counting
		}
	}
	return core.New(tmpl)
}

// viewOf extracts the word-level bitmap view of a shard, if it has one.
func viewOf(sh activity.Array) bitmapView {
	switch a := sh.(type) {
	case interface {
		MainSpace() tas.Space
		BackupSpace() tas.Space
	}:
		main, mok := a.MainSpace().(*tas.BitmapSpace)
		backup, bok := a.BackupSpace().(*tas.BitmapSpace)
		if mok && bok {
			return bitmapView{main: main, backup: backup, mainSize: main.Len()}
		}
	case interface{ Space() tas.Space }:
		if main, ok := a.Space().(*tas.BitmapSpace); ok {
			return bitmapView{main: main}
		}
	}
	return bitmapView{}
}

// Shards returns S, the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns shard i, for tests and analysis.
func (s *Sharded) Shard(i int) activity.Array { return s.shards[i] }

// ShardCapacity returns the per-shard contention bound.
func (s *Sharded) ShardCapacity() int { return s.perShard }

// Stride returns the global-name stride: local name l on shard i has global
// name i*Stride() + l.
func (s *Sharded) Stride() int { return s.stride }

// ShardOf decomposes a global name into its shard index and local name.
func (s *Sharded) ShardOf(name int) (shard, local int) {
	return name / s.stride, name % s.stride
}

// Capacity returns the configured total contention bound. The aggregate
// capacity across shards is Shards()*ShardCapacity(), which may exceed it
// when Capacity is not divisible by the shard count.
func (s *Sharded) Capacity() int { return s.cfg.Capacity }

// Size returns the global namespace size, Shards()*Stride(). Names in the
// alignment gap between a shard's Size() and the stride are never issued.
func (s *Sharded) Size() int { return len(s.shards) * s.stride }

// Handle returns a new per-participant handle with a freshly assigned home
// shard. Handles are not safe for concurrent use.
func (s *Sharded) Handle() activity.Handle {
	seed := s.seeds.Next()
	var home int
	if s.cfg.Affinity == AffinityRandom {
		// A cheap stateless hash: one SplitMix64 scramble of the handle
		// seed, masked down to the power-of-two shard count.
		home = int(rng.NewSplitMix64(seed).Uint64() & uint64(len(s.shards)-1))
	} else {
		home = int(s.nextHome.Add(1)-1) & (len(s.shards) - 1)
	}
	return s.HandleWithHome(home)
}

// HandleWithHome returns a new handle pinned to the given home shard,
// bypassing the affinity policy. It exists for callers that already maintain
// their own placement (e.g. one shard per NUMA node or per listener) and for
// tests that need deterministic steal behaviour.
func (s *Sharded) HandleWithHome(home int) *Handle {
	if home < 0 || home >= len(s.shards) {
		panic(fmt.Sprintf("shard: home shard %d out of range [0, %d)", home, len(s.shards)))
	}
	return &Handle{
		arr:  s,
		id:   s.handleIDs.Add(1),
		home: home,
		subs: make([]activity.Handle, len(s.shards)),
		rng:  rng.New(s.cfg.Array.RNG, s.seeds.Next()),
	}
}

// Collect appends every currently observed held global name to dst and
// returns the extended slice. Shards with bitmap views are merged
// word-at-a-time (AppendSet with the shard's global base, one atomic load
// per 64 slots); other shards are collected locally and offset. The scan has
// the same validity guarantee as a single array's Collect and refreshes the
// cached per-shard occupancy as a side effect.
func (s *Sharded) Collect(dst []int) []int {
	for i, sh := range s.shards {
		base := i * s.stride
		before := len(dst)
		if v := s.views[i]; v.main != nil {
			dst = v.main.AppendSet(dst, base)
			if v.backup != nil {
				dst = v.backup.AppendSet(dst, base+v.mainSize)
			}
		} else {
			start := len(dst)
			dst = sh.Collect(dst)
			for j := start; j < len(dst); j++ {
				dst[j] += base
			}
		}
		s.counters[i].occupancy.Store(int64(len(dst) - before))
	}
	return dst
}

// occupancyOf measures shard i's current occupancy, word-at-a-time when the
// shard has a bitmap view, and refreshes the cache.
func (s *Sharded) occupancyOf(i int) int {
	var occ int
	if v := s.views[i]; v.main != nil {
		occ = v.main.OccupancyFast()
		if v.backup != nil {
			occ += v.backup.OccupancyFast()
		}
	} else {
		occ = len(s.shards[i].Collect(nil))
	}
	s.counters[i].occupancy.Store(int64(occ))
	return occ
}

// Occupancies returns the current occupancy of every shard (index i holds
// shard i's count), refreshing the steal-target cache.
func (s *Sharded) Occupancies() []int {
	out := make([]int, len(s.shards))
	for i := range s.shards {
		out[i] = s.occupancyOf(i)
	}
	return out
}

// FailedGets returns the number of Gets that returned ErrFull after sweeping
// every shard.
func (s *Sharded) FailedGets() uint64 { return s.failures.Load() }

// ShardStats is the per-shard observability record. Occupancy is freshly
// measured; StealsIn and HomeFulls are exact counters maintained off the hot
// path (they are only touched when a home shard is found full); Probes, Wins
// and Resets are populated only when the array was built with CountProbes
// (they require the counting decorator, which the uninstrumented hot path
// deliberately avoids).
type ShardStats struct {
	Shard     int
	Capacity  int
	Occupancy int
	StealsIn  uint64
	HomeFulls uint64
	Probes    uint64
	Wins      uint64
	Resets    uint64
}

// ShardStats returns one record per shard.
func (s *Sharded) ShardStats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i := range out {
		out[i] = ShardStats{
			Shard:     i,
			Capacity:  s.perShard,
			Occupancy: s.occupancyOf(i),
			StealsIn:  s.counters[i].stealsIn.Load(),
			HomeFulls: s.counters[i].homeFulls.Load(),
		}
		if s.counting != nil {
			merge := func(c *tas.CountingSpace) {
				if c == nil {
					return
				}
				counts := c.Counters()
				out[i].Probes += counts.Probes
				out[i].Wins += counts.Wins
				out[i].Resets += counts.Resets
			}
			merge(s.counting[i].main)
			merge(s.counting[i].backup)
		}
	}
	return out
}
