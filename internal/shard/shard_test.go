package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/arraytest"
	"github.com/levelarray/levelarray/internal/baselines"
	"github.com/levelarray/levelarray/internal/core"
)

// TestConformance runs the shared activity-array suite against sharded
// compositions. S=1 checks that the composition is a faithful wrapper; S=2
// checks the full suite across a real shard boundary. (Higher shard counts
// are exercised by the sharded-specific tests below; the suite's namespace
// bound assumes single-array layout slack, which 8 backup arrays exceed.)
func TestConformance(t *testing.T) {
	for _, shards := range []int{1, 2} {
		shards := shards
		t.Run(fmt.Sprintf("S=%d", shards), func(t *testing.T) {
			arraytest.Run(t, func(capacity int) activity.Array {
				return MustNew(Config{Shards: shards, Capacity: capacity, Seed: 42})
			})
		})
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero capacity", Config{Shards: 2}},
		{"negative capacity", Config{Shards: 2, Capacity: -5}},
		{"non-power-of-two shards", Config{Shards: 3, Capacity: 8}},
		{"negative shards", Config{Shards: -2, Capacity: 8}},
		{"negative steal attempts", Config{Shards: 2, Capacity: 8, StealAttempts: -1}},
		{"unknown steal kind", Config{Shards: 2, Capacity: 8, Steal: StealKind(99)}},
		{"unknown affinity kind", Config{Shards: 2, Capacity: 8, Affinity: AffinityKind(7)}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config %+v", tc.name, tc.cfg)
		}
	}
	if _, err := New(Config{Capacity: 8}); err != nil {
		t.Fatalf("default shard count rejected: %v", err)
	}
}

func TestDefaultShardsPowerOfTwo(t *testing.T) {
	s := DefaultShards()
	if s < 1 || s&(s-1) != 0 {
		t.Fatalf("DefaultShards() = %d, not a power of two", s)
	}
	for in, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16} {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestParseStealKind(t *testing.T) {
	for name, want := range map[string]StealKind{
		"":           StealOccupancy,
		"occupancy":  StealOccupancy,
		"random":     StealRandom,
		"sequential": StealSequential,
		"ring":       StealSequential,
	} {
		got, ok := ParseStealKind(name)
		if !ok || got != want {
			t.Errorf("ParseStealKind(%q) = (%v, %v), want %v", name, got, ok, want)
		}
	}
	if _, ok := ParseStealKind("bogus"); ok {
		t.Error("ParseStealKind accepted bogus name")
	}
	for _, k := range []StealKind{StealOccupancy, StealRandom, StealSequential} {
		if round, ok := ParseStealKind(k.String()); !ok || round != k {
			t.Errorf("String/Parse round trip failed for %v", k)
		}
	}
}

// TestGlobalNameLayout checks the shard*stride+local decomposition and that
// names from different shards never collide.
func TestGlobalNameLayout(t *testing.T) {
	arr := MustNew(Config{Shards: 4, Capacity: 32, Seed: 3})
	if arr.Size() != arr.Shards()*arr.Stride() {
		t.Fatalf("Size() = %d, want Shards*Stride = %d", arr.Size(), arr.Shards()*arr.Stride())
	}
	handles := make([]*Handle, 32)
	for i := range handles {
		handles[i] = arr.HandleWithHome(i % 4)
		name, err := handles[i].Get()
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		shardIdx, local := arr.ShardOf(name)
		if shardIdx != i%4 {
			t.Fatalf("name %d decodes to shard %d, want home %d (no steal expected)", name, shardIdx, i%4)
		}
		if local < 0 || local >= arr.Shard(shardIdx).Size() {
			t.Fatalf("name %d decodes to local %d outside shard %d namespace [0, %d)",
				name, local, shardIdx, arr.Shard(shardIdx).Size())
		}
	}
	for _, h := range handles {
		if err := h.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
}

// TestGlobalNameUniquenessUnderChurn is the acceptance-criteria test: under
// concurrent Get/Free churn across shards, no two handles ever hold the same
// global name at the same time. Ownership is tracked in an atomic claim
// table keyed by global name; a failed claim is a uniqueness violation.
func TestGlobalNameUniquenessUnderChurn(t *testing.T) {
	const (
		shards     = 8
		capacity   = 64
		goroutines = 32
		iterations = 500
	)
	arr := MustNew(Config{Shards: shards, Capacity: capacity, Seed: 99})
	claims := make([]atomic.Int32, arr.Size())
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := arr.Handle()
			for i := 0; i < iterations; i++ {
				name, err := h.Get()
				if err != nil {
					t.Errorf("worker %d iteration %d: Get: %v", g, i, err)
					return
				}
				if !claims[name].CompareAndSwap(0, 1) {
					t.Errorf("worker %d: global name %d already held by another handle", g, name)
					return
				}
				claims[name].Store(0)
				if err := h.Free(); err != nil {
					t.Errorf("worker %d iteration %d: Free: %v", g, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if leftover := arr.Collect(nil); len(leftover) != 0 {
		t.Fatalf("Collect after churn returned %v, want empty", leftover)
	}
}

// TestStealWhenHomeFull fills one shard's entire namespace and checks that a
// handle homed there steals a name from a sibling, with the steal recorded
// in the handle statistics and the per-shard counters.
func TestStealWhenHomeFull(t *testing.T) {
	for _, steal := range []StealKind{StealOccupancy, StealRandom, StealSequential} {
		steal := steal
		t.Run(steal.String(), func(t *testing.T) {
			arr := MustNew(Config{Shards: 2, Capacity: 8, Steal: steal, Seed: 5})
			// Fill shard 0's whole namespace (capacity is only the contention
			// bound; ErrFull requires every slot taken) through its own
			// handles, bypassing the sharded routing.
			fillers := fillShard(t, arr, 0)
			h := arr.HandleWithHome(0)
			name, err := h.Get()
			if err != nil {
				t.Fatalf("Get with full home: %v", err)
			}
			shardIdx, _ := arr.ShardOf(name)
			if shardIdx != 1 {
				t.Fatalf("name %d decodes to shard %d, want steal into shard 1", name, shardIdx)
			}
			if !h.LastStolen() {
				t.Error("LastStolen() = false after a cross-shard Get")
			}
			if got := h.Stats().Steals; got != 1 {
				t.Errorf("Stats().Steals = %d, want 1", got)
			}
			stats := arr.ShardStats()
			if stats[0].HomeFulls == 0 {
				t.Errorf("shard 0 HomeFulls = 0, want at least 1")
			}
			if stats[1].StealsIn != 1 {
				t.Errorf("shard 1 StealsIn = %d, want 1", stats[1].StealsIn)
			}
			if err := h.Free(); err != nil {
				t.Fatalf("Free of stolen name: %v", err)
			}
			for _, f := range fillers {
				if err := f.Free(); err != nil {
					t.Fatalf("filler Free: %v", err)
				}
			}
		})
	}
}

// fillShard registers handles directly on shard idx until its namespace is
// exhausted, returning the handles that hold its slots.
func fillShard(t *testing.T, arr *Sharded, idx int) []activity.Handle {
	t.Helper()
	var fillers []activity.Handle
	for {
		h := arr.Shard(idx).Handle()
		if _, err := h.Get(); err != nil {
			if errors.Is(err, activity.ErrFull) {
				return fillers
			}
			t.Fatalf("filling shard %d: %v", idx, err)
		}
		fillers = append(fillers, h)
	}
}

// TestAggregateCapacity checks that the composition serves at least the
// configured total capacity even when it does not divide evenly, and that
// ErrFull is returned (and counted) only once every shard is truly full.
func TestAggregateCapacity(t *testing.T) {
	arr := MustNew(Config{Shards: 4, Capacity: 10, Seed: 17})
	if got := arr.ShardCapacity(); got != 3 {
		t.Fatalf("ShardCapacity() = %d, want ceil(10/4) = 3", got)
	}
	var handles []activity.Handle
	for i := 0; i < arr.Capacity(); i++ {
		h := arr.Handle()
		if _, err := h.Get(); err != nil {
			t.Fatalf("Get %d within configured capacity: %v", i, err)
		}
		handles = append(handles, h)
	}
	// Beyond the configured capacity, Gets may still succeed until every
	// slot of every shard is taken; after that, ErrFull.
	for {
		h := arr.Handle()
		_, err := h.Get()
		if err == nil {
			handles = append(handles, h)
			continue
		}
		if !errors.Is(err, activity.ErrFull) {
			t.Fatalf("Get beyond capacity: %v", err)
		}
		break
	}
	if got := arr.FailedGets(); got != 1 {
		t.Errorf("FailedGets() = %d, want 1", got)
	}
	collected := arr.Collect(nil)
	if len(collected) != len(handles) {
		t.Fatalf("Collect returned %d names with %d held", len(collected), len(handles))
	}
	for _, h := range handles {
		if err := h.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
}

// TestCollectDuringChurnValidity checks the paper's validity property at the
// sharded level: every collected global name was registered at some point
// during the scan. Churners run only on shards 0 and 2 of four (within
// per-shard capacity, so no steals), making any name on shards 1 or 3 — or
// in the alignment gap past a shard's namespace — a fabricated name and a
// hard failure. Suspected-unregistered names are re-checked against the
// monotone ever-registered table after the churn stops, so the check is
// race-free. Runs meaningfully under -race.
func TestCollectDuringChurnValidity(t *testing.T) {
	const (
		shards     = 4
		capacity   = 64 // 16 per shard
		churners   = 8  // 4 per active shard, within per-shard capacity
		iterations = 400
	)
	arr := MustNew(Config{Shards: shards, Capacity: capacity, Seed: 23})
	everRegistered := make([]atomic.Bool, arr.Size())

	var workers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < churners; g++ {
		home := (g % 2) * 2 // shards 0 and 2 only
		h := arr.HandleWithHome(home)
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < iterations; i++ {
				name, err := h.Get()
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				everRegistered[name].Store(true)
				if err := h.Free(); err != nil {
					t.Errorf("Free: %v", err)
					return
				}
			}
		}()
	}

	type suspect struct{ name int }
	suspectsCh := make(chan []suspect, 1)
	collectorErr := make(chan error, 1)
	go func() {
		var suspects []suspect
		buf := make([]int, 0, arr.Size())
		for {
			select {
			case <-stop:
				suspectsCh <- suspects
				collectorErr <- nil
				return
			default:
			}
			buf = arr.Collect(buf[:0])
			for _, name := range buf {
				shardIdx, local := arr.ShardOf(name)
				if shardIdx < 0 || shardIdx >= shards || local >= arr.Shard(shardIdx).Size() {
					collectorErr <- fmt.Errorf("collected name %d outside any shard namespace", name)
					suspectsCh <- nil
					return
				}
				if shardIdx == 1 || shardIdx == 3 {
					collectorErr <- fmt.Errorf("collected name %d on idle shard %d — never registered", name, shardIdx)
					suspectsCh <- nil
					return
				}
				if !everRegistered[name].Load() {
					// Possibly a registration whose bookkeeping store has not
					// landed yet; re-verify after the churn stops.
					suspects = append(suspects, suspect{name: name})
				}
			}
		}
	}()

	workers.Wait()
	close(stop)
	if err := <-collectorErr; err != nil {
		t.Fatal(err)
	}
	for _, s := range <-suspectsCh {
		if !everRegistered[s.name].Load() {
			t.Fatalf("collected name %d was never registered during the run", s.name)
		}
	}
}

// TestMergedCollectGenericShards checks that the merged Collect falls back
// correctly (with global offsetting) for shards without a bitmap fast path.
func TestMergedCollectGenericShards(t *testing.T) {
	arr := MustNew(Config{
		Shards:   2,
		Capacity: 8,
		Seed:     7,
		Array:    core.Config{Space: core.SpacePadded},
	})
	if arr.views[0].main != nil {
		t.Fatal("padded substrate unexpectedly produced a bitmap view")
	}
	want := make(map[int]bool)
	var handles []activity.Handle
	for i := 0; i < 6; i++ {
		h := arr.Handle()
		name, err := h.Get()
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		want[name] = true
		handles = append(handles, h)
	}
	got := arr.Collect(nil)
	if len(got) != len(want) {
		t.Fatalf("Collect returned %d names, want %d", len(got), len(want))
	}
	for _, name := range got {
		if !want[name] {
			t.Fatalf("Collect returned unexpected name %d (held: %v)", name, want)
		}
	}
	for _, h := range handles {
		if err := h.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
}

// TestShardedBaselineFactory shards a comparator algorithm through the
// NewShard factory and checks uniqueness plus the single-space bitmap view.
func TestShardedBaselineFactory(t *testing.T) {
	arr := MustNew(Config{
		Shards:   4,
		Capacity: 32,
		Seed:     11,
		NewShard: func(_, capacity int, seed uint64) (activity.Array, error) {
			return baselines.New(baselines.KindRandom, baselines.Config{Capacity: capacity, Seed: seed})
		},
	})
	if arr.views[0].main == nil || arr.views[0].backup != nil {
		t.Fatal("baseline shard should expose a single-space bitmap view")
	}
	seen := make(map[int]bool)
	var handles []activity.Handle
	for i := 0; i < 32; i++ {
		h := arr.Handle()
		name, err := h.Get()
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if seen[name] {
			t.Fatalf("duplicate global name %d", name)
		}
		seen[name] = true
		handles = append(handles, h)
	}
	if got := arr.Collect(nil); len(got) != 32 {
		t.Fatalf("Collect returned %d names, want 32", len(got))
	}
	for _, h := range handles {
		if err := h.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
}

// TestOccupanciesAndCache checks the per-shard occupancy measurement and the
// steal-ordering cache refresh.
func TestOccupanciesAndCache(t *testing.T) {
	arr := MustNew(Config{Shards: 4, Capacity: 16, Seed: 31})
	var handles []activity.Handle
	for i := 0; i < 10; i++ {
		h := arr.Handle()
		if _, err := h.Get(); err != nil {
			t.Fatalf("Get: %v", err)
		}
		handles = append(handles, h)
	}
	occ := arr.Occupancies()
	total := 0
	for i, o := range occ {
		total += o
		if cached := arr.counters[i].occupancy.Load(); int(cached) != o {
			t.Errorf("shard %d cache %d != measured %d", i, cached, o)
		}
	}
	if total != 10 {
		t.Fatalf("Occupancies sum = %d, want 10", total)
	}
	for _, h := range handles {
		if err := h.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
}

// TestShardStatsCountProbes checks that probe counts are surfaced through
// the Instrument-based counting decorator only when requested.
func TestShardStatsCountProbes(t *testing.T) {
	counted := MustNew(Config{Shards: 2, Capacity: 8, Seed: 13, CountProbes: true})
	plain := MustNew(Config{Shards: 2, Capacity: 8, Seed: 13})
	ops := 0
	for _, arr := range []*Sharded{counted, plain} {
		h := arr.Handle()
		for i := 0; i < 20; i++ {
			if _, err := h.Get(); err != nil {
				t.Fatalf("Get: %v", err)
			}
			if err := h.Free(); err != nil {
				t.Fatalf("Free: %v", err)
			}
			ops++
		}
	}
	var probes, wins, resets uint64
	for _, s := range counted.ShardStats() {
		probes += s.Probes
		wins += s.Wins
		resets += s.Resets
	}
	if probes < 20 || wins != 20 || resets != 20 {
		t.Fatalf("counted stats probes=%d wins=%d resets=%d, want >=20/20/20", probes, wins, resets)
	}
	for _, s := range plain.ShardStats() {
		if s.Probes != 0 || s.Wins != 0 {
			t.Fatalf("uninstrumented shard %d reports probes=%d wins=%d, want 0", s.Shard, s.Probes, s.Wins)
		}
	}
	// The uninstrumented composition must keep the shards' dispatch-free
	// bitmap fast path; the counted one necessarily gives it up.
	if plain.views[0].main == nil {
		t.Error("uninstrumented shard lost its bitmap view")
	}
	if counted.views[0].main != nil {
		t.Error("counted shard unexpectedly kept a raw bitmap view")
	}
}

// TestRaceStress churns handles, collectors and steal paths concurrently at
// several shard counts; its value is running under -race in CI.
func TestRaceStress(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("S=%d", shards), func(t *testing.T) {
			const (
				goroutines = 16
				iterations = 200
			)
			// Tight capacity (2 per shard) forces frequent home-full events
			// and steals while goroutines churn.
			arr := MustNew(Config{Shards: shards, Capacity: 2 * shards, Seed: uint64(shards)})
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for g := 0; g < goroutines; g++ {
				h := arr.Handle()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iterations; i++ {
						name, err := h.Get()
						if err != nil {
							if errors.Is(err, activity.ErrFull) {
								continue // oversubscribed by design
							}
							t.Errorf("Get: %v", err)
							return
						}
						if name < 0 || name >= arr.Size() {
							t.Errorf("name %d out of range", name)
							return
						}
						if err := h.Free(); err != nil {
							t.Errorf("Free: %v", err)
							return
						}
					}
				}()
			}
			var collectors sync.WaitGroup
			collectors.Add(1)
			go func() {
				defer collectors.Done()
				buf := make([]int, 0, arr.Size())
				for {
					select {
					case <-stop:
						return
					default:
					}
					buf = arr.Collect(buf[:0])
					arr.Occupancies()
					arr.ShardStats()
				}
			}()
			wg.Wait()
			close(stop)
			collectors.Wait()
		})
	}
}
