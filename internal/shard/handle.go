package shard

import (
	"errors"
	"sort"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/rng"
)

// Handle is the per-participant endpoint of a Sharded array. It owns one
// lazily created sub-handle per shard (the home sub-handle in the common
// case; sibling sub-handles only materialize on the steal path) and reports
// probe statistics at the sharded level: a Get satisfied by a steal counts as
// one operation whose probe count spans every shard it touched. Handles are
// not safe for concurrent use.
type Handle struct {
	arr  *Sharded
	id   uint64
	home int
	subs []activity.Handle
	rng  rng.Source

	name int // global name, valid when held
	cur  int // shard holding the name, valid when held
	held bool

	lastProbes int
	lastStolen bool
	stats      activity.ProbeStats

	order []stealTarget // scratch for steal-target ordering
}

var (
	_ activity.Handle     = (*Handle)(nil)
	_ activity.Identified = (*Handle)(nil)
)

// ID returns the handle's stable identity: a counter assigned at Handle()
// time, unique within the Sharded array (across all homes) and never reused.
func (h *Handle) ID() uint64 { return h.id }

// stealTarget pairs a sibling shard with its cached occupancy for ordering.
type stealTarget struct {
	shard int
	occ   int64
}

// Home returns the handle's home shard.
func (h *Handle) Home() int { return h.home }

// sub returns the sub-handle for shard s, creating it on first use.
func (h *Handle) sub(s int) activity.Handle {
	if h.subs[s] == nil {
		h.subs[s] = h.arr.shards[s].Handle()
	}
	return h.subs[s]
}

// Get registers the participant and returns the acquired global name.
//
// The home shard is tried first; with honest randomness and a load within
// the home shard's capacity this is the whole story and costs exactly one
// single-array Get. A full home shard triggers the steal path: up to
// StealAttempts siblings chosen by the steal policy, then a deterministic
// sweep of every shard (home included, since a concurrent Free may have
// made room). ErrFull is returned only when the sweep found every shard
// full, preserving the aggregate-capacity guarantee.
func (h *Handle) Get() (int, error) {
	if h.held {
		return 0, activity.ErrAlreadyRegistered
	}
	probes := 0
	local, err := h.tryShard(h.home, &probes)
	if err == nil {
		return h.acquire(h.home, local, probes, false), nil
	}
	if !errors.Is(err, activity.ErrFull) {
		return 0, err
	}
	h.arr.counters[h.home].homeFulls.Add(1)
	h.arr.counters[h.home].occupancy.Store(int64(h.arr.perShard))

	for _, target := range h.stealOrder() {
		local, err := h.tryShard(target.shard, &probes)
		if err == nil {
			h.arr.counters[target.shard].stealsIn.Add(1)
			h.arr.counters[target.shard].occupancy.Add(1)
			return h.acquire(target.shard, local, probes, true), nil
		}
		if !errors.Is(err, activity.ErrFull) {
			return 0, err
		}
		h.arr.counters[target.shard].occupancy.Store(int64(h.arr.perShard))
	}

	// Last resort: sweep every shard in order. Like the LevelArray's own
	// linear sweep this is only reachable under loads at or beyond the
	// aggregate capacity; it keeps Get's failure condition exact. Shards
	// with a word-level bitmap view are swept with ClaimRange — one atomic
	// load per 64 slots instead of a full per-slot probe sequence — and the
	// claimed slot is bound to the shard's sub-handle; other shards fall
	// back to a full sub-handle Get.
	for s := range h.arr.shards {
		local, examined, won, swept := h.claimShard(s)
		probes += examined
		if won {
			if s != h.home {
				h.arr.counters[s].stealsIn.Add(1)
			}
			return h.acquire(s, local, probes, s != h.home), nil
		}
		if swept {
			continue
		}
		local, err := h.tryShard(s, &probes)
		if err == nil {
			if s != h.home {
				h.arr.counters[s].stealsIn.Add(1)
			}
			return h.acquire(s, local, probes, s != h.home), nil
		}
		if !errors.Is(err, activity.ErrFull) {
			return 0, err
		}
	}
	h.lastProbes = probes
	h.lastStolen = false
	h.stats.RecordFailure(probes)
	h.arr.failures.Add(1)
	return 0, activity.ErrFull
}

// claimShard is the word-level arm of the last-resort sweep: it claims the
// first free slot of shard s directly on its bitmap view (main array first,
// then backup, the order a healthy Get fills them in) and binds the shard's
// sub-handle to the claimed name, so Free works exactly as after a normal
// Get. examined is the number of slots the sweep covered — probe accounting
// records slots examined, not the O(slots/64) word atomics actually issued —
// and swept reports whether the word-level sweep ran at all: it is false for
// shards without a bitmap view or without a bindable sub-handle, which the
// caller sweeps with a full sub-handle Get instead.
func (h *Handle) claimShard(s int) (local, examined int, won, swept bool) {
	v := h.arr.views[s]
	if v.main == nil || v.backup == nil {
		return 0, 0, false, false
	}
	binder, ok := h.sub(s).(interface{ BindClaimed(int) error })
	if !ok {
		return 0, 0, false, false
	}
	if slot, claimed := v.main.ClaimRange(0, v.main.Len()); claimed {
		if err := binder.BindClaimed(slot); err != nil {
			v.main.Reset(slot)
			return 0, 0, false, false
		}
		return slot, slot + 1, true, true
	}
	examined = v.main.Len()
	if slot, claimed := v.backup.ClaimRange(0, v.backup.Len()); claimed {
		local = v.mainSize + slot
		if err := binder.BindClaimed(local); err != nil {
			v.backup.Reset(slot)
			return 0, 0, false, false
		}
		return local, examined + slot + 1, true, true
	}
	return 0, examined + v.backup.Len(), false, true
}

// tryShard attempts one Get on shard s, folding its probe count into probes.
func (h *Handle) tryShard(s int, probes *int) (int, error) {
	sub := h.sub(s)
	local, err := sub.Get()
	*probes += sub.LastProbes()
	return local, err
}

// acquire records a successful Get and returns the global name.
func (h *Handle) acquire(s, local, probes int, stolen bool) int {
	h.cur = s
	h.name = s*h.arr.stride + local
	h.held = true
	h.lastProbes = probes
	h.lastStolen = stolen
	usedBackup := false
	if bh, ok := h.subs[s].(interface{ LastUsedBackup() bool }); ok {
		usedBackup = bh.LastUsedBackup()
	}
	h.stats.Record(probes, usedBackup)
	if stolen {
		h.stats.RecordSteal()
	}
	return h.name
}

// stealOrder returns up to StealAttempts sibling shards in the order the
// configured policy wants them probed. The slice aliases the handle's
// scratch buffer and is only valid until the next call.
func (h *Handle) stealOrder() []stealTarget {
	s := h.arr
	siblings := len(s.shards) - 1
	if siblings == 0 {
		return nil
	}
	h.order = h.order[:0]
	switch s.cfg.Steal {
	case StealRandom:
		// Sample without replacement from the sibling ring: a random start
		// and a random odd stride visit each sibling at most once (the
		// stride is coprime with the power-of-two ring size).
		mask := len(s.shards) - 1
		start := h.rng.Intn(len(s.shards))
		step := h.rng.Intn(len(s.shards))&^1 | 1
		for i := 0; i < len(s.shards) && len(h.order) < s.cfg.StealAttempts; i++ {
			t := (start + i*step) & mask
			if t != h.home {
				h.order = append(h.order, stealTarget{shard: t})
			}
		}
	case StealSequential:
		for i := 1; i <= siblings && len(h.order) < s.cfg.StealAttempts; i++ {
			h.order = append(h.order, stealTarget{shard: (h.home + i) & (len(s.shards) - 1)})
		}
	default: // StealOccupancy
		for t := range s.shards {
			if t != h.home {
				h.order = append(h.order, stealTarget{shard: t, occ: s.counters[t].occupancy.Load()})
			}
		}
		sort.Slice(h.order, func(i, j int) bool { return h.order[i].occ < h.order[j].occ })
		if len(h.order) > s.cfg.StealAttempts {
			h.order = h.order[:s.cfg.StealAttempts]
		}
	}
	return h.order
}

// Adopt claims a specific global name — the restore path's primitive. The
// name is mapped to its owning shard and adopted there via the shard's own
// Adopt (a single test-and-set), so a name already held anywhere fails with
// ErrFull. Like core.Handle.Adopt it is excluded from cumulative probe
// statistics: replayed history must not skew the paper's probe counts.
func (h *Handle) Adopt(name int) error {
	if h.held {
		return activity.ErrAlreadyRegistered
	}
	if name < 0 || name >= len(h.arr.shards)*h.arr.stride {
		return activity.ErrFull
	}
	s, local := name/h.arr.stride, name%h.arr.stride
	adopter, ok := h.sub(s).(interface{ Adopt(int) error })
	if !ok {
		return activity.ErrFull
	}
	if err := adopter.Adopt(local); err != nil {
		return err
	}
	h.cur = s
	h.name = name
	h.held = true
	h.lastProbes = 1
	h.lastStolen = false
	return nil
}

// Free releases the global name acquired by the most recent Get.
func (h *Handle) Free() error {
	if !h.held {
		return activity.ErrNotRegistered
	}
	if err := h.subs[h.cur].Free(); err != nil {
		return err
	}
	// The occupancy cache is deliberately not decremented here: it is a
	// steal-ordering heuristic refreshed by scans and steal events, and
	// keeping Free free of bookkeeping keeps the uncontended hot path at
	// exactly one sub-handle call.
	h.held = false
	h.stats.RecordFree()
	return nil
}

// Name returns the currently held global name, if any.
func (h *Handle) Name() (int, bool) {
	if !h.held {
		return 0, false
	}
	return h.name, true
}

// LastProbes returns the number of test-and-set trials performed by the most
// recent Get across every shard it touched.
func (h *Handle) LastProbes() int { return h.lastProbes }

// LastStolen reports whether the most recent Get was satisfied by a shard
// other than the handle's home.
func (h *Handle) LastStolen() bool { return h.lastStolen }

// Stats returns the cumulative sharded-level probe statistics: one Op per
// successful Get regardless of how many shards it touched, with Steals
// counting the Gets satisfied away from home.
func (h *Handle) Stats() activity.ProbeStats { return h.stats }
