package shard

import (
	"errors"
	"testing"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
)

// sweepCosts returns the slots-examined cost of one full-shard Get (batch
// trials plus both linear sweeps) and of one word-level sweep (both spaces),
// for shards built from the default LevelArray template.
func sweepCosts(t *testing.T, arr *Sharded) (fullGet, swept int) {
	t.Helper()
	la, ok := arr.Shard(0).(*core.LevelArray)
	if !ok {
		t.Fatalf("shard 0 is %T, want *core.LevelArray", arr.Shard(0))
	}
	layout := la.Layout()
	swept = layout.MainSize() + layout.BackupSize()
	return layout.NumBatches() + swept, swept
}

// TestClaimSweepFindsLastSlot drives a Get into the deterministic all-shard
// sweep with the only free slot sitting in the last shard's backup array: the
// word-level ClaimRange sweep must claim it, bind the shard's sub-handle (so
// Free works normally), account probes as slots examined, and record the
// steal. The steal policy is pinned to one sequential attempt so the
// configuration is fully deterministic.
func TestClaimSweepFindsLastSlot(t *testing.T) {
	arr := MustNew(Config{
		Shards:        4,
		Capacity:      16, // 4 per shard
		Steal:         StealSequential,
		StealAttempts: 1,
		Seed:          11,
	})
	fullGet, swept := sweepCosts(t, arr)

	// Fill shards 0..2 completely; fill shard 3 except its very last backup
	// slot, which only the final sweep (not the home Get, not the steal
	// attempt on shard 1) can reach.
	var fillers []activity.Handle
	for s := 0; s < 3; s++ {
		fillers = append(fillers, fillShard(t, arr, s)...)
	}
	lastLocal := arr.Shard(3).Size() - 1
	for _, f := range fillShard(t, arr, 3) {
		if name, _ := f.Name(); name == lastLocal {
			if err := f.Free(); err != nil {
				t.Fatalf("freeing the target slot: %v", err)
			}
			continue
		}
		fillers = append(fillers, f)
	}

	h := arr.HandleWithHome(0)
	name, err := h.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if want := 3*arr.Stride() + lastLocal; name != want {
		t.Fatalf("Get = %d, want the last backup slot of shard 3 (%d)", name, want)
	}
	if !h.LastStolen() {
		t.Error("LastStolen() = false after a sweep acquisition away from home")
	}
	if got := h.Stats().Steals; got != 1 {
		t.Errorf("Stats().Steals = %d, want 1", got)
	}
	if got := h.Stats().BackupOps; got != 1 {
		t.Errorf("Stats().BackupOps = %d, want 1 (bound slot is in the backup region)", got)
	}
	if got := arr.ShardStats()[3].StealsIn; got != 1 {
		t.Errorf("shard 3 StealsIn = %d, want 1", got)
	}
	// Probes count slots examined: two full-shard Gets (home, one steal
	// attempt) plus word-level sweeps of shards 0-2 and all of shard 3 up to
	// and including its last slot.
	if want := 2*fullGet + 3*swept + swept; h.LastProbes() != want {
		t.Fatalf("LastProbes = %d, want %d slots examined", h.LastProbes(), want)
	}
	// The bound registration is visible to Collect and releasable normally.
	found := false
	for _, c := range arr.Collect(nil) {
		if c == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Collect does not report the swept-up name %d", name)
	}
	if err := h.Free(); err != nil {
		t.Fatalf("Free of bound name: %v", err)
	}
	if _, err := arr.HandleWithHome(2).Get(); err != nil {
		t.Fatalf("Get after Free (slot must be reusable): %v", err)
	}
	for _, f := range fillers {
		if err := f.Free(); err != nil {
			t.Fatalf("filler Free: %v", err)
		}
	}
}

// TestClaimSweepErrFull pins down the failure path: with every slot of every
// shard taken, the sweep must examine the whole aggregate namespace (probe
// accounting in slots), return ErrFull exactly once, and recover as soon as
// one slot frees up.
func TestClaimSweepErrFull(t *testing.T) {
	arr := MustNew(Config{
		Shards:        4,
		Capacity:      16,
		Steal:         StealSequential,
		StealAttempts: 1,
		Seed:          13,
	})
	fullGet, swept := sweepCosts(t, arr)
	var fillers []activity.Handle
	for s := 0; s < arr.Shards(); s++ {
		fillers = append(fillers, fillShard(t, arr, s)...)
	}

	h := arr.HandleWithHome(0)
	if _, err := h.Get(); !errors.Is(err, activity.ErrFull) {
		t.Fatalf("Get on a full composition = %v, want ErrFull", err)
	}
	if got := arr.FailedGets(); got != 1 {
		t.Errorf("FailedGets() = %d, want 1", got)
	}
	// Home Get + one steal attempt (both full per-shard Gets), then a
	// word-level sweep of all four shards.
	if want := 2*fullGet + 4*swept; h.LastProbes() != want {
		t.Fatalf("failed-Get LastProbes = %d, want %d slots examined", h.LastProbes(), want)
	}
	if err := fillers[len(fillers)-1].Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if _, err := h.Get(); err != nil {
		t.Fatalf("Get after one Free: %v", err)
	}
}
