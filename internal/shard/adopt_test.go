package shard

import (
	"errors"
	"testing"

	"github.com/levelarray/levelarray/internal/activity"
)

// TestAdoptClaimsExactName covers the restore primitive: Adopt must claim
// the precise global name, collide with an existing holder, and round-trip
// through Free like a normal Get.
func TestAdoptClaimsExactName(t *testing.T) {
	arr := MustNew(Config{Shards: 4, Capacity: 64, Seed: 7})
	h := arr.Handle().(*Handle)
	// A name in a non-home shard: adoption must route by stride, not home.
	name := 3*arr.Stride() + 2
	if err := h.Adopt(name); err != nil {
		t.Fatalf("Adopt(%d): %v", name, err)
	}
	if got, ok := h.Name(); !ok || got != name {
		t.Fatalf("Name() = %d,%v want %d,true", got, ok, name)
	}
	if h.LastProbes() != 1 {
		t.Fatalf("LastProbes = %d, want 1 (adoption is one TAS)", h.LastProbes())
	}

	// A second adopter of the same name must fail with ErrFull.
	h2 := arr.Handle().(*Handle)
	if err := h2.Adopt(name); !errors.Is(err, activity.ErrFull) {
		t.Fatalf("second Adopt = %v, want ErrFull", err)
	}
	// Out-of-range names fail without panicking.
	if err := h2.Adopt(-1); !errors.Is(err, activity.ErrFull) {
		t.Fatalf("Adopt(-1) = %v, want ErrFull", err)
	}
	if err := h2.Adopt(arr.Size()); !errors.Is(err, activity.ErrFull) {
		t.Fatalf("Adopt(Size()) = %v, want ErrFull", err)
	}

	// Free releases it; the name becomes adoptable again.
	if err := h.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := h2.Adopt(name); err != nil {
		t.Fatalf("re-Adopt after free: %v", err)
	}
	// A held handle refuses a second registration.
	if err := h2.Adopt(name + 1); !errors.Is(err, activity.ErrAlreadyRegistered) {
		t.Fatalf("Adopt while held = %v, want ErrAlreadyRegistered", err)
	}
	// Adoption is excluded from cumulative stats.
	if got := h2.Stats().Ops; got != 0 {
		t.Fatalf("Stats().Ops = %d after adopt-only history, want 0", got)
	}
}
