// Package registry maps algorithm names to activity.Array constructors. The
// benchmark harness, the cmd/ drivers and the examples use it so that every
// experiment can be run against any of the four algorithms (LevelArray,
// Random, LinearProbing, Deterministic) by name, exactly as the paper's
// figures compare them — plus the Sharded composition, which can wrap any of
// them in S independent shards (Options.Shards).
package registry

import (
	"fmt"
	"sort"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/baselines"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/tas"
)

// Algorithm identifies one of the registration algorithms under evaluation.
type Algorithm int

// The four algorithms compared in the paper's evaluation section, plus the
// sharded LevelArray composition (this repository's scaling layer, not part
// of the paper's comparison).
const (
	LevelArray Algorithm = iota + 1
	Random
	LinearProbing
	Deterministic
	Sharded
)

// String returns the display name used in figures and tables.
func (a Algorithm) String() string {
	switch a {
	case LevelArray:
		return "LevelArray"
	case Random:
		return "Random"
	case LinearProbing:
		return "LinearProbing"
	case Deterministic:
		return "Deterministic"
	case Sharded:
		return "Sharded"
	default:
		return "unknown"
	}
}

// All returns every algorithm, in the order the paper's figures list them.
func All() []Algorithm {
	return []Algorithm{LevelArray, Random, LinearProbing, Deterministic}
}

// Randomized returns the three algorithms shown in Figure 2 (the
// deterministic scan is omitted there because it is off-scale).
func Randomized() []Algorithm {
	return []Algorithm{LevelArray, Random, LinearProbing}
}

// Parse maps a (case-sensitive) name or short alias to an Algorithm.
func Parse(name string) (Algorithm, error) {
	switch name {
	case "LevelArray", "levelarray", "level", "la":
		return LevelArray, nil
	case "Random", "random", "rand":
		return Random, nil
	case "LinearProbing", "linearprobing", "linear", "lp":
		return LinearProbing, nil
	case "Deterministic", "deterministic", "det":
		return Deterministic, nil
	case "Sharded", "sharded", "sla", "sharded-levelarray":
		return Sharded, nil
	default:
		return 0, fmt.Errorf("registry: unknown algorithm %q (known: %s)", name, KnownNames())
	}
}

// KnownNames returns a comma-separated list of canonical algorithm names.
func KnownNames() string {
	names := make([]string, 0, len(All())+1)
	for _, a := range All() {
		names = append(names, a.String())
	}
	names = append(names, Sharded.String())
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// Options carries the construction parameters shared by all algorithms.
type Options struct {
	// Capacity is n, the maximum number of simultaneously held names.
	Capacity int
	// SizeFactor scales comparator arrays (L = SizeFactor·Capacity). The
	// LevelArray translates it into its ε parameter (SizeFactor = 1+ε), so a
	// factor of 2 yields the paper's standard 2n main array. Zero selects 2.
	SizeFactor float64
	// ProbesPerBatch sets the LevelArray's per-batch trial count c. Zero
	// selects the implementation default of 1. Ignored by the comparators.
	ProbesPerBatch int
	// RNG selects the generator family. Zero selects Marsaglia xorshift.
	RNG rng.Kind
	// Seed is the base seed for per-handle generators.
	Seed uint64
	// Space selects the slot substrate layout for every algorithm. The zero
	// value is the word-packed bitmap.
	Space tas.Kind
	// Probe selects the LevelArray's write-side probing strategy: per-slot
	// test-and-set (the paper-faithful default) or word claims on the bitmap
	// substrate. Ignored by the comparator algorithms, which define their
	// own probe disciplines.
	Probe core.ProbeMode
	// CompactSlots is a deprecated alias for Space: tas.KindCompact, only
	// honored when Space is left at its zero value.
	CompactSlots bool
	// Shards, when above 1, wraps the chosen algorithm in a shard.Sharded
	// composition of that many independent per-shard arrays (the value must
	// be a power of two). Zero and 1 select the plain single array, except
	// for the Sharded algorithm itself, where zero selects the default
	// shard count (GOMAXPROCS rounded up to a power of two).
	Shards int
	// Steal selects the steal-target policy of the sharded composition. The
	// zero value is occupancy-guided stealing. Ignored when unsharded.
	Steal shard.StealKind
	// StealAttempts bounds the policy-guided steal attempts before the
	// all-shard sweep. Zero selects the shard package default. Ignored when
	// unsharded.
	StealAttempts int
}

// New constructs an activity array implementing the chosen algorithm.
func New(algo Algorithm, opts Options) (activity.Array, error) {
	sizeFactor := opts.SizeFactor
	if sizeFactor == 0 {
		sizeFactor = 2
	}
	if algo == Sharded || opts.Shards > 1 {
		return newSharded(algo, opts, sizeFactor)
	}
	switch algo {
	case LevelArray:
		epsilon := sizeFactor - 1
		if epsilon <= 0 {
			return nil, fmt.Errorf("registry: LevelArray requires a size factor above 1, got %v", sizeFactor)
		}
		return core.New(core.Config{
			Capacity:       opts.Capacity,
			Epsilon:        epsilon,
			ProbesPerBatch: opts.ProbesPerBatch,
			RNG:            opts.RNG,
			Seed:           opts.Seed,
			Space:          opts.Space,
			Probe:          opts.Probe,
			CompactSlots:   opts.CompactSlots,
		})
	case Random, LinearProbing, Deterministic:
		var kind baselines.Kind
		switch algo {
		case Random:
			kind = baselines.KindRandom
		case LinearProbing:
			kind = baselines.KindLinearProbing
		default:
			kind = baselines.KindDeterministic
		}
		return baselines.New(kind, baselines.Config{
			Capacity:     opts.Capacity,
			SizeFactor:   sizeFactor,
			RNG:          opts.RNG,
			Seed:         opts.Seed,
			Space:        opts.Space,
			CompactSlots: opts.CompactSlots,
		})
	default:
		return nil, fmt.Errorf("registry: unknown algorithm %d", int(algo))
	}
}

// newSharded wraps the chosen algorithm in a shard.Sharded composition. The
// Sharded algorithm name shards the LevelArray; any other algorithm with
// Options.Shards > 1 is sharded through a per-shard factory, so the
// comparator algorithms can be benchmarked in sharded form too.
func newSharded(algo Algorithm, opts Options, sizeFactor float64) (activity.Array, error) {
	cfg := shard.Config{
		Shards:        opts.Shards,
		Capacity:      opts.Capacity,
		Steal:         opts.Steal,
		StealAttempts: opts.StealAttempts,
		Seed:          opts.Seed,
	}
	inner := algo
	if inner == Sharded {
		inner = LevelArray
	}
	switch inner {
	case LevelArray:
		epsilon := sizeFactor - 1
		if epsilon <= 0 {
			return nil, fmt.Errorf("registry: LevelArray requires a size factor above 1, got %v", sizeFactor)
		}
		cfg.Array = core.Config{
			Epsilon:        epsilon,
			ProbesPerBatch: opts.ProbesPerBatch,
			RNG:            opts.RNG,
			Space:          opts.Space,
			Probe:          opts.Probe,
			CompactSlots:   opts.CompactSlots,
		}
	case Random, LinearProbing, Deterministic:
		var kind baselines.Kind
		switch inner {
		case Random:
			kind = baselines.KindRandom
		case LinearProbing:
			kind = baselines.KindLinearProbing
		default:
			kind = baselines.KindDeterministic
		}
		cfg.Array.RNG = opts.RNG // sharded handles draw steal choices from the same family
		cfg.NewShard = func(_, capacity int, seed uint64) (activity.Array, error) {
			return baselines.New(kind, baselines.Config{
				Capacity:     capacity,
				SizeFactor:   sizeFactor,
				RNG:          opts.RNG,
				Seed:         seed,
				Space:        opts.Space,
				CompactSlots: opts.CompactSlots,
			})
		}
	default:
		return nil, fmt.Errorf("registry: unknown algorithm %d", int(algo))
	}
	return shard.New(cfg)
}

// MustNew is New but panics on error; for tests and examples.
func MustNew(algo Algorithm, opts Options) activity.Array {
	arr, err := New(algo, opts)
	if err != nil {
		panic(err)
	}
	return arr
}
