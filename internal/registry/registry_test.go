package registry

import (
	"strings"
	"testing"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/arraytest"
	"github.com/levelarray/levelarray/internal/baselines"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/tas"
)

func TestConformanceAllAlgorithms(t *testing.T) {
	for _, algo := range All() {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			arraytest.Run(t, func(capacity int) activity.Array {
				return MustNew(algo, Options{Capacity: capacity, Seed: 99})
			})
		})
	}
}

func TestParse(t *testing.T) {
	cases := map[string]Algorithm{
		"LevelArray":    LevelArray,
		"levelarray":    LevelArray,
		"la":            LevelArray,
		"level":         LevelArray,
		"Random":        Random,
		"random":        Random,
		"rand":          Random,
		"LinearProbing": LinearProbing,
		"linear":        LinearProbing,
		"lp":            LinearProbing,
		"Deterministic": Deterministic,
		"det":           Deterministic,
	}
	for name, want := range cases {
		got, err := Parse(name)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = (%v, %v), want %v", name, got, err, want)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse(bogus) did not error")
	} else if !strings.Contains(err.Error(), "LevelArray") {
		t.Fatalf("error %q does not list known names", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, algo := range All() {
		parsed, err := Parse(algo.String())
		if err != nil || parsed != algo {
			t.Errorf("Parse(%q) = (%v, %v), want %v", algo.String(), parsed, err, algo)
		}
	}
	if Algorithm(0).String() != "unknown" || Algorithm(99).String() != "unknown" {
		t.Fatal("out-of-range algorithms should stringify as unknown")
	}
}

func TestAllAndRandomized(t *testing.T) {
	if len(All()) != 4 {
		t.Fatalf("All() has %d entries, want 4", len(All()))
	}
	randomized := Randomized()
	if len(randomized) != 3 {
		t.Fatalf("Randomized() has %d entries, want 3", len(randomized))
	}
	for _, a := range randomized {
		if a == Deterministic {
			t.Fatal("Randomized() includes Deterministic")
		}
	}
}

func TestNewConcreteTypes(t *testing.T) {
	la := MustNew(LevelArray, Options{Capacity: 16})
	if _, ok := la.(*core.LevelArray); !ok {
		t.Fatalf("LevelArray constructor returned %T", la)
	}
	for algo, wantKind := range map[Algorithm]baselines.Kind{
		Random:        baselines.KindRandom,
		LinearProbing: baselines.KindLinearProbing,
		Deterministic: baselines.KindDeterministic,
	} {
		arr := MustNew(algo, Options{Capacity: 16})
		b, ok := arr.(*baselines.Array)
		if !ok {
			t.Fatalf("%v constructor returned %T", algo, arr)
		}
		if b.Kind() != wantKind {
			t.Fatalf("%v constructor returned kind %v", algo, b.Kind())
		}
	}
}

func TestSizeFactorMapping(t *testing.T) {
	// SizeFactor 2 must give all algorithms roughly 2n slots (the LevelArray
	// additionally keeps its n-slot backup).
	const n = 64
	for _, algo := range All() {
		arr := MustNew(algo, Options{Capacity: n, SizeFactor: 2})
		switch algo {
		case LevelArray:
			if arr.Size() < 2*n || arr.Size() > 3*n {
				t.Errorf("LevelArray size %d outside [2n, 3n]", arr.Size())
			}
		default:
			if arr.Size() != 2*n {
				t.Errorf("%v size %d, want %d", algo, arr.Size(), 2*n)
			}
		}
	}
	// SizeFactor 4 (the paper's largest sweep point).
	big := MustNew(Random, Options{Capacity: n, SizeFactor: 4})
	if big.Size() != 4*n {
		t.Fatalf("Random with factor 4: size %d, want %d", big.Size(), 4*n)
	}
	bigLA := MustNew(LevelArray, Options{Capacity: n, SizeFactor: 4})
	if bigLA.Size() <= MustNew(LevelArray, Options{Capacity: n, SizeFactor: 2}).Size() {
		t.Fatal("LevelArray did not grow with the size factor")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Algorithm(42), Options{Capacity: 4}); err == nil {
		t.Fatal("unknown algorithm did not error")
	}
	if _, err := New(LevelArray, Options{Capacity: 0}); err == nil {
		t.Fatal("zero capacity did not error")
	}
	if _, err := New(Random, Options{Capacity: -1}); err == nil {
		t.Fatal("negative capacity did not error")
	}
	// SizeFactor 1 makes the LevelArray epsilon zero, which is rejected.
	if _, err := New(LevelArray, Options{Capacity: 8, SizeFactor: 1}); err == nil {
		t.Fatal("size factor 1 for LevelArray did not error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(LevelArray, Options{Capacity: 0})
}

func TestKnownNames(t *testing.T) {
	names := KnownNames()
	for _, want := range []string{"LevelArray", "Random", "LinearProbing", "Deterministic"} {
		if !strings.Contains(names, want) {
			t.Errorf("KnownNames() = %q missing %q", names, want)
		}
	}
}

func TestParseSharded(t *testing.T) {
	for _, name := range []string{"Sharded", "sharded", "sla", "sharded-levelarray"} {
		got, err := Parse(name)
		if err != nil || got != Sharded {
			t.Errorf("Parse(%q) = (%v, %v), want Sharded", name, got, err)
		}
	}
	if Sharded.String() != "Sharded" {
		t.Errorf("Sharded.String() = %q", Sharded.String())
	}
	if !strings.Contains(KnownNames(), "Sharded") {
		t.Errorf("KnownNames() = %q missing Sharded", KnownNames())
	}
}

func TestShardedConformance(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(Sharded, Options{Capacity: capacity, Seed: 99, Shards: 2})
	})
}

func TestShardedConstruction(t *testing.T) {
	// The Sharded algorithm name builds a sharded LevelArray.
	arr, err := New(Sharded, Options{Capacity: 64, Shards: 4, Seed: 1})
	if err != nil {
		t.Fatalf("New(Sharded): %v", err)
	}
	sharded, ok := arr.(*shard.Sharded)
	if !ok {
		t.Fatalf("New(Sharded) returned %T, want *shard.Sharded", arr)
	}
	if sharded.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", sharded.Shards())
	}
	if _, ok := sharded.Shard(0).(*core.LevelArray); !ok {
		t.Fatalf("Sharded shard is %T, want *core.LevelArray", sharded.Shard(0))
	}

	// Options.Shards > 1 wraps any algorithm, including comparators.
	arr, err = New(Random, Options{Capacity: 64, Shards: 2, Seed: 1})
	if err != nil {
		t.Fatalf("New(Random, Shards=2): %v", err)
	}
	sharded, ok = arr.(*shard.Sharded)
	if !ok {
		t.Fatalf("New(Random, Shards=2) returned %T, want *shard.Sharded", arr)
	}
	if ba, ok := sharded.Shard(0).(*baselines.Array); !ok || ba.Kind() != baselines.KindRandom {
		t.Fatalf("sharded Random shard is %T, want *baselines.Array of KindRandom", sharded.Shard(0))
	}

	// Uniqueness smoke test through the sharded comparator.
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		h := arr.Handle()
		name, err := h.Get()
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if seen[name] {
			t.Fatalf("duplicate name %d from sharded Random", name)
		}
		seen[name] = true
	}

	// Invalid shard counts and size factors are rejected.
	if _, err := New(Sharded, Options{Capacity: 64, Shards: 3}); err == nil {
		t.Error("New accepted non-power-of-two shard count")
	}
	if _, err := New(Sharded, Options{Capacity: 64, Shards: 2, SizeFactor: 1}); err == nil {
		t.Error("New accepted sharded LevelArray with size factor 1")
	}
}

// TestProbeModePlumbing checks that Options.Probe reaches the LevelArray in
// both the plain and the sharded construction, and that word mode behaves
// through the registry.
func TestProbeModePlumbing(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(LevelArray, Options{Capacity: capacity, Seed: 71, Probe: core.ProbeWord})
	})

	arr, err := New(Sharded, Options{Capacity: 32, Shards: 2, Seed: 3, Probe: core.ProbeWord})
	if err != nil {
		t.Fatalf("New(Sharded, Probe=word): %v", err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 32; i++ {
		h := arr.Handle()
		name, err := h.Get()
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if seen[name] {
			t.Fatalf("duplicate name %d from sharded word-mode LevelArray", name)
		}
		seen[name] = true
	}

	// Word mode is rejected with incompatible substrates at construction.
	if _, err := New(LevelArray, Options{Capacity: 32, Probe: core.ProbeWord, Space: tas.KindCompact}); err == nil {
		t.Error("New accepted Probe word on a compact substrate")
	}
}
