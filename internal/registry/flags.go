package registry

import (
	"fmt"
	"math"
	"net"
	"net/url"
	"strconv"
	"strings"

	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/tas"
	"github.com/levelarray/levelarray/internal/wal"
)

// Flag-vocabulary helpers shared by the cmd/ drivers (larun, benchshard,
// laserve, laload): every enumerated flag is validated up front through one
// of these functions, so a typo fails with a one-line error naming every
// registered option instead of deep in construction — and the vocabulary
// lives in exactly one place.

// Canonical flag vocabularies, suitable for flag usage strings. The
// registry's own algorithm names come from KnownNames.
const (
	// ValidRNGNames lists the -rng flag values.
	ValidRNGNames = "xorshift, xorshift32, lehmer, splitmix"
	// ValidSpaceNames lists the -space flag values.
	ValidSpaceNames = "bitmap, bitmap-padded, padded, compact"
	// ValidShardCounts describes the -shards flag domain.
	ValidShardCounts = "0 (auto: GOMAXPROCS rounded up), 1 (unsharded), or a power of two (2, 4, 8, ...)"
	// ValidPercentRange describes percentage-valued flags.
	ValidPercentRange = "0..100"
	// ValidPartitionCounts describes the cluster -partitions flag domain.
	ValidPartitionCounts = "0 (auto: 8) or a power of two (1, 2, 4, 8, ...)"
	// ValidPeersFormat describes the cluster -peers flag format.
	ValidPeersFormat = "comma-separated http(s) base URLs, one per member, e.g. http://10.0.0.1:8080,http://10.0.0.2:8080"
	// ValidProtoNames lists the -proto flag values of the client commands.
	ValidProtoNames = "http, wire"
	// ValidWirePeersFormat describes the cluster -wire-peers flag format.
	ValidWirePeersFormat = "comma-separated host:port endpoints, one per member and index-aligned with -peers, e.g. 10.0.0.1:7101,10.0.0.2:7101"
)

// Proto names a client transport protocol.
type Proto string

// The client transport vocabulary: HTTP/JSON or the binary wire protocol.
const (
	ProtoHTTP Proto = "http"
	ProtoWire Proto = "wire"
)

// DefaultPartitions is the cluster partition count selected by -partitions 0.
const DefaultPartitions = 8

// ParseRNGFlag maps a -rng flag value to its generator kind.
func ParseRNGFlag(name string) (rng.Kind, error) {
	kind, ok := rng.ParseKind(name)
	if !ok {
		return 0, fmt.Errorf("unknown -rng %q (valid: %s)", name, ValidRNGNames)
	}
	return kind, nil
}

// ParseSpaceFlag maps a -space flag value to its substrate kind.
func ParseSpaceFlag(name string) (tas.Kind, error) {
	kind, ok := tas.ParseKind(name)
	if !ok {
		return 0, fmt.Errorf("unknown -space %q (valid: %s)", name, ValidSpaceNames)
	}
	return kind, nil
}

// ParseProbeFlag maps a -probe flag value to its probe mode, enforcing the
// cross-flag constraint that word claims need a bitmap substrate.
func ParseProbeFlag(name string, space tas.Kind) (core.ProbeMode, error) {
	mode, ok := core.ParseProbeMode(name)
	if !ok {
		return 0, fmt.Errorf("unknown -probe %q (valid: %s)", name, core.ProbeModeNames)
	}
	if mode == core.ProbeWord && space != tas.KindBitmap && space != tas.KindBitmapPadded {
		return 0, fmt.Errorf("-probe word requires a bitmap -space (valid: bitmap, bitmap-padded), got %q", space)
	}
	return mode, nil
}

// ParseStealFlag maps a -steal flag value to its steal policy.
func ParseStealFlag(name string) (shard.StealKind, error) {
	kind, ok := shard.ParseStealKind(name)
	if !ok {
		return 0, fmt.Errorf("unknown -steal %q (valid: %s)", name, shard.StealKindNames)
	}
	return kind, nil
}

// ValidateShardCount checks a -shards flag value (0 = auto, 1 = unsharded,
// otherwise a power of two) and resolves 0 to the default shard count.
func ValidateShardCount(shards int) (int, error) {
	if shards < 0 || (shards > 1 && shards&(shards-1) != 0) {
		return 0, fmt.Errorf("invalid -shards %d (valid: %s)", shards, ValidShardCounts)
	}
	if shards == 0 {
		return shard.DefaultShards(), nil
	}
	return shards, nil
}

// ValidatePercent checks a percentage-valued flag.
func ValidatePercent(flagName string, v int) error {
	if v < 0 || v > 100 {
		return fmt.Errorf("invalid -%s %d (valid: %s)", flagName, v, ValidPercentRange)
	}
	return nil
}

// ValidatePartitionCount checks a cluster -partitions flag value (0 = auto,
// otherwise a power of two) and resolves 0 to the default.
func ValidatePartitionCount(partitions int) (int, error) {
	if partitions < 0 || (partitions > 0 && partitions&(partitions-1) != 0) {
		return 0, fmt.Errorf("invalid -partitions %d (valid: %s)", partitions, ValidPartitionCounts)
	}
	if partitions == 0 {
		return DefaultPartitions, nil
	}
	return partitions, nil
}

// ParsePeersFlag splits a cluster -peers flag into the member base URLs,
// trimming whitespace and trailing slashes and validating each entry.
func ParsePeersFlag(peers string) ([]string, error) {
	if strings.TrimSpace(peers) == "" {
		return nil, fmt.Errorf("invalid -peers %q (valid: %s)", peers, ValidPeersFormat)
	}
	parts := strings.Split(peers, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		u, err := url.Parse(p)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("invalid -peers entry %q (valid: %s)", p, ValidPeersFormat)
		}
		out = append(out, p)
	}
	return out, nil
}

// ParseProtoFlag maps a -proto flag value to its transport protocol.
func ParseProtoFlag(name string) (Proto, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "http":
		return ProtoHTTP, nil
	case "wire":
		return ProtoWire, nil
	}
	return "", fmt.Errorf("unknown -proto %q (valid: %s)", name, ValidProtoNames)
}

// ParseWirePeersFlag splits a cluster -wire-peers flag into per-member wire
// endpoints, which must be index-aligned with the -peers list (peerCount
// entries). An empty flag is valid and selects HTTP-only members.
func ParseWirePeersFlag(wirePeers string, peerCount int) ([]string, error) {
	if strings.TrimSpace(wirePeers) == "" {
		return nil, nil
	}
	parts := strings.Split(wirePeers, ",")
	if len(parts) != peerCount {
		return nil, fmt.Errorf("invalid -wire-peers: %d entries for %d peers (valid: %s)", len(parts), peerCount, ValidWirePeersFormat)
	}
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if host, port, err := net.SplitHostPort(p); err != nil || host == "" || port == "" {
			return nil, fmt.Errorf("invalid -wire-peers entry %q (valid: %s)", p, ValidWirePeersFormat)
		}
		out = append(out, p)
	}
	return out, nil
}

// ValidateNodeID checks a cluster -node-id against the parsed peer list.
func ValidateNodeID(nodeID, peerCount int) error {
	if nodeID < 0 || nodeID >= peerCount {
		return fmt.Errorf("invalid -node-id %d (valid: 0..%d, an index into -peers)", nodeID, peerCount-1)
	}
	return nil
}

// ValidMetricsAddrs describes the -metrics-addr flag vocabulary.
const ValidMetricsAddrs = "main (serve /metrics and /debug/pprof on the service listener), off (disable metrics and pprof), or a dedicated host:port to serve them on their own listener"

// MetricsMode says where (whether) a serving process exposes its metrics
// and pprof endpoints.
type MetricsMode int

const (
	// MetricsMain mounts /metrics and /debug/pprof on the service mux.
	MetricsMain MetricsMode = iota
	// MetricsOff disables instrumentation endpoints entirely.
	MetricsOff
	// MetricsDedicated serves them on a separate listener.
	MetricsDedicated
)

// ParseMetricsAddrFlag maps a -metrics-addr flag value to its mode. For
// MetricsDedicated the returned addr is the host:port to listen on;
// otherwise addr is empty.
func ParseMetricsAddrFlag(v string) (MetricsMode, string, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "", "main":
		return MetricsMain, "", nil
	case "off", "none", "disabled":
		return MetricsOff, "", nil
	}
	addr := strings.TrimSpace(v)
	host, port, err := net.SplitHostPort(addr)
	if err != nil || port == "" {
		return 0, "", fmt.Errorf("invalid -metrics-addr %q (valid: %s)", v, ValidMetricsAddrs)
	}
	_ = host // an empty host means all interfaces, like net.Listen
	return MetricsDedicated, addr, nil
}

// ValidWALSyncNames lists the -wal-sync flag values.
const ValidWALSyncNames = "always (fsync before every ack, group-committed), interval (background fsync cadence), never (leave flushing to the OS)"

// ParseWALSyncFlag maps a -wal-sync flag value to its durability policy.
func ParseWALSyncFlag(name string) (wal.SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "always":
		return wal.SyncAlways, nil
	case "interval":
		return wal.SyncInterval, nil
	case "never":
		return wal.SyncNever, nil
	}
	return 0, fmt.Errorf("unknown -wal-sync %q (valid: %s)", name, ValidWALSyncNames)
}

// ValidJoinFormat describes the cluster -join flag format.
const ValidJoinFormat = "empty (boot from -peers/-node-id) or one http(s) base URL of any live member to join through, e.g. http://10.0.0.1:8080"

// ParseJoinFlag validates a cluster -join flag: the seed member a fresh node
// asks for admission. Empty is valid (no join: the node boots from its
// static -peers/-node-id identity); otherwise the value must be a single
// http(s) base URL, returned trimmed with any trailing slash removed.
func ParseJoinFlag(join string) (string, error) {
	seed := strings.TrimRight(strings.TrimSpace(join), "/")
	if seed == "" {
		return "", nil
	}
	if strings.Contains(seed, ",") {
		return "", fmt.Errorf("invalid -join %q: one seed member, not a list (valid: %s)", join, ValidJoinFormat)
	}
	u, err := url.Parse(seed)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("invalid -join %q (valid: %s)", join, ValidJoinFormat)
	}
	return seed, nil
}

// ValidRebalanceThresholds describes the -rebalance-threshold flag domain.
const ValidRebalanceThresholds = "0 (load spreading disabled) or a load-factor gap in (0, 1], e.g. 0.25"

// ParseRebalanceThresholdFlag validates a -rebalance-threshold flag: the
// load-factor gap between the hottest and coolest member above which the
// steward plans a load_spread migration. Zero disables load spreading
// (drain and join_fill migrations still run).
func ParseRebalanceThresholdFlag(v string) (float64, error) {
	s := strings.TrimSpace(v)
	if s == "" {
		return 0, nil
	}
	gap, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(gap) || math.IsInf(gap, 0) || gap < 0 || gap > 1 {
		return 0, fmt.Errorf("invalid -rebalance-threshold %q (valid: %s)", v, ValidRebalanceThresholds)
	}
	return gap, nil
}

// ValidRequestIDFormat describes the accepted X-Request-ID shape, shared by
// the HTTP facade and anything minting IDs for the wire header.
const ValidRequestIDFormat = "1..64 characters drawn from A-Z a-z 0-9 . _ -"

// MaxRequestIDLen bounds an accepted request ID.
const MaxRequestIDLen = 64

// ParseRequestID validates a caller-supplied request ID (e.g. an incoming
// X-Request-ID header). Surrounding whitespace is trimmed; an empty or
// malformed value is rejected so handlers fall back to generating one.
func ParseRequestID(v string) (string, error) {
	id := strings.TrimSpace(v)
	if id == "" {
		return "", fmt.Errorf("empty request id (valid: %s)", ValidRequestIDFormat)
	}
	if len(id) > MaxRequestIDLen {
		return "", fmt.Errorf("request id of %d bytes too long (valid: %s)", len(id), ValidRequestIDFormat)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return "", fmt.Errorf("request id byte %q not allowed (valid: %s)", c, ValidRequestIDFormat)
		}
	}
	return id, nil
}
