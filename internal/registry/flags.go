package registry

import (
	"fmt"

	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/tas"
)

// Flag-vocabulary helpers shared by the cmd/ drivers (larun, benchshard,
// laserve, laload): every enumerated flag is validated up front through one
// of these functions, so a typo fails with a one-line error naming every
// registered option instead of deep in construction — and the vocabulary
// lives in exactly one place.

// Canonical flag vocabularies, suitable for flag usage strings. The
// registry's own algorithm names come from KnownNames.
const (
	// ValidRNGNames lists the -rng flag values.
	ValidRNGNames = "xorshift, xorshift32, lehmer, splitmix"
	// ValidSpaceNames lists the -space flag values.
	ValidSpaceNames = "bitmap, bitmap-padded, padded, compact"
	// ValidShardCounts describes the -shards flag domain.
	ValidShardCounts = "0 (auto: GOMAXPROCS rounded up), 1 (unsharded), or a power of two (2, 4, 8, ...)"
	// ValidPercentRange describes percentage-valued flags.
	ValidPercentRange = "0..100"
)

// ParseRNGFlag maps a -rng flag value to its generator kind.
func ParseRNGFlag(name string) (rng.Kind, error) {
	kind, ok := rng.ParseKind(name)
	if !ok {
		return 0, fmt.Errorf("unknown -rng %q (valid: %s)", name, ValidRNGNames)
	}
	return kind, nil
}

// ParseSpaceFlag maps a -space flag value to its substrate kind.
func ParseSpaceFlag(name string) (tas.Kind, error) {
	kind, ok := tas.ParseKind(name)
	if !ok {
		return 0, fmt.Errorf("unknown -space %q (valid: %s)", name, ValidSpaceNames)
	}
	return kind, nil
}

// ParseProbeFlag maps a -probe flag value to its probe mode, enforcing the
// cross-flag constraint that word claims need a bitmap substrate.
func ParseProbeFlag(name string, space tas.Kind) (core.ProbeMode, error) {
	mode, ok := core.ParseProbeMode(name)
	if !ok {
		return 0, fmt.Errorf("unknown -probe %q (valid: %s)", name, core.ProbeModeNames)
	}
	if mode == core.ProbeWord && space != tas.KindBitmap && space != tas.KindBitmapPadded {
		return 0, fmt.Errorf("-probe word requires a bitmap -space (valid: bitmap, bitmap-padded), got %q", space)
	}
	return mode, nil
}

// ParseStealFlag maps a -steal flag value to its steal policy.
func ParseStealFlag(name string) (shard.StealKind, error) {
	kind, ok := shard.ParseStealKind(name)
	if !ok {
		return 0, fmt.Errorf("unknown -steal %q (valid: %s)", name, shard.StealKindNames)
	}
	return kind, nil
}

// ValidateShardCount checks a -shards flag value (0 = auto, 1 = unsharded,
// otherwise a power of two) and resolves 0 to the default shard count.
func ValidateShardCount(shards int) (int, error) {
	if shards < 0 || (shards > 1 && shards&(shards-1) != 0) {
		return 0, fmt.Errorf("invalid -shards %d (valid: %s)", shards, ValidShardCounts)
	}
	if shards == 0 {
		return shard.DefaultShards(), nil
	}
	return shards, nil
}

// ValidatePercent checks a percentage-valued flag.
func ValidatePercent(flagName string, v int) error {
	if v < 0 || v > 100 {
		return fmt.Errorf("invalid -%s %d (valid: %s)", flagName, v, ValidPercentRange)
	}
	return nil
}
