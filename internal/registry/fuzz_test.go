package registry

import (
	"strings"
	"testing"

	"github.com/levelarray/levelarray/internal/tas"
)

// The Parse*Flag fuzz targets: whatever a user types after a flag — random
// casing, whitespace, control bytes, absurd lengths — parsing must never
// panic, and every rejection must still enumerate the full vocabulary so the
// error is self-documenting. `go test` runs the seed corpus below as plain
// unit tests on every CI run; `go test -fuzz FuzzParseFlagVocabularies`
// explores further.

// fuzzSeedInputs mixes valid spellings, near-misses, and hostile input.
var fuzzSeedInputs = []string{
	"", " ", "\t\n", "xorshift", "XORSHIFT", " xorshift ", "bitmap",
	"bitmap-padded", "Bitmap", "word", "slot", "WORD ", "occupancy",
	"random", "sequential", "rand0m", "\x00\xff", "日本語",
	strings.Repeat("a", 1<<12), "xorshift,lehmer", "-", "--", "nil",
}

func FuzzParseRNGFlag(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		if _, err := ParseRNGFlag(name); err != nil {
			if !strings.Contains(err.Error(), ValidRNGNames) {
				t.Fatalf("ParseRNGFlag(%q) error %q does not enumerate %q", name, err, ValidRNGNames)
			}
		}
	})
}

func FuzzParseSpaceFlag(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		if _, err := ParseSpaceFlag(name); err != nil {
			if !strings.Contains(err.Error(), ValidSpaceNames) {
				t.Fatalf("ParseSpaceFlag(%q) error %q does not enumerate %q", name, err, ValidSpaceNames)
			}
		}
	})
}

func FuzzParseProbeFlag(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s, uint8(tas.KindBitmap))
	}
	f.Add("word", uint8(tas.KindCompact)) // valid mode, incompatible space
	f.Fuzz(func(t *testing.T, name string, space uint8) {
		_, err := ParseProbeFlag(name, tas.Kind(space))
		if err != nil && !strings.Contains(err.Error(), "valid:") {
			t.Fatalf("ParseProbeFlag(%q, %d) error %q does not list valid options", name, space, err)
		}
	})
}

func FuzzParseStealFlag(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		if _, err := ParseStealFlag(name); err != nil {
			if !strings.Contains(err.Error(), "occupancy") {
				t.Fatalf("ParseStealFlag(%q) error %q does not enumerate the policies", name, err)
			}
		}
	})
}

func FuzzParsePeersFlag(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s)
	}
	f.Add("http://127.0.0.1:8080,http://127.0.0.1:8081")
	f.Add("http://a , http://b/")
	f.Add("ftp://nope")
	f.Add("http://")
	f.Add(",,,")
	f.Fuzz(func(t *testing.T, peers string) {
		urls, err := ParsePeersFlag(peers)
		if err != nil {
			if !strings.Contains(err.Error(), ValidPeersFormat) {
				t.Fatalf("ParsePeersFlag(%q) error %q does not describe the format", peers, err)
			}
			return
		}
		if len(urls) == 0 {
			t.Fatalf("ParsePeersFlag(%q) returned no members and no error", peers)
		}
		for _, u := range urls {
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				t.Fatalf("ParsePeersFlag(%q) accepted non-http entry %q", peers, u)
			}
			if strings.HasSuffix(u, "/") {
				t.Fatalf("ParsePeersFlag(%q) left a trailing slash on %q", peers, u)
			}
		}
	})
}

func FuzzParseProtoFlag(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s)
	}
	f.Add("http")
	f.Add("wire")
	f.Add(" WIRE ")
	f.Add("grpc")
	f.Fuzz(func(t *testing.T, name string) {
		proto, err := ParseProtoFlag(name)
		if err != nil {
			if !strings.Contains(err.Error(), ValidProtoNames) {
				t.Fatalf("ParseProtoFlag(%q) error %q does not enumerate %q", name, err, ValidProtoNames)
			}
			return
		}
		if proto != ProtoHTTP && proto != ProtoWire {
			t.Fatalf("ParseProtoFlag(%q) accepted unknown proto %q", name, proto)
		}
	})
}

func FuzzParseWirePeersFlag(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s, 3)
	}
	f.Add("10.0.0.1:7101,10.0.0.2:7101,10.0.0.3:7101", 3)
	f.Add("a:1,b:2", 3)
	f.Add("127.0.0.1:0", 1)
	f.Add(":8080", 1)
	f.Add("noport", 1)
	f.Fuzz(func(t *testing.T, wirePeers string, peerCount int) {
		addrs, err := ParseWirePeersFlag(wirePeers, peerCount)
		if err != nil {
			if !strings.Contains(err.Error(), ValidWirePeersFormat) {
				t.Fatalf("ParseWirePeersFlag(%q, %d) error %q does not describe the format", wirePeers, peerCount, err)
			}
			return
		}
		if addrs != nil && len(addrs) != peerCount {
			t.Fatalf("ParseWirePeersFlag(%q, %d) returned %d entries", wirePeers, peerCount, len(addrs))
		}
	})
}

func FuzzParseAlgorithm(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s)
	}
	f.Add("Sharded")
	f.Add("LevelArray")
	f.Fuzz(func(t *testing.T, name string) {
		if _, err := Parse(name); err != nil {
			if !strings.Contains(err.Error(), KnownNames()) {
				t.Fatalf("Parse(%q) error %q does not enumerate %q", name, err, KnownNames())
			}
		}
	})
}

func FuzzParseMetricsAddrFlag(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s)
	}
	f.Add("main")
	f.Add("off")
	f.Add("127.0.0.1:9100")
	f.Add(":9100")
	f.Add("[::1]:9100")
	f.Add("no-port")
	f.Fuzz(func(t *testing.T, v string) {
		mode, addr, err := ParseMetricsAddrFlag(v)
		if err != nil {
			if !strings.Contains(err.Error(), ValidMetricsAddrs) {
				t.Fatalf("ParseMetricsAddrFlag(%q) error %q does not enumerate %q", v, err, ValidMetricsAddrs)
			}
			return
		}
		if (mode == MetricsDedicated) != (addr != "") {
			t.Fatalf("ParseMetricsAddrFlag(%q) = mode %d with addr %q", v, mode, addr)
		}
	})
}

func FuzzParseRequestID(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s)
	}
	f.Add("la-4f2a-17")
	f.Add("X_y.z-9")
	f.Add(" padded-id ")
	f.Add(strings.Repeat("r", 65))
	f.Add("emoji\U0001F600")
	f.Fuzz(func(t *testing.T, v string) {
		id, err := ParseRequestID(v)
		if err != nil {
			if !strings.Contains(err.Error(), ValidRequestIDFormat) {
				t.Fatalf("ParseRequestID(%q) error %q does not enumerate %q", v, err, ValidRequestIDFormat)
			}
			return
		}
		if id == "" || len(id) > MaxRequestIDLen {
			t.Fatalf("ParseRequestID(%q) accepted out-of-bounds id %q", v, id)
		}
		// Accepted IDs must be idempotent under re-validation: they go
		// straight back out in response headers.
		if again, err := ParseRequestID(id); err != nil || again != id {
			t.Fatalf("ParseRequestID not idempotent: %q -> %q, %v", id, again, err)
		}
	})
}

func FuzzParseWALSyncFlag(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s)
	}
	f.Add("always")
	f.Add("interval")
	f.Add("never")
	f.Add("ALWAYS ")
	f.Add("sometimes")
	f.Fuzz(func(t *testing.T, v string) {
		if _, err := ParseWALSyncFlag(v); err != nil {
			if !strings.Contains(err.Error(), ValidWALSyncNames) {
				t.Fatalf("ParseWALSyncFlag(%q) error %q does not enumerate %q", v, err, ValidWALSyncNames)
			}
		}
	})
}

func FuzzParseJoinFlag(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s)
	}
	f.Add("http://127.0.0.1:8080")
	f.Add(" http://10.0.0.1:8080/ ")
	f.Add("https://seed.example")
	f.Add("http://a,http://b")
	f.Add("ftp://nope")
	f.Add("http://")
	f.Fuzz(func(t *testing.T, v string) {
		seed, err := ParseJoinFlag(v)
		if err != nil {
			if !strings.Contains(err.Error(), ValidJoinFormat) {
				t.Fatalf("ParseJoinFlag(%q) error %q does not describe the format", v, err)
			}
			return
		}
		if seed == "" {
			return // empty = no join, always valid
		}
		if !strings.HasPrefix(seed, "http://") && !strings.HasPrefix(seed, "https://") {
			t.Fatalf("ParseJoinFlag(%q) accepted non-http seed %q", v, seed)
		}
		if strings.HasSuffix(seed, "/") || strings.Contains(seed, ",") {
			t.Fatalf("ParseJoinFlag(%q) returned unnormalized seed %q", v, seed)
		}
		// Accepted seeds must be idempotent: they go straight into JoinCluster.
		if again, err := ParseJoinFlag(seed); err != nil || again != seed {
			t.Fatalf("ParseJoinFlag not idempotent: %q -> %q, %v", seed, again, err)
		}
	})
}

func FuzzParseRebalanceThresholdFlag(f *testing.F) {
	for _, s := range fuzzSeedInputs {
		f.Add(s)
	}
	f.Add("0")
	f.Add("0.25")
	f.Add(" 1 ")
	f.Add("1.5")
	f.Add("-0.1")
	f.Add("NaN")
	f.Add("Inf")
	f.Add("1e-9")
	f.Fuzz(func(t *testing.T, v string) {
		gap, err := ParseRebalanceThresholdFlag(v)
		if err != nil {
			if !strings.Contains(err.Error(), ValidRebalanceThresholds) {
				t.Fatalf("ParseRebalanceThresholdFlag(%q) error %q does not describe the domain", v, err)
			}
			return
		}
		if gap != gap || gap < 0 || gap > 1 {
			t.Fatalf("ParseRebalanceThresholdFlag(%q) accepted out-of-domain gap %v", v, gap)
		}
	})
}
