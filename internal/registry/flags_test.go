package registry

import (
	"strings"
	"testing"

	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/tas"
	"github.com/levelarray/levelarray/internal/wal"
)

// splitNames splits a ", "-separated vocabulary constant.
func splitNames(vocab string) []string {
	parts := strings.Split(vocab, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// TestRNGVocabularyCoversEveryKind asserts the -rng error string enumerates a
// spelling for every registered generator family — so adding a family
// without extending the vocabulary fails here, not in a user's shell.
func TestRNGVocabularyCoversEveryKind(t *testing.T) {
	_, err := ParseRNGFlag("no-such-rng")
	if err == nil {
		t.Fatal("ParseRNGFlag accepted garbage")
	}
	if !strings.Contains(err.Error(), ValidRNGNames) {
		t.Fatalf("error %q does not list the vocabulary %q", err, ValidRNGNames)
	}
	registered := []rng.Kind{rng.KindXorshift, rng.KindXorshift32, rng.KindLehmer, rng.KindSplitMix}
	covered := make(map[rng.Kind]bool)
	for _, name := range splitNames(ValidRNGNames) {
		kind, perr := ParseRNGFlag(name)
		if perr != nil {
			t.Fatalf("vocabulary entry %q does not parse: %v", name, perr)
		}
		covered[kind] = true
	}
	for _, kind := range registered {
		if !covered[kind] {
			t.Errorf("registered generator %v has no spelling in the -rng vocabulary %q", kind, ValidRNGNames)
		}
	}
}

// TestSpaceVocabularyCoversEveryKind is the -space analogue.
func TestSpaceVocabularyCoversEveryKind(t *testing.T) {
	_, err := ParseSpaceFlag("no-such-space")
	if err == nil {
		t.Fatal("ParseSpaceFlag accepted garbage")
	}
	if !strings.Contains(err.Error(), ValidSpaceNames) {
		t.Fatalf("error %q does not list the vocabulary %q", err, ValidSpaceNames)
	}
	registered := []tas.Kind{tas.KindBitmap, tas.KindBitmapPadded, tas.KindPadded, tas.KindCompact}
	covered := make(map[tas.Kind]bool)
	for _, name := range splitNames(ValidSpaceNames) {
		kind, perr := ParseSpaceFlag(name)
		if perr != nil {
			t.Fatalf("vocabulary entry %q does not parse: %v", name, perr)
		}
		covered[kind] = true
	}
	for _, kind := range registered {
		if !covered[kind] {
			t.Errorf("registered substrate %v has no spelling in the -space vocabulary %q", kind, ValidSpaceNames)
		}
		// Canonical display names must round-trip, since tables print them.
		if _, perr := ParseSpaceFlag(kind.String()); perr != nil {
			t.Errorf("display name %q does not parse: %v", kind.String(), perr)
		}
	}
}

// TestProbeVocabularyCoversEveryMode is the -probe analogue, including the
// cross-flag bitmap constraint.
func TestProbeVocabularyCoversEveryMode(t *testing.T) {
	_, err := ParseProbeFlag("no-such-probe", tas.KindBitmap)
	if err == nil {
		t.Fatal("ParseProbeFlag accepted garbage")
	}
	if !strings.Contains(err.Error(), core.ProbeModeNames) {
		t.Fatalf("error %q does not list the vocabulary %q", err, core.ProbeModeNames)
	}
	registered := []core.ProbeMode{core.ProbeSlot, core.ProbeWord}
	covered := make(map[core.ProbeMode]bool)
	for _, name := range splitNames(core.ProbeModeNames) {
		mode, perr := ParseProbeFlag(name, tas.KindBitmap)
		if perr != nil {
			t.Fatalf("vocabulary entry %q does not parse: %v", name, perr)
		}
		covered[mode] = true
	}
	for _, mode := range registered {
		if !covered[mode] {
			t.Errorf("registered probe mode %v has no spelling in the vocabulary %q", mode, core.ProbeModeNames)
		}
	}
	if _, err := ParseProbeFlag("word", tas.KindCompact); err == nil {
		t.Error("word probes on a compact space must be rejected")
	}
	if _, err := ParseProbeFlag("word", tas.KindBitmapPadded); err != nil {
		t.Errorf("word probes on the padded bitmap must be accepted: %v", err)
	}
}

// TestStealVocabularyCoversEveryKind is the -steal analogue.
func TestStealVocabularyCoversEveryKind(t *testing.T) {
	_, err := ParseStealFlag("no-such-steal")
	if err == nil {
		t.Fatal("ParseStealFlag accepted garbage")
	}
	if !strings.Contains(err.Error(), shard.StealKindNames) {
		t.Fatalf("error %q does not list the vocabulary %q", err, shard.StealKindNames)
	}
	registered := []shard.StealKind{shard.StealOccupancy, shard.StealRandom, shard.StealSequential}
	covered := make(map[shard.StealKind]bool)
	for _, name := range splitNames(shard.StealKindNames) {
		kind, perr := ParseStealFlag(name)
		if perr != nil {
			t.Fatalf("vocabulary entry %q does not parse: %v", name, perr)
		}
		covered[kind] = true
	}
	for _, kind := range registered {
		if !covered[kind] {
			t.Errorf("registered steal policy %v has no spelling in the vocabulary %q", kind, shard.StealKindNames)
		}
	}
}

func TestValidateShardCount(t *testing.T) {
	for _, bad := range []int{-1, 3, 6, 12} {
		if _, err := ValidateShardCount(bad); err == nil {
			t.Errorf("ValidateShardCount(%d) accepted", bad)
		} else if !strings.Contains(err.Error(), ValidShardCounts) {
			t.Errorf("ValidateShardCount(%d) error %q does not describe the domain", bad, err)
		}
	}
	for _, good := range []int{1, 2, 4, 64} {
		got, err := ValidateShardCount(good)
		if err != nil || got != good {
			t.Errorf("ValidateShardCount(%d) = %d, %v", good, got, err)
		}
	}
	if got, err := ValidateShardCount(0); err != nil || got != shard.DefaultShards() {
		t.Errorf("ValidateShardCount(0) = %d, %v, want the default %d", got, err, shard.DefaultShards())
	}
}

func TestValidatePercent(t *testing.T) {
	if err := ValidatePercent("prefill", 101); err == nil || !strings.Contains(err.Error(), "prefill") {
		t.Errorf("ValidatePercent(101) = %v, want an error naming the flag", err)
	}
	if err := ValidatePercent("prefill", -1); err == nil {
		t.Error("ValidatePercent(-1) accepted")
	}
	for _, good := range []int{0, 50, 100} {
		if err := ValidatePercent("prefill", good); err != nil {
			t.Errorf("ValidatePercent(%d) = %v", good, err)
		}
	}
}

// TestPartitionCountValidation covers the cluster -partitions domain.
func TestPartitionCountValidation(t *testing.T) {
	if got, err := ValidatePartitionCount(0); err != nil || got != DefaultPartitions {
		t.Fatalf("auto partitions = %d err %v, want %d", got, err, DefaultPartitions)
	}
	for _, ok := range []int{1, 2, 4, 8, 64} {
		if got, err := ValidatePartitionCount(ok); err != nil || got != ok {
			t.Fatalf("ValidatePartitionCount(%d) = %d, %v", ok, got, err)
		}
	}
	for _, bad := range []int{-1, 3, 6, 12, 100} {
		_, err := ValidatePartitionCount(bad)
		if err == nil {
			t.Fatalf("ValidatePartitionCount(%d) accepted a non-power-of-two", bad)
		}
		if !strings.Contains(err.Error(), ValidPartitionCounts) {
			t.Fatalf("error %q does not describe the domain %q", err, ValidPartitionCounts)
		}
	}
}

// TestPeersAndNodeIDValidation covers the cluster -peers/-node-id pair.
func TestPeersAndNodeIDValidation(t *testing.T) {
	urls, err := ParsePeersFlag(" http://10.0.0.1:8080 ,http://10.0.0.2:8080/")
	if err != nil {
		t.Fatalf("ParsePeersFlag: %v", err)
	}
	want := []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080"}
	for i, u := range urls {
		if u != want[i] {
			t.Fatalf("peer %d = %q, want %q (trimmed, no trailing slash)", i, u, want[i])
		}
	}
	for _, bad := range []string{"", "   ", "tcp://x", "http://", "http://a,,http://b"} {
		if _, err := ParsePeersFlag(bad); err == nil {
			t.Fatalf("ParsePeersFlag(%q) accepted garbage", bad)
		}
	}
	if err := ValidateNodeID(1, 2); err != nil {
		t.Fatalf("ValidateNodeID(1, 2): %v", err)
	}
	for _, bad := range []int{-1, 2, 99} {
		if err := ValidateNodeID(bad, 2); err == nil {
			t.Fatalf("ValidateNodeID(%d, 2) accepted out-of-range id", bad)
		}
	}
}

func TestParseWALSyncFlagVocabulary(t *testing.T) {
	cases := map[string]wal.SyncPolicy{
		"always":   wal.SyncAlways,
		"":         wal.SyncAlways,
		"interval": wal.SyncInterval,
		"never":    wal.SyncNever,
		" Never ":  wal.SyncNever,
	}
	for in, want := range cases {
		got, err := ParseWALSyncFlag(in)
		if err != nil || got != want {
			t.Fatalf("ParseWALSyncFlag(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseWALSyncFlag("sometimes"); err == nil {
		t.Fatal("ParseWALSyncFlag must reject unknown policies")
	} else if !strings.Contains(err.Error(), ValidWALSyncNames) {
		t.Fatalf("error %q does not list the vocabulary %q", err, ValidWALSyncNames)
	}
	// Every policy named in the vocabulary string must parse to a distinct value.
	seen := map[wal.SyncPolicy]bool{}
	for _, name := range []string{"always", "interval", "never"} {
		p, err := ParseWALSyncFlag(name)
		if err != nil {
			t.Fatalf("vocabulary name %q does not parse: %v", name, err)
		}
		if seen[p] {
			t.Fatalf("vocabulary name %q aliases another policy", name)
		}
		seen[p] = true
	}
}

func TestParseJoinFlag(t *testing.T) {
	cases := map[string]string{
		"":                          "",
		"   ":                       "",
		"http://10.0.0.1:8080":      "http://10.0.0.1:8080",
		" http://10.0.0.1:8080/ ":   "http://10.0.0.1:8080",
		"https://seed.example:443/": "https://seed.example:443",
	}
	for in, want := range cases {
		got, err := ParseJoinFlag(in)
		if err != nil || got != want {
			t.Fatalf("ParseJoinFlag(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"tcp://x", "http://", "http://a,http://b", "seed:8080"} {
		if _, err := ParseJoinFlag(bad); err == nil {
			t.Fatalf("ParseJoinFlag(%q) accepted garbage", bad)
		} else if !strings.Contains(err.Error(), ValidJoinFormat) {
			t.Fatalf("ParseJoinFlag(%q) error %q does not describe the format", bad, err)
		}
	}
}

func TestParseRebalanceThresholdFlag(t *testing.T) {
	cases := map[string]float64{
		"":     0,
		"0":    0,
		"0.25": 0.25,
		" 1 ":  1,
		"1e-2": 0.01,
	}
	for in, want := range cases {
		got, err := ParseRebalanceThresholdFlag(in)
		if err != nil || got != want {
			t.Fatalf("ParseRebalanceThresholdFlag(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"-0.1", "1.5", "NaN", "+Inf", "lots", "0,5"} {
		if _, err := ParseRebalanceThresholdFlag(bad); err == nil {
			t.Fatalf("ParseRebalanceThresholdFlag(%q) accepted garbage", bad)
		} else if !strings.Contains(err.Error(), ValidRebalanceThresholds) {
			t.Fatalf("ParseRebalanceThresholdFlag(%q) error %q does not describe the domain", bad, err)
		}
	}
}
