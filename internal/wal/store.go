package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/levelarray/levelarray/internal/trace"
)

// fenceName is the adoption fence marker. A steward adopting this
// partition's state from disk writes it (durably) before reading anything;
// the original owner re-checks it after every durable append and refuses
// to ack once present. The ordering — append+fsync, then check fence, then
// ack — guarantees every acked grant is visible to the adopter's
// post-fence read of the log.
const fenceName = "FENCE"

// ErrFenced is returned by Append once another node has fenced this
// partition's directory. The owner must stop serving the partition.
var ErrFenced = errors.New("wal: partition fenced by adopter")

// Counters is a point-in-time copy of a store's activity counters, the
// backing for the la_wal_* metric families.
type Counters struct {
	Appends       uint64
	Syncs         uint64
	Bytes         uint64
	Checkpoints   uint64
	ReplayRecords uint64
	TornTails     uint64
}

// Store is one partition's durable lease journal: an open segment log, the
// latest snapshot, and the recovered state from Open's replay scan.
type Store struct {
	dir    string
	policy SyncPolicy
	log    *log

	lsn    atomic.Uint64 // last assigned LSN
	fenced atomic.Bool

	checkpoints   atomic.Uint64
	replayRecords atomic.Uint64
	tornTails     atomic.Uint64

	snap *Snapshot
	tail []Record
}

// Open creates or recovers a partition store at dir. It reads the latest
// snapshot, scans the segment tail (truncating any torn final record so
// future appends are reachable), clears a stale clean-shutdown marker, and
// opens a fresh segment for appends. The recovered state is available via
// Recovered until the first checkpoint.
func Open(dir string, policy SyncPolicy, syncInterval time.Duration) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	s := &Store{dir: dir, policy: policy}
	if _, err := os.Stat(filepath.Join(dir, fenceName)); err == nil {
		s.fenced.Store(true)
	}

	snap, err := readSnapshot(dir)
	if err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}

	var maxLSN, nextSeg uint64
	if len(segs) > 0 {
		nextSeg = segs[len(segs)-1] + 1
	}
	if snap != nil {
		maxLSN = snap.LastLSN
	}

	if snap != nil && snap.Clean {
		// A clean-shutdown snapshot is authoritative: the tail (if any
		// survived the final checkpoint) is already folded in. Skip the
		// scan, drop the segments, and clear the marker — records we
		// append from here on must not be skipped by the next replay.
		for _, seq := range segs {
			_ = os.Remove(filepath.Join(dir, segName(seq)))
		}
		syncDir(dir)
		reopened := *snap
		reopened.Clean = false
		if err := writeSnapshot(dir, &reopened); err != nil {
			return nil, err
		}
		s.snap = &reopened
	} else {
		s.snap = snap
		tail, scannedMax, err := s.scanSegments(segs, maxLSN)
		if err != nil {
			return nil, err
		}
		s.tail = tail
		if scannedMax > maxLSN {
			maxLSN = scannedMax
		}
	}
	s.lsn.Store(maxLSN)

	lg, err := openLog(dir, nextSeg, policy, syncInterval)
	if err != nil {
		return nil, err
	}
	s.log = lg
	return s, nil
}

// scanSegments replays every segment in order, collecting records newer
// than snapLSN. The first torn record ends the scan: the holding segment
// is truncated at that offset and any later segments (possible only after
// external corruption, never from a crash) are dropped, so the log's
// replayable prefix and its byte prefix coincide again.
func (s *Store) scanSegments(segs []uint64, snapLSN uint64) ([]Record, uint64, error) {
	var tail []Record
	var maxLSN uint64
	for i, seq := range segs {
		path := filepath.Join(s.dir, segName(seq))
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: read segment: %w", err)
		}
		off := 0
		torn := false
		for off < len(b) {
			r, n, err := decodeRecord(b[off:])
			if err != nil {
				torn = true
				break
			}
			off += n
			s.replayRecords.Add(1)
			if r.LSN > maxLSN {
				maxLSN = r.LSN
			}
			if r.LSN > snapLSN {
				tail = append(tail, r)
			}
		}
		if torn {
			s.tornTails.Add(1)
			if err := os.Truncate(path, int64(off)); err != nil {
				return nil, 0, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			for _, later := range segs[i+1:] {
				_ = os.Remove(filepath.Join(s.dir, segName(later)))
			}
			syncDir(s.dir)
			break
		}
	}
	return tail, maxLSN, nil
}

// Recovered returns the state Open reconstructed: the snapshot (nil when
// none survived) and the log tail past it, in append order.
func (s *Store) Recovered() (*Snapshot, []Record) { return s.snap, s.tail }

// LastLSN returns the highest LSN assigned so far.
func (s *Store) LastLSN() uint64 { return s.lsn.Load() }

// Fenced reports whether an adopter has fenced this partition.
func (s *Store) Fenced() bool { return s.fenced.Load() }

// Append journals one record. Under SyncAlways it returns only after the
// record is fsynced (group-committed with concurrent appenders) and the
// fence has been re-checked — an Append that returns nil is a grant the
// adopter is guaranteed to see.
func (s *Store) Append(op Op, name uint32, token uint64, deadline int64) error {
	return s.AppendTraced(nil, op, name, token, deadline)
}

// AppendTraced is Append with flight-recorder phase attribution: the span
// (when non-nil) is charged queue, wal-append and fsync-wait time. It is the
// lease manager's tracedJournal hook.
func (s *Store) AppendTraced(sp *trace.Op, op Op, name uint32, token uint64, deadline int64) error {
	return s.AppendBatchTraced(sp, []Record{{Op: op, Name: name, Token: token, Deadline: deadline}})
}

// AppendBatch journals several records with a single durability wait —
// the batch-op path (AcquireN, RenewAll) pays one group commit for the
// whole round.
func (s *Store) AppendBatch(recs []Record) error {
	return s.AppendBatchTraced(nil, recs)
}

// AppendBatchTraced is AppendBatch with flight-recorder phase attribution.
func (s *Store) AppendBatchTraced(sp *trace.Op, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	if s.fenced.Load() {
		return ErrFenced
	}
	buf := make([]byte, 0, len(recs)*frameLen)
	for i := range recs {
		recs[i].LSN = s.lsn.Add(1)
		buf = appendRecord(buf, recs[i])
	}
	if err := s.log.append(sp, buf); err != nil {
		return err
	}
	if s.policy == SyncAlways && s.checkFence() {
		return ErrFenced
	}
	return nil
}

// checkFence stats the fence marker, latching the result (a fence is
// permanent for the lifetime of the directory's current ownership).
func (s *Store) checkFence() bool {
	if s.fenced.Load() {
		return true
	}
	if _, err := os.Stat(filepath.Join(s.dir, fenceName)); err == nil {
		s.fenced.Store(true)
		return true
	}
	return false
}

// BeginCheckpoint seals the current segment and returns the LSN high-water
// mark the snapshot will cover. The caller MUST invoke it under its write
// barrier (no concurrent appends) and capture its state before releasing
// the barrier, so the returned LSN and the captured state form a
// consistent cut.
func (s *Store) BeginCheckpoint() (uint64, error) {
	if _, err := s.log.rotate(s.dir); err != nil {
		return 0, err
	}
	return s.lsn.Load(), nil
}

// CompleteCheckpoint persists the snapshot (whose LastLSN must be the
// value BeginCheckpoint returned) and deletes the sealed segments it
// covers. Crash-safe at every point: until the snapshot rename lands the
// old snapshot plus the full log reproduce the same state, and leftover
// sealed segments merely replay records the snapshot already folds in.
func (s *Store) CompleteCheckpoint(snap *Snapshot) error {
	if err := writeSnapshot(s.dir, snap); err != nil {
		return err
	}
	segs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	s.log.mu.Lock()
	open := s.log.seq
	s.log.mu.Unlock()
	for _, seq := range segs {
		if seq < open {
			_ = os.Remove(filepath.Join(s.dir, segName(seq)))
		}
	}
	syncDir(s.dir)
	s.checkpoints.Add(1)
	s.snap, s.tail = nil, nil // recovered state superseded; free it
	return nil
}

// Sync forces an fsync regardless of policy (shutdown path).
func (s *Store) Sync() error { return s.log.sync() }

// Close flushes and closes the segment log. It does not write a snapshot;
// graceful shutdown runs a final checkpoint first.
func (s *Store) Close() error { return s.log.close() }

// Counters snapshots the store's activity counters.
func (s *Store) Counters() Counters {
	return Counters{
		Appends:       s.log.appends.Load(),
		Syncs:         s.log.syncs.Load(),
		Bytes:         s.log.bytes.Load(),
		Checkpoints:   s.checkpoints.Load(),
		ReplayRecords: s.replayRecords.Load(),
		TornTails:     s.tornTails.Load(),
	}
}

// Fence durably marks dir as adopted. The writer must call it and see it
// succeed BEFORE reading the snapshot or log; combined with the owner's
// append-then-check-fence-then-ack protocol this makes every acked grant
// visible to the subsequent read.
func Fence(dir string, epoch uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fenceName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "epoch %d\n", epoch); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// Unfence removes the adoption fence, returning the directory to the node
// that owns it under the new epoch (the adopter hands the directory back
// by rewriting a fresh snapshot and unfencing).
func Unfence(dir string) error {
	err := os.Remove(filepath.Join(dir, fenceName))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	syncDir(dir)
	return nil
}

// ReadState performs a read-only recovery scan of dir — the adopter's
// view after fencing: latest snapshot plus every intact record past it,
// stopping at the first torn record. It never mutates the directory.
func ReadState(dir string) (*Snapshot, []Record, error) {
	snap, err := readSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return snap, nil, nil
		}
		return nil, nil, err
	}
	var snapLSN uint64
	if snap != nil {
		snapLSN = snap.LastLSN
		if snap.Clean {
			return snap, nil, nil
		}
	}
	var tail []Record
scan:
	for _, seq := range segs {
		b, err := os.ReadFile(filepath.Join(dir, segName(seq)))
		if err != nil {
			return nil, nil, err
		}
		off := 0
		for off < len(b) {
			r, n, derr := decodeRecord(b[off:])
			if derr != nil {
				break scan
			}
			off += n
			if r.LSN > snapLSN {
				tail = append(tail, r)
			}
		}
	}
	return snap, tail, nil
}

// Fold applies a record tail to a snapshot's session table and returns the
// resulting sessions plus the highest token observed anywhere (snapshot
// HWM included). Acquire overwrites unconditionally; renew, release and
// expire apply only when the token matches the current holder — the rule
// that makes replay insensitive to the benign reorderings the append path
// permits.
func Fold(snap *Snapshot, tail []Record) (sessions []Session, maxToken uint64) {
	byName := make(map[uint32]Session)
	if snap != nil {
		for _, sess := range snap.Sessions {
			byName[sess.Name] = sess
			if sess.Token > maxToken {
				maxToken = sess.Token
			}
		}
	}
	for _, r := range tail {
		if r.Token > maxToken {
			maxToken = r.Token
		}
		switch r.Op {
		case OpAcquire:
			byName[r.Name] = Session{Name: r.Name, Token: r.Token, Deadline: r.Deadline}
		case OpRenew:
			if cur, ok := byName[r.Name]; ok && cur.Token == r.Token {
				cur.Deadline = r.Deadline
				byName[r.Name] = cur
			}
		case OpRelease, OpExpire:
			if cur, ok := byName[r.Name]; ok && cur.Token == r.Token {
				delete(byName, r.Name)
			}
		}
	}
	sessions = make([]Session, 0, len(byName))
	for _, sess := range byName {
		sessions = append(sessions, sess)
	}
	return sessions, maxToken
}
