package wal

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, policy SyncPolicy) *Store {
	t.Helper()
	s, err := Open(dir, policy, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func sortSessions(ss []Session) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Name < ss[j].Name })
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, SyncNever)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	must(s.Append(OpAcquire, 3, 100, 5_000))
	must(s.Append(OpAcquire, 7, 200, 6_000))
	must(s.Append(OpRenew, 3, 100, 9_000))
	must(s.Append(OpRelease, 7, 200, 0))
	must(s.Append(OpAcquire, 7, 300, 7_000))
	must(s.Append(OpExpire, 7, 999, 0)) // stale token: must not apply
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2 := openT(t, dir, SyncNever)
	defer s2.Close()
	snap, tail := s2.Recovered()
	if snap != nil {
		t.Fatalf("unexpected snapshot")
	}
	sessions, maxTok := Fold(snap, tail)
	sortSessions(sessions)
	want := []Session{{Name: 3, Token: 100, Deadline: 9_000}, {Name: 7, Token: 300, Deadline: 7_000}}
	if len(sessions) != len(want) {
		t.Fatalf("sessions = %+v, want %+v", sessions, want)
	}
	for i := range want {
		if sessions[i] != want[i] {
			t.Fatalf("session[%d] = %+v, want %+v", i, sessions[i], want[i])
		}
	}
	if maxTok != 999 {
		t.Fatalf("maxToken = %d, want 999", maxTok)
	}
	if s2.LastLSN() != 6 {
		t.Fatalf("LastLSN = %d, want 6", s2.LastLSN())
	}
}

func TestTornTailTruncatedAndDropped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, SyncNever)
	for i := 0; i < 5; i++ {
		if err := s.Append(OpAcquire, uint32(i), uint64(1000+i), int64(i)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Tear the final record: chop half of it off.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	info, _ := os.Stat(path)
	if err := os.Truncate(path, info.Size()-frameLen/2); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	s2 := openT(t, dir, SyncNever)
	defer s2.Close()
	_, tail := s2.Recovered()
	if len(tail) != 4 {
		t.Fatalf("replayed %d records, want 4 (torn final dropped)", len(tail))
	}
	if c := s2.Counters(); c.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", c.TornTails)
	}
	// New appends after the truncation must be reachable on the next replay.
	if err := s2.Append(OpAcquire, 9, 9000, 9); err != nil {
		t.Fatalf("append after torn open: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s3 := openT(t, dir, SyncNever)
	defer s3.Close()
	_, tail3 := s3.Recovered()
	if len(tail3) != 5 {
		t.Fatalf("replayed %d records after re-append, want 5", len(tail3))
	}
}

func TestCheckpointTruncatesAndReplays(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, SyncNever)
	for i := 0; i < 8; i++ {
		if err := s.Append(OpAcquire, uint32(i), uint64(100+i), 0); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	last, err := s.BeginCheckpoint()
	if err != nil {
		t.Fatalf("BeginCheckpoint: %v", err)
	}
	snap := &Snapshot{Partition: 2, Epoch: 5, LastLSN: last, TokenSeq: 42,
		Words: []uint64{0xFF}, Sessions: make([]Session, 0, 8)}
	for i := 0; i < 8; i++ {
		snap.Sessions = append(snap.Sessions, Session{Name: uint32(i), Token: uint64(100 + i)})
	}
	if err := s.CompleteCheckpoint(snap); err != nil {
		t.Fatalf("CompleteCheckpoint: %v", err)
	}
	// Post-checkpoint records land in the new segment.
	if err := s.Append(OpRelease, 3, 103, 0); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("segments after checkpoint = %v, want exactly the open one", segs)
	}

	s2 := openT(t, dir, SyncNever)
	defer s2.Close()
	snap2, tail := s2.Recovered()
	if snap2 == nil || snap2.Epoch != 5 || snap2.TokenSeq != 42 || snap2.Partition != 2 {
		t.Fatalf("snapshot = %+v", snap2)
	}
	if len(snap2.Words) != 1 || snap2.Words[0] != 0xFF {
		t.Fatalf("words = %v", snap2.Words)
	}
	sessions, _ := Fold(snap2, tail)
	sortSessions(sessions)
	if len(sessions) != 7 {
		t.Fatalf("sessions = %+v, want 7 (release folded)", sessions)
	}
	for _, sess := range sessions {
		if sess.Name == 3 {
			t.Fatalf("name 3 still held after released record replayed")
		}
	}
}

func TestCleanSnapshotSkipsTailAndClearsMarker(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, SyncNever)
	if err := s.Append(OpAcquire, 1, 11, 0); err != nil {
		t.Fatalf("append: %v", err)
	}
	last, err := s.BeginCheckpoint()
	if err != nil {
		t.Fatalf("BeginCheckpoint: %v", err)
	}
	snap := &Snapshot{LastLSN: last, Clean: true,
		Sessions: []Session{{Name: 1, Token: 11}}}
	if err := s.CompleteCheckpoint(snap); err != nil {
		t.Fatalf("CompleteCheckpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2 := openT(t, dir, SyncNever)
	snap2, tail := s2.Recovered()
	if snap2 == nil || !snap2.Clean == true && snap2.Clean {
		t.Fatalf("snapshot missing")
	}
	if len(tail) != 0 {
		t.Fatalf("clean snapshot must skip the tail, got %d records", len(tail))
	}
	// The marker must be cleared on reopen so post-restart appends are not
	// skipped by the NEXT replay.
	if err := s2.Append(OpAcquire, 2, 22, 0); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s3 := openT(t, dir, SyncNever)
	defer s3.Close()
	snap3, tail3 := s3.Recovered()
	if snap3 == nil || snap3.Clean {
		t.Fatalf("clean marker not cleared on reopen: %+v", snap3)
	}
	if len(tail3) != 1 || tail3[0].Name != 2 {
		t.Fatalf("post-restart append lost: tail = %+v", tail3)
	}
}

func TestFenceBlocksAcks(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, SyncAlways)
	if err := s.Append(OpAcquire, 1, 11, 0); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := Fence(dir, 7); err != nil {
		t.Fatalf("Fence: %v", err)
	}
	if err := s.Append(OpAcquire, 2, 22, 0); err != ErrFenced {
		t.Fatalf("append after fence = %v, want ErrFenced", err)
	}
	if !s.Fenced() {
		t.Fatalf("Fenced() = false after fence hit")
	}
	// The adopter's read must see the pre-fence grant — and, because the
	// owner fsyncs before checking the fence, the grant it refused to ack
	// too (replaying it is safe: an unacked lease just expires).
	snap, tail, err := ReadState(dir)
	if err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	sessions, _ := Fold(snap, tail)
	if len(sessions) != 2 {
		t.Fatalf("adopter sees %d sessions, want 2", len(sessions))
	}
	_ = s.Close()
	if err := Unfence(dir); err != nil {
		t.Fatalf("Unfence: %v", err)
	}
	s2 := openT(t, dir, SyncAlways)
	defer s2.Close()
	if err := s2.Append(OpAcquire, 3, 33, 0); err != nil {
		t.Fatalf("append after unfence: %v", err)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, SyncAlways)
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Append(OpAcquire, uint32(i), uint64(i+1), 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	c := s.Counters()
	if c.Appends != n {
		t.Fatalf("Appends = %d, want %d", c.Appends, n)
	}
	if c.Syncs >= n {
		t.Logf("no group-commit coalescing observed (syncs=%d); legal but unexpected", c.Syncs)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2 := openT(t, dir, SyncNever)
	defer s2.Close()
	_, tail := s2.Recovered()
	if len(tail) != n {
		t.Fatalf("replayed %d, want %d", len(tail), n)
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, SyncInterval, time.Millisecond)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Append(OpAcquire, 1, 11, 0); err != nil {
		t.Fatalf("append: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Counters().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("interval sync never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
