// Package wal is the per-partition durability substrate: an append-only,
// CRC-framed operation log plus periodic snapshots, with crash-tolerant
// replay. It mirrors internal/wire's framing idiom — little-endian,
// length-prefixed, versioned — but adds a checksum per record because the
// medium is a disk that can tear, not a socket that resets.
//
// Layout of a partition's data directory:
//
//	wal-<seq>.log   append-only record segments (monotonically numbered)
//	snapshot        latest checkpoint (bitmap words + sessions + HWMs)
//	snapshot.tmp    in-flight checkpoint (ignored by replay; renamed over
//	                snapshot on completion, so the swap is atomic)
//	FENCE           adoption fence: once present, the original owner must
//	                stop acking appends (see Store.Fenced)
//
// The package depends only on the standard library; lease wires it in
// through a narrow Journal interface so the dependency arrow stays
// wal ← lease, never the reverse.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Op is the journaled operation kind.
type Op uint8

const (
	// OpAcquire records a granted lease: name bound to token until deadline.
	// Replay applies it unconditionally (a grant supersedes whatever the
	// name held before).
	OpAcquire Op = 1
	// OpRenew extends an existing lease's deadline. Replay applies it only
	// when the token matches the current holder.
	OpRenew Op = 2
	// OpRelease frees a lease. Token-checked on replay.
	OpRelease Op = 3
	// OpExpire frees a lease whose deadline lapsed. Token-checked on replay.
	OpExpire Op = 4
)

func (o Op) String() string {
	switch o {
	case OpAcquire:
		return "acquire"
	case OpRenew:
		return "renew"
	case OpRelease:
		return "release"
	case OpExpire:
		return "expire"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Record is one journaled lease transition. LSN is assigned by the log at
// append time and is strictly increasing within a partition; replay uses it
// to skip records already folded into a snapshot.
type Record struct {
	LSN      uint64
	Op       Op
	Name     uint32
	Token    uint64
	Deadline int64 // UnixNano; 0 = infinite (never expires)
}

const (
	// recordPayloadLen is the fixed wire size of an encoded Record:
	// u64 LSN + u8 op + u32 name + u64 token + i64 deadline.
	recordPayloadLen = 8 + 1 + 4 + 8 + 8
	// frameHeaderLen prefixes each payload: u32 length + u32 CRC.
	frameHeaderLen = 4 + 4
	// frameLen is the full on-disk size of one record.
	frameLen = frameHeaderLen + recordPayloadLen
)

// castagnoli is the CRC32-C table; the polynomial with hardware support on
// both amd64 and arm64, and the conventional choice for storage framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn marks a record that fails its frame checks — short read, bad
// length, or CRC mismatch. Replay treats the first torn record as the end
// of the log: everything before it is durable, it and everything after are
// the debris of a crash mid-write.
var ErrTorn = errors.New("wal: torn record")

// appendRecord encodes r into buf's tail and returns the extended slice.
func appendRecord(buf []byte, r Record) []byte {
	var payload [recordPayloadLen]byte
	binary.LittleEndian.PutUint64(payload[0:8], r.LSN)
	payload[8] = byte(r.Op)
	binary.LittleEndian.PutUint32(payload[9:13], r.Name)
	binary.LittleEndian.PutUint64(payload[13:21], r.Token)
	binary.LittleEndian.PutUint64(payload[21:29], uint64(r.Deadline))

	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], recordPayloadLen)
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload[:], castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload[:]...)
}

// decodeRecord parses one frame from b. It returns the record and the
// number of bytes consumed, or ErrTorn when the frame is short, oversized
// or fails its CRC.
func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, ErrTorn
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n != recordPayloadLen {
		// Future versions may grow the payload; today anything but the
		// fixed size is corruption (or a torn length word).
		return Record{}, 0, ErrTorn
	}
	if len(b) < frameHeaderLen+int(n) {
		return Record{}, 0, ErrTorn
	}
	payload := b[frameHeaderLen : frameHeaderLen+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return Record{}, 0, ErrTorn
	}
	r := Record{
		LSN:      binary.LittleEndian.Uint64(payload[0:8]),
		Op:       Op(payload[8]),
		Name:     binary.LittleEndian.Uint32(payload[9:13]),
		Token:    binary.LittleEndian.Uint64(payload[13:21]),
		Deadline: int64(binary.LittleEndian.Uint64(payload[21:29])),
	}
	if r.Op < OpAcquire || r.Op > OpExpire {
		return Record{}, 0, ErrTorn
	}
	return r, frameHeaderLen + int(n), nil
}
