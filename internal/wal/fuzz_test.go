package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildSeedLog returns the raw bytes of a small valid segment.
func buildSeedLog() []byte {
	var buf []byte
	recs := []Record{
		{LSN: 1, Op: OpAcquire, Name: 3, Token: 100, Deadline: 5000},
		{LSN: 2, Op: OpAcquire, Name: 7, Token: 200, Deadline: 6000},
		{LSN: 3, Op: OpRenew, Name: 3, Token: 100, Deadline: 9000},
		{LSN: 4, Op: OpRelease, Name: 7, Token: 200},
		{LSN: 5, Op: OpAcquire, Name: 7, Token: 300, Deadline: 7000},
	}
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	return buf
}

// FuzzWALReplay feeds arbitrary bytes to the replay path as a segment file:
// recovery must never panic and never error (corruption is data loss, not
// failure), a torn record must end the replayable prefix, and the store must
// accept appends afterwards with the new records surviving the next replay.
func FuzzWALReplay(f *testing.F) {
	seed := buildSeedLog()
	f.Add(seed)
	f.Add(seed[:len(seed)-1])             // torn final byte
	f.Add(seed[:frameLen+frameLen/2])     // torn mid-record
	f.Add([]byte{})                       // empty segment
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // garbage
	mut := append([]byte(nil), seed...)
	mut[frameLen+9] ^= 0x40 // flip a payload bit in record 2
	f.Add(mut)

	f.Fuzz(func(t *testing.T, segment []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), segment, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, SyncNever, 0)
		if err != nil {
			t.Fatalf("Open on arbitrary segment bytes: %v", err)
		}
		_, tail := s.Recovered()

		// The replayed prefix must decode from the original bytes: record i
		// must equal the i-th sequentially decodable record.
		off := 0
		for i, r := range tail {
			want, n, derr := decodeRecord(segment[off:])
			if derr != nil {
				t.Fatalf("replayed %d records but input tears at %d", len(tail), i)
			}
			if want != r {
				t.Fatalf("record %d: replayed %+v, input has %+v", i, r, want)
			}
			off += n
		}

		// Appends after recovery must survive the next replay.
		if err := s.Append(OpAcquire, 42, 4242, 0); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		s2, err := Open(dir, SyncNever, 0)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer s2.Close()
		_, tail2 := s2.Recovered()
		if len(tail2) != len(tail)+1 {
			t.Fatalf("after append: replayed %d, want %d", len(tail2), len(tail)+1)
		}
		last := tail2[len(tail2)-1]
		if last.Name != 42 || last.Token != 4242 {
			t.Fatalf("appended record lost: %+v", last)
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoder: it must
// never panic, and the recovery path must degrade a torn snapshot to a pure
// log replay rather than failing.
func FuzzSnapshotDecode(f *testing.F) {
	good := encodeSnapshot(&Snapshot{
		Partition: 1, Epoch: 3, LastLSN: 10, TokenSeq: 99, Clean: true,
		Words:    []uint64{0xFF, 0x0F},
		Sessions: []Session{{Name: 2, Token: 20, Deadline: 1000}},
	})
	f.Add(good)
	f.Add(good[:len(good)-2])
	f.Add([]byte{})
	mut := append([]byte(nil), good...)
	mut[9] ^= 0x01
	f.Add(mut)

	f.Fuzz(func(t *testing.T, b []byte) {
		snap, err := decodeSnapshot(b)
		if err == nil && snap != nil {
			// Round-trip: a decodable snapshot re-encodes to an equivalent one.
			again, err2 := decodeSnapshot(encodeSnapshot(snap))
			if err2 != nil {
				t.Fatalf("re-encode of decoded snapshot fails: %v", err2)
			}
			if again.LastLSN != snap.LastLSN || again.TokenSeq != snap.TokenSeq ||
				len(again.Sessions) != len(snap.Sessions) || len(again.Words) != len(snap.Words) {
				t.Fatalf("round-trip mismatch: %+v vs %+v", again, snap)
			}
		}

		// The full recovery path over this file must not panic or error.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapshotName), b, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, SyncNever, 0)
		if err != nil {
			t.Fatalf("Open with arbitrary snapshot bytes: %v", err)
		}
		_ = s.Close()
	})
}
