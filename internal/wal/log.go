package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/levelarray/levelarray/internal/trace"
)

// SyncPolicy selects when appended records are forced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Append returns — group-committed, so
	// concurrent appenders share one fsync. This is the only policy under
	// which an acked grant is guaranteed to survive a crash, and the only
	// one the chaos ledger may assert durability over.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background cadence; a crash loses at most
	// the last interval's records.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache. Fast, and fine for
	// tests and for deployments that only care about clean restarts.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("sync(%d)", int(p))
	}
}

// segPrefix and segSuffix frame segment filenames: wal-<seq>.log.
const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

func segName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, seq, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the segment sequence numbers present in dir, sorted
// ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// log is the append side of a partition's WAL: one open segment file with a
// group-commit sync protocol. Appends under SyncAlways block until their
// bytes are fsynced, but concurrent appenders coalesce: whoever holds the
// sync baton flushes everything written so far, and the rest just wait for
// a flush covering their write — one fsync absorbs a burst.
type log struct {
	policy SyncPolicy

	mu     sync.Mutex // guards file writes, rotation, and written/synced
	f      *os.File
	seq    uint64 // current segment sequence number
	path   string
	writes uint64 // monotone count of completed file writes
	synced uint64 // writes covered by the last fsync

	syncCond *sync.Cond // signaled after each fsync completes
	syncing  bool       // a group-commit fsync is in flight

	appends atomic.Uint64
	syncs   atomic.Uint64
	bytes   atomic.Uint64

	stop     chan struct{}
	done     chan struct{}
	interval time.Duration
}

func openLog(dir string, seq uint64, policy SyncPolicy, interval time.Duration) (*log, error) {
	path := filepath.Join(dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	l := &log{policy: policy, f: f, seq: seq, path: path, interval: interval}
	l.syncCond = sync.NewCond(&l.mu)
	if policy == SyncInterval {
		if l.interval <= 0 {
			l.interval = 5 * time.Millisecond
		}
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.intervalLoop()
	}
	return l, nil
}

func (l *log) intervalLoop() {
	defer close(l.done)
	t := time.NewTicker(l.interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			f := l.f
			l.mu.Unlock()
			if f != nil {
				if err := f.Sync(); err == nil {
					l.syncs.Add(1)
				}
			}
		}
	}
}

// append writes the encoded frames and, under SyncAlways, blocks until an
// fsync covering them completes. When sp is non-nil the wait for the log
// mutex is attributed to the queue phase, the buffered write to wal-append,
// and the group-commit wait (own fsync or a covering one) to fsync-wait —
// so a slow-op trace separates "stuck behind the log lock" from "paying the
// durability tax".
func (l *log) append(sp *trace.Op, frames []byte) error {
	var mark time.Time
	if sp != nil {
		mark = time.Now()
	}
	l.mu.Lock()
	if sp != nil {
		now := time.Now()
		sp.Phase(trace.PhaseQueue, now.Sub(mark))
		mark = now
	}
	if l.f == nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	if _, err := l.f.Write(frames); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.writes++
	ticket := l.writes
	l.appends.Add(1)
	l.bytes.Add(uint64(len(frames)))
	if sp != nil {
		now := time.Now()
		sp.Phase(trace.PhaseWALAppend, now.Sub(mark))
		mark = now
	}

	if l.policy != SyncAlways {
		l.mu.Unlock()
		return nil
	}

	// Group commit: wait until some fsync covers our ticket. If nobody is
	// flushing, become the flusher; otherwise wait for the current flush
	// to land and re-check (it may have started before our write).
	defer func() {
		if sp != nil {
			sp.Phase(trace.PhaseFsyncWait, time.Since(mark))
		}
	}()
	for l.synced < ticket {
		if !l.syncing {
			l.syncing = true
			covered := l.writes // everything written so far rides this fsync
			f := l.f
			l.mu.Unlock()
			err := f.Sync()
			l.mu.Lock()
			l.syncing = false
			if err != nil {
				l.syncCond.Broadcast()
				l.mu.Unlock()
				return fmt.Errorf("wal: fsync: %w", err)
			}
			l.syncs.Add(1)
			if covered > l.synced {
				l.synced = covered
			}
			l.syncCond.Broadcast()
		} else {
			l.syncCond.Wait()
		}
	}
	l.mu.Unlock()
	return nil
}

// sync forces an fsync regardless of policy (shutdown and checkpoint path).
func (l *log) sync() error {
	l.mu.Lock()
	f := l.f
	covered := l.writes
	l.mu.Unlock()
	if f == nil {
		return nil
	}
	if err := f.Sync(); err != nil {
		return err
	}
	l.syncs.Add(1)
	l.mu.Lock()
	if covered > l.synced {
		l.synced = covered
	}
	l.syncCond.Broadcast()
	l.mu.Unlock()
	return nil
}

// rotate closes the current segment and opens a fresh one with the next
// sequence number, returning the sequence of the now-sealed segment.
func (l *log) rotate(dir string) (sealed uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("wal: log closed")
	}
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: rotate sync: %w", err)
	}
	l.syncs.Add(1)
	if err := l.f.Close(); err != nil {
		return 0, fmt.Errorf("wal: rotate close: %w", err)
	}
	sealed = l.seq
	l.seq++
	l.path = filepath.Join(dir, segName(l.seq))
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.f = nil
		return 0, fmt.Errorf("wal: rotate open: %w", err)
	}
	l.f = f
	l.synced = l.writes // fresh segment: everything prior is on the sealed file
	return sealed, nil
}

func (l *log) close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if err == nil {
		l.syncs.Add(1)
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	l.syncCond.Broadcast()
	return err
}
