package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Session is one held lease as captured in a snapshot (and as reconstructed
// by replay): the name, the fencing token, and the absolute deadline.
type Session struct {
	Name     uint32
	Token    uint64
	Deadline int64 // UnixNano; 0 = infinite
}

// Snapshot is a consistent checkpoint of one partition's lease state. The
// bitmap words come from tas.BitmapSpace.SnapshotWords and serve as a
// cross-check against the session table during restore; LastLSN is the
// journal position the snapshot folds in (replay skips records at or below
// it); TokenSeq is the token-sequence high-water mark at capture time.
type Snapshot struct {
	Partition uint32
	Epoch     uint64
	LastLSN   uint64
	TokenSeq  uint64
	Clean     bool // clean-shutdown marker: snapshot is authoritative, skip tail
	Words     []uint64
	Sessions  []Session
}

const (
	snapshotMagic   = 0x6C61_7761 // "lawa"
	snapshotVersion = 1

	snapFlagClean = 1 << 0

	snapshotName = "snapshot"
	snapshotTmp  = "snapshot.tmp"
)

// encodeSnapshot serializes s with a trailing CRC32-C over everything
// before it.
func encodeSnapshot(s *Snapshot) []byte {
	n := 4 + 2 + 2 + 4 + 8 + 8 + 8 + 4 + len(s.Words)*8 + 4 + len(s.Sessions)*20 + 4
	buf := make([]byte, 0, n)
	var tmp [8]byte

	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:8], v)
		buf = append(buf, tmp[:8]...)
	}

	put32(snapshotMagic)
	var flags uint16
	if s.Clean {
		flags |= snapFlagClean
	}
	binary.LittleEndian.PutUint16(tmp[:2], snapshotVersion)
	buf = append(buf, tmp[:2]...)
	binary.LittleEndian.PutUint16(tmp[:2], flags)
	buf = append(buf, tmp[:2]...)
	put32(s.Partition)
	put64(s.Epoch)
	put64(s.LastLSN)
	put64(s.TokenSeq)
	put32(uint32(len(s.Words)))
	for _, w := range s.Words {
		put64(w)
	}
	put32(uint32(len(s.Sessions)))
	for _, sess := range s.Sessions {
		put32(sess.Name)
		put64(sess.Token)
		put64(uint64(sess.Deadline))
	}
	put32(crc32.Checksum(buf, castagnoli))
	return buf
}

// decodeSnapshot parses an encoded snapshot, verifying magic, version and
// the trailing CRC. Any mismatch returns ErrTorn — a half-written or
// bit-rotted snapshot is treated exactly like a torn record: ignored.
func decodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < 4+2+2+4+8+8+8+4+4+4 {
		return nil, ErrTorn
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, ErrTorn
	}
	off := 0
	get32 := func() uint32 {
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v
	}
	get64 := func() uint64 {
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v
	}
	if get32() != snapshotMagic {
		return nil, ErrTorn
	}
	version := binary.LittleEndian.Uint16(body[off:])
	off += 2
	if version != snapshotVersion {
		return nil, fmt.Errorf("wal: snapshot version %d unsupported", version)
	}
	flags := binary.LittleEndian.Uint16(body[off:])
	off += 2
	s := &Snapshot{Clean: flags&snapFlagClean != 0}
	s.Partition = get32()
	s.Epoch = get64()
	s.LastLSN = get64()
	s.TokenSeq = get64()
	nw := get32()
	if off+int(nw)*8+4 > len(body) {
		return nil, ErrTorn
	}
	s.Words = make([]uint64, nw)
	for i := range s.Words {
		s.Words[i] = get64()
	}
	ns := get32()
	if off+int(ns)*20 != len(body) {
		return nil, ErrTorn
	}
	s.Sessions = make([]Session, ns)
	for i := range s.Sessions {
		s.Sessions[i].Name = get32()
		s.Sessions[i].Token = get64()
		s.Sessions[i].Deadline = int64(get64())
	}
	return s, nil
}

// writeSnapshot persists s atomically: write snapshot.tmp, fsync it, rename
// over snapshot, fsync the directory. A crash at any point leaves either
// the old snapshot or the new one, never a torn mix.
func writeSnapshot(dir string, s *Snapshot) error {
	tmp := filepath.Join(dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot tmp: %w", err)
	}
	if _, err := f.Write(encodeSnapshot(s)); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// readSnapshot loads the partition's snapshot, or (nil, nil) when none
// exists or the file is torn — a missing/corrupt snapshot degrades to a
// full log replay, it is never fatal.
func readSnapshot(dir string) (*Snapshot, error) {
	b, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	s, err := decodeSnapshot(b)
	if err != nil {
		return nil, nil // torn snapshot: fall back to pure log replay
	}
	return s, nil
}

// syncDir fsyncs a directory so renames and unlinks within it are durable.
// Best-effort: some filesystems refuse directory fsync, and losing a
// rename's durability only costs a little extra replay.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
