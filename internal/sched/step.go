package sched

import (
	"fmt"

	"github.com/levelarray/levelarray/internal/spec"
)

// Step executes one shared-memory step of process pid and advances the global
// step counter. If the process has exhausted its input, the step is consumed
// as a no-op (the adversary scheduled an idle process). It returns an error
// only if the simulation reaches a state outside the model's contract (e.g. a
// Get finds no free slot anywhere).
func (s *Simulator) Step(pid int) error {
	if pid < 0 || pid >= len(s.processes) {
		return fmt.Errorf("sched: scheduled process %d out of range [0, %d)", pid, len(s.processes))
	}
	s.stepCount++
	p := s.processes[pid]

	// If idle, start the next operation from the input.
	if p.phase == phaseIdle {
		if p.pc >= len(p.input) {
			return nil // exhausted input: scheduled step is wasted
		}
		op := p.input[p.pc]
		switch op.Kind {
		case OpCall:
			// A Call completes in exactly one step and touches nothing.
			p.pc++
			return nil
		case OpGet:
			p.phase = phaseGetMain
			p.batch = 0
			p.trial = 0
			p.probes = 0
			p.opStart = s.stepCount
		case OpFree:
			// Free completes in exactly one step: the reset.
			return s.stepFree(p)
		case OpCollect:
			p.phase = phaseCollect
			p.scanIndex = 0
			p.collected = p.collected[:0]
			p.opStart = s.stepCount
		default:
			return fmt.Errorf("sched: process %d has op of unknown kind %d", pid, int(op.Kind))
		}
	}

	switch p.phase {
	case phaseGetMain, phaseGetBackup:
		return s.stepGet(p)
	case phaseCollect:
		return s.stepCollect(p)
	default:
		return nil
	}
}

// stepGet performs one probe of the in-flight Get.
func (s *Simulator) stepGet(p *process) error {
	if p.phase == phaseGetMain {
		batch := s.layout.Batch(p.batch)
		slot := batch.Offset + p.rng.Intn(batch.Size)
		p.probes++
		if s.main.TestAndSet(slot) {
			s.completeGet(p, slot, false)
			return nil
		}
		// Advance to the next trial or batch.
		p.trial++
		if p.trial >= s.cfg.ProbesPerBatch {
			p.trial = 0
			p.batch++
			if p.batch >= s.layout.NumBatches() {
				p.phase = phaseGetBackup
				p.scanIndex = 0
			}
		}
		return nil
	}

	// Backup scan: one probe per step, linearly.
	if p.scanIndex >= s.backup.Len() {
		return ErrNoFreeSlot
	}
	slot := p.scanIndex
	p.scanIndex++
	p.probes++
	if s.backup.TestAndSet(slot) {
		s.completeGet(p, s.layout.MainSize()+slot, true)
	}
	return nil
}

// completeGet records the successful acquisition of name by process p.
func (s *Simulator) completeGet(p *process, name int, backup bool) {
	p.holding = true
	p.heldSlot = name
	p.heldFrom = s.stepCount
	p.stats.Record(p.probes, backup)
	batchIndex := s.layout.NumBatches()
	if !backup {
		batchIndex = s.layout.BatchOf(name)
	}
	p.batchHistogram[batchIndex]++
	p.phase = phaseIdle
	p.pc++
	s.completed++
	if s.cfg.RecordTrace {
		s.trace.Append(spec.Event{
			Kind:    spec.GetEvent,
			Process: p.id,
			Name:    name,
			Start:   p.opStart,
			End:     s.stepCount,
			Probes:  p.probes,
		})
	}
}

// stepFree executes a Free operation (a single reset step).
func (s *Simulator) stepFree(p *process) error {
	if !p.holding {
		return fmt.Errorf("sched: process %d scheduled a Free without holding a name", p.id)
	}
	name := p.heldSlot
	if name < s.layout.MainSize() {
		s.main.Reset(name)
	} else {
		s.backup.Reset(name - s.layout.MainSize())
	}
	p.holding = false
	p.stats.RecordFree()
	p.pc++
	s.completed++
	if s.cfg.RecordTrace {
		s.trace.Append(spec.Event{
			Kind:    spec.FreeEvent,
			Process: p.id,
			Name:    name,
			Start:   s.stepCount,
			End:     s.stepCount,
		})
	}
	return nil
}

// stepCollect performs one read of the in-flight Collect. The scan covers the
// main array and the backup array, one slot per step, matching the model's
// O(n) collect cost.
func (s *Simulator) stepCollect(p *process) error {
	total := s.layout.TotalSize()
	slot := p.scanIndex
	var taken bool
	if slot < s.layout.MainSize() {
		taken = s.main.Read(slot)
	} else {
		taken = s.backup.Read(slot - s.layout.MainSize())
	}
	if taken {
		p.collected = append(p.collected, slot)
	}
	p.scanIndex++
	if p.scanIndex >= total {
		if s.cfg.RecordTrace {
			names := make([]int, len(p.collected))
			copy(names, p.collected)
			s.trace.Append(spec.Event{
				Kind:    spec.CollectEvent,
				Process: p.id,
				Names:   names,
				Start:   p.opStart,
				End:     s.stepCount,
			})
		}
		p.phase = phaseIdle
		p.pc++
	}
	return nil
}

// Run executes steps scheduled by schedule until the given number of steps
// have been taken or every process has exhausted its input. It returns the
// number of steps actually executed.
func (s *Simulator) Run(schedule Schedule, steps uint64) (uint64, error) {
	var executed uint64
	for executed < steps {
		if s.Done() {
			return executed, nil
		}
		pid := schedule.Next(s.stepCount)
		if err := s.Step(pid); err != nil {
			return executed, err
		}
		executed++
	}
	return executed, nil
}

// RunUntilDone keeps scheduling steps until every process has exhausted its
// input or maxSteps have been executed. It returns an error if the limit is
// reached first, which usually indicates a schedule that starves some
// process.
func (s *Simulator) RunUntilDone(schedule Schedule, maxSteps uint64) error {
	for steps := uint64(0); steps < maxSteps; steps++ {
		if s.Done() {
			return nil
		}
		pid := schedule.Next(s.stepCount)
		if err := s.Step(pid); err != nil {
			return err
		}
	}
	if !s.Done() {
		return fmt.Errorf("sched: execution did not finish within %d steps", maxSteps)
	}
	return nil
}

// RunWithObserver is Run with a callback invoked after every step; the
// healing experiment uses it to take periodic occupancy snapshots. Returning
// false from the callback stops the run early.
func (s *Simulator) RunWithObserver(schedule Schedule, steps uint64, observe func(step uint64) bool) (uint64, error) {
	var executed uint64
	for executed < steps {
		if s.Done() {
			return executed, nil
		}
		pid := schedule.Next(s.stepCount)
		if err := s.Step(pid); err != nil {
			return executed, err
		}
		executed++
		if observe != nil && !observe(s.stepCount) {
			return executed, nil
		}
	}
	return executed, nil
}
