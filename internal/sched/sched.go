// Package sched is a deterministic, step-level execution simulator for the
// LevelArray under the paper's asynchronous shared-memory model with an
// oblivious adversary (Section 2).
//
// In this model an execution is fully described by (a) each process's input —
// a well-formed sequence of Get, Free, Collect and Call operations — and (b)
// a schedule: a string of process identifiers where the i-th identifier names
// the process that takes the i-th shared-memory step. Both are fixed before
// the execution starts, i.e. they cannot depend on random choices, which is
// exactly the oblivious-adversary assumption the analysis needs.
//
// The simulator executes one shared-memory operation (test-and-set, reset, or
// read) per scheduled step, so properties the proofs reason about — the batch
// reached by each Get, per-step array balance, linearization order — can be
// measured directly and checked against the theory (Section 5). The
// goroutine-based harness (internal/harness) complements it with wall-clock
// experiments; this package is single-goroutine by design so that the Go
// runtime scheduler cannot perturb the adversarial schedule.
package sched

import (
	"errors"
	"fmt"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/balance"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/spec"
	"github.com/levelarray/levelarray/internal/tas"
)

// OpKind identifies one operation in a process's input.
type OpKind int

// The four operation kinds of the model: Get/Free (registration), Collect
// (query) and Call (a step of arbitrary unrelated computation, used by the
// adversary to pad and misalign operations).
const (
	OpGet OpKind = iota + 1
	OpFree
	OpCollect
	OpCall
)

// String returns the operation kind's name.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "Get"
	case OpFree:
		return "Free"
	case OpCollect:
		return "Collect"
	case OpCall:
		return "Call"
	default:
		return "unknown"
	}
}

// Op is one operation in a process input.
type Op struct {
	Kind OpKind
}

// Input is the well-formed operation sequence handed to one process.
type Input []Op

// Validate checks the well-formedness requirement from Section 2: Get and
// Free alternate starting with Get; Collect and Call may appear anywhere.
func (in Input) Validate() error {
	holding := false
	for i, op := range in {
		switch op.Kind {
		case OpGet:
			if holding {
				return fmt.Errorf("sched: input op %d is Get while already holding a name", i)
			}
			holding = true
		case OpFree:
			if !holding {
				return fmt.Errorf("sched: input op %d is Free without a preceding Get", i)
			}
			holding = false
		case OpCollect, OpCall:
		default:
			return fmt.Errorf("sched: input op %d has unknown kind %d", i, int(op.Kind))
		}
	}
	return nil
}

// CountKind returns the number of operations of the given kind in the input.
func (in Input) CountKind(kind OpKind) int {
	n := 0
	for _, op := range in {
		if op.Kind == kind {
			n++
		}
	}
	return n
}

// Schedule produces the process identifier that takes each step. It must be
// oblivious: the identifier may depend on the step index only, never on the
// execution so far.
type Schedule interface {
	// Next returns the process that takes step number step (0-based). The
	// returned identifier must be in [0, processes).
	Next(step uint64) int
}

// ScheduleFunc adapts a function to the Schedule interface.
type ScheduleFunc func(step uint64) int

// Next implements Schedule.
func (f ScheduleFunc) Next(step uint64) int { return f(step) }

// SliceSchedule replays a fixed string of process identifiers, cycling when
// the string is exhausted.
type SliceSchedule []int

// Next implements Schedule.
func (s SliceSchedule) Next(step uint64) int {
	return s[int(step%uint64(len(s)))]
}

// Config parameterizes a simulation.
type Config struct {
	// Capacity is n, the contention bound of the simulated LevelArray. It
	// must be at least the number of processes.
	Capacity int
	// Epsilon is the space parameter (zero selects the default 2n array).
	Epsilon float64
	// ProbesPerBatch is the per-batch trial count c (zero selects 1, the
	// implementation default).
	ProbesPerBatch int
	// RNG selects the generator family for probe choices.
	RNG rng.Kind
	// Seed is the base seed for per-process generators.
	Seed uint64
	// Inputs holds one operation sequence per process; the number of
	// processes is len(Inputs).
	Inputs []Input
	// RecordTrace enables recording of a spec.Trace for correctness
	// checking. Disable it for very long runs to save memory.
	RecordTrace bool
}

// Errors returned by the simulator.
var (
	// ErrNoFreeSlot is returned when a Get exhausts every slot including the
	// backup array, which can only happen if the configuration violates the
	// model's contention bound.
	ErrNoFreeSlot = errors.New("sched: no free slot available (contention exceeds capacity)")
)

// phase describes where a process is inside its current operation.
type phase int

const (
	phaseIdle phase = iota
	phaseGetMain
	phaseGetBackup
	phaseCollect
)

// process is the simulator-side state of one simulated process.
type process struct {
	id    int
	input Input
	pc    int // index of the current operation in input

	phase   phase
	opStart uint64

	// Get state.
	batch  int
	trial  int
	probes int

	// Collect state.
	scanIndex int
	collected []int

	// Registration state.
	heldSlot int
	holding  bool
	heldFrom uint64 // step at which the current name was acquired

	rng   rng.Source
	stats activity.ProbeStats

	// batchHistogram counts completed Gets by the batch they stopped in
	// (index NumBatches = backup).
	batchHistogram []uint64
}

// done reports whether the process has executed its whole input.
func (p *process) done() bool {
	return p.pc >= len(p.input) && p.phase == phaseIdle
}

// Simulator executes a step-level simulation of the LevelArray.
type Simulator struct {
	cfg    Config
	layout *balance.Layout
	main   tas.Space
	backup tas.Space

	processes []*process
	stepCount uint64
	completed uint64 // completed Get+Free operations

	trace spec.Trace
}

// New builds a simulator from cfg.
func New(cfg Config) (*Simulator, error) {
	if len(cfg.Inputs) == 0 {
		return nil, errors.New("sched: at least one process input is required")
	}
	if cfg.Capacity < len(cfg.Inputs) {
		return nil, fmt.Errorf("sched: capacity %d is below the number of processes %d",
			cfg.Capacity, len(cfg.Inputs))
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = balance.DefaultEpsilon
	}
	if cfg.ProbesPerBatch == 0 {
		cfg.ProbesPerBatch = 1
	}
	if cfg.ProbesPerBatch < 1 {
		return nil, fmt.Errorf("sched: probes per batch %d must be at least 1", cfg.ProbesPerBatch)
	}
	if cfg.RNG == 0 {
		cfg.RNG = rng.KindXorshift
	}
	layout, err := balance.NewLayout(cfg.Capacity, cfg.Epsilon)
	if err != nil {
		return nil, fmt.Errorf("sched: building layout: %w", err)
	}

	seeds := rng.SeedStream(cfg.Seed, len(cfg.Inputs))
	processes := make([]*process, len(cfg.Inputs))
	for i, input := range cfg.Inputs {
		if err := input.Validate(); err != nil {
			return nil, fmt.Errorf("sched: process %d: %w", i, err)
		}
		processes[i] = &process{
			id:             i,
			input:          input,
			rng:            rng.New(cfg.RNG, seeds[i]),
			batchHistogram: make([]uint64, layout.NumBatches()+1),
		}
	}
	return &Simulator{
		cfg:       cfg,
		layout:    layout,
		main:      tas.NewBitmapSpace(layout.MainSize()),
		backup:    tas.NewBitmapSpace(layout.BackupSize()),
		processes: processes,
		trace: spec.Trace{
			Capacity:      cfg.Capacity,
			NamespaceSize: layout.TotalSize(),
		},
	}, nil
}

// MustNew is New but panics on error; for tests and experiment drivers with
// known-good configurations.
func MustNew(cfg Config) *Simulator {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NumProcesses returns the number of simulated processes.
func (s *Simulator) NumProcesses() int { return len(s.processes) }

// Layout returns the batch geometry of the simulated array.
func (s *Simulator) Layout() *balance.Layout { return s.layout }

// StepCount returns the number of steps executed so far.
func (s *Simulator) StepCount() uint64 { return s.stepCount }

// CompletedOps returns the number of completed Get and Free operations.
func (s *Simulator) CompletedOps() uint64 { return s.completed }

// Done reports whether every process has exhausted its input.
func (s *Simulator) Done() bool {
	for _, p := range s.processes {
		if !p.done() {
			return false
		}
	}
	return true
}

// Trace returns the recorded trace. It is only populated when
// Config.RecordTrace is set.
func (s *Simulator) Trace() spec.Trace { return s.trace }

// Occupancy measures the simulated array's per-batch occupancy.
func (s *Simulator) Occupancy() balance.Occupancy {
	occ := balance.MeasureOccupancy(s.layout, s.main)
	backupCount := 0
	for i := 0; i < s.backup.Len(); i++ {
		if s.backup.Read(i) {
			backupCount++
		}
	}
	occ[s.layout.NumBatches()] = backupCount
	return occ
}

// Snapshot packages the current occupancy as a balance.Snapshot stamped with
// the current step count.
func (s *Simulator) Snapshot() balance.Snapshot {
	snap := balance.TakeSnapshot(s.layout, s.main, s.stepCount)
	// Fold in backup occupancy measured separately (the main space holds
	// only the batched slots).
	backupCount := 0
	for i := 0; i < s.backup.Len(); i++ {
		if s.backup.Read(i) {
			backupCount++
		}
	}
	snap.Counts[s.layout.NumBatches()] = backupCount
	snap.Fractions[s.layout.NumBatches()] = float64(backupCount) / float64(s.layout.BackupSize())
	return snap
}

// ProcessStats returns the cumulative probe statistics of process id.
func (s *Simulator) ProcessStats(id int) activity.ProbeStats {
	return s.processes[id].stats
}

// MergedStats returns the probe statistics aggregated over all processes.
func (s *Simulator) MergedStats() activity.ProbeStats {
	var merged activity.ProbeStats
	for _, p := range s.processes {
		merged.Merge(p.stats)
	}
	return merged
}

// BatchHistogram returns, per batch index (backup last), how many completed
// Gets stopped in that batch, aggregated over all processes.
func (s *Simulator) BatchHistogram() []uint64 {
	out := make([]uint64, s.layout.NumBatches()+1)
	for _, p := range s.processes {
		for j, c := range p.batchHistogram {
			out[j] += c
		}
	}
	return out
}

// ProcessHolding reports whether process id currently holds a name, and the
// name if so.
func (s *Simulator) ProcessHolding(id int) (int, bool) {
	p := s.processes[id]
	if !p.holding {
		return 0, false
	}
	return p.heldSlot, true
}

// PreFill force-acquires main-array slots according to the degraded-state
// specification, which is how the healing experiment reproduces Figure 3's
// unbalanced initial state: the occupied slots model leftover registrations
// of departed threads. It returns the acquired slot indices.
func (s *Simulator) PreFill(state balance.DegradedStateSpec) []int {
	return state.Apply(s.layout, s.main)
}

// ReleaseSlots resets previously pre-filled main-array slots, allowing
// experiments to model departed threads eventually returning their names.
func (s *Simulator) ReleaseSlots(slots []int) {
	for _, slot := range slots {
		if slot >= 0 && slot < s.main.Len() {
			s.main.Reset(slot)
		}
	}
}
