package sched

import (
	"testing"
	"testing/quick"

	"github.com/levelarray/levelarray/internal/balance"
	"github.com/levelarray/levelarray/internal/spec"
)

// churnInputs builds n identical inputs of the given number of Get/Free
// rounds with callPad Call steps after each operation.
func churnInputs(n, rounds, callPad int) []Input {
	inputs := make([]Input, n)
	for i := range inputs {
		var in Input
		for r := 0; r < rounds; r++ {
			in = append(in, Op{Kind: OpGet})
			for c := 0; c < callPad; c++ {
				in = append(in, Op{Kind: OpCall})
			}
			in = append(in, Op{Kind: OpFree})
			for c := 0; c < callPad; c++ {
				in = append(in, Op{Kind: OpCall})
			}
		}
		inputs[i] = in
	}
	return inputs
}

func roundRobin(n int) Schedule {
	return ScheduleFunc(func(step uint64) int { return int(step % uint64(n)) })
}

func TestOpKindString(t *testing.T) {
	cases := map[OpKind]string{
		OpGet:      "Get",
		OpFree:     "Free",
		OpCollect:  "Collect",
		OpCall:     "Call",
		OpKind(0):  "unknown",
		OpKind(42): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestInputValidate(t *testing.T) {
	valid := Input{{Kind: OpGet}, {Kind: OpCall}, {Kind: OpFree}, {Kind: OpCollect}, {Kind: OpGet}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	cases := map[string]Input{
		"double-get":      {{Kind: OpGet}, {Kind: OpGet}},
		"free-first":      {{Kind: OpFree}},
		"free-after-free": {{Kind: OpGet}, {Kind: OpFree}, {Kind: OpFree}},
		"unknown-kind":    {{Kind: OpKind(99)}},
	}
	for name, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("%s: invalid input accepted", name)
		}
	}
}

func TestInputCountKind(t *testing.T) {
	in := Input{{Kind: OpGet}, {Kind: OpCall}, {Kind: OpCall}, {Kind: OpFree}}
	if got := in.CountKind(OpCall); got != 2 {
		t.Fatalf("CountKind(Call) = %d, want 2", got)
	}
	if got := in.CountKind(OpCollect); got != 0 {
		t.Fatalf("CountKind(Collect) = %d, want 0", got)
	}
}

func TestNewValidation(t *testing.T) {
	valid := Config{Capacity: 4, Inputs: churnInputs(4, 1, 0)}
	if _, err := New(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := map[string]Config{
		"no-inputs":            {Capacity: 4},
		"capacity-below-procs": {Capacity: 2, Inputs: churnInputs(4, 1, 0)},
		"invalid-input":        {Capacity: 4, Inputs: []Input{{{Kind: OpFree}}}},
		"negative-probes":      {Capacity: 4, Inputs: churnInputs(4, 1, 0), ProbesPerBatch: -1},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestSliceSchedule(t *testing.T) {
	s := SliceSchedule{3, 1, 2}
	want := []int{3, 1, 2, 3, 1, 2}
	for step, w := range want {
		if got := s.Next(uint64(step)); got != w {
			t.Fatalf("Next(%d) = %d, want %d", step, got, w)
		}
	}
}

func TestSingleProcessRoundTrip(t *testing.T) {
	sim := MustNew(Config{
		Capacity:    4,
		Inputs:      []Input{{{Kind: OpGet}, {Kind: OpCall}, {Kind: OpFree}}},
		Seed:        1,
		RecordTrace: true,
	})
	if err := sim.RunUntilDone(roundRobin(1), 1000); err != nil {
		t.Fatalf("RunUntilDone: %v", err)
	}
	if !sim.Done() {
		t.Fatal("simulation not done")
	}
	if sim.CompletedOps() != 2 {
		t.Fatalf("CompletedOps = %d, want 2 (one Get, one Free)", sim.CompletedOps())
	}
	stats := sim.ProcessStats(0)
	if stats.Ops != 1 || stats.Frees != 1 {
		t.Fatalf("stats = %+v, want one Get and one Free", stats)
	}
	if stats.MaxProbes < 1 {
		t.Fatalf("MaxProbes = %d, want >= 1", stats.MaxProbes)
	}
	if violations := spec.Check(sim.Trace()); len(violations) != 0 {
		t.Fatalf("trace violations: %v", violations)
	}
	if occ := sim.Occupancy(); occ.Total() != 0 {
		t.Fatalf("occupancy after free = %v", occ)
	}
}

func TestStepErrors(t *testing.T) {
	sim := MustNew(Config{Capacity: 2, Inputs: churnInputs(2, 1, 0), Seed: 1})
	if err := sim.Step(-1); err == nil {
		t.Fatal("negative pid accepted")
	}
	if err := sim.Step(2); err == nil {
		t.Fatal("out-of-range pid accepted")
	}
}

func TestIdleProcessStepIsNoOp(t *testing.T) {
	sim := MustNew(Config{Capacity: 2, Inputs: []Input{{{Kind: OpGet}}, {{Kind: OpGet}}}, Seed: 1})
	// Run process 0's single Get to completion.
	for !sim.processes[0].done() {
		if err := sim.Step(0); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	before := sim.CompletedOps()
	if err := sim.Step(0); err != nil {
		t.Fatalf("idle step errored: %v", err)
	}
	if sim.CompletedOps() != before {
		t.Fatal("idle step completed an operation")
	}
	if sim.StepCount() == 0 {
		t.Fatal("step count not advancing")
	}
}

func TestTraceValidUnderRoundRobinChurn(t *testing.T) {
	const (
		n      = 16
		rounds = 30
	)
	sim := MustNew(Config{
		Capacity:    n,
		Inputs:      churnInputs(n, rounds, 2),
		Seed:        7,
		RecordTrace: true,
	})
	if err := sim.RunUntilDone(roundRobin(n), 10_000_000); err != nil {
		t.Fatalf("RunUntilDone: %v", err)
	}
	tr := sim.Trace()
	if len(tr.Events) != n*rounds*2 {
		t.Fatalf("trace has %d events, want %d", len(tr.Events), n*rounds*2)
	}
	if violations := spec.Check(tr); len(violations) != 0 {
		t.Fatalf("violations: %v", violations)
	}
	merged := sim.MergedStats()
	if merged.Ops != uint64(n*rounds) {
		t.Fatalf("merged Ops = %d, want %d", merged.Ops, n*rounds)
	}
	if merged.Mean() < 1 {
		t.Fatalf("mean probes %v below 1", merged.Mean())
	}
	// With at most n/2... n concurrent holders on a 2n array and c=1, the
	// worst case should stay well below the deterministic O(n) regime.
	if merged.MaxProbes > uint64(sim.Layout().NumBatches()+sim.Layout().BackupSize()) {
		t.Fatalf("worst case %d probes exceeds batches+backup", merged.MaxProbes)
	}
}

func TestCollectObservedByTrace(t *testing.T) {
	inputs := []Input{
		{{Kind: OpGet}, {Kind: OpFree}},
		{{Kind: OpCollect}},
	}
	sim := MustNew(Config{Capacity: 2, Inputs: inputs, Seed: 3, RecordTrace: true})
	// Schedule: one step for process 0 (its Get completes on the first probe
	// of an empty array), then process 1's whole collect (one read per slot),
	// then process 0 again for its Free.
	schedule := ScheduleFunc(func(step uint64) int {
		switch {
		case step == 0:
			return 0
		case step <= uint64(sim.Layout().TotalSize()):
			return 1
		default:
			return 0
		}
	})
	if err := sim.RunUntilDone(schedule, 100_000); err != nil {
		t.Fatalf("RunUntilDone: %v", err)
	}
	tr := sim.Trace()
	var collects int
	var collectedNames []int
	for _, ev := range tr.Events {
		if ev.Kind == spec.CollectEvent {
			collects++
			collectedNames = ev.Names
		}
	}
	if collects != 1 {
		t.Fatalf("trace has %d collect events, want 1", collects)
	}
	if len(collectedNames) != 1 {
		t.Fatalf("collect returned %v, want exactly the held name", collectedNames)
	}
	if violations := spec.Check(tr); len(violations) != 0 {
		t.Fatalf("violations: %v", violations)
	}
}

func TestProcessHolding(t *testing.T) {
	sim := MustNew(Config{Capacity: 2, Inputs: churnInputs(2, 1, 0), Seed: 5})
	if _, holding := sim.ProcessHolding(0); holding {
		t.Fatal("process 0 holding before any step")
	}
	// Drive process 0 until it completes its Get.
	for sim.ProcessStats(0).Ops == 0 {
		if err := sim.Step(0); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	name, holding := sim.ProcessHolding(0)
	if !holding {
		t.Fatal("process 0 not holding after Get")
	}
	if name < 0 || name >= sim.Layout().TotalSize() {
		t.Fatalf("held name %d out of range", name)
	}
}

func TestBatchHistogramAccounting(t *testing.T) {
	const n = 8
	sim := MustNew(Config{Capacity: n, Inputs: churnInputs(n, 10, 0), Seed: 11})
	if err := sim.RunUntilDone(roundRobin(n), 1_000_000); err != nil {
		t.Fatalf("RunUntilDone: %v", err)
	}
	hist := sim.BatchHistogram()
	var total uint64
	for _, c := range hist {
		total += c
	}
	if total != uint64(n*10) {
		t.Fatalf("histogram total %d, want %d", total, n*10)
	}
	if hist[0] == 0 {
		t.Fatal("no acquisitions in batch 0")
	}
}

func TestRunStepLimit(t *testing.T) {
	const n = 4
	sim := MustNew(Config{Capacity: n, Inputs: churnInputs(n, 100, 0), Seed: 2})
	executed, err := sim.Run(roundRobin(n), 37)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if executed != 37 {
		t.Fatalf("executed %d steps, want 37", executed)
	}
	if sim.StepCount() != 37 {
		t.Fatalf("StepCount = %d, want 37", sim.StepCount())
	}
	if sim.Done() {
		t.Fatal("simulation done after only 37 steps")
	}
}

func TestRunUntilDoneStarvation(t *testing.T) {
	const n = 2
	sim := MustNew(Config{Capacity: n, Inputs: churnInputs(n, 5, 0), Seed: 2})
	// A schedule that never runs process 1 cannot finish.
	onlyZero := ScheduleFunc(func(uint64) int { return 0 })
	if err := sim.RunUntilDone(onlyZero, 10_000); err == nil {
		t.Fatal("starving schedule reported completion")
	}
}

func TestRunWithObserverEarlyStop(t *testing.T) {
	const n = 4
	sim := MustNew(Config{Capacity: n, Inputs: churnInputs(n, 100, 0), Seed: 9})
	var observed int
	executed, err := sim.RunWithObserver(roundRobin(n), 1000, func(step uint64) bool {
		observed++
		return observed < 10
	})
	if err != nil {
		t.Fatalf("RunWithObserver: %v", err)
	}
	if executed != 10 || observed != 10 {
		t.Fatalf("executed %d observed %d, want 10/10", executed, observed)
	}
}

func TestPreFillAndRelease(t *testing.T) {
	const n = 64
	sim := MustNew(Config{Capacity: n, Inputs: churnInputs(n, 1, 0), Seed: 13})
	taken := sim.PreFill(balance.Fig3InitialState())
	if len(taken) == 0 {
		t.Fatal("PreFill acquired nothing")
	}
	occ := sim.Occupancy()
	if occ.Total() != len(taken) {
		t.Fatalf("occupancy %d, want %d", occ.Total(), len(taken))
	}
	if balance.FullyBalanced(sim.Layout(), occ) {
		t.Fatal("Fig3 initial state should be unbalanced")
	}
	snap := sim.Snapshot()
	if snap.FullyBalanced {
		t.Fatal("snapshot reports balanced for degraded state")
	}
	sim.ReleaseSlots(taken)
	if sim.Occupancy().Total() != 0 {
		t.Fatal("ReleaseSlots did not free everything")
	}
}

func TestBackupReachedWhenMainSaturated(t *testing.T) {
	// Saturate the entire main array via PreFill, then let one process Get:
	// it must fall through every batch into the backup.
	const n = 8
	sim := MustNew(Config{Capacity: n, Inputs: []Input{{{Kind: OpGet}}}, Seed: 17})
	full := balance.DegradedStateSpec{Fractions: make([]float64, sim.Layout().NumBatches())}
	for i := range full.Fractions {
		full.Fractions[i] = 1.0
	}
	sim.PreFill(full)
	if err := sim.RunUntilDone(roundRobin(1), 100_000); err != nil {
		t.Fatalf("RunUntilDone: %v", err)
	}
	stats := sim.ProcessStats(0)
	if stats.BackupOps != 1 {
		t.Fatalf("BackupOps = %d, want 1", stats.BackupOps)
	}
	name, holding := sim.ProcessHolding(0)
	if !holding || name < sim.Layout().MainSize() {
		t.Fatalf("process should hold a backup name, got (%d, %v)", name, holding)
	}
}

func TestNoFreeSlotError(t *testing.T) {
	// Two processes, capacity 1... not allowed by validation, so instead
	// saturate main AND backup, then ask for a Get.
	const n = 2
	sim := MustNew(Config{Capacity: n, Inputs: []Input{{{Kind: OpGet}}, {}}, Seed: 19})
	full := balance.DegradedStateSpec{Fractions: make([]float64, sim.Layout().NumBatches())}
	for i := range full.Fractions {
		full.Fractions[i] = 1.0
	}
	sim.PreFill(full)
	for i := 0; i < sim.Layout().BackupSize(); i++ {
		// Saturate the backup directly through the simulator's space by
		// running a degenerate second prefill; the backup is not covered by
		// DegradedStateSpec, so reach it via repeated steps instead: simply
		// exhaust it by marking the slots below.
		sim.backup.TestAndSet(i)
	}
	err := sim.RunUntilDone(roundRobin(n), 100_000)
	if err == nil {
		t.Fatal("expected ErrNoFreeSlot")
	}
}

// Property: for arbitrary small process counts, rounds and seeds, a
// round-robin execution completes, produces a spec-clean trace, and ends with
// an empty array.
func TestQuickRoundRobinExecutions(t *testing.T) {
	prop := func(nRaw, roundsRaw uint8, seed uint64) bool {
		n := int(nRaw%8) + 1
		rounds := int(roundsRaw%10) + 1
		sim := MustNew(Config{
			Capacity:    n,
			Inputs:      churnInputs(n, rounds, 1),
			Seed:        seed,
			RecordTrace: true,
		})
		if err := sim.RunUntilDone(roundRobin(n), 10_000_000); err != nil {
			return false
		}
		if len(spec.Check(sim.Trace())) != 0 {
			return false
		}
		return sim.Occupancy().Total() == 0 && sim.MergedStats().Ops == uint64(n*rounds)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: executions under arbitrary (hash-derived) oblivious schedules
// remain spec-clean. The schedule is a pure function of the step index, as
// obliviousness requires.
func TestQuickObliviousScheduleExecutions(t *testing.T) {
	prop := func(seed uint64) bool {
		const n = 6
		sim := MustNew(Config{
			Capacity:    n,
			Inputs:      churnInputs(n, 8, 3),
			Seed:        seed,
			RecordTrace: true,
		})
		schedule := ScheduleFunc(func(step uint64) int {
			x := (step + 1) * (seed | 1)
			x ^= x >> 13
			return int(x % uint64(n))
		})
		// Hash schedules may starve a process for a while; allow generous
		// budgets and tolerate an unfinished run as long as the trace is
		// valid.
		_, err := sim.Run(schedule, 200_000)
		if err != nil {
			return false
		}
		return len(spec.Check(sim.Trace())) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
