// Package stm implements the software-transactional-memory application the
// paper's introduction motivates: an STM needs to "detect conflicts between
// reader and writer threads", which it does by having readers register in an
// activity array (the pessimistic lock-elision / implicit-privatization
// pattern cited as [3, 16]).
//
// The STM itself is a small word-based design in the TL2 family:
//
//   - every transactional variable (Var) carries a versioned lock;
//   - readers validate that the versions they observed did not change and
//     were not locked;
//   - writers lock their write set, re-validate their read set, then publish
//     new versions under an incremented global clock.
//
// The activity array enters in two places. First, every transaction registers
// for its duration, announcing its read version; the namespace index it gets
// back doubles as its transaction identifier. Second, WaitForReaders (the
// privatization / quiescence barrier) Collects the registry and waits until
// no registered transaction is running against a snapshot older than a given
// clock value — the operation whose cost is dominated by registration speed,
// which is what the LevelArray accelerates.
package stm

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
)

// ErrAborted is returned by Atomically when a transaction exceeds its retry
// budget, and by user code that wants to abort explicitly.
var ErrAborted = errors.New("stm: transaction aborted")

// DefaultMaxRetries bounds the number of times Atomically re-runs a
// transaction before giving up.
const DefaultMaxRetries = 1000

// Config parameterizes an STM instance.
type Config struct {
	// MaxThreads is the maximum number of concurrently running transactions.
	MaxThreads int
	// Registry optionally supplies the activity array used as the reader
	// registry. Nil selects a LevelArray of capacity MaxThreads.
	Registry activity.Array
	// MaxRetries bounds transaction re-execution. Zero selects
	// DefaultMaxRetries.
	MaxRetries int
	// Seed seeds the default LevelArray registry.
	Seed uint64
}

// STM is a software transactional memory instance. All Vars participating in
// the same transactions must be created from the same STM.
type STM struct {
	clock      atomic.Uint64
	registry   activity.Array
	maxRetries int

	// announcements[name] holds 1+readVersion of the transaction registered
	// at that registry index, or 0 when unannounced.
	announcements []atomic.Uint64

	stats Stats
}

// Stats counts transaction outcomes.
type Stats struct {
	Commits  atomic.Uint64
	Aborts   atomic.Uint64
	Retries  atomic.Uint64
	Barriers atomic.Uint64
}

// New builds an STM instance.
func New(cfg Config) (*STM, error) {
	if cfg.MaxThreads < 1 {
		return nil, fmt.Errorf("stm: max threads %d must be at least 1", cfg.MaxThreads)
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.MaxRetries < 1 {
		return nil, fmt.Errorf("stm: max retries %d must be at least 1", cfg.MaxRetries)
	}
	reg := cfg.Registry
	if reg == nil {
		la, err := core.New(core.Config{Capacity: cfg.MaxThreads, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("stm: building registry: %w", err)
		}
		reg = la
	}
	return &STM{
		registry:      reg,
		maxRetries:    cfg.MaxRetries,
		announcements: make([]atomic.Uint64, reg.Size()),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *STM {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Registry returns the reader registry.
func (s *STM) Registry() activity.Array { return s.registry }

// Clock returns the current global version clock.
func (s *STM) Clock() uint64 { return s.clock.Load() }

// Commits returns the number of committed transactions.
func (s *STM) Commits() uint64 { return s.stats.Commits.Load() }

// Aborts returns the number of transactions that exhausted their retries.
func (s *STM) Aborts() uint64 { return s.stats.Aborts.Load() }

// Retries returns the number of transaction re-executions due to conflicts.
func (s *STM) Retries() uint64 { return s.stats.Retries.Load() }

// Var is a transactional variable holding an int64.
type Var struct {
	stm *STM
	// version is even when unlocked (the version number ×2) and odd when a
	// committing writer holds the lock.
	version atomic.Uint64
	value   atomic.Int64
}

// NewVar creates a transactional variable with an initial value.
func (s *STM) NewVar(initial int64) *Var {
	v := &Var{stm: s}
	v.value.Store(initial)
	return v
}

// ReadDirect returns the variable's value outside any transaction. It is
// safe only after a privatization barrier or when no writers are active.
func (v *Var) ReadDirect() int64 { return v.value.Load() }

// Tx is a running transaction. It is not safe for concurrent use.
type Tx struct {
	stm         *STM
	readVersion uint64
	readSet     map[*Var]uint64
	writeSet    map[*Var]int64
	conflict    bool
}

// errConflict is an internal sentinel making a transaction re-execute.
var errConflict = errors.New("stm: conflict")

// Read returns the variable's value as observed by the transaction.
func (t *Tx) Read(v *Var) (int64, error) {
	if val, written := t.writeSet[v]; written {
		return val, nil
	}
	pre := v.version.Load()
	if pre%2 == 1 {
		t.conflict = true
		return 0, errConflict
	}
	val := v.value.Load()
	post := v.version.Load()
	if post != pre || pre/2 > t.readVersion {
		t.conflict = true
		return 0, errConflict
	}
	t.readSet[v] = pre
	return val, nil
}

// Write buffers a new value for the variable; it becomes visible only if the
// transaction commits.
func (t *Tx) Write(v *Var, value int64) {
	t.writeSet[v] = value
}

// Thread is a per-goroutine transaction context. It owns the goroutine's
// registry handle, so repeated transactions from the same goroutine reuse one
// registration endpoint (the paper's workers register and deregister through
// the same handle for their whole lifetime). A Thread is not safe for
// concurrent use.
type Thread struct {
	stm    *STM
	handle activity.Handle
}

// Thread returns a new per-goroutine transaction context.
func (s *STM) Thread() *Thread {
	return &Thread{stm: s, handle: s.registry.Handle()}
}

// RegistrationStats returns the probe statistics of this thread's registry
// handle: how much its transactions paid for registration.
func (t *Thread) RegistrationStats() activity.ProbeStats { return t.handle.Stats() }

// Atomically runs fn as a transaction, retrying on conflicts. fn may be
// executed multiple times and must therefore be free of side effects other
// than Tx reads and writes. Returning a non-nil error from fn aborts the
// transaction and propagates the error without retrying (unless the error is
// the internal conflict marker).
//
// Atomically allocates a fresh per-call registry handle; goroutines running
// many transactions should create a Thread once and use Thread.Atomically.
func (s *STM) Atomically(fn func(tx *Tx) error) error {
	return s.Thread().Atomically(fn)
}

// Atomically runs fn as a transaction using this thread's registration
// handle; see STM.Atomically for the retry semantics.
func (th *Thread) Atomically(fn func(tx *Tx) error) error {
	s := th.stm
	handle := th.handle
	for attempt := 0; attempt < s.maxRetries; attempt++ {
		name, err := handle.Get()
		if err != nil {
			return fmt.Errorf("stm: registering transaction: %w", err)
		}
		readVersion := s.clock.Load()
		s.announcements[name].Store(readVersion + 1)

		tx := &Tx{
			stm:         s,
			readVersion: readVersion,
			readSet:     make(map[*Var]uint64),
			writeSet:    make(map[*Var]int64),
		}
		err = fn(tx)
		var committed bool
		if err == nil && !tx.conflict {
			committed = tx.commit()
		}

		s.announcements[name].Store(0)
		if freeErr := handle.Free(); freeErr != nil {
			return fmt.Errorf("stm: deregistering transaction: %w", freeErr)
		}

		switch {
		case err != nil && !errors.Is(err, errConflict) && !tx.conflict:
			// A user-level error aborts without retrying.
			return err
		case committed:
			s.stats.Commits.Add(1)
			return nil
		default:
			s.stats.Retries.Add(1)
			runtime.Gosched()
		}
	}
	s.stats.Aborts.Add(1)
	return ErrAborted
}

// commit attempts to publish the transaction's write set. It returns false on
// conflict, in which case nothing was published.
func (t *Tx) commit() bool {
	if len(t.writeSet) == 0 {
		// Read-only transactions validated each read as it happened.
		return true
	}
	// Lock the write set (in arbitrary order; deadlock is impossible because
	// locking is try-lock only).
	locked := make([]*Var, 0, len(t.writeSet))
	for v := range t.writeSet {
		pre := v.version.Load()
		if pre%2 == 1 || !v.version.CompareAndSwap(pre, pre+1) {
			t.unlock(locked, false, 0)
			return false
		}
		if pre/2 > t.readVersion {
			// The variable changed since the transaction began.
			locked = append(locked, v)
			t.unlock(locked, false, 0)
			return false
		}
		locked = append(locked, v)
	}
	// Validate the read set: nothing read may have been modified or locked by
	// another writer.
	for v, pre := range t.readSet {
		if _, alsoWritten := t.writeSet[v]; alsoWritten {
			continue
		}
		cur := v.version.Load()
		if cur != pre {
			t.unlock(locked, false, 0)
			return false
		}
	}
	// Publish under a new clock value.
	newClock := t.stm.clock.Add(1)
	for v, value := range t.writeSet {
		v.value.Store(value)
	}
	t.unlock(locked, true, newClock)
	return true
}

// unlock releases the locked variables. On success the version advances to
// the new clock; on failure it reverts to the pre-lock value.
func (t *Tx) unlock(locked []*Var, success bool, newClock uint64) {
	for _, v := range locked {
		cur := v.version.Load()
		if success {
			v.version.Store(newClock * 2)
		} else {
			v.version.Store(cur - 1)
		}
	}
}

// WaitForReaders blocks until no registered transaction is running against a
// snapshot taken before clockValue. It is the privatization / quiescence
// barrier: after it returns, data made private by a committed transaction
// with commit version <= clockValue can be accessed non-transactionally.
func (s *STM) WaitForReaders(clockValue uint64) {
	s.stats.Barriers.Add(1)
	buf := make([]int, 0, s.registry.Size())
	for {
		buf = s.registry.Collect(buf[:0])
		blocked := false
		for _, name := range buf {
			ann := s.announcements[name].Load()
			if ann != 0 && ann-1 < clockValue {
				blocked = true
				break
			}
		}
		if !blocked {
			return
		}
		runtime.Gosched()
	}
}
