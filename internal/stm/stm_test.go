package stm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/registry"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero MaxThreads accepted")
	}
	if _, err := New(Config{MaxThreads: 4, MaxRetries: -1}); err == nil {
		t.Fatal("negative MaxRetries accepted")
	}
	s, err := New(Config{MaxThreads: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Registry().Capacity() != 4 {
		t.Fatalf("default registry capacity %d, want 4", s.Registry().Capacity())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestCustomRegistry(t *testing.T) {
	reg := registry.MustNew(registry.Random, registry.Options{Capacity: 8})
	s := MustNew(Config{MaxThreads: 8, Registry: reg})
	if s.Registry() != reg {
		t.Fatal("custom registry not used")
	}
	v := s.NewVar(1)
	if err := s.Atomically(func(tx *Tx) error {
		tx.Write(v, 2)
		return nil
	}); err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if v.ReadDirect() != 2 {
		t.Fatalf("value = %d, want 2", v.ReadDirect())
	}
}

func TestSequentialReadWrite(t *testing.T) {
	s := MustNew(Config{MaxThreads: 2})
	x := s.NewVar(10)
	y := s.NewVar(20)

	var readX, readY int64
	err := s.Atomically(func(tx *Tx) error {
		var err error
		if readX, err = tx.Read(x); err != nil {
			return err
		}
		if readY, err = tx.Read(y); err != nil {
			return err
		}
		tx.Write(x, readX+1)
		tx.Write(y, readY-1)
		return nil
	})
	if err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if readX != 10 || readY != 20 {
		t.Fatalf("reads = %d, %d", readX, readY)
	}
	if x.ReadDirect() != 11 || y.ReadDirect() != 19 {
		t.Fatalf("values = %d, %d", x.ReadDirect(), y.ReadDirect())
	}
	if s.Commits() != 1 {
		t.Fatalf("commits = %d, want 1", s.Commits())
	}
	if s.Clock() != 1 {
		t.Fatalf("clock = %d, want 1", s.Clock())
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	s := MustNew(Config{MaxThreads: 1})
	x := s.NewVar(5)
	err := s.Atomically(func(tx *Tx) error {
		tx.Write(x, 42)
		v, err := tx.Read(x)
		if err != nil {
			return err
		}
		if v != 42 {
			t.Errorf("read-your-write = %d, want 42", v)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomically: %v", err)
	}
}

func TestReadOnlyTransaction(t *testing.T) {
	s := MustNew(Config{MaxThreads: 1})
	x := s.NewVar(7)
	var got int64
	if err := s.Atomically(func(tx *Tx) error {
		var err error
		got, err = tx.Read(x)
		return err
	}); err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if got != 7 {
		t.Fatalf("read = %d, want 7", got)
	}
	// A read-only transaction must not advance the clock.
	if s.Clock() != 0 {
		t.Fatalf("clock = %d, want 0", s.Clock())
	}
}

func TestUserErrorAbortsWithoutRetry(t *testing.T) {
	s := MustNew(Config{MaxThreads: 1})
	x := s.NewVar(1)
	userErr := errors.New("business rule violated")
	calls := 0
	err := s.Atomically(func(tx *Tx) error {
		calls++
		tx.Write(x, 99)
		return userErr
	})
	if !errors.Is(err, userErr) {
		t.Fatalf("err = %v, want the user error", err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if x.ReadDirect() != 1 {
		t.Fatalf("aborted transaction published a write: %d", x.ReadDirect())
	}
	if s.Commits() != 0 {
		t.Fatalf("commits = %d, want 0", s.Commits())
	}
}

func TestBankTransferInvariant(t *testing.T) {
	const (
		accounts     = 16
		workers      = 8
		transfersPer = 400
		initial      = 1000
	)
	s := MustNew(Config{MaxThreads: workers})
	vars := make([]*Var, accounts)
	for i := range vars {
		vars[i] = s.NewVar(initial)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.Thread()
			for i := 0; i < transfersPer; i++ {
				from := vars[(w+i)%accounts]
				to := vars[(w*7+i*3+1)%accounts]
				if from == to {
					continue
				}
				err := th.Atomically(func(tx *Tx) error {
					fv, err := tx.Read(from)
					if err != nil {
						return err
					}
					tv, err := tx.Read(to)
					if err != nil {
						return err
					}
					tx.Write(from, fv-1)
					tx.Write(to, tv+1)
					return nil
				})
				if err != nil {
					t.Errorf("worker %d transfer %d: %v", w, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Conservation of money: the sum of all balances is unchanged.
	var total int64
	for _, v := range vars {
		total += v.ReadDirect()
	}
	if total != accounts*initial {
		t.Fatalf("total balance %d, want %d", total, accounts*initial)
	}
	if s.Commits() == 0 {
		t.Fatal("no transactions committed")
	}
}

func TestConcurrentCounter(t *testing.T) {
	const (
		workers = 8
		incs    = 300
	)
	s := MustNew(Config{MaxThreads: workers})
	counter := s.NewVar(0)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.Thread()
			for i := 0; i < incs; i++ {
				err := th.Atomically(func(tx *Tx) error {
					v, err := tx.Read(counter)
					if err != nil {
						return err
					}
					tx.Write(counter, v+1)
					return nil
				})
				if err != nil {
					t.Errorf("increment failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := counter.ReadDirect(); got != workers*incs {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*incs)
	}
	// A contended counter must have caused at least some retries; their
	// absence would suggest conflict detection is not working.
	if s.Retries() == 0 {
		t.Log("warning: no retries observed on a contended counter")
	}
}

func TestThreadRegistrationStats(t *testing.T) {
	s := MustNew(Config{MaxThreads: 2})
	th := s.Thread()
	x := s.NewVar(0)
	for i := 0; i < 10; i++ {
		if err := th.Atomically(func(tx *Tx) error {
			tx.Write(x, int64(i))
			return nil
		}); err != nil {
			t.Fatalf("Atomically: %v", err)
		}
	}
	stats := th.RegistrationStats()
	if stats.Ops != 10 || stats.Frees != 10 {
		t.Fatalf("registration stats = %+v, want 10 ops and frees", stats)
	}
}

func TestWaitForReaders(t *testing.T) {
	s := MustNew(Config{MaxThreads: 4})
	x := s.NewVar(0)

	release := make(chan struct{})
	inTx := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := s.Atomically(func(tx *Tx) error {
			if _, err := tx.Read(x); err != nil {
				return err
			}
			close(inTx)
			<-release
			return nil
		})
		if err != nil {
			t.Errorf("reader transaction: %v", err)
		}
	}()

	<-inTx
	// A writer commits, then waits for readers older than its commit.
	if err := s.Atomically(func(tx *Tx) error {
		tx.Write(x, 1)
		return nil
	}); err != nil {
		t.Fatalf("writer: %v", err)
	}
	commitClock := s.Clock()

	waited := make(chan struct{})
	go func() {
		s.WaitForReaders(commitClock)
		close(waited)
	}()
	// Give the barrier a moment to start spinning before checking that it
	// has not (incorrectly) returned.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-waited:
		t.Fatal("WaitForReaders returned while a pre-commit reader was still running")
	default:
	}
	close(release)
	wg.Wait()
	<-waited // must now return
}

func TestAbortAfterRetryBudget(t *testing.T) {
	s := MustNew(Config{MaxThreads: 2, MaxRetries: 3})
	x := s.NewVar(0)
	// Lock the variable's version manually to force every commit to fail.
	x.version.Store(1)
	err := s.Atomically(func(tx *Tx) error {
		tx.Write(x, 5)
		return nil
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if s.Aborts() != 1 {
		t.Fatalf("aborts = %d, want 1", s.Aborts())
	}
	x.version.Store(0)
}
