package workload

import (
	"testing"
	"testing/quick"
)

func TestSpecValidate(t *testing.T) {
	valid := []Spec{
		{Threads: 1},
		{Threads: 8, EmulatedN: 8000, PrefillPercent: 50},
		{Threads: 80, EmulatedN: 80000, PrefillPercent: 90},
		{Threads: 4, PrefillPercent: 0},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	invalid := []Spec{
		{},
		{Threads: 0},
		{Threads: -1},
		{Threads: 4, EmulatedN: -1},
		{Threads: 8, EmulatedN: 4},
		{Threads: 4, PrefillPercent: -1},
		{Threads: 4, PrefillPercent: 101},
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid spec", s)
		}
	}
}

func TestCapacity(t *testing.T) {
	if got := (Spec{Threads: 8}).Capacity(); got != 8 {
		t.Fatalf("Capacity = %d, want 8", got)
	}
	if got := (Spec{Threads: 8, EmulatedN: 8000}).Capacity(); got != 8000 {
		t.Fatalf("Capacity = %d, want 8000", got)
	}
}

func TestPlansPaperConfiguration(t *testing.T) {
	// The paper's Figure 2 configuration: N = 1000·n, 50% pre-fill.
	const n = 40
	spec := Spec{Threads: n, EmulatedN: 1000 * n, PrefillPercent: 50}
	plans, err := spec.Plans()
	if err != nil {
		t.Fatalf("Plans: %v", err)
	}
	if len(plans) != n {
		t.Fatalf("len(plans) = %d, want %d", len(plans), n)
	}
	totalSlots := 0
	for i, p := range plans {
		if p.Slots() != 1000 {
			t.Fatalf("thread %d has %d slots, want 1000", i, p.Slots())
		}
		if p.Resident != 500 || p.Churn != 500 {
			t.Fatalf("thread %d plan = %+v, want 500/500", i, p)
		}
		totalSlots += p.Slots()
	}
	if totalSlots != 1000*n {
		t.Fatalf("total slots %d, want %d", totalSlots, 1000*n)
	}
	if TotalResident(plans) != 500*n || TotalChurn(plans) != 500*n {
		t.Fatalf("totals wrong: resident %d churn %d", TotalResident(plans), TotalChurn(plans))
	}
}

func TestPlansUnevenDivision(t *testing.T) {
	spec := Spec{Threads: 3, EmulatedN: 10, PrefillPercent: 0}
	plans, err := spec.Plans()
	if err != nil {
		t.Fatalf("Plans: %v", err)
	}
	sizes := []int{plans[0].Slots(), plans[1].Slots(), plans[2].Slots()}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("slot distribution %v, want [4 3 3]", sizes)
	}
}

func TestPlansAlwaysLeaveChurnWork(t *testing.T) {
	// Even at 90% (and even at an out-of-spec 100% clamped by Plans), every
	// thread must keep at least one churn slot.
	for _, prefill := range []int{0, 50, 90, 99} {
		spec := Spec{Threads: 4, EmulatedN: 40, PrefillPercent: prefill}
		plans, err := spec.Plans()
		if err != nil {
			t.Fatalf("Plans(%d%%): %v", prefill, err)
		}
		for i, p := range plans {
			if p.Churn < 1 {
				t.Fatalf("prefill %d%%: thread %d has no churn work: %+v", prefill, i, p)
			}
		}
	}
}

func TestPlansNoEmulation(t *testing.T) {
	spec := Spec{Threads: 8, PrefillPercent: 50}
	plans, err := spec.Plans()
	if err != nil {
		t.Fatalf("Plans: %v", err)
	}
	for i, p := range plans {
		if p.Slots() != 1 {
			t.Fatalf("thread %d has %d slots, want 1", i, p.Slots())
		}
		if p.Resident != 0 {
			t.Fatalf("thread %d with a single slot must not have residents: %+v", i, p)
		}
	}
}

func TestPlansError(t *testing.T) {
	if _, err := (Spec{Threads: 0}).Plans(); err == nil {
		t.Fatal("Plans accepted an invalid spec")
	}
}

// Property: plans partition exactly Capacity() slots, the resident fraction
// never exceeds the requested percentage, and every thread keeps churn work.
func TestQuickPlansPartitionCapacity(t *testing.T) {
	prop := func(threadsRaw, factorRaw, prefillRaw uint8) bool {
		threads := int(threadsRaw%64) + 1
		factor := int(factorRaw % 100)
		prefill := int(prefillRaw % 101)
		spec := Spec{Threads: threads, EmulatedN: threads * (factor + 1), PrefillPercent: prefill}
		plans, err := spec.Plans()
		if err != nil {
			return false
		}
		total := 0
		for _, p := range plans {
			if p.Churn < 1 || p.Resident < 0 {
				return false
			}
			total += p.Slots()
		}
		if total != spec.Capacity() {
			return false
		}
		return TotalResident(plans) <= spec.Capacity()*prefill/100+threads
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
