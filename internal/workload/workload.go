// Package workload translates the paper's benchmark parameters (Section 6's
// methodology) into per-thread execution plans for the concurrent harness:
//
//   - n is the number of real threads;
//   - N is the emulated concurrency: the maximum number of array slots that
//     may be registered simultaneously. For N > n each thread registers N/n
//     times before deregistering, holding several names at once;
//   - the pre-fill percentage is the fraction of each thread's registrations
//     performed up-front and held for the whole run, so the main loop churns
//     on an array that stays at that load;
//   - L, the array size, is expressed as a size factor relative to N and is
//     handled by the array constructors (registry.Options.SizeFactor).
package workload

import "fmt"

// Plan describes what one benchmark thread does.
type Plan struct {
	// Resident is the number of names the thread acquires before the main
	// loop and holds until the end of the run (the pre-fill portion).
	Resident int
	// Churn is the number of names the thread repeatedly acquires and
	// releases in its main loop.
	Churn int
}

// Slots returns the total number of handles the thread needs.
func (p Plan) Slots() int { return p.Resident + p.Churn }

// Spec is the benchmark parameterization shared by the Figure 2 experiments.
type Spec struct {
	// Threads is n, the number of real threads.
	Threads int
	// EmulatedN is N, the maximum number of simultaneously registered slots.
	// Zero means N = Threads (no emulation).
	EmulatedN int
	// PrefillPercent is the percentage (0..100) of registrations performed
	// up-front and held for the whole run.
	PrefillPercent int
}

// Validate reports the first problem with the specification.
func (s Spec) Validate() error {
	if s.Threads < 1 {
		return fmt.Errorf("workload: thread count %d must be at least 1", s.Threads)
	}
	if s.EmulatedN < 0 {
		return fmt.Errorf("workload: emulated concurrency %d must not be negative", s.EmulatedN)
	}
	if s.EmulatedN > 0 && s.EmulatedN < s.Threads {
		return fmt.Errorf("workload: emulated concurrency %d is below the thread count %d",
			s.EmulatedN, s.Threads)
	}
	if s.PrefillPercent < 0 || s.PrefillPercent > 100 {
		return fmt.Errorf("workload: pre-fill percentage %d outside [0, 100]", s.PrefillPercent)
	}
	return nil
}

// Capacity returns N, the contention bound the activity array must be built
// for (EmulatedN, or Threads when no emulation is requested).
func (s Spec) Capacity() int {
	if s.EmulatedN > 0 {
		return s.EmulatedN
	}
	return s.Threads
}

// Plans returns one Plan per thread. Slots are distributed as evenly as
// possible: when N is not divisible by n the first N mod n threads hold one
// extra slot. Within each thread, the pre-fill percentage determines how many
// of its slots are resident; every thread keeps at least one churn slot so
// the main loop always has work (matching the paper, whose pre-fill tops out
// at 90%).
func (s Spec) Plans() ([]Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	capacity := s.Capacity()
	base := capacity / s.Threads
	extra := capacity % s.Threads

	plans := make([]Plan, s.Threads)
	for i := range plans {
		slots := base
		if i < extra {
			slots++
		}
		if slots == 0 {
			// More threads than emulated slots cannot happen (Validate
			// rejects EmulatedN < Threads), but keep the invariant explicit.
			slots = 1
		}
		resident := slots * s.PrefillPercent / 100
		if resident >= slots {
			resident = slots - 1
		}
		plans[i] = Plan{Resident: resident, Churn: slots - resident}
	}
	return plans, nil
}

// TotalResident returns the number of names held for the whole run across
// all plans.
func TotalResident(plans []Plan) int {
	total := 0
	for _, p := range plans {
		total += p.Resident
	}
	return total
}

// TotalChurn returns the number of churn slots across all plans.
func TotalChurn(plans []Plan) int {
	total := 0
	for _, p := range plans {
		total += p.Churn
	}
	return total
}
