package tas

import "sync/atomic"

// FlakySpace is a failure-injection wrapper around a Space. It forces the
// first ForceLosses TestAndSet calls (across all locations and callers) to
// lose without touching the underlying slots, and can additionally blacklist
// an index range so that probes landing there always fail.
//
// It exists so tests can push Get operations into deep batches and into the
// backup array deterministically — behaviour that is, by design, essentially
// unreachable under honest randomness.
type FlakySpace struct {
	inner Space

	// forceLosses is decremented towards zero; while positive every probe
	// loses.
	forceLosses int64

	// deniedLo/deniedHi describe a half-open index range [lo, hi) in which
	// probes always lose. A range with lo >= hi denies nothing.
	deniedLo int
	deniedHi int
}

var _ Space = (*FlakySpace)(nil)

// NewFlakySpace wraps inner with loss injection. forceLosses is the number of
// initial probes that will be forced to lose.
func NewFlakySpace(inner Space, forceLosses int) *FlakySpace {
	return &FlakySpace{inner: inner, forceLosses: int64(forceLosses)}
}

// DenyRange makes every probe into [lo, hi) lose. Passing lo >= hi clears the
// denial. Reads and resets are unaffected, so already-held slots in the range
// can still be released.
func (f *FlakySpace) DenyRange(lo, hi int) {
	f.deniedLo, f.deniedHi = lo, hi
}

// Len returns the number of locations.
func (f *FlakySpace) Len() int { return f.inner.Len() }

// TestAndSet loses if loss injection applies, otherwise forwards to the
// wrapped space.
func (f *FlakySpace) TestAndSet(i int) bool {
	if i >= f.deniedLo && i < f.deniedHi {
		return false
	}
	if atomic.LoadInt64(&f.forceLosses) > 0 {
		if atomic.AddInt64(&f.forceLosses, -1) >= 0 {
			return false
		}
	}
	return f.inner.TestAndSet(i)
}

// Reset forwards to the wrapped space.
func (f *FlakySpace) Reset(i int) { f.inner.Reset(i) }

// Read forwards to the wrapped space.
func (f *FlakySpace) Read(i int) bool { return f.inner.Read(i) }

// RemainingForcedLosses reports how many probes are still due to be failed.
func (f *FlakySpace) RemainingForcedLosses() int {
	v := atomic.LoadInt64(&f.forceLosses)
	if v < 0 {
		return 0
	}
	return int(v)
}
