package tas

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// WordBits is the number of test-and-set slots packed into one bitmap word.
const WordBits = 64

// wordsPerCacheLine is the number of uint64 words in a 64-byte cache line;
// it is the stride used by the padded bitmap layout.
const wordsPerCacheLine = 8

// BitmapSpace is a word-packed Space: 64 slots per uint64 word, with
// test-and-set realized as a wait-free atomic fetch-or on the slot's bit
// mask. It is the repository's default substrate.
//
// Compared to the one-word-per-slot layouts (AtomicSpace, CompactSpace) the
// bitmap packs 64x (respectively 1024x) more slots into each cache line,
// which is what gives Collect its word-at-a-time scan: one atomic load plus a
// popcount covers 64 slots. The trade-off is that slots sharing a word also
// share a contention domain — a write to any bit invalidates the whole line —
// so an optional padded variant spreads each word onto its own cache line
// (still 64 slots per line, 16x denser than AtomicSpace) for heavily
// contended arrays.
//
// All methods are safe for concurrent use.
type BitmapSpace struct {
	size   int
	stride int      // uint64s between consecutive bitmap words (1 or 8)
	words  []uint64 // len = ceil(size/64) * stride
}

var (
	_ Space   = (*BitmapSpace)(nil)
	_ Claimer = (*BitmapSpace)(nil)
)

// NewBitmapSpace returns a densely packed BitmapSpace with size locations,
// all free. It panics if size is not positive.
func NewBitmapSpace(size int) *BitmapSpace {
	return newBitmapSpace(size, 1)
}

// NewPaddedBitmapSpace returns a BitmapSpace whose words each occupy a full
// cache line, trading a 8x larger footprint for word-level contention
// isolation. It panics if size is not positive.
func NewPaddedBitmapSpace(size int) *BitmapSpace {
	return newBitmapSpace(size, wordsPerCacheLine)
}

func newBitmapSpace(size, stride int) *BitmapSpace {
	if size <= 0 {
		panic(fmt.Sprintf("tas: invalid space size %d", size))
	}
	numWords := (size + WordBits - 1) / WordBits
	return &BitmapSpace{
		size:   size,
		stride: stride,
		words:  make([]uint64, numWords*stride),
	}
}

// Len returns the number of locations.
func (s *BitmapSpace) Len() int { return s.size }

// NumWords returns the number of 64-slot bitmap words (the last word may be
// only partially used when Len is not a multiple of 64).
func (s *BitmapSpace) NumWords() int { return len(s.words) / s.stride }

// word returns the address of bitmap word w.
func (s *BitmapSpace) word(w int) *uint64 { return &s.words[w*s.stride] }

// check panics for out-of-range locations, mirroring the slice bounds panic
// of the unpacked layouts (indices beyond Len would otherwise silently alias
// the unused tail bits of the last word).
func (s *BitmapSpace) check(i int) {
	if i < 0 || i >= s.size {
		panic(fmt.Sprintf("tas: location %d out of range [0, %d)", i, s.size))
	}
}

// TestAndSet attempts to acquire location i with an atomic fetch-or on its
// bit. The fetch-or is unconditional hardware (LOCK OR), so the operation is
// wait-free — neighbouring bits churning in the same word cannot starve it,
// which preserves the Get wait-freedom the paper's backup scan relies on. A
// plain load screens out already-taken bits first so losing probes do not
// write to (and so do not bounce) the cache line.
func (s *BitmapSpace) TestAndSet(i int) bool {
	s.check(i)
	addr := s.word(i / WordBits)
	mask := uint64(1) << (uint(i) % WordBits)
	if atomic.LoadUint64(addr)&mask != 0 {
		return false
	}
	return atomic.OrUint64(addr, mask)&mask == 0
}

// Reset releases location i by clearing its bit.
func (s *BitmapSpace) Reset(i int) {
	s.check(i)
	addr := s.word(i / WordBits)
	mask := uint64(1) << (uint(i) % WordBits)
	atomic.AndUint64(addr, ^mask)
}

// Read reports whether location i is taken.
func (s *BitmapSpace) Read(i int) bool {
	s.check(i)
	return atomic.LoadUint64(s.word(i/WordBits))&(uint64(1)<<(uint(i)%WordBits)) != 0
}

// ScanWords calls fn for every bitmap word that has at least one bit set,
// passing the word's index (slot = wordIdx*64 + bit) and its atomically
// loaded value. Zero words are skipped, so a sparse scan touches exactly one
// atomic load per 64 slots and invokes no callback for empty regions. The
// scan is not an atomic snapshot: each word is read once, in increasing
// order, with the same validity guarantee as Collect.
func (s *BitmapSpace) ScanWords(fn func(wordIdx int, word uint64)) {
	n := s.NumWords()
	for w := 0; w < n; w++ {
		if word := atomic.LoadUint64(s.word(w)); word != 0 {
			fn(w, word)
		}
	}
}

// OccupancyFast returns the number of taken locations using one atomic load
// and one popcount per 64 slots.
func (s *BitmapSpace) OccupancyFast() int {
	taken := 0
	n := s.NumWords()
	for w := 0; w < n; w++ {
		taken += bits.OnesCount64(atomic.LoadUint64(s.word(w)))
	}
	return taken
}

// CountRange returns the number of taken locations in [lo, hi), clamped to
// the space bounds, using masked popcounts: at most one atomic load per 64
// slots plus two partial-word masks.
func (s *BitmapSpace) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > s.size {
		hi = s.size
	}
	if lo >= hi {
		return 0
	}
	firstWord, lastWord := lo/WordBits, (hi-1)/WordBits
	taken := 0
	for w := firstWord; w <= lastWord; w++ {
		word := atomic.LoadUint64(s.word(w))
		if word == 0 {
			continue
		}
		if w == firstWord {
			word &= ^uint64(0) << (uint(lo) % WordBits)
		}
		if w == lastWord {
			if tail := uint(hi) % WordBits; tail != 0 {
				word &= (uint64(1) << tail) - 1
			}
		}
		taken += bits.OnesCount64(word)
	}
	return taken
}

// SnapshotWords returns a dense copy of the bitmap (one uint64 per 64 slots,
// padding stripped). Like Collect it is word-atomic but not globally atomic.
func (s *BitmapSpace) SnapshotWords() []uint64 {
	n := s.NumWords()
	out := make([]uint64, n)
	for w := 0; w < n; w++ {
		out[w] = atomic.LoadUint64(s.word(w))
	}
	return out
}

// wordMask returns the mask of valid bits in word w: all ones, except in the
// final word of a space whose Len is not a multiple of WordBits, where the
// unused tail bits are masked off so claims can never invent slots past Len.
func (s *BitmapSpace) wordMask(w int) uint64 {
	if w == s.NumWords()-1 {
		if tail := uint(s.size) % WordBits; tail != 0 {
			return (uint64(1) << tail) - 1
		}
	}
	return ^uint64(0)
}

// claimWord attempts to claim the lowest free bit of word w among the bits
// selected by eligible: one atomic load, then a fetch-or per attempt. Losing
// an attempt means another writer took the contested bit, which shrinks the
// free set, so the loop is bounded by the word width — like TestAndSet the
// claim cannot be starved by neighbouring churn.
func (s *BitmapSpace) claimWord(w int, eligible uint64) (int, bool) {
	addr := s.word(w)
	cur := atomic.LoadUint64(addr)
	for {
		free := ^cur & eligible
		if free == 0 {
			return 0, false
		}
		mask := free & -free
		old := atomic.OrUint64(addr, mask)
		if old&mask == 0 {
			return bits.TrailingZeros64(mask), true
		}
		cur = old
	}
}

// ClaimInWord attempts to claim any free slot in bitmap word w, returning the
// bit index of the claimed slot (slot = w*WordBits + bit). It costs one
// atomic load plus one fetch-or per contested bit, so claiming from a word
// with any free capacity collapses up to WordBits per-slot trials into a
// single load/claim pair; a full word is detected with the load alone. It
// panics if w is out of range.
func (s *BitmapSpace) ClaimInWord(w int) (int, bool) {
	if w < 0 || w >= s.NumWords() {
		panic(fmt.Sprintf("tas: word %d out of range [0, %d)", w, s.NumWords()))
	}
	return s.claimWord(w, s.wordMask(w))
}

// ClaimRange claims the first free slot in [lo, hi), clamped to the space
// bounds, stepping word-at-a-time: each full word is skipped with a single
// atomic load, and the first word with free capacity is claimed from with a
// fetch-or. The claimed slot is always the lowest free slot the sweep
// observed, so the deterministic first-free semantics of a per-slot
// test-and-set sweep are preserved at 1/64th the atomics.
func (s *BitmapSpace) ClaimRange(lo, hi int) (int, bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.size {
		hi = s.size
	}
	if lo >= hi {
		return 0, false
	}
	firstWord, lastWord := lo/WordBits, (hi-1)/WordBits
	for w := firstWord; w <= lastWord; w++ {
		eligible := s.wordMask(w)
		if w == firstWord {
			eligible &= ^uint64(0) << (uint(lo) % WordBits)
		}
		if w == lastWord {
			if tail := uint(hi) % WordBits; tail != 0 {
				eligible &= (uint64(1) << tail) - 1
			}
		}
		if bit, ok := s.claimWord(w, eligible); ok {
			return w*WordBits + bit, true
		}
	}
	return 0, false
}

// ForEachSet calls fn with base+i for every taken location i, in increasing
// order, and reports whether the sweep ran to completion; fn returning false
// stops it early. Like AppendSet it costs one atomic load per 64 slots, but
// it hands each set slot to a callback instead of materializing a slice — it
// is the exported sweep hook the lease manager's orphan cross-check walks
// every expirer tick. The sweep has Collect's validity guarantee, not
// snapshot semantics.
func (s *BitmapSpace) ForEachSet(base int, fn func(name int) bool) bool {
	n := s.NumWords()
	for w := 0; w < n; w++ {
		word := atomic.LoadUint64(s.word(w))
		wordBase := base + w*WordBits
		for word != 0 {
			if !fn(wordBase + bits.TrailingZeros64(word)) {
				return false
			}
			word &= word - 1
		}
	}
	return true
}

// AppendSet appends base+i to dst for every taken location i, in increasing
// order, and returns the extended slice. It is the word-at-a-time Collect
// primitive: one atomic load per 64 slots, then TrailingZeros64 to peel the
// set bits.
func (s *BitmapSpace) AppendSet(dst []int, base int) []int {
	n := s.NumWords()
	for w := 0; w < n; w++ {
		word := atomic.LoadUint64(s.word(w))
		wordBase := base + w*WordBits
		for word != 0 {
			dst = append(dst, wordBase+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return dst
}
