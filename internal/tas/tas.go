// Package tas provides the shared-memory test-and-set substrate used by every
// activity-array algorithm in this repository.
//
// The paper's model assumes an array of memory locations supporting
// test-and-set (win by flipping 0 -> 1) and reset (1 -> 0); the benchmark
// implementation realizes test-and-set with compare-and-swap, which is exactly
// what this package does on top of sync/atomic.
//
// Several implementations of the Space interface are provided:
//
//   - BitmapSpace: the default substrate — 64 slots packed per uint64 word,
//     test-and-set as a wait-free fetch-or on the bit mask, with word-at-a-
//     time bulk scans
//     (ScanWords, OccupancyFast, SnapshotWords, AppendSet) so Collect costs
//     one atomic load per 64 slots, and word-at-a-time claims (ClaimRange —
//     the Claimer interface — plus the concrete ClaimInWord) so the write
//     side can acquire any free slot of a 64-slot window with one load plus
//     one fetch-or. An
//     optional padded variant places each word on its own cache line for
//     heavily contended arrays.
//   - AtomicSpace: one slot per cache line, the original padded layout kept
//     for the substrate-comparison benchmarks.
//   - CompactSpace: one uint32 per slot, sixteen slots per cache line.
//   - CountingSpace: wraps any Space and counts probes, wins, losses and
//     resets; used by tests and by the step-level simulator when exact
//     counters are needed independently of the algorithms' own reporting.
//   - FlakySpace: a failure-injection wrapper that forces a configurable
//     number of artificial losses, used to drive Get operations into deep
//     batches and the backup array in tests.
//
// Kind selects among the concrete layouts; instrumentation wrappers are
// applied by callers (see core.Config.Instrument) so the uninstrumented hot
// path stays free of interface dispatch.
package tas

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Space is an indexed collection of test-and-set locations.
//
// TestAndSet(i) attempts to atomically flip location i from free to taken and
// reports whether the caller won. Reset(i) returns location i to the free
// state; only the winner of the location may call it. Read(i) reports whether
// the location is currently taken, and is the primitive Collect scans with.
type Space interface {
	// Len returns the number of locations in the space.
	Len() int

	// TestAndSet attempts to acquire location i, returning true on success.
	TestAndSet(i int) bool

	// Reset releases location i back to the free state.
	Reset(i int)

	// Read reports whether location i is currently taken.
	Read(i int) bool
}

// Claimer is the optional write-side word-claim extension of Space,
// implemented by the bitmap substrates (and forwarded by decorators such as
// CountingSpace). ClaimRange claims the first free slot of [lo, hi)
// word-at-a-time: full words are skipped with one load each, and a window
// within a single word costs one load plus one fetch-or. It returns the same
// outcome a per-slot TestAndSet sweep of the same region would (the lowest
// eligible free slot), just with O(range/64) atomics instead of O(range) —
// callers that account probes as slots examined must therefore keep doing so
// regardless of which primitive ran. (BitmapSpace additionally exposes the
// word-granular ClaimInWord as a concrete convenience.)
type Claimer interface {
	// ClaimRange claims the first free slot in [lo, hi), clamped to the
	// space bounds.
	ClaimRange(lo, hi int) (slot int, ok bool)
}

// slotsPerCacheLine controls the padding of AtomicSpace. A 64-byte cache line
// holds sixteen uint32 values; spreading logically adjacent slots across
// separate lines removes false sharing between threads probing nearby indices,
// which matters for LinearProbing and the deterministic baseline.
const slotsPerCacheLine = 16

// paddedSlot is a single test-and-set location occupying a full cache line.
type paddedSlot struct {
	value uint32
	_     [slotsPerCacheLine*4 - 4]byte
}

// AtomicSpace is a Space backed by sync/atomic compare-and-swap on padded
// 32-bit words. It is safe for concurrent use.
type AtomicSpace struct {
	slots []paddedSlot
}

var _ Space = (*AtomicSpace)(nil)

// NewAtomicSpace returns an AtomicSpace with size locations, all free.
// It panics if size is not positive.
func NewAtomicSpace(size int) *AtomicSpace {
	if size <= 0 {
		panic(fmt.Sprintf("tas: invalid space size %d", size))
	}
	return &AtomicSpace{slots: make([]paddedSlot, size)}
}

// Len returns the number of locations.
func (s *AtomicSpace) Len() int { return len(s.slots) }

// TestAndSet attempts to acquire location i with a single compare-and-swap.
func (s *AtomicSpace) TestAndSet(i int) bool {
	return atomic.CompareAndSwapUint32(&s.slots[i].value, 0, 1)
}

// Reset releases location i.
func (s *AtomicSpace) Reset(i int) {
	atomic.StoreUint32(&s.slots[i].value, 0)
}

// Read reports whether location i is taken.
func (s *AtomicSpace) Read(i int) bool {
	return atomic.LoadUint32(&s.slots[i].value) != 0
}

// CompactSpace is an unpadded variant of AtomicSpace: one uint32 per slot,
// sixteen slots per cache line. It trades false sharing for a 16x smaller
// footprint and better Collect locality, matching the paper's remark that the
// activity array's "good cache behavior during collects" is part of its
// appeal. Benchmarks can select either layout to expose the trade-off.
type CompactSpace struct {
	slots []uint32
}

var _ Space = (*CompactSpace)(nil)

// NewCompactSpace returns a CompactSpace with size locations, all free.
// It panics if size is not positive.
func NewCompactSpace(size int) *CompactSpace {
	if size <= 0 {
		panic(fmt.Sprintf("tas: invalid space size %d", size))
	}
	return &CompactSpace{slots: make([]uint32, size)}
}

// Len returns the number of locations.
func (s *CompactSpace) Len() int { return len(s.slots) }

// TestAndSet attempts to acquire location i with a single compare-and-swap.
func (s *CompactSpace) TestAndSet(i int) bool {
	return atomic.CompareAndSwapUint32(&s.slots[i], 0, 1)
}

// Reset releases location i.
func (s *CompactSpace) Reset(i int) {
	atomic.StoreUint32(&s.slots[i], 0)
}

// Read reports whether location i is taken.
func (s *CompactSpace) Read(i int) bool {
	return atomic.LoadUint32(&s.slots[i]) != 0
}

// Occupancy returns the number of taken locations in sp. It is a helper for
// tests, the balance analyzer and the healing experiment; it is not atomic
// with respect to concurrent operations (and does not need to be, matching
// the paper's non-snapshot Collect semantics). Bitmap spaces are counted
// word-at-a-time (one atomic load per 64 slots).
func Occupancy(sp Space) int {
	if bm, ok := sp.(*BitmapSpace); ok {
		return bm.OccupancyFast()
	}
	taken := 0
	for i := 0; i < sp.Len(); i++ {
		if sp.Read(i) {
			taken++
		}
	}
	return taken
}

// Snapshot returns a boolean slice describing which locations are taken.
// Like Occupancy it is not an atomic snapshot.
func Snapshot(sp Space) []bool {
	out := make([]bool, sp.Len())
	if bm, ok := sp.(*BitmapSpace); ok {
		bm.ScanWords(func(w int, word uint64) {
			base := w * WordBits
			for word != 0 {
				out[base+bits.TrailingZeros64(word)] = true
				word &= word - 1
			}
		})
		return out
	}
	for i := range out {
		out[i] = sp.Read(i)
	}
	return out
}
