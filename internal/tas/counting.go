package tas

import "sync/atomic"

// Counters is a snapshot of the operation counts recorded by a CountingSpace.
type Counters struct {
	// Probes is the total number of TestAndSet attempts.
	Probes uint64
	// Wins is the number of successful TestAndSet attempts.
	Wins uint64
	// Losses is the number of failed TestAndSet attempts.
	Losses uint64
	// Resets is the number of Reset calls.
	Resets uint64
	// Reads is the number of Read calls.
	Reads uint64
}

// CountingSpace wraps a Space and atomically counts probes, wins, losses,
// resets and reads. It is safe for concurrent use whenever the underlying
// Space is.
type CountingSpace struct {
	inner Space

	probes uint64
	wins   uint64
	resets uint64
	reads  uint64
}

var _ Space = (*CountingSpace)(nil)

// NewCountingSpace wraps inner with operation counting.
func NewCountingSpace(inner Space) *CountingSpace {
	return &CountingSpace{inner: inner}
}

// Len returns the number of locations.
func (c *CountingSpace) Len() int { return c.inner.Len() }

// TestAndSet forwards to the wrapped space and records the probe outcome.
func (c *CountingSpace) TestAndSet(i int) bool {
	atomic.AddUint64(&c.probes, 1)
	won := c.inner.TestAndSet(i)
	if won {
		atomic.AddUint64(&c.wins, 1)
	}
	return won
}

// Reset forwards to the wrapped space and records the reset.
func (c *CountingSpace) Reset(i int) {
	atomic.AddUint64(&c.resets, 1)
	c.inner.Reset(i)
}

// Read forwards to the wrapped space and records the read.
func (c *CountingSpace) Read(i int) bool {
	atomic.AddUint64(&c.reads, 1)
	return c.inner.Read(i)
}

var _ Claimer = (*CountingSpace)(nil)

// ClaimRange forwards the range claim word by word, recording one probe per
// word touched (each word costs the wrapped bitmap one load, plus a fetch-or
// when it wins), so the counters measure atomics issued — the quantity the
// word-claim optimization reduces — not slots covered. If the wrapped space
// has no word claims, the call degrades to a counted per-slot test-and-set
// sweep with identical first-free semantics.
func (c *CountingSpace) ClaimRange(lo, hi int) (int, bool) {
	inner, ok := c.inner.(Claimer)
	if !ok {
		return c.claimSlots(lo, hi)
	}
	if lo < 0 {
		lo = 0
	}
	if hi > c.inner.Len() {
		hi = c.inner.Len()
	}
	if lo >= hi {
		return 0, false
	}
	for w := lo / WordBits; w <= (hi-1)/WordBits; w++ {
		wLo, wHi := w*WordBits, (w+1)*WordBits
		if wLo < lo {
			wLo = lo
		}
		if wHi > hi {
			wHi = hi
		}
		atomic.AddUint64(&c.probes, 1)
		if slot, won := inner.ClaimRange(wLo, wHi); won {
			atomic.AddUint64(&c.wins, 1)
			return slot, true
		}
	}
	return 0, false
}

// claimSlots is the per-slot claim fallback for wrapped spaces without word
// claims: a counted TestAndSet sweep with the same first-free outcome.
func (c *CountingSpace) claimSlots(lo, hi int) (int, bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > c.inner.Len() {
		hi = c.inner.Len()
	}
	for i := lo; i < hi; i++ {
		if c.TestAndSet(i) {
			return i, true
		}
	}
	return 0, false
}

// Counters returns a consistent-enough snapshot of the recorded counts.
func (c *CountingSpace) Counters() Counters {
	probes := atomic.LoadUint64(&c.probes)
	wins := atomic.LoadUint64(&c.wins)
	return Counters{
		Probes: probes,
		Wins:   wins,
		Losses: probes - wins,
		Resets: atomic.LoadUint64(&c.resets),
		Reads:  atomic.LoadUint64(&c.reads),
	}
}

// ResetCounters zeroes all recorded counts without touching the slots.
func (c *CountingSpace) ResetCounters() {
	atomic.StoreUint64(&c.probes, 0)
	atomic.StoreUint64(&c.wins, 0)
	atomic.StoreUint64(&c.resets, 0)
	atomic.StoreUint64(&c.reads, 0)
}
