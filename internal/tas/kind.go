package tas

import "fmt"

// Kind selects a slot-space layout. The zero value is KindBitmap, the
// word-packed default substrate; the unpacked layouts remain available so the
// benchmarks can compare them.
type Kind int

const (
	// KindBitmap packs 64 slots per uint64 word (BitmapSpace). Default.
	KindBitmap Kind = iota
	// KindBitmapPadded is the bitmap with one word per cache line, isolating
	// word-level contention at an 8x footprint cost.
	KindBitmapPadded
	// KindPadded is the original one-slot-per-cache-line layout
	// (AtomicSpace): no false sharing, 16x the footprint of KindCompact.
	KindPadded
	// KindCompact is one uint32 per slot (CompactSpace), sixteen slots per
	// cache line.
	KindCompact
)

// String returns the layout's display name as used in benchmark labels.
func (k Kind) String() string {
	switch k {
	case KindBitmap:
		return "bitmap"
	case KindBitmapPadded:
		return "bitmap-padded"
	case KindPadded:
		return "padded"
	case KindCompact:
		return "compact"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a layout name (as accepted by the cmd/ drivers' -space
// flags) to a Kind.
func ParseKind(name string) (Kind, bool) {
	switch name {
	case "bitmap", "":
		return KindBitmap, true
	case "bitmap-padded", "bitmappadded":
		return KindBitmapPadded, true
	case "padded", "atomic":
		return KindPadded, true
	case "compact":
		return KindCompact, true
	default:
		return 0, false
	}
}

// NewSpace builds a slot space of the given layout kind and size. It panics
// on an unknown kind: silently substituting a default layout would corrupt
// exactly the substrate comparisons the knob exists for, so callers must
// validate (or ParseKind) untrusted values first.
func NewSpace(kind Kind, size int) Space {
	switch kind {
	case KindBitmap:
		return NewBitmapSpace(size)
	case KindBitmapPadded:
		return NewPaddedBitmapSpace(size)
	case KindPadded:
		return NewAtomicSpace(size)
	case KindCompact:
		return NewCompactSpace(size)
	default:
		panic(fmt.Sprintf("tas: unknown space kind %d", int(kind)))
	}
}
