package tas

import (
	"sync"
	"testing"
)

func TestRandomizedSpaceSequential(t *testing.T) {
	sp := NewRandomizedSpace(8, 1)
	if sp.Len() != 8 {
		t.Fatalf("Len = %d, want 8", sp.Len())
	}
	// With no contention every TestAndSet on a free slot must win.
	for i := 0; i < sp.Len(); i++ {
		if !sp.TestAndSet(i) {
			t.Fatalf("uncontended TestAndSet(%d) lost", i)
		}
		if !sp.Read(i) {
			t.Fatalf("Read(%d) false after win", i)
		}
		if sp.TestAndSet(i) {
			t.Fatalf("second TestAndSet(%d) won", i)
		}
		sp.Reset(i)
		if sp.Read(i) {
			t.Fatalf("Read(%d) true after Reset", i)
		}
		if !sp.TestAndSet(i) {
			t.Fatalf("TestAndSet(%d) lost after Reset", i)
		}
	}
}

func TestRandomizedSpacePanicsOnInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRandomizedSpace(0, 1)
}

// TestRandomizedSpaceMutualExclusion is the defining safety property: no
// location is ever won by two callers between resets, even under heavy
// contention on the randomized tournament.
func TestRandomizedSpaceMutualExclusion(t *testing.T) {
	const (
		slots      = 32
		goroutines = 16
		rounds     = 50
	)
	sp := NewRandomizedSpace(slots, 7)
	for round := 0; round < rounds; round++ {
		winners := make([][]int, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < slots; i++ {
					if sp.TestAndSet(i) {
						winners[g] = append(winners[g], i)
					}
				}
			}()
		}
		wg.Wait()
		perSlot := make(map[int]int)
		for g := range winners {
			for _, slot := range winners[g] {
				perSlot[slot]++
			}
		}
		for slot, count := range perSlot {
			if count > 1 {
				t.Fatalf("round %d: slot %d won %d times", round, slot, count)
			}
		}
		// Reset for the next round. (Not every slot is necessarily won: a
		// contender may concede its tournament; but every won slot must read
		// as taken.)
		for slot := range perSlot {
			if !sp.Read(slot) {
				t.Fatalf("round %d: won slot %d reads as free", round, slot)
			}
			sp.Reset(slot)
		}
	}
}

// TestRandomizedSpaceEventualSuccess checks the liveness property the
// LevelArray relies on: a slot that is free and uncontended is acquired by a
// retrying caller.
func TestRandomizedSpaceEventualSuccess(t *testing.T) {
	sp := NewRandomizedSpace(1, 3)
	for attempt := 0; attempt < 1000; attempt++ {
		if sp.TestAndSet(0) {
			sp.Reset(0)
		}
	}
	// After the churn above the slot is free; a single caller must win it.
	if !sp.TestAndSet(0) {
		t.Fatal("single caller failed to acquire a free, uncontended slot")
	}
}
