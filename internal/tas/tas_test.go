package tas

import (
	"sync"
	"testing"
	"testing/quick"
)

// spaceFactories enumerates the concrete Space implementations under test.
func spaceFactories() map[string]func(size int) Space {
	return map[string]func(size int) Space{
		"atomic":        func(size int) Space { return NewAtomicSpace(size) },
		"compact":       func(size int) Space { return NewCompactSpace(size) },
		"bitmap":        func(size int) Space { return NewBitmapSpace(size) },
		"bitmap-padded": func(size int) Space { return NewPaddedBitmapSpace(size) },
		"counting": func(size int) Space {
			return NewCountingSpace(NewAtomicSpace(size))
		},
		"counting-bitmap": func(size int) Space {
			return NewCountingSpace(NewBitmapSpace(size))
		},
		"randomized": func(size int) Space { return NewRandomizedSpace(size, 5) },
	}
}

func TestSpaceBasics(t *testing.T) {
	for name, factory := range spaceFactories() {
		factory := factory
		t.Run(name, func(t *testing.T) {
			sp := factory(8)
			if sp.Len() != 8 {
				t.Fatalf("Len = %d, want 8", sp.Len())
			}
			for i := 0; i < sp.Len(); i++ {
				if sp.Read(i) {
					t.Fatalf("slot %d taken before any TestAndSet", i)
				}
			}
			if !sp.TestAndSet(3) {
				t.Fatal("first TestAndSet(3) lost")
			}
			if !sp.Read(3) {
				t.Fatal("Read(3) false after winning TestAndSet")
			}
			if sp.TestAndSet(3) {
				t.Fatal("second TestAndSet(3) won")
			}
			sp.Reset(3)
			if sp.Read(3) {
				t.Fatal("Read(3) true after Reset")
			}
			if !sp.TestAndSet(3) {
				t.Fatal("TestAndSet(3) lost after Reset")
			}
		})
	}
}

func TestNewSpacePanicsOnInvalidSize(t *testing.T) {
	cases := map[string]func(){
		"atomic-zero":      func() { NewAtomicSpace(0) },
		"atomic-negative":  func() { NewAtomicSpace(-1) },
		"compact-zero":     func() { NewCompactSpace(0) },
		"compact-negative": func() { NewCompactSpace(-5) },
		"bitmap-zero":      func() { NewBitmapSpace(0) },
		"bitmap-negative":  func() { NewBitmapSpace(-64) },
		"padded-zero":      func() { NewPaddedBitmapSpace(0) },
	}
	for name, fn := range cases {
		fn := fn
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// TestMutualExclusion checks the defining property of test-and-set: under
// concurrency, exactly one caller wins each location.
func TestMutualExclusion(t *testing.T) {
	for name, factory := range spaceFactories() {
		factory := factory
		t.Run(name, func(t *testing.T) {
			const (
				slots      = 64
				goroutines = 16
			)
			sp := factory(slots)
			wins := make([][]int, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < slots; i++ {
						if sp.TestAndSet(i) {
							wins[g] = append(wins[g], i)
						}
					}
				}()
			}
			wg.Wait()
			winners := make(map[int]int)
			for g := range wins {
				for _, slot := range wins[g] {
					winners[slot]++
				}
			}
			if len(winners) != slots {
				t.Fatalf("only %d of %d slots were won", len(winners), slots)
			}
			for slot, count := range winners {
				if count != 1 {
					t.Fatalf("slot %d won %d times", slot, count)
				}
			}
		})
	}
}

func TestOccupancyAndSnapshot(t *testing.T) {
	sp := NewAtomicSpace(10)
	for _, i := range []int{0, 4, 9} {
		if !sp.TestAndSet(i) {
			t.Fatalf("TestAndSet(%d) lost on empty space", i)
		}
	}
	if got := Occupancy(sp); got != 3 {
		t.Fatalf("Occupancy = %d, want 3", got)
	}
	snap := Snapshot(sp)
	if len(snap) != 10 {
		t.Fatalf("Snapshot length %d, want 10", len(snap))
	}
	for i, taken := range snap {
		want := i == 0 || i == 4 || i == 9
		if taken != want {
			t.Fatalf("Snapshot[%d] = %v, want %v", i, taken, want)
		}
	}
}

func TestCountingSpaceCounters(t *testing.T) {
	cs := NewCountingSpace(NewAtomicSpace(4))
	if !cs.TestAndSet(0) {
		t.Fatal("first TestAndSet lost")
	}
	if cs.TestAndSet(0) {
		t.Fatal("second TestAndSet won")
	}
	cs.Read(0)
	cs.Read(1)
	cs.Reset(0)
	got := cs.Counters()
	want := Counters{Probes: 2, Wins: 1, Losses: 1, Resets: 1, Reads: 2}
	if got != want {
		t.Fatalf("Counters = %+v, want %+v", got, want)
	}
	cs.ResetCounters()
	if got := cs.Counters(); got != (Counters{}) {
		t.Fatalf("Counters after reset = %+v, want zero", got)
	}
	// Slot state must survive counter reset.
	if cs.Read(0) {
		t.Fatal("slot 0 still taken after Reset")
	}
}

func TestFlakySpaceForcedLosses(t *testing.T) {
	fs := NewFlakySpace(NewAtomicSpace(4), 3)
	losses := 0
	for i := 0; i < 3; i++ {
		if fs.TestAndSet(0) {
			t.Fatalf("probe %d won during forced-loss window", i)
		}
		losses++
	}
	if fs.RemainingForcedLosses() != 0 {
		t.Fatalf("RemainingForcedLosses = %d, want 0", fs.RemainingForcedLosses())
	}
	if !fs.TestAndSet(0) {
		t.Fatal("probe after forced-loss window lost on a free slot")
	}
	if losses != 3 {
		t.Fatalf("forced losses = %d, want 3", losses)
	}
}

func TestFlakySpaceDenyRange(t *testing.T) {
	fs := NewFlakySpace(NewAtomicSpace(10), 0)
	fs.DenyRange(2, 5)
	for i := 2; i < 5; i++ {
		if fs.TestAndSet(i) {
			t.Fatalf("TestAndSet(%d) won inside denied range", i)
		}
		if fs.Read(i) {
			t.Fatalf("denied probe marked slot %d as taken", i)
		}
	}
	if !fs.TestAndSet(5) {
		t.Fatal("TestAndSet(5) lost outside denied range")
	}
	// Clearing the denial re-enables the range.
	fs.DenyRange(0, 0)
	if !fs.TestAndSet(2) {
		t.Fatal("TestAndSet(2) lost after denial cleared")
	}
}

func TestFlakySpaceRemainingNeverNegative(t *testing.T) {
	fs := NewFlakySpace(NewAtomicSpace(2), 1)
	fs.TestAndSet(0)
	fs.TestAndSet(0)
	fs.TestAndSet(1)
	if got := fs.RemainingForcedLosses(); got != 0 {
		t.Fatalf("RemainingForcedLosses = %d, want 0", got)
	}
}

// Property: any interleaving of TestAndSet/Reset on a single slot maintains a
// simple sequential model of the slot's state.
func TestQuickSingleSlotModel(t *testing.T) {
	prop := func(ops []bool) bool {
		sp := NewAtomicSpace(1)
		taken := false
		for _, acquire := range ops {
			if acquire {
				won := sp.TestAndSet(0)
				if won == taken {
					// Winning while the model says taken, or losing while
					// free, is a violation.
					return false
				}
				if won {
					taken = true
				}
			} else {
				sp.Reset(0)
				taken = false
			}
			if sp.Read(0) != taken {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: occupancy equals wins minus resets for sequences of wins and
// resets generated on distinct slots.
func TestQuickOccupancyAccounting(t *testing.T) {
	prop := func(raw []uint8) bool {
		sp := NewCountingSpace(NewAtomicSpace(256))
		held := make(map[int]bool)
		for _, b := range raw {
			slot := int(b)
			if held[slot] {
				sp.Reset(slot)
				delete(held, slot)
			} else if sp.TestAndSet(slot) {
				held[slot] = true
			}
		}
		c := sp.Counters()
		return Occupancy(sp) == len(held) && c.Wins-c.Resets == uint64(len(held))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAcquireRelease(t *testing.T) {
	const (
		slots      = 128
		goroutines = 8
		iterations = 2000
	)
	sp := NewAtomicSpace(slots)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine works a disjoint stripe so releases are always
			// performed by the owner, as the model requires.
			for it := 0; it < iterations; it++ {
				slot := g*(slots/goroutines) + it%(slots/goroutines)
				if sp.TestAndSet(slot) {
					if !sp.Read(slot) {
						t.Errorf("slot %d not visible as taken to its owner", slot)
						return
					}
					sp.Reset(slot)
				}
			}
		}()
	}
	wg.Wait()
	if got := Occupancy(sp); got != 0 {
		t.Fatalf("Occupancy = %d after all releases, want 0", got)
	}
}

func BenchmarkTestAndSetUncontended(b *testing.B) {
	sp := NewAtomicSpace(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % 1024
		sp.TestAndSet(slot)
		sp.Reset(slot)
	}
}

func BenchmarkTestAndSetContended(b *testing.B) {
	sp := NewAtomicSpace(1)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if sp.TestAndSet(0) {
				sp.Reset(0)
			}
		}
	})
}
