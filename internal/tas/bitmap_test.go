package tas

import (
	"fmt"
	"math/bits"
	"sync"
	"testing"
	"testing/quick"
)

// bitmapVariants enumerates the packed layouts (dense and cache-line padded).
func bitmapVariants() map[string]func(size int) *BitmapSpace {
	return map[string]func(size int) *BitmapSpace{
		"dense":  NewBitmapSpace,
		"padded": NewPaddedBitmapSpace,
	}
}

// TestBitmapUnevenSizes exercises capacities that do not divide 64: the tail
// word is only partially used and must behave exactly like the full words.
func TestBitmapUnevenSizes(t *testing.T) {
	for name, build := range bitmapVariants() {
		build := build
		t.Run(name, func(t *testing.T) {
			for _, size := range []int{1, 2, 63, 64, 65, 100, 127, 128, 129, 1000} {
				sp := build(size)
				if sp.Len() != size {
					t.Fatalf("size %d: Len = %d", size, sp.Len())
				}
				wantWords := (size + WordBits - 1) / WordBits
				if sp.NumWords() != wantWords {
					t.Fatalf("size %d: NumWords = %d, want %d", size, sp.NumWords(), wantWords)
				}
				// Every slot, including the last, is individually acquirable.
				for i := 0; i < size; i++ {
					if !sp.TestAndSet(i) {
						t.Fatalf("size %d: TestAndSet(%d) lost on empty space", size, i)
					}
				}
				if got := sp.OccupancyFast(); got != size {
					t.Fatalf("size %d: OccupancyFast = %d after filling", size, got)
				}
				// The tail word must not carry bits beyond Len.
				words := sp.SnapshotWords()
				if len(words) != wantWords {
					t.Fatalf("size %d: SnapshotWords returned %d words", size, len(words))
				}
				total := 0
				for _, w := range words {
					total += bits.OnesCount64(w)
				}
				if total != size {
					t.Fatalf("size %d: snapshot carries %d bits", size, total)
				}
				sp.Reset(size - 1)
				if got := sp.OccupancyFast(); got != size-1 {
					t.Fatalf("size %d: OccupancyFast = %d after one Reset", size, got)
				}
			}
		})
	}
}

// TestBitmapOutOfRangePanics verifies that indices beyond Len panic instead
// of silently aliasing the unused tail bits of the last word.
func TestBitmapOutOfRangePanics(t *testing.T) {
	sp := NewBitmapSpace(100) // words hold 128 bits; 100..127 must not be usable
	for _, i := range []int{-1, 100, 127} {
		for name, op := range map[string]func(int){
			"TestAndSet": func(i int) { sp.TestAndSet(i) },
			"Reset":      func(i int) { sp.Reset(i) },
			"Read":       func(i int) { sp.Read(i) },
		} {
			i, op := i, op
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s(%d) did not panic", name, i)
					}
				}()
				op(i)
			}()
		}
	}
}

// TestBitmapAppendSetOrdering checks the word-at-a-time Collect primitive:
// set bits come back sorted, offset by base, with nothing added or lost.
func TestBitmapAppendSetOrdering(t *testing.T) {
	sp := NewBitmapSpace(200)
	want := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range want {
		sp.TestAndSet(i)
	}
	got := sp.AppendSet([]int{-7}, 1000)
	if got[0] != -7 {
		t.Fatalf("AppendSet did not append to dst: %v", got[:1])
	}
	got = got[1:]
	if len(got) != len(want) {
		t.Fatalf("AppendSet returned %d names, want %d: %v", len(got), len(want), got)
	}
	for i, name := range got {
		if name != want[i]+1000 {
			t.Fatalf("AppendSet[%d] = %d, want %d", i, name, want[i]+1000)
		}
	}
}

// TestBitmapScanWordsSkipsEmpty verifies the scan invokes its callback only
// for nonzero words and reports consistent word indices.
func TestBitmapScanWordsSkipsEmpty(t *testing.T) {
	sp := NewPaddedBitmapSpace(64 * 8)
	sp.TestAndSet(0)
	sp.TestAndSet(64*3 + 17)
	sp.TestAndSet(64*7 + 63)
	var visited []int
	sp.ScanWords(func(w int, word uint64) {
		visited = append(visited, w)
		if word == 0 {
			t.Errorf("callback invoked for empty word %d", w)
		}
	})
	if len(visited) != 3 || visited[0] != 0 || visited[1] != 3 || visited[2] != 7 {
		t.Fatalf("visited words %v, want [0 3 7]", visited)
	}
}

// TestBitmapWordRaces hammers TestAndSet/Reset on slots that all share one
// bitmap word, from many goroutines, under the race detector: each slot must
// still be won by exactly one goroutine per round, and a neighbouring bit's
// concurrent churn must never make a fetch-or on a free bit spuriously lose.
func TestBitmapWordRaces(t *testing.T) {
	for name, build := range bitmapVariants() {
		build := build
		t.Run(name, func(t *testing.T) {
			const (
				slots      = 48 // all within word 0 of a 60-slot space
				goroutines = 8
				rounds     = 200
			)
			sp := build(60)
			winners := make([][]int32, goroutines)
			for g := range winners {
				winners[g] = make([]int32, slots)
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						for i := 0; i < slots; i++ {
							if sp.TestAndSet(i) {
								winners[g][i]++
								// Owner releases immediately, keeping the word
								// churning under everyone else's CAS loops.
								sp.Reset(i)
							}
						}
					}
				}()
			}
			wg.Wait()
			if got := sp.OccupancyFast(); got != 0 {
				t.Fatalf("occupancy %d after all releases", got)
			}
			// Liveness sanity: the word was not wedged — overall a healthy
			// number of acquisitions succeeded.
			var total int64
			for g := range winners {
				for i := range winners[g] {
					total += int64(winners[g][i])
				}
			}
			if total == 0 {
				t.Fatal("no goroutine ever won any slot")
			}
		})
	}
}

// TestBitmapSingleWinnerPerSlot is the mutual-exclusion property restricted
// to one shared word: with no resets, every slot of the word has exactly one
// winner even under maximal CAS interference.
func TestBitmapSingleWinnerPerSlot(t *testing.T) {
	const (
		slots      = 64
		goroutines = 12
	)
	sp := NewBitmapSpace(slots)
	wins := make([][]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < slots; i++ {
				if sp.TestAndSet(i) {
					wins[g] = append(wins[g], i)
				}
			}
		}()
	}
	wg.Wait()
	counts := make([]int, slots)
	for g := range wins {
		for _, slot := range wins[g] {
			counts[slot]++
		}
	}
	for slot, c := range counts {
		if c != 1 {
			t.Fatalf("slot %d won %d times", slot, c)
		}
	}
}

// TestBitmapCollectValidityUnderChurn checks the paper's Collect validity
// property on the packed representation: every name AppendSet returns must
// have been held at some point during the scan. Churners only ever acquire
// even slots, so collecting an odd name — a bit that was never set, e.g.
// fabricated by a misaligned mask, a lost CAS retry, or tail-bit aliasing in
// the partial last word — is a hard failure. Runs meaningfully under -race.
func TestBitmapCollectValidityUnderChurn(t *testing.T) {
	const (
		size       = 130 // three words, last one partial
		goroutines = 10
		iterations = 300
	)
	sp := NewBitmapSpace(size)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Disjoint ownership of even slots: churner g handles every
			// goroutines-th even slot, so resets are always by the owner.
			for it := 0; it < iterations; it++ {
				for slot := 2 * g; slot < size; slot += 2 * goroutines {
					if sp.TestAndSet(slot) {
						sp.Reset(slot)
					}
				}
			}
		}()
	}

	collectorDone := make(chan error, 1)
	go func() {
		buf := make([]int, 0, size)
		for {
			select {
			case <-stop:
				collectorDone <- nil
				return
			default:
			}
			buf = sp.AppendSet(buf[:0], 0)
			for _, name := range buf {
				if name < 0 || name >= size {
					collectorDone <- fmt.Errorf("collected out-of-range name %d", name)
					return
				}
				if name%2 != 0 {
					collectorDone <- fmt.Errorf("collected name %d, which was never held", name)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err := <-collectorDone; err != nil {
		t.Fatal(err)
	}
	if got := sp.OccupancyFast(); got != 0 {
		t.Fatalf("occupancy %d after churn", got)
	}
}

// TestNewSpacePanicsOnUnknownKind verifies an invalid substrate selection
// fails loudly instead of silently running on the default layout, which
// would corrupt substrate-comparison measurements.
func TestNewSpacePanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSpace(Kind(99), ...) did not panic")
		}
	}()
	NewSpace(Kind(99), 8)
}

// TestBitmapCountRange cross-validates the masked popcount against a naive
// per-slot count over arbitrary ranges, including partial first/last words
// and out-of-bounds clamping.
func TestBitmapCountRange(t *testing.T) {
	const size = 200
	sp := NewBitmapSpace(size)
	for i := 0; i < size; i += 3 {
		sp.TestAndSet(i)
	}
	naive := func(lo, hi int) int {
		if lo < 0 {
			lo = 0
		}
		if hi > size {
			hi = size
		}
		n := 0
		for i := lo; i < hi; i++ {
			if sp.Read(i) {
				n++
			}
		}
		return n
	}
	cases := [][2]int{
		{0, size}, {0, 0}, {5, 5}, {10, 5}, {-10, 300},
		{0, 1}, {63, 64}, {63, 65}, {64, 128}, {1, 199},
		{60, 70}, {100, 130}, {199, 200}, {128, 129},
	}
	for _, c := range cases {
		if got, want := sp.CountRange(c[0], c[1]), naive(c[0], c[1]); got != want {
			t.Errorf("CountRange(%d, %d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

// TestBitmapMatchesModel cross-validates the packed layout against the
// unpacked CompactSpace on identical operation sequences.
func TestBitmapMatchesModel(t *testing.T) {
	prop := func(ops []uint16, sizeRaw uint8) bool {
		size := int(sizeRaw)%150 + 1
		bm := NewBitmapSpace(size)
		model := NewCompactSpace(size)
		for _, op := range ops {
			slot := int(op % uint16(size))
			switch (op / uint16(size)) % 3 {
			case 0:
				if bm.TestAndSet(slot) != model.TestAndSet(slot) {
					return false
				}
			case 1:
				bm.Reset(slot)
				model.Reset(slot)
			default:
				if bm.Read(slot) != model.Read(slot) {
					return false
				}
			}
		}
		if bm.OccupancyFast() != Occupancy(model) {
			return false
		}
		want := Snapshot(model)
		got := Snapshot(bm)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBitmapForEachSet checks the exported sweep hook against AppendSet
// (same order, same names) and its early-stop contract.
func TestBitmapForEachSet(t *testing.T) {
	sp := NewBitmapSpace(200)
	taken := []int{0, 1, 63, 64, 100, 199}
	for _, i := range taken {
		if !sp.TestAndSet(i) {
			t.Fatalf("TestAndSet(%d) lost on an empty space", i)
		}
	}
	var got []int
	if !sp.ForEachSet(1000, func(name int) bool {
		got = append(got, name)
		return true
	}) {
		t.Fatal("full sweep must report completion")
	}
	want := sp.AppendSet(nil, 1000)
	if len(got) != len(want) {
		t.Fatalf("ForEachSet visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEachSet visited %v, want %v", got, want)
		}
	}

	// Early stop: the callback's false return ends the sweep immediately.
	var visited int
	if sp.ForEachSet(0, func(name int) bool {
		visited++
		return visited < 3
	}) {
		t.Fatal("stopped sweep must report early termination")
	}
	if visited != 3 {
		t.Fatalf("visited %d slots after stop at 3", visited)
	}
}
