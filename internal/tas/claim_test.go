package tas

import (
	"sync"
	"testing"
)

func TestClaimInWordLowestFreeBit(t *testing.T) {
	s := NewBitmapSpace(128)
	// Occupy bits 0 and 2 of word 0; the claim must take bit 1.
	if !s.TestAndSet(0) || !s.TestAndSet(2) {
		t.Fatal("setup TestAndSet lost on an empty space")
	}
	bit, ok := s.ClaimInWord(0)
	if !ok || bit != 1 {
		t.Fatalf("ClaimInWord(0) = (%d, %v), want (1, true)", bit, ok)
	}
	if !s.Read(1) {
		t.Fatal("claimed slot 1 not marked taken")
	}
	// Word 1 is empty: the claim must take its lowest bit, slot 64.
	bit, ok = s.ClaimInWord(1)
	if !ok || bit != 0 {
		t.Fatalf("ClaimInWord(1) = (%d, %v), want (0, true)", bit, ok)
	}
	if !s.Read(64) {
		t.Fatal("claimed slot 64 not marked taken")
	}
}

func TestClaimInWordFullWord(t *testing.T) {
	s := NewBitmapSpace(64)
	for i := 0; i < 64; i++ {
		if !s.TestAndSet(i) {
			t.Fatalf("setup TestAndSet(%d) lost", i)
		}
	}
	if bit, ok := s.ClaimInWord(0); ok {
		t.Fatalf("ClaimInWord on a full word claimed bit %d", bit)
	}
}

// TestClaimInWordTailClamp checks that the final, partially used word never
// yields a slot at or beyond Len.
func TestClaimInWordTailClamp(t *testing.T) {
	const size = 70 // word 1 has only 6 valid bits
	s := NewBitmapSpace(size)
	for i := 64; i < size; i++ {
		if bit, ok := s.ClaimInWord(1); !ok || 64+bit != i {
			t.Fatalf("ClaimInWord(1) = (%d, %v), want (%d, true)", bit, ok, i-64)
		}
	}
	if bit, ok := s.ClaimInWord(1); ok {
		t.Fatalf("ClaimInWord claimed invented bit %d past Len", bit)
	}
	if got := s.OccupancyFast(); got != size-64 {
		t.Fatalf("occupancy = %d, want %d", got, size-64)
	}
}

func TestClaimInWordOutOfRangePanics(t *testing.T) {
	s := NewBitmapSpace(64)
	for _, w := range []int{-1, 1, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ClaimInWord(%d) did not panic", w)
				}
			}()
			s.ClaimInWord(w)
		}()
	}
}

func TestClaimRangeFirstFree(t *testing.T) {
	const size = 300
	s := NewBitmapSpace(size)
	// Fill everything below 170, so words 0 and 1 are full and word 2 is
	// partially occupied.
	for i := 0; i < 170; i++ {
		if !s.TestAndSet(i) {
			t.Fatalf("setup TestAndSet(%d) lost", i)
		}
	}
	slot, ok := s.ClaimRange(0, size)
	if !ok || slot != 170 {
		t.Fatalf("ClaimRange(0, %d) = (%d, %v), want (170, true)", size, slot, ok)
	}
	// A range starting inside the occupied prefix still yields its first
	// free slot; one starting past it yields its own lower bound.
	slot, ok = s.ClaimRange(100, size)
	if !ok || slot != 171 {
		t.Fatalf("ClaimRange(100, %d) = (%d, %v), want (171, true)", size, slot, ok)
	}
	slot, ok = s.ClaimRange(200, size)
	if !ok || slot != 200 {
		t.Fatalf("ClaimRange(200, %d) = (%d, %v), want (200, true)", size, slot, ok)
	}
	// The claimed slots are really taken.
	for _, want := range []int{170, 171, 200} {
		if !s.Read(want) {
			t.Fatalf("slot %d not marked taken after claim", want)
		}
	}
}

func TestClaimRangeRespectsUpperBound(t *testing.T) {
	s := NewBitmapSpace(256)
	for i := 0; i < 100; i++ {
		if !s.TestAndSet(i) {
			t.Fatalf("setup TestAndSet(%d) lost", i)
		}
	}
	// [0, 100) is exactly the occupied prefix: nothing to claim, even though
	// slot 100 (same word) is free.
	if slot, ok := s.ClaimRange(0, 100); ok {
		t.Fatalf("ClaimRange(0, 100) claimed %d beyond the range", slot)
	}
	// Sub-word window in the middle of a free word.
	slot, ok := s.ClaimRange(130, 140)
	if !ok || slot != 130 {
		t.Fatalf("ClaimRange(130, 140) = (%d, %v), want (130, true)", slot, ok)
	}
}

func TestClaimRangeDegenerate(t *testing.T) {
	s := NewBitmapSpace(100)
	if _, ok := s.ClaimRange(10, 10); ok {
		t.Fatal("ClaimRange on an empty range claimed a slot")
	}
	if _, ok := s.ClaimRange(50, 20); ok {
		t.Fatal("ClaimRange on an inverted range claimed a slot")
	}
	// Bounds are clamped, not panicked on.
	slot, ok := s.ClaimRange(-5, 1000)
	if !ok || slot != 0 {
		t.Fatalf("ClaimRange(-5, 1000) = (%d, %v), want (0, true)", slot, ok)
	}
	if _, ok := s.ClaimRange(200, 300); ok {
		t.Fatal("ClaimRange entirely past Len claimed a slot")
	}
}

// TestClaimRangeExhausts claims one slot at a time until the space is full:
// every claim must return a distinct slot and the final claim must fail.
func TestClaimRangeExhausts(t *testing.T) {
	const size = 130
	s := NewBitmapSpace(size)
	seen := make(map[int]bool)
	for i := 0; i < size; i++ {
		slot, ok := s.ClaimRange(0, size)
		if !ok {
			t.Fatalf("claim %d failed with %d slots taken", i, len(seen))
		}
		if seen[slot] {
			t.Fatalf("slot %d claimed twice", slot)
		}
		seen[slot] = true
	}
	if slot, ok := s.ClaimRange(0, size); ok {
		t.Fatalf("claim on a full space returned %d", slot)
	}
}

// TestClaimConcurrentUniqueness races claimers against each other: every
// claimed slot must be unique and the occupancy must equal the claim count.
// Run under -race.
func TestClaimConcurrentUniqueness(t *testing.T) {
	const (
		size    = 64 * 6
		workers = 8
	)
	s := NewBitmapSpace(size)
	results := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Alternate the two claim entry points under contention.
				var slot int
				var ok bool
				if len(results[w])%2 == 0 {
					slot, ok = s.ClaimRange(0, size)
				} else {
					var bit int
					// Aim at the word covering the last claim to contend.
					bit, ok = s.ClaimInWord(results[w][len(results[w])-1] / WordBits)
					slot = results[w][len(results[w])-1]/WordBits*WordBits + bit
				}
				if !ok {
					// ClaimInWord may fail on a full word while the space
					// still has room elsewhere; fall back to the full range.
					if slot, ok = s.ClaimRange(0, size); !ok {
						return
					}
				}
				results[w] = append(results[w], slot)
			}
		}()
	}
	wg.Wait()
	seen := make(map[int]int)
	total := 0
	for w, slots := range results {
		total += len(slots)
		for _, slot := range slots {
			if prev, dup := seen[slot]; dup {
				t.Fatalf("slot %d claimed by both worker %d and worker %d", slot, prev, w)
			}
			seen[slot] = w
		}
	}
	if total != size {
		t.Fatalf("claimed %d slots in a %d-slot space", total, size)
	}
	if got := s.OccupancyFast(); got != size {
		t.Fatalf("occupancy = %d after exhausting claims, want %d", got, size)
	}
}

// TestCountingClaimsForwardAndCount checks that the counting decorator
// forwards word claims and records one probe per word-level atomic, the
// measurement the O(n/64) sweep assertions rely on.
func TestCountingClaimsForwardAndCount(t *testing.T) {
	const size = 256 // 4 words
	inner := NewBitmapSpace(size)
	c := NewCountingSpace(inner)
	// Fill the first three words through the decorator's per-slot path.
	for i := 0; i < 192; i++ {
		if !c.TestAndSet(i) {
			t.Fatalf("setup TestAndSet(%d) lost", i)
		}
	}
	c.ResetCounters()
	slot, ok := c.ClaimRange(0, size)
	if !ok || slot != 192 {
		t.Fatalf("ClaimRange = (%d, %v), want (192, true)", slot, ok)
	}
	counts := c.Counters()
	// Three full words skipped plus the winning word: four word probes.
	if counts.Probes != 4 {
		t.Fatalf("Probes = %d for a 4-word sweep, want 4", counts.Probes)
	}
	if counts.Wins != 1 {
		t.Fatalf("Wins = %d, want 1", counts.Wins)
	}
	c.ResetCounters()
	// A window within one word costs exactly one counted word atomic.
	if slot, ok := c.ClaimRange(193, 256); !ok || slot != 193 {
		t.Fatalf("ClaimRange(193, 256) = (%d, %v), want (193, true)", slot, ok)
	}
	if counts = c.Counters(); counts.Probes != 1 || counts.Wins != 1 {
		t.Fatalf("single-word ClaimRange counters = %+v, want 1 probe / 1 win", counts)
	}
}

// TestCountingClaimsFallback checks the per-slot degradation when the wrapped
// space has no word claims: the outcome is identical (first free slot) and
// the counters record per-slot probes.
func TestCountingClaimsFallback(t *testing.T) {
	inner := NewCompactSpace(100)
	c := NewCountingSpace(inner)
	for i := 0; i < 10; i++ {
		if !c.TestAndSet(i) {
			t.Fatalf("setup TestAndSet(%d) lost", i)
		}
	}
	c.ResetCounters()
	slot, ok := c.ClaimRange(0, 100)
	if !ok || slot != 10 {
		t.Fatalf("fallback ClaimRange = (%d, %v), want (10, true)", slot, ok)
	}
	if counts := c.Counters(); counts.Probes != 11 {
		t.Fatalf("fallback Probes = %d, want 11 per-slot trials", counts.Probes)
	}
	if _, ok := c.ClaimRange(0, 5); ok {
		t.Fatal("fallback ClaimRange claimed in a full range")
	}
}
