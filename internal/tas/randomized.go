package tas

import (
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/rng"
)

// RandomizedSpace implements test-and-set locations from read/write registers
// plus local randomization, in the spirit of the wait-free test-and-set
// construction of Afek, Gafni, Tromp and Vitányi that the paper cites as the
// way to run the LevelArray on machines without a hardware test-and-set (its
// Section 2 remark: "test-and-set operations can be simulated either using
// reads and writes with randomization, or atomic compare-and-swap").
//
// Each location is a two-process-style splitter cascaded into a randomized
// backoff tournament: a caller writes its ticket, flips coins to decide
// whether to persist, and wins if it is the unique persisting ticket the
// location settles on. The construction here is a practical simplification —
// it resolves every race in a bounded number of rounds using a final
// compare-and-swap as the commit point, so it remains linearizable while
// exercising the randomized path — and exists so the benchmarks can measure
// the cost of running the LevelArray on top of software test-and-set rather
// than hardware CAS.
//
// The probabilistic structure (per-round coin flips deciding whether a
// contender persists) follows the cited construction; the commit point keeps
// the implementation compact and correct without reproducing the full
// register-only protocol.
type RandomizedSpace struct {
	slots []randomizedSlot
	seeds *rng.SeedSequence
}

// randomizedSlot is one location of a RandomizedSpace.
type randomizedSlot struct {
	// ticket is the currently advertised contender (0 = none). Contenders
	// write their ticket, then decide by coin flips whether to persist.
	ticket atomic.Uint64
	// committed is the commit flag: 0 free, 1 taken.
	committed atomic.Uint32
	_         [48]byte // pad to a cache line together with the two words above
}

var _ Space = (*RandomizedSpace)(nil)

// NewRandomizedSpace returns a RandomizedSpace with size locations, all free.
// The seed decorrelates the coin flips of concurrent callers.
func NewRandomizedSpace(size int, seed uint64) *RandomizedSpace {
	if size <= 0 {
		panic("tas: invalid randomized space size")
	}
	return &RandomizedSpace{
		slots: make([]randomizedSlot, size),
		seeds: rng.NewSeedSequence(seed),
	}
}

// Len returns the number of locations.
func (s *RandomizedSpace) Len() int { return len(s.slots) }

// maxTournamentRounds bounds the coin-flipping tournament. After the bound is
// reached the caller concedes, which only makes TestAndSet more conservative
// (it may lose on a free slot under heavy contention, exactly like losing the
// randomized tournament itself).
const maxTournamentRounds = 8

// TestAndSet attempts to acquire location i.
func (s *RandomizedSpace) TestAndSet(i int) bool {
	slot := &s.slots[i]
	if slot.committed.Load() != 0 {
		return false
	}
	// Local generator: derived lazily per call. The allocation-free fast
	// path matters less than determinism here; callers on hot paths use
	// AtomicSpace.
	coins := rng.NewXorshift(s.seeds.Next())
	ticket := coins.Uint64() | 1 // non-zero

	for round := 0; round < maxTournamentRounds; round++ {
		if slot.committed.Load() != 0 {
			return false
		}
		// Advertise the ticket if the slot looks unclaimed this round.
		if slot.ticket.CompareAndSwap(0, ticket) {
			// We are the advertised contender; try to commit.
			if slot.committed.CompareAndSwap(0, 1) {
				return true
			}
			// Someone else committed first; withdraw the advertisement.
			slot.ticket.CompareAndSwap(ticket, 0)
			return false
		}
		// Another contender is advertised. Flip a coin: with probability 1/2
		// back off for a round (letting the advertised contender commit),
		// otherwise retry immediately. This is the randomized symmetry
		// breaking of the cited construction.
		if coins.Intn(2) == 0 {
			continue
		}
	}
	return false
}

// Reset releases location i back to the free state.
func (s *RandomizedSpace) Reset(i int) {
	slot := &s.slots[i]
	slot.ticket.Store(0)
	slot.committed.Store(0)
}

// Read reports whether location i is currently taken.
func (s *RandomizedSpace) Read(i int) bool {
	return s.slots[i].committed.Load() != 0
}
