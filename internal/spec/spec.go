// Package spec defines execution traces for activity-array executions and a
// checker that validates them against the long-lived renaming specification
// from Section 2 of the paper:
//
//   - Get and Free are linearizable and alternate per process (well-formed
//     inputs);
//   - no two processes hold the same name at the same time (uniqueness);
//   - every name returned by a Collect was held by some process at some point
//     during the Collect (validity);
//   - all names fall inside the declared namespace (the space bound).
//
// The step-level simulator (internal/sched) emits traces in this format; the
// checker is also usable on traces constructed by hand in tests.
package spec

import (
	"fmt"
	"sort"
)

// EventKind identifies the operation recorded by an Event.
type EventKind int

// The operation kinds of the activity-array model.
const (
	GetEvent EventKind = iota + 1
	FreeEvent
	CollectEvent
	CallEvent
)

// String returns the event kind's name.
func (k EventKind) String() string {
	switch k {
	case GetEvent:
		return "Get"
	case FreeEvent:
		return "Free"
	case CollectEvent:
		return "Collect"
	case CallEvent:
		return "Call"
	default:
		return "unknown"
	}
}

// NoFree marks a hold interval whose name was never released.
const NoFree = ^uint64(0)

// Event is one completed operation in a trace.
type Event struct {
	// Kind is the operation type.
	Kind EventKind
	// Process is the identifier of the process that performed the operation.
	Process int
	// Name is the index acquired (Get) or released (Free). Unused otherwise.
	Name int
	// Start is the step time of the operation's first step.
	Start uint64
	// End is the step time of the operation's linearization point (its
	// successful test-and-set for Get, its reset for Free, its last read for
	// Collect).
	End uint64
	// Names is the set returned by a Collect. Unused otherwise.
	Names []int
	// Probes is the number of test-and-set trials a Get performed.
	Probes int
}

// Trace is a sequence of completed operations plus the static parameters
// needed to check them.
type Trace struct {
	// Capacity is n, the declared contention bound.
	Capacity int
	// NamespaceSize is the number of distinct names the array may return.
	NamespaceSize int
	// Events holds the completed operations. Order does not matter; the
	// checker orders them by linearization time.
	Events []Event
}

// Append adds an event to the trace.
func (tr *Trace) Append(ev Event) {
	tr.Events = append(tr.Events, ev)
}

// Violation describes one way a trace failed the specification.
type Violation struct {
	// Rule is the short name of the violated rule.
	Rule string
	// Detail is a human-readable description with the offending events.
	Detail string
}

// Error formats the violation as an error string.
func (v Violation) Error() string {
	return fmt.Sprintf("spec violation [%s]: %s", v.Rule, v.Detail)
}

// Rule names reported by the checker.
const (
	RuleUniqueness      = "uniqueness"
	RuleWellFormed      = "well-formed"
	RuleCollectValidity = "collect-validity"
	RuleNamespace       = "namespace"
)

// holdInterval is the period during which a name was held: from the Get's
// linearization to the matching Free's linearization (or NoFree).
type holdInterval struct {
	process int
	from    uint64
	to      uint64
}

// Check validates the trace and returns every violation found (empty means
// the trace satisfies the long-lived renaming specification).
func Check(tr Trace) []Violation {
	var violations []Violation

	// Order Get/Free events by linearization time to replay the execution.
	linear := make([]Event, 0, len(tr.Events))
	collects := make([]Event, 0)
	for _, ev := range tr.Events {
		switch ev.Kind {
		case GetEvent, FreeEvent:
			linear = append(linear, ev)
		case CollectEvent:
			collects = append(collects, ev)
		}
	}
	sort.SliceStable(linear, func(i, j int) bool { return linear[i].End < linear[j].End })

	violations = append(violations, checkNamespace(tr, linear, collects)...)
	holdsByName, wfViolations := replay(linear)
	violations = append(violations, wfViolations...)
	violations = append(violations, checkCollects(collects, holdsByName)...)
	return violations
}

// checkNamespace verifies the space bound for every name in the trace.
func checkNamespace(tr Trace, linear, collects []Event) []Violation {
	var violations []Violation
	outOfRange := func(name int) bool {
		return name < 0 || (tr.NamespaceSize > 0 && name >= tr.NamespaceSize)
	}
	for _, ev := range linear {
		if outOfRange(ev.Name) {
			violations = append(violations, Violation{
				Rule: RuleNamespace,
				Detail: fmt.Sprintf("process %d %s name %d outside namespace [0, %d)",
					ev.Process, ev.Kind, ev.Name, tr.NamespaceSize),
			})
		}
	}
	for _, ev := range collects {
		for _, name := range ev.Names {
			if outOfRange(name) {
				violations = append(violations, Violation{
					Rule: RuleNamespace,
					Detail: fmt.Sprintf("collect by process %d returned name %d outside namespace [0, %d)",
						ev.Process, name, tr.NamespaceSize),
				})
			}
		}
	}
	return violations
}

// replay walks the Get/Free events in linearization order, checking
// uniqueness and per-process well-formedness, and returns the hold intervals
// per name for the collect-validity check.
func replay(linear []Event) (map[int][]holdInterval, []Violation) {
	var violations []Violation
	holder := make(map[int]int) // name -> process currently holding it
	heldBy := make(map[int]int) // process -> name currently held
	processActive := make(map[int]bool)
	openInterval := make(map[int]holdInterval) // name -> open interval
	holds := make(map[int][]holdInterval)

	for _, ev := range linear {
		switch ev.Kind {
		case GetEvent:
			if processActive[ev.Process] {
				violations = append(violations, Violation{
					Rule: RuleWellFormed,
					Detail: fmt.Sprintf("process %d performed Get at step %d while already holding name %d",
						ev.Process, ev.End, heldBy[ev.Process]),
				})
			}
			if other, taken := holder[ev.Name]; taken {
				violations = append(violations, Violation{
					Rule: RuleUniqueness,
					Detail: fmt.Sprintf("name %d acquired by process %d at step %d while still held by process %d",
						ev.Name, ev.Process, ev.End, other),
				})
			}
			holder[ev.Name] = ev.Process
			heldBy[ev.Process] = ev.Name
			processActive[ev.Process] = true
			openInterval[ev.Name] = holdInterval{process: ev.Process, from: ev.End, to: NoFree}
		case FreeEvent:
			if !processActive[ev.Process] {
				violations = append(violations, Violation{
					Rule: RuleWellFormed,
					Detail: fmt.Sprintf("process %d performed Free at step %d without holding a name",
						ev.Process, ev.End),
				})
				continue
			}
			if heldBy[ev.Process] != ev.Name {
				violations = append(violations, Violation{
					Rule: RuleWellFormed,
					Detail: fmt.Sprintf("process %d freed name %d at step %d but holds name %d",
						ev.Process, ev.Name, ev.End, heldBy[ev.Process]),
				})
			}
			if iv, ok := openInterval[ev.Name]; ok && iv.process == ev.Process {
				iv.to = ev.End
				holds[ev.Name] = append(holds[ev.Name], iv)
				delete(openInterval, ev.Name)
			}
			delete(holder, ev.Name)
			delete(heldBy, ev.Process)
			processActive[ev.Process] = false
		}
	}
	// Close intervals still open at the end of the trace.
	for name, iv := range openInterval {
		holds[name] = append(holds[name], iv)
	}
	return holds, violations
}

// checkCollects verifies that every name returned by a Collect overlaps a
// hold interval of that name and the Collect's execution window.
func checkCollects(collects []Event, holds map[int][]holdInterval) []Violation {
	var violations []Violation
	for _, ev := range collects {
		for _, name := range ev.Names {
			if !heldDuring(holds[name], ev.Start, ev.End) {
				violations = append(violations, Violation{
					Rule: RuleCollectValidity,
					Detail: fmt.Sprintf("collect by process %d over steps [%d, %d] returned name %d, which was not held during that window",
						ev.Process, ev.Start, ev.End, name),
				})
			}
		}
	}
	return violations
}

// heldDuring reports whether any hold interval overlaps [start, end].
func heldDuring(intervals []holdInterval, start, end uint64) bool {
	for _, iv := range intervals {
		if iv.from <= end && (iv.to == NoFree || iv.to >= start) {
			return true
		}
	}
	return false
}
