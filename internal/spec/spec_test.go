package spec

import (
	"strings"
	"testing"
	"testing/quick"
)

func countRule(violations []Violation, rule string) int {
	n := 0
	for _, v := range violations {
		if v.Rule == rule {
			n++
		}
	}
	return n
}

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		GetEvent:      "Get",
		FreeEvent:     "Free",
		CollectEvent:  "Collect",
		CallEvent:     "Call",
		EventKind(0):  "unknown",
		EventKind(99): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestValidTrace(t *testing.T) {
	tr := Trace{Capacity: 2, NamespaceSize: 4}
	tr.Append(Event{Kind: GetEvent, Process: 0, Name: 1, Start: 1, End: 2})
	tr.Append(Event{Kind: GetEvent, Process: 1, Name: 3, Start: 3, End: 4})
	tr.Append(Event{Kind: CollectEvent, Process: 2, Names: []int{1, 3}, Start: 5, End: 6})
	tr.Append(Event{Kind: FreeEvent, Process: 0, Name: 1, Start: 7, End: 8})
	// Name 1 is reused by process 1... but process 1 still holds 3. Use a
	// third worker instead.
	tr.Append(Event{Kind: GetEvent, Process: 3, Name: 1, Start: 9, End: 10})
	tr.Append(Event{Kind: FreeEvent, Process: 3, Name: 1, Start: 11, End: 12})
	tr.Append(Event{Kind: FreeEvent, Process: 1, Name: 3, Start: 13, End: 14})

	if violations := Check(tr); len(violations) != 0 {
		t.Fatalf("valid trace reported violations: %v", violations)
	}
}

func TestUniquenessViolation(t *testing.T) {
	tr := Trace{Capacity: 2, NamespaceSize: 4}
	tr.Append(Event{Kind: GetEvent, Process: 0, Name: 2, End: 1})
	tr.Append(Event{Kind: GetEvent, Process: 1, Name: 2, End: 2})
	violations := Check(tr)
	if countRule(violations, RuleUniqueness) != 1 {
		t.Fatalf("want exactly one uniqueness violation, got %v", violations)
	}
	if !strings.Contains(violations[0].Error(), "uniqueness") {
		t.Fatalf("Error() = %q", violations[0].Error())
	}
}

func TestNoViolationWhenNameReusedSequentially(t *testing.T) {
	tr := Trace{Capacity: 2, NamespaceSize: 4}
	tr.Append(Event{Kind: GetEvent, Process: 0, Name: 2, End: 1})
	tr.Append(Event{Kind: FreeEvent, Process: 0, Name: 2, End: 2})
	tr.Append(Event{Kind: GetEvent, Process: 1, Name: 2, End: 3})
	if violations := Check(tr); len(violations) != 0 {
		t.Fatalf("sequential reuse reported violations: %v", violations)
	}
}

func TestWellFormednessViolations(t *testing.T) {
	t.Run("GetWhileHolding", func(t *testing.T) {
		tr := Trace{NamespaceSize: 8}
		tr.Append(Event{Kind: GetEvent, Process: 0, Name: 1, End: 1})
		tr.Append(Event{Kind: GetEvent, Process: 0, Name: 2, End: 2})
		if countRule(Check(tr), RuleWellFormed) == 0 {
			t.Fatal("double Get not reported")
		}
	})
	t.Run("FreeWithoutGet", func(t *testing.T) {
		tr := Trace{NamespaceSize: 8}
		tr.Append(Event{Kind: FreeEvent, Process: 0, Name: 1, End: 1})
		if countRule(Check(tr), RuleWellFormed) == 0 {
			t.Fatal("free without get not reported")
		}
	})
	t.Run("FreeWrongName", func(t *testing.T) {
		tr := Trace{NamespaceSize: 8}
		tr.Append(Event{Kind: GetEvent, Process: 0, Name: 1, End: 1})
		tr.Append(Event{Kind: FreeEvent, Process: 0, Name: 5, End: 2})
		if countRule(Check(tr), RuleWellFormed) == 0 {
			t.Fatal("free of wrong name not reported")
		}
	})
}

func TestCollectValidity(t *testing.T) {
	t.Run("NameNeverHeld", func(t *testing.T) {
		tr := Trace{NamespaceSize: 8}
		tr.Append(Event{Kind: GetEvent, Process: 0, Name: 1, End: 1})
		tr.Append(Event{Kind: CollectEvent, Process: 1, Names: []int{5}, Start: 2, End: 3})
		if countRule(Check(tr), RuleCollectValidity) != 1 {
			t.Fatal("collect of never-held name not reported")
		}
	})
	t.Run("NameFreedBeforeCollect", func(t *testing.T) {
		tr := Trace{NamespaceSize: 8}
		tr.Append(Event{Kind: GetEvent, Process: 0, Name: 1, End: 1})
		tr.Append(Event{Kind: FreeEvent, Process: 0, Name: 1, End: 2})
		tr.Append(Event{Kind: CollectEvent, Process: 1, Names: []int{1}, Start: 5, End: 6})
		if countRule(Check(tr), RuleCollectValidity) != 1 {
			t.Fatal("collect of stale name not reported")
		}
	})
	t.Run("NameHeldDuringPartOfCollect", func(t *testing.T) {
		// The name is freed midway through the collect window: still valid.
		tr := Trace{NamespaceSize: 8}
		tr.Append(Event{Kind: GetEvent, Process: 0, Name: 1, End: 1})
		tr.Append(Event{Kind: FreeEvent, Process: 0, Name: 1, End: 5})
		tr.Append(Event{Kind: CollectEvent, Process: 1, Names: []int{1}, Start: 4, End: 9})
		if got := Check(tr); len(got) != 0 {
			t.Fatalf("overlapping collect reported violations: %v", got)
		}
	})
	t.Run("NameAcquiredDuringCollect", func(t *testing.T) {
		tr := Trace{NamespaceSize: 8}
		tr.Append(Event{Kind: CollectEvent, Process: 1, Names: []int{1}, Start: 4, End: 9})
		tr.Append(Event{Kind: GetEvent, Process: 0, Name: 1, End: 7})
		if got := Check(tr); len(got) != 0 {
			t.Fatalf("name acquired mid-collect reported violations: %v", got)
		}
	})
	t.Run("NameHeldForeverBeforeCollect", func(t *testing.T) {
		tr := Trace{NamespaceSize: 8}
		tr.Append(Event{Kind: GetEvent, Process: 0, Name: 3, End: 1})
		tr.Append(Event{Kind: CollectEvent, Process: 1, Names: []int{3}, Start: 100, End: 200})
		if got := Check(tr); len(got) != 0 {
			t.Fatalf("never-freed name reported violations: %v", got)
		}
	})
}

func TestNamespaceViolations(t *testing.T) {
	tr := Trace{NamespaceSize: 4}
	tr.Append(Event{Kind: GetEvent, Process: 0, Name: 4, End: 1})
	tr.Append(Event{Kind: GetEvent, Process: 1, Name: -1, End: 2})
	tr.Append(Event{Kind: CollectEvent, Process: 2, Names: []int{9}, Start: 3, End: 4})
	violations := Check(tr)
	if countRule(violations, RuleNamespace) != 3 {
		t.Fatalf("want 3 namespace violations, got %v", violations)
	}
}

func TestZeroNamespaceSizeSkipsUpperBound(t *testing.T) {
	// NamespaceSize 0 means "unknown": only negative names are flagged.
	tr := Trace{NamespaceSize: 0}
	tr.Append(Event{Kind: GetEvent, Process: 0, Name: 1000, End: 1})
	if got := Check(tr); len(got) != 0 {
		t.Fatalf("unexpected violations with unknown namespace: %v", got)
	}
}

func TestCallEventsIgnored(t *testing.T) {
	tr := Trace{NamespaceSize: 4}
	tr.Append(Event{Kind: CallEvent, Process: 0, End: 1})
	tr.Append(Event{Kind: GetEvent, Process: 0, Name: 1, End: 2})
	tr.Append(Event{Kind: CallEvent, Process: 0, End: 3})
	if got := Check(tr); len(got) != 0 {
		t.Fatalf("call events caused violations: %v", got)
	}
}

func TestEmptyTrace(t *testing.T) {
	if got := Check(Trace{}); len(got) != 0 {
		t.Fatalf("empty trace reported violations: %v", got)
	}
}

// Property: traces generated by a correct sequential reference implementation
// (a simple free-list) always pass the checker.
func TestQuickReferenceTracesPass(t *testing.T) {
	prop := func(script []uint8) bool {
		const (
			processes = 4
			namespace = 16
		)
		tr := Trace{Capacity: processes, NamespaceSize: namespace}
		var step uint64
		held := make(map[int]int) // process -> name
		inUse := make(map[int]bool)
		for _, b := range script {
			p := int(b) % processes
			step++
			if name, ok := held[p]; ok {
				tr.Append(Event{Kind: FreeEvent, Process: p, Name: name, Start: step, End: step})
				delete(held, p)
				delete(inUse, name)
				continue
			}
			// Acquire the smallest free name, mimicking any correct array.
			name := -1
			for candidate := 0; candidate < namespace; candidate++ {
				if !inUse[candidate] {
					name = candidate
					break
				}
			}
			if name < 0 {
				continue
			}
			tr.Append(Event{Kind: GetEvent, Process: p, Name: name, Start: step, End: step})
			held[p] = name
			inUse[name] = true
		}
		// A final collect of everything currently held is always valid.
		step++
		var names []int
		for name := range inUse {
			names = append(names, name)
		}
		tr.Append(Event{Kind: CollectEvent, Process: 99, Names: names, Start: step, End: step + 1})
		return len(Check(tr)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: swapping the holder of one Get in an otherwise valid trace to
// collide with a concurrently held name is always caught.
func TestQuickUniquenessAlwaysCaught(t *testing.T) {
	prop := func(nameRaw uint8) bool {
		name := int(nameRaw % 8)
		tr := Trace{NamespaceSize: 8}
		tr.Append(Event{Kind: GetEvent, Process: 0, Name: name, End: 1})
		tr.Append(Event{Kind: GetEvent, Process: 1, Name: name, End: 2})
		return countRule(Check(tr), RuleUniqueness) == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
