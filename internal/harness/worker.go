package harness

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/workload"
)

// worker is the per-goroutine state of one benchmark thread. It owns one
// handle per resident slot (registered during pre-fill and held until the end
// of the run) and one handle per churn slot (registered and released every
// round of the main loop).
//
// In lease mode (leaser non-nil) the worker holds leases instead of handles:
// resident slots become infinite leases, churn slots become TTL-bounded
// leases released — or, for the configured crash fraction, abandoned to the
// expirer — every round.
type worker struct {
	id           int
	array        activity.Array
	plan         workload.Plan
	collectEvery int

	residentHandles []activity.Handle
	churnHandles    []activity.Handle

	leaser       *lease.Manager
	leaseTTL     time.Duration
	leaseTick    time.Duration
	crashPercent int
	leaseRNG     rng.Source
	churnLeases  []lease.Lease
	abandoned    uint64

	collectBuf []int
	collects   uint64
	rounds     uint64
}

// newWorker allocates the handles (or lease slots) for one thread.
func newWorker(id int, arr activity.Array, plan workload.Plan, collectEvery int) *worker {
	w := &worker{
		id:           id,
		array:        arr,
		plan:         plan,
		collectEvery: collectEvery,
	}
	w.residentHandles = make([]activity.Handle, plan.Resident)
	for i := range w.residentHandles {
		w.residentHandles[i] = arr.Handle()
	}
	w.churnHandles = make([]activity.Handle, plan.Churn)
	for i := range w.churnHandles {
		w.churnHandles[i] = arr.Handle()
	}
	w.collectBuf = make([]int, 0, arr.Size())
	return w
}

// newLeaseWorker builds a worker that churns through a lease manager instead
// of raw handles.
func newLeaseWorker(id int, mgr *lease.Manager, plan workload.Plan, collectEvery int, ttl, tick time.Duration, crashPercent int, seed uint64) *worker {
	return &worker{
		id:           id,
		array:        mgr.Array(),
		plan:         plan,
		collectEvery: collectEvery,
		leaser:       mgr,
		leaseTTL:     ttl,
		leaseTick:    tick,
		crashPercent: crashPercent,
		leaseRNG:     rng.New(rng.KindSplitMix, seed+uint64(id)+1),
		churnLeases:  make([]lease.Lease, plan.Churn),
		collectBuf:   make([]int, 0, mgr.Size()),
	}
}

// prefill registers every resident slot. The names stay held for the whole
// run, keeping the array at the configured load. Lease-mode residents hold
// infinite leases, so only churn slots ever expire.
func (w *worker) prefill() error {
	if w.leaser != nil {
		for i := 0; i < w.plan.Resident; i++ {
			if _, err := w.acquireLease(0); err != nil {
				return fmt.Errorf("pre-fill lease %d: %w", i, err)
			}
		}
		return nil
	}
	for i, h := range w.residentHandles {
		if _, err := h.Get(); err != nil {
			return fmt.Errorf("pre-fill registration %d: %w", i, err)
		}
	}
	return nil
}

// acquireLease acquires one lease, absorbing transient full-namespace
// conditions: abandoned leases hold slots until the expirer reaps them, so
// ErrFull under a crashy workload means "wait one tick", not failure.
func (w *worker) acquireLease(ttl time.Duration) (lease.Lease, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		l, err := w.leaser.Acquire(ttl)
		if err == nil {
			return l, nil
		}
		if !errors.Is(err, activity.ErrFull) || time.Now().After(deadline) {
			return lease.Lease{}, err
		}
		time.Sleep(w.leaseTick)
	}
}

// round performs one main-loop round: register every churn slot, optionally
// collect, then release every churn slot. This is the paper's emulation of
// N/n registrations per thread before deregistering. Lease mode follows the
// same round structure, except that a crash fraction of the churn leases is
// abandoned instead of released.
func (w *worker) round() error {
	if w.leaser != nil {
		return w.leaseRound()
	}
	for i, h := range w.churnHandles {
		if _, err := h.Get(); err != nil {
			return fmt.Errorf("churn registration %d: %w", i, err)
		}
	}
	w.rounds++
	if w.collectEvery > 0 && w.rounds%uint64(w.collectEvery) == 0 {
		w.collectBuf = w.array.Collect(w.collectBuf[:0])
		w.collects++
	}
	for i, h := range w.churnHandles {
		if err := h.Free(); err != nil {
			return fmt.Errorf("churn release %d: %w", i, err)
		}
	}
	return nil
}

// leaseRound is round in lease mode.
func (w *worker) leaseRound() error {
	for i := range w.churnLeases {
		l, err := w.acquireLease(w.leaseTTL)
		if err != nil {
			return fmt.Errorf("churn lease %d: %w", i, err)
		}
		w.churnLeases[i] = l
	}
	w.rounds++
	if w.collectEvery > 0 && w.rounds%uint64(w.collectEvery) == 0 {
		w.collectBuf = w.leaser.Collect(w.collectBuf[:0])
		w.collects++
	}
	for i, l := range w.churnLeases {
		if w.crashPercent > 0 && w.leaseRNG.Intn(100) < w.crashPercent {
			// Crash: walk away and leave the slot to the expirer.
			w.abandoned++
			continue
		}
		if err := w.leaser.Release(l.Name, l.Token); err != nil {
			return fmt.Errorf("churn lease release %d: %w", i, err)
		}
	}
	return nil
}

// runRounds executes a fixed number of rounds.
func (w *worker) runRounds(rounds int) error {
	for r := 0; r < rounds; r++ {
		if err := w.round(); err != nil {
			return err
		}
	}
	return nil
}

// runUntil executes rounds until the stop flag is set.
func (w *worker) runUntil(stop *atomic.Bool) error {
	for !stop.Load() {
		if err := w.round(); err != nil {
			return err
		}
	}
	return nil
}

// churnStats merges the statistics of every churn handle.
func (w *worker) churnStats() activity.ProbeStats {
	var merged activity.ProbeStats
	for _, h := range w.churnHandles {
		merged.Merge(h.Stats())
	}
	return merged
}

// prefillStats merges the statistics of every resident handle.
func (w *worker) prefillStats() activity.ProbeStats {
	var merged activity.ProbeStats
	for _, h := range w.residentHandles {
		merged.Merge(h.Stats())
	}
	return merged
}
