package harness

import (
	"fmt"
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/workload"
)

// worker is the per-goroutine state of one benchmark thread. It owns one
// handle per resident slot (registered during pre-fill and held until the end
// of the run) and one handle per churn slot (registered and released every
// round of the main loop).
type worker struct {
	id           int
	array        activity.Array
	plan         workload.Plan
	collectEvery int

	residentHandles []activity.Handle
	churnHandles    []activity.Handle

	collectBuf []int
	collects   uint64
	rounds     uint64
}

// newWorker allocates the handles for one thread.
func newWorker(id int, arr activity.Array, plan workload.Plan, collectEvery int) *worker {
	w := &worker{
		id:           id,
		array:        arr,
		plan:         plan,
		collectEvery: collectEvery,
	}
	w.residentHandles = make([]activity.Handle, plan.Resident)
	for i := range w.residentHandles {
		w.residentHandles[i] = arr.Handle()
	}
	w.churnHandles = make([]activity.Handle, plan.Churn)
	for i := range w.churnHandles {
		w.churnHandles[i] = arr.Handle()
	}
	w.collectBuf = make([]int, 0, arr.Size())
	return w
}

// prefill registers every resident handle. The names stay held for the whole
// run, keeping the array at the configured load.
func (w *worker) prefill() error {
	for i, h := range w.residentHandles {
		if _, err := h.Get(); err != nil {
			return fmt.Errorf("pre-fill registration %d: %w", i, err)
		}
	}
	return nil
}

// round performs one main-loop round: register every churn slot, optionally
// collect, then release every churn slot. This is the paper's emulation of
// N/n registrations per thread before deregistering.
func (w *worker) round() error {
	for i, h := range w.churnHandles {
		if _, err := h.Get(); err != nil {
			return fmt.Errorf("churn registration %d: %w", i, err)
		}
	}
	w.rounds++
	if w.collectEvery > 0 && w.rounds%uint64(w.collectEvery) == 0 {
		w.collectBuf = w.array.Collect(w.collectBuf[:0])
		w.collects++
	}
	for i, h := range w.churnHandles {
		if err := h.Free(); err != nil {
			return fmt.Errorf("churn release %d: %w", i, err)
		}
	}
	return nil
}

// runRounds executes a fixed number of rounds.
func (w *worker) runRounds(rounds int) error {
	for r := 0; r < rounds; r++ {
		if err := w.round(); err != nil {
			return err
		}
	}
	return nil
}

// runUntil executes rounds until the stop flag is set.
func (w *worker) runUntil(stop *atomic.Bool) error {
	for !stop.Load() {
		if err := w.round(); err != nil {
			return err
		}
	}
	return nil
}

// churnStats merges the statistics of every churn handle.
func (w *worker) churnStats() activity.ProbeStats {
	var merged activity.ProbeStats
	for _, h := range w.churnHandles {
		merged.Merge(h.Stats())
	}
	return merged
}

// prefillStats merges the statistics of every resident handle.
func (w *worker) prefillStats() activity.ProbeStats {
	var merged activity.ProbeStats
	for _, h := range w.residentHandles {
		merged.Merge(h.Stats())
	}
	return merged
}
