package harness

import (
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/tas"
	"github.com/levelarray/levelarray/internal/workload"
)

func baseConfig(algo registry.Algorithm, threads int) Config {
	return Config{
		Algorithm:       algo,
		Workload:        workload.Spec{Threads: threads, EmulatedN: threads * 20, PrefillPercent: 50},
		RoundsPerThread: 10,
		Seed:            42,
	}
}

func TestConfigValidation(t *testing.T) {
	invalid := []Config{
		{},                               // no algorithm
		{Algorithm: registry.LevelArray}, // zero threads
		{Algorithm: registry.LevelArray, Workload: workload.Spec{Threads: -1}}, // bad workload
		{Algorithm: registry.LevelArray, Workload: workload.Spec{Threads: 1}, RoundsPerThread: -1},
		{Algorithm: registry.LevelArray, Workload: workload.Spec{Threads: 1}, Duration: -time.Second},
		{Algorithm: registry.LevelArray, Workload: workload.Spec{Threads: 1}, CollectEvery: -1},
	}
	for i, cfg := range invalid {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunRoundsModeAllAlgorithms(t *testing.T) {
	for _, algo := range registry.All() {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			threads := 4
			if algo == registry.Deterministic {
				// The deterministic scan is quadratic in the emulated load;
				// keep its test configuration small.
				threads = 2
			}
			cfg := baseConfig(algo, threads)
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Algorithm != algo {
				t.Fatalf("result algorithm = %v, want %v", res.Algorithm, algo)
			}
			if res.Threads != threads {
				t.Fatalf("threads = %d, want %d", res.Threads, threads)
			}
			if res.Capacity != threads*20 {
				t.Fatalf("capacity = %d, want %d", res.Capacity, threads*20)
			}
			// Each thread churns half its 20 slots for 10 rounds: 10 Gets
			// and 10 Frees per slot.
			wantOps := uint64(threads * 10 * 10 * 2)
			if res.Ops != wantOps {
				t.Fatalf("ops = %d, want %d", res.Ops, wantOps)
			}
			if res.Stats.Ops != wantOps/2 || res.Stats.Frees != wantOps/2 {
				t.Fatalf("stats ops/frees = %d/%d, want %d each",
					res.Stats.Ops, res.Stats.Frees, wantOps/2)
			}
			if res.Stats.Mean() < 1 {
				t.Fatalf("mean probes %.3f below 1", res.Stats.Mean())
			}
			if res.WorstCase() < 1 || res.MeanWorstCase() < 1 {
				t.Fatal("worst-case statistics missing")
			}
			if len(res.PerThread) != threads {
				t.Fatalf("per-thread stats count %d, want %d", len(res.PerThread), threads)
			}
			if res.Duration <= 0 || res.Throughput() <= 0 {
				t.Fatalf("duration/throughput not recorded: %+v", res)
			}
			// Pre-fill is half the slots, registered once per slot.
			wantPrefill := uint64(threads * 10)
			if res.PrefillStats.Ops != wantPrefill {
				t.Fatalf("prefill ops = %d, want %d", res.PrefillStats.Ops, wantPrefill)
			}
		})
	}
}

func TestRunDurationMode(t *testing.T) {
	cfg := Config{
		Algorithm: registry.LevelArray,
		Workload:  workload.Spec{Threads: 4, EmulatedN: 40, PrefillPercent: 25},
		Duration:  50 * time.Millisecond,
		Seed:      7,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("duration mode completed no operations")
	}
	if res.Duration < cfg.Duration {
		t.Fatalf("run finished after %v, configured duration %v", res.Duration, cfg.Duration)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestRunWithCollects(t *testing.T) {
	cfg := baseConfig(registry.LevelArray, 3)
	cfg.CollectEvery = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 3 threads × 10 rounds, collecting every 2nd round.
	if res.Collects != 3*5 {
		t.Fatalf("collects = %d, want 15", res.Collects)
	}
}

func TestRunSingleThreadNoEmulation(t *testing.T) {
	cfg := Config{
		Algorithm:       registry.LevelArray,
		Workload:        workload.Spec{Threads: 1},
		RoundsPerThread: 100,
		Seed:            3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ops != 200 {
		t.Fatalf("ops = %d, want 200", res.Ops)
	}
	// A single uncontended thread on an empty array should almost always
	// register on its first probe.
	if res.Stats.Mean() > 1.5 {
		t.Fatalf("uncontended mean probes %.3f, want close to 1", res.Stats.Mean())
	}
}

func TestRunDeterministicIsMoreExpensive(t *testing.T) {
	la, err := Run(baseConfig(registry.LevelArray, 2))
	if err != nil {
		t.Fatalf("LevelArray run: %v", err)
	}
	det, err := Run(baseConfig(registry.Deterministic, 2))
	if err != nil {
		t.Fatalf("Deterministic run: %v", err)
	}
	if det.Stats.Mean() <= la.Stats.Mean() {
		t.Fatalf("deterministic mean %.2f not above LevelArray mean %.2f",
			det.Stats.Mean(), la.Stats.Mean())
	}
}

func TestRunPaperShapeAtModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale comparison skipped in short mode")
	}
	// A scaled-down Figure 2 point: LevelArray's worst case must stay small
	// (the paper reports at most 6 probes) while Random's worst case is
	// substantially larger.
	mk := func(algo registry.Algorithm) Config {
		return Config{
			Algorithm:       algo,
			Workload:        workload.Spec{Threads: 8, EmulatedN: 800, PrefillPercent: 50},
			RoundsPerThread: 30,
			Seed:            2024,
		}
	}
	la, err := Run(mk(registry.LevelArray))
	if err != nil {
		t.Fatalf("LevelArray run: %v", err)
	}
	random, err := Run(mk(registry.Random))
	if err != nil {
		t.Fatalf("Random run: %v", err)
	}
	if la.Stats.Mean() >= 3 {
		t.Fatalf("LevelArray mean %.2f probes, expected below 3", la.Stats.Mean())
	}
	if la.WorstCase() > 12 {
		t.Fatalf("LevelArray worst case %d probes, expected at most 12", la.WorstCase())
	}
	if random.WorstCase() <= la.WorstCase() {
		t.Fatalf("Random worst case %d not above LevelArray worst case %d",
			random.WorstCase(), la.WorstCase())
	}
	if la.Stats.BackupOps != 0 {
		t.Fatalf("LevelArray used the backup %d times at 50%% load", la.Stats.BackupOps)
	}
}

func TestRunSharded(t *testing.T) {
	res, err := Run(Config{
		Algorithm: registry.LevelArray,
		Workload:  workload.Spec{Threads: 4, EmulatedN: 64, PrefillPercent: 50},
		Shards:    4,
		Steal:     shard.StealOccupancy,

		RoundsPerThread: 50,
		Seed:            9,
	})
	if err != nil {
		t.Fatalf("Run sharded: %v", err)
	}
	if len(res.ShardStats) != 4 {
		t.Fatalf("ShardStats has %d entries, want 4", len(res.ShardStats))
	}
	if res.Stats.Ops == 0 {
		t.Fatal("sharded run recorded no operations")
	}
	// The workload stays within the aggregate capacity, so no Get may fail.
	if res.Stats.FailedOps != 0 {
		t.Fatalf("sharded run recorded %d failed Gets", res.Stats.FailedOps)
	}
	// After the run only the pre-fill residents (50% of N = 32) remain
	// registered, spread across the shards.
	total := 0
	for _, s := range res.ShardStats {
		total += s.Occupancy
	}
	if total != 32 {
		t.Fatalf("residual occupancy %d across shards, want the 32 residents", total)
	}

	// Invalid shard counts are rejected up-front.
	if _, err := Run(Config{
		Algorithm:       registry.LevelArray,
		Workload:        workload.Spec{Threads: 2},
		Shards:          6,
		RoundsPerThread: 1,
	}); err == nil {
		t.Fatal("Run accepted non-power-of-two shard count")
	}
}

// TestRunWordProbe runs the harness with the word-claim probe mode, plain
// and sharded, checking the knob reaches the array (same workload contract
// as the slot-mode runs: no failures within capacity).
func TestRunWordProbe(t *testing.T) {
	cfg := baseConfig(registry.LevelArray, 4)
	cfg.Probe = core.ProbeWord
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run word probe: %v", err)
	}
	if res.Stats.Ops == 0 || res.Stats.FailedOps != 0 {
		t.Fatalf("word-probe run stats: %+v", res.Stats)
	}

	cfg.Shards = 2
	if res, err = Run(cfg); err != nil {
		t.Fatalf("Run sharded word probe: %v", err)
	}
	if res.Stats.FailedOps != 0 {
		t.Fatalf("sharded word-probe run recorded %d failed Gets", res.Stats.FailedOps)
	}

	// Incompatible substrate combinations surface as construction errors.
	bad := baseConfig(registry.LevelArray, 2)
	bad.Probe = core.ProbeWord
	bad.Space = tas.KindPadded
	if _, err := Run(bad); err == nil {
		t.Fatal("Run accepted Probe word on the padded substrate")
	}
}

func TestRunLeaseMode(t *testing.T) {
	cfg := baseConfig(registry.LevelArray, 4)
	cfg.LeaseTTL = 20 * time.Millisecond
	cfg.LeaseTick = 2 * time.Millisecond
	cfg.LeaseCrashPercent = 20
	cfg.RoundsPerThread = 25
	result, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if result.LeaseStats == nil {
		t.Fatal("lease mode must report LeaseStats")
	}
	ls := result.LeaseStats
	if result.Abandoned == 0 {
		t.Fatal("crash fraction produced no abandoned leases")
	}
	if ls.Expirations < result.Abandoned {
		t.Fatalf("expirations %d < abandoned %d: expirer did not drain", ls.Expirations, result.Abandoned)
	}
	if ls.Acquires != ls.Releases+ls.Expirations+uint64(ls.Active) {
		t.Fatalf("lease ledger mismatch: %+v", ls)
	}
	// Residents (infinite leases) must survive the whole run.
	residents := 0
	for _, plan := range mustPlans(t, cfg.Workload) {
		residents += plan.Resident
	}
	if int(ls.Active) != residents {
		t.Fatalf("Active = %d, want the %d residents", ls.Active, residents)
	}
	if result.Ops == 0 || result.Stats.Ops == 0 {
		t.Fatal("lease mode must surface probe statistics from the manager's handles")
	}
}

func TestRunLeaseModeSharded(t *testing.T) {
	cfg := baseConfig(registry.Sharded, 4)
	cfg.Shards = 4
	cfg.LeaseTTL = 20 * time.Millisecond
	cfg.LeaseTick = 2 * time.Millisecond
	cfg.LeaseCrashPercent = 10
	cfg.RoundsPerThread = 10
	result, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if result.LeaseStats == nil || len(result.ShardStats) != 4 {
		t.Fatalf("want lease stats and 4 shard stats, got %+v / %d shards", result.LeaseStats, len(result.ShardStats))
	}
}

func TestLeaseConfigValidation(t *testing.T) {
	cfg := baseConfig(registry.LevelArray, 1)
	cfg.LeaseCrashPercent = 10 // without a TTL
	if _, err := Run(cfg); err == nil {
		t.Error("crash percent without lease TTL accepted")
	}
	cfg = baseConfig(registry.LevelArray, 1)
	cfg.LeaseTTL = time.Second
	cfg.LeaseCrashPercent = 101
	if _, err := Run(cfg); err == nil {
		t.Error("crash percent above 100 accepted")
	}
}

func mustPlans(t *testing.T, spec workload.Spec) []workload.Plan {
	t.Helper()
	plans, err := spec.Plans()
	if err != nil {
		t.Fatal(err)
	}
	return plans
}
