// Package harness runs the paper's concurrent benchmarks (Section 6) with
// real goroutines: n worker threads repeatedly register and deregister from a
// shared activity array while the harness records per-operation probe counts,
// throughput, and worst-case behaviour.
//
// The harness reproduces the paper's methodology:
//
//   - the workload (threads, emulated concurrency N, pre-fill percentage)
//     comes from internal/workload;
//   - the algorithm under test is selected through internal/registry, so the
//     same run configuration drives LevelArray, Random, LinearProbing and
//     Deterministic;
//   - probe counts are the primary metric (they are independent of the Go
//     scheduler); wall-clock throughput is reported as a secondary metric.
//
// Runs terminate either after a fixed number of churn rounds per thread
// (deterministic, used by tests) or after a wall-clock duration (used by the
// throughput experiments).
package harness

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/tas"
	"github.com/levelarray/levelarray/internal/workload"
)

// Config parameterizes one benchmark run.
type Config struct {
	// Algorithm selects the activity-array implementation under test.
	Algorithm registry.Algorithm

	// Workload describes threads, emulated concurrency and pre-fill.
	Workload workload.Spec

	// SizeFactor is L/N, the array size relative to the maximum number of
	// registered slots. Zero selects 2 (the paper's default L = 2N).
	SizeFactor float64

	// RoundsPerThread terminates the run after each thread has executed this
	// many churn rounds (a round registers and then releases every churn
	// slot of the thread). Zero selects duration-based termination.
	RoundsPerThread int

	// Duration terminates the run after roughly this much wall-clock time
	// when RoundsPerThread is zero. Zero defaults to one second.
	Duration time.Duration

	// CollectEvery makes each thread perform one Collect after every
	// CollectEvery-th churn round (0 disables collects).
	CollectEvery int

	// RNG selects the generator family used by the randomized algorithms.
	RNG rng.Kind

	// Seed is the base seed; every run with the same configuration and seed
	// performs the same probe choices in round-based mode.
	Seed uint64

	// Space selects the slot substrate layout. The zero value is the
	// word-packed bitmap.
	Space tas.Kind

	// Probe selects the LevelArray's write-side probing strategy (per-slot
	// test-and-set vs word claims). Ignored by the comparator algorithms.
	Probe core.ProbeMode

	// CompactSlots is a deprecated alias for Space: tas.KindCompact, only
	// honored when Space is left at its zero value.
	CompactSlots bool

	// Shards, when above 1, runs the algorithm in a sharded composition of
	// that many independent arrays (must be a power of two). Zero and 1 run
	// the plain single array, except for the Sharded algorithm, where zero
	// selects the default shard count.
	Shards int

	// Steal selects the sharded composition's steal policy. Ignored when
	// unsharded.
	Steal shard.StealKind

	// LeaseTTL, when positive, runs the workload through a lease.Manager
	// wrapped around the array: resident slots hold infinite leases, churn
	// slots hold LeaseTTL-bounded leases, and a background expirer reclaims
	// abandoned slots. Probe statistics then come from the manager's pooled
	// handles (pre-fill included) instead of per-thread handles.
	LeaseTTL time.Duration

	// LeaseCrashPercent is the percentage of churn leases abandoned without
	// release in lease mode, exercising the expirer under load. Requires
	// LeaseTTL.
	LeaseCrashPercent int

	// LeaseTick overrides the lease expirer tick interval in lease mode.
	// Zero selects 10ms.
	LeaseTick time.Duration
}

// validate reports the first problem with the configuration.
func (c Config) validate() error {
	if c.Algorithm == 0 {
		return errors.New("harness: algorithm must be specified")
	}
	if err := c.Workload.Validate(); err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	if c.RoundsPerThread < 0 {
		return fmt.Errorf("harness: rounds per thread %d must not be negative", c.RoundsPerThread)
	}
	if c.Duration < 0 {
		return fmt.Errorf("harness: duration %v must not be negative", c.Duration)
	}
	if c.CollectEvery < 0 {
		return fmt.Errorf("harness: collect-every %d must not be negative", c.CollectEvery)
	}
	if c.Shards < 0 {
		return fmt.Errorf("harness: shard count %d must not be negative", c.Shards)
	}
	if c.Shards > 1 && c.Shards&(c.Shards-1) != 0 {
		return fmt.Errorf("harness: shard count %d must be a power of two", c.Shards)
	}
	if c.LeaseTTL < 0 {
		return fmt.Errorf("harness: lease TTL %v must not be negative", c.LeaseTTL)
	}
	if c.LeaseCrashPercent < 0 || c.LeaseCrashPercent > 100 {
		return fmt.Errorf("harness: lease crash percent %d outside 0..100", c.LeaseCrashPercent)
	}
	if c.LeaseCrashPercent > 0 && c.LeaseTTL == 0 {
		return fmt.Errorf("harness: lease crash percent requires a lease TTL")
	}
	return nil
}

// Result is the outcome of one benchmark run.
type Result struct {
	// Algorithm is the algorithm that was run.
	Algorithm registry.Algorithm
	// Threads is the number of worker goroutines.
	Threads int
	// Capacity is N, the contention bound the array was built for.
	Capacity int
	// ArraySize is the namespace size of the array under test.
	ArraySize int
	// Duration is the wall-clock time of the main loop.
	Duration time.Duration
	// Ops is the number of completed Get and Free operations in the main
	// loop (pre-fill operations are excluded, as in the paper).
	Ops uint64
	// Collects is the number of Collect scans performed.
	Collects uint64
	// Stats aggregates the probe statistics of every churn Get.
	Stats activity.ProbeStats
	// PerThread holds each thread's churn statistics.
	PerThread []activity.ProbeStats
	// PrefillStats aggregates the probe statistics of the pre-fill phase.
	PrefillStats activity.ProbeStats
	// ShardStats holds the per-shard breakdown (occupancy, steals, home-full
	// events) when the array under test was sharded; nil otherwise.
	ShardStats []shard.ShardStats
	// LeaseStats holds the lease manager's counters (active leases,
	// expirations, renew races) when the run used lease mode; nil otherwise.
	LeaseStats *lease.Stats
	// Abandoned is the number of churn leases deliberately abandoned to the
	// expirer in lease mode.
	Abandoned uint64
}

// Throughput returns completed operations per second.
func (r Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// WorstCase returns the largest number of probes any single Get performed.
func (r Result) WorstCase() uint64 { return r.Stats.MaxProbes }

// MeanWorstCase returns the per-thread worst case averaged over threads,
// which is how the paper reports Figure 2's worst-case panel ("to decrease
// the impact of outlier executions, the worst-case shown is averaged over all
// processes").
func (r Result) MeanWorstCase() float64 {
	if len(r.PerThread) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.PerThread {
		sum += float64(s.MaxProbes)
	}
	return sum / float64(len(r.PerThread))
}

// Run executes one benchmark run.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.SizeFactor == 0 {
		cfg.SizeFactor = 2
	}
	if cfg.RoundsPerThread == 0 && cfg.Duration == 0 {
		cfg.Duration = time.Second
	}

	capacity := cfg.Workload.Capacity()
	arr, err := registry.New(cfg.Algorithm, registry.Options{
		Capacity:     capacity,
		SizeFactor:   cfg.SizeFactor,
		RNG:          cfg.RNG,
		Seed:         cfg.Seed,
		Space:        cfg.Space,
		Probe:        cfg.Probe,
		CompactSlots: cfg.CompactSlots,
		Shards:       cfg.Shards,
		Steal:        cfg.Steal,
	})
	if err != nil {
		return Result{}, fmt.Errorf("harness: building array: %w", err)
	}

	plans, err := cfg.Workload.Plans()
	if err != nil {
		return Result{}, fmt.Errorf("harness: %w", err)
	}

	var mgr *lease.Manager
	leaseTick := cfg.LeaseTick
	if leaseTick <= 0 {
		leaseTick = 10 * time.Millisecond
	}
	if cfg.LeaseTTL > 0 {
		if mgr, err = lease.NewManager(arr, lease.Config{TickInterval: leaseTick}); err != nil {
			return Result{}, fmt.Errorf("harness: building lease manager: %w", err)
		}
		mgr.Start()
	}

	var (
		start     = make(chan struct{})
		stop      atomic.Bool
		readyWG   sync.WaitGroup
		doneWG    sync.WaitGroup
		workers   = make([]*worker, len(plans))
		workerErr = make([]error, len(plans))
	)
	for i, plan := range plans {
		if mgr != nil {
			workers[i] = newLeaseWorker(i, mgr, plan, cfg.CollectEvery, cfg.LeaseTTL, leaseTick, cfg.LeaseCrashPercent, cfg.Seed)
		} else {
			workers[i] = newWorker(i, arr, plan, cfg.CollectEvery)
		}
	}

	readyWG.Add(len(workers))
	doneWG.Add(len(workers))
	for i, w := range workers {
		i, w := i, w
		go func() {
			defer doneWG.Done()
			// Pre-fill before declaring readiness so the main loop starts on
			// an array already at the target load.
			if err := w.prefill(); err != nil {
				workerErr[i] = err
				readyWG.Done()
				return
			}
			readyWG.Done()
			<-start
			if cfg.RoundsPerThread > 0 {
				workerErr[i] = w.runRounds(cfg.RoundsPerThread)
				return
			}
			workerErr[i] = w.runUntil(&stop)
		}()
	}

	readyWG.Wait()
	began := time.Now()
	close(start)
	if cfg.RoundsPerThread == 0 {
		timer := time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
		defer timer.Stop()
	}
	doneWG.Wait()
	elapsed := time.Since(began)

	result := Result{
		Algorithm: cfg.Algorithm,
		Threads:   cfg.Workload.Threads,
		Capacity:  capacity,
		ArraySize: arr.Size(),
		Duration:  elapsed,
		PerThread: make([]activity.ProbeStats, len(workers)),
	}
	for i, w := range workers {
		if workerErr[i] != nil {
			if mgr != nil {
				mgr.Close()
			}
			return Result{}, fmt.Errorf("harness: worker %d: %w", i, workerErr[i])
		}
		stats := w.churnStats()
		result.PerThread[i] = stats
		result.Stats.Merge(stats)
		result.PrefillStats.Merge(w.prefillStats())
		result.Collects += w.collects
		result.Abandoned += w.abandoned
	}
	if mgr != nil {
		// Drain: once the abandoned churn leases have expired, only the
		// resident (infinite) leases remain active.
		residents := 0
		for _, plan := range plans {
			residents += plan.Resident
		}
		drainDeadline := time.Now().Add(10 * time.Second)
		for mgr.Active() > residents && time.Now().Before(drainDeadline) {
			time.Sleep(leaseTick)
		}
		leaseStats := mgr.Stats()
		result.LeaseStats = &leaseStats
		mgr.Close()
		// Per-thread handle statistics do not exist in lease mode: every Get
		// ran through the manager's pooled handles, pre-fill included.
		result.Stats = mgr.ProbeStats()
	}
	result.Ops = result.Stats.Ops + result.Stats.Frees
	if sharded, ok := arr.(*shard.Sharded); ok {
		result.ShardStats = sharded.ShardStats()
	}
	return result, nil
}
