package wire

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/levelarray/levelarray/internal/trace"
)

// Backend is the semantic half of a wire server: it receives one decoded
// request and fills in the response. Implementations must be safe for
// concurrent calls (one goroutine per connection) and must not retain req or
// resp past the call — both are reused per connection.
type Backend interface {
	ServeWire(req *Request, resp *Response)
}

// Server accepts wire connections and drives one serve loop per connection.
type Server struct {
	backend Backend
	tracer  *trace.Recorder

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Scrape-friendly counters (see Counters); maintained off the mutex.
	accepted      atomic.Uint64
	framesRead    atomic.Uint64
	framesWritten atomic.Uint64
	flushes       atomic.Uint64
	decodeErrors  atomic.Uint64
}

// ServerCounters is a point-in-time snapshot of a Server's transport
// counters: the server-side mirror of the client's Counters, and the source
// for the la_wire_server_* metric families.
type ServerCounters struct {
	// ConnsAccepted counts accepted connections over the server's lifetime.
	ConnsAccepted uint64
	// FramesRead and FramesWritten count whole frames, requests in and
	// responses out.
	FramesRead    uint64
	FramesWritten uint64
	// Flushes counts syscall-level writes; FramesWritten/Flushes is the
	// server-side write-combining ratio.
	Flushes uint64
	// DecodeErrors counts malformed payloads answered with 400 (framing
	// errors close the connection and are not counted here).
	DecodeErrors uint64
}

// Counters snapshots the server's transport counters.
func (s *Server) Counters() ServerCounters {
	return ServerCounters{
		ConnsAccepted: s.accepted.Load(),
		FramesRead:    s.framesRead.Load(),
		FramesWritten: s.framesWritten.Load(),
		Flushes:       s.flushes.Load(),
		DecodeErrors:  s.decodeErrors.Load(),
	}
}

// NewServer returns a server that answers requests via backend.
func NewServer(backend Backend) *Server {
	return &Server{backend: backend, conns: make(map[net.Conn]struct{})}
}

// SetTracer installs the node's flight recorder: every frame served while
// the recorder is enabled opens a span (keyed by the frame's request ID)
// that the backend attributes phase time into via Request.Span, and the
// server itself attributes response encoding and flush. Call before Serve.
func (s *Server) SetTracer(r *trace.Recorder) { s.tracer = r }

// Serve accepts connections on ln until the listener fails or the server is
// closed. It blocks; run it in its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepted.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live connection and waits for the
// per-connection loops to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// serveConn runs the per-connection loop: read a frame, decode, dispatch,
// encode, and flush only when no further request bytes are already buffered —
// so a pipelining client gets its responses coalesced into few writes.
// Framing errors (bad magic/version, oversize, short read) are unrecoverable
// and close the connection; semantic errors (unknown opcode, malformed
// payload) answer 400 and keep the stream alive, since the frame boundary
// itself was sound.
func (s *Server) serveConn(c net.Conn) {
	defer c.Close()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	r := bufio.NewReaderSize(c, 64<<10)
	w := bufio.NewWriterSize(c, 64<<10)

	var (
		hdr     [HeaderLen]byte
		payload []byte
		req     Request
		resp    Response
		out     []byte
	)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		h, err := ParseHeader(hdr[:])
		if err != nil {
			return // cannot resynchronize a broken frame stream
		}
		if int(h.Len) > cap(payload) {
			payload = make([]byte, h.Len)
		}
		payload = payload[:h.Len]
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}

		s.framesRead.Add(1)
		resp.Reset()
		var sp *trace.Op
		if err := DecodeRequest(h, payload, &req); err != nil {
			s.decodeErrors.Add(1)
			resp.Status = StatusBadRequest
			resp.Code = CodeBadRequest
		} else {
			if sp = s.tracer.Begin(req.Op.String(), RIDString(req.ID)); sp != nil && req.Trace {
				sp.Force()
			}
			req.Span = sp
			s.backend.ServeWire(&req, &resp)
		}

		var mark time.Time
		if sp != nil {
			mark = time.Now()
		}
		out = AppendResponse(out[:0], h.Op, h.ID, &resp)
		if sp != nil {
			sp.Phase(trace.PhaseWireEncode, time.Since(mark))
		}
		if _, err := w.Write(out); err != nil {
			return
		}
		s.framesWritten.Add(1)
		// Flush only when the read side has gone quiet: if more request
		// bytes are already buffered, the client is pipelining and will
		// happily wait one more turn for a combined flush.
		if r.Buffered() == 0 {
			if sp != nil {
				mark = time.Now()
			}
			if err := w.Flush(); err != nil {
				return
			}
			s.flushes.Add(1)
			if sp != nil {
				sp.Phase(trace.PhaseFlush, time.Since(mark))
			}
		}
		if sp != nil {
			errCode := ""
			if resp.Status != StatusOK {
				errCode = resp.Code.String()
			}
			sp.Finish(errCode)
		}
	}
}
