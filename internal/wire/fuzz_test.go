package wire

import (
	"bytes"
	"errors"
	"testing"
)

// decodeErrOK reports whether err is one of the package's typed decode
// errors (possibly wrapped). The frame decoder's contract is that malformed
// input maps to exactly this vocabulary — never a panic, never an ad-hoc
// error a caller can't switch on.
func decodeErrOK(err error) bool {
	for _, typed := range []error{
		ErrBadMagic, ErrBadVersion, ErrOversizedFrame,
		ErrTruncatedFrame, ErrBadPayload, ErrBatchTooLarge,
	} {
		if errors.Is(err, typed) {
			return true
		}
	}
	return false
}

// FuzzDecodeFrame feeds arbitrary bytes through the full decode surface:
// header parse, then request and response decode under that header. Any
// input must either decode cleanly or fail with a typed error; decoded
// requests must survive a re-encode/re-decode round trip unchanged.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with one valid frame per opcode, both directions.
	reqs := []Request{
		{Op: OpPing, ID: 1},
		{Op: OpAcquire, ID: 2, Epoch: 3, TTLMillis: 1000},
		{Op: OpRenew, ID: 4, TTLMillis: 100, Items: []Ref{{Name: 7, Token: 8}}},
		{Op: OpRelease, ID: 5, Items: []Ref{{Name: 7, Token: 8}}},
		{Op: OpAcquireN, ID: 6, TTLMillis: 50, N: 16},
		{Op: OpReleaseN, ID: 7, Items: []Ref{{Name: 1, Token: 2}, {Name: 3, Token: 4}}},
		{Op: OpRenewSession, ID: 8, TTLMillis: 200, Items: []Ref{{Name: 1, Token: 2}}},
		{Op: OpCollect, ID: 9},
		{Op: OpStats, ID: 10},
		{Op: OpLeases, ID: 11, Start: 5, Limit: 10},
		{Op: OpMembers, ID: 12},
	}
	for i := range reqs {
		f.Add(AppendRequest(nil, &reqs[i]))
	}
	grant := Grant{Name: 1, Token: 2, DeadlineUnixMilli: 3, NodeID: 4, Partition: 5, Epoch: 6}
	resps := []struct {
		op   Opcode
		resp Response
	}{
		{OpAcquire, Response{Status: StatusOK, Grants: []Grant{grant}}},
		{OpAcquireN, Response{Status: StatusOK, Grants: []Grant{grant, grant}}},
		{OpRenewSession, Response{Status: StatusOK, Items: []ItemResult{{Status: StatusOK, DeadlineUnixMilli: 9}}}},
		{OpStats, Response{Status: StatusOK, Blob: []byte(`{"active":1}`)}},
		{OpAcquire, Response{Status: StatusUnavailable, Code: CodeFull, RetryAfterMillis: 100}},
	}
	for _, tc := range resps {
		f.Add(AppendResponse(nil, tc.op, 1, &tc.resp))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderLen+64))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHeader(data)
		if err != nil {
			if !decodeErrOK(err) {
				t.Fatalf("ParseHeader returned untyped error: %v", err)
			}
			return
		}
		payload := data[HeaderLen:]
		if len(payload) > int(h.Len) {
			payload = payload[:h.Len]
		}

		var req Request
		if err := DecodeRequest(h, payload, &req); err != nil {
			if !decodeErrOK(err) {
				t.Fatalf("DecodeRequest returned untyped error: %v", err)
			}
		} else {
			// Round trip: what decoded must re-encode to a frame that decodes
			// to the same request (canonical-form check). AcquireN's count is
			// carried in the payload, not Items, so re-encode is exact.
			frame := AppendRequest(nil, &req)
			h2, err := ParseHeader(frame)
			if err != nil {
				t.Fatalf("re-encoded frame does not parse: %v", err)
			}
			var req2 Request
			if err := DecodeRequest(h2, frame[HeaderLen:], &req2); err != nil {
				t.Fatalf("re-encoded frame does not decode: %v", err)
			}
			if !reqEqual(req, req2) {
				t.Fatalf("round trip diverged: %+v vs %+v", req, req2)
			}
		}

		var resp Response
		if err := DecodeResponse(h, payload, &resp); err != nil && !decodeErrOK(err) {
			t.Fatalf("DecodeResponse returned untyped error: %v", err)
		}
	})
}
