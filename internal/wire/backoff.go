package wire

import (
	"sync/atomic"
	"time"
)

// Backoff returns the pause before retry number attempt (0-based): base
// doubled per attempt, capped at ceil, then jittered uniformly into
// [d/2, d] so the many clients that observe the same failure at the same
// instant (a member death, a dropped listener) spread their retries out
// instead of thundering back in lockstep. state threads a cheap splitmix64
// sequence; any *atomic.Uint64 owned by the caller works, and concurrent
// callers may share one.
func Backoff(base, ceil time.Duration, attempt int, state *atomic.Uint64) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < attempt && d < ceil; i++ {
		d <<= 1
	}
	if ceil > 0 && d > ceil {
		d = ceil
	}
	if d <= 1 {
		return d
	}
	z := state.Add(0x9E3779B97F4A7C15)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	half := uint64(d / 2)
	return time.Duration(half + z%(half+1))
}
