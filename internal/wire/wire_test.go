package wire

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Op:     OpRenewSession,
		Status: StatusStaleEpoch,
		Code:   CodeStaleEpoch,
		ID:     0xDEADBEEFCAFE,
		Epoch:  42,
		Len:    1234,
	}
	var buf [HeaderLen]byte
	PutHeader(buf[:], h)
	got, err := ParseHeader(buf[:])
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

func TestParseHeaderRejects(t *testing.T) {
	valid := make([]byte, HeaderLen)
	PutHeader(valid, Header{Op: OpPing})

	short := valid[:HeaderLen-1]
	if _, err := ParseHeader(short); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("short header: %v, want ErrTruncatedFrame", err)
	}

	badMagic := bytes.Clone(valid)
	badMagic[0] = 'x'
	if _, err := ParseHeader(badMagic); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v, want ErrBadMagic", err)
	}

	badVersion := bytes.Clone(valid)
	badVersion[2] = 99
	if _, err := ParseHeader(badVersion); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v, want ErrBadVersion", err)
	}

	oversized := bytes.Clone(valid)
	PutHeader(oversized, Header{Op: OpPing, Len: MaxPayload + 1})
	if _, err := ParseHeader(oversized); !errors.Is(err, ErrOversizedFrame) {
		t.Fatalf("oversized: %v, want ErrOversizedFrame", err)
	}
}

// reqEqual compares requests field by field, treating nil and empty Items as
// equal (decode reuses backing storage, so the slice header may differ).
func reqEqual(a, b Request) bool {
	if a.Op != b.Op || a.ID != b.ID || a.Epoch != b.Epoch ||
		a.TTLMillis != b.TTLMillis || a.N != b.N || a.Start != b.Start || a.Limit != b.Limit {
		return false
	}
	if len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			return false
		}
	}
	return bytes.Equal(a.Blob, b.Blob)
}

func requestCases() []Request {
	return []Request{
		{Op: OpPing, ID: 1},
		{Op: OpAcquire, ID: 2, Epoch: 7, TTLMillis: 1500},
		{Op: OpAcquire, ID: 3, TTLMillis: -1},
		{Op: OpRenew, ID: 4, Epoch: 9, TTLMillis: 250, Items: []Ref{{Name: 17, Token: 0xABCD}}},
		{Op: OpRelease, ID: 5, Items: []Ref{{Name: 3, Token: 99}}},
		{Op: OpAcquireN, ID: 6, TTLMillis: 100, N: 64},
		{Op: OpReleaseN, ID: 7, Items: []Ref{{Name: 1, Token: 2}, {Name: 3, Token: 4}}},
		{Op: OpRenewSession, ID: 8, TTLMillis: 500, Items: []Ref{{Name: 10, Token: 11}, {Name: 12, Token: 13}, {Name: 14, Token: 15}}},
		{Op: OpCollect, ID: 9},
		{Op: OpStats, ID: 10},
		{Op: OpLeases, ID: 11, Start: 100, Limit: 50},
		{Op: OpMembers, ID: 12},
		{Op: OpJoin, ID: 13, Blob: []byte(`{"addr":"http://127.0.0.1:7001"}`)},
		{Op: OpDrain, ID: 14, Blob: []byte(`{"id":2}`)},
		{Op: OpRebalance, ID: 15},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	var dec Request // reused across cases, as a server connection would
	for _, req := range requestCases() {
		frame := AppendRequest(nil, &req)
		h, err := ParseHeader(frame)
		if err != nil {
			t.Fatalf("%v: ParseHeader: %v", req.Op, err)
		}
		if int(h.Len) != len(frame)-HeaderLen {
			t.Fatalf("%v: header len %d, frame payload %d", req.Op, h.Len, len(frame)-HeaderLen)
		}
		if err := DecodeRequest(h, frame[HeaderLen:], &dec); err != nil {
			t.Fatalf("%v: DecodeRequest: %v", req.Op, err)
		}
		if !reqEqual(dec, req) {
			t.Fatalf("%v: round trip: got %+v, want %+v", req.Op, dec, req)
		}
	}
}

func TestDecodeRequestRejects(t *testing.T) {
	mk := func(op Opcode, payload []byte) (Header, []byte) {
		return Header{Op: op, Len: uint32(len(payload))}, payload
	}
	var req Request

	// Payload shorter than the header claims.
	h, _ := mk(OpAcquire, make([]byte, 8))
	if err := DecodeRequest(h, nil, &req); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("truncated payload: %v, want ErrTruncatedFrame", err)
	}

	// Wrong fixed lengths.
	for _, tc := range []struct {
		op  Opcode
		len int
	}{
		{OpPing, 1}, {OpAcquire, 7}, {OpRenew, 23}, {OpRelease, 15},
		{OpAcquireN, 11}, {OpLeases, 8}, {OpReleaseN, 3},
	} {
		h, p := mk(tc.op, make([]byte, tc.len))
		if err := DecodeRequest(h, p, &req); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("%v with %d bytes: %v, want ErrBadPayload", tc.op, tc.len, err)
		}
	}

	// Unknown opcode.
	h, p := mk(Opcode(200), nil)
	if err := DecodeRequest(h, p, &req); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("unknown opcode: %v, want ErrBadPayload", err)
	}

	// Batch bounds: zero and oversized counts.
	zero := AppendRequest(nil, &Request{Op: OpAcquireN, TTLMillis: 1, N: 0})
	h, err := ParseHeader(zero)
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	if err := DecodeRequest(h, zero[HeaderLen:], &req); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("AcquireN n=0: %v, want ErrBatchTooLarge", err)
	}
	big := AppendRequest(nil, &Request{Op: OpAcquireN, TTLMillis: 1, N: MaxBatch + 1})
	h, _ = ParseHeader(big)
	if err := DecodeRequest(h, big[HeaderLen:], &req); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("AcquireN n>max: %v, want ErrBatchTooLarge", err)
	}

	// A ref batch whose count disagrees with its item bytes.
	bad := AppendRequest(nil, &Request{Op: OpReleaseN, Items: []Ref{{Name: 1, Token: 2}}})
	bad = bad[:len(bad)-1] // drop one byte of the last ref
	h = Header{Op: OpReleaseN, Len: uint32(len(bad) - HeaderLen)}
	if err := DecodeRequest(h, bad[HeaderLen:], &req); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short ref batch: %v, want ErrBadPayload", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	grant := Grant{Name: 12, Token: 34, DeadlineUnixMilli: 56, NodeID: 1, Partition: 2, Epoch: 3}
	cases := []struct {
		op   Opcode
		resp Response
	}{
		{OpPing, Response{Status: StatusOK, Epoch: 5}},
		{OpAcquire, Response{Status: StatusOK, Epoch: 5, Grants: []Grant{grant}}},
		{OpRenew, Response{Status: StatusOK, Grants: []Grant{grant}}},
		{OpRelease, Response{Status: StatusOK}},
		{OpAcquireN, Response{Status: StatusOK, Grants: []Grant{grant, {Name: 77, Token: 88}}}},
		{OpReleaseN, Response{Status: StatusOK, Items: []ItemResult{{Status: StatusOK}, {Status: StatusConflict, Code: CodeStaleToken}}}},
		{OpRenewSession, Response{Status: StatusOK, Items: []ItemResult{{Status: StatusOK, DeadlineUnixMilli: 123456}, {Status: StatusConflict, Code: CodeNotLeased}}}},
		{OpStats, Response{Status: StatusOK, Blob: []byte(`{"active":3}`)}},
		{OpJoin, Response{Status: StatusOK, Blob: []byte(`{"id":3}`)}},
		{OpDrain, Response{Status: StatusOK, Blob: []byte(`{"adopted":true,"epoch":8}`)}},
		{OpRebalance, Response{Status: StatusOK, Blob: []byte(`{"moved":true}`)}},
		{OpJoin, Response{Status: StatusNotOwner, Code: CodeNotOwner, Epoch: 4}},
		{OpAcquire, Response{Status: StatusUnavailable, Code: CodeFull, Epoch: 2, RetryAfterMillis: 150}},
		{OpRenew, Response{Status: StatusConflict, Code: CodeStaleToken}},
		{OpAcquire, Response{Status: StatusStaleEpoch, Code: CodeStaleEpoch, Epoch: 9}},
	}
	var dec Response
	for _, tc := range cases {
		frame := AppendResponse(nil, tc.op, 42, &tc.resp)
		h, err := ParseHeader(frame)
		if err != nil {
			t.Fatalf("%v: ParseHeader: %v", tc.op, err)
		}
		if h.ID != 42 {
			t.Fatalf("%v: ID %d, want 42", tc.op, h.ID)
		}
		if err := DecodeResponse(h, frame[HeaderLen:], &dec); err != nil {
			t.Fatalf("%v: DecodeResponse: %v", tc.op, err)
		}
		if dec.Status != tc.resp.Status || dec.Code != tc.resp.Code || dec.Epoch != tc.resp.Epoch {
			t.Fatalf("%v: status/code/epoch: got %+v, want %+v", tc.op, dec, tc.resp)
		}
		if tc.resp.Status == StatusUnavailable && dec.RetryAfterMillis != tc.resp.RetryAfterMillis {
			t.Fatalf("%v: retry hint %d, want %d", tc.op, dec.RetryAfterMillis, tc.resp.RetryAfterMillis)
		}
		if tc.resp.Status != StatusOK {
			continue // error responses carry no body
		}
		if !reflect.DeepEqual(append([]Grant{}, dec.Grants...), append([]Grant{}, tc.resp.Grants...)) {
			t.Fatalf("%v: grants: got %+v, want %+v", tc.op, dec.Grants, tc.resp.Grants)
		}
		if !reflect.DeepEqual(append([]ItemResult{}, dec.Items...), append([]ItemResult{}, tc.resp.Items...)) {
			t.Fatalf("%v: items: got %+v, want %+v", tc.op, dec.Items, tc.resp.Items)
		}
		if !bytes.Equal(dec.Blob, tc.resp.Blob) {
			t.Fatalf("%v: blob: got %q, want %q", tc.op, dec.Blob, tc.resp.Blob)
		}
	}
}

// echoBackend answers Acquire with a grant echoing the request's TTL and ID,
// so concurrent clients can verify responses land on the right callers.
type echoBackend struct{ calls sync.Map }

func (b *echoBackend) ServeWire(req *Request, resp *Response) {
	switch req.Op {
	case OpPing:
		resp.Status = StatusOK
		resp.Epoch = 77
	case OpAcquire:
		resp.Status = StatusOK
		resp.Grants = append(resp.Grants, Grant{Name: req.TTLMillis, Token: req.ID})
		b.calls.Store(req.ID, struct{}{})
	case OpRenewSession:
		resp.Status = StatusOK
		for _, it := range req.Items {
			resp.Items = append(resp.Items, ItemResult{Status: StatusOK, DeadlineUnixMilli: it.Name + int64(it.Token)})
		}
	default:
		resp.Status = StatusUnavailable
		resp.Code = CodeFull
		resp.RetryAfterMillis = 31
	}
}

func startTestServer(t *testing.T, backend Backend) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(backend)
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, ln.Addr().String()
}

func TestClientServerPipelined(t *testing.T) {
	backend := &echoBackend{}
	_, addr := startTestServer(t, backend)
	cl := NewClient(addr, &ClientConfig{Conns: 2})
	defer cl.Close()

	const goroutines, perG = 16, 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var req Request
			var resp Response
			for i := 0; i < perG; i++ {
				req = Request{Op: OpAcquire, TTLMillis: int64(g*perG + i)}
				if err := cl.Do(&req, &resp); err != nil {
					errs <- err
					return
				}
				if resp.Status != StatusOK || len(resp.Grants) != 1 {
					errs <- errors.New("unexpected response shape")
					return
				}
				// The grant echoes the TTL: a cross-wired response (wrong
				// request ID) would echo someone else's.
				if resp.Grants[0].Name != int64(g*perG+i) {
					errs <- errors.New("response delivered to the wrong caller")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c := cl.Counters()
	if c.Ops != goroutines*perG {
		t.Fatalf("Ops = %d, want %d", c.Ops, goroutines*perG)
	}
	if c.Dials > 2 {
		t.Fatalf("Dials = %d, want <= 2 (pooled conns)", c.Dials)
	}
	if c.Flushes > c.FramesSent {
		t.Fatalf("Flushes %d > FramesSent %d", c.Flushes, c.FramesSent)
	}
	// Pipelining must combine at least some writes: with 16 goroutines on 2
	// conns, strictly one flush per frame would mean no write combining ever
	// happened. Allow equality only if the scheduler fully serialized us.
	t.Logf("ops=%d dials=%d frames=%d flushes=%d", c.Ops, c.Dials, c.FramesSent, c.Flushes)
}

func TestClientStatusAndRetryHint(t *testing.T) {
	_, addr := startTestServer(t, &echoBackend{})
	cl := NewClient(addr, nil)
	defer cl.Close()

	var req Request
	var resp Response
	req = Request{Op: OpCollect} // echoBackend answers 503 to anything but ping/acquire/renewsession
	if err := cl.Do(&req, &resp); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Status != StatusUnavailable || resp.Code != CodeFull || resp.RetryAfterMillis != 31 {
		t.Fatalf("503 passthrough: %+v", resp)
	}

	req = Request{Op: OpPing}
	if err := cl.Do(&req, &resp); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if resp.Epoch != 77 {
		t.Fatalf("epoch passthrough: %d, want 77", resp.Epoch)
	}
}

func TestClientReconnect(t *testing.T) {
	backend := &echoBackend{}
	srv1, addr := startTestServer(t, backend)
	cl := NewClient(addr, nil)
	defer cl.Close()

	var req Request
	var resp Response
	req = Request{Op: OpPing}
	if err := cl.Do(&req, &resp); err != nil {
		t.Fatalf("first ping: %v", err)
	}

	// Kill the server; the in-flight connection dies with it.
	_ = srv1.Close()

	// Rebind the same address (retry briefly: the port lingers on some
	// platforms) and serve again.
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := NewServer(backend)
	go func() { _ = srv2.Serve(ln) }()
	defer srv2.Close()

	// The client must redial transparently; the first call may observe the
	// dead connection, later ones must succeed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		req = Request{Op: OpPing}
		if err := cl.Do(&req, &resp); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cl.Counters().Dials < 2 {
		t.Fatalf("Dials = %d, want >= 2 after reconnect", cl.Counters().Dials)
	}
}

func TestServerRejectsGarbageConn(t *testing.T) {
	_, addr := startTestServer(t, &echoBackend{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	// Garbage that cannot parse as a header: the server must close the
	// connection rather than answer.
	if _, err := nc.Write(bytes.Repeat([]byte{0xFF}, HeaderLen)); err != nil {
		t.Fatalf("write: %v", err)
	}
	_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server answered a garbage frame; want connection close")
	}
}

func TestServerAnswers400OnBadPayload(t *testing.T) {
	_, addr := startTestServer(t, &echoBackend{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()

	// A well-framed request whose payload disagrees with its opcode: header
	// says OpAcquire with 3 payload bytes (needs 8).
	frame := make([]byte, HeaderLen+3)
	PutHeader(frame, Header{Op: OpAcquire, ID: 9, Len: 3})
	if _, err := nc.Write(frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	hdr := make([]byte, HeaderLen)
	if _, err := readFull(nc, hdr); err != nil {
		t.Fatalf("read response header: %v", err)
	}
	h, err := ParseHeader(hdr)
	if err != nil {
		t.Fatalf("parse response: %v", err)
	}
	if h.Status != StatusBadRequest || h.ID != 9 {
		t.Fatalf("bad payload answer: %+v, want 400 id=9", h)
	}

	// The connection must survive: a valid ping still works.
	ping := AppendRequest(nil, &Request{Op: OpPing, ID: 10})
	if _, err := nc.Write(ping); err != nil {
		t.Fatalf("write ping: %v", err)
	}
	if _, err := readFull(nc, hdr); err != nil {
		t.Fatalf("read ping response: %v", err)
	}
	if h, _ := ParseHeader(hdr); h.ID != 10 || h.Status != StatusOK {
		t.Fatalf("ping after 400: %+v", h)
	}
}

func readFull(nc net.Conn, buf []byte) (int, error) {
	read := 0
	for read < len(buf) {
		n, err := nc.Read(buf[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}
