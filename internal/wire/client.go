package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClientClosed is returned by calls issued after Close.
var ErrClientClosed = errors.New("wire: client closed")

// ErrDialBackoff is returned (wrapped) by calls that land on a slot whose
// redial is suppressed by the exponential backoff window: the previous dial
// failed recently enough that retrying now would only hammer a dead or
// drowning endpoint. Callers with an alternative transport (the routed
// cluster client's HTTP fallback) should fail over immediately.
var ErrDialBackoff = errors.New("wire: dial suppressed by backoff")

// ClientConfig tunes a Client. The zero value is usable: 1 connection,
// 5s dial timeout, 10s call timeout.
type ClientConfig struct {
	// Conns is the number of pooled connections (calls are distributed
	// round-robin; many callers pipelining on few conns is the sweet spot).
	Conns int
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// CallTimeout bounds one request/response exchange. A timeout marks the
	// connection dead (responses could no longer be matched reliably).
	CallTimeout time.Duration
	// RedialBackoff is the base pause before redialing a slot whose dial just
	// failed, doubled per consecutive failure (with jitter) up to
	// RedialBackoffMax; calls landing on the slot inside the window fail fast
	// with ErrDialBackoff instead of paying another dial timeout. The first
	// redial after a live connection dies is always immediate. Zero selects
	// 25ms.
	RedialBackoff time.Duration
	// RedialBackoffMax caps the redial backoff. Zero selects 2s.
	RedialBackoffMax time.Duration
}

func (c *ClientConfig) withDefaults() ClientConfig {
	out := ClientConfig{
		Conns:            1,
		DialTimeout:      5 * time.Second,
		CallTimeout:      10 * time.Second,
		RedialBackoff:    25 * time.Millisecond,
		RedialBackoffMax: 2 * time.Second,
	}
	if c == nil {
		return out
	}
	if c.Conns > 0 {
		out.Conns = c.Conns
	}
	if c.DialTimeout > 0 {
		out.DialTimeout = c.DialTimeout
	}
	if c.CallTimeout > 0 {
		out.CallTimeout = c.CallTimeout
	}
	if c.RedialBackoff > 0 {
		out.RedialBackoff = c.RedialBackoff
	}
	if c.RedialBackoffMax > 0 {
		out.RedialBackoffMax = c.RedialBackoffMax
	}
	return out
}

// Counters is a snapshot of a client's syscall-efficiency telemetry.
type Counters struct {
	Dials      uint64 // connections established (first dial + reconnects)
	Ops        uint64 // requests completed (success or error response)
	FramesSent uint64 // request frames written
	Flushes    uint64 // write-side flushes (syscalls); FramesSent/Flushes = frames per flush
	Backoffs   uint64 // calls failed fast inside a redial-backoff window
}

// Client is a pooled wire-protocol client. Each pooled connection supports
// pipelining: concurrent callers enqueue frames under a short write lock and
// a single reader goroutine matches responses by request ID, so in-flight
// depth scales with callers, not connections. Dead connections are redialed
// lazily on the next call that lands on them.
type Client struct {
	addr string
	cfg  ClientConfig

	nextID   atomic.Uint64
	nextSlot atomic.Uint64
	closed   atomic.Bool
	slots    []*slot

	dials      atomic.Uint64
	ops        atomic.Uint64
	framesSent atomic.Uint64
	flushes    atomic.Uint64
	backoffs   atomic.Uint64
	jitter     atomic.Uint64 // splitmix state for backoff jitter
}

// slot is one pooled-connection cell; c is nil until first use and after a
// connection is torn down. fails/nextDialAt (guarded by mu) drive the
// exponential redial backoff after consecutive dial failures.
type slot struct {
	mu         sync.Mutex // guards dialing/replacing c
	c          atomic.Pointer[conn]
	fails      int
	nextDialAt time.Time
}

// conn is one live connection plus its pipelining state.
type conn struct {
	cl  *Client
	nc  net.Conn
	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer
	// queued counts callers that have committed to writing but not yet
	// finished; the last writer out flushes, so bursts of concurrent calls
	// coalesce into one syscall (write-combining).
	queued atomic.Int32

	pmu     sync.Mutex
	pending map[uint64]*call
	dead    atomic.Bool
	err     error // first fatal error, set before dead; read after dead
}

// call is one in-flight request awaiting its response frame.
type call struct {
	done chan struct{}
	resp Response
	err  error
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

// NewClient returns a client for the wire endpoint at addr (host:port).
// No connection is made until the first call.
func NewClient(addr string, cfg *ClientConfig) *Client {
	c := &Client{addr: addr, cfg: cfg.withDefaults()}
	c.jitter.Store(uint64(time.Now().UnixNano()))
	c.slots = make([]*slot, c.cfg.Conns)
	for i := range c.slots {
		c.slots[i] = &slot{}
	}
	return c
}

// Addr returns the endpoint this client dials.
func (c *Client) Addr() string { return c.addr }

// Counters snapshots the client's telemetry.
func (c *Client) Counters() Counters {
	return Counters{
		Dials:      c.dials.Load(),
		Ops:        c.ops.Load(),
		FramesSent: c.framesSent.Load(),
		Flushes:    c.flushes.Load(),
		Backoffs:   c.backoffs.Load(),
	}
}

// Close tears down every pooled connection. In-flight calls fail with
// ErrClientClosed.
func (c *Client) Close() {
	c.closed.Store(true)
	for _, s := range c.slots {
		s.mu.Lock()
		if cn := s.c.Swap(nil); cn != nil {
			cn.fail(ErrClientClosed)
		}
		s.mu.Unlock()
	}
}

// Do performs one request/response exchange. When req.ID is zero the client
// assigns one; a caller may pre-set a nonzero ID to thread its own request
// identifier through the frame header (for cross-hop tracing), in which case
// the caller is responsible for keeping in-flight IDs unique on this client —
// the pipelining match is by ID. resp's storage is owned by the caller and
// reused across calls.
func (c *Client) Do(req *Request, resp *Response) error {
	if c.closed.Load() {
		return ErrClientClosed
	}
	s := c.slots[c.nextSlot.Add(1)%uint64(len(c.slots))]
	cn, err := c.connFor(s)
	if err != nil {
		return err
	}
	return cn.roundTrip(req, resp, c.cfg.CallTimeout)
}

// connFor returns the slot's live connection, dialing if absent or dead.
func (c *Client) connFor(s *slot) (*conn, error) {
	if cn := s.c.Load(); cn != nil && !cn.dead.Load() {
		return cn, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cn := s.c.Load(); cn != nil && !cn.dead.Load() {
		return cn, nil
	}
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	if wait := time.Until(s.nextDialAt); wait > 0 {
		c.backoffs.Add(1)
		return nil, fmt.Errorf("%w: %s unreachable, retry in %v", ErrDialBackoff, c.addr, wait.Round(time.Millisecond))
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		s.nextDialAt = time.Now().Add(Backoff(c.cfg.RedialBackoff, c.cfg.RedialBackoffMax, s.fails, &c.jitter))
		s.fails++
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	s.fails, s.nextDialAt = 0, time.Time{}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cn := &conn{
		cl:      c,
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]*call),
	}
	c.dials.Add(1)
	s.c.Store(cn)
	go cn.readLoop()
	return cn, nil
}

// roundTrip sends req and blocks for its response (other callers' frames may
// interleave on the same connection meanwhile).
func (cn *conn) roundTrip(req *Request, resp *Response, timeout time.Duration) error {
	id := req.ID
	if id == 0 {
		id = cn.cl.nextID.Add(1)
		req.ID = id
	}

	ca := callPool.Get().(*call)
	ca.err = nil

	cn.pmu.Lock()
	if cn.dead.Load() {
		cn.pmu.Unlock()
		callPool.Put(ca)
		return cn.errOr(io.ErrClosedPipe)
	}
	cn.pending[id] = ca
	cn.pmu.Unlock()

	// Write the frame. queued is incremented before taking the write lock:
	// a writer that sees queued > 0 after its own write skips the flush,
	// because a later writer is already committed to flushing.
	cn.queued.Add(1)
	cn.wmu.Lock()
	frame := AppendRequest(writeBufPool.Get().([]byte)[:0], req)
	_, werr := cn.bw.Write(frame)
	writeBufPool.Put(frame[:0])
	cn.cl.framesSent.Add(1)
	if werr == nil && cn.queued.Add(-1) == 0 {
		werr = cn.bw.Flush()
		cn.cl.flushes.Add(1)
	} else if werr != nil {
		cn.queued.Add(-1)
	}
	cn.wmu.Unlock()
	if werr != nil {
		cn.fail(werr)
	}

	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		timeoutCh = timer.C
	}
	select {
	case <-ca.done:
		if timer != nil {
			timer.Stop()
		}
		err := ca.err
		if err == nil {
			// Move the response out before pooling the call; swapping the
			// backing storage keeps both sides allocation-free.
			*resp, ca.resp = ca.resp, *resp
		}
		callPool.Put(ca)
		cn.cl.ops.Add(1)
		return err
	case <-timeoutCh:
		// The response stream can no longer be trusted to line up with
		// pending IDs cheaply; kill the connection. The reader (or fail)
		// completes ca, which we must wait for before pooling it. If the
		// response raced the timer and won, honor it.
		cn.fail(fmt.Errorf("wire: call timeout after %v", timeout))
		<-ca.done
		err := ca.err
		if err == nil {
			*resp, ca.resp = ca.resp, *resp
		}
		callPool.Put(ca)
		if err == nil {
			cn.cl.ops.Add(1)
		}
		return err
	}
}

var writeBufPool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

// readLoop is the connection's single reader: it decodes response frames and
// completes the matching pending call.
func (cn *conn) readLoop() {
	br := bufio.NewReaderSize(cn.nc, 64<<10)
	var hdr [HeaderLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			cn.fail(err)
			return
		}
		h, err := ParseHeader(hdr[:])
		if err != nil {
			cn.fail(err)
			return
		}
		if int(h.Len) > cap(payload) {
			payload = make([]byte, h.Len)
		}
		payload = payload[:h.Len]
		if _, err := io.ReadFull(br, payload); err != nil {
			cn.fail(err)
			return
		}

		cn.pmu.Lock()
		ca := cn.pending[h.ID]
		delete(cn.pending, h.ID)
		cn.pmu.Unlock()
		if ca == nil {
			continue // cancelled call (timeout already failed the conn) or bug
		}
		ca.err = DecodeResponse(h, payload, &ca.resp)
		ca.done <- struct{}{}
	}
}

// fail marks the connection dead, closes it, and completes every pending
// call with err. Safe to call multiple times; the first error wins.
func (cn *conn) fail(err error) {
	cn.pmu.Lock()
	if cn.dead.Load() {
		cn.pmu.Unlock()
		return
	}
	cn.err = err
	cn.dead.Store(true)
	pending := cn.pending
	cn.pending = make(map[uint64]*call)
	cn.pmu.Unlock()
	cn.nc.Close()
	for _, ca := range pending {
		ca.err = err
		ca.done <- struct{}{}
	}
}

// errOr returns the connection's recorded fatal error, or fallback.
func (cn *conn) errOr(fallback error) error {
	cn.pmu.Lock()
	defer cn.pmu.Unlock()
	if cn.err != nil {
		return cn.err
	}
	return fallback
}
