// Package wire is the binary protocol of the name service: persistent
// connections carrying fixed-layout little-endian frames, built to close the
// ~200x gap between the in-process lease hot path (hundreds of nanoseconds)
// and an HTTP/JSON session (tens of microseconds). The HTTP/JSON endpoints
// remain as the compat/debug facade; this protocol is the fast path.
//
// # Frame layout
//
// Every message — request or response — is one frame: a 28-byte fixed header
// followed by an opcode-specific payload. All integers are little-endian.
//
//	offset len field
//	0      2   magic 0x616C ("la")
//	2      1   version (currently 1)
//	3      1   opcode
//	4      2   status (flags in requests — bit 0 is the trace flag;
//	           HTTP-aligned status in responses)
//	6      2   code (0 none; error-code enum mirroring the JSON error strings)
//	8      8   request ID (echoed verbatim in the response)
//	16     8   epoch (cluster table epoch; 0 = unfenced)
//	24     4   payload length (bounded by MaxPayload)
//	28     ..  payload
//
// Requests are matched to responses by request ID, never by order, so a
// client may keep many operations in flight on one connection (pipelining)
// and a server may be extended to answer out of order without breaking
// existing clients.
//
// # Fencing semantics
//
// Statuses reuse the HTTP vocabulary so both protocols express one contract:
// 200 OK, 400 bad request, 409 fencing failure (stale token / not leased,
// distinguished by the code field), 412 stale epoch, 421 not the partition
// owner, 503 unavailable (full/closed/warming, with a retry-after hint in
// the payload). The epoch field fences writes exactly like the
// X-Cluster-Epoch header one protocol over.
//
// # Batching
//
// AcquireN grants up to N names in one frame; ReleaseN and RenewSession
// carry a whole session set, so a heartbeating fleet pays O(connections) —
// not O(leases) — in syscalls. Batch responses report per-item status, so a
// partially stale session set still renews every live lease it names.
//
// Encode/decode is reflection-free and allocation-free on the hot path:
// fixed offsets into reused per-connection buffers, no JSON. The read-side
// debug opcodes (Collect, Stats, Leases, Members) carry their existing JSON
// response bodies as opaque payload bytes — they exist so debug tooling can
// ride the same connection, not for speed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/levelarray/levelarray/internal/trace"
)

// Frame geometry.
const (
	// Magic is the first two bytes of every frame: "la" little-endian.
	Magic uint16 = 0x616C
	// Version is the protocol version this package speaks.
	Version = 1
	// HeaderLen is the fixed frame-header length in bytes.
	HeaderLen = 28
	// MaxPayload bounds a frame payload; larger length fields are rejected
	// before any allocation, so a hostile peer cannot balloon memory.
	MaxPayload = 1 << 20
	// TraceFlag is the request-header flag (carried in the otherwise-unused
	// status field of a request frame) asking the server to trace this
	// operation under the frame's request ID. Servers that predate the flag
	// ignore request status entirely, so the bit is backward compatible.
	TraceFlag uint16 = 1 << 0
	// MaxBatch bounds the item count of AcquireN/ReleaseN/RenewSession.
	MaxBatch = 4096
	// GrantLen is the encoded size of one Grant.
	GrantLen = 40
	// RefLen is the encoded size of one Ref.
	RefLen = 16
)

// Opcode identifies the operation a frame carries.
type Opcode uint8

// The operation vocabulary. Write ops (Acquire..RenewSession) are fixed
// binary; read ops (Collect..Members) carry JSON payloads for debug tooling.
const (
	OpPing         Opcode = 1  // liveness + epoch probe; empty payloads
	OpAcquire      Opcode = 2  // req: ttl_ms i64           -> resp: Grant
	OpRenew        Opcode = 3  // req: Ref + ttl_ms i64     -> resp: Grant
	OpRelease      Opcode = 4  // req: Ref                  -> resp: empty
	OpAcquireN     Opcode = 5  // req: ttl_ms i64, n u32    -> resp: n u32 + n*Grant
	OpReleaseN     Opcode = 6  // req: n u32 + n*Ref        -> resp: n u32 + n*(status u16, code u16)
	OpRenewSession Opcode = 7  // req: ttl_ms i64, n u32 + n*Ref -> resp: n u32 + n*(status u16, code u16, deadline i64)
	OpCollect      Opcode = 8  // resp payload: CollectResponse JSON
	OpStats        Opcode = 9  // resp payload: stats JSON
	OpLeases       Opcode = 10 // req: start i64, limit i64 -> resp payload: leases JSON
	OpMembers      Opcode = 11 // resp payload: cluster Table JSON (cluster only)
	OpJoin         Opcode = 12 // req payload: JoinRequest JSON -> resp payload: JoinResponse JSON
	OpDrain        Opcode = 13 // req payload: DrainRequest JSON -> resp payload: epoch JSON
	OpRebalance    Opcode = 14 // empty req -> resp payload: RebalanceResponse JSON
)

// String names the opcode for logs and errors.
func (o Opcode) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpAcquire:
		return "acquire"
	case OpRenew:
		return "renew"
	case OpRelease:
		return "release"
	case OpAcquireN:
		return "acquire_n"
	case OpReleaseN:
		return "release_n"
	case OpRenewSession:
		return "renew_session"
	case OpCollect:
		return "collect"
	case OpStats:
		return "stats"
	case OpLeases:
		return "leases"
	case OpMembers:
		return "members"
	case OpJoin:
		return "join"
	case OpDrain:
		return "drain"
	case OpRebalance:
		return "rebalance"
	default:
		return fmt.Sprintf("opcode(%d)", uint8(o))
	}
}

// Status is the response status, aligned with the HTTP vocabulary so both
// protocols express the same contract.
type Status uint16

const (
	StatusOK          Status = 200
	StatusBadRequest  Status = 400
	StatusConflict    Status = 409 // fencing failure: stale token or not leased
	StatusStaleEpoch  Status = 412 // write fenced by the cluster epoch
	StatusNotOwner    Status = 421 // this node does not own the partition
	StatusUnavailable Status = 503 // full, closed, warming, no partitions
	StatusInternal    Status = 500
)

// Code refines a non-2xx status, mirroring the JSON error-code strings so
// both protocols share one error vocabulary.
type Code uint16

const (
	CodeNone         Code = 0
	CodeFull         Code = 1
	CodeStaleToken   Code = 2
	CodeNotLeased    Code = 3
	CodeClosed       Code = 4
	CodeTTLTooLong   Code = 5
	CodeBadRequest   Code = 6
	CodeStaleEpoch   Code = 7
	CodeNotOwner     Code = 8
	CodeWarming      Code = 9
	CodeNoPartitions Code = 10
	CodeInternal     Code = 11
)

// String returns the JSON error-code spelling of the code.
func (c Code) String() string {
	switch c {
	case CodeNone:
		return ""
	case CodeFull:
		return "full"
	case CodeStaleToken:
		return "stale_token"
	case CodeNotLeased:
		return "not_leased"
	case CodeClosed:
		return "closed"
	case CodeTTLTooLong:
		return "ttl_too_long"
	case CodeBadRequest:
		return "bad_request"
	case CodeStaleEpoch:
		return "stale_epoch"
	case CodeNotOwner:
		return "not_owner"
	case CodeWarming:
		return "warming"
	case CodeNoPartitions:
		return "no_partitions"
	case CodeInternal:
		return "internal"
	default:
		return fmt.Sprintf("code(%d)", uint16(c))
	}
}

// Typed decode errors. The fuzz target asserts every malformed input maps to
// one of these (or a wrapped variant) — never a panic.
var (
	// ErrBadMagic means the first two bytes are not the protocol magic; the
	// connection cannot be resynchronized and must be closed.
	ErrBadMagic = errors.New("wire: bad frame magic")
	// ErrBadVersion means the peer speaks an unknown protocol version.
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	// ErrOversizedFrame means the header names a payload above MaxPayload.
	ErrOversizedFrame = errors.New("wire: frame payload exceeds MaxPayload")
	// ErrTruncatedFrame means the buffer ends before the header (or the
	// header-named payload) does.
	ErrTruncatedFrame = errors.New("wire: truncated frame")
	// ErrBadPayload means the payload does not parse under its opcode: a
	// length that disagrees with the fixed layout, or a batch count that
	// disagrees with the item bytes.
	ErrBadPayload = errors.New("wire: malformed payload")
	// ErrBatchTooLarge means a batch op names more than MaxBatch items.
	ErrBatchTooLarge = errors.New("wire: batch exceeds MaxBatch items")
)

// Header is one decoded frame header.
type Header struct {
	Op     Opcode
	Status Status
	Code   Code
	ID     uint64
	Epoch  uint64
	Len    uint32
}

// PutHeader encodes h into buf, which must be at least HeaderLen bytes.
func PutHeader(buf []byte, h Header) {
	binary.LittleEndian.PutUint16(buf[0:2], Magic)
	buf[2] = Version
	buf[3] = uint8(h.Op)
	binary.LittleEndian.PutUint16(buf[4:6], uint16(h.Status))
	binary.LittleEndian.PutUint16(buf[6:8], uint16(h.Code))
	binary.LittleEndian.PutUint64(buf[8:16], h.ID)
	binary.LittleEndian.PutUint64(buf[16:24], h.Epoch)
	binary.LittleEndian.PutUint32(buf[24:28], h.Len)
}

// ParseHeader decodes a frame header, validating magic, version and the
// payload bound. It does not require the payload itself to be present.
func ParseHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderLen {
		return Header{}, ErrTruncatedFrame
	}
	if binary.LittleEndian.Uint16(buf[0:2]) != Magic {
		return Header{}, ErrBadMagic
	}
	if buf[2] != Version {
		return Header{}, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, buf[2], Version)
	}
	h := Header{
		Op:     Opcode(buf[3]),
		Status: Status(binary.LittleEndian.Uint16(buf[4:6])),
		Code:   Code(binary.LittleEndian.Uint16(buf[6:8])),
		ID:     binary.LittleEndian.Uint64(buf[8:16]),
		Epoch:  binary.LittleEndian.Uint64(buf[16:24]),
		Len:    binary.LittleEndian.Uint32(buf[24:28]),
	}
	if h.Len > MaxPayload {
		return Header{}, fmt.Errorf("%w: %d bytes", ErrOversizedFrame, h.Len)
	}
	return h, nil
}

// RIDString renders a frame request ID in the canonical request-ID spelling
// the routed cluster client uses for its HTTP hops ("la-rt-%x"), so one
// operation keeps one trace identity across both protocols.
func RIDString(id uint64) string { return fmt.Sprintf("la-rt-%x", id) }

// Ref addresses one lease in a request: the fencing pair every Renew and
// Release must present.
type Ref struct {
	Name  int64
	Token uint64
}

// Grant is the binary analogue of the JSON grant/lease response.
type Grant struct {
	Name              int64
	Token             uint64
	DeadlineUnixMilli int64
	NodeID            int32
	Partition         int32
	Epoch             uint64
}

// ItemResult is one entry of a batch response: the per-item outcome of
// ReleaseN (deadline unused) and RenewSession.
type ItemResult struct {
	Status            Status
	Code              Code
	DeadlineUnixMilli int64
}

// putGrant encodes g at buf[off:], returning the next offset.
func putGrant(buf []byte, off int, g Grant) int {
	binary.LittleEndian.PutUint64(buf[off:], uint64(g.Name))
	binary.LittleEndian.PutUint64(buf[off+8:], g.Token)
	binary.LittleEndian.PutUint64(buf[off+16:], uint64(g.DeadlineUnixMilli))
	binary.LittleEndian.PutUint32(buf[off+24:], uint32(g.NodeID))
	binary.LittleEndian.PutUint32(buf[off+28:], uint32(g.Partition))
	binary.LittleEndian.PutUint64(buf[off+32:], g.Epoch)
	return off + GrantLen
}

// getGrant decodes one Grant at buf[off:].
func getGrant(buf []byte, off int) Grant {
	return Grant{
		Name:              int64(binary.LittleEndian.Uint64(buf[off:])),
		Token:             binary.LittleEndian.Uint64(buf[off+8:]),
		DeadlineUnixMilli: int64(binary.LittleEndian.Uint64(buf[off+16:])),
		NodeID:            int32(binary.LittleEndian.Uint32(buf[off+24:])),
		Partition:         int32(binary.LittleEndian.Uint32(buf[off+28:])),
		Epoch:             binary.LittleEndian.Uint64(buf[off+32:]),
	}
}

// Request is one decoded request frame. Decode reuses the Items backing
// array across frames on the same connection, so a Request is only valid
// until the next Decode into it.
type Request struct {
	Op    Opcode
	ID    uint64
	Epoch uint64
	// Trace asks the server to record a span for this operation under the
	// frame's request ID (the TraceFlag bit of the request status field).
	Trace bool
	// Span is the server-side flight-recorder span for this request, opened
	// by the wire server before dispatch so backends can attribute phase
	// time into it. Never encoded; nil when tracing is off.
	Span *trace.Op

	// TTLMillis is the requested TTL for Acquire/Renew/AcquireN/RenewSession
	// (0 = server default, negative = infinite where permitted).
	TTLMillis int64
	// N is the requested grant count of an AcquireN.
	N uint32
	// Start/Limit page an OpLeases request.
	Start, Limit int64
	// Items carries the lease refs of Renew/Release (Items[:1]) and the
	// batch refs of ReleaseN/RenewSession.
	Items []Ref
	// Blob is the JSON payload of the membership control opcodes
	// (Join/Drain); empty for Rebalance. Decode reuses its backing array.
	Blob []byte
}

// DecodeRequest parses a request frame's payload under its header, reusing
// req's Items backing storage. Malformed payloads return ErrBadPayload (or
// ErrBatchTooLarge) without touching the connection state, so a server can
// answer 400 and keep the connection.
func DecodeRequest(h Header, payload []byte, req *Request) error {
	if len(payload) != int(h.Len) {
		return ErrTruncatedFrame
	}
	req.Op = h.Op
	req.ID = h.ID
	req.Epoch = h.Epoch
	req.Trace = uint16(h.Status)&TraceFlag != 0
	req.Span = nil
	req.TTLMillis = 0
	req.N = 0
	req.Start, req.Limit = 0, 0
	req.Items = req.Items[:0]
	req.Blob = req.Blob[:0]

	need := func(n int) bool { return len(payload) == n }
	switch h.Op {
	case OpPing, OpCollect, OpStats, OpMembers, OpRebalance:
		if !need(0) {
			return ErrBadPayload
		}
	case OpJoin, OpDrain:
		req.Blob = append(req.Blob, payload...)
	case OpAcquire:
		if !need(8) {
			return ErrBadPayload
		}
		req.TTLMillis = int64(binary.LittleEndian.Uint64(payload))
	case OpRenew:
		if !need(24) {
			return ErrBadPayload
		}
		req.Items = append(req.Items, Ref{
			Name:  int64(binary.LittleEndian.Uint64(payload)),
			Token: binary.LittleEndian.Uint64(payload[8:]),
		})
		req.TTLMillis = int64(binary.LittleEndian.Uint64(payload[16:]))
	case OpRelease:
		if !need(16) {
			return ErrBadPayload
		}
		req.Items = append(req.Items, Ref{
			Name:  int64(binary.LittleEndian.Uint64(payload)),
			Token: binary.LittleEndian.Uint64(payload[8:]),
		})
	case OpAcquireN:
		if !need(12) {
			return ErrBadPayload
		}
		req.TTLMillis = int64(binary.LittleEndian.Uint64(payload))
		req.N = binary.LittleEndian.Uint32(payload[8:])
		if req.N == 0 || req.N > MaxBatch {
			return ErrBatchTooLarge
		}
	case OpReleaseN:
		return decodeRefBatch(payload, 0, req)
	case OpRenewSession:
		if len(payload) < 8 {
			return ErrBadPayload
		}
		req.TTLMillis = int64(binary.LittleEndian.Uint64(payload))
		return decodeRefBatch(payload, 8, req)
	case OpLeases:
		if !need(16) {
			return ErrBadPayload
		}
		req.Start = int64(binary.LittleEndian.Uint64(payload))
		req.Limit = int64(binary.LittleEndian.Uint64(payload[8:]))
	default:
		return fmt.Errorf("%w: unknown opcode %d", ErrBadPayload, uint8(h.Op))
	}
	return nil
}

// decodeRefBatch parses a `n u32 + n*Ref` run starting at payload[off:].
func decodeRefBatch(payload []byte, off int, req *Request) error {
	if len(payload) < off+4 {
		return ErrBadPayload
	}
	n := binary.LittleEndian.Uint32(payload[off:])
	if n == 0 || n > MaxBatch {
		return ErrBatchTooLarge
	}
	off += 4
	if len(payload) != off+int(n)*RefLen {
		return ErrBadPayload
	}
	for i := 0; i < int(n); i++ {
		req.Items = append(req.Items, Ref{
			Name:  int64(binary.LittleEndian.Uint64(payload[off:])),
			Token: binary.LittleEndian.Uint64(payload[off+8:]),
		})
		off += RefLen
	}
	return nil
}

// AppendRequest encodes one request frame onto dst and returns the extended
// slice; the inverse of DecodeRequest, shared by the client and the fuzz
// round-trip tests.
func AppendRequest(dst []byte, req *Request) []byte {
	var payload int
	switch req.Op {
	case OpPing, OpCollect, OpStats, OpMembers, OpRebalance:
	case OpJoin, OpDrain:
		payload = len(req.Blob)
	case OpAcquire:
		payload = 8
	case OpRenew:
		payload = 24
	case OpRelease:
		payload = 16
	case OpAcquireN:
		payload = 12
	case OpReleaseN:
		payload = 4 + len(req.Items)*RefLen
	case OpRenewSession:
		payload = 8 + 4 + len(req.Items)*RefLen
	case OpLeases:
		payload = 16
	}
	var flags Status
	if req.Trace {
		flags = Status(TraceFlag)
	}
	base := len(dst)
	dst = append(dst, make([]byte, HeaderLen+payload)...)
	PutHeader(dst[base:], Header{Op: req.Op, Status: flags, ID: req.ID, Epoch: req.Epoch, Len: uint32(payload)})
	p := dst[base+HeaderLen:]
	switch req.Op {
	case OpJoin, OpDrain:
		copy(p, req.Blob)
	case OpAcquire:
		binary.LittleEndian.PutUint64(p, uint64(req.TTLMillis))
	case OpRenew:
		binary.LittleEndian.PutUint64(p, uint64(req.Items[0].Name))
		binary.LittleEndian.PutUint64(p[8:], req.Items[0].Token)
		binary.LittleEndian.PutUint64(p[16:], uint64(req.TTLMillis))
	case OpRelease:
		binary.LittleEndian.PutUint64(p, uint64(req.Items[0].Name))
		binary.LittleEndian.PutUint64(p[8:], req.Items[0].Token)
	case OpAcquireN:
		binary.LittleEndian.PutUint64(p, uint64(req.TTLMillis))
		binary.LittleEndian.PutUint32(p[8:], req.N)
	case OpReleaseN:
		binary.LittleEndian.PutUint32(p, uint32(len(req.Items)))
		off := 4
		for _, it := range req.Items {
			binary.LittleEndian.PutUint64(p[off:], uint64(it.Name))
			binary.LittleEndian.PutUint64(p[off+8:], it.Token)
			off += RefLen
		}
	case OpRenewSession:
		binary.LittleEndian.PutUint64(p, uint64(req.TTLMillis))
		binary.LittleEndian.PutUint32(p[8:], uint32(len(req.Items)))
		off := 12
		for _, it := range req.Items {
			binary.LittleEndian.PutUint64(p[off:], uint64(it.Name))
			binary.LittleEndian.PutUint64(p[off+8:], it.Token)
			off += RefLen
		}
	case OpLeases:
		binary.LittleEndian.PutUint64(p, uint64(req.Start))
		binary.LittleEndian.PutUint64(p[8:], uint64(req.Limit))
	}
	return dst
}

// Response is one response's semantic content, filled by a Backend and
// encoded by the server. Slices are reused across requests on a connection.
type Response struct {
	Status Status
	Code   Code
	// Epoch is the responder's current table epoch (0 standalone); it rides
	// in the header so fenced clients learn how far behind they are.
	Epoch uint64
	// RetryAfterMillis paces retries after a 503, as the Retry-After /
	// X-Retry-After-Ms headers do over HTTP.
	RetryAfterMillis int64
	// Grants carries the granted leases of Acquire/Renew (one) and AcquireN.
	Grants []Grant
	// Items carries the per-item outcomes of ReleaseN and RenewSession.
	Items []ItemResult
	// Blob is the JSON payload of the read-side debug opcodes.
	Blob []byte
}

// Reset clears r for reuse without releasing its backing storage.
func (r *Response) Reset() {
	r.Status = StatusOK
	r.Code = CodeNone
	r.Epoch = 0
	r.RetryAfterMillis = 0
	r.Grants = r.Grants[:0]
	r.Items = r.Items[:0]
	r.Blob = r.Blob[:0]
}

// AppendResponse encodes one response frame for op/id onto dst and returns
// the extended slice.
func AppendResponse(dst []byte, op Opcode, id uint64, resp *Response) []byte {
	var payload int
	switch {
	case resp.Status == StatusUnavailable:
		payload = 8 // retry-after hint
	case resp.Status != StatusOK:
		// Errors carry no payload; status, code and epoch live in the header.
	default:
		switch op {
		case OpAcquire, OpRenew:
			payload = GrantLen
		case OpAcquireN:
			payload = 4 + len(resp.Grants)*GrantLen
		case OpReleaseN:
			payload = 4 + len(resp.Items)*4
		case OpRenewSession:
			payload = 4 + len(resp.Items)*12
		case OpCollect, OpStats, OpLeases, OpMembers, OpJoin, OpDrain, OpRebalance:
			payload = len(resp.Blob)
		}
	}
	base := len(dst)
	dst = append(dst, make([]byte, HeaderLen+payload)...)
	PutHeader(dst[base:], Header{
		Op: op, Status: resp.Status, Code: resp.Code,
		ID: id, Epoch: resp.Epoch, Len: uint32(payload),
	})
	p := dst[base+HeaderLen:]
	switch {
	case resp.Status == StatusUnavailable:
		binary.LittleEndian.PutUint64(p, uint64(resp.RetryAfterMillis))
	case resp.Status != StatusOK:
	default:
		switch op {
		case OpAcquire, OpRenew:
			putGrant(p, 0, resp.Grants[0])
		case OpAcquireN:
			binary.LittleEndian.PutUint32(p, uint32(len(resp.Grants)))
			off := 4
			for _, g := range resp.Grants {
				off = putGrant(p, off, g)
			}
		case OpReleaseN:
			binary.LittleEndian.PutUint32(p, uint32(len(resp.Items)))
			off := 4
			for _, it := range resp.Items {
				binary.LittleEndian.PutUint16(p[off:], uint16(it.Status))
				binary.LittleEndian.PutUint16(p[off+2:], uint16(it.Code))
				off += 4
			}
		case OpRenewSession:
			binary.LittleEndian.PutUint32(p, uint32(len(resp.Items)))
			off := 4
			for _, it := range resp.Items {
				binary.LittleEndian.PutUint16(p[off:], uint16(it.Status))
				binary.LittleEndian.PutUint16(p[off+2:], uint16(it.Code))
				binary.LittleEndian.PutUint64(p[off+4:], uint64(it.DeadlineUnixMilli))
				off += 12
			}
		case OpCollect, OpStats, OpLeases, OpMembers, OpJoin, OpDrain, OpRebalance:
			copy(p, resp.Blob)
		}
	}
	return dst
}

// DecodeResponse parses a response frame's payload under its header into
// resp, reusing resp's backing storage. The Blob (when present) aliases
// payload and must be consumed or copied before the buffer is reused.
func DecodeResponse(h Header, payload []byte, resp *Response) error {
	if len(payload) != int(h.Len) {
		return ErrTruncatedFrame
	}
	resp.Reset()
	resp.Status = h.Status
	resp.Code = h.Code
	resp.Epoch = h.Epoch
	switch {
	case h.Status == StatusUnavailable:
		if len(payload) != 8 {
			return ErrBadPayload
		}
		resp.RetryAfterMillis = int64(binary.LittleEndian.Uint64(payload))
		return nil
	case h.Status != StatusOK:
		return nil
	}
	switch h.Op {
	case OpPing, OpRelease:
		if len(payload) != 0 {
			return ErrBadPayload
		}
	case OpAcquire, OpRenew:
		if len(payload) != GrantLen {
			return ErrBadPayload
		}
		resp.Grants = append(resp.Grants, getGrant(payload, 0))
	case OpAcquireN:
		if len(payload) < 4 {
			return ErrBadPayload
		}
		n := binary.LittleEndian.Uint32(payload)
		if n > MaxBatch || len(payload) != 4+int(n)*GrantLen {
			return ErrBadPayload
		}
		for i := 0; i < int(n); i++ {
			resp.Grants = append(resp.Grants, getGrant(payload, 4+i*GrantLen))
		}
	case OpReleaseN:
		if len(payload) < 4 {
			return ErrBadPayload
		}
		n := binary.LittleEndian.Uint32(payload)
		if n > MaxBatch || len(payload) != 4+int(n)*4 {
			return ErrBadPayload
		}
		for i := 0; i < int(n); i++ {
			off := 4 + i*4
			resp.Items = append(resp.Items, ItemResult{
				Status: Status(binary.LittleEndian.Uint16(payload[off:])),
				Code:   Code(binary.LittleEndian.Uint16(payload[off+2:])),
			})
		}
	case OpRenewSession:
		if len(payload) < 4 {
			return ErrBadPayload
		}
		n := binary.LittleEndian.Uint32(payload)
		if n > MaxBatch || len(payload) != 4+int(n)*12 {
			return ErrBadPayload
		}
		for i := 0; i < int(n); i++ {
			off := 4 + i*12
			resp.Items = append(resp.Items, ItemResult{
				Status:            Status(binary.LittleEndian.Uint16(payload[off:])),
				Code:              Code(binary.LittleEndian.Uint16(payload[off+2:])),
				DeadlineUnixMilli: int64(binary.LittleEndian.Uint64(payload[off+4:])),
			})
		}
	case OpCollect, OpStats, OpLeases, OpMembers, OpJoin, OpDrain, OpRebalance:
		resp.Blob = append(resp.Blob, payload...)
	default:
		return fmt.Errorf("%w: unknown opcode %d", ErrBadPayload, uint8(h.Op))
	}
	return nil
}
