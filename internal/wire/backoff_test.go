package wire

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffGrowthAndCap: the pause doubles per attempt from base, never
// exceeds the ceiling, and the jitter keeps every sample in [d/2, d].
func TestBackoffGrowthAndCap(t *testing.T) {
	var state atomic.Uint64
	state.Store(12345)
	base, ceil := 10*time.Millisecond, 100*time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		want := base << attempt
		if want > ceil || want <= 0 {
			want = ceil
		}
		for i := 0; i < 50; i++ {
			got := Backoff(base, ceil, attempt, &state)
			if got < want/2 || got > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, got, want/2, want)
			}
		}
	}
}

// TestBackoffZeroBase: a zero or negative base disables the pause entirely.
func TestBackoffZeroBase(t *testing.T) {
	var state atomic.Uint64
	if got := Backoff(0, time.Second, 5, &state); got != 0 {
		t.Fatalf("zero base: got %v, want 0", got)
	}
	if got := Backoff(-time.Second, time.Second, 5, &state); got != 0 {
		t.Fatalf("negative base: got %v, want 0", got)
	}
}

// TestBackoffJitterVaries: consecutive calls at the same attempt draw
// different pauses (the splitmix sequence advances per call).
func TestBackoffJitterVaries(t *testing.T) {
	var state atomic.Uint64
	state.Store(99)
	seen := make(map[time.Duration]bool)
	for i := 0; i < 32; i++ {
		seen[Backoff(time.Second, 8*time.Second, 3, &state)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("expected jittered backoffs to vary, got a single value")
	}
}
