package stats

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a simple column-aligned text table with optional CSV rendering.
// The cmd/bench* drivers use it to print the same rows and series the paper's
// figures report.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	hs := make([]string, len(headers))
	copy(hs, headers)
	return &Table{title: title, headers: hs}
}

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string {
	out := make([]string, len(t.headers))
	copy(out, t.headers)
	return out
}

// AddRow appends a row. Missing cells are padded with empty strings and extra
// cells are dropped so the table always stays rectangular.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddFloatRow appends a row whose first cell is a label and whose remaining
// cells are formatted floats.
func (t *Table) AddFloatRow(label string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, formatFloat(v))
	}
	t.AddRow(cells...)
}

// Cell returns the cell at row r, column c.
func (t *Table) Cell(r, c int) string { return t.rows[r][c] }

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%-*s", widths[i], cell))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row. Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(strconv.Quote(cell))
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// formatFloat renders a float compactly: integers without a decimal point,
// other values with three decimals.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}
