// Package stats provides the lightweight statistics and reporting utilities
// used by the benchmark harness and the experiment drivers: streaming
// summaries (mean / standard deviation / extremes), integer histograms,
// time-series recorders for the healing experiment, and plain-text / CSV table
// rendering for regenerating the paper's figures as terminal output.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a streaming accumulator for a scalar metric. It tracks count,
// sum, sum of squares, minimum and maximum, which is sufficient for every
// aggregate reported in the paper's Figure 2.
type Summary struct {
	count      uint64
	sum        float64
	sumSquares float64
	min        float64
	max        float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	if s.count == 0 {
		s.min = x
		s.max = x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.count++
	s.sum += x
	s.sumSquares += x * x
}

// AddN folds n identical observations into the summary.
func (s *Summary) AddN(x float64, n uint64) {
	if n == 0 {
		return
	}
	if s.count == 0 {
		s.min = x
		s.max = x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.count += n
	s.sum += x * float64(n)
	s.sumSquares += x * x * float64(n)
}

// Merge folds another summary into s.
func (s *Summary) Merge(other Summary) {
	if other.count == 0 {
		return
	}
	if s.count == 0 {
		*s = other
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.count += other.count
	s.sum += other.sum
	s.sumSquares += other.sumSquares
}

// Count returns the number of observations.
func (s Summary) Count() uint64 { return s.count }

// Sum returns the sum of observations.
func (s Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s Summary) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Variance returns the population variance, or 0 with no observations.
func (s Summary) Variance() float64 {
	if s.count == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSquares/float64(s.count) - m*m
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 with no observations.
func (s Summary) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 with no observations.
func (s Summary) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f stddev=%.3f min=%.3f max=%.3f",
		s.count, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Histogram counts integer observations (e.g. probes per Get). Values above
// the configured bound are clamped into the final overflow bucket.
type Histogram struct {
	buckets  []uint64
	overflow uint64
	total    uint64
}

// NewHistogram returns a histogram for values in [0, maxValue]; larger values
// are counted in an overflow bucket. It panics if maxValue is negative.
func NewHistogram(maxValue int) *Histogram {
	if maxValue < 0 {
		panic(fmt.Sprintf("stats: negative histogram bound %d", maxValue))
	}
	return &Histogram{buckets: make([]uint64, maxValue+1)}
}

// Add records one observation of value v (negative values are clamped to 0).
func (h *Histogram) Add(v int) {
	h.AddN(v, 1)
}

// AddN records n observations of value v.
func (h *Histogram) AddN(v int, n uint64) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		h.overflow += n
	} else {
		h.buckets[v] += n
	}
	h.total += n
}

// Merge folds another histogram into h. The histograms may have different
// bounds; counts that do not fit are added to the overflow bucket.
func (h *Histogram) Merge(other *Histogram) {
	for v, c := range other.buckets {
		if c > 0 {
			h.AddN(v, c)
		}
	}
	if other.overflow > 0 {
		h.overflow += other.overflow
		h.total += other.overflow
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the number of observations equal to v, or the overflow count
// if v exceeds the bound.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 {
		return 0
	}
	if v >= len(h.buckets) {
		return h.overflow
	}
	return h.buckets[v]
}

// Overflow returns the number of observations above the configured bound.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Max returns the largest observed value within the bound, or -1 if the
// histogram is empty inside the bound.
func (h *Histogram) Max() int {
	for v := len(h.buckets) - 1; v >= 0; v-- {
		if h.buckets[v] > 0 {
			return v
		}
	}
	return -1
}

// Quantile returns the smallest value v such that at least q (0 < q <= 1) of
// the observations are <= v. Overflowed observations count as the bound+1.
// It returns -1 for an empty histogram.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return -1
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for v, c := range h.buckets {
		cum += c
		if cum >= target {
			return v
		}
	}
	return len(h.buckets)
}

// Mean returns the mean of the observations within the bound (overflow
// observations are treated as bound+1, a lower bound on the true mean).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.buckets {
		sum += float64(v) * float64(c)
	}
	sum += float64(len(h.buckets)) * float64(h.overflow)
	return sum / float64(h.total)
}

// Buckets returns a copy of the in-bound bucket counts.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// Distribution is a set of labeled non-negative weights that sum to a total,
// used to report batch occupancy percentages in the healing experiment.
type Distribution struct {
	Labels []string
	Values []float64
}

// Normalized returns the values scaled so they sum to 1. A zero-sum
// distribution is returned unchanged.
func (d Distribution) Normalized() []float64 {
	var sum float64
	for _, v := range d.Values {
		sum += v
	}
	out := make([]float64, len(d.Values))
	if sum == 0 {
		copy(out, d.Values)
		return out
	}
	for i, v := range d.Values {
		out[i] = v / sum
	}
	return out
}

// Percentile computes the p-th percentile (0..100) of a slice of float64
// samples using nearest-rank. It returns 0 for an empty slice.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
