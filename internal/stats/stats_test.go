package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Fatalf("Sum = %v, want 40", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Count() != 0 {
		t.Fatalf("empty summary not all-zero: %+v", s)
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	for i := 0; i < 5; i++ {
		a.Add(3)
	}
	b.AddN(3, 5)
	if a != b {
		t.Fatalf("AddN mismatch: %+v vs %+v", a, b)
	}
	b.AddN(7, 0)
	if a != b {
		t.Fatal("AddN with zero count changed the summary")
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, whole Summary
	for _, x := range []float64{1, 2, 3} {
		a.Add(x)
		whole.Add(x)
	}
	for _, x := range []float64{10, 20} {
		b.Add(x)
		whole.Add(x)
	}
	a.Merge(b)
	if a != whole {
		t.Fatalf("Merge mismatch: %+v vs %+v", a, whole)
	}

	var empty Summary
	cp := whole
	cp.Merge(empty)
	if cp != whole {
		t.Fatal("merging an empty summary changed the receiver")
	}
	empty.Merge(whole)
	if empty != whole {
		t.Fatal("merging into an empty summary did not copy")
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(3)
	out := s.String()
	for _, want := range []string{"n=2", "mean=2.000", "min=1.000", "max=3.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() = %q missing %q", out, want)
		}
	}
}

func TestQuickSummaryMergeEquivalence(t *testing.T) {
	prop := func(rawA, rawB []uint8) bool {
		var a, b, whole Summary
		for _, x := range rawA {
			a.Add(float64(x))
			whole.Add(float64(x))
		}
		for _, x := range rawB {
			b.Add(float64(x))
			whole.Add(float64(x))
		}
		a.Merge(b)
		return a.Count() == whole.Count() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(a.StdDev()-whole.StdDev()) < 1e-9 &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{1, 1, 2, 3, 3, 3, 10} {
		h.Add(v)
	}
	h.Add(25) // overflow
	if h.Total() != 8 {
		t.Fatalf("Total = %d, want 8", h.Total())
	}
	if h.Count(3) != 3 {
		t.Fatalf("Count(3) = %d, want 3", h.Count(3))
	}
	if h.Count(25) != 1 || h.Overflow() != 1 {
		t.Fatalf("overflow accounting wrong: Count(25)=%d Overflow=%d", h.Count(25), h.Overflow())
	}
	if h.Count(-1) != 0 {
		t.Fatalf("Count(-1) = %d, want 0", h.Count(-1))
	}
	if h.Max() != 10 {
		t.Fatalf("Max = %d, want 10", h.Max())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(100)
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	cases := map[float64]int{0.01: 1, 0.5: 50, 0.9: 90, 1.0: 100}
	for q, want := range cases {
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %d, want %d", q, got, want)
		}
	}
	empty := NewHistogram(4)
	if empty.Quantile(0.5) != -1 {
		t.Fatal("Quantile of empty histogram should be -1")
	}
	if empty.Max() != -1 {
		t.Fatal("Max of empty histogram should be -1")
	}
}

func TestHistogramQuantileClamping(t *testing.T) {
	h := NewHistogram(10)
	h.Add(5)
	if got := h.Quantile(-0.5); got != 5 {
		t.Fatalf("Quantile(-0.5) = %d, want 5", got)
	}
	if got := h.Quantile(2.0); got != 5 {
		t.Fatalf("Quantile(2.0) = %d, want 5", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(5)
	b := NewHistogram(8)
	a.Add(1)
	a.Add(9) // overflow for a
	b.Add(7)
	b.Add(3)
	a.Merge(b)
	if a.Total() != 4 {
		t.Fatalf("Total = %d, want 4", a.Total())
	}
	if a.Count(1) != 1 || a.Count(3) != 1 {
		t.Fatal("in-range counts lost in merge")
	}
	// b's 7 exceeds a's bound of 5, so it lands in overflow alongside a's 9.
	if a.Overflow() != 2 {
		t.Fatalf("Overflow = %d, want 2", a.Overflow())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	h.Add(2)
	h.Add(4)
	if got := h.Mean(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Mean = %v, want 3", got)
	}
	if NewHistogram(3).Mean() != 0 {
		t.Fatal("Mean of empty histogram should be 0")
	}
}

func TestHistogramNegativeBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(-1)
}

func TestHistogramBucketsCopy(t *testing.T) {
	h := NewHistogram(3)
	h.Add(2)
	buckets := h.Buckets()
	buckets[2] = 99
	if h.Count(2) != 1 {
		t.Fatal("Buckets() exposed internal storage")
	}
}

func TestQuickHistogramTotals(t *testing.T) {
	prop := func(values []uint8) bool {
		h := NewHistogram(64)
		for _, v := range values {
			h.Add(int(v))
		}
		var sum uint64
		for _, c := range h.Buckets() {
			sum += c
		}
		return sum+h.Overflow() == h.Total() && h.Total() == uint64(len(values))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionNormalized(t *testing.T) {
	d := Distribution{Labels: []string{"a", "b"}, Values: []float64{1, 3}}
	norm := d.Normalized()
	if math.Abs(norm[0]-0.25) > 1e-12 || math.Abs(norm[1]-0.75) > 1e-12 {
		t.Fatalf("Normalized = %v", norm)
	}
	zero := Distribution{Labels: []string{"a"}, Values: []float64{0}}
	if got := zero.Normalized(); got[0] != 0 {
		t.Fatalf("Normalized zero distribution = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	cases := map[float64]float64{0: 1, 20: 1, 50: 3, 100: 5, 150: 5, -10: 1}
	for p, want := range cases {
		if got := Percentile(samples, p); got != want {
			t.Errorf("Percentile(%v) = %v, want %v", p, got, want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile of empty slice should be 0")
	}
	// Input must not be reordered.
	if samples[0] != 5 || samples[4] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries("batch0", "batch1")
	ts.Append(0, 0.5, 0.1)
	ts.Append(4000, 0.4, 0.2)
	if ts.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ts.Len())
	}
	if ts.Step(1) != 4000 {
		t.Fatalf("Step(1) = %d, want 4000", ts.Step(1))
	}
	row := ts.Row(0)
	if row[0] != 0.5 || row[1] != 0.1 {
		t.Fatalf("Row(0) = %v", row)
	}
	row[0] = 99
	if ts.Row(0)[0] != 0.5 {
		t.Fatal("Row exposed internal storage")
	}
	col, ok := ts.Column("batch1")
	if !ok || len(col) != 2 || col[1] != 0.2 {
		t.Fatalf("Column(batch1) = %v, %v", col, ok)
	}
	if _, ok := ts.Column("missing"); ok {
		t.Fatal("Column(missing) reported ok")
	}
	cols := ts.Columns()
	cols[0] = "mutated"
	if ts.Columns()[0] != "batch0" {
		t.Fatal("Columns exposed internal storage")
	}
}

func TestTimeSeriesAppendPanicsOnArity(t *testing.T) {
	ts := NewTimeSeries("a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ts.Append(0, 1.0)
}

func TestTimeSeriesTable(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Append(10, 1.5)
	tbl := ts.Table("series")
	out := tbl.String()
	for _, want := range []string{"series", "step", "x", "10", "1.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output %q missing %q", out, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Figure 2a", "threads", "levelarray", "random")
	tbl.AddRow("1", "100", "120")
	tbl.AddFloatRow("2", 200.5, 240)
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tbl.NumRows())
	}
	if tbl.Title() != "Figure 2a" {
		t.Fatalf("Title = %q", tbl.Title())
	}
	if got := tbl.Cell(1, 1); got != "200.500" {
		t.Fatalf("Cell(1,1) = %q, want 200.500", got)
	}
	out := tbl.String()
	if !strings.Contains(out, "threads") || !strings.Contains(out, "200.500") {
		t.Fatalf("String missing content: %q", out)
	}
	// Column alignment: header row and separator row have equal lengths.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("unexpected line count %d", len(lines))
	}
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("header and separator widths differ: %q vs %q", lines[1], lines[2])
	}
}

func TestTableRowPadding(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("1")
	tbl.AddRow("1", "2", "3", "4")
	if got := tbl.Cell(0, 2); got != "" {
		t.Fatalf("short row not padded: %q", got)
	}
	if got := tbl.Cell(1, 2); got != "3" {
		t.Fatalf("long row mangled: %q", got)
	}
	headers := tbl.Headers()
	headers[0] = "mutated"
	if tbl.Headers()[0] != "a" {
		t.Fatal("Headers exposed internal storage")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "name", "value")
	tbl.AddRow("plain", "1")
	tbl.AddRow("with,comma", "2")
	csv := tbl.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if lines[0] != "name,value" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "\"with,comma\"") {
		t.Fatalf("CSV did not quote comma cell: %q", lines[2])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		-3:     "-3",
		2.5:    "2.500",
		0:      "0",
		1.2344: "1.234",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
