package stats

import "fmt"

// TimeSeries records a sequence of (step, values...) samples with a fixed set
// of column labels. The healing experiment (Figure 3) uses it to record the
// per-batch occupancy distribution every snapshot interval; the throughput
// experiments use it to record per-thread-count series.
type TimeSeries struct {
	columns []string
	steps   []uint64
	rows    [][]float64
}

// NewTimeSeries returns an empty time series with the given column labels.
func NewTimeSeries(columns ...string) *TimeSeries {
	cols := make([]string, len(columns))
	copy(cols, columns)
	return &TimeSeries{columns: cols}
}

// Columns returns a copy of the column labels.
func (ts *TimeSeries) Columns() []string {
	out := make([]string, len(ts.columns))
	copy(out, ts.columns)
	return out
}

// Append records one sample. It panics if the number of values does not match
// the number of columns, which always indicates a programming error in the
// experiment driver.
func (ts *TimeSeries) Append(step uint64, values ...float64) {
	if len(values) != len(ts.columns) {
		panic(fmt.Sprintf("stats: sample has %d values, series has %d columns",
			len(values), len(ts.columns)))
	}
	row := make([]float64, len(values))
	copy(row, values)
	ts.steps = append(ts.steps, step)
	ts.rows = append(ts.rows, row)
}

// Len returns the number of recorded samples.
func (ts *TimeSeries) Len() int { return len(ts.rows) }

// Step returns the step value of sample i.
func (ts *TimeSeries) Step(i int) uint64 { return ts.steps[i] }

// Row returns a copy of the values of sample i.
func (ts *TimeSeries) Row(i int) []float64 {
	out := make([]float64, len(ts.rows[i]))
	copy(out, ts.rows[i])
	return out
}

// Column returns a copy of the series for the named column. The second return
// value is false if the column does not exist.
func (ts *TimeSeries) Column(name string) ([]float64, bool) {
	idx := -1
	for i, c := range ts.columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}
	out := make([]float64, len(ts.rows))
	for i, row := range ts.rows {
		out[i] = row[idx]
	}
	return out, true
}

// Table converts the series into a Table with "step" as the first column.
func (ts *TimeSeries) Table(title string) *Table {
	tbl := NewTable(title, append([]string{"step"}, ts.columns...)...)
	for i, row := range ts.rows {
		cells := make([]string, 0, len(row)+1)
		cells = append(cells, fmt.Sprintf("%d", ts.steps[i]))
		for _, v := range row {
			cells = append(cells, formatFloat(v))
		}
		tbl.AddRow(cells...)
	}
	return tbl
}
