package experiments

import (
	"fmt"

	"github.com/levelarray/levelarray/internal/harness"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/stats"
	"github.com/levelarray/levelarray/internal/workload"
)

// PrefillSweepConfig parameterizes the pre-fill sweep that backs the in-text
// claim "the results are similar for pre-fill percentages between 0% and
// 90%".
type PrefillSweepConfig struct {
	CommonConfig
	// Threads is the number of worker threads for every point of the sweep.
	Threads int
	// Percents are the pre-fill percentages to sweep. Empty selects the
	// paper's 0..90 range.
	Percents []int
}

// SweepResult is the generic result of a one-dimensional sweep: one harness
// run per (algorithm, sweep point), plus rendered tables.
type SweepResult struct {
	// Points are the sweep's x-axis values.
	Points []int
	// Runs maps algorithm -> one result per point.
	Runs map[registry.Algorithm][]harness.Result
	// AvgTrials, WorstCase and Throughput are the rendered tables.
	AvgTrials  *stats.Table
	WorstCase  *stats.Table
	Throughput *stats.Table
}

// Tables returns the rendered tables.
func (r SweepResult) Tables() []*stats.Table {
	return []*stats.Table{r.AvgTrials, r.WorstCase, r.Throughput}
}

// PrefillSweep runs the pre-fill percentage sweep.
func PrefillSweep(cfg PrefillSweepConfig) (SweepResult, error) {
	cfg.CommonConfig = cfg.CommonConfig.withDefaults()
	if cfg.Threads == 0 {
		cfg.Threads = 8
	}
	if len(cfg.Percents) == 0 {
		cfg.Percents = []int{0, 25, 50, 75, 90}
	}
	runOne := func(algo registry.Algorithm, percent int) (harness.Result, error) {
		return harness.Run(harness.Config{
			Algorithm: algo,
			Workload: workload.Spec{
				Threads:        cfg.Threads,
				EmulatedN:      cfg.Threads * cfg.EmulationFactor,
				PrefillPercent: percent,
			},
			SizeFactor:      cfg.SizeFactor,
			RoundsPerThread: cfg.RoundsPerThread,
			Duration:        cfg.Duration,
			RNG:             cfg.RNG,
			Seed:            cfg.Seed,
		})
	}
	return runSweep("pre-fill %", cfg.Algorithms, cfg.Percents, runOne)
}

// SizeSweepConfig parameterizes the array-size sweep backing the in-text
// claim that the behaviour holds for L between 2N and 4N.
type SizeSweepConfig struct {
	CommonConfig
	// Threads is the number of worker threads for every point of the sweep.
	Threads int
	// Factors are the L/N size factors to sweep. Empty selects {2, 3, 4}.
	Factors []int
}

// SizeSweep runs the array-size sweep.
func SizeSweep(cfg SizeSweepConfig) (SweepResult, error) {
	cfg.CommonConfig = cfg.CommonConfig.withDefaults()
	if cfg.Threads == 0 {
		cfg.Threads = 8
	}
	if len(cfg.Factors) == 0 {
		cfg.Factors = []int{2, 3, 4}
	}
	runOne := func(algo registry.Algorithm, factor int) (harness.Result, error) {
		return harness.Run(harness.Config{
			Algorithm: algo,
			Workload: workload.Spec{
				Threads:        cfg.Threads,
				EmulatedN:      cfg.Threads * cfg.EmulationFactor,
				PrefillPercent: cfg.PrefillPercent,
			},
			SizeFactor:      float64(factor),
			RoundsPerThread: cfg.RoundsPerThread,
			Duration:        cfg.Duration,
			RNG:             cfg.RNG,
			Seed:            cfg.Seed,
		})
	}
	return runSweep("L/N", cfg.Algorithms, cfg.Factors, runOne)
}

// runSweep executes a one-dimensional sweep and renders its tables.
func runSweep(axis string, algorithms []registry.Algorithm, points []int,
	runOne func(registry.Algorithm, int) (harness.Result, error)) (SweepResult, error) {

	result := SweepResult{
		Points: points,
		Runs:   make(map[registry.Algorithm][]harness.Result, len(algorithms)),
	}
	for _, algo := range algorithms {
		for _, point := range points {
			run, err := runOne(algo, point)
			if err != nil {
				return SweepResult{}, fmt.Errorf("experiments: sweep %s=%d %s: %w", axis, point, algo, err)
			}
			result.Runs[algo] = append(result.Runs[algo], run)
		}
	}
	headers := []string{axis}
	for _, algo := range algorithms {
		headers = append(headers, algo.String())
	}
	makeTable := func(title string, metric func(harness.Result) float64) *stats.Table {
		tbl := stats.NewTable(title, headers...)
		for i, point := range points {
			values := make([]float64, 0, len(algorithms))
			for _, algo := range algorithms {
				values = append(values, metric(result.Runs[algo][i]))
			}
			tbl.AddFloatRow(fmt.Sprintf("%d", point), values...)
		}
		return tbl
	}
	result.AvgTrials = makeTable("Average trials per Get vs "+axis,
		func(r harness.Result) float64 { return r.Stats.Mean() })
	result.WorstCase = makeTable("Worst-case trials vs "+axis,
		func(r harness.Result) float64 { return float64(r.WorstCase()) })
	result.Throughput = makeTable("Total operations vs "+axis,
		func(r harness.Result) float64 { return float64(r.Ops) })
	return result, nil
}

// DeterministicComparisonConfig parameterizes the comparison against the
// deterministic left-to-right scan, which the paper excludes from Figure 2
// because it is at least two orders of magnitude slower on average.
type DeterministicComparisonConfig struct {
	CommonConfig
	// Threads is the number of worker threads.
	Threads int
}

// DeterministicComparisonResult reports the average-cost ratio between the
// deterministic baseline and every randomized algorithm.
type DeterministicComparisonResult struct {
	Runs  map[registry.Algorithm]harness.Result
	Table *stats.Table
}

// DeterministicComparison runs all four algorithms at one configuration and
// reports average trials, worst case, and the deterministic/LevelArray ratio.
func DeterministicComparison(cfg DeterministicComparisonConfig) (DeterministicComparisonResult, error) {
	cfg.CommonConfig = cfg.CommonConfig.withDefaults()
	if cfg.Threads == 0 {
		cfg.Threads = 4
	}
	algorithms := registry.All()
	runs := make(map[registry.Algorithm]harness.Result, len(algorithms))
	for _, algo := range algorithms {
		run, err := harness.Run(harness.Config{
			Algorithm: algo,
			Workload: workload.Spec{
				Threads:        cfg.Threads,
				EmulatedN:      cfg.Threads * cfg.EmulationFactor,
				PrefillPercent: cfg.PrefillPercent,
			},
			SizeFactor:      cfg.SizeFactor,
			RoundsPerThread: cfg.RoundsPerThread,
			Duration:        cfg.Duration,
			RNG:             cfg.RNG,
			Seed:            cfg.Seed,
		})
		if err != nil {
			return DeterministicComparisonResult{}, fmt.Errorf("experiments: deterministic comparison %s: %w", algo, err)
		}
		runs[algo] = run
	}
	tbl := stats.NewTable("Deterministic baseline comparison",
		"algorithm", "avg trials", "worst case", "avg vs LevelArray")
	base := runs[registry.LevelArray].Stats.Mean()
	for _, algo := range algorithms {
		run := runs[algo]
		ratio := 0.0
		if base > 0 {
			ratio = run.Stats.Mean() / base
		}
		tbl.AddRow(algo.String(),
			fmt.Sprintf("%.3f", run.Stats.Mean()),
			fmt.Sprintf("%d", run.WorstCase()),
			fmt.Sprintf("%.1fx", ratio))
	}
	return DeterministicComparisonResult{Runs: runs, Table: tbl}, nil
}
