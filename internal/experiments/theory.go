package experiments

import (
	"fmt"
	"math"

	"github.com/levelarray/levelarray/internal/adversary"
	"github.com/levelarray/levelarray/internal/balance"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/sched"
	"github.com/levelarray/levelarray/internal/spec"
	"github.com/levelarray/levelarray/internal/stats"
)

// LogLogConfig parameterizes the O(log log n) scaling experiment validating
// Theorem 1: as n grows, the worst-case number of probes of any Get in a
// polynomial-length execution grows like log log n (i.e. barely at all),
// while the average stays constant.
type LogLogConfig struct {
	// Capacities is the sweep over n. Empty selects powers of two from 16 to
	// 4096.
	Capacities []int
	// RoundsPerProcess is the number of Get/Free pairs each process performs
	// (the execution length is therefore polynomial in n). Zero selects 32.
	RoundsPerProcess int
	// OneShot restricts every process to a single Get (the regime of the
	// prior one-shot analyses the paper extends).
	OneShot bool
	// ProbesPerBatch is the per-batch trial count c. Zero selects 1.
	ProbesPerBatch int
	// Seed drives the schedules and probe choices.
	Seed uint64
	// RNG selects the generator family.
	RNG rng.Kind
}

// withDefaults returns a copy of c with zero values replaced by defaults.
func (c LogLogConfig) withDefaults() LogLogConfig {
	if len(c.Capacities) == 0 {
		c.Capacities = []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	}
	if c.RoundsPerProcess == 0 {
		c.RoundsPerProcess = 32
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// LogLogPoint is one row of the scaling experiment.
type LogLogPoint struct {
	Capacity  int
	Ops       uint64
	Mean      float64
	P99       int
	WorstCase uint64
	// LogLogN is log2(log2(n)), the theoretical growth envelope.
	LogLogN float64
	// Backup is the number of operations that reached the backup array.
	Backup uint64
}

// LogLogResult holds the sweep's measurements and the rendered table.
type LogLogResult struct {
	Points []LogLogPoint
	Table  *stats.Table
}

// LogLogScaling runs the scaling experiment in the step-level simulator under
// a uniformly random oblivious schedule.
func LogLogScaling(cfg LogLogConfig) (LogLogResult, error) {
	cfg = cfg.withDefaults()
	var result LogLogResult
	for _, n := range cfg.Capacities {
		var inputs []sched.Input
		if cfg.OneShot {
			inputs = adversary.OneShotInputs(n)
		} else {
			inputs = adversary.UniformInputs(n, adversary.InputSpec{
				Rounds:        cfg.RoundsPerProcess,
				CallsAfterGet: 1,
			})
		}
		sim, err := sched.New(sched.Config{
			Capacity:       n,
			ProbesPerBatch: cfg.ProbesPerBatch,
			RNG:            cfg.RNG,
			Seed:           cfg.Seed + uint64(n),
			Inputs:         inputs,
		})
		if err != nil {
			return LogLogResult{}, fmt.Errorf("experiments: loglog n=%d: %w", n, err)
		}
		schedule := adversary.UniformRandom(n, cfg.Seed^uint64(n))
		// Generous step budget: every op needs only a handful of steps, but a
		// uniformly random schedule takes a coupon-collector factor to drain
		// the last inputs.
		budget := uint64(n*cfg.RoundsPerProcess*64 + n*256)
		if err := sim.RunUntilDone(schedule, budget); err != nil {
			return LogLogResult{}, fmt.Errorf("experiments: loglog n=%d: %w", n, err)
		}

		merged := sim.MergedStats()
		hist := stats.NewHistogram(64)
		for pid := 0; pid < sim.NumProcesses(); pid++ {
			s := sim.ProcessStats(pid)
			if s.Ops > 0 {
				hist.AddN(int(s.MaxProbes), s.Ops)
			}
		}
		point := LogLogPoint{
			Capacity:  n,
			Ops:       merged.Ops,
			Mean:      merged.Mean(),
			P99:       hist.Quantile(0.99),
			WorstCase: merged.MaxProbes,
			LogLogN:   math.Log2(math.Log2(float64(n))),
			Backup:    merged.BackupOps,
		}
		result.Points = append(result.Points, point)
	}

	tbl := stats.NewTable("Worst-case Get complexity vs n (Theorem 1: O(log log n))",
		"n", "ops", "avg trials", "p99 worst/proc", "worst case", "log2 log2 n", "backup uses")
	for _, p := range result.Points {
		tbl.AddRow(
			fmt.Sprintf("%d", p.Capacity),
			fmt.Sprintf("%d", p.Ops),
			fmt.Sprintf("%.3f", p.Mean),
			fmt.Sprintf("%d", p.P99),
			fmt.Sprintf("%d", p.WorstCase),
			fmt.Sprintf("%.2f", p.LogLogN),
			fmt.Sprintf("%d", p.Backup),
		)
	}
	result.Table = tbl
	return result, nil
}

// BalanceCheckConfig parameterizes the adversarial-balance experiment
// validating Proposition 3 and Theorem 2: under long executions driven by a
// variety of oblivious schedules, the array stays fully balanced essentially
// always, and Get operations stay regular (the probability of reaching deep
// batches decays doubly exponentially).
type BalanceCheckConfig struct {
	// Capacity is n. Zero selects 512.
	Capacity int
	// RoundsPerProcess is the number of Get/Free pairs per process. Zero
	// selects 64.
	RoundsPerProcess int
	// SampleEvery is the number of steps between balance samples. Zero
	// selects 64.
	SampleEvery int
	// ProbesPerBatch is the per-batch trial count c. The analysis assumes a
	// larger constant than the implementation's 1; zero selects 2 as a
	// middle ground so the experiment measures the analysis's regime while
	// staying close to practice.
	ProbesPerBatch int
	// Seed drives the schedules and probe choices.
	Seed uint64
	// RNG selects the generator family.
	RNG rng.Kind
}

// withDefaults returns a copy of c with zero values replaced by defaults.
func (c BalanceCheckConfig) withDefaults() BalanceCheckConfig {
	if c.Capacity == 0 {
		c.Capacity = 512
	}
	if c.RoundsPerProcess == 0 {
		c.RoundsPerProcess = 64
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 64
	}
	if c.ProbesPerBatch == 0 {
		c.ProbesPerBatch = 2
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// BalanceCheckRow is the outcome of one schedule.
type BalanceCheckRow struct {
	Schedule        string
	Samples         uint64
	BalancedSamples uint64
	ReachFractions  []float64 // fraction of Gets that stopped in batch j (backup last)
	SpecViolations  int
	WorstCase       uint64
}

// BalancedFraction returns the fraction of samples at which the array was
// fully balanced.
func (r BalanceCheckRow) BalancedFraction() float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.BalancedSamples) / float64(r.Samples)
}

// BalanceCheckResult holds one row per schedule and the rendered tables.
type BalanceCheckResult struct {
	Rows       []BalanceCheckRow
	Table      *stats.Table
	ReachTable *stats.Table
}

// BalanceCheck runs long executions under several oblivious schedules and
// measures how often the array is fully balanced, the distribution of the
// batch each Get stops in, and spec-checker violations (always zero).
func BalanceCheck(cfg BalanceCheckConfig) (BalanceCheckResult, error) {
	cfg = cfg.withDefaults()
	n := cfg.Capacity

	schedules := []struct {
		name  string
		sched sched.Schedule
	}{
		{"round-robin", adversary.RoundRobin(n)},
		{"uniform-random", adversary.UniformRandom(n, cfg.Seed)},
		{"bursty", adversary.Bursty(n, 64, cfg.Seed)},
		{"skewed", adversary.Skewed(n, n/2, cfg.Seed)},
		{"partitioned", adversary.Partitioned(n, 1024)},
	}

	var result BalanceCheckResult
	var layoutBatches int
	for _, entry := range schedules {
		inputs := adversary.JitteredInputs(n, cfg.RoundsPerProcess, 3, cfg.Seed)
		sim, err := sched.New(sched.Config{
			Capacity:       n,
			ProbesPerBatch: cfg.ProbesPerBatch,
			RNG:            cfg.RNG,
			Seed:           cfg.Seed,
			Inputs:         inputs,
			RecordTrace:    true,
		})
		if err != nil {
			return BalanceCheckResult{}, fmt.Errorf("experiments: balance check: %w", err)
		}
		layoutBatches = sim.Layout().NumBatches()

		row := BalanceCheckRow{Schedule: entry.name}
		budget := uint64(n * cfg.RoundsPerProcess * 128)
		_, err = sim.RunWithObserver(entry.sched, budget, func(step uint64) bool {
			if step%uint64(cfg.SampleEvery) == 0 {
				row.Samples++
				if balance.FullyBalanced(sim.Layout(), sim.Occupancy()) {
					row.BalancedSamples++
				}
			}
			return true
		})
		if err != nil {
			return BalanceCheckResult{}, fmt.Errorf("experiments: balance check %s: %w", entry.name, err)
		}

		merged := sim.MergedStats()
		row.WorstCase = merged.MaxProbes
		hist := sim.BatchHistogram()
		var totalGets uint64
		for _, c := range hist {
			totalGets += c
		}
		row.ReachFractions = make([]float64, len(hist))
		for j, c := range hist {
			if totalGets > 0 {
				row.ReachFractions[j] = float64(c) / float64(totalGets)
			}
		}
		row.SpecViolations = len(spec.Check(sim.Trace()))
		result.Rows = append(result.Rows, row)
	}

	tbl := stats.NewTable("Array balance under oblivious adversarial schedules",
		"schedule", "samples", "balanced %", "worst case", "spec violations")
	for _, row := range result.Rows {
		tbl.AddRow(row.Schedule,
			fmt.Sprintf("%d", row.Samples),
			fmt.Sprintf("%.1f", row.BalancedFraction()*100),
			fmt.Sprintf("%d", row.WorstCase),
			fmt.Sprintf("%d", row.SpecViolations))
	}
	result.Table = tbl

	maxBatches := layoutBatches + 1
	if maxBatches > 6 {
		maxBatches = 6
	}
	headers := []string{"schedule"}
	for j := 0; j < maxBatches; j++ {
		headers = append(headers, fmt.Sprintf("stop in b%d %%", j))
	}
	reach := stats.NewTable("Distribution of the batch each Get stops in", headers...)
	for _, row := range result.Rows {
		cells := []string{row.Schedule}
		for j := 0; j < maxBatches && j < len(row.ReachFractions); j++ {
			cells = append(cells, fmt.Sprintf("%.2f", row.ReachFractions[j]*100))
		}
		reach.AddRow(cells...)
	}
	result.ReachTable = reach
	return result, nil
}
