// Package experiments implements, end to end, every experiment in the
// paper's evaluation section (Section 6) plus the theory-validation
// experiments suggested by the analysis (Section 5). Each experiment has a
// configuration struct with sensible scaled-down defaults, a Run function,
// and produces plain-text tables (internal/stats) whose rows and series match
// the corresponding figure or in-text claim.
//
// The experiment inventory, with the paper artifact each one regenerates, is:
//
//   - Fig2            — Figure 2 (throughput, average trials, standard
//     deviation, worst case vs thread count)
//   - Fig3Healing     — Figure 3 (batch occupancy distribution over time from
//     a degraded initial state)
//   - PrefillSweep    — in-text claim that results hold for pre-fill 0%–90%
//   - SizeSweep       — in-text claim that results hold for L between 2N and 4N
//   - DeterministicComparison — in-text claim that the deterministic scan is
//     at least two orders of magnitude more expensive
//   - LongRunStability — in-text claim that worst case stays ≤ 6 probes and
//     the average ≈ 1.75 over hundreds of millions of operations
//   - LogLogScaling   — Theorem 1's O(log log n) worst-case growth, measured
//     in the step-level simulator
//   - BalanceCheck    — Proposition 3 / Theorem 2: the array stays fully
//     balanced under long adversarial schedules
package experiments

import (
	"time"

	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/rng"
)

// Defaults shared by the experiment configurations. The paper's full-scale
// parameters are noted next to each; the defaults here are scaled down so the
// whole suite runs in seconds, and every cmd/ driver exposes flags to restore
// the paper's scale.
const (
	// DefaultEmulationFactor is N/n, the paper's 1000 simulated registrations
	// per thread.
	DefaultEmulationFactor = 1000
	// DefaultPrefillPercent is the paper's 50% pre-fill.
	DefaultPrefillPercent = 50
	// DefaultSizeFactor is the paper's L = 2N.
	DefaultSizeFactor = 2.0
	// DefaultSeed is used when a configuration does not specify one.
	DefaultSeed = 0x1e7e1a88a7
)

// DefaultThreadCounts is the thread-count sweep of Figure 2 (1..80). The
// scaled-down default used by tests and benchmarks covers the same range with
// fewer points.
func DefaultThreadCounts() []int {
	return []int{1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64, 72, 80}
}

// ShortThreadCounts is a reduced sweep for quick runs.
func ShortThreadCounts() []int {
	return []int{1, 2, 4, 8}
}

// CommonConfig carries the options shared by the harness-based experiments.
type CommonConfig struct {
	// Algorithms are the algorithms to compare. Empty selects the three
	// randomized algorithms of Figure 2.
	Algorithms []registry.Algorithm
	// EmulationFactor is N/n. Zero selects DefaultEmulationFactor.
	EmulationFactor int
	// PrefillPercent is the pre-fill percentage. Negative selects
	// DefaultPrefillPercent (zero is a meaningful value).
	PrefillPercent int
	// SizeFactor is L/N. Zero selects DefaultSizeFactor.
	SizeFactor float64
	// RoundsPerThread selects deterministic round-based termination. If zero,
	// Duration is used.
	RoundsPerThread int
	// Duration is the wall-clock budget per run when RoundsPerThread is zero.
	Duration time.Duration
	// RNG selects the generator family (zero: Marsaglia xorshift).
	RNG rng.Kind
	// Seed is the base seed. Zero selects DefaultSeed.
	Seed uint64
}

// withDefaults returns a copy of c with zero values replaced by defaults.
func (c CommonConfig) withDefaults() CommonConfig {
	if len(c.Algorithms) == 0 {
		c.Algorithms = registry.Randomized()
	}
	if c.EmulationFactor == 0 {
		c.EmulationFactor = DefaultEmulationFactor
	}
	if c.PrefillPercent < 0 {
		c.PrefillPercent = DefaultPrefillPercent
	}
	if c.SizeFactor == 0 {
		c.SizeFactor = DefaultSizeFactor
	}
	if c.RoundsPerThread == 0 && c.Duration == 0 {
		c.Duration = 200 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}
