package experiments

import (
	"strings"
	"testing"

	"github.com/levelarray/levelarray/internal/registry"
)

func TestApplicationsSmallScale(t *testing.T) {
	res, err := Applications(ApplicationsConfig{
		Workers:      4,
		OpsPerWorker: 300,
		Seed:         3,
	})
	if err != nil {
		t.Fatalf("Applications: %v", err)
	}
	// Four applications × two registry algorithms (the defaults).
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	apps := map[string]bool{}
	for _, row := range res.Rows {
		apps[row.Application] = true
		if row.Registration.Ops == 0 {
			t.Fatalf("%s/%s recorded no registrations", row.Application, row.Algorithm)
		}
		if row.Registration.Mean() < 1 {
			t.Fatalf("%s/%s mean probes %.3f below 1", row.Application, row.Algorithm, row.Registration.Mean())
		}
		if row.Duration <= 0 {
			t.Fatalf("%s/%s duration not recorded", row.Application, row.Algorithm)
		}
	}
	for _, want := range []string{"memory-reclamation", "stm-bank", "flat-combining", "barrier"} {
		if !apps[want] {
			t.Fatalf("application %q missing from results", want)
		}
	}
	out := res.Table.String()
	for _, want := range []string{"application", "registry", "avg probes", "LevelArray", "Deterministic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestApplicationsCustomAlgorithms(t *testing.T) {
	res, err := Applications(ApplicationsConfig{
		Workers:      2,
		OpsPerWorker: 100,
		Algorithms:   []registry.Algorithm{registry.Random},
		Seed:         5,
	})
	if err != nil {
		t.Fatalf("Applications: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Algorithm != registry.Random {
			t.Fatalf("row used algorithm %v", row.Algorithm)
		}
	}
}

func TestApplicationsInvalidConfig(t *testing.T) {
	if _, err := Applications(ApplicationsConfig{Workers: -1, OpsPerWorker: 10}); err == nil {
		t.Fatal("negative workers accepted")
	}
}

// TestApplicationsLevelArrayRegistrationCheaperThanDeterministic verifies the
// end-to-end motivation: inside real clients, registrations through the
// LevelArray cost close to one probe, while the deterministic scan pays for
// the occupied prefix.
func TestApplicationsLevelArrayRegistrationCheaperThanDeterministic(t *testing.T) {
	res, err := Applications(ApplicationsConfig{
		Workers:      8,
		OpsPerWorker: 500,
		Seed:         7,
	})
	if err != nil {
		t.Fatalf("Applications: %v", err)
	}
	means := map[string]map[registry.Algorithm]float64{}
	for _, row := range res.Rows {
		if means[row.Application] == nil {
			means[row.Application] = map[registry.Algorithm]float64{}
		}
		means[row.Application][row.Algorithm] = row.Registration.Mean()
	}
	// The reclamation and STM clients churn registrations constantly under
	// contention, so the gap must be visible there. (The barrier registers
	// only once per participant, so both algorithms are cheap.)
	for _, app := range []string{"memory-reclamation", "stm-bank"} {
		la := means[app][registry.LevelArray]
		det := means[app][registry.Deterministic]
		if la <= 0 || det <= 0 {
			t.Fatalf("%s missing measurements: %v", app, means[app])
		}
		if det < la {
			t.Fatalf("%s: deterministic registration (%.3f probes) cheaper than LevelArray (%.3f)",
				app, det, la)
		}
	}
}
