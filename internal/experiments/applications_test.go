package experiments

import (
	"strings"
	"testing"

	"github.com/levelarray/levelarray/internal/registry"
)

func TestApplicationsSmallScale(t *testing.T) {
	res, err := Applications(ApplicationsConfig{
		Workers:      4,
		OpsPerWorker: 300,
		Seed:         3,
	})
	if err != nil {
		t.Fatalf("Applications: %v", err)
	}
	// Four applications × two registry algorithms (the defaults).
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	apps := map[string]bool{}
	for _, row := range res.Rows {
		apps[row.Application] = true
		if row.Registration.Ops == 0 {
			t.Fatalf("%s/%s recorded no registrations", row.Application, row.Algorithm)
		}
		if row.Registration.Mean() < 1 {
			t.Fatalf("%s/%s mean probes %.3f below 1", row.Application, row.Algorithm, row.Registration.Mean())
		}
		if row.Duration <= 0 {
			t.Fatalf("%s/%s duration not recorded", row.Application, row.Algorithm)
		}
	}
	for _, want := range []string{"memory-reclamation", "stm-bank", "flat-combining", "barrier"} {
		if !apps[want] {
			t.Fatalf("application %q missing from results", want)
		}
	}
	out := res.Table.String()
	for _, want := range []string{"application", "registry", "avg probes", "LevelArray", "Deterministic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestApplicationsCustomAlgorithms(t *testing.T) {
	res, err := Applications(ApplicationsConfig{
		Workers:      2,
		OpsPerWorker: 100,
		Algorithms:   []registry.Algorithm{registry.Random},
		Seed:         5,
	})
	if err != nil {
		t.Fatalf("Applications: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Algorithm != registry.Random {
			t.Fatalf("row used algorithm %v", row.Algorithm)
		}
	}
}

func TestApplicationsInvalidConfig(t *testing.T) {
	if _, err := Applications(ApplicationsConfig{Workers: -1, OpsPerWorker: 10}); err == nil {
		t.Fatal("negative workers accepted")
	}
}

// TestApplicationsLevelArrayRegistrationCheaperThanDeterministic verifies the
// end-to-end motivation: inside real clients, registrations through the
// LevelArray cost close to one probe, while the deterministic scan pays for
// the occupied prefix.
func TestApplicationsLevelArrayRegistrationCheaperThanDeterministic(t *testing.T) {
	res, err := Applications(ApplicationsConfig{
		Workers:      8,
		OpsPerWorker: 500,
		Seed:         7,
	})
	if err != nil {
		t.Fatalf("Applications: %v", err)
	}
	means := map[string]map[registry.Algorithm]float64{}
	for _, row := range res.Rows {
		if means[row.Application] == nil {
			means[row.Application] = map[registry.Algorithm]float64{}
		}
		means[row.Application][row.Algorithm] = row.Registration.Mean()
	}
	// The occupied-prefix cost of the deterministic scan is only guaranteed
	// to materialize where registrations are simultaneously held: the barrier
	// registers every worker concurrently and holds until the barrier trips,
	// so the k-th slot winner must have probed at least k slots (mean at
	// least (W+1)/2), regardless of scheduling. The churn applications
	// (reclamation, STM) register and release per operation, so on a fast
	// substrate their registrations may never overlap and the deterministic
	// scan legitimately finds slot 0 free — there we assert the paper's O(1)
	// claim for the LevelArray instead of a timing-dependent comparison.
	laBarrier := means["barrier"][registry.LevelArray]
	detBarrier := means["barrier"][registry.Deterministic]
	if laBarrier <= 0 || detBarrier <= 0 {
		t.Fatalf("barrier missing measurements: %v", means["barrier"])
	}
	if detBarrier < 4.5 { // (W+1)/2 with W=8 concurrent holders
		t.Fatalf("barrier: deterministic registration mean %.3f below the guaranteed occupied-prefix cost 4.5", detBarrier)
	}
	if detBarrier <= laBarrier {
		t.Fatalf("barrier: deterministic registration (%.3f probes) not costlier than LevelArray (%.3f)",
			detBarrier, laBarrier)
	}
	for _, app := range []string{"memory-reclamation", "stm-bank", "barrier"} {
		la := means[app][registry.LevelArray]
		if la <= 0 {
			t.Fatalf("%s missing LevelArray measurement: %v", app, means[app])
		}
		if la >= 3 {
			t.Fatalf("%s: LevelArray registration mean %.3f probes, expected close to 1", app, la)
		}
	}
}
