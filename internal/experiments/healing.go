package experiments

import (
	"fmt"

	"github.com/levelarray/levelarray/internal/balance"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/stats"
)

// HealingConfig parameterizes the Figure 3 reproduction: the self-healing
// experiment in which the array starts in an unbalanced state (batch 0 a
// quarter full, batch 1 half full and therefore overcrowded) and ordinary
// register/deregister traffic gradually rebalances it.
type HealingConfig struct {
	// Capacity is n. Zero selects 4096, large enough that batch fractions are
	// smooth; the paper uses the thread count × emulation factor.
	Capacity int
	// Participants is the number of churning participants (each owns one
	// name at a time). Zero selects Capacity/2, matching the paper's ~50%
	// steady-state load.
	Participants int
	// InitialState describes the degraded starting occupancy. Nil selects
	// the paper's Figure 3 state.
	InitialState *balance.DegradedStateSpec
	// SnapshotEvery is the number of completed operations between occupancy
	// snapshots. Zero selects the paper's 4000.
	SnapshotEvery int
	// Snapshots is the number of snapshots to take after the initial state.
	// Zero selects the paper's 8 states (0..7).
	Snapshots int
	// ProbesPerBatch is the LevelArray's per-batch trial count. Zero selects 1.
	ProbesPerBatch int
	// Seed drives every random choice in the experiment.
	Seed uint64
	// RNG selects the generator family.
	RNG rng.Kind
}

// withDefaults returns a copy of c with zero values replaced by defaults.
func (c HealingConfig) withDefaults() HealingConfig {
	if c.Capacity == 0 {
		c.Capacity = 4096
	}
	if c.Participants == 0 {
		c.Participants = c.Capacity / 2
	}
	if c.InitialState == nil {
		state := balance.Fig3InitialState()
		c.InitialState = &state
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 4000
	}
	if c.Snapshots == 0 {
		c.Snapshots = 8
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// validate reports the first problem with the configuration.
func (c HealingConfig) validate() error {
	if c.Capacity < 2 {
		return fmt.Errorf("experiments: healing capacity %d must be at least 2", c.Capacity)
	}
	if c.Participants < 1 || c.Participants > c.Capacity {
		return fmt.Errorf("experiments: healing participants %d must be in [1, %d]", c.Participants, c.Capacity)
	}
	if c.SnapshotEvery < 1 || c.Snapshots < 1 {
		return fmt.Errorf("experiments: healing snapshot parameters must be positive")
	}
	return nil
}

// HealingResult holds the occupancy snapshots (state 0 is the degraded
// initial state) and the rendered distribution table.
type HealingResult struct {
	// Snapshots holds one occupancy snapshot per state, stamped with the
	// number of completed operations.
	Snapshots []balance.Snapshot
	// Healed records, per snapshot, whether the damage described by the
	// initial state has been repaired: the array is balanced up to the
	// deepest batch the initial state degraded. (The paper's Figure 3 shows
	// the distribution converging back to its stable shape; with the
	// implementation's c = 1 probes per batch, the stable shape satisfies
	// the theoretical overcrowding thresholds for the shallow batches that
	// the degraded state perturbs, which is what this records.)
	Healed []bool
	// HealedAfter is the index of the first snapshot at which the damaged
	// batches are no longer overcrowded, or -1 if that never happens within
	// the run.
	HealedAfter int
	// Table renders the per-batch fill fraction of every state (Figure 3's
	// bars).
	Table *stats.Table
}

// Fig3Healing runs the healing experiment.
//
// The degraded initial state is materialized exactly as in the paper: a set
// of participants starts out *holding* badly placed names (via Adopt), so the
// array is unbalanced but every occupied slot has an owner that will
// eventually release it. The remaining participants start unregistered.
// Traffic then proceeds as an arbitrary schedule of Free+Get pairs: at every
// step a uniformly random participant releases its name (if it holds one) and
// immediately re-registers, which is the paper's "typical schedule" of
// register/deregister operations. Snapshots of the per-batch occupancy are
// taken every SnapshotEvery completed operations.
func Fig3Healing(cfg HealingConfig) (HealingResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return HealingResult{}, err
	}

	la, err := core.New(core.Config{
		Capacity:       cfg.Capacity,
		ProbesPerBatch: cfg.ProbesPerBatch,
		RNG:            cfg.RNG,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return HealingResult{}, fmt.Errorf("experiments: healing: %w", err)
	}
	layout := la.Layout()

	// Materialize the degraded state: participants adopt the prescribed
	// badly placed slots until the spec is satisfied or we run out of
	// participants.
	participants := make([]*core.Handle, cfg.Participants)
	for i := range participants {
		participants[i] = la.Handle().(*core.Handle)
	}
	next := 0
	for j, frac := range cfg.InitialState.Fractions {
		if j >= layout.NumBatches() || frac <= 0 {
			continue
		}
		b := layout.Batch(j)
		want := int(frac * float64(b.Size))
		for i := 0; i < want && next < len(participants); i++ {
			if err := participants[next].Adopt(b.Offset + i); err != nil {
				return HealingResult{}, fmt.Errorf("experiments: healing adopt: %w", err)
			}
			next++
		}
	}

	// The healing criterion: the batches perturbed by the degraded initial
	// state are no longer overcrowded.
	damagedUpTo := len(cfg.InitialState.Fractions) - 1
	if damagedUpTo >= layout.NumBatches() {
		damagedUpTo = layout.NumBatches() - 1
	}
	result := HealingResult{HealedAfter: -1}
	record := func(ops uint64) {
		snap := balance.TakeSnapshot(layout, la.MainSpace(), ops)
		result.Snapshots = append(result.Snapshots, snap)
		healed := balance.BalancedUpTo(layout, snap.Counts, damagedUpTo)
		result.Healed = append(result.Healed, healed)
		if result.HealedAfter < 0 && healed {
			result.HealedAfter = len(result.Snapshots) - 1
		}
	}
	record(0) // state 0: the degraded initial state

	// Churn: a uniformly random participant frees (if holding) and
	// re-registers. Each Free and each Get counts as one operation, matching
	// the paper's operation counting.
	src := rng.New(cfg.RNG, cfg.Seed^0xF19003)
	var ops uint64
	totalOps := uint64(cfg.SnapshotEvery) * uint64(cfg.Snapshots-1)
	nextSnapshot := uint64(cfg.SnapshotEvery)
	for ops < totalOps {
		p := participants[src.Intn(len(participants))]
		if _, holding := p.Name(); holding {
			if err := p.Free(); err != nil {
				return HealingResult{}, fmt.Errorf("experiments: healing free: %w", err)
			}
			ops++
		}
		if ops >= nextSnapshot {
			record(ops)
			nextSnapshot += uint64(cfg.SnapshotEvery)
			if ops >= totalOps {
				break
			}
		}
		if _, err := p.Get(); err != nil {
			return HealingResult{}, fmt.Errorf("experiments: healing get: %w", err)
		}
		ops++
		if ops >= nextSnapshot {
			record(ops)
			nextSnapshot += uint64(cfg.SnapshotEvery)
		}
	}

	result.Table = healingTable(layout, result.Snapshots, result.Healed)
	return result, nil
}

// healingTable renders the snapshots as Figure 3's distribution-over-time
// table: one row per state, one column per batch with the percentage full.
func healingTable(layout *balance.Layout, snapshots []balance.Snapshot, healed []bool) *stats.Table {
	batches := layout.NumBatches()
	if batches > 8 {
		batches = 8 // Figure 3 shows the first batches; deeper ones stay ~0%.
	}
	headers := []string{"state", "ops"}
	for j := 0; j < batches; j++ {
		headers = append(headers, fmt.Sprintf("batch%d %%full", j))
	}
	headers = append(headers, "healed")
	tbl := stats.NewTable("Figure 3: Self-healing — batch distribution over time", headers...)
	for i, snap := range snapshots {
		cells := []string{fmt.Sprintf("%d", i), fmt.Sprintf("%d", snap.Step)}
		for j := 0; j < batches; j++ {
			cells = append(cells, fmt.Sprintf("%.1f", snap.Fractions[j]*100))
		}
		status := "no"
		if i < len(healed) && healed[i] {
			status = "yes"
		}
		cells = append(cells, status)
		tbl.AddRow(cells...)
	}
	return tbl
}
