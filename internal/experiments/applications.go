package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/barrier"
	"github.com/levelarray/levelarray/internal/flatcombine"
	"github.com/levelarray/levelarray/internal/mem"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/stats"
	"github.com/levelarray/levelarray/internal/stm"
)

// ApplicationsConfig parameterizes the end-to-end application experiment: the
// four client systems the paper's introduction motivates (memory reclamation,
// STM, flat combining, barriers) are each run with their registration
// registry backed by a selectable algorithm, so the registration cost the
// LevelArray optimizes can be observed inside realistic clients rather than
// in a microbenchmark.
type ApplicationsConfig struct {
	// Workers is the number of client goroutines per application.
	Workers int
	// OpsPerWorker is the number of application-level operations each worker
	// performs.
	OpsPerWorker int
	// Algorithms are the registry algorithms to compare. Empty selects
	// LevelArray and Deterministic (the most informative contrast).
	Algorithms []registry.Algorithm
	// Seed drives every random choice.
	Seed uint64
}

// withDefaults returns a copy of c with zero values replaced by defaults.
func (c ApplicationsConfig) withDefaults() ApplicationsConfig {
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.OpsPerWorker == 0 {
		c.OpsPerWorker = 2000
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = []registry.Algorithm{registry.LevelArray, registry.Deterministic}
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// ApplicationRow is one (application, registry algorithm) measurement.
type ApplicationRow struct {
	// Application names the client system.
	Application string
	// Algorithm is the registry algorithm backing its registrations.
	Algorithm registry.Algorithm
	// Registration aggregates the probe statistics of every registration the
	// application performed.
	Registration activity.ProbeStats
	// Duration is the wall-clock time of the run.
	Duration time.Duration
}

// ApplicationsResult holds every measurement and the rendered table.
type ApplicationsResult struct {
	Rows  []ApplicationRow
	Table *stats.Table
}

// Applications runs the application experiment.
func Applications(cfg ApplicationsConfig) (ApplicationsResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers < 1 || cfg.OpsPerWorker < 1 {
		return ApplicationsResult{}, fmt.Errorf("experiments: applications config must be positive: %+v", cfg)
	}

	type runner struct {
		name string
		run  func(reg activity.Array) (activity.ProbeStats, error)
	}
	runners := []runner{
		{"memory-reclamation", func(reg activity.Array) (activity.ProbeStats, error) {
			return runReclamation(cfg, reg)
		}},
		{"stm-bank", func(reg activity.Array) (activity.ProbeStats, error) {
			return runSTMBank(cfg, reg)
		}},
		{"flat-combining", func(reg activity.Array) (activity.ProbeStats, error) {
			return runFlatCombining(cfg, reg)
		}},
		{"barrier", func(reg activity.Array) (activity.ProbeStats, error) {
			return runBarrier(cfg, reg)
		}},
	}

	var result ApplicationsResult
	for _, r := range runners {
		for _, algo := range cfg.Algorithms {
			reg, err := registry.New(algo, registry.Options{Capacity: cfg.Workers, Seed: cfg.Seed})
			if err != nil {
				return ApplicationsResult{}, fmt.Errorf("experiments: applications registry %s: %w", algo, err)
			}
			start := time.Now()
			regStats, err := r.run(reg)
			if err != nil {
				return ApplicationsResult{}, fmt.Errorf("experiments: applications %s/%s: %w", r.name, algo, err)
			}
			result.Rows = append(result.Rows, ApplicationRow{
				Application:  r.name,
				Algorithm:    algo,
				Registration: regStats,
				Duration:     time.Since(start),
			})
		}
	}

	tbl := stats.NewTable("Registration cost inside the motivating applications",
		"application", "registry", "registrations", "avg probes", "worst probes", "duration")
	for _, row := range result.Rows {
		tbl.AddRow(row.Application, row.Algorithm.String(),
			fmt.Sprintf("%d", row.Registration.Ops),
			fmt.Sprintf("%.3f", row.Registration.Mean()),
			fmt.Sprintf("%d", row.Registration.MaxProbes),
			row.Duration.Round(time.Millisecond).String())
	}
	result.Table = tbl
	return result, nil
}

// runReclamation drives the Treiber stack + epoch reclamation client.
func runReclamation(cfg ApplicationsConfig, reg activity.Array) (activity.ProbeStats, error) {
	domain, err := mem.NewDomain(mem.Config{MaxThreads: cfg.Workers, Registry: reg})
	if err != nil {
		return activity.ProbeStats{}, err
	}
	stack := mem.NewStack(domain)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		merged   activity.ProbeStats
		firstErr error
	)
	stop := make(chan struct{})
	var reclaimerWG sync.WaitGroup
	reclaimerWG.Add(1)
	go func() {
		defer reclaimerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				domain.Advance()
			}
		}
	}()
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			access := stack.Access()
			for i := 0; i < cfg.OpsPerWorker; i++ {
				if err := access.Push(int64(w*cfg.OpsPerWorker + i)); err != nil {
					recordErr(&mu, &firstErr, err)
					return
				}
				if _, _, err := access.Pop(); err != nil {
					recordErr(&mu, &firstErr, err)
					return
				}
			}
			mu.Lock()
			merged.Merge(access.RegistrationStats())
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(stop)
	reclaimerWG.Wait()
	if firstErr != nil {
		return activity.ProbeStats{}, firstErr
	}
	return merged, nil
}

// recordErr stores the first error observed by a worker.
func recordErr(mu *sync.Mutex, firstErr *error, err error) {
	mu.Lock()
	defer mu.Unlock()
	if *firstErr == nil {
		*firstErr = err
	}
}

// runSTMBank drives the bank-transfer STM client.
func runSTMBank(cfg ApplicationsConfig, reg activity.Array) (activity.ProbeStats, error) {
	system, err := stm.New(stm.Config{MaxThreads: cfg.Workers, Registry: reg})
	if err != nil {
		return activity.ProbeStats{}, err
	}
	const accounts = 32
	vars := make([]*stm.Var, accounts)
	for i := range vars {
		vars[i] = system.NewVar(1000)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		merged   activity.ProbeStats
		firstErr error
	)
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			thread := system.Thread()
			for i := 0; i < cfg.OpsPerWorker; i++ {
				from := vars[(w+i)%accounts]
				to := vars[(w*7+i*3+1)%accounts]
				if from == to {
					continue
				}
				err := thread.Atomically(func(tx *stm.Tx) error {
					fv, err := tx.Read(from)
					if err != nil {
						return err
					}
					tv, err := tx.Read(to)
					if err != nil {
						return err
					}
					tx.Write(from, fv-1)
					tx.Write(to, tv+1)
					return nil
				})
				if err != nil {
					recordErr(&mu, &firstErr, err)
					return
				}
			}
			mu.Lock()
			merged.Merge(thread.RegistrationStats())
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return activity.ProbeStats{}, firstErr
	}
	return merged, nil
}

// runFlatCombining drives the flat-combining queue client.
func runFlatCombining(cfg ApplicationsConfig, reg activity.Array) (activity.ProbeStats, error) {
	queue, err := flatcombine.New(flatcombine.Config{MaxThreads: cfg.Workers, Registry: reg})
	if err != nil {
		return activity.ProbeStats{}, err
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		merged   activity.ProbeStats
		firstErr error
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := queue.Handle()
			// Threads attach and detach around short bursts of operations,
			// which is what makes registration cost matter for flat
			// combining (a thread that never detaches registers only once).
			const burst = 16
			for i := 0; i < cfg.OpsPerWorker; i += burst {
				if err := h.Attach(); err != nil {
					recordErr(&mu, &firstErr, err)
					return
				}
				for j := 0; j < burst && i+j < cfg.OpsPerWorker; j++ {
					if err := h.Enqueue(int64(i + j)); err != nil {
						recordErr(&mu, &firstErr, err)
						return
					}
					if _, _, err := h.Dequeue(); err != nil {
						recordErr(&mu, &firstErr, err)
						return
					}
				}
				if err := h.Detach(); err != nil {
					recordErr(&mu, &firstErr, err)
					return
				}
			}
			mu.Lock()
			merged.Merge(h.RegistrationStats())
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return activity.ProbeStats{}, firstErr
	}
	return merged, nil
}

// runBarrier drives the dynamic-membership barrier client.
func runBarrier(cfg ApplicationsConfig, reg activity.Array) (activity.ProbeStats, error) {
	b, err := barrier.New(barrier.Config{MaxThreads: cfg.Workers, Registry: reg})
	if err != nil {
		return activity.ProbeStats{}, err
	}
	// Rounds are application ops; keep them bounded so the experiment's
	// runtime stays comparable to the other clients.
	rounds := cfg.OpsPerWorker / 10
	if rounds < 1 {
		rounds = 1
	}
	participants := make([]*barrier.Participant, cfg.Workers)
	for i := range participants {
		participants[i] = b.Participant()
		if err := participants[i].Join(); err != nil {
			return activity.ProbeStats{}, err
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		merged   activity.ProbeStats
		firstErr error
	)
	for i := range participants {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := participants[i]
			for r := 0; r < rounds; r++ {
				if _, err := p.Await(); err != nil {
					recordErr(&mu, &firstErr, err)
					return
				}
			}
			mu.Lock()
			merged.Merge(p.RegistrationStats())
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return activity.ProbeStats{}, firstErr
	}
	return merged, nil
}
