package experiments

import (
	"fmt"

	"github.com/levelarray/levelarray/internal/harness"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/stats"
	"github.com/levelarray/levelarray/internal/workload"
)

// Fig2Config parameterizes the Figure 2 reproduction: the four-panel
// comparison of LevelArray, Random and LinearProbing across thread counts.
type Fig2Config struct {
	CommonConfig
	// ThreadCounts is the sweep over n. Empty selects DefaultThreadCounts.
	ThreadCounts []int
}

// Fig2Result holds the per-(algorithm, thread-count) measurements and the
// four rendered panels.
type Fig2Result struct {
	// ThreadCounts is the sweep that was run.
	ThreadCounts []int
	// Runs maps algorithm -> one harness result per thread count.
	Runs map[registry.Algorithm][]harness.Result

	// The four panels of Figure 2.
	Throughput *stats.Table
	AvgTrials  *stats.Table
	StdDev     *stats.Table
	WorstCase  *stats.Table
}

// Tables returns the four panels in figure order.
func (r Fig2Result) Tables() []*stats.Table {
	return []*stats.Table{r.Throughput, r.AvgTrials, r.StdDev, r.WorstCase}
}

// Fig2 runs the Figure 2 experiment.
func Fig2(cfg Fig2Config) (Fig2Result, error) {
	cfg.CommonConfig = cfg.CommonConfig.withDefaults()
	if len(cfg.ThreadCounts) == 0 {
		cfg.ThreadCounts = DefaultThreadCounts()
	}

	result := Fig2Result{
		ThreadCounts: cfg.ThreadCounts,
		Runs:         make(map[registry.Algorithm][]harness.Result, len(cfg.Algorithms)),
	}
	for _, algo := range cfg.Algorithms {
		for _, threads := range cfg.ThreadCounts {
			run, err := harness.Run(harness.Config{
				Algorithm: algo,
				Workload: workload.Spec{
					Threads:        threads,
					EmulatedN:      threads * cfg.EmulationFactor,
					PrefillPercent: cfg.PrefillPercent,
				},
				SizeFactor:      cfg.SizeFactor,
				RoundsPerThread: cfg.RoundsPerThread,
				Duration:        cfg.Duration,
				RNG:             cfg.RNG,
				Seed:            cfg.Seed,
			})
			if err != nil {
				return Fig2Result{}, fmt.Errorf("experiments: fig2 %s n=%d: %w", algo, threads, err)
			}
			result.Runs[algo] = append(result.Runs[algo], run)
		}
	}

	result.Throughput = fig2Panel("Figure 2a: Throughput (total operations)", cfg, result.Runs,
		func(r harness.Result) float64 { return float64(r.Ops) })
	result.AvgTrials = fig2Panel("Figure 2b: Average number of trials per Get", cfg, result.Runs,
		func(r harness.Result) float64 { return r.Stats.Mean() })
	result.StdDev = fig2Panel("Figure 2c: Standard deviation of trials per Get", cfg, result.Runs,
		func(r harness.Result) float64 { return r.Stats.StdDev() })
	result.WorstCase = fig2Panel("Figure 2d: Worst-case number of trials (per-thread worst, averaged)", cfg, result.Runs,
		func(r harness.Result) float64 { return r.MeanWorstCase() })
	return result, nil
}

// fig2Panel renders one panel: rows are thread counts, one column per
// algorithm.
func fig2Panel(title string, cfg Fig2Config, runs map[registry.Algorithm][]harness.Result,
	metric func(harness.Result) float64) *stats.Table {

	headers := []string{"threads"}
	for _, algo := range cfg.Algorithms {
		headers = append(headers, algo.String())
	}
	tbl := stats.NewTable(title, headers...)
	for i, threads := range cfg.ThreadCounts {
		values := make([]float64, 0, len(cfg.Algorithms))
		for _, algo := range cfg.Algorithms {
			values = append(values, metric(runs[algo][i]))
		}
		tbl.AddFloatRow(fmt.Sprintf("%d", threads), values...)
	}
	return tbl
}

// LongRunConfig parameterizes the long-run stability experiment, the in-text
// claim that over 200 million to 2 billion operations at 80 threads the
// LevelArray's worst case stays at 6 probes and its average around 1.75.
type LongRunConfig struct {
	CommonConfig
	// Threads is the number of worker threads (the paper uses 80).
	Threads int
}

// LongRunResult reports the measured stability figures.
type LongRunResult struct {
	Run   harness.Result
	Table *stats.Table
}

// LongRunStability runs a single long LevelArray configuration and reports
// total operations, average, standard deviation, worst case and backup usage.
func LongRunStability(cfg LongRunConfig) (LongRunResult, error) {
	cfg.CommonConfig = cfg.CommonConfig.withDefaults()
	if cfg.Threads == 0 {
		cfg.Threads = 8
	}
	run, err := harness.Run(harness.Config{
		Algorithm: registry.LevelArray,
		Workload: workload.Spec{
			Threads:        cfg.Threads,
			EmulatedN:      cfg.Threads * cfg.EmulationFactor,
			PrefillPercent: cfg.PrefillPercent,
		},
		SizeFactor:      cfg.SizeFactor,
		RoundsPerThread: cfg.RoundsPerThread,
		Duration:        cfg.Duration,
		RNG:             cfg.RNG,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return LongRunResult{}, fmt.Errorf("experiments: long-run stability: %w", err)
	}
	tbl := stats.NewTable("Long-run stability (LevelArray)", "metric", "value")
	tbl.AddRow("threads", fmt.Sprintf("%d", run.Threads))
	tbl.AddRow("operations", fmt.Sprintf("%d", run.Ops))
	tbl.AddRow("avg trials", fmt.Sprintf("%.3f", run.Stats.Mean()))
	tbl.AddRow("stddev trials", fmt.Sprintf("%.3f", run.Stats.StdDev()))
	tbl.AddRow("worst case", fmt.Sprintf("%d", run.WorstCase()))
	tbl.AddRow("backup uses", fmt.Sprintf("%d", run.Stats.BackupOps))
	tbl.AddRow("throughput (ops/s)", fmt.Sprintf("%.0f", run.Throughput()))
	return LongRunResult{Run: run, Table: tbl}, nil
}
