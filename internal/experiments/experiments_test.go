package experiments

import (
	"strings"
	"testing"

	"github.com/levelarray/levelarray/internal/balance"
	"github.com/levelarray/levelarray/internal/registry"
)

func TestFig2SmallScale(t *testing.T) {
	res, err := Fig2(Fig2Config{
		CommonConfig: CommonConfig{
			EmulationFactor: 20,
			RoundsPerThread: 5,
			Seed:            1,
		},
		ThreadCounts: []int{1, 2, 4},
	})
	if err != nil {
		t.Fatalf("Fig2: %v", err)
	}
	if len(res.ThreadCounts) != 3 {
		t.Fatalf("thread counts = %v", res.ThreadCounts)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("expected 3 algorithms, got %d", len(res.Runs))
	}
	for algo, runs := range res.Runs {
		if len(runs) != 3 {
			t.Fatalf("%v has %d runs, want 3", algo, len(runs))
		}
		for i, run := range runs {
			if run.Ops == 0 {
				t.Fatalf("%v run %d completed no operations", algo, i)
			}
		}
	}
	tables := res.Tables()
	if len(tables) != 4 {
		t.Fatalf("expected 4 panels, got %d", len(tables))
	}
	for _, tbl := range tables {
		if tbl.NumRows() != 3 {
			t.Fatalf("panel %q has %d rows, want 3", tbl.Title(), tbl.NumRows())
		}
		out := tbl.String()
		if !strings.Contains(out, "threads") || !strings.Contains(out, "LevelArray") {
			t.Fatalf("panel %q misses headers: %s", tbl.Title(), out)
		}
	}
	// Figure 2's headline shape at this scale: the LevelArray's average cost
	// stays below the deterministic regime and its worst case is small.
	for i := range res.ThreadCounts {
		la := res.Runs[registry.LevelArray][i]
		if la.Stats.Mean() > 3 {
			t.Fatalf("LevelArray mean %.2f too high at %d threads", la.Stats.Mean(), res.ThreadCounts[i])
		}
	}
}

func TestFig2WithExplicitAlgorithms(t *testing.T) {
	res, err := Fig2(Fig2Config{
		CommonConfig: CommonConfig{
			Algorithms:      []registry.Algorithm{registry.LevelArray},
			EmulationFactor: 10,
			RoundsPerThread: 3,
			Seed:            2,
		},
		ThreadCounts: []int{2},
	})
	if err != nil {
		t.Fatalf("Fig2: %v", err)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("expected 1 algorithm, got %d", len(res.Runs))
	}
	headers := res.AvgTrials.Headers()
	if len(headers) != 2 || headers[1] != "LevelArray" {
		t.Fatalf("headers = %v", headers)
	}
}

func TestFig2PropagatesErrors(t *testing.T) {
	_, err := Fig2(Fig2Config{
		CommonConfig: CommonConfig{
			Algorithms:      []registry.Algorithm{registry.Algorithm(99)},
			EmulationFactor: 10,
			RoundsPerThread: 1,
		},
		ThreadCounts: []int{1},
	})
	if err == nil {
		t.Fatal("unknown algorithm did not propagate an error")
	}
}

func TestLongRunStabilitySmallScale(t *testing.T) {
	res, err := LongRunStability(LongRunConfig{
		CommonConfig: CommonConfig{
			EmulationFactor: 50,
			RoundsPerThread: 20,
			Seed:            3,
		},
		Threads: 4,
	})
	if err != nil {
		t.Fatalf("LongRunStability: %v", err)
	}
	if res.Run.Ops == 0 {
		t.Fatal("no operations completed")
	}
	// The paper's claim, scaled down: average below 2 probes, worst case in
	// the single digits, backup never touched.
	if res.Run.Stats.Mean() >= 2.5 {
		t.Fatalf("mean %.2f probes, expected below 2.5", res.Run.Stats.Mean())
	}
	if res.Run.WorstCase() > 10 {
		t.Fatalf("worst case %d probes, expected single digits", res.Run.WorstCase())
	}
	if res.Run.Stats.BackupOps != 0 {
		t.Fatalf("backup used %d times", res.Run.Stats.BackupOps)
	}
	out := res.Table.String()
	for _, want := range []string{"avg trials", "worst case", "operations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q: %s", want, out)
		}
	}
}

func TestPrefillSweepSmallScale(t *testing.T) {
	res, err := PrefillSweep(PrefillSweepConfig{
		CommonConfig: CommonConfig{
			Algorithms:      []registry.Algorithm{registry.LevelArray, registry.Random},
			EmulationFactor: 20,
			RoundsPerThread: 5,
			Seed:            4,
		},
		Threads:  4,
		Percents: []int{0, 50, 90},
	})
	if err != nil {
		t.Fatalf("PrefillSweep: %v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %v", res.Points)
	}
	for _, tbl := range res.Tables() {
		if tbl.NumRows() != 3 {
			t.Fatalf("table %q has %d rows", tbl.Title(), tbl.NumRows())
		}
	}
	// Higher pre-fill means a more loaded array, so the LevelArray's average
	// cost must not decrease from 0% to 90%.
	runs := res.Runs[registry.LevelArray]
	if runs[2].Stats.Mean() < runs[0].Stats.Mean() {
		t.Fatalf("mean at 90%% (%.3f) below mean at 0%% (%.3f)",
			runs[2].Stats.Mean(), runs[0].Stats.Mean())
	}
}

func TestSizeSweepSmallScale(t *testing.T) {
	res, err := SizeSweep(SizeSweepConfig{
		CommonConfig: CommonConfig{
			Algorithms:      []registry.Algorithm{registry.LevelArray},
			EmulationFactor: 20,
			RoundsPerThread: 5,
			Seed:            5,
		},
		Threads: 4,
		Factors: []int{2, 4},
	})
	if err != nil {
		t.Fatalf("SizeSweep: %v", err)
	}
	runs := res.Runs[registry.LevelArray]
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(runs))
	}
	if runs[1].ArraySize <= runs[0].ArraySize {
		t.Fatalf("L=4N array (%d) not larger than L=2N array (%d)",
			runs[1].ArraySize, runs[0].ArraySize)
	}
	// A roomier array can only make registration cheaper (or equal).
	if runs[1].Stats.Mean() > runs[0].Stats.Mean()+0.5 {
		t.Fatalf("mean at L=4N (%.3f) much higher than at L=2N (%.3f)",
			runs[1].Stats.Mean(), runs[0].Stats.Mean())
	}
}

func TestDeterministicComparisonSmallScale(t *testing.T) {
	res, err := DeterministicComparison(DeterministicComparisonConfig{
		CommonConfig: CommonConfig{
			EmulationFactor: 50,
			RoundsPerThread: 5,
			Seed:            6,
		},
		Threads: 2,
	})
	if err != nil {
		t.Fatalf("DeterministicComparison: %v", err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(res.Runs))
	}
	det := res.Runs[registry.Deterministic]
	la := res.Runs[registry.LevelArray]
	// At 50% pre-fill with 50 emulated slots per thread, the deterministic
	// scan pays tens of probes per Get while the LevelArray pays ~1.5; the
	// paper reports a gap of at least two orders of magnitude at full scale.
	if det.Stats.Mean() < 10*la.Stats.Mean() {
		t.Fatalf("deterministic mean %.2f not at least 10x LevelArray mean %.2f",
			det.Stats.Mean(), la.Stats.Mean())
	}
	if res.Table.NumRows() != 4 {
		t.Fatalf("table rows = %d, want 4", res.Table.NumRows())
	}
}

func TestFig3HealingConvergence(t *testing.T) {
	res, err := Fig3Healing(HealingConfig{
		Capacity:      2048,
		SnapshotEvery: 2000,
		Snapshots:     8,
		Seed:          7,
	})
	if err != nil {
		t.Fatalf("Fig3Healing: %v", err)
	}
	if len(res.Snapshots) != 8 {
		t.Fatalf("snapshots = %d, want 8", len(res.Snapshots))
	}
	initial := res.Snapshots[0]
	final := res.Snapshots[len(res.Snapshots)-1]
	// State 0 must be the paper's degraded state: batch 1 overcrowded.
	if res.Healed[0] {
		t.Fatal("initial state is already healed; the experiment is vacuous")
	}
	if initial.Fractions[1] < 0.45 {
		t.Fatalf("initial batch 1 fill %.2f, want ~0.5", initial.Fractions[1])
	}
	// The healing property: batch 1's load strictly decreases and the damage
	// (batch 1 overcrowding) disappears within the run.
	if final.Fractions[1] >= initial.Fractions[1] {
		t.Fatalf("batch 1 fill did not decrease: %.3f -> %.3f",
			initial.Fractions[1], final.Fractions[1])
	}
	if !res.Healed[len(res.Healed)-1] {
		t.Fatalf("damaged batches still overcrowded at the end of the healing run: %v", final)
	}
	if res.HealedAfter < 1 {
		t.Fatalf("HealedAfter = %d, want a positive snapshot index", res.HealedAfter)
	}
	out := res.Table.String()
	for _, want := range []string{"state", "batch1", "healed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("healing table missing %q: %s", want, out)
		}
	}
}

func TestFig3HealingValidation(t *testing.T) {
	if _, err := Fig3Healing(HealingConfig{Capacity: 1}); err == nil {
		t.Fatal("capacity 1 accepted")
	}
	if _, err := Fig3Healing(HealingConfig{Capacity: 64, Participants: 1000}); err == nil {
		t.Fatal("participants above capacity accepted")
	}
	if _, err := Fig3Healing(HealingConfig{Capacity: 64, SnapshotEvery: -1}); err == nil {
		t.Fatal("negative snapshot interval accepted")
	}
}

func TestFig3HealingCustomInitialState(t *testing.T) {
	state := balance.DegradedStateSpec{Fractions: []float64{0.1, 0.9}}
	res, err := Fig3Healing(HealingConfig{
		Capacity:      1024,
		InitialState:  &state,
		SnapshotEvery: 1500,
		Snapshots:     6,
		Seed:          8,
	})
	if err != nil {
		t.Fatalf("Fig3Healing: %v", err)
	}
	if res.Snapshots[0].Fractions[1] < 0.8 {
		t.Fatalf("custom initial state not applied: batch 1 fill %.2f", res.Snapshots[0].Fractions[1])
	}
	final := res.Snapshots[len(res.Snapshots)-1]
	if final.Fractions[1] >= res.Snapshots[0].Fractions[1] {
		t.Fatal("batch 1 fill did not decrease from a 90 percent full start")
	}
}

func TestLogLogScalingSmallScale(t *testing.T) {
	res, err := LogLogScaling(LogLogConfig{
		Capacities:       []int{16, 64, 256},
		RoundsPerProcess: 8,
		Seed:             9,
	})
	if err != nil {
		t.Fatalf("LogLogScaling: %v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Ops == 0 {
			t.Fatalf("n=%d completed no operations", p.Capacity)
		}
		if p.Mean < 1 {
			t.Fatalf("n=%d mean %.3f below 1", p.Capacity, p.Mean)
		}
		// The defining property: the worst case stays far below n (it should
		// track log log n, i.e. single digits at these sizes).
		if p.WorstCase > uint64(p.Capacity/2) {
			t.Fatalf("n=%d worst case %d is linear in n", p.Capacity, p.WorstCase)
		}
	}
	if res.Table.NumRows() != 3 {
		t.Fatalf("table rows = %d", res.Table.NumRows())
	}
}

func TestLogLogScalingOneShot(t *testing.T) {
	res, err := LogLogScaling(LogLogConfig{
		Capacities: []int{64, 256},
		OneShot:    true,
		Seed:       10,
	})
	if err != nil {
		t.Fatalf("LogLogScaling: %v", err)
	}
	for _, p := range res.Points {
		if p.Ops != uint64(p.Capacity) {
			t.Fatalf("one-shot n=%d completed %d ops, want %d", p.Capacity, p.Ops, p.Capacity)
		}
		if p.WorstCase > 16 {
			t.Fatalf("one-shot n=%d worst case %d probes", p.Capacity, p.WorstCase)
		}
	}
}

func TestBalanceCheckSmallScale(t *testing.T) {
	res, err := BalanceCheck(BalanceCheckConfig{
		Capacity:         128,
		RoundsPerProcess: 8,
		SampleEvery:      32,
		Seed:             11,
	})
	if err != nil {
		t.Fatalf("BalanceCheck: %v", err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 schedules", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Samples == 0 {
			t.Fatalf("schedule %s took no samples", row.Schedule)
		}
		if row.SpecViolations != 0 {
			t.Fatalf("schedule %s produced %d spec violations", row.Schedule, row.SpecViolations)
		}
		// With c=2 probes per batch and ~full contention, the array should be
		// fully balanced for the overwhelming majority of samples.
		if row.BalancedFraction() < 0.9 {
			t.Fatalf("schedule %s balanced only %.1f%% of the time",
				row.Schedule, row.BalancedFraction()*100)
		}
		// Regularity shape: the overwhelming majority of Gets stop in batch 0.
		if len(row.ReachFractions) > 0 && row.ReachFractions[0] < 0.5 {
			t.Fatalf("schedule %s: only %.2f of Gets stopped in batch 0",
				row.Schedule, row.ReachFractions[0])
		}
	}
	if res.Table.NumRows() != 5 || res.ReachTable.NumRows() != 5 {
		t.Fatal("tables incomplete")
	}
}
