package mem

import (
	"sync"
	"testing"

	"github.com/levelarray/levelarray/internal/registry"
)

func TestNewDomainValidation(t *testing.T) {
	if _, err := NewDomain(Config{}); err == nil {
		t.Fatal("zero MaxThreads accepted")
	}
	if _, err := NewDomain(Config{MaxThreads: -1}); err == nil {
		t.Fatal("negative MaxThreads accepted")
	}
	d, err := NewDomain(Config{MaxThreads: 4})
	if err != nil {
		t.Fatalf("NewDomain: %v", err)
	}
	if d.Registry() == nil || d.Registry().Capacity() != 4 {
		t.Fatalf("default registry wrong: %+v", d.Registry())
	}
}

func TestMustNewDomainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewDomain(Config{})
}

func TestDomainWithCustomRegistry(t *testing.T) {
	reg := registry.MustNew(registry.Random, registry.Options{Capacity: 8})
	d := MustNewDomain(Config{MaxThreads: 8, Registry: reg})
	if d.Registry() != reg {
		t.Fatal("custom registry not used")
	}
	g := d.Guard()
	if err := g.Enter(); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := g.Exit(); err != nil {
		t.Fatalf("Exit: %v", err)
	}
}

func TestGuardDiscipline(t *testing.T) {
	d := MustNewDomain(Config{MaxThreads: 2})
	g := d.Guard()
	if g.Active() {
		t.Fatal("fresh guard active")
	}
	if err := g.Exit(); err != ErrGuardInactive {
		t.Fatalf("Exit before Enter = %v, want ErrGuardInactive", err)
	}
	if err := g.Enter(); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if !g.Active() {
		t.Fatal("guard not active after Enter")
	}
	if err := g.Enter(); err != ErrGuardActive {
		t.Fatalf("double Enter = %v, want ErrGuardActive", err)
	}
	if err := g.Exit(); err != nil {
		t.Fatalf("Exit: %v", err)
	}
	if g.Active() {
		t.Fatal("guard active after Exit")
	}

	ran := false
	if err := g.Do(func() { ran = true }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !ran {
		t.Fatal("Do did not run the function")
	}
	if g.Active() {
		t.Fatal("guard left active by Do")
	}
}

func TestAdvanceBlockedByActiveGuard(t *testing.T) {
	d := MustNewDomain(Config{MaxThreads: 2})
	g := d.Guard()
	if err := g.Enter(); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	d.Retire("node")
	if got := d.Advance(); got != 0 {
		t.Fatalf("Advance reclaimed %d nodes while a guard from the current epoch is active "+
			"and pending retirements exist in newer generations", got)
	}
	startEpoch := d.Epoch()
	// The guard announced the current epoch, so the epoch may advance, but a
	// node retired in the current epoch must survive at least two advances.
	if err := g.Exit(); err != nil {
		t.Fatalf("Exit: %v", err)
	}
	_ = startEpoch
}

func TestRetireReclaimGracePeriod(t *testing.T) {
	var reclaimed []any
	d := MustNewDomain(Config{MaxThreads: 2, OnReclaim: func(n any) { reclaimed = append(reclaimed, n) }})

	d.Retire("a") // retired at epoch 0
	if d.Retired() != 1 || d.Pending() != 1 {
		t.Fatalf("accounting wrong: retired=%d pending=%d", d.Retired(), d.Pending())
	}
	// With no guards registered the epoch can advance freely, but "a" must
	// only be reclaimed once its generation comes up again (two advances).
	first := d.Advance()
	if len(reclaimed) != 0 && first > 0 {
		t.Fatalf("node reclaimed after a single advance: %v", reclaimed)
	}
	d.Advance()
	d.Advance()
	if len(reclaimed) != 1 || reclaimed[0] != "a" {
		t.Fatalf("node not reclaimed after grace period: %v", reclaimed)
	}
	if d.Reclaimed() != 1 {
		t.Fatalf("Reclaimed() = %d, want 1", d.Reclaimed())
	}
	if d.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", d.Pending())
	}
}

func TestAdvanceBlockedByStaleGuard(t *testing.T) {
	d := MustNewDomain(Config{MaxThreads: 4})
	stale := d.Guard()
	if err := stale.Enter(); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	// The stale guard announced epoch 0. Retire a node and let a fresh guard
	// churn; the epoch must not advance past the stale announcement.
	d.Retire("x")
	if d.Advance() != 0 && d.Epoch() > 1 {
		t.Fatal("epoch advanced past a stale guard announcement")
	}
	before := d.Epoch()
	for i := 0; i < 5; i++ {
		d.Advance()
	}
	if d.Epoch() > before+1 {
		t.Fatalf("epoch advanced from %d to %d despite a guard stuck at epoch 0",
			before, d.Epoch())
	}
	if err := stale.Exit(); err != nil {
		t.Fatalf("Exit: %v", err)
	}
	if d.Drain() == 0 {
		t.Fatal("nothing reclaimed after the stale guard exited")
	}
}

func TestStackSequential(t *testing.T) {
	d := MustNewDomain(Config{MaxThreads: 2})
	s := NewStack(d)
	a := s.Access()

	if _, ok, err := a.Pop(); err != nil || ok {
		t.Fatalf("Pop on empty = (%v, %v)", ok, err)
	}
	for i := int64(1); i <= 10; i++ {
		if err := a.Push(i); err != nil {
			t.Fatalf("Push(%d): %v", i, err)
		}
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	for i := int64(10); i >= 1; i-- {
		v, ok, err := a.Pop()
		if err != nil || !ok {
			t.Fatalf("Pop: (%v, %v)", ok, err)
		}
		if v != i {
			t.Fatalf("Pop = %d, want %d (LIFO order)", v, i)
		}
	}
	if d.Retired() != 10 {
		t.Fatalf("Retired = %d, want 10", d.Retired())
	}
	if a.TraversedReclaimed != 0 {
		t.Fatal("accessed a reclaimed node")
	}
}

func TestQueueSequential(t *testing.T) {
	d := MustNewDomain(Config{MaxThreads: 2})
	q := NewQueue(d)
	a := q.Access()

	if _, ok, err := a.Dequeue(); err != nil || ok {
		t.Fatalf("Dequeue on empty = (%v, %v)", ok, err)
	}
	for i := int64(1); i <= 10; i++ {
		if err := a.Enqueue(i); err != nil {
			t.Fatalf("Enqueue(%d): %v", i, err)
		}
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for i := int64(1); i <= 10; i++ {
		v, ok, err := a.Dequeue()
		if err != nil || !ok {
			t.Fatalf("Dequeue: (%v, %v)", ok, err)
		}
		if v != i {
			t.Fatalf("Dequeue = %d, want %d (FIFO order)", v, i)
		}
	}
	if a.TraversedReclaimed != 0 {
		t.Fatal("accessed a reclaimed node")
	}
}

// TestStackConcurrentWithReclamation runs producers, consumers and a
// reclaimer concurrently and checks that (a) no value is lost or duplicated
// and (b) no guarded operation ever touches a node whose grace period
// expired.
func TestStackConcurrentWithReclamation(t *testing.T) {
	const (
		workers   = 8
		perWorker = 500
	)
	d := MustNewDomain(Config{
		MaxThreads: workers,
		OnReclaim: func(n any) {
			n.(*stackNode).Reclaimed.Store(true)
		},
	})
	s := NewStack(d)

	var wg sync.WaitGroup
	popped := make([][]int64, workers)
	reclaimedAccess := make([]int, workers)
	stop := make(chan struct{})

	// Reclaimer: advance the epoch continuously while workers run.
	var reclaimerWG sync.WaitGroup
	reclaimerWG.Add(1)
	go func() {
		defer reclaimerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.Advance()
			}
		}
	}()

	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := s.Access()
			for i := 0; i < perWorker; i++ {
				value := int64(w*perWorker + i)
				if err := a.Push(value); err != nil {
					t.Errorf("worker %d push: %v", w, err)
					return
				}
				if v, ok, err := a.Pop(); err != nil || !ok {
					t.Errorf("worker %d pop: (%v, %v)", w, ok, err)
					return
				} else {
					popped[w] = append(popped[w], v)
				}
			}
			reclaimedAccess[w] = a.TraversedReclaimed
		}()
	}
	wg.Wait()
	close(stop)
	reclaimerWG.Wait()

	if t.Failed() {
		return
	}
	// Every pushed value is popped exactly once (each worker pushes then
	// pops, so globally the multiset of popped values equals the pushed one).
	seen := make(map[int64]int)
	total := 0
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
			total++
		}
	}
	if total != workers*perWorker {
		t.Fatalf("popped %d values, want %d", total, workers*perWorker)
	}
	for v, count := range seen {
		if count != 1 {
			t.Fatalf("value %d popped %d times", v, count)
		}
	}
	for w, count := range reclaimedAccess {
		if count != 0 {
			t.Fatalf("worker %d accessed %d reclaimed nodes", w, count)
		}
	}
	// The stack is empty; once the epoch advances a few more times every
	// retired node must be reclaimable.
	if s.Len() != 0 {
		t.Fatalf("stack length %d after balanced push/pop", s.Len())
	}
	d.Drain()
	if d.Pending() != 0 {
		t.Fatalf("pending retirements %d after drain", d.Pending())
	}
	if d.Reclaimed() != d.Retired() {
		t.Fatalf("reclaimed %d of %d retired nodes", d.Reclaimed(), d.Retired())
	}
}

// TestQueueConcurrentProducersConsumers checks the queue under a concurrent
// producer/consumer workload with an active reclaimer.
func TestQueueConcurrentProducersConsumers(t *testing.T) {
	const (
		producers   = 4
		consumers   = 4
		perProducer = 500
	)
	d := MustNewDomain(Config{
		MaxThreads: producers + consumers,
		OnReclaim: func(n any) {
			n.(*queueNode).Reclaimed.Store(true)
		},
	})
	q := NewQueue(d)

	var produced, consumed sync.Map
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var reclaimerWG sync.WaitGroup
	reclaimerWG.Add(1)
	go func() {
		defer reclaimerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.Advance()
			}
		}
	}()

	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := q.Access()
			for i := 0; i < perProducer; i++ {
				v := int64(p*perProducer + i)
				if err := a.Enqueue(v); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				produced.Store(v, true)
			}
		}()
	}

	var consumedCount sync.WaitGroup
	consumedCount.Add(producers * perProducer)
	for c := 0; c < consumers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := q.Access()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, ok, err := a.Dequeue()
				if err != nil {
					t.Errorf("consumer %d: %v", c, err)
					return
				}
				if !ok {
					continue
				}
				if _, dup := consumed.LoadOrStore(v, true); dup {
					t.Errorf("value %d consumed twice", v)
					return
				}
				consumedCount.Done()
			}
		}()
	}

	// Wait until every produced value has been consumed, then stop.
	done := make(chan struct{})
	go func() {
		consumedCount.Wait()
		close(done)
	}()
	<-done
	close(stop)
	wg.Wait()
	reclaimerWG.Wait()

	if t.Failed() {
		return
	}
	missing := 0
	produced.Range(func(key, _ any) bool {
		if _, ok := consumed.Load(key); !ok {
			missing++
		}
		return true
	})
	if missing != 0 {
		t.Fatalf("%d produced values never consumed", missing)
	}
	if q.Len() != 0 {
		t.Fatalf("queue length %d after draining", q.Len())
	}
}

// TestReclamationActuallyHappensUnderChurn verifies the reclaimer makes
// progress (nodes are freed during the run, not only at the end), which is
// the whole point of registering operations cheaply.
func TestReclamationActuallyHappensUnderChurn(t *testing.T) {
	const workers = 4
	d := MustNewDomain(Config{MaxThreads: workers})
	s := NewStack(d)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := s.Access()
			for i := 0; i < 2000; i++ {
				if err := a.Push(int64(i)); err != nil {
					t.Errorf("push: %v", err)
					return
				}
				if _, _, err := a.Pop(); err != nil {
					t.Errorf("pop: %v", err)
					return
				}
				if i%64 == 0 {
					d.Advance()
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if d.Reclaimed() == 0 {
		t.Fatal("no nodes reclaimed during the run")
	}
	d.Drain()
	if d.Reclaimed() != d.Retired() {
		t.Fatalf("reclaimed %d of %d retired", d.Reclaimed(), d.Retired())
	}
}
