package mem

import (
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/activity"
)

// Stack is a Treiber stack (lock-free LIFO) whose popped nodes are retired
// through a reclamation Domain instead of being dropped, reproducing the
// lock-free-data-structure client the paper's introduction describes.
//
// Values are int64 to keep the data structure allocation-free apart from the
// nodes themselves; the point of the type is to exercise the guard and
// retire paths, not to be a general-purpose container.
type Stack struct {
	domain *Domain
	top    atomic.Pointer[stackNode]
	length atomic.Int64
}

// stackNode is one stack cell. The reclaimed flag is set by the domain's
// reclamation callback in tests to detect use-after-reclaim.
type stackNode struct {
	value int64
	next  *stackNode

	// Reclaimed is set (by the test harness through Domain.OnReclaim) when
	// the node's grace period has expired. Operations assert it is unset for
	// any node they traverse while guarded.
	Reclaimed atomic.Bool
}

// NewStack builds a stack whose retired nodes go to domain.
func NewStack(domain *Domain) *Stack {
	return &Stack{domain: domain}
}

// StackAccess is the per-thread accessor for a Stack: it bundles the thread's
// reclamation guard with the stack operations. It is not safe for concurrent
// use; each goroutine owns one accessor.
type StackAccess struct {
	stack *Stack
	guard *Guard

	// TraversedReclaimed counts nodes observed with the Reclaimed flag set
	// while under guard; it must stay zero if reclamation is safe.
	TraversedReclaimed int
}

// Access returns a new per-thread accessor.
func (s *Stack) Access() *StackAccess {
	return &StackAccess{stack: s, guard: s.domain.Guard()}
}

// RegistrationStats returns the probe statistics of the accessor's
// reclamation guard: what this thread paid, in test-and-set trials, to
// register its stack operations.
func (a *StackAccess) RegistrationStats() activity.ProbeStats {
	return a.guard.RegistrationStats()
}

// Len returns the current number of elements (approximate under concurrency).
func (s *Stack) Len() int { return int(s.length.Load()) }

// Push adds value to the top of the stack.
func (a *StackAccess) Push(value int64) error {
	if err := a.guard.Enter(); err != nil {
		return err
	}
	defer func() { _ = a.guard.Exit() }()

	node := &stackNode{value: value}
	for {
		top := a.stack.top.Load()
		node.next = top
		if top != nil && top.Reclaimed.Load() {
			a.TraversedReclaimed++
		}
		if a.stack.top.CompareAndSwap(top, node) {
			a.stack.length.Add(1)
			return nil
		}
	}
}

// Pop removes and returns the top value. The second return value is false if
// the stack was observed empty.
func (a *StackAccess) Pop() (int64, bool, error) {
	if err := a.guard.Enter(); err != nil {
		return 0, false, err
	}
	defer func() { _ = a.guard.Exit() }()

	for {
		top := a.stack.top.Load()
		if top == nil {
			return 0, false, nil
		}
		if top.Reclaimed.Load() {
			a.TraversedReclaimed++
		}
		next := top.next
		if a.stack.top.CompareAndSwap(top, next) {
			a.stack.length.Add(-1)
			value := top.value
			// The node is now unlinked; hand it to the domain. It must not
			// be reused until every operation that might still hold a
			// reference has exited its guard.
			a.stack.domain.Retire(top)
			return value, true, nil
		}
	}
}
