// Package mem implements the memory-reclamation application the paper's
// introduction motivates: threads accessing a lock-free data structure
// register their operations in an activity array so that a reclaimer can
// Collect the set of in-flight operations and decide which retired nodes are
// safe to reuse (the dynamic-collect usage of Dragojević et al. cited as
// [17], and the epoch flavour of the repeat-offender problem [21]).
//
// The scheme is epoch-based reclamation (EBR) built on the activity-array
// abstraction:
//
//   - Every data-structure operation runs under a Guard. Entering a guard
//     registers the thread in the activity array (a LevelArray by default —
//     this is exactly the fast-registration path whose cost the paper
//     optimizes) and announces the global epoch it observed; exiting
//     deregisters it.
//   - Retired nodes are appended to the limbo list of the current epoch.
//   - Advance scans the activity array (Collect), reads the epochs announced
//     by the registered operations, and advances the global epoch only when
//     every in-flight operation has observed the current epoch. Nodes retired
//     two epochs ago are then handed to the reclamation callback: no guard
//     that could still reference them can exist.
//
// Go's garbage collector would of course reclaim unreachable nodes on its
// own; the point of the package is to reproduce the registration-heavy usage
// pattern (and to let the benchmarks measure registration cost in a realistic
// client), so "reclaiming" means invoking a caller-supplied callback, which
// the tests use to verify safety.
package mem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
)

// epochSlots is the number of limbo generations. Three generations implement
// the classic "retire in e, reclaim when the global epoch reaches e+2" rule.
const epochSlots = 3

// Config parameterizes a reclamation domain.
type Config struct {
	// MaxThreads is the maximum number of concurrently guarded operations.
	// It must be at least 1.
	MaxThreads int
	// Registry optionally supplies the activity array used as the operation
	// registry. Nil selects a LevelArray with capacity MaxThreads.
	Registry activity.Array
	// OnReclaim is invoked for every node whose grace period has expired.
	// Nil means reclaimed nodes are simply dropped.
	OnReclaim func(node any)
	// Seed seeds the default LevelArray registry.
	Seed uint64
}

// Domain is an epoch-based reclamation domain.
type Domain struct {
	registry  activity.Array
	onReclaim func(node any)

	epoch atomic.Uint64

	// announcements[name] holds 1+epoch observed by the guard registered at
	// that activity-array index, or 0 when the slot is unannounced.
	announcements []atomic.Uint64

	mu    sync.Mutex
	limbo [epochSlots][]any

	reclaimed atomic.Uint64
	retired   atomic.Uint64
}

// NewDomain builds a reclamation domain.
func NewDomain(cfg Config) (*Domain, error) {
	if cfg.MaxThreads < 1 {
		return nil, fmt.Errorf("mem: max threads %d must be at least 1", cfg.MaxThreads)
	}
	registry := cfg.Registry
	if registry == nil {
		la, err := core.New(core.Config{Capacity: cfg.MaxThreads, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("mem: building registry: %w", err)
		}
		registry = la
	}
	return &Domain{
		registry:      registry,
		onReclaim:     cfg.OnReclaim,
		announcements: make([]atomic.Uint64, registry.Size()),
	}, nil
}

// MustNewDomain is NewDomain but panics on error.
func MustNewDomain(cfg Config) *Domain {
	d, err := NewDomain(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Registry returns the activity array used as the operation registry.
func (d *Domain) Registry() activity.Array { return d.registry }

// Epoch returns the current global epoch.
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// Retired returns the total number of nodes passed to Retire.
func (d *Domain) Retired() uint64 { return d.retired.Load() }

// Reclaimed returns the total number of nodes whose grace period expired.
func (d *Domain) Reclaimed() uint64 { return d.reclaimed.Load() }

// Pending returns the number of retired nodes whose grace period has not yet
// expired.
func (d *Domain) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	pending := 0
	for _, l := range d.limbo {
		pending += len(l)
	}
	return pending
}

// Guard is the per-thread handle for entering and leaving guarded regions.
// A Guard is not safe for concurrent use.
type Guard struct {
	domain *Domain
	handle activity.Handle
	name   int
	active bool
}

// Guard returns a new per-thread guard.
func (d *Domain) Guard() *Guard {
	return &Guard{domain: d, handle: d.registry.Handle()}
}

// Errors returned by guards.
var (
	// ErrGuardActive is returned by Enter when the guard is already active.
	ErrGuardActive = errors.New("mem: guard already active")
	// ErrGuardInactive is returned by Exit when the guard is not active.
	ErrGuardInactive = errors.New("mem: guard not active")
)

// Enter registers the calling thread as having an operation in flight. It
// must be paired with Exit.
func (g *Guard) Enter() error {
	if g.active {
		return ErrGuardActive
	}
	name, err := g.handle.Get()
	if err != nil {
		return fmt.Errorf("mem: registering guard: %w", err)
	}
	g.name = name
	g.active = true
	// Announce the epoch observed at entry; the +1 distinguishes "announced
	// epoch 0" from "no announcement".
	g.domain.announcements[name].Store(g.domain.epoch.Load() + 1)
	return nil
}

// Exit deregisters the calling thread's operation.
func (g *Guard) Exit() error {
	if !g.active {
		return ErrGuardInactive
	}
	g.domain.announcements[g.name].Store(0)
	if err := g.handle.Free(); err != nil {
		return fmt.Errorf("mem: deregistering guard: %w", err)
	}
	g.active = false
	return nil
}

// Active reports whether the guard is currently entered.
func (g *Guard) Active() bool { return g.active }

// RegistrationStats returns the probe statistics of the guard's registry
// handle: what this thread paid, in test-and-set trials, to register its
// operations.
func (g *Guard) RegistrationStats() activity.ProbeStats { return g.handle.Stats() }

// Do runs fn inside the guard.
func (g *Guard) Do(fn func()) error {
	if err := g.Enter(); err != nil {
		return err
	}
	fn()
	return g.Exit()
}

// Retire hands a node to the domain for deferred reclamation. It may be
// called with or without an active guard.
func (d *Domain) Retire(node any) {
	epoch := d.epoch.Load()
	d.mu.Lock()
	d.limbo[epoch%epochSlots] = append(d.limbo[epoch%epochSlots], node)
	d.mu.Unlock()
	d.retired.Add(1)
}

// Advance attempts to advance the global epoch and reclaim nodes whose grace
// period has expired. It returns the number of nodes reclaimed. The epoch
// advances only if every registered operation has announced the current
// epoch; otherwise Advance returns 0 without side effects.
//
// Advance is typically called by a dedicated reclaimer thread or periodically
// by worker threads; the scan cost is one Collect (O(n)), which is exactly
// the operation the paper's Collect bound covers.
func (d *Domain) Advance() int {
	current := d.epoch.Load()

	// Scan the registry. Any registered operation that announced an older
	// epoch blocks the advance.
	registered := d.registry.Collect(nil)
	for _, name := range registered {
		ann := d.announcements[name].Load()
		if ann == 0 {
			// The slot was registered but has not announced yet (Enter is
			// between Get and Store) or has just been released. Be
			// conservative: treat it as blocking.
			return 0
		}
		if ann-1 < current {
			return 0
		}
	}

	// All in-flight operations have seen `current`; it is safe to advance
	// and to reclaim the generation retired two epochs ago.
	if !d.epoch.CompareAndSwap(current, current+1) {
		// Another reclaimer advanced concurrently; let it do the work.
		return 0
	}
	reclaimGen := (current + 1) % epochSlots // == (current+1+epochSlots-... ) the oldest generation
	d.mu.Lock()
	nodes := d.limbo[reclaimGen]
	d.limbo[reclaimGen] = nil
	d.mu.Unlock()

	for _, node := range nodes {
		if d.onReclaim != nil {
			d.onReclaim(node)
		}
	}
	d.reclaimed.Add(uint64(len(nodes)))
	return len(nodes)
}

// Drain repeatedly advances the epoch (at most epochSlots+1 times) to flush
// every limbo generation. It is intended for shutdown paths and tests, and
// succeeds only when no operations are registered.
func (d *Domain) Drain() int {
	total := 0
	for i := 0; i < epochSlots+1; i++ {
		total += d.Advance()
	}
	return total
}
