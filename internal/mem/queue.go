package mem

import (
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/activity"
)

// Queue is a Michael–Scott lock-free FIFO queue whose dequeued nodes are
// retired through a reclamation Domain. Together with Stack it provides the
// second lock-free client used by the examples and benchmarks.
type Queue struct {
	domain *Domain
	head   atomic.Pointer[queueNode]
	tail   atomic.Pointer[queueNode]
	length atomic.Int64
}

// queueNode is one queue cell; the first node is a dummy, as in the original
// algorithm.
type queueNode struct {
	value int64
	next  atomic.Pointer[queueNode]

	// Reclaimed is set by the reclamation callback in tests to detect
	// use-after-reclaim.
	Reclaimed atomic.Bool
}

// NewQueue builds a queue whose retired nodes go to domain.
func NewQueue(domain *Domain) *Queue {
	q := &Queue{domain: domain}
	dummy := &queueNode{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Len returns the current number of elements (approximate under concurrency).
func (q *Queue) Len() int { return int(q.length.Load()) }

// QueueAccess is the per-thread accessor for a Queue. It is not safe for
// concurrent use; each goroutine owns one accessor.
type QueueAccess struct {
	queue *Queue
	guard *Guard

	// TraversedReclaimed counts nodes observed with the Reclaimed flag set
	// while under guard; it must stay zero if reclamation is safe.
	TraversedReclaimed int
}

// Access returns a new per-thread accessor.
func (q *Queue) Access() *QueueAccess {
	return &QueueAccess{queue: q, guard: q.domain.Guard()}
}

// RegistrationStats returns the probe statistics of the accessor's
// reclamation guard.
func (a *QueueAccess) RegistrationStats() activity.ProbeStats {
	return a.guard.RegistrationStats()
}

// Enqueue appends value at the tail.
func (a *QueueAccess) Enqueue(value int64) error {
	if err := a.guard.Enter(); err != nil {
		return err
	}
	defer func() { _ = a.guard.Exit() }()

	node := &queueNode{value: value}
	for {
		tail := a.queue.tail.Load()
		if tail.Reclaimed.Load() {
			a.TraversedReclaimed++
		}
		next := tail.next.Load()
		if next != nil {
			// The tail pointer is lagging; help advance it.
			a.queue.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, node) {
			a.queue.tail.CompareAndSwap(tail, node)
			a.queue.length.Add(1)
			return nil
		}
	}
}

// Dequeue removes and returns the value at the head. The second return value
// is false if the queue was observed empty.
func (a *QueueAccess) Dequeue() (int64, bool, error) {
	if err := a.guard.Enter(); err != nil {
		return 0, false, err
	}
	defer func() { _ = a.guard.Exit() }()

	for {
		head := a.queue.head.Load()
		tail := a.queue.tail.Load()
		next := head.next.Load()
		if head.Reclaimed.Load() {
			a.TraversedReclaimed++
		}
		if next == nil {
			return 0, false, nil
		}
		if head == tail {
			// Tail is lagging behind an in-progress enqueue; help it.
			a.queue.tail.CompareAndSwap(tail, next)
			continue
		}
		value := next.value
		if a.queue.head.CompareAndSwap(head, next) {
			a.queue.length.Add(-1)
			// The old dummy node is unlinked; retire it. The new head (next)
			// becomes the dummy and keeps its value slot unused.
			a.queue.domain.Retire(head)
			return value, true, nil
		}
	}
}
