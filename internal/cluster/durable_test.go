package cluster

// Durability tests: crash-restart replay through the harness, fenced rejoin
// of a node restarted after its partitions failed over, the fenced snapshot-
// adoption fast path, and the kill-and-restart chaos acceptance run.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/lease"
)

// durableLocal boots an in-process cluster with durable lease state rooted in
// a fresh temp dir, tuned for test speed.
func durableLocal(t *testing.T, nodes, partitions, capacity int, maxTTL time.Duration, snapshotAdopt bool) *Local {
	t.Helper()
	l, err := StartLocal(LocalConfig{
		Nodes:         nodes,
		Partitions:    partitions,
		Capacity:      capacity,
		Seed:          7,
		DataDir:       t.TempDir(),
		SnapshotAdopt: snapshotAdopt,
		Node: NodeConfig{
			Lease:         lease.Config{TickInterval: 20 * time.Millisecond},
			DefaultTTL:    maxTTL,
			MaxTTL:        maxTTL,
			ProbeInterval: 25 * time.Millisecond,
			DownAfter:     2,
			Logf:          t.Logf,
		},
	})
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	t.Cleanup(l.Close)
	return l
}

// TestDurableSingleNodeCrashRestart is the crash-restart replay round trip:
// a single durable member is killed without warning and restarted on the same
// address; every lease it granted must survive (renewable with its original
// token) and none of their names may be double-issued afterwards.
func TestDurableSingleNodeCrashRestart(t *testing.T) {
	l := durableLocal(t, 1, 2, 64, 30*time.Second, false)
	c, err := NewClient(ClientConfig{Targets: l.Targets()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	held := map[int]GrantResponse{}
	for len(held) < 20 {
		g, status, _, err := c.Acquire(10_000)
		if err != nil || status != http.StatusOK {
			t.Fatalf("acquire: status %d err %v", status, err)
		}
		held[g.Name] = g
	}

	l.Kill(0) // crash: no clean snapshot, the WAL tail is all there is
	if err := l.Restart(0); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	node := l.Node(0)
	if node == nil {
		t.Fatal("restarted node not alive")
	}
	if got := node.restoredSessions.Load(); got < 20 {
		t.Fatalf("restored %d sessions, want >= 20", got)
	}
	if node.Epoch() != 1 {
		t.Fatalf("restarted node at epoch %d, want recorded epoch 1", node.Epoch())
	}

	// Every pre-crash lease is intact: same token, renewable.
	for name, g := range held {
		if _, status, err := c.Renew(name, g.Token, 10_000); err != nil || status != http.StatusOK {
			t.Fatalf("post-restart renew %d: status %d err %v", name, status, err)
		}
	}

	// Fill to saturation: no held name may be granted a second time.
	for {
		g, status, hint, err := c.Acquire(10_000)
		if err != nil {
			t.Fatalf("fill acquire: %v", err)
		}
		if status != http.StatusOK {
			if status != http.StatusServiceUnavailable {
				t.Fatalf("fill acquire: status %d", status)
			}
			_ = hint
			break // full: the whole namespace is accounted for
		}
		if _, dup := held[g.Name]; dup {
			t.Fatalf("name %d double-issued after restart", g.Name)
		}
	}
}

// TestDurableRestartAfterFailoverFenced covers the restart-while-quarantined
// race: a node killed and failed over restarts from its recorded (now stale)
// table. It must refuse writes carrying the newer epoch (412), and adopting
// the survivors' table must self-fence it — every partition dropped, no
// double-issue window.
func TestDurableRestartAfterFailoverFenced(t *testing.T) {
	l := durableLocal(t, 3, 8, 256, 300*time.Millisecond, false)
	c, err := NewClient(ClientConfig{Targets: l.Targets()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	victim := 2
	heldOnVictim := 0
	for i := 0; i < 24; i++ {
		g, status, _, err := c.Acquire(300)
		if err != nil || status != http.StatusOK {
			t.Fatalf("acquire: status %d err %v", status, err)
		}
		if g.NodeID == victim {
			heldOnVictim++
		}
	}
	if heldOnVictim == 0 {
		t.Fatal("victim holds no leases; test setup broken")
	}

	l.Kill(victim)
	if !l.WaitForEpoch(2, 5*time.Second) {
		t.Fatal("epoch never bumped after kill")
	}

	// Rebuild the victim from its recorded state, as Restart would, but do
	// not Start it: the fencing behaviour must hold even before the boot-time
	// pull has any chance to run.
	node, err := NewNode(l.nodeConfigFor(victim))
	if err != nil {
		t.Fatalf("rebuilding victim: %v", err)
	}
	defer node.Kill()
	if node.Epoch() != 1 {
		t.Fatalf("rebuilt victim at epoch %d, want recorded epoch 1", node.Epoch())
	}
	if node.restoredSessions.Load() == 0 {
		t.Fatal("rebuilt victim restored no sessions despite journaled grants")
	}

	// A write stamped with the newer epoch is fenced with 412.
	req := httptest.NewRequest(http.MethodPost, "/acquire", strings.NewReader(`{"ttl_ms":300}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(EpochHeader, "2")
	rec := httptest.NewRecorder()
	node.ServeHTTP(rec, req)
	if rec.Code != http.StatusPreconditionFailed {
		t.Fatalf("newer-epoch acquire on stale restarted node: status %d, want 412", rec.Code)
	}
	var er EpochResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error != ErrCodeStaleEpoch {
		t.Fatalf("fence body %q err %v, want %s", rec.Body.String(), err, ErrCodeStaleEpoch)
	}
	if node.staleEpochRejects.Load() == 0 {
		t.Fatal("stale-epoch reject not counted")
	}

	// Adopting the survivors' table (which marks the victim down) self-fences:
	// every partition is dropped.
	survivor := l.Node(l.AliveIDs()[0])
	if err := node.Adopt(survivor.Table()); err != nil {
		t.Fatalf("adopting survivors' table: %v", err)
	}
	if !node.Table().Members[victim].Down {
		t.Fatal("adopted table does not mark the victim down")
	}
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/acquire", strings.NewReader(`{"ttl_ms":300}`))
	req.Header.Set("Content-Type", "application/json")
	rec2 := rec
	node.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusServiceUnavailable {
		t.Fatalf("acquire on self-fenced node: status %d, want 503 (owns nothing)", rec2.Code)
	}
}

// TestSnapshotAdoptionSkipsQuarantine exercises the fenced fast-rejoin path:
// with SnapshotAdopt wired, a failed member's partitions are fenced and
// imported by the adopter — the dead node's leases stay live (renewable under
// their original tokens on the new owner) and adopted partitions grant
// immediately instead of waiting out the MaxTTL quarantine.
func TestSnapshotAdoptionSkipsQuarantine(t *testing.T) {
	// MaxTTL 10s makes the quarantine horizon enormous relative to the test:
	// any grant or renew on an adopted partition proves the fence replaced it.
	l := durableLocal(t, 3, 8, 256, 10*time.Second, true)
	c, err := NewClient(ClientConfig{Targets: l.Targets()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	victim := 1
	var victimGrants []GrantResponse
	for i := 0; i < 24; i++ {
		g, status, _, err := c.Acquire(10_000)
		if err != nil || status != http.StatusOK {
			t.Fatalf("acquire: status %d err %v", status, err)
		}
		if g.NodeID == victim {
			victimGrants = append(victimGrants, g)
		}
	}
	if len(victimGrants) == 0 {
		t.Fatal("victim holds no leases; test setup broken")
	}
	victimParts := map[int]bool{}
	for _, p := range c.Table().PartitionsOf(victim) {
		victimParts[p] = true
	}

	l.Kill(victim)
	if !l.WaitForEpoch(2, 5*time.Second) {
		t.Fatal("epoch never bumped after kill")
	}
	c.Refresh()

	// The dead node's sessions were imported, not quarantined to death: each
	// renews under its original token on the new owner.
	for _, g := range victimGrants {
		renewed, status, err := c.Renew(g.Name, g.Token, 10_000)
		if err != nil || status != http.StatusOK {
			t.Fatalf("imported-session renew %d (token %d): status %d err %v", g.Name, g.Token, status, err)
		}
		if renewed.NodeID == victim {
			t.Fatalf("renew of %d served by the dead node", g.Name)
		}
	}

	// Adopted partitions grant right now — with a 10s quarantine they could
	// not. Keep acquiring until one of the victim's old partitions grants.
	deadline := time.Now().Add(3 * time.Second)
	served := false
	for !served && time.Now().Before(deadline) {
		g, status, hint, err := c.Acquire(10_000)
		if err != nil {
			t.Fatalf("post-failover acquire: %v", err)
		}
		switch {
		case status == http.StatusOK:
			served = victimParts[g.Partition]
		case status == http.StatusServiceUnavailable:
			if hint <= 0 {
				hint = 20 * time.Millisecond
			}
			time.Sleep(hint)
		default:
			t.Fatalf("post-failover acquire: status %d", status)
		}
	}
	if !served {
		t.Fatal("no adopted partition granted; quarantine was not skipped")
	}

	var adopts uint64
	for _, id := range l.AliveIDs() {
		adopts += l.Node(id).snapshotAdopts.Load()
	}
	if adopts == 0 {
		t.Fatal("no fenced snapshot adoption recorded on any survivor")
	}
}

// TestChaosKillRestartDurable is the durable chaos acceptance run: a mid-run
// kill with the node restarted while the run is still going. The ledger must
// stay violation-free — the restarted member rejoins with a stale epoch and
// must never double-issue.
func TestChaosKillRestartDurable(t *testing.T) {
	l := durableLocal(t, 3, 4, 128, 300*time.Millisecond, false)
	report, err := RunChaos(ChaosConfig{
		Local:        l,
		Clients:      8,
		Acquires:     4000,
		TTL:          300 * time.Millisecond,
		HoldMean:     time.Millisecond,
		CrashPercent: 10,
		RenewPercent: 20,
		Seed:         17,
		KillEvery:    150 * time.Millisecond,
		MinAlive:     2,
		RestartAfter: 400 * time.Millisecond,
		ReclaimSlack: 400 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if v := report.Violations(); v != nil {
		t.Fatalf("durable chaos violations: %v\nreport: %+v", v, report)
	}
	if report.Kills != 1 {
		t.Fatalf("kills = %d, want exactly 1 (MinAlive 2 of 3)", report.Kills)
	}
	if report.Restarts != 1 {
		t.Fatalf("restarts = %d, want exactly 1", report.Restarts)
	}
	if report.EpochBumps != 1 {
		t.Fatalf("epoch bumps %d, want 1", report.EpochBumps)
	}
	if report.OrphanEvents != report.OrphansReissued+report.OrphansFree {
		t.Fatalf("orphan accounting: %d events, %d reissued + %d free", report.OrphanEvents, report.OrphansReissued, report.OrphansFree)
	}
}
