package cluster

// The chaos metrics watcher: while RunChaos drives load and kills nodes, this
// scraper reads every member's /metrics on a short cadence and verifies that
// the observability surface tells the truth — required families present,
// counters monotonic per member, the failover visible in metrics alone (the
// quarantine counter moves and every adopted partition reappears under a
// survivor's per-partition gauges), and the occupancy gauges agreeing with
// /stats at the end of the run. The watcher is an observer only: it never
// writes to the cluster, and a deployment with metrics disabled (404 on the
// first scrape) disables it rather than failing the run.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/levelarray/levelarray/internal/metrics"
)

// chaosScrapeInterval is the watcher's cadence: fast enough to catch the
// scrape-mid-kill window of a default chaos run, slow enough to stay
// negligible next to the load itself.
const chaosScrapeInterval = 200 * time.Millisecond

// chaosRequiredFamilies must appear in every healthy member scrape of a
// clustered node. Histograms are checked via their _count series.
var chaosRequiredFamilies = []string{
	"la_ops_total",
	"la_acquire_latency_seconds_count",
	"la_fence_rejections_total",
	"la_unavailable_total",
	"la_cluster_epoch",
	"la_cluster_quarantines_total",
	"la_partition_active",
	"go_goroutines",
}

// metricsWatcher is the scraper's shared state. One mutex guards it all; the
// scrape loop, the killer's noteKill and the final summarize all take it.
type metricsWatcher struct {
	targets []string
	hc      *http.Client
	logf    func(format string, args ...any)

	mu       sync.Mutex
	disabled bool
	scrapes  int
	// missing records required families absent from a healthy scrape.
	missing map[string]bool
	// last holds each member's previous counter values, keyed by series
	// (name plus label set): counters may never decrease on a live member.
	last     map[string]map[string]float64
	monoViol uint64
	// maxQuarantines is the highest cluster-wide la_cluster_quarantines_total
	// sum any sweep observed.
	maxQuarantines float64
	// midKill holds the quarantine sum seen by the first sweep after each
	// kill — the "failover visible in metrics alone" snapshot.
	midKill     []uint64
	killPending bool
	// watchParts are the partitions kills moved; a partition is satisfied
	// once some still-scrapable member exports its gauges (only owners emit
	// per-partition series, so presence on a survivor proves adoption).
	watchParts map[int]bool
	// restarted marks targets brought back after a kill: a restart resets the
	// member's counters (a fresh process), so its monotonic baseline is
	// cleared, and a fenced rejoin owns no partitions, so the per-partition
	// families are legitimately absent from its scrapes.
	restarted map[string]bool
	// emptied marks targets being drained: the planner migrates every
	// partition off a draining member, so its per-partition families vanish
	// from an otherwise healthy scrape once the last cutover lands.
	emptied map[string]bool

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// startMetricsWatcher begins scraping the targets; the first sweep decides
// whether metrics are enabled at all.
func startMetricsWatcher(targets []string, hc *http.Client, logf func(string, ...any)) *metricsWatcher {
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Second}
	}
	w := &metricsWatcher{
		targets:    targets,
		hc:         hc,
		logf:       logf,
		missing:    make(map[string]bool),
		last:       make(map[string]map[string]float64),
		watchParts: make(map[int]bool),
		restarted:  make(map[string]bool),
		emptied:    make(map[string]bool),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *metricsWatcher) loop() {
	defer close(w.done)
	// Sweep immediately: the first sweep decides enablement, and even a run
	// shorter than one scrape interval must record at least one scrape.
	if !w.sweep() {
		return
	}
	ticker := time.NewTicker(chaosScrapeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
		}
		if !w.sweep() {
			return
		}
	}
}

// sweep scrapes every target once; it returns false when the watcher decided
// metrics are disabled and scraping should cease.
func (w *metricsWatcher) sweep() bool {
	var (
		quarSum float64
		healthy int
	)
	type scraped struct {
		target  string
		samples []metrics.Sample
	}
	var results []scraped
	for _, target := range w.targets {
		samples, status, err := w.scrape(target)
		if err != nil || status/100 != 2 {
			// Killed members and mid-kill connection resets are expected;
			// a 404 from a live member means metrics are off by design.
			if status == http.StatusNotFound {
				w.mu.Lock()
				first := w.scrapes == 0
				if first {
					w.disabled = true
				}
				w.mu.Unlock()
				if first {
					if w.logf != nil {
						w.logf("chaos: %s/metrics returned 404; metrics watcher disabled", target)
					}
					return false
				}
			}
			continue
		}
		healthy++
		results = append(results, scraped{target, samples})
		quarSum += metrics.Sum(samples, "la_cluster_quarantines_total")
	}
	if healthy == 0 {
		return true
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	w.scrapes++
	if quarSum > w.maxQuarantines {
		w.maxQuarantines = quarSum
	}
	for _, r := range results {
		w.checkFamilies(r.target, r.samples)
		w.checkMonotonic(r.target, r.samples)
		for _, sm := range r.samples {
			if sm.Name != "la_partition_active" {
				continue
			}
			if p, err := strconv.Atoi(sm.Label("partition")); err == nil {
				delete(w.watchParts, p)
			}
		}
	}
	if w.killPending {
		w.killPending = false
		w.midKill = append(w.midKill, uint64(quarSum))
	}
	return true
}

func (w *metricsWatcher) scrape(target string) ([]metrics.Sample, int, error) {
	resp, err := w.hc.Get(target + "/metrics")
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return nil, resp.StatusCode, nil
	}
	samples, err := metrics.ParseText(resp.Body)
	return samples, resp.StatusCode, err
}

// checkFamilies records required families absent from this healthy scrape.
// Per-partition families are exempt on restarted and draining members: a
// fenced rejoin owns no partitions, and a draining member is migrated empty,
// so those samplers legitimately emit nothing.
func (w *metricsWatcher) checkFamilies(target string, samples []metrics.Sample) {
	present := make(map[string]bool, len(samples))
	for _, sm := range samples {
		present[sm.Name] = true
	}
	for _, fam := range chaosRequiredFamilies {
		if present[fam] {
			continue
		}
		if (w.restarted[target] || w.emptied[target]) && strings.HasPrefix(fam, "la_partition_") {
			continue
		}
		w.missing[fam] = true
	}
}

// checkMonotonic verifies no counter series went backward since the member's
// previous scrape. Counters are identified by exposition convention: _total
// families plus histogram _count/_sum series. Per-partition counters live
// and die with ownership: a partition that migrates away takes its series
// with it, and a later migration back starts a fresh manager at zero — so
// baselines for partition series absent from this scrape are dropped rather
// than held against the member.
func (w *metricsWatcher) checkMonotonic(target string, samples []metrics.Sample) {
	prev := w.last[target]
	if prev == nil {
		prev = make(map[string]float64)
		w.last[target] = prev
	}
	seen := make(map[string]bool, len(samples))
	for _, sm := range samples {
		if !strings.HasSuffix(sm.Name, "_total") &&
			!strings.HasSuffix(sm.Name, "_count") &&
			!strings.HasSuffix(sm.Name, "_sum") {
			continue
		}
		key := seriesKey(sm)
		seen[key] = true
		if old, ok := prev[key]; ok && sm.Value < old {
			w.monoViol++
			if w.logf != nil {
				w.logf("chaos: %s: counter %s went backward (%.0f -> %.0f)", target, key, old, sm.Value)
			}
		}
		prev[key] = sm.Value
	}
	for key := range prev {
		if !seen[key] && strings.HasPrefix(key, "la_partition_") {
			delete(prev, key)
		}
	}
}

// seriesKey identifies one time series: family name plus sorted label pairs.
func seriesKey(sm metrics.Sample) string {
	if len(sm.Labels) == 0 {
		return sm.Name
	}
	pairs := make([]string, 0, len(sm.Labels))
	for name, value := range sm.Labels {
		pairs = append(pairs, name+"="+value)
	}
	sort.Strings(pairs)
	return sm.Name + "{" + strings.Join(pairs, ",") + "}"
}

// noteRestart tells the watcher a killed member is back on target: its
// counters restarted from zero (fresh process), so the monotonic baseline is
// dropped and the target is marked for the partition-family exemption.
func (w *metricsWatcher) noteRestart(target string) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.last, target)
	w.restarted[target] = true
}

// noteDrained tells the watcher the member on target is being drained: the
// planner will migrate it empty, after which its per-partition families are
// legitimately absent from its scrapes.
func (w *metricsWatcher) noteDrained(target string) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.emptied[target] = true
}

// noteKill tells the watcher a node just died and which partitions must
// reappear under a survivor. The next sweep records the mid-kill snapshot.
func (w *metricsWatcher) noteKill(parts []int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.killPending = true
	for _, p := range parts {
		w.watchParts[p] = true
	}
}

// finalize stops the scrape loop, runs the end-of-run occupancy agreement
// check against each live member's /stats, and writes the watcher's verdict
// into the report. The agreement check brackets one fresh scrape between two
// /stats snapshots so concurrent churn cannot produce a false disagreement.
func (w *metricsWatcher) finalize(report *ChaosReport) {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done

	w.mu.Lock()
	report.MetricsScrapes = w.scrapes
	report.MetricsDisabled = w.disabled
	report.MetricsMonotonicityViolations = w.monoViol
	report.MetricsQuarantines = uint64(w.maxQuarantines)
	report.MetricsMidKillQuarantines = append([]uint64(nil), w.midKill...)
	for fam := range w.missing {
		report.MetricsFamiliesMissing = append(report.MetricsFamiliesMissing, fam)
	}
	sort.Strings(report.MetricsFamiliesMissing)
	report.MetricsAdoptedUnobserved = len(w.watchParts)
	disabled := w.disabled
	scrapes := w.scrapes
	w.mu.Unlock()
	if disabled || scrapes == 0 {
		return
	}

	for _, target := range w.targets {
		if msg := w.occupancyAgreement(target); msg != "" {
			report.MetricsOccupancyDisagreements = append(report.MetricsOccupancyDisagreements, msg)
		}
	}
}

// occupancyAgreement compares one member's la_partition_active sum against
// its /stats active count. Returns "" on agreement, unreachable members
// (killed nodes) included.
func (w *metricsWatcher) occupancyAgreement(target string) string {
	var before, after NodeStatsResponse
	if status, err := getJSON(w.hc, target+"/stats", &before); err != nil || status/100 != 2 {
		return ""
	}
	samples, status, err := w.scrape(target)
	if err != nil || status/100 != 2 {
		return ""
	}
	if status, err := getJSON(w.hc, target+"/stats", &after); err != nil || status/100 != 2 {
		return ""
	}
	gauge := int64(metrics.Sum(samples, "la_partition_active"))
	lo, hi := before.Active, after.Active
	if lo > hi {
		lo, hi = hi, lo
	}
	churn := statsOps(after) - statsOps(before)
	if churn < 0 {
		churn = -churn
	}
	if gauge < lo-churn || gauge > hi+churn {
		return fmt.Sprintf("%s: gauge %d outside /stats envelope [%d, %d] (churn %d)", target, gauge, lo-churn, hi+churn, churn)
	}
	return ""
}

// statsOps sums the operations that move a node's occupancy; the delta
// between two snapshots bounds how far a mid-scrape gauge may drift.
func statsOps(s NodeStatsResponse) int64 {
	var ops uint64
	for _, p := range s.Partitions {
		ops += p.Lease.Acquires + p.Lease.Releases + p.Lease.Expirations + p.Lease.OrphansReclaimed
	}
	return int64(ops)
}
