package cluster

import (
	"encoding/json"
	"reflect"
	"testing"
)

func testMembers(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{ID: i, Addr: "http://127.0.0.1:0"}
	}
	return out
}

// TestNewTableDealsRoundRobin asserts the epoch-1 assignment every node
// computes independently: partition p belongs to member p mod N.
func TestNewTableDealsRoundRobin(t *testing.T) {
	tbl, err := NewTable(testMembers(3), 8, 100, 800)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if tbl.Epoch != 1 {
		t.Fatalf("initial epoch %d, want 1", tbl.Epoch)
	}
	for p := 0; p < 8; p++ {
		owner, ok := tbl.Owner(p)
		if !ok || owner.ID != p%3 {
			t.Fatalf("partition %d owner %v (ok %v), want member %d", p, owner, ok, p%3)
		}
	}
	if got := tbl.PartitionsOf(0); !reflect.DeepEqual(got, []int{0, 3, 6}) {
		t.Fatalf("PartitionsOf(0) = %v", got)
	}
	if tbl.Size() != 800 {
		t.Fatalf("Size = %d, want 800", tbl.Size())
	}
}

// TestPartitionOfMirrorsShardEncoding checks name = partition*stride+local
// resolves the way shard names do one level down.
func TestPartitionOfMirrorsShardEncoding(t *testing.T) {
	tbl, _ := NewTable(testMembers(2), 4, 100, 400)
	cases := []struct{ name, part int }{
		{0, 0}, {99, 0}, {100, 1}, {250, 2}, {399, 3},
	}
	for _, c := range cases {
		if got := tbl.PartitionOf(c.name); got != c.part {
			t.Fatalf("PartitionOf(%d) = %d, want %d", c.name, got, c.part)
		}
	}
	for _, bad := range []int{-1, 400, 1 << 30} {
		if got := tbl.PartitionOf(bad); got != -1 {
			t.Fatalf("PartitionOf(%d) = %d, want -1", bad, got)
		}
	}
}

// TestReassignMovesPartitionsToSurvivors kills members one at a time and
// checks partitions always land on live nodes under strictly rising epochs,
// deterministically.
func TestReassignMovesPartitionsToSurvivors(t *testing.T) {
	tbl, _ := NewTable(testMembers(3), 8, 100, 800)

	t1, ok := tbl.Reassign(1)
	if !ok {
		t.Fatal("Reassign(1) failed")
	}
	if t1.Epoch != 2 {
		t.Fatalf("epoch %d, want 2", t1.Epoch)
	}
	if !t1.Members[1].Down {
		t.Fatal("member 1 not marked down")
	}
	if err := t1.Validate(); err != nil {
		t.Fatalf("reassigned table invalid: %v", err)
	}
	for p, owner := range t1.Assignment {
		if owner == 1 {
			t.Fatalf("partition %d still assigned to down member", p)
		}
	}
	// Determinism: the same failure observed twice computes the same table.
	t1b, _ := tbl.Reassign(1)
	if !reflect.DeepEqual(t1, t1b) {
		t.Fatal("Reassign is not deterministic")
	}
	// The original table is untouched (value semantics).
	if tbl.Members[1].Down || tbl.Epoch != 1 {
		t.Fatal("Reassign mutated its receiver")
	}

	// Second failure: everything lands on the last survivor.
	t2, ok := t1.Reassign(0)
	if !ok {
		t.Fatal("Reassign(0) failed")
	}
	for p, owner := range t2.Assignment {
		if owner != 2 {
			t.Fatalf("partition %d assigned to %d, want sole survivor 2", p, owner)
		}
	}
	// The last member cannot be reassigned away.
	if _, ok := t2.Reassign(2); ok {
		t.Fatal("Reassign of the last live member must fail")
	}
	// Reassigning an already-down member is a no-op failure.
	if _, ok := t2.Reassign(0); ok {
		t.Fatal("Reassign of a down member must fail")
	}
}

// TestTableValidateRejectsCorruption covers the wire-facing validation.
func TestTableValidateRejectsCorruption(t *testing.T) {
	good, _ := NewTable(testMembers(2), 4, 10, 40)
	corrupt := func(f func(*Table)) Table {
		c := good.Clone()
		f(&c)
		return c
	}
	cases := map[string]Table{
		"zero epoch":        corrupt(func(c *Table) { c.Epoch = 0 }),
		"non-power-of-two":  corrupt(func(c *Table) { c.Partitions = 3 }),
		"zero stride":       corrupt(func(c *Table) { c.Stride = 0 }),
		"no members":        corrupt(func(c *Table) { c.Members = nil }),
		"sparse member ids": corrupt(func(c *Table) { c.Members[1].ID = 5 }),
		"empty addr":        corrupt(func(c *Table) { c.Members[0].Addr = "" }),
		"short assignment":  corrupt(func(c *Table) { c.Assignment = c.Assignment[:2] }),
		"unknown owner":     corrupt(func(c *Table) { c.Assignment[0] = 9 }),
		"down owner": corrupt(func(c *Table) {
			c.Members[0].Down = true
		}),
		"all down": corrupt(func(c *Table) {
			c.Members[0].Down = true
			c.Members[1].Down = true
		}),
	}
	for name, tbl := range cases {
		if err := tbl.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt table", name)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
}

// TestTableJSONRoundTrip ensures the wire encoding survives push/pull.
func TestTableJSONRoundTrip(t *testing.T) {
	tbl, _ := NewTable(testMembers(3), 8, 64, 512)
	tbl, _ = tbl.Reassign(2)
	data, err := json.Marshal(tbl)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(tbl, back) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", tbl, back)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped table invalid: %v", err)
	}
}

// TestSteward tracks steward succession as members die.
func TestSteward(t *testing.T) {
	tbl, _ := NewTable(testMembers(3), 4, 10, 40)
	if s, ok := tbl.Steward(); !ok || s.ID != 0 {
		t.Fatalf("steward %v ok %v, want member 0", s, ok)
	}
	t2, _ := tbl.Reassign(0)
	if s, ok := t2.Steward(); !ok || s.ID != 1 {
		t.Fatalf("steward after losing 0 = %v ok %v, want member 1", s, ok)
	}
}
