package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"runtime"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/rebalance"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/trace"
	"github.com/levelarray/levelarray/internal/wal"
)

// EpochHeader carries the sender's table epoch on every write. A node whose
// epoch differs rejects the write with 412, the routing-level analogue of a
// stale fencing token's 409.
const EpochHeader = "X-Cluster-Epoch"

// Error codes the cluster node adds to the single-node vocabulary.
const (
	// ErrCodeStaleEpoch is the 412 body code: the write's epoch does not
	// match the node's table.
	ErrCodeStaleEpoch = "stale_epoch"
	// ErrCodeNotOwner is the 421 body code: the node does not own the
	// partition the name belongs to; the client should refresh its table.
	ErrCodeNotOwner = "not_owner"
	// ErrCodeWarming is a 503 body code: every open partition the node owns
	// is still quarantined after a failover adoption.
	ErrCodeWarming = "warming"
	// ErrCodeNoPartitions is a 503 body code: the node currently owns no
	// partitions at all.
	ErrCodeNoPartitions = "no_partitions"
)

// GrantResponse is the body of a clustered /acquire and /renew: the lease
// plus where it lives, so clients can route follow-ups and account sessions
// per node.
type GrantResponse struct {
	Name  int    `json:"name"`
	Token uint64 `json:"token"`
	// DeadlineUnixMillis is the lease deadline (always finite in cluster
	// mode: the quarantine discipline needs every lease TTL-bounded).
	DeadlineUnixMillis int64  `json:"deadline_unix_ms"`
	NodeID             int    `json:"node_id"`
	Partition          int    `json:"partition"`
	Epoch              uint64 `json:"epoch"`
}

// EpochResponse is the body of a 412 and of POST /cluster replies: the
// node's current epoch, so the peer knows how far behind it is.
type EpochResponse struct {
	Error   string `json:"error,omitempty"`
	Adopted bool   `json:"adopted,omitempty"`
	Epoch   uint64 `json:"epoch"`
}

// HealthResponse is the body of a clustered /healthz. Epoch rides along so
// the health probes that drive failure detection double as the anti-entropy
// signal: a prober that sees a higher epoch pulls the newer table. Build and
// uptime identity ride along too, so a probe can tell a fresh restart from a
// long-lived process.
type HealthResponse struct {
	OK           bool   `json:"ok"`
	NodeID       int    `json:"node_id"`
	Epoch        uint64 `json:"epoch"`
	Version      string `json:"version,omitempty"`
	GoVersion    string `json:"go_version,omitempty"`
	UptimeMillis int64  `json:"uptime_ms,omitempty"`
}

// NodeLeasesResponse is the body of a clustered /leases page: sessions under
// cluster-global names, walked across the node's owned partitions in name
// order.
type NodeLeasesResponse struct {
	Sessions []server.SessionJSON `json:"sessions"`
	Next     int                  `json:"next"`
	Active   int                  `json:"active"`
	NodeID   int                  `json:"node_id"`
	Epoch    uint64               `json:"epoch"`
}

// PartitionStats describes one owned partition in a /stats response — the
// per-partition load signal rebalancing decisions read.
type PartitionStats struct {
	Partition int `json:"partition"`
	Capacity  int `json:"capacity"`
	Size      int `json:"size"`
	// QuarantinedMillis is the remaining quarantine after a failover
	// adoption; 0 once the partition serves acquires.
	QuarantinedMillis int64       `json:"quarantined_ms,omitempty"`
	LoadFactor        float64     `json:"load_factor"`
	Lease             lease.Stats `json:"lease"`
}

// MigrationStats counts one node's live-migration activity by phase: plans
// it stewarded, snapshots it shipped as a source, cutovers it completed as a
// target, and plans unwound before cutover.
type MigrationStats struct {
	Planned uint64 `json:"planned"`
	Staged  uint64 `json:"staged"`
	Cutover uint64 `json:"cutover"`
	Aborted uint64 `json:"aborted"`
}

// NodeStatsResponse is the body of a clustered /stats.
type NodeStatsResponse struct {
	NodeID int    `json:"node_id"`
	Epoch  uint64 `json:"epoch"`
	// State is this member's lifecycle state in its own table view.
	State             string           `json:"state,omitempty"`
	TickMillis        int64            `json:"tick_ms"`
	UptimeMillis      int64            `json:"uptime_ms"`
	Active            int64            `json:"active"`
	Capacity          int              `json:"capacity"`
	Adoptions         uint64           `json:"adoptions"`
	Quarantines       uint64           `json:"quarantines"`
	Misroutes         uint64           `json:"misroutes"`
	StaleEpochRejects uint64           `json:"stale_epoch_rejects"`
	Migrations        MigrationStats   `json:"migrations"`
	Partitions        []PartitionStats `json:"partitions"`
}

// NodeConfig parameterizes one cluster member.
type NodeConfig struct {
	// NodeID is this node's index into Peers.
	NodeID int
	// Peers lists every member's advertised base URL, in member-ID order;
	// all nodes must be configured with the same list.
	Peers []string
	// WirePeers optionally lists every member's advertised wire-protocol
	// endpoint (host:port), index-aligned with Peers; empty entries mean
	// that member serves HTTP only. All nodes must agree on the list, since
	// it becomes part of the shared membership table.
	WirePeers []string
	// Partitions is P, the cluster-wide partition count (a power of two).
	Partitions int
	// NewPartitionArray builds the backing array of one partition. Every
	// node must use an identical factory (same capacity and layout per
	// partition) so namespaces line up across owners; it is called again on
	// the new owner when a partition fails over.
	NewPartitionArray func(partition int) (activity.Array, error)
	// Lease parameterizes each partition's manager. MaxTTL is forced to the
	// node's MaxTTL.
	Lease lease.Config
	// DefaultTTL is applied when an acquire omits its TTL. Zero selects 10s
	// (clamped to MaxTTL).
	DefaultTTL time.Duration
	// MaxTTL bounds every lease TTL and thereby the failover handover: an
	// adopted partition is quarantined until every lease the old owner could
	// still have outstanding has expired. Zero selects 30s. Infinite leases
	// are rejected in cluster mode.
	MaxTTL time.Duration
	// Quarantine overrides the adoption quarantine. Zero selects
	// MaxTTL + 2 lease ticks, matching the reissue bound the chaos ledger
	// asserts.
	Quarantine time.Duration
	// ProbeInterval is the peer health-probe cadence. Zero selects 250ms.
	ProbeInterval time.Duration
	// DownAfter is the consecutive probe misses before a peer is suspected.
	// Zero selects 3.
	DownAfter int
	// HTTPClient is used for probes, pulls and pushes. Nil selects a client
	// with a 2s timeout.
	HTTPClient *http.Client
	// DataDir enables durable lease state: each owned partition journals its
	// transitions to DataDir/p<ID> (WAL + periodic snapshots) and the node
	// persists every adopted membership table to DataDir/node.json. A
	// restarted node replays its partitions and rejoins at its recorded
	// epoch: a fast restart (before the peers detect the crash) resumes with
	// every lease intact and no quarantine; a restart after a failover finds
	// its directories fenced (or its epoch stale) and self-fences instead of
	// double-issuing. Empty keeps the node purely in-memory.
	DataDir string
	// WALSync is the journal durability policy (default wal.SyncAlways:
	// group-committed fsync before every ack).
	WALSync wal.SyncPolicy
	// WALSyncInterval is the fsync cadence under wal.SyncInterval. Zero
	// selects 25ms.
	WALSyncInterval time.Duration
	// CheckpointEvery is the per-partition snapshot cadence (the log
	// truncates at each snapshot). Zero selects 30s.
	CheckpointEvery time.Duration
	// SnapshotAdopt, when set together with DataDir, maps a partition and
	// its failed previous owner to that owner's durable state directory
	// (shared or replicated storage). On failover the adopter durably fences
	// that directory BEFORE reading it, folds the recovered snapshot+tail
	// into its fresh manager, checkpoints the import into its own journal,
	// and skips the MaxTTL quarantine entirely: the fence ordering (the old
	// owner re-checks the fence after every durable append and before every
	// ack) guarantees every grant the old owner acknowledged is visible to
	// the adopter's read. Nil, or an empty return, falls back to the
	// quarantine handover.
	SnapshotAdopt func(partition, prevOwner int) string
	// Metrics, when non-nil, instruments the lease operations, registers the
	// cluster families on its registry, and mounts GET /metrics plus the
	// pprof routes on this node's mux.
	Metrics *server.Metrics
	// MetricsElsewhere suppresses the /metrics + pprof mounts (operations
	// still record) when the registry is served on a dedicated listener.
	MetricsElsewhere bool
	// Logf, when set, receives membership-event logs (including the
	// formatted mirror of every structured event the node journals).
	Logf func(format string, args ...any)
	// Tracer, when non-nil, is the node's flight recorder: every lease
	// operation (both protocols) records a phase-attributed span, served at
	// GET /debug/trace and /debug/trace/slow.
	Tracer *trace.Recorder
	// Events overrides the node's control-plane journal. Nil builds one
	// automatically (ring of 1024, mirrored to Logf, durable under DataDir),
	// so GET /debug/events always answers.
	Events *trace.EventLog
	// Clock overrides the time source for quarantine arithmetic (tests).
	// Nil selects time.Now. The lease managers keep their own Config.Clock.
	Clock func() time.Time
	// Bootstrap, when set, is the membership table a join admission returned:
	// the node boots from it (typically as a joining member owning nothing)
	// instead of constructing the epoch-1 table from Peers. Peers/WirePeers
	// may be left empty; they are derived from the table's members. A
	// recorded table in DataDir still wins (restart of a joined node).
	Bootstrap *Table
	// RejoinAfter is the number of consecutive healthy probes of a down
	// member before the steward re-ups it (live, owning nothing; the planner
	// hands it partitions again). Zero selects 2; negative disables rejoin,
	// restoring the crash-stop Down-sticky behavior.
	RejoinAfter int
	// RebalanceEvery is the steward's migration-planner cadence. Each round
	// observes every serving member's per-partition load factors and performs
	// at most one move: emptying draining members first, then filling live
	// members that own nothing, then (only with RebalanceThreshold > 0)
	// spreading load. Zero selects 1s; negative disables the planner.
	RebalanceEvery time.Duration
	// RebalanceThreshold is the mean load-factor spread between the hottest
	// and coolest live members above which the planner moves a hot partition
	// downhill. Zero disables load-driven moves; drain and join-fill moves
	// always run while the planner itself is enabled.
	RebalanceThreshold float64
	// MigrateTimeout bounds a migration's fence window on the source: if no
	// cutover or abort arrives within it (steward death, lost push), the
	// source unfences the partition and resumes serving it. Zero selects 3s
	// — well inside the routed client's 421 retry budget, so even a stuck
	// migration resolves before clients give up. A shipped snapshot staged
	// on the target expires after half this, so a stale stage can never
	// install after its source has unfenced.
	MigrateTimeout time.Duration
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.DefaultTTL <= 0 {
		c.DefaultTTL = 10 * time.Second
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 30 * time.Second
	}
	if c.DefaultTTL > c.MaxTTL {
		c.DefaultTTL = c.MaxTTL
	}
	c.Lease.MaxTTL = c.MaxTTL
	if c.Lease.TickInterval <= 0 {
		c.Lease.TickInterval = 100 * time.Millisecond
	}
	if c.Quarantine <= 0 {
		c.Quarantine = c.MaxTTL + 2*c.Lease.TickInterval
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 2 * time.Second}
	}
	if c.WALSyncInterval <= 0 {
		c.WALSyncInterval = 25 * time.Millisecond
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.RejoinAfter == 0 {
		c.RejoinAfter = 2
	}
	if c.RebalanceEvery == 0 {
		c.RebalanceEvery = time.Second
	}
	if c.MigrateTimeout <= 0 {
		c.MigrateTimeout = 3 * time.Second
	}
	return c
}

// partition is one owned slice of the namespace: a lease manager over its
// own array, plus the quarantine gate applied after a failover adoption.
type partition struct {
	id  int
	mgr *lease.Manager
	// store is the partition's durable journal (nil without DataDir); the
	// manager journals through it and stopCk halts its checkpoint loop.
	store  *wal.Store
	stopCk func()
	// quarantineUntil gates acquires on an adopted partition: until every
	// lease the previous owner could still have outstanding has expired, the
	// partition serves only 503s, so a name granted by the dead node can
	// never be concurrently reissued here. Zero for initial partitions and
	// for fenced snapshot adoptions (the fence replaces the wait).
	quarantineUntil time.Time
	// migrating fences the partition during a live migration: acquires skip
	// it and renew/release answer 421, so once the fence is taken (under the
	// table write lock, which waits out every in-flight op) the exported
	// snapshot is the partition's final word bar expirations. migrateEpoch is
	// the cutover epoch the fence was taken for; the fence self-releases at
	// the configured MigrateTimeout if neither cutover nor abort arrived.
	migrating    bool
	migrateEpoch uint64
}

// startCheckpoints launches the partition's periodic snapshot loop (no-op
// without a journal); idempotent per incarnation via the stopCk handoff.
func (part *partition) startCheckpoints(n *Node) {
	if part.store == nil || part.stopCk != nil {
		return
	}
	id := uint32(part.id)
	part.stopCk = part.mgr.StartCheckpoints(n.cfg.CheckpointEvery, func() (uint32, uint64) {
		return id, n.Epoch()
	}, func(err error) {
		n.cfg.Logf("cluster: node %d: checkpoint partition %d: %v", n.cfg.NodeID, part.id, err)
	})
}

// close stops the partition's machinery. With clean set (graceful shutdown)
// it writes a final clean-shutdown snapshot, which the next boot replays
// alone; without it (crash simulation, or losing the partition to a newer
// table whose owner may be reading these files) nothing more is written.
func (part *partition) close(n *Node, epoch uint64, clean bool) {
	if part.stopCk != nil {
		part.stopCk()
		part.stopCk = nil
	}
	part.mgr.Close()
	if part.store == nil {
		return
	}
	if clean {
		if err := part.mgr.Checkpoint(uint32(part.id), epoch, true); err != nil {
			n.cfg.Logf("cluster: node %d: final checkpoint partition %d: %v", n.cfg.NodeID, part.id, err)
		}
	}
	if err := part.store.Close(); err != nil {
		n.cfg.Logf("cluster: node %d: closing wal partition %d: %v", n.cfg.NodeID, part.id, err)
	}
}

// Node is one cluster member: the owned partitions, the membership table,
// and the HTTP API. Build it with NewNode, then Start it.
type Node struct {
	cfg NodeConfig
	mux *http.ServeMux
	h   http.Handler

	// events is the control-plane journal (never nil after NewNode);
	// ownEvents marks a journal the node built itself and must close.
	events    *trace.EventLog
	ownEvents bool

	mu       sync.RWMutex
	table    Table
	parts    map[int]*partition
	ownedIDs []int // sorted keys of parts
	// staged holds snapshots shipped by migration sources, keyed by
	// partition, waiting for the cutover table to install them (guarded by
	// mu). Entries expire (stale plans must never install) and are dropped
	// the moment the partition is adopted or superseded.
	staged map[int]stagedSnapshot

	rr atomic.Uint64 // acquire round-robin over owned partitions

	adoptions         atomic.Uint64
	quarantines       atomic.Uint64
	misroutes         atomic.Uint64
	staleEpochRejects atomic.Uint64

	// Migration telemetry (see MigrationStats).
	migPlanned atomic.Uint64
	migStaged  atomic.Uint64
	migCutover atomic.Uint64
	migAborted atomic.Uint64

	// loads is the steward's planner cache, fed concurrently by per-member
	// stats fetches each planner round.
	loads       *rebalance.Cache
	rebalanceMu sync.Mutex // serializes planner rounds (ticker vs forced)

	// Prober telemetry (see registerMetrics).
	probes      atomic.Uint64
	probeMisses atomic.Uint64
	failovers   atomic.Uint64
	tablePushes atomic.Uint64
	tablePulls  atomic.Uint64

	refreshC chan struct{}

	// Durability telemetry: boot replay duration, sessions restored, and
	// fenced snapshot adoptions (recoveredBoot also triggers an immediate
	// anti-entropy pull, since the recorded epoch may be stale).
	recoveryNanos    atomic.Int64
	restoredSessions atomic.Uint64
	snapshotAdopts   atomic.Uint64
	recoveredBoot    bool

	lifeMu     sync.Mutex
	running    bool
	closed     atomic.Bool
	stopClosed bool
	stop       chan struct{}
	done       chan struct{}
	// planDone is closed when the rebalance planner loop exits; nil when the
	// planner is disabled.
	planDone  chan struct{}
	startedAt time.Time
}

// stagedSnapshot is a migration snapshot parked on the target between the
// source's ship and the cutover table's arrival.
type stagedSnapshot struct {
	epoch     uint64 // the cutover epoch the plan was computed for
	prevOwner int
	snap      *wal.Snapshot
	expires   time.Time
}

// NewNode builds a member from its configuration: the epoch-1 table (every
// peer up, partitions dealt round-robin) plus the partitions this node
// initially owns. The background machinery (expirers, prober) starts with
// Start.
func NewNode(cfg NodeConfig) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Bootstrap != nil {
		if err := cfg.Bootstrap.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: bootstrap table: %w", err)
		}
		if cfg.Bootstrap.Partitions != cfg.Partitions {
			return nil, fmt.Errorf("cluster: bootstrap table has %d partitions, configured %d", cfg.Bootstrap.Partitions, cfg.Partitions)
		}
		if len(cfg.Peers) == 0 {
			// A joiner configures itself from the admission table: the peer
			// lists are just the members' advertised addresses.
			for _, m := range cfg.Bootstrap.Members {
				cfg.Peers = append(cfg.Peers, m.Addr)
				cfg.WirePeers = append(cfg.WirePeers, m.WireAddr)
			}
		}
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: node needs at least one peer address")
	}
	if cfg.NodeID < 0 || cfg.NodeID >= len(cfg.Peers) {
		return nil, fmt.Errorf("cluster: node id %d outside peer list [0, %d)", cfg.NodeID, len(cfg.Peers))
	}
	if cfg.Bootstrap != nil && cfg.NodeID >= len(cfg.Bootstrap.Members) {
		return nil, fmt.Errorf("cluster: node id %d outside bootstrap member list [0, %d)", cfg.NodeID, len(cfg.Bootstrap.Members))
	}
	if cfg.Partitions < 1 || cfg.Partitions&(cfg.Partitions-1) != 0 {
		return nil, fmt.Errorf("cluster: partition count %d is not a power of two", cfg.Partitions)
	}
	if cfg.NewPartitionArray == nil {
		return nil, fmt.Errorf("cluster: NewPartitionArray must be set")
	}

	if len(cfg.WirePeers) != 0 && len(cfg.WirePeers) != len(cfg.Peers) {
		return nil, fmt.Errorf("cluster: %d wire peers for %d peers; the lists must be index-aligned", len(cfg.WirePeers), len(cfg.Peers))
	}
	members := make([]Member, len(cfg.Peers))
	for i, addr := range cfg.Peers {
		if addr == "" {
			return nil, fmt.Errorf("cluster: peer %d has an empty address", i)
		}
		members[i] = Member{ID: i, Addr: addr}
		if len(cfg.WirePeers) != 0 {
			members[i].WireAddr = cfg.WirePeers[i]
		}
	}

	n := &Node{
		cfg:      cfg,
		parts:    make(map[int]*partition),
		staged:   make(map[int]stagedSnapshot),
		loads:    rebalance.NewCache(),
		refreshC: make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}

	// The control-plane journal exists before any partition state is touched
	// so boot-time transitions (fenced partitions, replay summaries) are the
	// journal's first entries rather than lost to plain logs.
	n.events = cfg.Events
	if n.events == nil {
		n.events = trace.NewEventLog(trace.EventConfig{
			Node:  cfg.NodeID,
			Sink:  cfg.Logf,
			Dir:   cfg.DataDir,
			Clock: cfg.Clock,
		})
		n.ownEvents = true
	}

	// A durable node rejoins at the last table it adopted: the recorded
	// epoch keeps its fencing-token space and lets a fast restart resume
	// seamlessly, while a stale record is corrected by the boot-time pull.
	initialEpoch := uint64(1)
	var recorded *Table
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("cluster: data dir: %w", err)
		}
		if t, ok := loadNodeTable(cfg.DataDir); ok {
			// Membership may have grown or shrunk around a restart, so the
			// recorded member count may disagree with Peers in either
			// direction (the boot-time pull reconciles); it just has to
			// know this node, and the partition geometry is immutable.
			if t.Partitions != cfg.Partitions || cfg.NodeID >= len(t.Members) {
				return nil, fmt.Errorf("cluster: recorded table in %s has %d partitions over %d members, configured %d partitions as node %d",
					cfg.DataDir, t.Partitions, len(t.Members), cfg.Partitions, cfg.NodeID)
			}
			recorded = &t
			initialEpoch = t.Epoch
			n.recoveredBoot = true
		}
	}
	if recorded == nil && cfg.Bootstrap != nil {
		initialEpoch = cfg.Bootstrap.Epoch
		// The admission table may already be stale (the steward keeps
		// moving); pull before the first probe round, like a restart.
		n.recoveredBoot = true
	}

	// Build the initially owned partitions; the first array fixes the
	// stride every member must agree on (identical factories guarantee it).
	stride, capacity := 0, 0
	build := func(p int, epoch uint64, journal bool) (*partition, error) {
		arr, err := cfg.NewPartitionArray(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: building partition %d: %w", p, err)
		}
		lcfg := leaseConfigFor(cfg.Lease, epoch)
		var store *wal.Store
		if journal && cfg.DataDir != "" {
			store, err = wal.Open(n.partDir(p), cfg.WALSync, cfg.WALSyncInterval)
			if err != nil {
				return nil, fmt.Errorf("cluster: opening wal for partition %d: %w", p, err)
			}
			lcfg.Journal = store
		}
		mgr, err := lease.NewManager(arr, lcfg)
		if err != nil {
			if store != nil {
				_ = store.Close()
			}
			return nil, err
		}
		return &partition{id: p, mgr: mgr, store: store}, nil
	}

	// Initial ownership: the recorded assignment when one survived, the
	// round-robin deal otherwise. A node whose own record marks it down was
	// failed over before this restart: it owns nothing until a newer table
	// says otherwise.
	owned := make(map[int]bool)
	switch {
	case recorded != nil:
		if recorded.Members[cfg.NodeID].Serving() {
			for _, p := range recorded.PartitionsOf(cfg.NodeID) {
				owned[p] = true
			}
		}
	case cfg.Bootstrap != nil:
		// A joiner owns whatever the admission table says — typically
		// nothing (state joining); the planner fills it after promotion.
		if cfg.Bootstrap.Members[cfg.NodeID].Serving() {
			for _, p := range cfg.Bootstrap.PartitionsOf(cfg.NodeID) {
				owned[p] = true
			}
		}
	default:
		for p := 0; p < cfg.Partitions; p++ {
			if members[p%len(members)].ID == cfg.NodeID {
				owned[p] = true
			}
		}
	}
	for p := 0; p < cfg.Partitions; p++ {
		if !owned[p] {
			continue
		}
		part, err := build(p, initialEpoch, true)
		if err != nil {
			return nil, err
		}
		if stride == 0 {
			stride = part.mgr.Size()
		}
		capacity = part.mgr.Capacity()
		if part.store != nil && part.store.Fenced() {
			// Another node adopted this partition's state while we were
			// down: a newer table exists somewhere. Refuse to serve it
			// (clients see 421s until the pull lands) rather than reissue.
			n.events.Emit(trace.Event{
				Type: trace.EvFencedOnDisk, Level: trace.LevelWarn,
				Epoch: initialEpoch, Partition: p, Cause: "fence_marker",
				Detail: "fenced on disk; not serving it",
			})
			part.close(n, initialEpoch, false)
			continue
		}
		if part.store != nil {
			begin := time.Now()
			rst, err := part.mgr.Restore()
			if err != nil {
				part.close(n, initialEpoch, false)
				return nil, fmt.Errorf("cluster: restoring partition %d: %w", p, err)
			}
			n.recoveryNanos.Add(time.Since(begin).Nanoseconds())
			n.restoredSessions.Add(uint64(rst.Sessions))
			if rst.Sessions > 0 || rst.Records > 0 {
				n.events.Eventf(trace.EvReplay, initialEpoch, p, "restart",
					"restored %d sessions (%d lapsed, %d tail records)",
					rst.Sessions, rst.Expired, rst.Records)
			}
		}
		n.parts[p] = part
	}
	if stride == 0 {
		// More members than partitions (or nothing owned): this node still
		// needs the shared geometry for its table.
		probe, err := build(0, initialEpoch, false)
		if err != nil {
			return nil, err
		}
		stride = probe.mgr.Size()
		capacity = probe.mgr.Capacity()
		probe.mgr.Close()
	}

	switch {
	case recorded != nil:
		if recorded.Stride != stride {
			n.closeParts(initialEpoch, false)
			return nil, fmt.Errorf("cluster: recorded table stride %d does not match built stride %d", recorded.Stride, stride)
		}
		n.table = *recorded
	case cfg.Bootstrap != nil:
		if cfg.Bootstrap.Stride != stride {
			n.closeParts(initialEpoch, false)
			return nil, fmt.Errorf("cluster: bootstrap table stride %d does not match built stride %d", cfg.Bootstrap.Stride, stride)
		}
		n.table = cfg.Bootstrap.Clone()
		if cfg.DataDir != "" {
			if err := persistNodeTable(cfg.DataDir, n.table); err != nil {
				cfg.Logf("cluster: node %d: persisting bootstrap table: %v", cfg.NodeID, err)
			}
		}
	default:
		table, err := NewTable(members, cfg.Partitions, stride, capacity*cfg.Partitions)
		if err != nil {
			return nil, err
		}
		n.table = table
		if cfg.DataDir != "" {
			if err := persistNodeTable(cfg.DataDir, table); err != nil {
				cfg.Logf("cluster: node %d: persisting initial table: %v", cfg.NodeID, err)
			}
		}
	}
	n.rebuildOwnedLocked()

	n.mux = http.NewServeMux()
	n.mux.HandleFunc("POST /acquire", n.handleAcquire)
	n.mux.HandleFunc("POST /renew", n.handleRenew)
	n.mux.HandleFunc("POST /release", n.handleRelease)
	n.mux.HandleFunc("GET /cluster", n.handleClusterGet)
	n.mux.HandleFunc("POST /cluster", n.handleClusterPost)
	n.mux.HandleFunc("POST /cluster/join", n.handleJoin)
	n.mux.HandleFunc("POST /cluster/drain", n.handleDrain)
	n.mux.HandleFunc("POST /cluster/rebalance", n.handleRebalance)
	n.mux.HandleFunc("POST /migrate/prepare", n.handleMigratePrepare)
	n.mux.HandleFunc("POST /migrate/stage", n.handleMigrateStage)
	n.mux.HandleFunc("POST /migrate/abort", n.handleMigrateAbort)
	n.mux.HandleFunc("GET /collect", n.handleCollect)
	n.mux.HandleFunc("GET /leases", n.handleLeases)
	n.mux.HandleFunc("GET /stats", n.handleStats)
	n.mux.HandleFunc("GET /healthz", n.handleHealthz)
	trace.Mount(n.mux, cfg.Tracer, n.events)
	if cfg.Metrics != nil {
		n.registerMetrics()
		if !cfg.MetricsElsewhere {
			server.MountMetrics(n.mux, cfg.Metrics.Registry)
		}
	}
	n.h = server.WithRequestID(n.mux)
	return n, nil
}

// tokenEpochShift places the owning epoch in the high bits of each
// partition manager's fencing-token sequence: token = ((epoch<<32) +
// counter) << TokenHandleBits | handle. Successive incarnations of a
// failed-over partition therefore mint from disjoint token spaces — a dead
// owner's token can never equal a live one — as long as a partition mints
// fewer than 2^32 tokens per epoch and epochs stay below 2^16.
const tokenEpochShift = 32

// leaseConfigFor stamps the owning epoch into the manager's token space.
func leaseConfigFor(base lease.Config, epoch uint64) lease.Config {
	base.TokenSeqBase = epoch << tokenEpochShift
	return base
}

// partDir is the durable state directory of one partition.
func (n *Node) partDir(p int) string {
	return filepath.Join(n.cfg.DataDir, fmt.Sprintf("p%d", p))
}

// closeParts closes every owned partition; single-threaded callers only
// (NewNode failure paths and shutdown after the prober has stopped).
func (n *Node) closeParts(epoch uint64, clean bool) {
	for _, part := range n.parts {
		part.close(n, epoch, clean)
	}
}

// nodeTableFile is the persisted membership record inside DataDir: the last
// table this node adopted, re-advertised on restart.
const nodeTableFile = "node.json"

// persistNodeTable atomically records the adopted table (tmp + fsync +
// rename, like a snapshot), so a crash can never leave a torn record.
func persistNodeTable(dir string, t Table) error {
	b, err := json.Marshal(t)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, nodeTableFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, nodeTableFile)); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// loadNodeTable reads the recorded table; a missing, torn or invalid record
// simply means a fresh boot.
func loadNodeTable(dir string) (Table, bool) {
	b, err := os.ReadFile(filepath.Join(dir, nodeTableFile))
	if err != nil {
		return Table{}, false
	}
	var t Table
	if err := json.Unmarshal(b, &t); err != nil {
		return Table{}, false
	}
	if err := t.Validate(); err != nil {
		return Table{}, false
	}
	return t, true
}

// rebuildOwnedLocked refreshes the sorted owned-partition index; callers
// hold mu.
func (n *Node) rebuildOwnedLocked() {
	n.ownedIDs = n.ownedIDs[:0]
	for id := range n.parts {
		n.ownedIDs = append(n.ownedIDs, id)
	}
	sort.Ints(n.ownedIDs)
}

// ID returns the node's member ID.
func (n *Node) ID() int { return n.cfg.NodeID }

// Table returns the node's current membership table. The returned value's
// slices are shared and must not be mutated.
func (n *Node) Table() Table {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.table
}

// Epoch returns the node's current table epoch.
func (n *Node) Epoch() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.table.Epoch
}

// ServeHTTP dispatches to the clustered lease API through the request-ID
// middleware.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) { n.h.ServeHTTP(w, r) }

// Serve starts the node (expirers + prober) and runs its HTTP front end on
// addr until ctx is cancelled, then shuts the listener down gracefully and
// closes the node. It returns nil on a clean shutdown.
func (n *Node) Serve(ctx context.Context, addr string) error {
	n.Start()
	srv := &http.Server{Addr: addr, Handler: n}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		n.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	n.Close()
	if err != nil {
		return fmt.Errorf("cluster: shutdown: %w", err)
	}
	return nil
}

// ErrStaleEpoch is returned by Adopt when the offered table's epoch is not
// newer than the node's.
var ErrStaleEpoch = errors.New("cluster: table epoch not newer than current")

// Adopt installs a newer membership table: partitions this node lost are
// closed (their leases die with them — the new owner's quarantine covers the
// holders), partitions gained are built fresh and quarantined for the full
// handover horizon. Adopting a table that marks this node down self-fences:
// the node drops every partition and keeps serving only reads.
func (n *Node) Adopt(t Table) error { return n.adoptTable(t, "api") }

// adoptTable is Adopt with the cause of the transition threaded through, so
// the event journal can say *why* each epoch bump happened: "peer_push" (a
// steward pushed its table), "anti_entropy_pull" (this node pulled a newer
// epoch it saw in a probe), "steward_reassign" (this node decided a
// failover itself) or "api" (an operator called Adopt directly).
func (n *Node) adoptTable(t Table, cause string) error {
	if err := t.Validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	cur := n.table
	if t.Epoch <= cur.Epoch {
		return ErrStaleEpoch
	}
	if t.Partitions != cur.Partitions || t.Stride != cur.Stride {
		return fmt.Errorf("cluster: adopted table changes immutable geometry (partitions/stride)")
	}
	// Membership grows (joins) but never shrinks — retired members stay in
	// the table as left — and an existing member's identity is immutable.
	if len(t.Members) < len(cur.Members) {
		return fmt.Errorf("cluster: adopted table drops members (%d -> %d)", len(cur.Members), len(t.Members))
	}
	for i := range cur.Members {
		if t.Members[i].Addr != cur.Members[i].Addr {
			return fmt.Errorf("cluster: adopted table rewrites member %d address %q -> %q", i, cur.Members[i].Addr, t.Members[i].Addr)
		}
	}
	n.events.Eventf(trace.EvEpochBump, t.Epoch, -1, cause,
		"epoch %d -> %d; now owning %v", cur.Epoch, t.Epoch, t.PartitionsOf(n.cfg.NodeID))

	owned := make(map[int]bool)
	if !t.Members[n.cfg.NodeID].Down {
		for _, p := range t.PartitionsOf(n.cfg.NodeID) {
			owned[p] = true
		}
	}
	for id, part := range n.parts {
		if !owned[id] {
			// No clean snapshot: the partition's new owner may be reading
			// (and has possibly fenced) these very files.
			part.close(n, cur.Epoch, false)
			delete(n.parts, id)
			n.events.Eventf(trace.EvPartitionDrop, t.Epoch, id, cause, "dropped partition %d", id)
		} else if part.migrating {
			// The partition stayed ours under a newer epoch: whatever plan
			// fenced it died with the old epoch. Unfence and resume serving.
			part.migrating = false
			n.migAborted.Add(1)
			n.events.Eventf(trace.EvMigrationAbort, t.Epoch, id, "epoch_superseded",
				"migration fence released: partition %d kept under epoch %d", id, t.Epoch)
		}
	}
	now := n.cfg.Clock()
	for id := range owned {
		if _, ok := n.parts[id]; ok {
			continue
		}
		n.adoptPartitionLocked(id, t, cur.Assignment[id], now, cause)
	}
	// Any snapshot still staged for a partition we did not just adopt was
	// shipped for a plan this table supersedes; drop it.
	for id := range n.staged {
		delete(n.staged, id)
	}
	n.rebuildOwnedLocked()
	n.table = t
	n.adoptions.Add(1)
	if n.cfg.DataDir != "" {
		if err := persistNodeTable(n.cfg.DataDir, t); err != nil {
			n.cfg.Logf("cluster: node %d: persisting table epoch %d: %v", n.cfg.NodeID, t.Epoch, err)
		}
	}
	return nil
}

// adoptPartitionLocked builds one gained partition under a new table. The
// fast path — shared storage plus SnapshotAdopt — fences the failed owner's
// directory and imports its state, serving immediately; otherwise the
// partition starts empty behind the MaxTTL quarantine. Build failures leave
// the partition unserved (clients see 421s) rather than rejecting the whole
// table; the epoch still advances. Callers hold mu.
func (n *Node) adoptPartitionLocked(id int, t Table, prevOwner int, now time.Time, cause string) {
	if n.cfg.DataDir != "" {
		// A fresh incarnation: any state left from a previous ownership of
		// this partition was retired by the fence/quarantine discipline.
		if err := os.RemoveAll(n.partDir(id)); err != nil {
			n.cfg.Logf("cluster: node %d epoch %d: clearing stale state of partition %d: %v", n.cfg.NodeID, t.Epoch, id, err)
		}
	}
	arr, err := n.cfg.NewPartitionArray(id)
	if err != nil {
		n.cfg.Logf("cluster: node %d epoch %d: building adopted partition %d failed: %v", n.cfg.NodeID, t.Epoch, id, err)
		return
	}
	lcfg := leaseConfigFor(n.cfg.Lease, t.Epoch)
	var store *wal.Store
	if n.cfg.DataDir != "" {
		store, err = wal.Open(n.partDir(id), n.cfg.WALSync, n.cfg.WALSyncInterval)
		if err != nil {
			n.cfg.Logf("cluster: node %d epoch %d: wal for adopted partition %d failed: %v", n.cfg.NodeID, t.Epoch, id, err)
		} else {
			lcfg.Journal = store
		}
	}
	mgr, err := lease.NewManager(arr, lcfg)
	if err != nil {
		if store != nil {
			_ = store.Close()
		}
		n.cfg.Logf("cluster: node %d epoch %d: manager for adopted partition %d failed: %v", n.cfg.NodeID, t.Epoch, id, err)
		return
	}
	part := &partition{id: id, mgr: mgr, store: store}

	imported, cutover := false, false
	if st, ok := n.staged[id]; ok {
		delete(n.staged, id)
		if st.epoch == t.Epoch && now.Before(st.expires) {
			if err := n.installStagedLocked(part, st, t.Epoch); err != nil {
				n.cfg.Logf("cluster: node %d epoch %d: installing staged migration snapshot of partition %d failed (falling back): %v",
					n.cfg.NodeID, t.Epoch, id, err)
			} else {
				imported, cutover = true, true
				n.migCutover.Add(1)
			}
		}
	}
	if !imported && n.cfg.SnapshotAdopt != nil && prevOwner >= 0 {
		if dir := n.cfg.SnapshotAdopt(id, prevOwner); dir != "" {
			if err := n.importFenced(part, dir, t.Epoch); err != nil {
				n.cfg.Logf("cluster: node %d epoch %d: snapshot adoption of partition %d from %s failed (falling back to quarantine): %v",
					n.cfg.NodeID, t.Epoch, id, dir, err)
			} else {
				imported = true
				n.snapshotAdopts.Add(1)
			}
		}
	}
	if !imported {
		part.quarantineUntil = now.Add(n.cfg.Quarantine)
		n.quarantines.Add(1)
	}
	if n.leasesRunning() {
		mgr.Start()
		part.startCheckpoints(n)
	}
	n.parts[id] = part
	switch {
	case cutover:
		n.events.Eventf(trace.EvMigrationCutover, t.Epoch, id, cause,
			"cutover: installed snapshot shipped by node %d (%d sessions live, no quarantine)", prevOwner, mgr.Active())
	case imported:
		n.events.Eventf(trace.EvSnapshotAdopt, t.Epoch, id, cause,
			"adopted from fenced snapshot of node %d (%d sessions live, no quarantine)", prevOwner, mgr.Active())
	default:
		n.events.Eventf(trace.EvQuarantineStart, t.Epoch, id, cause,
			"adopted empty; quarantined until %v", part.quarantineUntil.Format(time.TimeOnly))
		// Journal the matching end so a timeline shows when acquires opened
		// up; guarded on closed so a killed node never journals after death.
		time.AfterFunc(n.cfg.Quarantine, func() {
			if !n.closed.Load() {
				n.events.Eventf(trace.EvQuarantineEnd, t.Epoch, id, "quarantine_elapsed",
					"handover horizon passed; serving acquires")
			}
		})
	}
}

// importFenced executes the fenced snapshot-adoption protocol: durably
// fence the failed owner's directory FIRST, then read its snapshot+tail and
// fold them into the fresh manager, then checkpoint the import into our own
// journal. The fence ordering makes the read complete — the old owner
// re-checks the fence after every durable append and acks only if absent,
// so every grant it ever acknowledged is in what we just read — which is
// exactly why the MaxTTL quarantine is unnecessary on this path.
func (n *Node) importFenced(part *partition, dir string, epoch uint64) error {
	if err := wal.Fence(dir, epoch); err != nil {
		return fmt.Errorf("fencing: %w", err)
	}
	n.events.Eventf(trace.EvFenceWrite, epoch, part.id, "snapshot_adopt",
		"fenced previous owner's journal at %s", dir)
	snap, tail, err := wal.ReadState(dir)
	if err != nil {
		return fmt.Errorf("reading fenced state: %w", err)
	}
	rst, err := part.mgr.RestoreState(snap, tail)
	if err != nil {
		return fmt.Errorf("restoring fenced state: %w", err)
	}
	if part.store != nil {
		// The import must be durable here before a single request is served:
		// a crash right after adoption must not forget the old owner's
		// sessions (our restart would otherwise double-issue their names).
		if err := part.mgr.Checkpoint(uint32(part.id), epoch, false); err != nil {
			return fmt.Errorf("checkpointing import: %w", err)
		}
	}
	n.restoredSessions.Add(uint64(rst.Sessions))
	return nil
}

// installStagedLocked folds a migration snapshot the source shipped into a
// freshly built partition — the cutover half of a live migration. No
// quarantine: the source fenced the partition before exporting, so the
// snapshot is complete (every grant the source ever acknowledged), and the
// epoch bump routes every client to us. Like importFenced, the import is
// checkpointed into our own journal before a single request is served.
// Callers hold mu.
func (n *Node) installStagedLocked(part *partition, st stagedSnapshot, epoch uint64) error {
	rst, err := part.mgr.RestoreState(st.snap, nil)
	if err != nil {
		return fmt.Errorf("restoring staged snapshot: %w", err)
	}
	if part.store != nil {
		if err := part.mgr.Checkpoint(uint32(part.id), epoch, false); err != nil {
			return fmt.Errorf("checkpointing staged import: %w", err)
		}
	}
	n.restoredSessions.Add(uint64(rst.Sessions))
	return nil
}

func (n *Node) leasesRunning() bool {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()
	return n.running
}

// Start launches the partition expirers and the peer health prober. It is
// idempotent and a no-op after Close.
func (n *Node) Start() {
	n.lifeMu.Lock()
	if n.running || n.closed.Load() {
		n.lifeMu.Unlock()
		return
	}
	n.running = true
	n.startedAt = n.cfg.Clock()
	if n.cfg.RebalanceEvery > 0 {
		n.planDone = make(chan struct{})
	}
	n.lifeMu.Unlock()

	n.mu.RLock()
	for _, part := range n.parts {
		part.mgr.Start()
		part.startCheckpoints(n)
	}
	n.mu.RUnlock()
	if n.recoveredBoot {
		// A restarted node's recorded epoch may be stale (a failover happened
		// while it was down): pull before the first probe round, shrinking
		// the window in which it would serve under the old epoch.
		n.requestRefresh()
	}
	go n.probeLoop()
	if n.planDone != nil {
		go n.rebalanceLoop(n.planDone)
	}
}

// Close stops the prober and every partition manager, writes a final
// clean-shutdown snapshot per durable partition (the next boot replays the
// snapshot alone), and rejects further writes. It is idempotent.
func (n *Node) Close() { n.shutdown(true) }

// Kill is Close without the final snapshots: the crash-simulation path (the
// local harness's kill switch). On-disk state is left exactly as the last
// group commit wrote it — what a real crash leaves for replay.
func (n *Node) Kill() { n.shutdown(false) }

func (n *Node) shutdown(clean bool) {
	n.lifeMu.Lock()
	n.closed.Store(true)
	wasRunning := n.running
	if !n.stopClosed {
		close(n.stop)
		n.stopClosed = true
	}
	planDone := n.planDone
	n.lifeMu.Unlock()
	if wasRunning {
		<-n.done
		if planDone != nil {
			<-planDone
		}
	}
	n.mu.Lock()
	n.closeParts(n.table.Epoch, clean)
	n.mu.Unlock()
	if n.ownEvents {
		n.events.Close()
	}
}

// ttlOf maps the wire TTL encoding to the lease layer's. Cluster mode has no
// infinite leases: negative requests map to MaxTTL, which the managers also
// enforce as the ceiling.
func (n *Node) ttlOf(millis int64) time.Duration {
	switch {
	case millis == 0:
		return n.cfg.DefaultTTL
	case millis < 0:
		return n.cfg.MaxTTL
	default:
		return time.Duration(millis) * time.Millisecond
	}
}

// checkEpoch fences a write whose epoch header disagrees with the node's
// table. Requests without the header pass (curl-friendliness); routed
// clients always send it. Seeing a *newer* epoch additionally schedules a
// table refresh: the node itself is behind.
func (n *Node) checkEpoch(w http.ResponseWriter, r *http.Request) bool {
	v := r.Header.Get(EpochHeader)
	if v == "" {
		return true
	}
	e, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest)
		return false
	}
	cur := n.Epoch()
	if e == cur {
		return true
	}
	if e > cur {
		n.requestRefresh()
	}
	n.staleEpochRejects.Add(1)
	n.events.Emit(trace.Event{
		Type: trace.EvStaleEpoch, Level: trace.LevelDebug,
		Epoch: cur, Partition: -1, Cause: "epoch_header", RID: server.RequestID(r),
		Detail: fmt.Sprintf("412: request carried epoch %d, ours is %d", e, cur),
	})
	writeJSON(w, http.StatusPreconditionFailed, EpochResponse{Error: ErrCodeStaleEpoch, Epoch: cur})
	return false
}

// requestRefresh nudges the prober to pull tables from peers; non-blocking.
func (n *Node) requestRefresh() {
	select {
	case n.refreshC <- struct{}{}:
	default:
	}
}

// reply is a deferred HTTP response: handlers compute it under the node
// lock and write it after releasing, so a slow-reading client can never
// hold the lock against an Adopt (whose write lock would then stall every
// other request on the node).
type reply struct {
	status   int
	body     any
	unavail  string // 503 code; wait carries the Retry-After pacing
	wait     time.Duration
	leaseErr error
}

// errCode names the failure a reply carries, for span attribution; "" for a
// success.
func (rep reply) errCode() string {
	if rep.leaseErr != nil {
		return server.LeaseErrCode(rep.leaseErr)
	}
	if rep.unavail != "" {
		return rep.unavail
	}
	switch body := rep.body.(type) {
	case server.ErrorResponse:
		return body.Error
	case EpochResponse:
		return body.Error
	}
	return ""
}

func (rep reply) write(w http.ResponseWriter) {
	switch {
	case rep.leaseErr != nil:
		server.WriteLeaseError(w, rep.leaseErr)
	case rep.unavail != "":
		server.WriteUnavailable(w, rep.unavail, rep.wait)
	default:
		// Deferred error bodies are built under the node lock, before the
		// writer is in hand; stamp the trace id at write time.
		if er, ok := rep.body.(server.ErrorResponse); ok && er.RequestID == "" {
			er.RequestID = server.ResponseRequestID(w)
			rep.body = er
		}
		writeJSON(w, rep.status, rep.body)
	}
}

func (n *Node) handleAcquire(w http.ResponseWriter, r *http.Request) {
	if !n.checkEpoch(w, r) {
		return
	}
	var req server.AcquireRequest
	if !decode(w, r, &req) {
		return
	}
	sp := n.beginSpan("acquire", r)
	rep := n.acquireOp(n.ttlOf(req.TTLMillis), sp)
	sp.Finish(rep.errCode())
	rep.write(w)
}

// beginSpan opens a flight-recorder span for one HTTP op, keyed by the
// request ID the middleware assigned; the X-Trace header forces retention
// past sampling (mirroring the wire protocol's trace flag).
func (n *Node) beginSpan(op string, r *http.Request) *trace.Op {
	sp := n.cfg.Tracer.Begin(op, server.RequestID(r))
	if sp != nil && r.Header.Get(server.TraceForceHeader) != "" {
		sp.Force()
	}
	return sp
}

func (n *Node) acquireLocked(ttl time.Duration, sp *trace.Op) reply {
	var mark time.Time
	if sp != nil {
		mark = time.Now()
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if sp != nil {
		sp.Phase(trace.PhaseQueue, time.Since(mark))
		sp.SetEpoch(n.table.Epoch)
	}
	if len(n.ownedIDs) == 0 {
		return reply{unavail: ErrCodeNoPartitions, wait: n.cfg.ProbeInterval}
	}
	start := n.rr.Add(1)
	now := n.cfg.Clock()
	quarantineWait := time.Duration(-1)
	sawOpen := false
	for i := 0; i < len(n.ownedIDs); i++ {
		// Index math stays in uint64: truncating the counter to a 32-bit int
		// would eventually go negative and panic the modulo.
		part := n.parts[n.ownedIDs[(start+uint64(i))%uint64(len(n.ownedIDs))]]
		if part.migrating {
			// Fenced for a migration about to cut over; the next table
			// routes acquires elsewhere, so pace like a short quarantine.
			if quarantineWait < 0 || n.cfg.ProbeInterval < quarantineWait {
				quarantineWait = n.cfg.ProbeInterval
			}
			continue
		}
		if wait := part.quarantineUntil.Sub(now); wait > 0 {
			if quarantineWait < 0 || wait < quarantineWait {
				quarantineWait = wait
			}
			continue
		}
		sawOpen = true
		sp.SetNode(n.cfg.NodeID, part.id)
		l, err := part.mgr.AcquireSpan(ttl, sp)
		if err == nil {
			return reply{status: http.StatusOK, body: GrantResponse{
				Name:               part.id*n.table.Stride + l.Name,
				Token:              l.Token,
				DeadlineUnixMillis: l.Deadline.UnixMilli(),
				NodeID:             n.cfg.NodeID,
				Partition:          part.id,
				Epoch:              n.table.Epoch,
			}}
		}
		if errors.Is(err, activity.ErrFull) || errors.Is(err, lease.ErrClosed) {
			continue
		}
		if rep, fenced := n.fencedReplyLocked(err); fenced {
			return rep
		}
		return reply{leaseErr: err}
	}
	if sawOpen {
		// Open partitions exist but every one is full: slots free up as
		// leases expire, so one expirer tick is the retry pacing.
		return reply{unavail: server.ErrCodeFull, wait: n.cfg.Lease.TickInterval}
	}
	return reply{unavail: ErrCodeWarming, wait: quarantineWait}
}

// fencedReplyLocked maps a journal fence (wal.ErrFenced) to the 412 a stale
// epoch earns: an adopter fenced this partition's state on disk, so the
// node is behind exactly as if its table were stale — reject the write and
// schedule a pull. Callers hold mu for read.
func (n *Node) fencedReplyLocked(err error) (reply, bool) {
	if !errors.Is(err, wal.ErrFenced) {
		return reply{}, false
	}
	n.staleEpochRejects.Add(1)
	n.requestRefresh()
	return reply{status: http.StatusPreconditionFailed, body: EpochResponse{Error: ErrCodeStaleEpoch, Epoch: n.table.Epoch}}, true
}

// resolveLocked maps a cluster name to the owned partition and local name;
// callers hold mu. A failure reply carries 409 (outside the namespace) or
// 421 (another member owns it).
func (n *Node) resolveLocked(name int) (*partition, int, reply, bool) {
	p := n.table.PartitionOf(name)
	if p < 0 {
		return nil, 0, reply{status: http.StatusConflict, body: server.ErrorResponse{Error: server.ErrCodeNotLeased}}, false
	}
	part, owned := n.parts[p]
	if !owned || part.migrating {
		// A migrating partition answers 421 like one we no longer own: the
		// fence must hold every mutation out of the exported snapshot, and
		// the routed client's refresh-and-retry lands the op on whichever
		// side the plan resolves to (the target after cutover, or back here
		// after an abort).
		n.misroutes.Add(1)
		return nil, 0, reply{status: http.StatusMisdirectedRequest, body: EpochResponse{Error: ErrCodeNotOwner, Epoch: n.table.Epoch}}, false
	}
	return part, name - p*n.table.Stride, reply{}, true
}

func (n *Node) handleRenew(w http.ResponseWriter, r *http.Request) {
	if !n.checkEpoch(w, r) {
		return
	}
	var req server.RenewRequest
	if !decode(w, r, &req) {
		return
	}
	sp := n.beginSpan("renew", r)
	rep := n.renewOp(req, sp)
	sp.Finish(rep.errCode())
	rep.write(w)
}

func (n *Node) renewLocked(req server.RenewRequest, sp *trace.Op) reply {
	var mark time.Time
	if sp != nil {
		mark = time.Now()
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if sp != nil {
		sp.Phase(trace.PhaseQueue, time.Since(mark))
		sp.SetEpoch(n.table.Epoch)
	}
	part, local, rep, ok := n.resolveLocked(req.Name)
	if !ok {
		return rep
	}
	sp.SetNode(n.cfg.NodeID, part.id)
	l, err := part.mgr.RenewSpan(local, req.Token, n.ttlOf(req.TTLMillis), sp)
	if err != nil {
		if rep, fenced := n.fencedReplyLocked(err); fenced {
			return rep
		}
		return reply{leaseErr: err}
	}
	return reply{status: http.StatusOK, body: GrantResponse{
		Name:               req.Name,
		Token:              l.Token,
		DeadlineUnixMillis: l.Deadline.UnixMilli(),
		NodeID:             n.cfg.NodeID,
		Partition:          part.id,
		Epoch:              n.table.Epoch,
	}}
}

func (n *Node) handleRelease(w http.ResponseWriter, r *http.Request) {
	if !n.checkEpoch(w, r) {
		return
	}
	var req server.ReleaseRequest
	if !decode(w, r, &req) {
		return
	}
	sp := n.beginSpan("release", r)
	rep := n.releaseOp(req, sp)
	sp.Finish(rep.errCode())
	rep.write(w)
}

func (n *Node) releaseLocked(req server.ReleaseRequest, sp *trace.Op) reply {
	var mark time.Time
	if sp != nil {
		mark = time.Now()
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if sp != nil {
		sp.Phase(trace.PhaseQueue, time.Since(mark))
		sp.SetEpoch(n.table.Epoch)
	}
	part, local, rep, ok := n.resolveLocked(req.Name)
	if !ok {
		return rep
	}
	sp.SetNode(n.cfg.NodeID, part.id)
	if err := part.mgr.ReleaseSpan(local, req.Token, sp); err != nil {
		if rep, fenced := n.fencedReplyLocked(err); fenced {
			return rep
		}
		return reply{leaseErr: err}
	}
	return reply{status: http.StatusOK, body: server.ReleaseResponse{Released: true}}
}

func (n *Node) handleClusterGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.Table())
}

func (n *Node) handleClusterPost(w http.ResponseWriter, r *http.Request) {
	var t Table
	if !decode(w, r, &t) {
		return
	}
	err := n.adoptTable(t, "peer_push")
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, EpochResponse{Adopted: true, Epoch: t.Epoch})
	case errors.Is(err, ErrStaleEpoch):
		writeJSON(w, http.StatusPreconditionFailed, EpochResponse{Error: ErrCodeStaleEpoch, Epoch: n.Epoch()})
	default:
		writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest)
	}
}

// collectResponse merges the owned partitions' Collect under cluster-global
// names: the node's slice of the registered set, with the underlying
// arrays' validity guarantee. Shared by the HTTP handler and the wire
// backend so both protocols serve one body.
func (n *Node) collectResponse() server.CollectResponse {
	names := []int{}
	var scratch []int
	n.mu.RLock()
	for _, id := range n.ownedIDs {
		scratch = n.parts[id].mgr.Collect(scratch[:0])
		base := id * n.table.Stride
		for _, local := range scratch {
			names = append(names, base+local)
		}
	}
	n.mu.RUnlock()
	return server.CollectResponse{Count: len(names), Names: names}
}

func (n *Node) handleCollect(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.collectResponse())
}

// leasesResponse pages the node's active sessions under cluster-global
// names; shared by the HTTP handler and the wire backend.
func (n *Node) leasesResponse(start, limit int) NodeLeasesResponse {
	n.mu.RLock()
	resp := NodeLeasesResponse{
		Sessions: []server.SessionJSON{},
		Next:     -1,
		NodeID:   n.cfg.NodeID,
		Epoch:    n.table.Epoch,
	}
	for _, part := range n.parts {
		resp.Active += part.mgr.Active()
	}
	for i, id := range n.ownedIDs {
		base := id * n.table.Stride
		if start >= base+n.table.Stride {
			continue
		}
		localStart := 0
		if start > base {
			localStart = start - base
		}
		part := n.parts[id]
		page, next := part.mgr.Sessions(localStart, limit-len(resp.Sessions))
		for _, sess := range page {
			j := server.SessionJSON{Name: base + sess.Name, Token: sess.Token}
			if !sess.Deadline.IsZero() {
				j.DeadlineUnixMillis = sess.Deadline.UnixMilli()
			}
			resp.Sessions = append(resp.Sessions, j)
		}
		if len(resp.Sessions) == limit {
			switch {
			case next != -1:
				resp.Next = base + next
			case i+1 < len(n.ownedIDs):
				resp.Next = n.ownedIDs[i+1] * n.table.Stride
			}
			break
		}
	}
	n.mu.RUnlock()
	return resp
}

func (n *Node) handleLeases(w http.ResponseWriter, r *http.Request) {
	start, limit, err := server.ParseLeasesQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, n.leasesResponse(start, limit))
}

// statsResponse builds the node's /stats body; shared by the HTTP handler
// and the wire backend.
func (n *Node) statsResponse() NodeStatsResponse {
	n.mu.RLock()
	now := n.cfg.Clock()
	resp := NodeStatsResponse{
		NodeID:            n.cfg.NodeID,
		Epoch:             n.table.Epoch,
		TickMillis:        n.cfg.Lease.TickInterval.Milliseconds(),
		Adoptions:         n.adoptions.Load(),
		Quarantines:       n.quarantines.Load(),
		Misroutes:         n.misroutes.Load(),
		StaleEpochRejects: n.staleEpochRejects.Load(),
		Migrations: MigrationStats{
			Planned: n.migPlanned.Load(),
			Staged:  n.migStaged.Load(),
			Cutover: n.migCutover.Load(),
			Aborted: n.migAborted.Load(),
		},
		Partitions: []PartitionStats{},
	}
	if n.cfg.NodeID < len(n.table.Members) {
		resp.State = n.table.Members[n.cfg.NodeID].EffectiveState()
	}
	n.lifeMu.Lock()
	if !n.startedAt.IsZero() {
		resp.UptimeMillis = now.Sub(n.startedAt).Milliseconds()
	}
	n.lifeMu.Unlock()
	for _, id := range n.ownedIDs {
		part := n.parts[id]
		ps := PartitionStats{
			Partition:  id,
			Capacity:   part.mgr.Capacity(),
			Size:       part.mgr.Size(),
			LoadFactor: part.mgr.LoadFactor(),
			Lease:      part.mgr.Stats(),
		}
		if wait := part.quarantineUntil.Sub(now); wait > 0 {
			ps.QuarantinedMillis = wait.Milliseconds()
		}
		resp.Active += ps.Lease.Active
		resp.Capacity += ps.Capacity
		resp.Partitions = append(resp.Partitions, ps)
	}
	n.mu.RUnlock()
	return resp
}

func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.statsResponse())
}

func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		OK:        true,
		NodeID:    n.cfg.NodeID,
		Epoch:     n.Epoch(),
		Version:   server.BuildVersion(),
		GoVersion: runtime.Version(),
	}
	n.lifeMu.Lock()
	if !n.startedAt.IsZero() {
		resp.UptimeMillis = n.cfg.Clock().Sub(n.startedAt).Milliseconds()
	}
	n.lifeMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
