package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/server"
)

// testNodeConfig builds a NodeConfig for handler-level tests: real node,
// fake peers, prober never started.
func testNodeConfig(nodeID, peers, partitions, perPartition int) NodeConfig {
	addrs := make([]string, peers)
	for i := range addrs {
		addrs[i] = "http://127.0.0.1:0" // never dialed: Start is not called
	}
	return NodeConfig{
		NodeID:     nodeID,
		Peers:      addrs,
		Partitions: partitions,
		NewPartitionArray: func(partition int) (activity.Array, error) {
			return core.New(core.Config{Capacity: perPartition, Epsilon: 1, Seed: uint64(partition) + 1})
		},
		DefaultTTL: time.Minute,
		MaxTTL:     time.Minute,
	}
}

func startTestNode(t *testing.T, cfg NodeConfig) (*Node, *httptest.Server) {
	t.Helper()
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	srv := httptest.NewServer(n)
	t.Cleanup(func() {
		srv.Close()
		n.Close()
	})
	return n, srv
}

// TestNodeGrantsGlobalNames checks grants land in the node's own partitions
// under the cluster-global encoding, and that renew/release route back.
func TestNodeGrantsGlobalNames(t *testing.T) {
	n, srv := startTestNode(t, testNodeConfig(0, 2, 4, 8))
	hc := srv.Client()
	tbl := n.Table()

	owned := map[int]bool{}
	for _, p := range tbl.PartitionsOf(0) {
		owned[p] = true
	}
	seen := map[int]uint64{}
	for i := 0; i < 16; i++ {
		var g GrantResponse
		status, _, err := postJSON(hc, srv.URL+"/acquire", tbl.Epoch, "", server.AcquireRequest{TTLMillis: 60_000}, &g, nil)
		if err != nil || status != http.StatusOK {
			t.Fatalf("acquire %d: status %d err %v", i, status, err)
		}
		p := tbl.PartitionOf(g.Name)
		if !owned[p] {
			t.Fatalf("grant %d landed in partition %d, not owned by node 0 (%v)", g.Name, p, tbl.PartitionsOf(0))
		}
		if g.Partition != p || g.NodeID != 0 || g.Epoch != tbl.Epoch {
			t.Fatalf("grant metadata %+v inconsistent (partition %d)", g, p)
		}
		if g.DeadlineUnixMillis == 0 {
			t.Fatal("cluster grants must always carry a finite deadline")
		}
		if _, dup := seen[g.Name]; dup {
			t.Fatalf("name %d granted twice while held", g.Name)
		}
		seen[g.Name] = g.Token
	}
	for name, token := range seen {
		var rg GrantResponse
		status, _, err := postJSON(hc, srv.URL+"/renew", tbl.Epoch, "", server.RenewRequest{Name: name, Token: token, TTLMillis: 60_000}, &rg, nil)
		if err != nil || status != http.StatusOK || rg.Name != name {
			t.Fatalf("renew: status %d err %v resp %+v", status, err, rg)
		}
		status, _, err = postJSON(hc, srv.URL+"/release", tbl.Epoch, "", server.ReleaseRequest{Name: name, Token: token}, nil, nil)
		if err != nil || status != http.StatusOK {
			t.Fatalf("release: status %d err %v", status, err)
		}
	}
}

// TestNodeRejectsForeignPartition421 sends a renew for a name another member
// owns: 421 plus the not_owner code, and the misroute counter moves.
func TestNodeRejectsForeignPartition421(t *testing.T) {
	n, srv := startTestNode(t, testNodeConfig(0, 2, 4, 8))
	tbl := n.Table()
	foreign := tbl.PartitionsOf(1)[0]*tbl.Stride + 3

	var fence EpochResponse
	status, _, err := postJSON(srv.Client(), srv.URL+"/renew", tbl.Epoch, "", server.RenewRequest{Name: foreign, Token: 1}, nil, &fence)
	if err != nil {
		t.Fatalf("renew: %v", err)
	}
	if status != http.StatusMisdirectedRequest || fence.Error != ErrCodeNotOwner {
		t.Fatalf("foreign renew: status %d code %q, want 421 %q", status, fence.Error, ErrCodeNotOwner)
	}
	if status, _, _ = postJSON(srv.Client(), srv.URL+"/release", tbl.Epoch, "", server.ReleaseRequest{Name: foreign, Token: 1}, nil, nil); status != http.StatusMisdirectedRequest {
		t.Fatalf("foreign release status %d, want 421", status)
	}
	if n.misroutes.Load() != 2 {
		t.Fatalf("misroutes = %d, want 2", n.misroutes.Load())
	}
}

// TestNodeFencesStaleEpoch412 exercises the epoch fence on every write.
func TestNodeFencesStaleEpoch412(t *testing.T) {
	n, srv := startTestNode(t, testNodeConfig(0, 2, 4, 8))
	hc := srv.Client()
	cur := n.Epoch()

	for _, path := range []string{"/acquire", "/renew", "/release"} {
		var fence EpochResponse
		status, _, err := postJSON(hc, srv.URL+path, cur+7, "", server.AcquireRequest{}, nil, &fence)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if status != http.StatusPreconditionFailed || fence.Error != ErrCodeStaleEpoch || fence.Epoch != cur {
			t.Fatalf("%s with wrong epoch: status %d body %+v, want 412 %q epoch %d", path, status, fence, ErrCodeStaleEpoch, cur)
		}
	}
	if n.staleEpochRejects.Load() != 3 {
		t.Fatalf("staleEpochRejects = %d, want 3", n.staleEpochRejects.Load())
	}
	// No header at all passes the fence (curl-friendliness).
	var g GrantResponse
	if status, _, err := postJSON(hc, srv.URL+"/acquire", 0, "", server.AcquireRequest{TTLMillis: 1000}, &g, nil); err != nil || status != http.StatusOK {
		t.Fatalf("headerless acquire: status %d err %v", status, err)
	}
	// Garbage headers are 400s.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/acquire", nil)
	req.Header.Set(EpochHeader, "not-a-number")
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatalf("garbage epoch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage epoch status %d, want 400", resp.StatusCode)
	}
}

// TestAdoptLifecycle drives a failover table into a node directly: gained
// partitions are quarantined, lost ones close, stale tables bounce, and a
// table that declares the node down self-fences it.
func TestAdoptLifecycle(t *testing.T) {
	cfg := testNodeConfig(0, 3, 4, 8)
	cfg.Quarantine = time.Hour // make quarantine observable
	n, srv := startTestNode(t, cfg)
	hc := srv.Client()
	tbl := n.Table()

	// Member 1 dies: node 0 adopts its partitions.
	next, ok := tbl.Reassign(1)
	if !ok {
		t.Fatal("Reassign(1) failed")
	}
	var reply EpochResponse
	status, _, err := postJSON(hc, srv.URL+"/cluster", 0, "", next, &reply, &reply)
	if err != nil || status != http.StatusOK || !reply.Adopted || reply.Epoch != next.Epoch {
		t.Fatalf("adopt push: status %d err %v reply %+v", status, err, reply)
	}
	if n.Epoch() != next.Epoch {
		t.Fatalf("node epoch %d, want %d", n.Epoch(), next.Epoch)
	}

	// Stale and replayed tables bounce with 412.
	status, _, err = postJSON(hc, srv.URL+"/cluster", 0, "", next, nil, &reply)
	if err != nil || status != http.StatusPreconditionFailed {
		t.Fatalf("replayed adopt: status %d err %v", status, err)
	}
	status, _, err = postJSON(hc, srv.URL+"/cluster", 0, "", tbl, nil, &reply)
	if err != nil || status != http.StatusPreconditionFailed {
		t.Fatalf("stale adopt: status %d err %v", status, err)
	}

	// Old-epoch writes are now fenced.
	var fence EpochResponse
	status, _, err = postJSON(hc, srv.URL+"/acquire", tbl.Epoch, "", server.AcquireRequest{TTLMillis: 1000}, nil, &fence)
	if err != nil || status != http.StatusPreconditionFailed {
		t.Fatalf("old-epoch acquire after failover: status %d err %v", status, err)
	}

	// Adopted partitions are quarantined: renew/release of a lease the dead
	// owner granted is fenced with 409, and the partition grants nothing.
	adopted := tbl.PartitionsOf(1)[0]
	ghost := adopted*tbl.Stride + 2
	status, _, err = postJSON(hc, srv.URL+"/renew", next.Epoch, "", server.RenewRequest{Name: ghost, Token: 42, TTLMillis: 1000}, nil, nil)
	if err != nil || status != http.StatusConflict {
		t.Fatalf("ghost renew on adopted partition: status %d err %v, want 409", status, err)
	}
	// With every partition it owns (all of them now) either quarantined or
	// open, acquires must only land in non-quarantined partitions.
	for i := 0; i < 32; i++ {
		var g GrantResponse
		status, _, err := postJSON(hc, srv.URL+"/acquire", next.Epoch, "", server.AcquireRequest{TTLMillis: 1000}, &g, nil)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if status == http.StatusServiceUnavailable {
			break // node 0's own partitions saturated; fine
		}
		p := next.PartitionOf(g.Name)
		for _, q := range tbl.PartitionsOf(1) {
			if p == q {
				t.Fatalf("grant %d landed in quarantined partition %d", g.Name, p)
			}
		}
	}

	// A table that declares node 0 down self-fences it entirely.
	final, ok := next.Reassign(0)
	if !ok {
		t.Fatal("Reassign(0) failed")
	}
	status, _, err = postJSON(hc, srv.URL+"/cluster", 0, "", final, &reply, &reply)
	if err != nil || status != http.StatusOK {
		t.Fatalf("self-fencing adopt: status %d err %v", status, err)
	}
	var unavailable server.ErrorResponse
	status, _, err = postJSON(hc, srv.URL+"/acquire", final.Epoch, "", server.AcquireRequest{TTLMillis: 1000}, nil, &unavailable)
	if err != nil || status != http.StatusServiceUnavailable || unavailable.Error != ErrCodeNoPartitions {
		t.Fatalf("acquire on self-fenced node: status %d body %+v, want 503 %q", status, unavailable, ErrCodeNoPartitions)
	}
}

// TestWarmingAdvertisesRetryAfter checks a node whose every owned partition
// is quarantined returns 503 warming with a pacing hint bounded by the
// remaining quarantine.
func TestWarmingAdvertisesRetryAfter(t *testing.T) {
	cfg := testNodeConfig(1, 2, 1, 8) // one partition, owned by member 0: node 1 starts empty-handed
	cfg.Quarantine = 2 * time.Second
	n, srv := startTestNode(t, cfg)
	tbl := n.Table()
	hc := srv.Client()

	// Before the failover, node 1 owns nothing at all.
	var body server.ErrorResponse
	status, _, err := postJSON(hc, srv.URL+"/acquire", tbl.Epoch, "", server.AcquireRequest{TTLMillis: 60_000}, nil, &body)
	if err != nil || status != http.StatusServiceUnavailable || body.Error != ErrCodeNoPartitions {
		t.Fatalf("ownerless acquire: status %d body %+v err %v, want 503 %q", status, body, err, ErrCodeNoPartitions)
	}

	// Node 0 dies; node 1 adopts the only partition, quarantined.
	next, _ := tbl.Reassign(0)
	if err := n.Adopt(next); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	body = server.ErrorResponse{}
	status, header, err := postJSON(hc, srv.URL+"/acquire", next.Epoch, "", server.AcquireRequest{TTLMillis: 60_000}, nil, &body)
	if err != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("warming acquire: status %d err %v", status, err)
	}
	if body.Error != ErrCodeWarming {
		t.Fatalf("warming code %q, want %q", body.Error, ErrCodeWarming)
	}
	hint := server.RetryAfterHint(header, 0)
	if hint <= 0 || hint > 2*time.Second {
		t.Fatalf("warming Retry-After hint %v outside (0, quarantine]", hint)
	}
}

// TestNodeLeasesPaginatesAcrossPartitions pages /leases across a node's
// partitions under global names.
func TestNodeLeasesPaginatesAcrossPartitions(t *testing.T) {
	n, srv := startTestNode(t, testNodeConfig(0, 1, 4, 8)) // sole node: owns all 4 partitions
	hc := srv.Client()
	tbl := n.Table()

	granted := map[int]uint64{}
	for i := 0; i < 20; i++ {
		var g GrantResponse
		status, _, err := postJSON(hc, srv.URL+"/acquire", tbl.Epoch, "", server.AcquireRequest{TTLMillis: 60_000}, &g, nil)
		if err != nil || status != http.StatusOK {
			t.Fatalf("acquire: status %d err %v", status, err)
		}
		granted[g.Name] = g.Token
	}

	seen := map[int]uint64{}
	start := 0
	for start != -1 {
		var page NodeLeasesResponse
		status, err := getJSON(hc, srv.URL+fmt.Sprintf("/leases?limit=3&start=%d", start), &page)
		if err != nil || status != http.StatusOK {
			t.Fatalf("GET /leases: status %d err %v", status, err)
		}
		if page.Active != len(granted) {
			t.Fatalf("active %d, want %d", page.Active, len(granted))
		}
		if len(page.Sessions) > 3 {
			t.Fatalf("page of %d exceeds limit", len(page.Sessions))
		}
		for _, s := range page.Sessions {
			if _, dup := seen[s.Name]; dup {
				t.Fatalf("name %d listed twice", s.Name)
			}
			seen[s.Name] = s.Token
		}
		if page.Next != -1 && page.Next <= start {
			t.Fatalf("cursor did not advance: %d -> %d", start, page.Next)
		}
		start = page.Next
	}
	if len(seen) != len(granted) {
		t.Fatalf("listed %d sessions, want %d", len(seen), len(granted))
	}
	for name, token := range granted {
		if seen[name] != token {
			t.Fatalf("name %d token %d, want %d", name, seen[name], token)
		}
	}
}

// TestAdoptedPartitionTokensUseEpochSpace asserts successive owners of a
// failed-over partition mint from disjoint fencing-token spaces: the token's
// high bits carry the owning epoch, so a dead owner's token can never equal
// a token the adopter mints.
func TestAdoptedPartitionTokensUseEpochSpace(t *testing.T) {
	cfg := testNodeConfig(0, 2, 2, 8)
	cfg.Quarantine = time.Nanosecond // expire the quarantine immediately
	n, srv := startTestNode(t, cfg)
	hc := srv.Client()
	tbl := n.Table()

	var epoch1 GrantResponse
	status, _, err := postJSON(hc, srv.URL+"/acquire", tbl.Epoch, "", server.AcquireRequest{TTLMillis: 60_000}, &epoch1, nil)
	if err != nil || status != http.StatusOK {
		t.Fatalf("epoch-1 acquire: status %d err %v", status, err)
	}
	if got := epoch1.Token >> (lease.TokenHandleBits + 32); got != 1 {
		t.Fatalf("epoch-1 token %d carries epoch %d, want 1", epoch1.Token, got)
	}

	next, ok := tbl.Reassign(1)
	if !ok {
		t.Fatal("Reassign(1) failed")
	}
	if err := n.Adopt(next); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	adopted := tbl.PartitionsOf(1)[0]
	for i := 0; i < 32; i++ {
		var g GrantResponse
		status, _, err := postJSON(hc, srv.URL+"/acquire", next.Epoch, "", server.AcquireRequest{TTLMillis: 60_000}, &g, nil)
		if err != nil || status != http.StatusOK {
			t.Fatalf("epoch-2 acquire %d: status %d err %v", i, status, err)
		}
		wantEpoch := uint64(1) // kept partitions continue their own space
		if g.Partition == adopted {
			wantEpoch = 2 // the fresh incarnation mints from the new epoch
		}
		if got := g.Token >> (lease.TokenHandleBits + 32); got != wantEpoch {
			t.Fatalf("partition %d token %d carries epoch %d, want %d", g.Partition, g.Token, got, wantEpoch)
		}
	}
}
