package cluster

// The recovery-time-objective benchmark: how long a crashed durable member
// takes to serve again. Each iteration boots a fresh durable cluster, loads
// it with live leases, kills the node without warning (no clean snapshot —
// the WAL tail is all there is), and times Restart up to the first granted
// acquire on the restarted process. MaxTTL is deliberately large: without
// the journal the only safe rejoin is a full MaxTTL quarantine, so the
// measured RTO against the quarantine-avoided metric is the durability
// subsystem's headline number. An RTO that ever reaches MaxTTL fails the
// benchmark outright — that would mean the restarted node fell back to
// quarantine instead of replaying.

import (
	"net/http"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/lease"
)

func BenchmarkRestartRTO(b *testing.B) {
	const heldLeases = 256
	maxTTL := 10 * time.Second

	var rtoSum, restoredSum float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l, err := StartLocal(LocalConfig{
			Nodes:      1,
			Partitions: 8,
			Capacity:   4096,
			Seed:       7,
			DataDir:    b.TempDir(),
			Node: NodeConfig{
				Lease:      lease.Config{TickInterval: 20 * time.Millisecond},
				DefaultTTL: maxTTL,
				MaxTTL:     maxTTL,
			},
		})
		if err != nil {
			b.Fatalf("StartLocal: %v", err)
		}
		c, err := NewClient(ClientConfig{Targets: l.Targets()})
		if err != nil {
			l.Close()
			b.Fatalf("NewClient: %v", err)
		}
		for j := 0; j < heldLeases; j++ {
			if _, status, _, err := c.Acquire(maxTTL.Milliseconds()); err != nil || status != http.StatusOK {
				b.Fatalf("preload acquire: status %d err %v", status, err)
			}
		}
		l.Kill(0)

		b.StartTimer()
		start := time.Now()
		if err := l.Restart(0); err != nil {
			b.Fatalf("Restart: %v", err)
		}
		for {
			_, status, _, err := c.Acquire(maxTTL.Milliseconds())
			if err == nil && status == http.StatusOK {
				break
			}
			if time.Since(start) >= maxTTL {
				b.Fatalf("no grant within MaxTTL=%v after restart: the node quarantined instead of replaying (last status %d err %v)", maxTTL, status, err)
			}
			time.Sleep(time.Millisecond)
		}
		rto := time.Since(start)
		b.StopTimer()

		rtoSum += rto.Seconds()
		if n := l.Node(0); n != nil {
			restoredSum += float64(n.restoredSessions.Load())
		}
		c.Close()
		l.Close()
	}
	b.ReportMetric(rtoSum/float64(b.N), "rto-seconds")
	b.ReportMetric(restoredSum/float64(b.N), "restored-sessions")
	b.ReportMetric(maxTTL.Seconds(), "quarantine-avoided-seconds")
}
