package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"github.com/levelarray/levelarray/internal/server"
)

// maxBodyBytes bounds request bodies. Membership tables are the largest
// payload: a few hundred bytes per member plus one integer per partition.
const maxBodyBytes = 1 << 20

// decode, writeJSON and writeError delegate to the server package's exported
// JSON plumbing so both layers share one body-cap and error-shape policy.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	return server.DecodeJSON(w, r, dst, maxBodyBytes)
}

func writeJSON(w http.ResponseWriter, status int, body any) { server.WriteJSON(w, status, body) }

func writeError(w http.ResponseWriter, status int, code string) { server.WriteError(w, status, code) }

// postJSON sends one JSON request with the given epoch header (when epoch is
// nonzero) and request-ID header (when rid is nonempty), and decodes a 2xx
// response into out; non-2xx bodies are decoded into errOut when provided.
// It returns the HTTP status and headers.
func postJSON(hc *http.Client, url string, epoch uint64, rid string, in, out, errOut any) (int, http.Header, error) {
	return postJSONTraced(hc, url, epoch, rid, false, in, out, errOut)
}

// postJSONTraced is postJSON plus the trace-force header: a traced routed
// operation tells the member to retain its server-side span past sampling.
func postJSONTraced(hc *http.Client, url string, epoch uint64, rid string, traced bool, in, out, errOut any) (int, http.Header, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if epoch != 0 {
		req.Header.Set(EpochHeader, strconv.FormatUint(epoch, 10))
	}
	if rid != "" {
		req.Header.Set(server.RequestIDHeader, rid)
	}
	if traced {
		req.Header.Set(server.TraceForceHeader, "1")
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 == 2 {
		if out != nil {
			return resp.StatusCode, resp.Header, json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode, resp.Header, nil
	}
	if errOut != nil {
		_ = json.NewDecoder(resp.Body).Decode(errOut)
	}
	return resp.StatusCode, resp.Header, nil
}

// getJSON fetches url and decodes a 2xx body into out.
func getJSON(hc *http.Client, url string, out any) (int, error) {
	resp, err := hc.Get(url)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 == 2 && out != nil {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode, nil
}
