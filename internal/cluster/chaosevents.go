package cluster

// The chaos event-journal watcher: alongside the metrics watcher, this
// scraper reads every member's /debug/events on the same cadence and builds
// the cluster-wide timeline while the run is still killing nodes (a killed
// member's in-memory ring dies with it, so the pre-kill sweeps are the only
// complete record). At the end of the run the timeline is audited against
// the ledger: every epoch bump must carry a cause, every steward reassign
// must be preceded by a recorded failover decision at that epoch, every
// snapshot adoption must have its fence write, and a run whose metrics saw
// quarantines must have journaled their starts. Observer only; a 404 on the
// first sweep (events disabled by some future deployment shape) turns the
// watcher off rather than failing the run.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/levelarray/levelarray/internal/trace"
)

// eventsWatcher accumulates the deduplicated cluster timeline.
type eventsWatcher struct {
	targets []string
	hc      *http.Client
	logf    func(format string, args ...any)

	mu       sync.Mutex
	disabled bool
	sweeps   int
	seen     map[string]bool
	events   []trace.Event

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

func startEventsWatcher(targets []string, hc *http.Client, logf func(string, ...any)) *eventsWatcher {
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Second}
	}
	w := &eventsWatcher{
		targets: targets,
		hc:      hc,
		logf:    logf,
		seen:    make(map[string]bool),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *eventsWatcher) loop() {
	defer close(w.done)
	if !w.sweep() {
		return
	}
	ticker := time.NewTicker(chaosScrapeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
		}
		if !w.sweep() {
			return
		}
	}
}

// sweep fetches every member's journal once, folding unseen events into the
// timeline; false when the watcher decided events are disabled.
func (w *eventsWatcher) sweep() bool {
	for _, target := range w.targets {
		resp, status, err := w.fetch(target)
		if err != nil || status/100 != 2 {
			if status == http.StatusNotFound {
				w.mu.Lock()
				first := w.sweeps == 0
				if first {
					w.disabled = true
				}
				w.mu.Unlock()
				if first {
					if w.logf != nil {
						w.logf("chaos: %s/debug/events returned 404; events watcher disabled", target)
					}
					return false
				}
			}
			continue
		}
		w.mu.Lock()
		w.sweeps++
		for _, ev := range resp.Events {
			// A restarted member reuses node IDs and restarts its sequence, so
			// the wall-clock stamp disambiguates incarnations.
			key := fmt.Sprintf("%d/%d/%d", ev.Node, ev.Seq, ev.TimeUnixNano)
			if w.seen[key] {
				continue
			}
			w.seen[key] = true
			w.events = append(w.events, ev)
		}
		w.mu.Unlock()
	}
	return true
}

func (w *eventsWatcher) fetch(target string) (trace.EventsResponse, int, error) {
	var out trace.EventsResponse
	resp, err := w.hc.Get(target + "/debug/events")
	if err != nil {
		return out, 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return out, resp.StatusCode, nil
	}
	return out, resp.StatusCode, json.NewDecoder(resp.Body).Decode(&out)
}

// finalize stops the sweeps and audits the assembled timeline into the
// report. The audit is structural — it needs no knowledge of which node was
// killed when, only that the journal is internally complete.
func (w *eventsWatcher) finalize(report *ChaosReport) {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done

	w.mu.Lock()
	defer w.mu.Unlock()
	report.EventsDisabled = w.disabled
	report.EventsCaptured = len(w.events)
	if w.disabled || len(w.events) == 0 {
		return
	}
	w.events = trace.MergeEvents(w.events)

	counts := make(map[string]int)
	decisionEpochs := make(map[uint64]bool)
	fenced := make(map[string]bool)
	for _, ev := range w.events {
		counts[ev.Type]++
		switch ev.Type {
		case trace.EvFailoverDecision:
			decisionEpochs[ev.Epoch] = true
		case trace.EvFenceWrite:
			fenced[fmt.Sprintf("%d/%d", ev.Epoch, ev.Partition)] = true
		}
	}
	report.EventCounts = counts
	for _, ev := range w.events {
		switch ev.Type {
		case trace.EvEpochBump:
			if ev.Cause == "" {
				report.EventsUnexplainedBumps++
			}
			if ev.Cause == "steward_reassign" && !decisionEpochs[ev.Epoch] {
				report.EventsDecisionlessFailovers++
			}
		case trace.EvSnapshotAdopt:
			if !fenced[fmt.Sprintf("%d/%d", ev.Epoch, ev.Partition)] {
				report.EventsUnfencedAdoptions++
			}
		}
	}
}
