package cluster

// Cluster-side instrumentation. The node shares the server package's Metrics
// bundle (one latency/ops/fence vocabulary for both facades) and adds the
// membership families on the same registry: table epoch, adoption and
// quarantine counters, prober activity, and per-partition occupancy sampled
// under the table lock at scrape time — the hot paths never touch a map or
// a label; everything dynamic is read when /metrics is scraped.

import (
	"net/http"
	"strconv"
	"time"

	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/metrics"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/trace"
	"github.com/levelarray/levelarray/internal/wal"
)

// registerMetrics adds the cluster families to the node's registry. Called
// once from NewNode when a Metrics bundle is configured.
func (n *Node) registerMetrics() {
	m := n.cfg.Metrics
	reg := m.Registry

	if n.cfg.Tracer != nil {
		server.RegisterTracer(reg, n.cfg.Tracer)
	}
	reg.GaugeFunc("la_cluster_epoch", "Current membership-table epoch.", func() float64 {
		return float64(n.Epoch())
	})
	reg.CounterFunc("la_cluster_adoptions_total", "Membership tables adopted (epoch advances).", n.adoptions.Load)
	reg.CounterFunc("la_cluster_quarantines_total", "Partitions adopted under failover quarantine.", n.quarantines.Load)
	reg.CounterFunc("la_cluster_probes_total", "Peer health probes sent.", n.probes.Load)
	reg.CounterFunc("la_cluster_probe_misses_total", "Peer health probes that failed.", n.probeMisses.Load)
	reg.CounterFunc("la_cluster_failovers_total", "Steward reassignments this node performed.", n.failovers.Load)
	reg.CounterFunc("la_cluster_table_pushes_total", "Membership tables pushed to peers.", n.tablePushes.Load)
	reg.CounterFunc("la_cluster_table_pulls_total", "Newer membership tables pulled from peers.", n.tablePulls.Load)
	reg.CounterFunc("la_cluster_snapshot_adopts_total", "Partitions adopted via fenced snapshot import (quarantine skipped).", n.snapshotAdopts.Load)
	reg.CounterFunc("la_cluster_restored_sessions_total", "Lease sessions rebuilt from durable state (boot replay and fenced imports).", n.restoredSessions.Load)
	reg.GaugeFunc("la_recovery_seconds", "Cumulative duration of durable-state recovery (boot WAL replay plus fenced imports).", func() float64 {
		return time.Duration(n.recoveryNanos.Load()).Seconds()
	})

	// The routing fences already have dedicated atomics on the node; expose
	// them as label values of the shared fence family.
	m.FenceFunc(ErrCodeStaleEpoch, n.staleEpochRejects.Load)
	m.FenceFunc(ErrCodeNotOwner, n.misroutes.Load)

	// Migration lifecycle, one series per phase: planned >= staged >= cutover,
	// planned = cutover + aborted when the cluster is quiescent.
	reg.Sampler("la_cluster_migrations_total", "Partition migrations by lifecycle phase.", metrics.TypeCounter, func(emit metrics.Emit) {
		emit(float64(n.migPlanned.Load()), metrics.L("phase", "planned"))
		emit(float64(n.migStaged.Load()), metrics.L("phase", "staged"))
		emit(float64(n.migCutover.Load()), metrics.L("phase", "cutover"))
		emit(float64(n.migAborted.Load()), metrics.L("phase", "aborted"))
	})
	// Membership by lifecycle state, sampled from the current table.
	reg.Sampler("la_cluster_members", "Cluster members by lifecycle state.", metrics.TypeGauge, func(emit metrics.Emit) {
		states := n.Table().MemberStates()
		for _, state := range []string{StateJoining, StateLive, StateDraining, StateDown, StateLeft} {
			emit(float64(states[state]), metrics.L("state", state))
		}
	})

	// Per-partition series: ownership changes across failovers, so the label
	// set is discovered at scrape time under the table lock.
	sample := func(name, help, typ string, read func(p *partition, now time.Time) float64) {
		reg.Sampler(name, help, typ, func(emit metrics.Emit) {
			now := n.cfg.Clock()
			n.mu.RLock()
			defer n.mu.RUnlock()
			for _, id := range n.ownedIDs {
				emit(read(n.parts[id], now), metrics.L("partition", strconv.Itoa(id)))
			}
		})
	}
	stat := func(read func(s lease.Stats) uint64) func(p *partition, now time.Time) float64 {
		return func(p *partition, _ time.Time) float64 { return float64(read(p.mgr.Stats())) }
	}
	sample("la_partition_active", "Active leases per owned partition.", metrics.TypeGauge, func(p *partition, _ time.Time) float64 {
		return float64(p.mgr.Active())
	})
	sample("la_partition_capacity", "Lease capacity per owned partition.", metrics.TypeGauge, func(p *partition, _ time.Time) float64 {
		return float64(p.mgr.Capacity())
	})
	sample("la_partition_load_factor", "Active leases over capacity per owned partition.", metrics.TypeGauge, func(p *partition, _ time.Time) float64 {
		return p.mgr.LoadFactor()
	})
	sample("la_partition_quarantine_seconds", "Remaining adoption quarantine per owned partition (0 when serving).", metrics.TypeGauge, func(p *partition, now time.Time) float64 {
		if wait := p.quarantineUntil.Sub(now); wait > 0 {
			return wait.Seconds()
		}
		return 0
	})
	sample("la_partition_acquires_total", "Successful acquires per owned partition.", metrics.TypeCounter, stat(func(s lease.Stats) uint64 { return s.Acquires }))
	sample("la_partition_renews_total", "Successful renews per owned partition.", metrics.TypeCounter, stat(func(s lease.Stats) uint64 { return s.Renews }))
	sample("la_partition_releases_total", "Successful releases per owned partition.", metrics.TypeCounter, stat(func(s lease.Stats) uint64 { return s.Releases }))
	sample("la_partition_expirations_total", "Leases reaped by the expirer per owned partition.", metrics.TypeCounter, stat(func(s lease.Stats) uint64 { return s.Expirations }))
	sample("la_partition_failed_acquires_total", "Full-partition acquire failures per owned partition.", metrics.TypeCounter, stat(func(s lease.Stats) uint64 { return s.FailedAcquires }))
	sample("la_partition_orphans_reclaimed_total", "Orphaned bits reclaimed per owned partition.", metrics.TypeCounter, stat(func(s lease.Stats) uint64 { return s.OrphansReclaimed }))

	// WAL families, labeled by partition. Partitions without a journal (no
	// -data-dir) emit nothing, so the families are absent rather than zero on
	// a memory-only node — scrapers can key durability dashboards off presence.
	walSample := func(name, help string, read func(c wal.Counters) uint64) {
		reg.Sampler(name, help, metrics.TypeCounter, func(emit metrics.Emit) {
			n.mu.RLock()
			defer n.mu.RUnlock()
			for _, id := range n.ownedIDs {
				if st := n.parts[id].store; st != nil {
					emit(float64(read(st.Counters())), metrics.L("partition", strconv.Itoa(id)))
				}
			}
		})
	}
	walSample("la_wal_appends_total", "Lease records appended to the WAL per owned partition.", func(c wal.Counters) uint64 { return c.Appends })
	walSample("la_wal_syncs_total", "WAL fsyncs per owned partition (appends/syncs = group-commit batching).", func(c wal.Counters) uint64 { return c.Syncs })
	walSample("la_wal_bytes_total", "Bytes appended to the WAL per owned partition.", func(c wal.Counters) uint64 { return c.Bytes })
	walSample("la_wal_checkpoints_total", "Snapshots checkpointed per owned partition.", func(c wal.Counters) uint64 { return c.Checkpoints })
	walSample("la_wal_replay_records_total", "Log records replayed at open per owned partition.", func(c wal.Counters) uint64 { return c.ReplayRecords })
	walSample("la_wal_torn_tails_total", "Torn trailing records truncated at open per owned partition.", func(c wal.Counters) uint64 { return c.TornTails })
}

// countReply bumps the failure counter a deferred reply maps to. The 412/421
// routing fences are not counted here — their node atomics feed the fence
// family via FenceFunc, so counting again would double-report.
func (n *Node) countReply(rep reply) {
	m := n.cfg.Metrics
	switch {
	case rep.leaseErr != nil:
		m.CountLeaseError(rep.leaseErr)
	case rep.unavail != "":
		m.Unavailable(rep.unavail).Inc()
	case rep.status == http.StatusConflict:
		if er, ok := rep.body.(server.ErrorResponse); ok {
			m.Fence(er.Error).Inc()
		}
	}
}

// acquireOp, renewOp and releaseOp wrap the locked operation cores with
// instrumentation; both the HTTP handlers and the wire backend go through
// them, so one histogram covers both protocols.
func (n *Node) acquireOp(ttl time.Duration, sp *trace.Op) reply {
	m := n.cfg.Metrics
	if m == nil {
		return n.acquireLocked(ttl, sp)
	}
	start := time.Now()
	rep := n.acquireLocked(ttl, sp)
	m.AcquireLatency.ObserveEx(time.Since(start), sp.RID())
	m.AcquireOps.Inc()
	n.countReply(rep)
	return rep
}

func (n *Node) renewOp(req server.RenewRequest, sp *trace.Op) reply {
	m := n.cfg.Metrics
	if m == nil {
		return n.renewLocked(req, sp)
	}
	start := time.Now()
	rep := n.renewLocked(req, sp)
	m.RenewLatency.ObserveEx(time.Since(start), sp.RID())
	m.RenewOps.Inc()
	n.countReply(rep)
	return rep
}

func (n *Node) releaseOp(req server.ReleaseRequest, sp *trace.Op) reply {
	m := n.cfg.Metrics
	if m == nil {
		return n.releaseLocked(req, sp)
	}
	start := time.Now()
	rep := n.releaseLocked(req, sp)
	m.ReleaseLatency.ObserveEx(time.Since(start), sp.RID())
	m.ReleaseOps.Inc()
	n.countReply(rep)
	return rep
}
