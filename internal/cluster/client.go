package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/trace"
	"github.com/levelarray/levelarray/internal/wire"
)

// ClientConfig parameterizes a routed cluster client.
type ClientConfig struct {
	// Targets seeds the membership discovery: any subset of the cluster's
	// advertised addresses. The first reachable one supplies the table.
	Targets []string
	// HTTPClient overrides the transport. Nil selects one tuned for many
	// concurrent loopback connections.
	HTTPClient *http.Client
	// RouteRounds bounds the refresh-and-retry rounds a routed operation
	// performs when it hits dead members, stale epochs (412) or moved
	// partitions (421). Zero selects 8.
	RouteRounds int
	// RouteBackoff is the base pause between unsuccessful rounds, covering
	// the window in which a failure has happened but the steward has not
	// pushed the bumped epoch yet. It doubles per round (with jitter) up to
	// RouteBackoffMax, so the many clients that observe the same member death
	// at once spread their retry storms out. Zero selects 100ms.
	RouteBackoff time.Duration
	// RouteBackoffMax caps the per-round backoff. Zero selects the larger of
	// 1s and RouteBackoff.
	RouteBackoffMax time.Duration
	// DisableWire forces HTTP for every operation even against members that
	// advertise a wire endpoint. By default the client speaks the binary
	// protocol to any member with a WireAddr and falls back to HTTP when the
	// wire hop fails.
	DisableWire bool
	// Tracer, when non-nil, records one client-side span per routed
	// operation: route time per hop, backoff time between rounds, one rid
	// across every retry — the client-side stitch of a cross-failover trace.
	// Traced operations also carry the trace flag to the member they land
	// on, forcing the server-side span of the same rid past sampling.
	Tracer *trace.Recorder
}

func (c ClientConfig) withDefaults() (ClientConfig, error) {
	if len(c.Targets) == 0 {
		return c, fmt.Errorf("cluster: client needs at least one target")
	}
	if c.HTTPClient == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 0
		tr.MaxIdleConnsPerHost = 1024
		c.HTTPClient = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	if c.RouteRounds <= 0 {
		c.RouteRounds = 8
	}
	if c.RouteBackoff <= 0 {
		c.RouteBackoff = 100 * time.Millisecond
	}
	if c.RouteBackoffMax <= 0 {
		c.RouteBackoffMax = time.Second
		if c.RouteBackoff > c.RouteBackoffMax {
			c.RouteBackoffMax = c.RouteBackoff
		}
	}
	return c, nil
}

// Client routes lease operations across the cluster: acquires round-robin
// over live members, renews and releases to the partition's owner, all
// fenced by the client's table epoch. On ownership or epoch errors it
// refreshes the table from any reachable member and retries, so routing
// self-heals across failovers. Safe for concurrent use.
type Client struct {
	cfg ClientConfig
	hc  *http.Client

	mu    sync.RWMutex
	table Table

	rr atomic.Uint64

	// ridSeq mints per-operation request ids (see nextRID).
	ridSeq atomic.Uint64

	// Pooled wire connections, one client per advertised wire endpoint,
	// dialed lazily on first routed hop.
	wmu      sync.Mutex
	wclients map[string]*wire.Client
	closed   bool

	// Routing-health counters, exposed through Counters.
	refreshes     atomic.Uint64
	staleEpochs   atomic.Uint64
	misroutes     atomic.Uint64
	deadHops      atomic.Uint64
	wireOps       atomic.Uint64
	wireFallbacks atomic.Uint64
	backoffs      atomic.Uint64
	jitter        atomic.Uint64 // splitmix state for backoff jitter
}

// ClientCounters is a snapshot of the client's routing-health counters.
type ClientCounters struct {
	// Refreshes counts table re-fetches (startup excluded).
	Refreshes uint64 `json:"refreshes"`
	// StaleEpochs counts 412s received, i.e. writes fenced for carrying an
	// out-of-date epoch.
	StaleEpochs uint64 `json:"stale_epochs"`
	// Misroutes counts 421s received, i.e. requests sent to a member that no
	// longer owned the partition.
	Misroutes uint64 `json:"misroutes"`
	// DeadHops counts transport failures against individual members.
	DeadHops uint64 `json:"dead_hops"`
	// WireOps counts lease operations completed over the binary protocol.
	WireOps uint64 `json:"wire_ops"`
	// WireFallbacks counts hops where the wire transport failed and the
	// client retried the same member over HTTP.
	WireFallbacks uint64 `json:"wire_fallbacks"`
	// Backoffs counts inter-round pauses taken after a full sweep of the
	// table failed to land the operation.
	Backoffs uint64 `json:"backoffs"`
}

// NewClient builds a routed client and fetches the initial table from the
// first reachable target.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, hc: cfg.HTTPClient, wclients: make(map[string]*wire.Client)}
	c.jitter.Store(uint64(time.Now().UnixNano()))
	if !c.fetchTable() {
		return nil, fmt.Errorf("cluster: no target reachable for the initial table: %v", cfg.Targets)
	}
	return c, nil
}

// Close shuts down the client's pooled wire connections. Routed operations
// issued after Close fall back to HTTP.
func (c *Client) Close() {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.closed = true
	for _, wc := range c.wclients {
		wc.Close()
	}
	c.wclients = nil
}

// wireFor returns the pooled wire client for a member, dialing lazily, or
// nil when the member is HTTP-only (or wire is disabled).
func (c *Client) wireFor(m Member) *wire.Client {
	if c.cfg.DisableWire || m.WireAddr == "" {
		return nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return nil
	}
	wc := c.wclients[m.WireAddr]
	if wc == nil {
		wc = wire.NewClient(m.WireAddr, nil)
		c.wclients[m.WireAddr] = wc
	}
	return wc
}

// Table returns the client's current view of the membership table.
func (c *Client) Table() Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.table
}

// Counters returns a snapshot of the routing-health counters.
func (c *Client) Counters() ClientCounters {
	return ClientCounters{
		Refreshes:     c.refreshes.Load(),
		StaleEpochs:   c.staleEpochs.Load(),
		Misroutes:     c.misroutes.Load(),
		DeadHops:      c.deadHops.Load(),
		WireOps:       c.wireOps.Load(),
		WireFallbacks: c.wireFallbacks.Load(),
		Backoffs:      c.backoffs.Load(),
	}
}

// backoffSleep pauses between routing rounds: RouteBackoff doubled per round
// and jittered, capped at RouteBackoffMax, so clients hammering a cluster
// mid-failover spread out instead of sweeping the table in lockstep.
func (c *Client) backoffSleep(round int, sp *trace.Op) {
	c.backoffs.Add(1)
	d := wire.Backoff(c.cfg.RouteBackoff, c.cfg.RouteBackoffMax, round, &c.jitter)
	time.Sleep(d)
	sp.Phase(trace.PhaseBackoff, d)
}

// nextRID mints one trace id per routed operation. The high bit is set so a
// caller-provided frame ID can never collide with the wire client pool's
// auto-assigned sequence (which counts up from 1); every retry hop of one
// operation carries the same id, over both transports.
func (c *Client) nextRID() uint64 { return c.ridSeq.Add(1) | 1<<63 }

// ridString renders a trace id in the X-Request-ID vocabulary, so the HTTP
// fallback hop carries the same identity the wire frame would.
func ridString(rid uint64) string { return wire.RIDString(rid) }

// beginSpan opens the client-side span of one routed operation. The same rid
// the member-side spans record makes `lactl trace` joinable across the two
// rings; hop time lands in the route phase, inter-round sleeps in backoff.
func (c *Client) beginSpan(op string, rid uint64) *trace.Op {
	return c.cfg.Tracer.Begin(op, ridString(rid))
}

// clientCall recycles one wire request/response pair per routed hop.
type clientCall struct {
	req  wire.Request
	resp wire.Response
}

var clientCallPool = sync.Pool{New: func() any { return new(clientCall) }}

func putClientCall(w *clientCall) {
	w.req = wire.Request{Items: w.req.Items[:0]}
	w.resp.Reset()
	clientCallPool.Put(w)
}

// grantFromWire converts a frame grant to the JSON-shaped response the
// client API returns regardless of transport.
func grantFromWire(g wire.Grant) GrantResponse {
	return GrantResponse{
		Name:               int(g.Name),
		Token:              g.Token,
		DeadlineUnixMillis: g.DeadlineUnixMilli,
		NodeID:             int(g.NodeID),
		Partition:          int(g.Partition),
		Epoch:              g.Epoch,
	}
}

// wireRequestFor translates an owner-addressed HTTP body to its wire opcode;
// false when the path has no wire equivalent.
func wireRequestFor(body any, req *wire.Request) bool {
	switch b := body.(type) {
	case server.AcquireRequest:
		req.Op = wire.OpAcquire
		req.TTLMillis = b.TTLMillis
		req.Items = req.Items[:0]
		return true
	case server.RenewRequest:
		req.Op = wire.OpRenew
		req.TTLMillis = b.TTLMillis
		req.Items = append(req.Items[:0], wire.Ref{Name: int64(b.Name), Token: b.Token})
		return true
	case server.ReleaseRequest:
		req.Op = wire.OpRelease
		req.Items = append(req.Items[:0], wire.Ref{Name: int64(b.Name), Token: b.Token})
		return true
	}
	return false
}

// hop sends one epoch-fenced operation to one member, preferring the binary
// protocol and falling back to HTTP when the wire transport fails. It
// returns the member's status, the epoch it advertised on a fence, and the
// retry hint on a 503.
func (c *Client) hop(m Member, epoch uint64, rid uint64, sp *trace.Op, body any, out *GrantResponse, path string) (status int, fencedAt uint64, retry time.Duration, err error) {
	var mark time.Time
	if sp != nil {
		mark = time.Now()
		defer func() { sp.Phase(trace.PhaseRoute, time.Since(mark)) }()
	}
	if wc := c.wireFor(m); wc != nil {
		call := clientCallPool.Get().(*clientCall)
		if wireRequestFor(body, &call.req) {
			call.req.Epoch = epoch
			call.req.ID = rid
			call.req.Trace = sp.Traced()
			if werr := wc.Do(&call.req, &call.resp); werr == nil {
				c.wireOps.Add(1)
				resp := &call.resp
				if resp.Status == wire.StatusOK && out != nil && len(resp.Grants) == 1 {
					*out = grantFromWire(resp.Grants[0])
				}
				status, fencedAt = int(resp.Status), resp.Epoch
				retry = time.Duration(resp.RetryAfterMillis) * time.Millisecond
				putClientCall(call)
				return status, fencedAt, retry, nil
			}
			c.wireFallbacks.Add(1)
		}
		putClientCall(call)
	}
	var fence EpochResponse
	// A typed-nil *GrantResponse must become a true nil interface, or
	// postJSON would try to decode into it and report a transport error —
	// turning an applied release into a spurious retry.
	var dst any
	if out != nil {
		dst = out
	}
	status, header, err := postJSONTraced(c.hc, m.Addr+path, epoch, ridString(rid), sp.Traced(), body, dst, &fence)
	if err != nil {
		return 0, 0, 0, err
	}
	return status, fence.Epoch, server.RetryAfterHint(header, 0), nil
}

// adoptTable installs t if it is newer than the current view.
func (c *Client) adoptTable(t Table) bool {
	if t.Validate() != nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Epoch <= c.table.Epoch {
		return false
	}
	c.table = t
	return true
}

// fetchTable pulls /cluster from the known members (live first), then the
// seed targets, adopting the first table newer than the current view; it
// also succeeds when a fetched table matches the current epoch (nothing
// newer exists). Used at startup and by Refresh.
func (c *Client) fetchTable() bool {
	cur := c.Table()
	var addrs []string
	for _, m := range cur.Alive() {
		addrs = append(addrs, m.Addr)
	}
	addrs = append(addrs, c.cfg.Targets...)
	for _, addr := range addrs {
		var t Table
		status, err := getJSON(c.hc, addr+"/cluster", &t)
		if err != nil || status/100 != 2 {
			continue
		}
		if c.adoptTable(t) || t.Epoch == c.Table().Epoch {
			return true
		}
	}
	return false
}

// Refresh re-fetches the membership table; routed operations call it
// automatically, so it is only needed to force a resync.
func (c *Client) Refresh() bool {
	c.refreshes.Add(1)
	return c.fetchTable()
}

// Acquire requests a lease from any live member, round-robin, skipping dead
// members and refreshing the table across failovers. It returns the grant
// and HTTP status; on a cluster-wide 503 the duration carries the smallest
// Retry-After pacing the members advertised.
func (c *Client) Acquire(ttlMillis int64) (GrantResponse, int, time.Duration, error) {
	rid := c.nextRID()
	sp := c.beginSpan("client.acquire", rid)
	for round := 0; ; round++ {
		t := c.Table()
		alive := t.Alive()
		start := c.rr.Add(1)
		sawFull := false
		hint := time.Duration(0)
		refresh := false
		for i := 0; i < len(alive); i++ {
			m := alive[(start+uint64(i))%uint64(len(alive))]
			var grant GrantResponse
			status, _, retry, err := c.hop(m, t.Epoch, rid, sp, server.AcquireRequest{TTLMillis: ttlMillis}, &grant, "/acquire")
			switch {
			case err != nil:
				c.deadHops.Add(1)
				refresh = true
			case status/100 == 2:
				if sp != nil {
					sp.SetNode(grant.NodeID, grant.Partition)
					sp.SetEpoch(grant.Epoch)
					sp.Finish("")
				}
				return grant, status, 0, nil
			case status == http.StatusServiceUnavailable:
				sawFull = true
				if retry > 0 && (hint == 0 || retry < hint) {
					hint = retry
				}
			case status == http.StatusPreconditionFailed:
				c.staleEpochs.Add(1)
				refresh = true
			default:
				sp.Finish(fmt.Sprintf("http_%d", status))
				return GrantResponse{}, status, 0, nil
			}
		}
		if sawFull {
			// At least one member answered authoritatively: the cluster is
			// saturated (or warming); pacing is the caller's business.
			sp.Finish(server.ErrCodeFull)
			return GrantResponse{}, http.StatusServiceUnavailable, hint, nil
		}
		if round+1 >= c.cfg.RouteRounds {
			sp.Finish("route_exhausted")
			return GrantResponse{}, 0, 0, fmt.Errorf("cluster: no member served acquire after %d rounds (rid=%s)", round+1, ridString(rid))
		}
		if refresh || len(alive) == 0 {
			c.Refresh()
		}
		c.backoffSleep(round, sp)
	}
}

// routed sends one owner-addressed operation with refresh-and-retry routing.
func (c *Client) routed(path string, name int, body any, out *GrantResponse) (int, error) {
	rid := c.nextRID()
	sp := c.beginSpan("client"+strings.ReplaceAll(path, "/", "."), rid)
	var lastErr error
	for round := 0; ; round++ {
		t := c.Table()
		p := t.PartitionOf(name)
		if p < 0 {
			sp.Finish(server.ErrCodeBadRequest)
			return 0, fmt.Errorf("cluster: name %d outside the namespace [0, %d)", name, t.Size())
		}
		owner, ok := t.Owner(p)
		if ok {
			status, fencedAt, _, err := c.hop(owner, t.Epoch, rid, sp, body, out, path)
			switch {
			case err != nil:
				c.deadHops.Add(1)
				lastErr = err
			case status == http.StatusPreconditionFailed:
				c.staleEpochs.Add(1)
				lastErr = fmt.Errorf("cluster: %s fenced by epoch %d (ours %d, rid=%s)", path, fencedAt, t.Epoch, ridString(rid))
			case status == http.StatusMisdirectedRequest:
				c.misroutes.Add(1)
				lastErr = fmt.Errorf("cluster: member %d no longer owns partition %d (rid=%s)", owner.ID, p, ridString(rid))
			default:
				if sp != nil {
					sp.SetNode(owner.ID, p)
					sp.SetEpoch(t.Epoch)
					if status/100 == 2 {
						sp.Finish("")
					} else {
						sp.Finish(fmt.Sprintf("http_%d", status))
					}
				}
				return status, nil
			}
		}
		if round+1 >= c.cfg.RouteRounds {
			sp.Finish("route_exhausted")
			return 0, fmt.Errorf("cluster: routing %s for name %d failed after %d rounds: %w", path, name, round+1, lastErr)
		}
		c.Refresh()
		c.backoffSleep(round, sp)
	}
}

// Renew extends a lease through the partition's owner.
func (c *Client) Renew(name int, token uint64, ttlMillis int64) (GrantResponse, int, error) {
	var grant GrantResponse
	status, err := c.routed("/renew", name, server.RenewRequest{Name: name, Token: token, TTLMillis: ttlMillis}, &grant)
	return grant, status, err
}

// Release frees a lease through the partition's owner.
func (c *Client) Release(name int, token uint64) (int, error) {
	return c.routed("/release", name, server.ReleaseRequest{Name: name, Token: token}, nil)
}

// CollectNode fetches one member's registered names (GET /collect).
func (c *Client) CollectNode(addr string) ([]int, error) {
	var resp server.CollectResponse
	status, err := getJSON(c.hc, addr+"/collect", &resp)
	if err != nil {
		return nil, err
	}
	if status/100 != 2 {
		return nil, fmt.Errorf("cluster: collect from %s returned %d", addr, status)
	}
	return resp.Names, nil
}

// NodeStats fetches one member's /stats.
func (c *Client) NodeStats(addr string) (NodeStatsResponse, error) {
	var s NodeStatsResponse
	status, err := getJSON(c.hc, addr+"/stats", &s)
	if err != nil {
		return s, err
	}
	if status/100 != 2 {
		return s, fmt.Errorf("cluster: stats from %s returned %d", addr, status)
	}
	return s, nil
}

// ClusterActive sums the active leases over every reachable live member, and
// reports how many members answered.
func (c *Client) ClusterActive() (active int64, reporting int) {
	for _, m := range c.Table().Alive() {
		s, err := c.NodeStats(m.Addr)
		if err != nil {
			continue
		}
		active += s.Active
		reporting++
	}
	return active, reporting
}
