package cluster

import (
	"net/http"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/wire"
)

// TestClusterWireRoutedOps drives the routed client against a healthy
// cluster and verifies every lease operation actually traveled over the
// binary protocol (no silent HTTP fallback).
func TestClusterWireRoutedOps(t *testing.T) {
	l := fastLocal(t, 3, 4, 128)
	c, err := NewClient(ClientConfig{Targets: l.Targets()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()

	for _, m := range c.Table().Members {
		if m.WireAddr == "" {
			t.Fatalf("member %d advertises no wire endpoint", m.ID)
		}
	}

	held := map[int]GrantResponse{}
	for i := 0; i < 48; i++ {
		g, status, _, err := c.Acquire(200)
		if err != nil || status != http.StatusOK {
			t.Fatalf("acquire %d: status %d err %v", i, status, err)
		}
		if _, dup := held[g.Name]; dup {
			t.Fatalf("name %d granted twice", g.Name)
		}
		held[g.Name] = g
	}
	for name, g := range held {
		if _, status, err := c.Renew(name, g.Token, 200); err != nil || status != http.StatusOK {
			t.Fatalf("renew %d: status %d err %v", name, status, err)
		}
		if status, err := c.Release(name, g.Token); err != nil || status != http.StatusOK {
			t.Fatalf("release %d: status %d err %v", name, status, err)
		}
		if _, status, err := c.Renew(name, g.Token, 200); err != nil || status != http.StatusConflict {
			t.Fatalf("stale renew %d: status %d err %v, want 409", name, status, err)
		}
	}

	counters := c.Counters()
	wantOps := uint64(48 * 4) // acquire + renew + release + fenced renew
	if counters.WireOps != wantOps {
		t.Fatalf("WireOps = %d, want %d (every op over the wire)", counters.WireOps, wantOps)
	}
	if counters.WireFallbacks != 0 {
		t.Fatalf("WireFallbacks = %d, want 0 on a healthy cluster", counters.WireFallbacks)
	}
}

// TestClusterWireDisabled checks the opt-out: with DisableWire the client
// never opens a binary connection.
func TestClusterWireDisabled(t *testing.T) {
	l := fastLocal(t, 3, 4, 128)
	c, err := NewClient(ClientConfig{Targets: l.Targets(), DisableWire: true})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	g, status, _, err := c.Acquire(200)
	if err != nil || status != http.StatusOK {
		t.Fatalf("acquire: status %d err %v", status, err)
	}
	if status, err := c.Release(g.Name, g.Token); err != nil || status != http.StatusOK {
		t.Fatalf("release: status %d err %v", status, err)
	}
	if ops := c.Counters().WireOps; ops != 0 {
		t.Fatalf("WireOps = %d with wire disabled, want 0", ops)
	}
}

// TestClusterWireEpochFencing talks raw frames to one member: a stale epoch
// must bounce with 412 carrying the node's current epoch, epoch 0 must pass
// unfenced, and the current epoch must be accepted.
func TestClusterWireEpochFencing(t *testing.T) {
	l := fastLocal(t, 3, 4, 128)
	node := l.Node(0)
	addr := l.WireTargets()[0]
	cl := wire.NewClient(addr, nil)
	defer cl.Close()

	var req wire.Request
	var resp wire.Response

	// Unfenced (epoch 0) acquire passes.
	req = wire.Request{Op: wire.OpAcquire, TTLMillis: 200}
	if err := cl.Do(&req, &resp); err != nil {
		t.Fatalf("unfenced acquire: %v", err)
	}
	if resp.Status != wire.StatusOK || len(resp.Grants) != 1 {
		t.Fatalf("unfenced acquire: %+v", resp)
	}
	if resp.Epoch != node.Epoch() {
		t.Fatalf("response epoch %d, node epoch %d", resp.Epoch, node.Epoch())
	}

	// A wrong epoch is fenced with the node's current epoch in the reply.
	req = wire.Request{Op: wire.OpAcquire, TTLMillis: 200, Epoch: node.Epoch() + 7}
	if err := cl.Do(&req, &resp); err != nil {
		t.Fatalf("fenced acquire: %v", err)
	}
	if resp.Status != wire.StatusStaleEpoch || resp.Code != wire.CodeStaleEpoch {
		t.Fatalf("stale-epoch acquire: %+v, want 412", resp)
	}
	if resp.Epoch != node.Epoch() {
		t.Fatalf("412 must carry the node's epoch: got %d, want %d", resp.Epoch, node.Epoch())
	}

	// The correct epoch is accepted.
	req = wire.Request{Op: wire.OpAcquire, TTLMillis: 200, Epoch: node.Epoch()}
	if err := cl.Do(&req, &resp); err != nil {
		t.Fatalf("current-epoch acquire: %v", err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("current-epoch acquire: %+v", resp)
	}
}

// TestClusterWireBatchOps exercises AcquireN/RenewSession/ReleaseN against
// one member: global names, per-item fencing, partition attribution.
func TestClusterWireBatchOps(t *testing.T) {
	l := fastLocal(t, 2, 4, 256)
	node := l.Node(0)
	cl := wire.NewClient(l.WireTargets()[0], nil)
	defer cl.Close()
	tbl := node.Table()

	var req wire.Request
	var resp wire.Response
	req = wire.Request{Op: wire.OpAcquireN, TTLMillis: 250, N: 40}
	if err := cl.Do(&req, &resp); err != nil {
		t.Fatalf("AcquireN: %v", err)
	}
	if resp.Status != wire.StatusOK || len(resp.Grants) != 40 {
		t.Fatalf("AcquireN: status %v, %d grants", resp.Status, len(resp.Grants))
	}
	seen := map[int64]bool{}
	grants := append([]wire.Grant(nil), resp.Grants...)
	for _, g := range grants {
		if seen[g.Name] {
			t.Fatalf("name %d granted twice in one batch", g.Name)
		}
		seen[g.Name] = true
		if got := tbl.PartitionOf(int(g.Name)); got != int(g.Partition) {
			t.Fatalf("grant names partition %d, table says %d", g.Partition, got)
		}
		if owner, _ := tbl.Owner(int(g.Partition)); owner.ID != int(g.NodeID) {
			t.Fatalf("grant from node %d but partition %d belongs to %d", g.NodeID, g.Partition, owner.ID)
		}
		if g.NodeID != 0 {
			t.Fatalf("node 0 granted on behalf of node %d", g.NodeID)
		}
	}

	// Bulk renew with one corrupted token and one foreign name.
	refs := make([]wire.Ref, 0, len(grants)+1)
	for _, g := range grants {
		refs = append(refs, wire.Ref{Name: g.Name, Token: g.Token})
	}
	refs[3].Token++                                        // stale
	refs = append(refs, wire.Ref{Name: 1 << 40, Token: 1}) // outside the namespace
	req = wire.Request{Op: wire.OpRenewSession, TTLMillis: 250, Items: refs}
	if err := cl.Do(&req, &resp); err != nil {
		t.Fatalf("RenewSession: %v", err)
	}
	if resp.Status != wire.StatusOK || len(resp.Items) != len(refs) {
		t.Fatalf("RenewSession: status %v, %d items for %d refs", resp.Status, len(resp.Items), len(refs))
	}
	for i, it := range resp.Items {
		switch i {
		case 3:
			if it.Status != wire.StatusConflict || it.Code != wire.CodeStaleToken {
				t.Fatalf("stale item: %+v, want 409 stale_token", it)
			}
		case len(refs) - 1:
			if it.Status != wire.StatusConflict || it.Code != wire.CodeNotLeased {
				t.Fatalf("foreign-name item: %+v, want 409 not_leased", it)
			}
		default:
			if it.Status != wire.StatusOK || it.DeadlineUnixMilli == 0 {
				t.Fatalf("item %d: %+v, want renewed deadline", i, it)
			}
		}
	}

	// Batch release of the good refs; the corrupted one is restored first.
	refs[3].Token--
	req = wire.Request{Op: wire.OpReleaseN, Items: refs[:len(refs)-1]}
	if err := cl.Do(&req, &resp); err != nil {
		t.Fatalf("ReleaseN: %v", err)
	}
	if resp.Status != wire.StatusOK || len(resp.Items) != len(refs)-1 {
		t.Fatalf("ReleaseN: status %v, %d items", resp.Status, len(resp.Items))
	}
	for i, it := range resp.Items {
		if it.Status != wire.StatusOK {
			t.Fatalf("release item %d: %+v", i, it)
		}
	}
}

// TestClusterChaosOverWire is the wire-mode acceptance run: chaos with a
// mid-run node kill, fully routed over the binary protocol, must stay
// violation-free.
func TestClusterChaosOverWire(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	l := fastLocal(t, 3, 4, 128)
	report, err := RunChaos(ChaosConfig{
		Local:        l,
		Clients:      8,
		Acquires:     3000,
		TTL:          300 * time.Millisecond,
		HoldMean:     time.Millisecond,
		CrashPercent: 10,
		RenewPercent: 20,
		Seed:         17,
		KillEvery:    150 * time.Millisecond,
		MinAlive:     2,
		ReclaimSlack: 400 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if v := report.Violations(); v != nil {
		t.Fatalf("chaos violations over wire: %v\nreport: %+v", v, report)
	}
	if report.Kills != 1 {
		t.Fatalf("kills = %d, want 1", report.Kills)
	}
	if report.Routing.WireOps == 0 {
		t.Fatal("chaos run never used the wire protocol")
	}
	t.Logf("wire ops %d, wire fallbacks %d (fallbacks onto HTTP are expected around the kill)",
		report.Routing.WireOps, report.Routing.WireFallbacks)
}
