// Package cluster partitions one global LevelArray namespace across N
// laserve nodes: the cross-process composition of the same aggregate-capacity
// guarantee the shard layer provides in-process.
//
// The namespace is cut into P (a power of two) partitions, each a complete
// lease manager over its own array on whichever node currently owns it. The
// encoding mirrors the shard layer one level down: the cluster-global name of
// local name l on partition p is p*stride + l, so cluster → shard → core all
// compose — a cluster name resolves to a partition, the partition's array may
// itself be sharded, and each shard is a paper LevelArray.
//
// Ownership lives in an epoch-versioned membership Table that every node
// serves (GET /cluster) and clients cache to route requests. Failure handling
// is the lease machinery lifted one level: when a member is marked down
// (consecutive health-probe misses), the steward — the lowest-ID live node —
// reassigns its partitions under a bumped epoch and pushes the new table to
// the survivors. Writes carry the client's epoch and are rejected with 412
// when stale, exactly as stale fencing tokens are rejected with 409 one layer
// down. The names the dead node granted are never transferred: they simply
// expire via their TTLs, and an adopted partition stays quarantined (503)
// until every lease the old owner could still have outstanding has expired,
// so no name is ever double-issued across the failover.
//
// The model is crash-stop: nodes fail by dying and do not rejoin, and the
// steward's push plus the epoch fence on every write keep routing convergent
// without consensus. Failure detection is quorum-guarded: a node that
// suspects half or more of the live membership assumes it is the partitioned
// minority and never reassigns, so only the majority side of a network split
// can bump the epoch; the minority keeps its old epoch and every client that
// has seen the bumped table is fenced away from it. (A fully consensus-grade
// membership service is out of scope: with fewer than three live members no
// failover happens at all.)
package cluster

import (
	"fmt"
	"sort"
)

// Member lifecycle states. Down stays the wire-compatible liveness bit
// (state down or left implies Down); State refines it for dynamic
// membership: a joining member is admitted but owns nothing yet, a draining
// member still serves what it owns while the planner migrates it empty, and
// a left member drained cleanly and is never auto-rejoined (unlike a down
// member, which a steward re-ups once its probes recover).
const (
	StateJoining  = "joining"
	StateLive     = "live"
	StateDraining = "draining"
	StateDown     = "down"
	StateLeft     = "left"
)

// Member is one configured cluster node.
type Member struct {
	// ID is the node's index in the configured peer list; IDs are dense,
	// stable, and double as the steward priority (lowest live ID acts).
	ID int `json:"id"`
	// Addr is the node's advertised base URL, e.g. "http://10.0.0.7:8080".
	Addr string `json:"addr"`
	// WireAddr is the node's advertised binary wire-protocol endpoint
	// (host:port, no scheme), empty when the node serves HTTP only. Routed
	// clients prefer it for lease operations and fall back to Addr.
	WireAddr string `json:"wire_addr,omitempty"`
	// Down marks a member the steward has declared failed (or drained away).
	// It is kept consistent with State so tables from older builds — which
	// only know Down — keep meaning the same thing.
	Down bool `json:"down"`
	// State is the member's lifecycle state (one of the State* constants).
	// Empty in tables written by older builds; read it through the
	// Member.state accessor, which derives live/down from Down.
	State string `json:"state,omitempty"`
	// ChangedAtUnixMillis is when the member last changed state, stamped by
	// the membership transforms; 0 in boot tables and tables from older
	// builds. `lactl members` renders it as the last-transition age.
	ChangedAtUnixMillis int64 `json:"changed_at_unix_ms,omitempty"`
}

// state returns the member's effective lifecycle state, deriving it from the
// legacy Down bit when State is unset.
func (m Member) state() string {
	if m.State != "" {
		return m.State
	}
	if m.Down {
		return StateDown
	}
	return StateLive
}

// EffectiveState is the exported form of state, for CLIs and harnesses.
func (m Member) EffectiveState() string { return m.state() }

// Serving reports whether the member may own partitions: live and draining
// members serve; joining, down and left members do not.
func (m Member) Serving() bool {
	s := m.state()
	return s == StateLive || s == StateDraining
}

// Table is the epoch-versioned membership and partition-ownership map. It is
// a value type: methods that change it return a copy, and nodes swap whole
// tables under their lock, so a Table read is always internally consistent.
type Table struct {
	// Epoch versions the table; every reassignment bumps it. Writes carry
	// the client's epoch and are fenced (412) when it does not match.
	Epoch uint64 `json:"epoch"`
	// Partitions is P, the partition count (a power of two).
	Partitions int `json:"partitions"`
	// Stride is the per-partition namespace size: cluster name =
	// partition*Stride + local name.
	Stride int `json:"stride"`
	// Capacity is the total cluster capacity (sum of partition capacities).
	Capacity int `json:"capacity"`
	// Members lists every configured node in ID order, including down ones.
	Members []Member `json:"members"`
	// Assignment maps partition -> owning member ID.
	Assignment []int `json:"assignment"`
}

// NewTable builds the epoch-1 table: every member up, partitions dealt
// round-robin in ID order, so all nodes independently construct identical
// initial tables from the same configuration.
func NewTable(members []Member, partitions, stride, capacity int) (Table, error) {
	t := Table{
		Epoch:      1,
		Partitions: partitions,
		Stride:     stride,
		Capacity:   capacity,
		Members:    append([]Member(nil), members...),
		Assignment: make([]int, partitions),
	}
	sort.Slice(t.Members, func(i, j int) bool { return t.Members[i].ID < t.Members[j].ID })
	for p := range t.Assignment {
		t.Assignment[p] = t.Members[p%len(t.Members)].ID
	}
	if err := t.Validate(); err != nil {
		return Table{}, err
	}
	return t, nil
}

// Validate checks the table's structural invariants; every table accepted
// over the wire passes through it.
func (t Table) Validate() error {
	if t.Epoch == 0 {
		return fmt.Errorf("cluster: table epoch must be positive")
	}
	if t.Partitions < 1 || t.Partitions&(t.Partitions-1) != 0 {
		return fmt.Errorf("cluster: partition count %d is not a power of two", t.Partitions)
	}
	if t.Stride < 1 {
		return fmt.Errorf("cluster: stride %d must be positive", t.Stride)
	}
	if t.Capacity < 1 {
		return fmt.Errorf("cluster: capacity %d must be positive", t.Capacity)
	}
	if len(t.Members) == 0 {
		return fmt.Errorf("cluster: table has no members")
	}
	alive := 0
	for i, m := range t.Members {
		if m.ID != i {
			return fmt.Errorf("cluster: member IDs must be dense and sorted, got %d at index %d", m.ID, i)
		}
		if m.Addr == "" {
			return fmt.Errorf("cluster: member %d has no address", m.ID)
		}
		switch s := m.state(); s {
		case StateJoining, StateLive, StateDraining, StateDown, StateLeft:
		default:
			return fmt.Errorf("cluster: member %d has unknown state %q", m.ID, s)
		}
		if m.Down != (m.state() == StateDown || m.state() == StateLeft) {
			return fmt.Errorf("cluster: member %d state %q disagrees with down=%v", m.ID, m.state(), m.Down)
		}
		if !m.Down {
			alive++
		}
	}
	if alive == 0 {
		return fmt.Errorf("cluster: table has no live members")
	}
	if len(t.Assignment) != t.Partitions {
		return fmt.Errorf("cluster: assignment covers %d partitions, want %d", len(t.Assignment), t.Partitions)
	}
	for p, id := range t.Assignment {
		if id < 0 || id >= len(t.Members) {
			return fmt.Errorf("cluster: partition %d assigned to unknown member %d", p, id)
		}
		if !t.Members[id].Serving() {
			return fmt.Errorf("cluster: partition %d assigned to non-serving member %d (%s)", p, id, t.Members[id].state())
		}
	}
	return nil
}

// Size returns the cluster-global namespace size.
func (t Table) Size() int { return t.Partitions * t.Stride }

// PartitionOf maps a cluster-global name to its partition, or -1 when the
// name lies outside the namespace.
func (t Table) PartitionOf(name int) int {
	if name < 0 || name >= t.Size() {
		return -1
	}
	return name / t.Stride
}

// Owner returns the member owning the given partition.
func (t Table) Owner(partition int) (Member, bool) {
	if partition < 0 || partition >= len(t.Assignment) {
		return Member{}, false
	}
	return t.Members[t.Assignment[partition]], true
}

// PartitionsOf returns the partitions assigned to member id, in order.
func (t Table) PartitionsOf(id int) []int {
	var out []int
	for p, owner := range t.Assignment {
		if owner == id {
			out = append(out, p)
		}
	}
	return out
}

// Alive returns the live members, in ID order.
func (t Table) Alive() []Member {
	var out []Member
	for _, m := range t.Members {
		if !m.Down {
			out = append(out, m)
		}
	}
	return out
}

// Steward returns the member that acts on failures and migrations: the
// lowest-ID serving member. Joining members are skipped — they own nothing
// and may not even have converged on the table yet.
func (t Table) Steward() (Member, bool) {
	for _, m := range t.Members {
		if m.Serving() {
			return m, true
		}
	}
	return Member{}, false
}

// Clone returns a deep copy.
func (t Table) Clone() Table {
	t.Members = append([]Member(nil), t.Members...)
	t.Assignment = append([]int(nil), t.Assignment...)
	return t
}

// Reassign marks member downID down and deals its partitions round-robin
// over the surviving members in ID order, under a bumped epoch. The result
// is a pure function of (table, downID), so any steward that observes the
// same failure computes the same next table. It returns false when the
// member is unknown, already down, or the last one standing.
func (t Table) Reassign(downID int) (Table, bool) {
	if downID < 0 || downID >= len(t.Members) || t.Members[downID].Down {
		return Table{}, false
	}
	nt := t.Clone()
	nt.Members[downID].Down = true
	nt.Members[downID].State = StateDown
	var survivors []Member
	for _, m := range nt.Members {
		if m.Serving() {
			survivors = append(survivors, m)
		}
	}
	if len(survivors) == 0 {
		return Table{}, false
	}
	next := 0
	for p, owner := range nt.Assignment {
		if owner == downID {
			nt.Assignment[p] = survivors[next%len(survivors)].ID
			next++
		}
	}
	nt.Epoch = t.Epoch + 1
	return nt, true
}

// The membership transforms below are, like Reassign, pure functions of the
// table: they return a copy under a bumped epoch and never mutate the
// receiver, so a steward can compute a next table, attempt a side effect
// (snapshot ship, admission RPC) and only then adopt and push it. `at` is
// the transition timestamp stamped into the member (Unix millis).

// AddMember admits a new node in the joining state: it gets the next dense
// ID, owns nothing, and is promoted to live by the steward once it answers
// probes. If addr is already a member, the table is returned unchanged with
// that member's ID (join is idempotent).
func (t Table) AddMember(addr, wireAddr string, at int64) (Table, int, bool) {
	if addr == "" {
		return Table{}, -1, false
	}
	for _, m := range t.Members {
		if m.Addr == addr {
			return t, m.ID, true
		}
	}
	nt := t.Clone()
	id := len(nt.Members)
	nt.Members = append(nt.Members, Member{
		ID: id, Addr: addr, WireAddr: wireAddr,
		State: StateJoining, ChangedAtUnixMillis: at,
	})
	nt.Epoch = t.Epoch + 1
	return nt, id, true
}

// SetState moves one member to the given lifecycle state under a bumped
// epoch, keeping the legacy Down bit consistent. It does not touch the
// assignment, so callers must only request transitions that keep the table
// valid (e.g. a member still owning partitions cannot go down or left).
func (t Table) SetState(id int, state string, at int64) (Table, bool) {
	if id < 0 || id >= len(t.Members) || t.Members[id].state() == state {
		return Table{}, false
	}
	nt := t.Clone()
	nt.Members[id].State = state
	nt.Members[id].Down = state == StateDown || state == StateLeft
	nt.Members[id].ChangedAtUnixMillis = at
	nt.Epoch = t.Epoch + 1
	return nt, true
}

// Rejoin re-ups a down member: it returns live owning nothing, and the
// planner hands it partitions afterwards. Members that left cleanly are not
// rejoined — leaving is the one deliberate, sticky exit.
func (t Table) Rejoin(id int, at int64) (Table, bool) {
	if id < 0 || id >= len(t.Members) || t.Members[id].state() != StateDown {
		return Table{}, false
	}
	return t.SetState(id, StateLive, at)
}

// Drain marks a member draining: it keeps serving what it owns while the
// planner migrates it empty, after which Leave retires it. Refused when the
// member is not live or is the only serving member.
func (t Table) Drain(id int, at int64) (Table, bool) {
	if id < 0 || id >= len(t.Members) || t.Members[id].state() != StateLive {
		return Table{}, false
	}
	serving := 0
	for _, m := range t.Members {
		if m.Serving() {
			serving++
		}
	}
	if serving <= 1 {
		return Table{}, false
	}
	return t.SetState(id, StateDraining, at)
}

// Leave retires a drained member. Refused while it still owns partitions:
// the planner must migrate it empty first.
func (t Table) Leave(id int, at int64) (Table, bool) {
	if id < 0 || id >= len(t.Members) || t.Members[id].state() != StateDraining {
		return Table{}, false
	}
	if len(t.PartitionsOf(id)) != 0 {
		return Table{}, false
	}
	return t.SetState(id, StateLeft, at)
}

// Move reassigns one partition to member `to` under a bumped epoch — the
// routing half of a live migration; the state ships separately (fence →
// snapshot → cutover). Refused when the target cannot serve or already owns
// the partition.
func (t Table) Move(p, to int) (Table, bool) {
	if p < 0 || p >= len(t.Assignment) || to < 0 || to >= len(t.Members) {
		return Table{}, false
	}
	if t.Members[to].state() != StateLive || t.Assignment[p] == to {
		return Table{}, false
	}
	nt := t.Clone()
	nt.Assignment[p] = to
	nt.Epoch = t.Epoch + 1
	return nt, true
}

// MemberStates counts members per effective lifecycle state — the
// la_cluster_members{state} gauge and the `lactl members` summary line.
func (t Table) MemberStates() map[string]int {
	out := make(map[string]int, 5)
	for _, m := range t.Members {
		out[m.state()]++
	}
	return out
}
