package cluster

// Flight-recorder integration tests: the event journal must explain a
// failover end to end, and the span rings must stay readable (and race-free)
// while a chaos run hammers the cluster.

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/trace"
)

// fetchEvents reads one node's /debug/events journal.
func fetchEvents(t *testing.T, hc *http.Client, base string) []trace.Event {
	t.Helper()
	var resp trace.EventsResponse
	if status, err := getJSON(hc, base+"/debug/events", &resp); err != nil || status/100 != 2 {
		t.Fatalf("GET %s/debug/events: status %d err %v", base, status, err)
	}
	return resp.Events
}

// TestFailoverEventTimeline kills a member and asserts the merged event
// journals explain the transition causally: a steward failover decision with
// the vote set, then an epoch bump attributed to it, then a quarantine start
// for every adopted partition — all ordered within the merged timeline.
func TestFailoverEventTimeline(t *testing.T) {
	l := fastLocal(t, 3, 8, 256)
	hc := &http.Client{Timeout: 2 * time.Second}

	victim := 2
	l.Kill(victim)
	if !l.WaitForEpoch(2, 5*time.Second) {
		t.Fatal("epoch never bumped after kill")
	}
	// Let the push fan out so every survivor has journaled its adoption.
	deadline := time.Now().Add(2 * time.Second)
	for _, id := range l.AliveIDs() {
		for l.Node(id).Epoch() < 2 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
	}

	var journals [][]trace.Event
	for _, id := range l.AliveIDs() {
		n := l.Node(id)
		journals = append(journals, fetchEvents(t, hc, n.Table().Members[id].Addr))
	}
	merged := trace.MergeEvents(journals...)

	var (
		decisionIdx   = -1
		stewardBump   = -1
		quarantines   int
		bumpsAtTwo    int
		causelessBump []trace.Event
	)
	for i, e := range merged {
		switch e.Type {
		case trace.EvFailoverDecision:
			if decisionIdx == -1 {
				decisionIdx = i
			}
			if e.Cause != "probe_timeout" {
				t.Fatalf("failover decision with cause %q, want probe_timeout: %+v", e.Cause, e)
			}
		case trace.EvEpochBump:
			if e.Cause == "" {
				causelessBump = append(causelessBump, e)
			}
			if e.Epoch == 2 {
				bumpsAtTwo++
				if e.Cause == "steward_reassign" && stewardBump == -1 {
					stewardBump = i
				}
			}
		case trace.EvQuarantineStart:
			if e.Epoch == 2 {
				quarantines++
			}
		}
	}
	if decisionIdx == -1 {
		t.Fatalf("no failover_decision in merged timeline: %+v", merged)
	}
	if stewardBump == -1 {
		t.Fatalf("no steward_reassign epoch bump to 2 in merged timeline: %+v", merged)
	}
	if decisionIdx > stewardBump {
		t.Fatalf("failover decision at %d after its epoch bump at %d", decisionIdx, stewardBump)
	}
	if len(causelessBump) > 0 {
		t.Fatalf("epoch bumps without a recorded cause: %+v", causelessBump)
	}
	// Both survivors bump (the steward plus the push receiver), and the
	// victim's partitions are adopted under quarantine on the survivors.
	if bumpsAtTwo < 2 {
		t.Fatalf("only %d nodes journaled the bump to epoch 2", bumpsAtTwo)
	}
	if quarantines == 0 {
		t.Fatal("no quarantine_start journaled for the adopted partitions")
	}
}

// TestChaosWithTracingUnderDebugReads runs the kill-chaos acceptance with
// per-node flight recorders enabled while a reader goroutine hammers the
// /debug/trace rings — concurrent span writes and snapshot reads are the
// race-detector assertion, and the report must show the journal explaining
// the run's epoch bump.
func TestChaosWithTracingUnderDebugReads(t *testing.T) {
	l, err := StartLocal(LocalConfig{
		Nodes:      3,
		Partitions: 4,
		Capacity:   128,
		Seed:       7,
		Trace:      true,
		Node: NodeConfig{
			Lease:         lease.Config{TickInterval: 20 * time.Millisecond},
			DefaultTTL:    300 * time.Millisecond,
			MaxTTL:        300 * time.Millisecond,
			ProbeInterval: 25 * time.Millisecond,
			DownAfter:     2,
			Logf:          t.Logf,
		},
	})
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	t.Cleanup(l.Close)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	hc := &http.Client{Timeout: 2 * time.Second}
	for _, target := range l.Targets() {
		readers.Add(1)
		go func(base string) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var tr trace.TraceResponse
					_, _ = getJSON(hc, base+"/debug/trace", &tr)
					_, _ = getJSON(hc, base+"/debug/trace/slow", &tr)
					time.Sleep(10 * time.Millisecond)
				}
			}
		}(target)
	}

	report, err := RunChaos(ChaosConfig{
		Local:        l,
		Clients:      8,
		Acquires:     4000,
		TTL:          300 * time.Millisecond,
		HoldMean:     time.Millisecond,
		CrashPercent: 10,
		RenewPercent: 20,
		Seed:         13,
		KillEvery:    150 * time.Millisecond,
		MinAlive:     2,
		ReclaimSlack: 400 * time.Millisecond,
		Logf:         t.Logf,
	})
	close(stop)
	readers.Wait()
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if v := report.Violations(); v != nil {
		t.Fatalf("chaos violations: %v\nreport: %+v", v, report)
	}
	if report.EventsDisabled || report.EventsCaptured == 0 {
		t.Fatalf("events watcher captured nothing: %+v", report)
	}
	if report.EventCounts[trace.EvEpochBump] == 0 {
		t.Fatalf("no epoch bump in the journal despite %d bumps: %+v", report.EpochBumps, report.EventCounts)
	}

	// The survivors' recorders saw the load: spans finished, with per-phase
	// attribution available over /debug/trace.
	sawSpans := false
	for _, id := range l.AliveIDs() {
		var tr trace.TraceResponse
		n := l.Node(id)
		if status, err := getJSON(hc, n.Table().Members[id].Addr+"/debug/trace", &tr); err != nil || status/100 != 2 {
			t.Fatalf("GET /debug/trace on node %d: status %d err %v", id, status, err)
		}
		if !tr.Enabled {
			t.Fatalf("node %d recorder disabled under LocalConfig.Trace", id)
		}
		if tr.SpansFinished > 0 && len(tr.Spans) > 0 {
			sawSpans = true
		}
	}
	if !sawSpans {
		t.Fatal("no node retained any spans after a 4000-acquire run")
	}
}
