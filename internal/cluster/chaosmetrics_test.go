package cluster

import (
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/lease"
)

// TestMetricsDuringChaos kills a node mid-run while the metrics watcher
// scrapes every member: the failover must be visible in /metrics alone — the
// quarantine counter moves, every adopted partition reappears under a
// survivor's gauges — with no counter regressions, no missing families, and
// occupancy gauges that agree with /stats at the end. Scrapers run
// concurrently with the load and the killer, so the race detector gets the
// full read path too.
func TestMetricsDuringChaos(t *testing.T) {
	l := fastLocal(t, 3, 4, 128)
	report, err := RunChaos(ChaosConfig{
		Local:        l,
		Clients:      8,
		Acquires:     4000,
		TTL:          300 * time.Millisecond,
		HoldMean:     time.Millisecond,
		CrashPercent: 10,
		RenewPercent: 20,
		Seed:         17,
		KillEvery:    150 * time.Millisecond,
		MinAlive:     2,
		ReclaimSlack: 400 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if v := report.Violations(); v != nil {
		t.Fatalf("chaos violations: %v\nreport: %+v", v, report)
	}
	if report.Kills != 1 {
		t.Fatalf("kills = %d, want exactly 1", report.Kills)
	}
	if report.MetricsDisabled {
		t.Fatal("metrics watcher disabled against a metrics-enabled harness")
	}
	if report.MetricsScrapes == 0 {
		t.Fatal("metrics watcher recorded no scrapes")
	}
	if report.MetricsQuarantines == 0 {
		t.Fatal("quarantine counter never moved in /metrics despite a kill")
	}
	if len(report.MetricsMidKillQuarantines) != report.Kills {
		t.Fatalf("mid-kill snapshots %v, want one per kill (%d)", report.MetricsMidKillQuarantines, report.Kills)
	}
	if report.MetricsAdoptedUnobserved != 0 {
		t.Fatalf("%d adopted partitions never reappeared in survivors' /metrics", report.MetricsAdoptedUnobserved)
	}
	if report.MetricsMonotonicityViolations != 0 {
		t.Fatalf("%d counter series went backward", report.MetricsMonotonicityViolations)
	}
	if len(report.MetricsFamiliesMissing) != 0 {
		t.Fatalf("required families missing: %v", report.MetricsFamiliesMissing)
	}
	if len(report.MetricsOccupancyDisagreements) != 0 {
		t.Fatalf("occupancy disagreements: %v", report.MetricsOccupancyDisagreements)
	}
}

// TestChaosMetricsDisabled runs a short healthy chaos pass against a cluster
// booted without registries: the watcher must self-disable on the 404 and
// report no metrics violations rather than failing the run.
func TestChaosMetricsDisabled(t *testing.T) {
	l, err := StartLocal(LocalConfig{
		Nodes:          3,
		Partitions:     4,
		Capacity:       128,
		Seed:           7,
		DisableMetrics: true,
		Node: NodeConfig{
			Lease:         lease.Config{TickInterval: 20 * time.Millisecond},
			DefaultTTL:    300 * time.Millisecond,
			MaxTTL:        300 * time.Millisecond,
			ProbeInterval: 25 * time.Millisecond,
			DownAfter:     2,
			Logf:          t.Logf,
		},
	})
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	t.Cleanup(l.Close)
	report, err := RunChaos(ChaosConfig{
		Local:    l,
		Clients:  4,
		Acquires: 400,
		TTL:      300 * time.Millisecond,
		Seed:     19,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if !report.MetricsDisabled {
		t.Fatal("watcher did not self-disable against a metrics-less cluster")
	}
	if report.MetricsScrapes != 0 {
		t.Fatalf("scrapes = %d on a metrics-less cluster", report.MetricsScrapes)
	}
	if v := report.Violations(); v != nil {
		t.Fatalf("violations: %v", v)
	}
}
