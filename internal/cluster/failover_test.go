package cluster

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/lease"
)

// fastLocal boots an in-process cluster tuned for test speed: 20ms lease
// ticks, 25ms probes, two misses to suspicion, 300ms TTL ceiling.
func fastLocal(t *testing.T, nodes, partitions, capacity int) *Local {
	t.Helper()
	l, err := StartLocal(LocalConfig{
		Nodes:      nodes,
		Partitions: partitions,
		Capacity:   capacity,
		Seed:       7,
		Node: NodeConfig{
			Lease:         lease.Config{TickInterval: 20 * time.Millisecond},
			DefaultTTL:    300 * time.Millisecond,
			MaxTTL:        300 * time.Millisecond,
			ProbeInterval: 25 * time.Millisecond,
			DownAfter:     2,
			Logf:          t.Logf,
		},
	})
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	t.Cleanup(l.Close)
	return l
}

// TestRoutedClientBasics drives acquire/renew/release through the routed
// client against a healthy 3-node cluster and checks global uniqueness and
// fencing.
func TestRoutedClientBasics(t *testing.T) {
	l, err := StartLocal(LocalConfig{
		Nodes:      3,
		Partitions: 8,
		Capacity:   256,
		Seed:       7,
		Node: NodeConfig{
			Lease:         lease.Config{TickInterval: 20 * time.Millisecond},
			DefaultTTL:    time.Minute,
			MaxTTL:        time.Minute,
			ProbeInterval: 25 * time.Millisecond,
			DownAfter:     2,
		},
	})
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	t.Cleanup(l.Close)
	c, err := NewClient(ClientConfig{Targets: l.Targets()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	tbl := c.Table()
	if tbl.Epoch != 1 || len(tbl.Alive()) != 3 {
		t.Fatalf("initial table epoch %d alive %d", tbl.Epoch, len(tbl.Alive()))
	}

	type grant struct {
		g GrantResponse
	}
	held := map[int]grant{}
	nodesSeen := map[int]bool{}
	for i := 0; i < 96; i++ {
		g, status, _, err := c.Acquire(60_000)
		if err != nil || status != http.StatusOK {
			t.Fatalf("acquire %d: status %d err %v", i, status, err)
		}
		if _, dup := held[g.Name]; dup {
			t.Fatalf("name %d granted twice while held", g.Name)
		}
		if got := tbl.PartitionOf(g.Name); got != g.Partition {
			t.Fatalf("grant partition %d, table says %d", g.Partition, got)
		}
		if owner, _ := tbl.Owner(g.Partition); owner.ID != g.NodeID {
			t.Fatalf("grant from node %d but table owner is %d", g.NodeID, owner.ID)
		}
		held[g.Name] = grant{g: g}
		nodesSeen[g.NodeID] = true
	}
	if len(nodesSeen) != 3 {
		t.Fatalf("round-robin acquire used %d of 3 nodes", len(nodesSeen))
	}
	for name, h := range held {
		if _, status, err := c.Renew(name, h.g.Token, 60_000); err != nil || status != http.StatusOK {
			t.Fatalf("renew %d: status %d err %v", name, status, err)
		}
		if status, err := c.Release(name, h.g.Token); err != nil || status != http.StatusOK {
			t.Fatalf("release %d: status %d err %v", name, status, err)
		}
		// Fencing: the released token is dead cluster-wide.
		if _, status, err := c.Renew(name, h.g.Token, 60_000); err != nil || status != http.StatusConflict {
			t.Fatalf("stale renew %d: status %d err %v, want 409", name, status, err)
		}
	}
}

// TestFailoverEndToEnd kills a node and verifies the full lifted-lease
// story: epoch bump, reassignment to survivors, stale-epoch fencing of old
// writers, ghost-lease fencing, quarantine, and reissue of the dead node's
// names after the quarantine horizon.
func TestFailoverEndToEnd(t *testing.T) {
	l := fastLocal(t, 3, 8, 256)
	c, err := NewClient(ClientConfig{Targets: l.Targets()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	tbl := c.Table()

	// Hold one lease per node so the victim is guaranteed to hold some.
	held := map[int]GrantResponse{}
	for len(held) < 24 {
		g, status, _, err := c.Acquire(300) // 300ms, the cluster MaxTTL
		if err != nil || status != http.StatusOK {
			t.Fatalf("acquire: status %d err %v", status, err)
		}
		held[g.Name] = g
	}

	victim := 2
	victimAddr := tbl.Members[victim].Addr
	var victimGrants []GrantResponse
	for _, g := range held {
		if g.NodeID == victim {
			victimGrants = append(victimGrants, g)
		}
	}
	if len(victimGrants) == 0 {
		t.Fatal("victim holds no leases; test setup broken")
	}

	killedAt := time.Now()
	l.Kill(victim)
	if !l.WaitForEpoch(2, 5*time.Second) {
		t.Fatal("epoch never bumped after kill")
	}
	bumpAt := time.Now()
	if d := bumpAt.Sub(killedAt); d > 2*time.Second {
		t.Fatalf("failover took %v, want well under 2s at 25ms probes", d)
	}

	// Every survivor converges on a table marking the victim down, with all
	// partitions on survivors.
	deadlineT := time.Now().Add(2 * time.Second)
	for _, id := range l.AliveIDs() {
		for l.Node(id).Epoch() < 2 && time.Now().Before(deadlineT) {
			time.Sleep(5 * time.Millisecond)
		}
		nt := l.Node(id).Table()
		if !nt.Members[victim].Down {
			t.Fatalf("node %d table does not mark victim down", id)
		}
		for p, owner := range nt.Assignment {
			if owner == victim {
				t.Fatalf("node %d still assigns partition %d to the victim", id, p)
			}
		}
	}

	// A writer stuck on the old epoch is fenced with 412 by survivors.
	survivor := l.Node(l.AliveIDs()[0])
	survivorAddr := survivor.Table().Members[survivor.ID()].Addr
	var fence EpochResponse
	hc := &http.Client{Timeout: 2 * time.Second}
	status, _, err := postJSON(hc, survivorAddr+"/acquire", 1, "", map[string]any{"ttl_ms": 300}, nil, &fence)
	if err != nil || status != http.StatusPreconditionFailed || fence.Error != ErrCodeStaleEpoch {
		t.Fatalf("old-epoch write: status %d body %+v err %v, want 412 stale_epoch", status, fence, err)
	}

	// The dead node's address refuses connections (crash-stop, not zombie).
	if _, _, err := postJSON(hc, victimAddr+"/acquire", 0, "", map[string]any{}, nil, nil); err == nil {
		t.Fatal("killed node still answering")
	}

	// Ghost leases (granted by the victim) are fenced at the new owners.
	c.Refresh()
	for _, g := range victimGrants {
		_, status, err := c.Renew(g.Name, g.Token, 300)
		if err != nil || status != http.StatusConflict {
			t.Fatalf("ghost renew of %d: status %d err %v, want 409", g.Name, status, err)
		}
	}

	// Survivors' leases are untouched by the failover.
	for _, g := range held {
		if g.NodeID == victim {
			continue
		}
		if _, status, err := c.Renew(g.Name, g.Token, 300); err != nil || status != http.StatusOK {
			t.Fatalf("survivor renew of %d: status %d err %v", g.Name, status, err)
		}
	}

	// After the quarantine horizon (MaxTTL + 2 ticks from adoption, bounded
	// by bump + TTL + 2 ticks + slack), every one of the victim's names is
	// grantable again: fill the cluster to the brim and check coverage.
	time.Sleep(time.Until(bumpAt.Add(300*time.Millisecond + 2*20*time.Millisecond + 500*time.Millisecond)))
	wanted := map[int]bool{}
	for _, g := range victimGrants {
		wanted[g.Name] = true
	}
	var (
		fillMu sync.Mutex
		fills  []GrantResponse
	)
	covered := func() bool {
		fillMu.Lock()
		defer fillMu.Unlock()
		return len(wanted) == 0
	}
	// Concurrent fill with an early exit once every victim-held name has
	// been observed reissued: the fills carry the 300ms MaxTTL, so a slow
	// (race-mode, loaded-CI) sequential sweep could churn against its own
	// expirations without ever saturating.
	fillDeadline := time.Now().Add(10 * time.Second)
	var fillWG sync.WaitGroup
	for w := 0; w < 8; w++ {
		fillWG.Add(1)
		go func() {
			defer fillWG.Done()
			for !covered() && time.Now().Before(fillDeadline) {
				g, status, _, err := c.Acquire(-1) // clamped to MaxTTL by the nodes
				if err != nil || status != http.StatusOK {
					return // cluster full (or unreachable): saturation reached
				}
				fillMu.Lock()
				delete(wanted, g.Name)
				fills = append(fills, g)
				fillMu.Unlock()
			}
		}()
	}
	fillWG.Wait()
	if !covered() {
		t.Fatalf("victim-held names %v not reissued by the fill sweep", wanted)
	}
	for _, g := range fills {
		status, err := c.Release(g.Name, g.Token)
		if err != nil {
			t.Fatalf("fill release %d: %v", g.Name, err)
		}
		// The fills carry the 300ms MaxTTL, so stragglers may have expired
		// by the time this loop reaches them; that 409 is legitimate.
		if status != http.StatusOK && !(status == http.StatusConflict && time.Now().After(time.UnixMilli(g.DeadlineUnixMillis))) {
			t.Fatalf("fill release %d: status %d (granted by node %d, deadline still %v away)", g.Name, status, g.NodeID, time.Until(time.UnixMilli(g.DeadlineUnixMillis)))
		}
	}
}

// TestChaosRunCleanWithoutKills runs the chaos verifier against a healthy
// cluster: the cluster-level regression of PR 4's loadgen contract.
func TestChaosRunCleanWithoutKills(t *testing.T) {
	l := fastLocal(t, 3, 4, 128)
	report, err := RunChaos(ChaosConfig{
		Local:        l,
		Clients:      8,
		Acquires:     1500,
		TTL:          300 * time.Millisecond,
		HoldMean:     100 * time.Microsecond,
		CrashPercent: 10,
		RenewPercent: 20,
		Seed:         11,
		ReclaimSlack: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if v := report.Violations(); v != nil {
		t.Fatalf("violations on a healthy cluster: %v", v)
	}
	if report.Acquires < 1500 {
		t.Fatalf("acquires %d, want >= 1500", report.Acquires)
	}
	if report.Crashes == 0 || report.StaleRejected == 0 {
		t.Fatalf("crash path unexercised: crashes %d staleRejected %d", report.Crashes, report.StaleRejected)
	}
	if report.Kills != 0 || report.OrphanEvents != 0 {
		t.Fatalf("phantom kills: %+v", report)
	}
}

// TestChaosRunSurvivesNodeKill is the in-process acceptance test: a chaos
// run with a mid-run node kill must stay violation-free, observe the epoch
// bump, and reissue every orphan.
func TestChaosRunSurvivesNodeKill(t *testing.T) {
	l := fastLocal(t, 3, 4, 128)
	report, err := RunChaos(ChaosConfig{
		Local:        l,
		Clients:      8,
		Acquires:     4000,
		TTL:          300 * time.Millisecond,
		HoldMean:     time.Millisecond, // stretches the run well past the first kill tick
		CrashPercent: 10,
		RenewPercent: 20,
		Seed:         13,
		KillEvery:    150 * time.Millisecond,
		MinAlive:     2,
		ReclaimSlack: 400 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if v := report.Violations(); v != nil {
		t.Fatalf("chaos violations: %v\nreport: %+v", v, report)
	}
	if report.Kills != 1 {
		t.Fatalf("kills = %d, want exactly 1 (MinAlive 2 of 3)", report.Kills)
	}
	if report.EpochBumps != 1 || report.FinalEpoch < 2 {
		t.Fatalf("epoch bumps %d final epoch %d", report.EpochBumps, report.FinalEpoch)
	}
	if report.OrphanEvents != report.OrphansReissued+report.OrphansFree {
		t.Fatalf("orphan accounting: %d events, %d reissued + %d free", report.OrphanEvents, report.OrphansReissued, report.OrphansFree)
	}
	if report.FillAcquired == 0 {
		t.Fatal("adoption probe did not run")
	}
	// Two survivors over 4 partitions must still serve the whole namespace.
	if len(report.Nodes) != 2 {
		t.Fatalf("final stats from %d nodes, want 2", len(report.Nodes))
	}
	parts := 0
	for _, ns := range report.Nodes {
		parts += len(ns.Partitions)
	}
	if parts != 4 {
		t.Fatalf("survivors own %d partitions, want all 4", parts)
	}
}
