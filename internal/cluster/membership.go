package cluster

// Dynamic membership and live partition rebalancing. The crash-stop model
// gets three relaxations, all steward-driven and all flowing through the
// same epoch-fenced table swaps as failover:
//
//   - join: a new node POSTs /cluster/join to any member; the steward admits
//     it under a bumped epoch in the joining state (owning nothing), promotes
//     it to live once it answers probes, and the planner migrates partitions
//     onto it.
//   - drain/leave: POST /cluster/drain marks a member draining; the planner
//     migrates it empty one partition at a time, then retires it (left).
//   - rejoin: a down member whose probes recover is re-upped by the steward
//     (live, owning nothing) instead of staying down forever.
//
// A migration is a fenced snapshot handover between two live nodes: the
// steward asks the source to prepare (fence the partition, export its lease
// state, ship it to the target, which stages it), then adopts and pushes the
// cutover table. The target installs the staged snapshot the moment it
// adopts that table — durable before serving, no quarantine — and the source
// drops the partition. Between fence and cutover the source answers 421 for
// the partition, which the routed client absorbs with its refresh-and-retry
// loop, so no live lease is lost and no name can be double-issued: the fence
// is taken under the table write lock (no in-flight op survives it), the
// staged snapshot expires before the source's fence times out, and a stage
// only installs when the adopted epoch is exactly the plan's cutover epoch.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/levelarray/levelarray/internal/rebalance"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/trace"
	"github.com/levelarray/levelarray/internal/wal"
)

// migrateBodyBytes caps a /migrate/stage body: a shipped snapshot carries
// every live session of one partition, far beyond the table-sized default.
const migrateBodyBytes = 64 << 20

// forwardedHeader guards steward proxying against forwarding loops: a
// forwarded control request that still does not land on the steward fails
// rather than bouncing between confused nodes.
const forwardedHeader = "X-La-Forwarded"

// JoinRequest asks the cluster to admit a new member.
type JoinRequest struct {
	// Addr is the joiner's advertised base URL (its identity: join is
	// idempotent per address).
	Addr string `json:"addr"`
	// WireAddr optionally advertises the joiner's binary-protocol endpoint.
	WireAddr string `json:"wire_addr,omitempty"`
}

// JoinResponse is the admission: the assigned member ID and the table that
// includes the joiner, which it boots from (NodeConfig.Bootstrap).
type JoinResponse struct {
	ID    int   `json:"id"`
	Table Table `json:"table"`
}

// DrainRequest asks the steward to start draining a member.
type DrainRequest struct {
	ID int `json:"id"`
}

// RebalanceResponse reports one forced planner round.
type RebalanceResponse struct {
	Steward int    `json:"steward"`
	Moved   bool   `json:"moved"`
	Plan    string `json:"plan,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Epoch   uint64 `json:"epoch"`
	Error   string `json:"error,omitempty"`
}

// MigratePrepareRequest is the steward's order to a migration source: fence
// the partition, export its state, ship it to the target. Epoch is the
// cutover epoch (the source's current epoch + 1).
type MigratePrepareRequest struct {
	Partition  int    `json:"partition"`
	Epoch      uint64 `json:"epoch"`
	TargetID   int    `json:"target_id"`
	TargetAddr string `json:"target_addr"`
}

// MigrateStageRequest is the source's ship to the target: the exported
// snapshot, parked until the cutover table arrives.
type MigrateStageRequest struct {
	Partition int           `json:"partition"`
	Epoch     uint64        `json:"epoch"`
	PrevOwner int           `json:"prev_owner"`
	Snapshot  *wal.Snapshot `json:"snapshot"`
}

// MigrateAbortRequest unwinds a fenced migration before cutover.
type MigrateAbortRequest struct {
	Partition int    `json:"partition"`
	Epoch     uint64 `json:"epoch"`
	Cause     string `json:"cause,omitempty"`
}

// MigrateReply acknowledges a migration control call.
type MigrateReply struct {
	OK       bool   `json:"ok"`
	Epoch    uint64 `json:"epoch"`
	Sessions int    `json:"sessions,omitempty"`
	Error    string `json:"error,omitempty"`
}

// JoinCluster asks a member of an existing cluster to admit addr, retrying
// briefly through admission races, and returns the assigned ID plus the
// admission table to boot from (NodeConfig.Bootstrap). hc nil selects a 5s
// client.
func JoinCluster(hc *http.Client, seed, addr, wireAddr string) (int, Table, error) {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			time.Sleep(100 * time.Millisecond)
		}
		var out JoinResponse
		var fail EpochResponse
		status, _, err := postJSON(hc, seed+"/cluster/join", 0, "",
			JoinRequest{Addr: addr, WireAddr: wireAddr}, &out, &fail)
		if err != nil {
			lastErr = err
			continue
		}
		if status/100 != 2 {
			lastErr = fmt.Errorf("cluster: join via %s: status %d (%s)", seed, status, fail.Error)
			if status == http.StatusBadRequest {
				return -1, Table{}, lastErr
			}
			continue
		}
		if err := out.Table.Validate(); err != nil {
			return -1, Table{}, fmt.Errorf("cluster: join admission table: %w", err)
		}
		if out.ID < 0 || out.ID >= len(out.Table.Members) {
			return -1, Table{}, fmt.Errorf("cluster: join assigned id %d outside admission table", out.ID)
		}
		return out.ID, out.Table, nil
	}
	return -1, Table{}, lastErr
}

// forwardJSON re-POSTs a control request to the steward with the loop guard
// set.
func forwardJSON(hc *http.Client, url string, in, out, errOut any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "1")
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 == 2 {
		if out != nil {
			return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode, nil
	}
	if errOut != nil {
		_ = json.NewDecoder(resp.Body).Decode(errOut)
	}
	return resp.StatusCode, nil
}

// handleJoin admits a new member. Any node accepts the call; non-stewards
// proxy it to the steward so `lactl join` and a booting laserve can point at
// whatever member they know.
func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest)
		return
	}
	t := n.Table()
	st, ok := t.Steward()
	if !ok {
		server.WriteUnavailable(w, ErrCodeNoPartitions, n.cfg.ProbeInterval)
		return
	}
	if st.ID != n.cfg.NodeID {
		if r.Header.Get(forwardedHeader) != "" {
			server.WriteUnavailable(w, ErrCodeNotOwner, n.cfg.ProbeInterval)
			return
		}
		var out JoinResponse
		var fail EpochResponse
		status, err := forwardJSON(n.cfg.HTTPClient, st.Addr+"/cluster/join", req, &out, &fail)
		if err != nil {
			server.WriteUnavailable(w, ErrCodeNotOwner, n.cfg.ProbeInterval)
			return
		}
		if status/100 == 2 {
			writeJSON(w, status, out)
		} else {
			writeJSON(w, status, fail)
		}
		return
	}
	status, body := n.admitJoin(req)
	writeJSON(w, status, body)
}

// admitJoin is the steward-side admission, shared by the HTTP handler and
// the wire opcode.
func (n *Node) admitJoin(req JoinRequest) (int, any) {
	t := n.Table()
	nt, id, ok := t.AddMember(req.Addr, req.WireAddr, n.cfg.Clock().UnixMilli())
	if !ok {
		return http.StatusBadRequest, EpochResponse{Error: server.ErrCodeBadRequest, Epoch: t.Epoch}
	}
	if nt.Epoch == t.Epoch {
		// Already a member: join is idempotent per address.
		return http.StatusOK, JoinResponse{ID: id, Table: t}
	}
	if err := n.adoptTable(nt, "member_join"); err != nil {
		// Lost a race against a newer table; the client retries and the next
		// attempt computes against it.
		return http.StatusServiceUnavailable, EpochResponse{Error: ErrCodeStaleEpoch, Epoch: n.Epoch()}
	}
	n.events.Eventf(trace.EvMemberJoin, nt.Epoch, -1, "admitted",
		"member %d (%s) admitted joining; epoch %d -> %d", id, req.Addr, t.Epoch, nt.Epoch)
	n.pushTable(nt)
	return http.StatusOK, JoinResponse{ID: id, Table: nt}
}

// handleDrain starts draining a member; proxied to the steward like join.
func (n *Node) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req DrainRequest
	if !decode(w, r, &req) {
		return
	}
	t := n.Table()
	st, ok := t.Steward()
	if !ok {
		server.WriteUnavailable(w, ErrCodeNoPartitions, n.cfg.ProbeInterval)
		return
	}
	if st.ID != n.cfg.NodeID {
		if r.Header.Get(forwardedHeader) != "" {
			server.WriteUnavailable(w, ErrCodeNotOwner, n.cfg.ProbeInterval)
			return
		}
		var out, fail EpochResponse
		status, err := forwardJSON(n.cfg.HTTPClient, st.Addr+"/cluster/drain", req, &out, &fail)
		if err != nil {
			server.WriteUnavailable(w, ErrCodeNotOwner, n.cfg.ProbeInterval)
			return
		}
		if status/100 == 2 {
			writeJSON(w, status, out)
		} else {
			writeJSON(w, status, fail)
		}
		return
	}
	status, body := n.applyDrain(req)
	writeJSON(w, status, body)
}

// applyDrain is the steward-side drain transition, shared by the HTTP
// handler and the wire opcode.
func (n *Node) applyDrain(req DrainRequest) (int, any) {
	t := n.Table()
	nt, ok := t.Drain(req.ID, n.cfg.Clock().UnixMilli())
	if !ok {
		return http.StatusConflict, EpochResponse{Error: server.ErrCodeBadRequest, Epoch: t.Epoch}
	}
	if err := n.adoptTable(nt, "member_drain"); err != nil {
		return http.StatusServiceUnavailable, EpochResponse{Error: ErrCodeStaleEpoch, Epoch: n.Epoch()}
	}
	n.events.Eventf(trace.EvMemberDrain, nt.Epoch, -1, "requested",
		"member %d draining; the planner migrates it empty, then retires it", req.ID)
	n.pushTable(nt)
	return http.StatusOK, EpochResponse{Adopted: true, Epoch: nt.Epoch}
}

// handleRebalance forces one planner round on the steward (proxied there
// from any member) and reports what it did.
func (n *Node) handleRebalance(w http.ResponseWriter, r *http.Request) {
	t := n.Table()
	st, ok := t.Steward()
	if !ok {
		server.WriteUnavailable(w, ErrCodeNoPartitions, n.cfg.ProbeInterval)
		return
	}
	if st.ID != n.cfg.NodeID {
		if r.Header.Get(forwardedHeader) != "" {
			server.WriteUnavailable(w, ErrCodeNotOwner, n.cfg.ProbeInterval)
			return
		}
		var out RebalanceResponse
		var fail EpochResponse
		status, err := forwardJSON(n.cfg.HTTPClient, st.Addr+"/cluster/rebalance", struct{}{}, &out, &fail)
		if err != nil {
			server.WriteUnavailable(w, ErrCodeNotOwner, n.cfg.ProbeInterval)
			return
		}
		if status/100 == 2 {
			writeJSON(w, status, out)
		} else {
			writeJSON(w, status, fail)
		}
		return
	}
	writeJSON(w, http.StatusOK, n.rebalanceOnce("api"))
}

// handleMigratePrepare runs on a migration source: fence, export, ship.
func (n *Node) handleMigratePrepare(w http.ResponseWriter, r *http.Request) {
	var req MigratePrepareRequest
	if !decode(w, r, &req) {
		return
	}
	rep, status := n.migratePrepare(req)
	writeJSON(w, status, rep)
}

// migratePrepare fences the partition, exports its lease state and ships it
// to the target. The fence is taken under the table write lock: every lease
// op holds the read lock for its whole critical section, so once the write
// lock is acquired nothing is in flight and nothing new can start (acquires
// skip migrating partitions; renew/release answer 421). Expirations keep
// running, which is safe — the importer re-expires lapsed sessions itself
// and the fenced source never re-grants an expired name.
func (n *Node) migratePrepare(req MigratePrepareRequest) (MigrateReply, int) {
	n.mu.Lock()
	cur := n.table.Epoch
	if req.Epoch != cur+1 {
		n.mu.Unlock()
		return MigrateReply{Epoch: cur, Error: ErrCodeStaleEpoch}, http.StatusPreconditionFailed
	}
	part, ok := n.parts[req.Partition]
	if !ok {
		n.mu.Unlock()
		return MigrateReply{Epoch: cur, Error: ErrCodeNotOwner}, http.StatusMisdirectedRequest
	}
	if part.migrating {
		n.mu.Unlock()
		return MigrateReply{Epoch: cur, Error: "already_migrating"}, http.StatusConflict
	}
	part.migrating = true
	part.migrateEpoch = req.Epoch
	mgr, pid := part.mgr, part.id
	n.mu.Unlock()

	// Self-unfence: if neither the cutover table nor an abort reaches us
	// (steward died mid-plan), resume serving rather than 421 forever. The
	// staged copy on the target expires at half this, so it can never
	// install after we have resumed granting.
	time.AfterFunc(n.cfg.MigrateTimeout, func() {
		if !n.closed.Load() {
			n.abortMigration(pid, req.Epoch, "timeout")
		}
	})

	snap := mgr.ExportState(uint32(pid), req.Epoch)
	var rep MigrateReply
	status, _, err := postJSON(n.cfg.HTTPClient, req.TargetAddr+"/migrate/stage", 0, "",
		MigrateStageRequest{Partition: pid, Epoch: req.Epoch, PrevOwner: n.cfg.NodeID, Snapshot: snap}, &rep, &rep)
	if err != nil || status/100 != 2 {
		n.abortMigration(pid, req.Epoch, "ship_failed")
		if err != nil {
			return MigrateReply{Epoch: cur, Error: err.Error()}, http.StatusBadGateway
		}
		return MigrateReply{Epoch: cur, Error: fmt.Sprintf("stage status %d: %s", status, rep.Error)}, http.StatusBadGateway
	}
	n.migStaged.Add(1)
	return MigrateReply{OK: true, Epoch: cur, Sessions: len(snap.Sessions)}, http.StatusOK
}

// handleMigrateStage runs on a migration target: park the shipped snapshot
// until the cutover table arrives and installs it.
func (n *Node) handleMigrateStage(w http.ResponseWriter, r *http.Request) {
	var req MigrateStageRequest
	if !server.DecodeJSON(w, r, &req, migrateBodyBytes) {
		return
	}
	if req.Snapshot == nil || req.Partition < 0 {
		writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest)
		return
	}
	n.mu.Lock()
	cur := n.table.Epoch
	if req.Epoch <= cur {
		n.mu.Unlock()
		writeJSON(w, http.StatusPreconditionFailed, MigrateReply{Epoch: cur, Error: ErrCodeStaleEpoch})
		return
	}
	n.staged[req.Partition] = stagedSnapshot{
		epoch:     req.Epoch,
		prevOwner: req.PrevOwner,
		snap:      req.Snapshot,
		expires:   n.cfg.Clock().Add(n.cfg.MigrateTimeout / 2),
	}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, MigrateReply{OK: true, Epoch: cur, Sessions: len(req.Snapshot.Sessions)})
}

// handleMigrateAbort runs on a migration source: unwind the fence early
// (the steward lost the cutover race) instead of waiting for the timeout.
func (n *Node) handleMigrateAbort(w http.ResponseWriter, r *http.Request) {
	var req MigrateAbortRequest
	if !decode(w, r, &req) {
		return
	}
	cause := req.Cause
	if cause == "" {
		cause = "abort_request"
	}
	n.abortMigration(req.Partition, req.Epoch, cause)
	writeJSON(w, http.StatusOK, MigrateReply{OK: true, Epoch: n.Epoch()})
}

// abortMigration releases a migration fence, if the partition is still held
// under exactly that plan's epoch. Idempotent: late timeouts, duplicate
// aborts and fences already superseded by adoption all no-op.
func (n *Node) abortMigration(p int, epoch uint64, cause string) bool {
	n.mu.Lock()
	part, ok := n.parts[p]
	aborted := ok && part.migrating && part.migrateEpoch == epoch
	if aborted {
		part.migrating = false
	}
	n.mu.Unlock()
	if aborted {
		n.migAborted.Add(1)
		n.events.Eventf(trace.EvMigrationAbort, epoch, p, cause,
			"migration fence released; serving partition %d again", p)
	}
	return aborted
}

// rebalanceLoop is the steward-side planner: every RebalanceEvery it
// observes the serving members' loads and performs at most one migration.
// Every node runs the loop; non-stewards no-op each round, so the planner
// survives steward failover without coordination.
func (n *Node) rebalanceLoop(done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(n.cfg.RebalanceEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.rebalanceOnce("planner")
		}
	}
}

// rebalanceOnce runs one planner round: retire drained members, observe
// loads, plan at most one move, execute it. Serialized by rebalanceMu so a
// forced round (POST /cluster/rebalance) cannot interleave with the ticker.
func (n *Node) rebalanceOnce(cause string) RebalanceResponse {
	n.rebalanceMu.Lock()
	defer n.rebalanceMu.Unlock()

	t := n.Table()
	resp := RebalanceResponse{Steward: -1, Epoch: t.Epoch}
	st, ok := t.Steward()
	if !ok {
		resp.Error = "no_steward"
		return resp
	}
	resp.Steward = st.ID
	if st.ID != n.cfg.NodeID {
		resp.Error = "not_steward"
		return resp
	}

	// Retire drained members: a draining member that owns nothing leaves.
	nowMillis := n.cfg.Clock().UnixMilli()
	for _, m := range t.Members {
		if m.EffectiveState() != StateDraining || len(t.PartitionsOf(m.ID)) != 0 {
			continue
		}
		nt, ok := t.Leave(m.ID, nowMillis)
		if !ok {
			continue
		}
		if err := n.adoptTable(nt, "member_drain"); err != nil {
			resp.Error = err.Error()
			return resp
		}
		n.events.Eventf(trace.EvMemberDrain, nt.Epoch, -1, "retired",
			"member %d drained empty and left; epoch %d -> %d", m.ID, t.Epoch, nt.Epoch)
		n.pushTable(nt)
		t = nt
		resp.Epoch = t.Epoch
	}

	// Observe every serving member's per-partition load factors. Fetches are
	// concurrent writers into the planner cache; a failed fetch keeps the
	// member's previous observation (the execute step re-validates the plan
	// against the current table anyway).
	var wg sync.WaitGroup
	for _, m := range t.Members {
		if !m.Serving() {
			n.loads.Forget(m.ID)
			continue
		}
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			load := rebalance.MemberLoad{ID: m.ID, State: m.EffectiveState(), Partitions: map[int]float64{}}
			var stats NodeStatsResponse
			if m.ID == n.cfg.NodeID {
				stats = n.statsResponse()
			} else if status, err := getJSON(n.cfg.HTTPClient, m.Addr+"/stats", &stats); err != nil || status/100 != 2 {
				return
			}
			for _, ps := range stats.Partitions {
				load.Partitions[ps.Partition] = ps.LoadFactor
			}
			n.loads.Observe(load)
		}(m)
	}
	wg.Wait()

	plan, ok := rebalance.Next(n.loads.Snapshot(), rebalance.Config{Threshold: n.cfg.RebalanceThreshold})
	if !ok {
		return resp
	}
	resp.Plan, resp.Reason = plan.String(), plan.Reason
	if err := n.executeMigration(t, plan); err != nil {
		resp.Error = err.Error()
		n.cfg.Logf("cluster: node %d: %s round: %v", n.cfg.NodeID, cause, err)
		return resp
	}
	resp.Moved = true
	resp.Epoch = n.Epoch()
	return resp
}

// executeMigration performs one planned move: prepare on the source (fence +
// export + ship), then adopt and push the cutover table. Any failure leaves
// the old table in force; the source unfences itself (explicitly on a lost
// cutover race, by timeout if we die here).
func (n *Node) executeMigration(t Table, plan rebalance.Plan) error {
	if plan.Partition < 0 || plan.Partition >= len(t.Assignment) || t.Assignment[plan.Partition] != plan.From {
		return fmt.Errorf("cluster: stale plan %s: not the current owner", plan)
	}
	next, ok := t.Move(plan.Partition, plan.To)
	if !ok {
		return fmt.Errorf("cluster: plan %s rejected by table", plan)
	}
	n.migPlanned.Add(1)
	n.events.Eventf(trace.EvMigrationPlan, next.Epoch, plan.Partition, plan.Reason,
		"moving partition %d: node %d -> node %d; epoch %d -> %d", plan.Partition, plan.From, plan.To, t.Epoch, next.Epoch)

	prep := MigratePrepareRequest{
		Partition:  plan.Partition,
		Epoch:      next.Epoch,
		TargetID:   plan.To,
		TargetAddr: next.Members[plan.To].Addr,
	}
	if plan.From == n.cfg.NodeID {
		if rep, _ := n.migratePrepare(prep); !rep.OK {
			return fmt.Errorf("cluster: migration prepare (local): %s", rep.Error)
		}
	} else {
		var rep MigrateReply
		status, _, err := postJSON(n.cfg.HTTPClient, t.Members[plan.From].Addr+"/migrate/prepare", 0, "", prep, &rep, &rep)
		if err != nil {
			return fmt.Errorf("cluster: migration prepare on node %d: %w", plan.From, err)
		}
		if status/100 != 2 {
			return fmt.Errorf("cluster: migration prepare on node %d: status %d (%s)", plan.From, status, rep.Error)
		}
	}

	if err := n.adoptTable(next, "migration_cutover"); err != nil {
		// Lost the epoch race after the source fenced: release it now rather
		// than letting it wait out the timeout.
		n.sendAbort(t.Members[plan.From], plan.Partition, next.Epoch, "cutover_lost_race")
		return fmt.Errorf("cluster: adopting cutover table: %w", err)
	}
	n.pushTable(next)
	return nil
}

// sendAbort releases a source's migration fence, locally or over HTTP.
func (n *Node) sendAbort(src Member, partition int, epoch uint64, cause string) {
	if src.ID == n.cfg.NodeID {
		n.abortMigration(partition, epoch, cause)
		return
	}
	var rep MigrateReply
	_, _, _ = postJSON(n.cfg.HTTPClient, src.Addr+"/migrate/abort", 0, "",
		MigrateAbortRequest{Partition: partition, Epoch: epoch, Cause: cause}, &rep, &rep)
}
