package cluster

// The binary wire protocol, cluster side. A Node implements wire.Backend
// directly: write opcodes run through the same locked acquire/renew/release
// paths as the HTTP handlers (one contract, two encodings), with the frame's
// epoch field standing in for the X-Cluster-Epoch header, and the read
// opcodes serving the identical JSON bodies as blobs. The routed client
// prefers a member's wire endpoint for lease traffic and falls back to HTTP
// when the member advertises none (or its wire connection dies mid-run).

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/trace"
	"github.com/levelarray/levelarray/internal/wire"
)

// wireCode maps the JSON error-code vocabulary onto frame codes; the inverse
// of wire.Code.String.
func wireCode(s string) wire.Code {
	switch s {
	case server.ErrCodeFull:
		return wire.CodeFull
	case server.ErrCodeStaleToken:
		return wire.CodeStaleToken
	case server.ErrCodeNotLeased:
		return wire.CodeNotLeased
	case server.ErrCodeClosed:
		return wire.CodeClosed
	case server.ErrCodeTTL:
		return wire.CodeTTLTooLong
	case server.ErrCodeBadRequest:
		return wire.CodeBadRequest
	case ErrCodeStaleEpoch:
		return wire.CodeStaleEpoch
	case ErrCodeNotOwner:
		return wire.CodeNotOwner
	case ErrCodeWarming:
		return wire.CodeWarming
	case ErrCodeNoPartitions:
		return wire.CodeNoPartitions
	default:
		return wire.CodeInternal
	}
}

// wireGrant converts a cluster grant body to its frame shape.
func wireGrant(g GrantResponse) wire.Grant {
	return wire.Grant{
		Name:              int64(g.Name),
		Token:             g.Token,
		DeadlineUnixMilli: g.DeadlineUnixMillis,
		NodeID:            int32(g.NodeID),
		Partition:         int32(g.Partition),
		Epoch:             g.Epoch,
	}
}

// replyToWire maps one deferred HTTP reply onto a wire response.
func replyToWire(rep reply, resp *wire.Response) {
	switch {
	case rep.leaseErr != nil:
		resp.Status, resp.Code = server.WireLeaseError(rep.leaseErr)
	case rep.unavail != "":
		resp.Status = wire.StatusUnavailable
		resp.Code = wireCode(rep.unavail)
		wait := rep.wait
		if wait <= 0 {
			wait = time.Millisecond
		}
		resp.RetryAfterMillis = wait.Milliseconds()
		if resp.RetryAfterMillis < 1 {
			resp.RetryAfterMillis = 1
		}
	default:
		switch body := rep.body.(type) {
		case GrantResponse:
			resp.Status = wire.StatusOK
			resp.Grants = append(resp.Grants, wireGrant(body))
		case server.ReleaseResponse:
			resp.Status = wire.StatusOK
		case server.ErrorResponse:
			resp.Status = wire.Status(rep.status)
			resp.Code = wireCode(body.Error)
		case EpochResponse:
			resp.Status = wire.Status(rep.status)
			resp.Code = wireCode(body.Error)
			resp.Epoch = body.Epoch
		default:
			resp.Status, resp.Code = wire.StatusInternal, wire.CodeInternal
		}
	}
}

// wireCheckEpoch fences a write whose frame epoch disagrees with the node's
// table, exactly as checkEpoch does for the HTTP header. Epoch 0 (unfenced)
// passes; a newer epoch additionally schedules a table refresh. The frame's
// request id is the binary protocol's trace id, logged on the fence so the
// rejection can be matched to the client that carried it.
func (n *Node) wireCheckEpoch(req *wire.Request, resp *wire.Response) bool {
	if req.Epoch == 0 {
		return true
	}
	cur := n.Epoch()
	if req.Epoch == cur {
		return true
	}
	if req.Epoch > cur {
		n.requestRefresh()
	}
	n.staleEpochRejects.Add(1)
	n.events.Emit(trace.Event{
		Type: trace.EvStaleEpoch, Level: trace.LevelDebug,
		Epoch: cur, Partition: -1, Cause: "frame_epoch", RID: wire.RIDString(req.ID),
		Detail: fmt.Sprintf("wire 412: request carried epoch %d, ours is %d", req.Epoch, cur),
	})
	resp.Status = wire.StatusStaleEpoch
	resp.Code = wire.CodeStaleEpoch
	resp.Epoch = cur
	return false
}

// ServeWire implements wire.Backend: the node's whole lease API over binary
// frames.
func (n *Node) ServeWire(req *wire.Request, resp *wire.Response) {
	switch req.Op {
	case wire.OpPing:
		// OK; the epoch rides back in the header below.

	case wire.OpAcquire:
		if !n.wireCheckEpoch(req, resp) {
			return
		}
		replyToWire(n.acquireOp(n.ttlOf(req.TTLMillis), req.Span), resp)

	case wire.OpRenew:
		if !n.wireCheckEpoch(req, resp) {
			return
		}
		ref := req.Items[0]
		replyToWire(n.renewOp(server.RenewRequest{
			Name: int(ref.Name), Token: ref.Token, TTLMillis: req.TTLMillis,
		}, req.Span), resp)

	case wire.OpRelease:
		if !n.wireCheckEpoch(req, resp) {
			return
		}
		ref := req.Items[0]
		replyToWire(n.releaseOp(server.ReleaseRequest{Name: int(ref.Name), Token: ref.Token}, req.Span), resp)

	case wire.OpAcquireN:
		if !n.wireCheckEpoch(req, resp) {
			return
		}
		if n.cfg.Metrics != nil {
			n.cfg.Metrics.BatchOps.Inc()
		}
		n.acquireNWire(int(req.N), n.ttlOf(req.TTLMillis), resp)

	case wire.OpReleaseN:
		if !n.wireCheckEpoch(req, resp) {
			return
		}
		if n.cfg.Metrics != nil {
			n.cfg.Metrics.BatchOps.Inc()
		}
		n.releaseNWire(req.Items, resp)

	case wire.OpRenewSession:
		if !n.wireCheckEpoch(req, resp) {
			return
		}
		if n.cfg.Metrics != nil {
			n.cfg.Metrics.BatchOps.Inc()
		}
		n.renewSessionWire(req.Items, n.ttlOf(req.TTLMillis), resp)

	case wire.OpCollect:
		nodeBlob(resp, n.collectResponse())

	case wire.OpStats:
		nodeBlob(resp, n.statsResponse())

	case wire.OpLeases:
		start, limit := int(req.Start), int(req.Limit)
		if start < 0 {
			resp.Status, resp.Code = wire.StatusBadRequest, wire.CodeBadRequest
			break
		}
		if limit <= 0 {
			limit = server.DefaultLeasesPageLimit
		}
		if limit > server.MaxLeasesPageLimit {
			limit = server.MaxLeasesPageLimit
		}
		nodeBlob(resp, n.leasesResponse(start, limit))

	case wire.OpMembers:
		nodeBlob(resp, n.Table())

	case wire.OpJoin:
		// The wire control plane is steward-direct: no HTTP-style proxying.
		// A non-steward answers 421 and the client tries the steward (its
		// identity rides in the members blob).
		var jr JoinRequest
		if err := json.Unmarshal(req.Blob, &jr); err != nil || jr.Addr == "" {
			resp.Status, resp.Code = wire.StatusBadRequest, wire.CodeBadRequest
			break
		}
		n.controlToWire(resp, func() (int, any) { return n.admitJoin(jr) })

	case wire.OpDrain:
		var dr DrainRequest
		if err := json.Unmarshal(req.Blob, &dr); err != nil {
			resp.Status, resp.Code = wire.StatusBadRequest, wire.CodeBadRequest
			break
		}
		n.controlToWire(resp, func() (int, any) { return n.applyDrain(dr) })

	case wire.OpRebalance:
		n.controlToWire(resp, func() (int, any) { return 200, n.rebalanceOnce("wire") })

	default:
		resp.Status, resp.Code = wire.StatusBadRequest, wire.CodeBadRequest
	}
	if resp.Epoch == 0 {
		resp.Epoch = n.Epoch()
	}
}

// nodeBlob JSON-encodes a read-opcode body into the response payload.
func nodeBlob(resp *wire.Response, body any) {
	buf, err := json.Marshal(body)
	if err != nil {
		resp.Status, resp.Code = wire.StatusInternal, wire.CodeInternal
		return
	}
	resp.Blob = append(resp.Blob[:0], buf...)
}

// controlToWire runs a steward-only membership operation and maps its
// HTTP-shaped (status, body) reply onto a wire frame. Non-stewards answer
// 421/not_owner — the wire control plane does not proxy; the client reads
// the steward's identity from an OpMembers blob and redials.
func (n *Node) controlToWire(resp *wire.Response, op func() (int, any)) {
	st, ok := n.Table().Steward()
	if !ok {
		resp.Status, resp.Code = wire.StatusUnavailable, wire.CodeNoPartitions
		resp.RetryAfterMillis = n.cfg.ProbeInterval.Milliseconds()
		return
	}
	if st.ID != n.cfg.NodeID {
		resp.Status, resp.Code = wire.StatusNotOwner, wire.CodeNotOwner
		return
	}
	status, body := op()
	if status/100 != 2 {
		resp.Status = wire.Status(status)
		if er, ok := body.(EpochResponse); ok {
			resp.Code = wireCode(er.Error)
		} else {
			resp.Code = wire.CodeInternal
		}
		return
	}
	nodeBlob(resp, body)
}

// acquireNWire grants up to want leases in one pass, filling across the
// node's open partitions round-robin: the cluster counterpart of the
// manager's AcquireN, under one table lock for the whole batch.
func (n *Node) acquireNWire(want int, ttl time.Duration, resp *wire.Response) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(n.ownedIDs) == 0 {
		replyToWire(reply{unavail: ErrCodeNoPartitions, wait: n.cfg.ProbeInterval}, resp)
		return
	}
	start := n.rr.Add(1)
	now := n.cfg.Clock()
	quarantineWait := time.Duration(-1)
	sawOpen := false
	var scratch []lease.Lease
	var hardErr error
	for i := 0; i < len(n.ownedIDs) && len(resp.Grants) < want; i++ {
		part := n.parts[n.ownedIDs[(start+uint64(i))%uint64(len(n.ownedIDs))]]
		if part.migrating {
			if quarantineWait < 0 || n.cfg.ProbeInterval < quarantineWait {
				quarantineWait = n.cfg.ProbeInterval
			}
			continue
		}
		if wait := part.quarantineUntil.Sub(now); wait > 0 {
			if quarantineWait < 0 || wait < quarantineWait {
				quarantineWait = wait
			}
			continue
		}
		sawOpen = true
		var err error
		scratch, err = part.mgr.AcquireN(want-len(resp.Grants), ttl, scratch[:0])
		for _, l := range scratch {
			resp.Grants = append(resp.Grants, wire.Grant{
				Name:              int64(part.id*n.table.Stride + l.Name),
				Token:             l.Token,
				DeadlineUnixMilli: l.Deadline.UnixMilli(),
				NodeID:            int32(n.cfg.NodeID),
				Partition:         int32(part.id),
				Epoch:             n.table.Epoch,
			})
		}
		if err != nil && !errors.Is(err, activity.ErrFull) && !errors.Is(err, lease.ErrClosed) {
			hardErr = err
		}
	}
	if len(resp.Grants) > 0 {
		resp.Status = wire.StatusOK
		return
	}
	switch {
	case hardErr != nil:
		replyToWire(reply{leaseErr: hardErr}, resp)
	case sawOpen:
		replyToWire(reply{unavail: server.ErrCodeFull, wait: n.cfg.Lease.TickInterval}, resp)
	default:
		replyToWire(reply{unavail: ErrCodeWarming, wait: quarantineWait}, resp)
	}
}

// releaseNWire frees every referenced lease under one table lock, reporting
// per-item outcomes.
func (n *Node) releaseNWire(items []wire.Ref, resp *wire.Response) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, ref := range items {
		it := wire.ItemResult{Status: wire.StatusOK}
		part, local, ok := n.resolveItemLocked(int(ref.Name), &it)
		if ok {
			if err := part.mgr.Release(local, ref.Token); err != nil {
				it.Status, it.Code = server.WireLeaseError(err)
			}
		}
		resp.Items = append(resp.Items, it)
	}
	resp.Status = wire.StatusOK
}

// resolveItemLocked resolves one batch item's partition, recording a 409/421
// outcome in it on failure; callers hold mu.
func (n *Node) resolveItemLocked(name int, it *wire.ItemResult) (*partition, int, bool) {
	p := n.table.PartitionOf(name)
	if p < 0 {
		it.Status, it.Code = wire.StatusConflict, wire.CodeNotLeased
		return nil, 0, false
	}
	part, owned := n.parts[p]
	if !owned || part.migrating {
		n.misroutes.Add(1)
		it.Status, it.Code = wire.StatusNotOwner, wire.CodeNotOwner
		return nil, 0, false
	}
	return part, name - p*n.table.Stride, true
}

// renewGroupPool recycles the per-partition grouping of renewSessionWire.
type renewGroup struct {
	part *partition
	refs []lease.Ref
	idx  []int
}

var renewGroupPool = sync.Pool{New: func() any { return &renewGroup{} }}

// renewSessionWire bulk-renews the referenced leases under one table lock,
// grouped per partition so each owned partition takes one RenewAll pass
// (one clock read, batched wheel inserts). Per-item outcomes are
// index-aligned with the request.
func (n *Node) renewSessionWire(items []wire.Ref, ttl time.Duration, resp *wire.Response) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	base := len(resp.Items)
	for range items {
		resp.Items = append(resp.Items, wire.ItemResult{})
	}
	out := resp.Items[base:]

	groups := make(map[int]*renewGroup, len(n.ownedIDs))
	for i, ref := range items {
		part, local, ok := n.resolveItemLocked(int(ref.Name), &out[i])
		if !ok {
			continue
		}
		g := groups[part.id]
		if g == nil {
			g = renewGroupPool.Get().(*renewGroup)
			g.part = part
			g.refs = g.refs[:0]
			g.idx = g.idx[:0]
			groups[part.id] = g
		}
		g.refs = append(g.refs, lease.Ref{Name: local, Token: ref.Token})
		g.idx = append(g.idx, i)
	}
	for _, g := range groups {
		outcomes, err := g.part.mgr.RenewAll(g.refs, ttl, nil)
		if err != nil {
			status, code := server.WireLeaseError(err)
			for _, i := range g.idx {
				out[i] = wire.ItemResult{Status: status, Code: code}
			}
		} else {
			for j, oc := range outcomes {
				it := wire.ItemResult{Status: wire.StatusOK}
				if oc.Err != nil {
					it.Status, it.Code = server.WireLeaseError(oc.Err)
				} else if !oc.Deadline.IsZero() {
					it.DeadlineUnixMilli = oc.Deadline.UnixMilli()
				}
				out[g.idx[j]] = it
			}
		}
		g.part = nil
		renewGroupPool.Put(g)
	}
	resp.Status = wire.StatusOK
}
