package cluster

import (
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/metrics"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/trace"
	"github.com/levelarray/levelarray/internal/wire"
)

// LocalConfig parameterizes an in-process cluster: N real nodes on loopback
// listeners, each with its own partitions, prober and expirers — the harness
// behind the cluster tests, the chaos mode of cmd/laload and the loopback
// benchmark. Process boundaries are the only thing it fakes: everything
// else (routing, epochs, failover, quarantine) is the production path.
type LocalConfig struct {
	// Nodes is N. Zero selects 3.
	Nodes int
	// Partitions is P (a power of two). Zero selects 8.
	Partitions int
	// Capacity is the total cluster capacity, split evenly over partitions
	// (rounded up per partition). Zero selects 1024.
	Capacity int
	// NewPartitionArray overrides the per-partition array factory. Nil
	// selects an unsharded LevelArray (ε = 1) seeded per partition.
	NewPartitionArray func(partition, capacity int, seed uint64) (activity.Array, error)
	// Seed feeds the per-partition array seeds.
	Seed uint64
	// Node carries the per-node knobs (lease tick, TTL bounds, probe
	// cadence); NodeID, Peers, Partitions and the factory are filled in per
	// node. Zero values select the NodeConfig defaults.
	Node NodeConfig
	// DataDir, when set, gives every member durable lease state under
	// DataDir/node<i>/ (per-partition WALs and snapshots). Kill then models a
	// crash — no clean snapshot is written — and Restart can bring the member
	// back on the same addresses, replaying its recorded state.
	DataDir string
	// SnapshotAdopt additionally wires the fenced snapshot-adoption path:
	// a member that adopts a failed peer's partition fences and imports the
	// peer's on-disk state (under DataDir/node<prevOwner>/) instead of
	// quarantining the partition. Requires DataDir.
	SnapshotAdopt bool
	// DisableWire leaves the binary wire listeners unbound, so every member
	// is HTTP-only. By default each local node serves both protocols.
	DisableWire bool
	// DisableMetrics leaves the members without registries, so /metrics
	// returns 404 — the shape of a deployment that opted out.
	DisableMetrics bool
	// Trace gives every member its own flight recorder (enabled, default
	// sampling), serving /debug/trace and /debug/trace/slow — what a
	// deployment running laserve -trace looks like.
	Trace bool
}

func (c LocalConfig) withDefaults() LocalConfig {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NewPartitionArray == nil {
		c.NewPartitionArray = func(partition, capacity int, seed uint64) (activity.Array, error) {
			return core.New(core.Config{Capacity: capacity, Epsilon: 1, Seed: seed})
		}
	}
	return c
}

// localNode is one in-process member: the node plus its HTTP and wire front
// ends.
type localNode struct {
	node     *Node
	server   *http.Server
	listener net.Listener
	addr     string
	wireSrv  *wire.Server
	wireLn   net.Listener
	wireAddr string
	alive    bool
	// boot is the admission table of a member added by Join; nil for the
	// original members (they construct the epoch-1 table from Peers).
	boot *Table
}

// Local is a running in-process cluster. The mutex serializes Kill and
// Restart against the liveness reads chaos runs perform from other
// goroutines.
type Local struct {
	cfg          LocalConfig
	peers        []string
	wirePeers    []string
	perPartition int

	mu    sync.Mutex
	nodes []*localNode
}

// StartLocal boots an in-process cluster: listeners first (so every
// advertised address works before any prober fires), then the nodes.
func StartLocal(cfg LocalConfig) (*Local, error) {
	cfg = cfg.withDefaults()
	perPartition := (cfg.Capacity + cfg.Partitions - 1) / cfg.Partitions

	l := &Local{cfg: cfg}
	peers := make([]string, cfg.Nodes)
	var wirePeers []string
	if !cfg.DisableWire {
		wirePeers = make([]string, cfg.Nodes)
	}
	for i := 0; i < cfg.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("cluster: local listener %d: %w", i, err)
		}
		local := &localNode{listener: ln, addr: "http://" + ln.Addr().String(), alive: true}
		if !cfg.DisableWire {
			wln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				_ = ln.Close()
				l.Close()
				return nil, fmt.Errorf("cluster: local wire listener %d: %w", i, err)
			}
			local.wireLn = wln
			local.wireAddr = wln.Addr().String()
			wirePeers[i] = local.wireAddr
		}
		l.nodes = append(l.nodes, local)
		peers[i] = local.addr
	}
	l.peers = peers
	l.wirePeers = wirePeers
	l.perPartition = perPartition

	for i := 0; i < cfg.Nodes; i++ {
		if err := l.startNode(i); err != nil {
			l.Close()
			return nil, err
		}
	}
	return l, nil
}

// nodeConfigFor builds member i's NodeConfig from the local config — the one
// place the per-node knobs are assembled, shared by boot, Restart and Join.
// The peer snapshot is taken under the mutex because Join grows the lists
// copy-on-write while chaos restarts read them.
func (l *Local) nodeConfigFor(i int) NodeConfig {
	cfg := l.cfg
	ncfg := cfg.Node
	ncfg.NodeID = i
	l.mu.Lock()
	ncfg.Peers = l.peers
	ncfg.WirePeers = l.wirePeers
	ncfg.Bootstrap = l.nodes[i].boot
	l.mu.Unlock()
	ncfg.Partitions = cfg.Partitions
	ncfg.NewPartitionArray = func(partition int) (activity.Array, error) {
		return cfg.NewPartitionArray(partition, l.perPartition, cfg.Seed+uint64(partition)*0x9E3779B97F4A7C15+1)
	}
	if cfg.DataDir != "" {
		ncfg.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("node%d", i))
		if cfg.SnapshotAdopt {
			ncfg.SnapshotAdopt = func(partition, prevOwner int) string {
				return filepath.Join(cfg.DataDir, fmt.Sprintf("node%d", prevOwner), fmt.Sprintf("p%d", partition))
			}
		}
	}
	// Each member gets its own registry — exactly what separate processes
	// would have — so chaos runs can verify the metrics surface per node.
	if ncfg.Metrics == nil && !cfg.DisableMetrics {
		reg := metrics.NewRegistry()
		metrics.RegisterRuntime(reg)
		ncfg.Metrics = server.NewMetrics(reg)
	}
	if ncfg.Tracer == nil && cfg.Trace {
		ncfg.Tracer = trace.New(trace.Config{Enabled: true, Node: i})
	}
	return ncfg
}

// startNode builds and starts member i on its already-bound listeners.
func (l *Local) startNode(i int) error {
	ncfg := l.nodeConfigFor(i)
	node, err := NewNode(ncfg)
	if err != nil {
		return err
	}
	ln := l.nodes[i]
	ln.node = node
	ln.server = &http.Server{Handler: node}
	go func() { _ = ln.server.Serve(ln.listener) }()
	if ln.wireLn != nil {
		ln.wireSrv = wire.NewServer(node)
		ln.wireSrv.SetTracer(ncfg.Tracer)
		go func() { _ = ln.wireSrv.Serve(ln.wireLn) }()
	}
	node.Start()
	return nil
}

// snapshot returns the current member list. Join replaces the slice
// wholesale (copy-on-write) rather than mutating it, so the returned slice
// is immutable and safe to walk without the lock.
func (l *Local) snapshot() []*localNode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nodes
}

// WireTargets returns every member's wire endpoint (empty strings when wire
// is disabled), index-aligned with Targets.
func (l *Local) WireTargets() []string {
	nodes := l.snapshot()
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.wireAddr
	}
	return out
}

// Targets returns every member's base URL, dead ones included (the routed
// client is expected to cope).
func (l *Local) Targets() []string {
	nodes := l.snapshot()
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.addr
	}
	return out
}

// Node returns member i's Node (nil after Kill).
func (l *Local) Node(i int) *Node {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.nodes) || !l.nodes[i].alive {
		return nil
	}
	return l.nodes[i].node
}

// Nodes returns the current member count (growing as members Join).
func (l *Local) Nodes() int { return len(l.snapshot()) }

// AliveIDs returns the members not yet killed.
func (l *Local) AliveIDs() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []int
	for i, n := range l.nodes {
		if n.alive {
			out = append(out, i)
		}
	}
	return out
}

// Kill abruptly terminates member i: the listener and every in-flight
// connection are torn down and the node's managers stop, exactly what a
// crashed process looks like to the rest of the cluster. No clean-shutdown
// snapshot is written — a durable member restarted after Kill replays its
// WAL tail like a real crash. Idempotent.
func (l *Local) Kill(i int) {
	l.stop(i, false)
}

// stop tears member i down; clean selects a graceful shutdown (final clean
// snapshot on durable members) versus a simulated crash.
func (l *Local) stop(i int, clean bool) {
	l.mu.Lock()
	if i < 0 || i >= len(l.nodes) || !l.nodes[i].alive {
		l.mu.Unlock()
		return
	}
	n := l.nodes[i]
	n.alive = false
	l.mu.Unlock()
	// A node that failed mid-StartLocal has a listener but no server yet.
	if n.server != nil {
		_ = n.server.Close()
	} else {
		_ = n.listener.Close()
	}
	if n.wireSrv != nil {
		n.wireSrv.Close()
	} else if n.wireLn != nil {
		_ = n.wireLn.Close()
	}
	if n.node != nil {
		if clean {
			n.node.Close()
		} else {
			n.node.Kill()
		}
	}
}

// Restart brings a killed member back on the same advertised addresses: the
// listeners are rebound to the recorded ports, a fresh Node is built (with a
// fresh registry, like a new process), and — when the harness has a DataDir —
// the node replays its durable state and rejoins at its recorded epoch.
func (l *Local) Restart(i int) error {
	l.mu.Lock()
	if i < 0 || i >= len(l.nodes) {
		l.mu.Unlock()
		return fmt.Errorf("cluster: restart member %d: no such member", i)
	}
	n := l.nodes[i]
	if n.alive {
		l.mu.Unlock()
		return fmt.Errorf("cluster: restart member %d: still alive", i)
	}
	l.mu.Unlock()

	// Rebind the same ports. The old listeners were closed by Kill, but an
	// in-flight accept can hold the port for a beat — retry briefly.
	ln, err := relisten(n.listener.Addr().String())
	if err != nil {
		return fmt.Errorf("cluster: restart member %d: %w", i, err)
	}
	n.listener = ln
	if n.wireAddr != "" {
		wln, err := relisten(n.wireAddr)
		if err != nil {
			_ = ln.Close()
			return fmt.Errorf("cluster: restart member %d (wire): %w", i, err)
		}
		n.wireLn = wln
	}
	if err := l.startNode(i); err != nil {
		_ = n.listener.Close()
		if n.wireLn != nil {
			_ = n.wireLn.Close()
		}
		return fmt.Errorf("cluster: restart member %d: %w", i, err)
	}
	l.mu.Lock()
	n.alive = true
	l.mu.Unlock()
	return nil
}

// Join grows the cluster by one member: fresh listeners are bound, a live
// member is asked for admission (POST /cluster/join, proxied to the steward),
// and the new node boots from the admission table as a joining member. The
// steward promotes it to live once it answers probes, and the planner then
// migrates partitions onto it. Returns the new member's ID.
func (l *Local) Join() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return -1, fmt.Errorf("cluster: join listener: %w", err)
	}
	local := &localNode{listener: ln, addr: "http://" + ln.Addr().String(), alive: true}
	if !l.cfg.DisableWire {
		wln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = ln.Close()
			return -1, fmt.Errorf("cluster: join wire listener: %w", err)
		}
		local.wireLn = wln
		local.wireAddr = wln.Addr().String()
	}
	teardown := func() {
		_ = ln.Close()
		if local.wireLn != nil {
			_ = local.wireLn.Close()
		}
	}

	seed := ""
	l.mu.Lock()
	for _, n := range l.nodes {
		if n.alive {
			seed = n.addr
			break
		}
	}
	l.mu.Unlock()
	if seed == "" {
		teardown()
		return -1, fmt.Errorf("cluster: join: no live member to ask")
	}
	id, table, err := JoinCluster(nil, seed, local.addr, local.wireAddr)
	if err != nil {
		teardown()
		return -1, err
	}
	local.boot = &table

	l.mu.Lock()
	if id != len(l.nodes) {
		l.mu.Unlock()
		teardown()
		return -1, fmt.Errorf("cluster: join assigned id %d, harness expected %d", id, len(l.nodes))
	}
	// Copy-on-write: concurrent restarts snapshot these slice headers.
	l.nodes = append(append([]*localNode(nil), l.nodes...), local)
	l.peers = append(append([]string(nil), l.peers...), local.addr)
	if l.wirePeers != nil {
		l.wirePeers = append(append([]string(nil), l.wirePeers...), local.wireAddr)
	}
	l.mu.Unlock()

	if err := l.startNode(id); err != nil {
		teardown()
		return id, fmt.Errorf("cluster: starting joined member %d: %w", id, err)
	}
	return id, nil
}

// Drain asks the cluster to drain member id: the planner migrates it empty,
// then retires it. The member keeps serving (draining) until retired; tear
// it down with Kill (or leave it — a left member holding no partitions is
// harmless).
func (l *Local) Drain(id int) error {
	seed := ""
	l.mu.Lock()
	for _, n := range l.nodes {
		if n.alive {
			seed = n.addr
			break
		}
	}
	l.mu.Unlock()
	if seed == "" {
		return fmt.Errorf("cluster: drain: no live member to ask")
	}
	var out, fail EpochResponse
	hc := &http.Client{Timeout: 5 * time.Second}
	status, _, err := postJSON(hc, seed+"/cluster/drain", 0, "", DrainRequest{ID: id}, &out, &fail)
	if err != nil {
		return err
	}
	if status/100 != 2 {
		return fmt.Errorf("cluster: drain member %d: status %d (%s)", id, status, fail.Error)
	}
	return nil
}

// relisten rebinds a specific host:port, retrying briefly while the old
// socket drains.
func relisten(addr string) (net.Listener, error) {
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		var ln net.Listener
		if ln, err = net.Listen("tcp", addr); err == nil {
			return ln, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, err
}

// MaxEpoch polls the surviving members and returns the highest epoch any of
// them reports (0 when none answer).
func (l *Local) MaxEpoch() uint64 {
	l.mu.Lock()
	var live []*Node
	for _, n := range l.nodes {
		if n.alive && n.node != nil {
			live = append(live, n.node)
		}
	}
	l.mu.Unlock()
	var max uint64
	for _, node := range live {
		if e := node.Epoch(); e > max {
			max = e
		}
	}
	return max
}

// maxEpochTable returns the highest-epoch membership table any surviving
// member holds — the most current cluster view available.
func (l *Local) maxEpochTable() Table {
	l.mu.Lock()
	var live []*Node
	for _, n := range l.nodes {
		if n.alive && n.node != nil {
			live = append(live, n.node)
		}
	}
	l.mu.Unlock()
	var best Table
	for _, node := range live {
		if t := node.Table(); t.Epoch > best.Epoch || best.Members == nil {
			best = t
		}
	}
	return best
}

// WaitForEpoch blocks until some surviving member reaches at least epoch, or
// the timeout elapses; it reports whether the epoch was reached.
func (l *Local) WaitForEpoch(epoch uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if l.MaxEpoch() >= epoch {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close shuts every remaining member down gracefully (durable members write
// a final clean snapshot, so a later StartLocal on the same DataDir resumes
// without replaying a tail).
func (l *Local) Close() {
	for i := range l.snapshot() {
		l.stop(i, true)
	}
}
