package cluster

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/metrics"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/wire"
)

// LocalConfig parameterizes an in-process cluster: N real nodes on loopback
// listeners, each with its own partitions, prober and expirers — the harness
// behind the cluster tests, the chaos mode of cmd/laload and the loopback
// benchmark. Process boundaries are the only thing it fakes: everything
// else (routing, epochs, failover, quarantine) is the production path.
type LocalConfig struct {
	// Nodes is N. Zero selects 3.
	Nodes int
	// Partitions is P (a power of two). Zero selects 8.
	Partitions int
	// Capacity is the total cluster capacity, split evenly over partitions
	// (rounded up per partition). Zero selects 1024.
	Capacity int
	// NewPartitionArray overrides the per-partition array factory. Nil
	// selects an unsharded LevelArray (ε = 1) seeded per partition.
	NewPartitionArray func(partition, capacity int, seed uint64) (activity.Array, error)
	// Seed feeds the per-partition array seeds.
	Seed uint64
	// Node carries the per-node knobs (lease tick, TTL bounds, probe
	// cadence); NodeID, Peers, Partitions and the factory are filled in per
	// node. Zero values select the NodeConfig defaults.
	Node NodeConfig
	// DisableWire leaves the binary wire listeners unbound, so every member
	// is HTTP-only. By default each local node serves both protocols.
	DisableWire bool
	// DisableMetrics leaves the members without registries, so /metrics
	// returns 404 — the shape of a deployment that opted out.
	DisableMetrics bool
}

func (c LocalConfig) withDefaults() LocalConfig {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NewPartitionArray == nil {
		c.NewPartitionArray = func(partition, capacity int, seed uint64) (activity.Array, error) {
			return core.New(core.Config{Capacity: capacity, Epsilon: 1, Seed: seed})
		}
	}
	return c
}

// localNode is one in-process member: the node plus its HTTP and wire front
// ends.
type localNode struct {
	node     *Node
	server   *http.Server
	listener net.Listener
	addr     string
	wireSrv  *wire.Server
	wireLn   net.Listener
	wireAddr string
	alive    bool
}

// Local is a running in-process cluster. The mutex serializes Kill against
// the liveness reads chaos runs perform from other goroutines.
type Local struct {
	cfg LocalConfig

	mu    sync.Mutex
	nodes []*localNode
}

// StartLocal boots an in-process cluster: listeners first (so every
// advertised address works before any prober fires), then the nodes.
func StartLocal(cfg LocalConfig) (*Local, error) {
	cfg = cfg.withDefaults()
	perPartition := (cfg.Capacity + cfg.Partitions - 1) / cfg.Partitions

	l := &Local{cfg: cfg}
	peers := make([]string, cfg.Nodes)
	var wirePeers []string
	if !cfg.DisableWire {
		wirePeers = make([]string, cfg.Nodes)
	}
	for i := 0; i < cfg.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("cluster: local listener %d: %w", i, err)
		}
		local := &localNode{listener: ln, addr: "http://" + ln.Addr().String(), alive: true}
		if !cfg.DisableWire {
			wln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				_ = ln.Close()
				l.Close()
				return nil, fmt.Errorf("cluster: local wire listener %d: %w", i, err)
			}
			local.wireLn = wln
			local.wireAddr = wln.Addr().String()
			wirePeers[i] = local.wireAddr
		}
		l.nodes = append(l.nodes, local)
		peers[i] = local.addr
	}

	for i := 0; i < cfg.Nodes; i++ {
		ncfg := cfg.Node
		ncfg.NodeID = i
		ncfg.Peers = peers
		ncfg.WirePeers = wirePeers
		ncfg.Partitions = cfg.Partitions
		ncfg.NewPartitionArray = func(partition int) (activity.Array, error) {
			return cfg.NewPartitionArray(partition, perPartition, cfg.Seed+uint64(partition)*0x9E3779B97F4A7C15+1)
		}
		// Each member gets its own registry — exactly what separate processes
		// would have — so chaos runs can verify the metrics surface per node.
		if ncfg.Metrics == nil && !cfg.DisableMetrics {
			reg := metrics.NewRegistry()
			metrics.RegisterRuntime(reg)
			ncfg.Metrics = server.NewMetrics(reg)
		}
		node, err := NewNode(ncfg)
		if err != nil {
			l.Close()
			return nil, err
		}
		ln := l.nodes[i]
		ln.node = node
		ln.server = &http.Server{Handler: node}
		go func() { _ = ln.server.Serve(ln.listener) }()
		if ln.wireLn != nil {
			ln.wireSrv = wire.NewServer(node)
			go func() { _ = ln.wireSrv.Serve(ln.wireLn) }()
		}
		node.Start()
	}
	return l, nil
}

// WireTargets returns every member's wire endpoint (empty strings when wire
// is disabled), index-aligned with Targets.
func (l *Local) WireTargets() []string {
	out := make([]string, len(l.nodes))
	for i, n := range l.nodes {
		out[i] = n.wireAddr
	}
	return out
}

// Targets returns every member's base URL, dead ones included (the routed
// client is expected to cope).
func (l *Local) Targets() []string {
	out := make([]string, len(l.nodes))
	for i, n := range l.nodes {
		out[i] = n.addr
	}
	return out
}

// Node returns member i's Node (nil after Kill).
func (l *Local) Node(i int) *Node {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.nodes) || !l.nodes[i].alive {
		return nil
	}
	return l.nodes[i].node
}

// Nodes returns N, the configured member count.
func (l *Local) Nodes() int { return len(l.nodes) }

// AliveIDs returns the members not yet killed.
func (l *Local) AliveIDs() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []int
	for i, n := range l.nodes {
		if n.alive {
			out = append(out, i)
		}
	}
	return out
}

// Kill abruptly terminates member i: the listener and every in-flight
// connection are torn down and the node's managers stop, exactly what a
// crashed process looks like to the rest of the cluster. Idempotent.
func (l *Local) Kill(i int) {
	l.mu.Lock()
	if i < 0 || i >= len(l.nodes) || !l.nodes[i].alive {
		l.mu.Unlock()
		return
	}
	n := l.nodes[i]
	n.alive = false
	l.mu.Unlock()
	// A node that failed mid-StartLocal has a listener but no server yet.
	if n.server != nil {
		_ = n.server.Close()
	} else {
		_ = n.listener.Close()
	}
	if n.wireSrv != nil {
		n.wireSrv.Close()
	} else if n.wireLn != nil {
		_ = n.wireLn.Close()
	}
	if n.node != nil {
		n.node.Close()
	}
}

// MaxEpoch polls the surviving members and returns the highest epoch any of
// them reports (0 when none answer).
func (l *Local) MaxEpoch() uint64 {
	l.mu.Lock()
	var live []*Node
	for _, n := range l.nodes {
		if n.alive && n.node != nil {
			live = append(live, n.node)
		}
	}
	l.mu.Unlock()
	var max uint64
	for _, node := range live {
		if e := node.Epoch(); e > max {
			max = e
		}
	}
	return max
}

// WaitForEpoch blocks until some surviving member reaches at least epoch, or
// the timeout elapses; it reports whether the epoch was reached.
func (l *Local) WaitForEpoch(epoch uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if l.MaxEpoch() >= epoch {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close kills every remaining member.
func (l *Local) Close() {
	for i := range l.nodes {
		l.Kill(i)
	}
}
