package cluster

import (
	"net/http"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/lease"
)

// elasticLocal boots a cluster tuned for fast membership convergence: quick
// probes, a 50ms planner tick and a short migration fence.
func elasticLocal(t *testing.T, nodes, partitions, capacity int, mutate func(*LocalConfig)) *Local {
	t.Helper()
	cfg := LocalConfig{
		Nodes:      nodes,
		Partitions: partitions,
		Capacity:   capacity,
		Seed:       7,
		Node: NodeConfig{
			Lease:          lease.Config{TickInterval: 20 * time.Millisecond},
			DefaultTTL:     time.Minute,
			MaxTTL:         time.Minute,
			ProbeInterval:  25 * time.Millisecond,
			DownAfter:      2,
			RebalanceEvery: 50 * time.Millisecond,
			MigrateTimeout: 2 * time.Second,
			Logf:           t.Logf,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	l, err := StartLocal(cfg)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	t.Cleanup(l.Close)
	return l
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// stewardTable returns the highest-epoch table any live member holds.
func stewardTable(l *Local) Table {
	return l.maxEpochTable()
}

// migrationsCut sums completed cutovers across the live members.
func migrationsCut(l *Local) uint64 {
	var sum uint64
	for _, id := range l.AliveIDs() {
		if n := l.Node(id); n != nil {
			sum += n.migCutover.Load()
		}
	}
	return sum
}

// TestJoinFillsNewMember grows a 2-node cluster to 3: the joiner is admitted
// joining, promoted live by the steward, and handed a partition by the
// planner — with every lease granted before the join still renewable after.
func TestJoinFillsNewMember(t *testing.T) {
	l := elasticLocal(t, 2, 4, 256, nil)
	c, err := NewClient(ClientConfig{Targets: l.Targets()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	held := map[int]uint64{}
	for i := 0; i < 48; i++ {
		g, status, _, err := c.Acquire(60_000)
		if err != nil || status != http.StatusOK {
			t.Fatalf("acquire %d: status %d err %v", i, status, err)
		}
		held[g.Name] = g.Token
	}

	id, err := l.Join()
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if id != 2 {
		t.Fatalf("joined as member %d, want 2", id)
	}
	waitFor(t, 10*time.Second, "joiner promoted and filled", func() bool {
		tb := stewardTable(l)
		return len(tb.Members) == 3 &&
			tb.Members[2].EffectiveState() == StateLive &&
			len(tb.PartitionsOf(2)) >= 1
	})
	if migrationsCut(l) == 0 {
		t.Fatal("join_fill completed without a migration cutover")
	}

	// Every pre-join lease survived the migration (the routed client follows
	// the cutover's 421/412s transparently).
	for name, token := range held {
		if _, status, err := c.Renew(name, token, 60_000); err != nil || status != http.StatusOK {
			t.Fatalf("renew %d after join: status %d err %v", name, status, err)
		}
	}
	// And the grown cluster still never double-issues.
	for i := 0; i < 48; i++ {
		g, status, _, err := c.Acquire(60_000)
		if err != nil || status != http.StatusOK {
			t.Fatalf("post-join acquire %d: status %d err %v", i, status, err)
		}
		if _, dup := held[g.Name]; dup {
			t.Fatalf("name %d granted twice while held", g.Name)
		}
		held[g.Name] = g.Token
	}
}

// TestRejoinAfterRestart is the Down-sticky regression test: a member that
// crashes, is failed over, and comes back is re-upped by the steward (live,
// owning nothing) and then re-filled by the planner — instead of staying
// down forever.
func TestRejoinAfterRestart(t *testing.T) {
	l := elasticLocal(t, 3, 8, 256, nil)
	c, err := NewClient(ClientConfig{Targets: l.Targets()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	// A little load so the cluster is not idle.
	for i := 0; i < 24; i++ {
		if _, status, _, err := c.Acquire(60_000); err != nil || status != http.StatusOK {
			t.Fatalf("acquire %d: status %d err %v", i, status, err)
		}
	}

	l.Kill(2)
	waitFor(t, 10*time.Second, "member 2 marked down", func() bool {
		tb := stewardTable(l)
		return tb.Members[2].EffectiveState() == StateDown && len(tb.PartitionsOf(2)) == 0
	})

	if err := l.Restart(2); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	waitFor(t, 10*time.Second, "member 2 rejoined live", func() bool {
		return stewardTable(l).Members[2].EffectiveState() == StateLive
	})
	waitFor(t, 10*time.Second, "member 2 re-filled by the planner", func() bool {
		return len(stewardTable(l).PartitionsOf(2)) >= 1
	})

	// The rejoined member serves again: keep acquiring until a grant lands on
	// node 2.
	waitFor(t, 10*time.Second, "a grant from the rejoined member", func() bool {
		g, status, _, err := c.Acquire(60_000)
		return err == nil && status == http.StatusOK && g.NodeID == 2
	})
}

// TestDrainRetiresMember drains a member: the planner migrates it empty one
// partition at a time, every migrated lease stays renewable, and the emptied
// member is retired (left).
func TestDrainRetiresMember(t *testing.T) {
	l := elasticLocal(t, 3, 8, 256, nil)
	c, err := NewClient(ClientConfig{Targets: l.Targets()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	held := map[int]uint64{}
	fromDrained := 0
	for i := 0; i < 96; i++ {
		g, status, _, err := c.Acquire(60_000)
		if err != nil || status != http.StatusOK {
			t.Fatalf("acquire %d: status %d err %v", i, status, err)
		}
		held[g.Name] = g.Token
		if g.NodeID == 2 {
			fromDrained++
		}
	}
	if fromDrained == 0 {
		t.Fatal("no lease landed on the member to be drained; test is vacuous")
	}

	if err := l.Drain(2); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	waitFor(t, 15*time.Second, "member 2 drained empty and retired", func() bool {
		tb := stewardTable(l)
		return tb.Members[2].EffectiveState() == StateLeft && len(tb.PartitionsOf(2)) == 0
	})
	if migrationsCut(l) == 0 {
		t.Fatal("drain emptied the member without a migration cutover")
	}

	// Zero lost leases: every grant — including those migrated off the
	// drained member — still renews.
	for name, token := range held {
		if _, status, err := c.Renew(name, token, 60_000); err != nil || status != http.StatusOK {
			t.Fatalf("renew %d after drain: status %d err %v", name, status, err)
		}
	}
}

// TestMigrateAbortUnfences drives the prepare path against an unreachable
// target: the ship fails, the fence is released immediately, and the
// partition serves again with its leases intact.
func TestMigrateAbortUnfences(t *testing.T) {
	l := elasticLocal(t, 2, 4, 64, func(cfg *LocalConfig) {
		cfg.Node.RebalanceEvery = -1 // planner off: this test drives prepare by hand
	})
	c, err := NewClient(ClientConfig{Targets: l.Targets()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	g, status, _, err := c.Acquire(60_000)
	if err != nil || status != http.StatusOK {
		t.Fatalf("acquire: status %d err %v", status, err)
	}
	src := l.Node(g.NodeID)

	rep, st := src.migratePrepare(MigratePrepareRequest{
		Partition:  g.Partition,
		Epoch:      src.Epoch() + 1,
		TargetID:   1 - g.NodeID,
		TargetAddr: "http://127.0.0.1:1", // nothing listens here
	})
	if rep.OK || st/100 == 2 {
		t.Fatalf("prepare against a dead target succeeded: %+v (status %d)", rep, st)
	}
	if got := src.migAborted.Load(); got != 1 {
		t.Fatalf("aborted migrations = %d, want 1", got)
	}
	if got := src.migStaged.Load(); got != 0 {
		t.Fatalf("staged migrations = %d, want 0", got)
	}
	// The fence is gone: the lease on the partition renews immediately.
	if _, status, err := c.Renew(g.Name, g.Token, 60_000); err != nil || status != http.StatusOK {
		t.Fatalf("renew after abort: status %d err %v", status, err)
	}
}

// TestMigrationSourceKilledMidTransfer kills a draining member while the
// planner is migrating it empty. Whatever instant the kill lands at —
// before the fence, mid-ship, staged-but-not-cut-over — the outcome must be
// clean: the survivors adopt its partitions from its durable state, every
// lease stays renewable, and no name is double-issued.
func TestMigrationSourceKilledMidTransfer(t *testing.T) {
	l := elasticLocal(t, 3, 8, 256, func(cfg *LocalConfig) {
		cfg.DataDir = t.TempDir()
		cfg.SnapshotAdopt = true
	})
	c, err := NewClient(ClientConfig{Targets: l.Targets()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	held := map[int]uint64{}
	for i := 0; i < 96; i++ {
		g, status, _, err := c.Acquire(60_000)
		if err != nil || status != http.StatusOK {
			t.Fatalf("acquire %d: status %d err %v", i, status, err)
		}
		held[g.Name] = g.Token
	}

	// Start the drain (the planner begins migrating member 2 empty) and kill
	// the source almost immediately — with a 50ms planner tick the kill lands
	// around the first fence/ship.
	if err := l.Drain(2); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	l.Kill(2)

	waitFor(t, 15*time.Second, "member 2 out of the serving set", func() bool {
		tb := stewardTable(l)
		return !tb.Members[2].Serving() && len(tb.PartitionsOf(2)) == 0
	})

	// Ledger-clean either way: every lease renews (migrated, failed over, or
	// untouched), and fresh acquires never collide with held names.
	for name, token := range held {
		if _, status, err := c.Renew(name, token, 60_000); err != nil || status != http.StatusOK {
			t.Fatalf("renew %d after source kill: status %d err %v", name, status, err)
		}
	}
	for i := 0; i < 48; i++ {
		g, status, _, err := c.Acquire(60_000)
		if err != nil || status != http.StatusOK {
			t.Fatalf("post-kill acquire %d: status %d err %v", i, status, err)
		}
		if _, dup := held[g.Name]; dup {
			t.Fatalf("name %d granted twice while held", g.Name)
		}
		held[g.Name] = g.Token
	}
}

// TestChaosGrowAndDrain is the elastic-scale acceptance run: the chaos
// verifier grows a 3-node cluster to 5 under load, then drains the
// highest-ID original member — all while the ledger checks every grant.
// Zero violations means no duplicate names, no early reissues, no lost
// releases, and no migrated lease lost across any join_fill or drain
// migration.
func TestChaosGrowAndDrain(t *testing.T) {
	l := elasticLocal(t, 3, 8, 512, nil)
	report, err := RunChaos(ChaosConfig{
		Local:        l,
		Clients:      8,
		Acquires:     8000,
		TTL:          400 * time.Millisecond,
		HoldMean:     time.Millisecond, // stretch the run past the joins and the drain
		CrashPercent: 10,
		RenewPercent: 20,
		Seed:         17,
		GrowTo:       5,
		GrowEvery:    300 * time.Millisecond,
		DrainOne:     true,
		ReclaimSlack: 400 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if v := report.Violations(); v != nil {
		t.Fatalf("chaos violations: %v\nreport: %+v", v, report)
	}
	if report.Joins != 2 {
		t.Fatalf("joins = %d %v, want 2 (grow 3 -> 5)", report.Joins, report.JoinedNodes)
	}
	if report.Drains != 1 || report.DrainStuck != 0 {
		t.Fatalf("drains = %d (stuck %d), want exactly 1 clean retirement", report.Drains, report.DrainStuck)
	}
	if report.MigrationsCutover == 0 {
		t.Fatal("grow + drain completed without a single migration cutover")
	}
	// The drained member must be gone from the serving set; the joiners must
	// be serving partitions.
	tb := stewardTable(l)
	if tb.Members[2].EffectiveState() != StateLeft || len(tb.PartitionsOf(2)) != 0 {
		t.Fatalf("drained member 2 not retired: state %q, %d partitions", tb.Members[2].EffectiveState(), len(tb.PartitionsOf(2)))
	}
	filled := 0
	for _, id := range report.JoinedNodes {
		if len(tb.PartitionsOf(id)) > 0 {
			filled++
		}
	}
	if filled == 0 {
		t.Fatalf("no joined member owns a partition: %+v", tb.Assignment)
	}
}
