package cluster

// The chaos load runner: the cluster-wide analogue of server.RunLoad. Closed-
// loop clients drive acquire/renew/release through the routed Client while a
// killer tears down live nodes mid-run; a global ledger verifies the cluster
// lease contract the ISSUE demands — zero duplicate names across nodes, no
// reissue of a name before its server-stated deadline, zero lost releases,
// stale tokens fenced — and a post-run phase proves failover healed the
// namespace: once the reclaim deadline (TTL + 2 wheel ticks after the epoch
// bump, plus slack) has passed, every adopted partition must grant again and
// none of the killed node's names may be leaked.
//
// Every legitimacy bound in the ledger is the server's own statement — the
// deadline_unix_ms it returned with the grant — never a client-side guess,
// so the checks are exact: a name reissued strictly before its previous
// lease's deadline is a violation, one reissued at or after it is not.

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/trace"
)

// ChaosConfig parameterizes one chaos run.
type ChaosConfig struct {
	// Targets addresses an external cluster. Ignored when Local is set.
	Targets []string
	// Local is an in-process cluster; required for kills.
	Local *Local
	// Clients is the number of concurrent closed-loop clients. Zero selects 16.
	Clients int
	// Acquires is the total acquires across all clients. Zero selects 10000.
	Acquires int64
	// TTL is the lease TTL per acquire. Zero selects 2s. It should equal the
	// servers' MaxTTL so the quarantine horizon matches the ledger's bound.
	TTL time.Duration
	// HoldMean is the mean exponential hold time (capped at 10x).
	HoldMean time.Duration
	// CrashPercent abandons that percentage of leases without release.
	CrashPercent int
	// RenewPercent renews that percentage of held leases once mid-hold.
	RenewPercent int
	// Seed feeds the per-client generators and the killer's victim draws.
	Seed uint64
	// KillEvery, when positive, kills one random live node every interval
	// (first at KillEvery into the run) while more than MinAlive remain.
	// Requires Local.
	KillEvery time.Duration
	// MinAlive is the floor the killer respects. Zero selects 2.
	MinAlive int
	// RestartAfter, when positive, brings each killed node back that long
	// after its kill (same addresses, fresh process state; durable members
	// replay their WAL). The ledger keeps verifying throughout: a restarted
	// node rejoining with a stale epoch must be fenced — any lease it
	// double-issues shows up as a duplicate/stale-accepted violation.
	// Requires Local.
	RestartAfter time.Duration
	// GrowTo, when above the starting member count, has the run join fresh
	// members one at a time (every GrowEvery) until the cluster reaches that
	// size — elastic scale under load, with the ledger watching the
	// migrations that fill the joiners. Requires Local.
	GrowTo int
	// GrowEvery paces the joins (and the optional drain). Zero selects 1s.
	GrowEvery time.Duration
	// DrainOne, once growth completes, drains the highest-ID original member:
	// the planner must migrate it empty and retire it without losing a lease.
	DrainOne bool
	// ReclaimSlack pads every reclaim/reissue deadline, absorbing HTTP,
	// scheduler and failover-observation latency. Zero selects 750ms.
	ReclaimSlack time.Duration
	// HTTPClient overrides the routed client's transport.
	HTTPClient *http.Client
	// DisableWire forces the routed client onto HTTP even against members
	// that advertise wire endpoints.
	DisableWire bool
	// Logf, when set, receives run-progress logs.
	Logf func(format string, args ...any)
}

func (c ChaosConfig) withDefaults() (ChaosConfig, error) {
	if c.Local == nil && len(c.Targets) == 0 {
		return c, fmt.Errorf("chaos: either Local or Targets must be set")
	}
	if c.Local != nil {
		c.Targets = c.Local.Targets()
	}
	if c.KillEvery > 0 && c.Local == nil {
		return c, fmt.Errorf("chaos: node kills need an in-process cluster (Local)")
	}
	if c.RestartAfter > 0 && c.Local == nil {
		return c, fmt.Errorf("chaos: node restarts need an in-process cluster (Local)")
	}
	if (c.GrowTo > 0 || c.DrainOne) && c.Local == nil {
		return c, fmt.Errorf("chaos: membership growth needs an in-process cluster (Local)")
	}
	if c.GrowEvery <= 0 {
		c.GrowEvery = time.Second
	}
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Acquires <= 0 {
		c.Acquires = 10000
	}
	if c.TTL <= 0 {
		c.TTL = 2 * time.Second
	}
	if c.CrashPercent < 0 || c.CrashPercent > 100 {
		return c, fmt.Errorf("chaos: crash percent %d outside 0..100", c.CrashPercent)
	}
	if c.RenewPercent < 0 || c.RenewPercent > 100 {
		return c, fmt.Errorf("chaos: renew percent %d outside 0..100", c.RenewPercent)
	}
	if c.MinAlive <= 0 {
		c.MinAlive = 2
	}
	if c.ReclaimSlack <= 0 {
		c.ReclaimSlack = 750 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// ChaosReport is the outcome of one chaos run: the traffic mix, failover
// accounting, and the verification ledger.
type ChaosReport struct {
	Acquires    uint64        `json:"acquires"`
	Renews      uint64        `json:"renews"`
	Releases    uint64        `json:"releases"`
	Crashes     uint64        `json:"crashes"`
	FullRetries uint64        `json:"full_retries"`
	Elapsed     time.Duration `json:"elapsed_ns"`

	AcquireP50 time.Duration `json:"acquire_p50_ns"`
	AcquireP90 time.Duration `json:"acquire_p90_ns"`
	AcquireP99 time.Duration `json:"acquire_p99_ns"`
	AcquireMax time.Duration `json:"acquire_max_ns"`

	// Failover accounting.
	Kills           int   `json:"kills"`
	KilledNodes     []int `json:"killed_nodes"`
	Restarts        int   `json:"restarts"`
	RestartedNodes  []int `json:"restarted_nodes,omitempty"`
	RestartFailures int   `json:"restart_failures"`
	// RestartPreempts counts kills resolved by the victim restarting before
	// any failover: the epoch never moved and the victim resumed its recorded
	// partitions from its journal. A legitimate outcome in restart mode (the
	// survivors may lack quorum, or the restart simply won the race); without
	// RestartAfter the same silence is a FailoverTimeout.
	RestartPreempts int    `json:"restart_preempts,omitempty"`
	EpochBumps      int    `json:"epoch_bumps"`
	FinalEpoch      uint64 `json:"final_epoch"`

	// Membership accounting (GrowTo / DrainOne runs).
	Joins        int   `json:"joins,omitempty"`
	JoinedNodes  []int `json:"joined_nodes,omitempty"`
	JoinFailures int   `json:"join_failures,omitempty"`
	Drains       int   `json:"drains,omitempty"`
	DrainedNodes []int `json:"drained_nodes,omitempty"`
	// DrainFailures counts drain requests the steward rejected; DrainStuck
	// counts requested drains whose member was never observed retired (left).
	DrainFailures int `json:"drain_failures,omitempty"`
	DrainStuck    int `json:"drain_stuck,omitempty"`
	// Migration totals summed across the members' final /stats: plans the
	// stewards issued, snapshots shipped by sources, cutovers completed by
	// targets, plans unwound. Retired or dead members' counts are absent.
	MigrationsPlanned uint64 `json:"migrations_planned,omitempty"`
	MigrationsStaged  uint64 `json:"migrations_staged,omitempty"`
	MigrationsCutover uint64 `json:"migrations_cutover,omitempty"`
	MigrationsAborted uint64 `json:"migrations_aborted,omitempty"`
	OrphanEvents      int    `json:"orphan_events"`
	OrphansReissued   int    `json:"orphans_reissued"`
	// OrphansFree counts orphans never observed reissued but verified free
	// (absent from the new owner's /collect) after the reclaim deadline —
	// equally healed, just not re-granted during the run.
	OrphansFree int `json:"orphans_free"`
	// KilledSessions counts operations on leases that died with their node:
	// expected collateral, verified to be fenced, never a violation.
	KilledSessions uint64 `json:"killed_sessions"`
	// HolderLapses counts leases that expired under a paused holder (the
	// client outslept its own TTL): its later renew/release is fenced, which
	// is the contract working, not a violation.
	HolderLapses uint64 `json:"holder_lapses"`
	// FillAcquired counts the post-failover grantability probe's grants: the
	// probe keeps acquiring until every adopted partition has granted at
	// least once after the reclaim deadline.
	FillAcquired uint64        `json:"fill_acquired"`
	FillElapsed  time.Duration `json:"fill_elapsed_ns"`

	// StaleRejected counts stale-token probes correctly bounced with 409.
	StaleRejected uint64 `json:"stale_rejected"`
	// ProbesDropped counts fencing probes discarded because the verifier
	// backlog was full: those sessions' drains are still covered by the
	// final drain check, but their tokens went unprobed. Reported so a
	// shrunken verification surface is never silent.
	ProbesDropped uint64 `json:"probes_dropped"`

	// Violations.
	DuplicateNames  uint64 `json:"duplicate_names"`
	EarlyReissues   uint64 `json:"early_reissues"`
	LostReleases    uint64 `json:"lost_releases"`
	UnexpectedStale uint64 `json:"unexpected_stale"`
	StaleAccepted   uint64 `json:"stale_accepted"`
	// OrphansLeaked counts killed-node names still registered (per /collect)
	// after the reclaim deadline with no live lease the ledger knows of.
	OrphansLeaked int `json:"orphans_leaked"`
	// AdoptedUnserved counts failed-over partitions that never granted a
	// name after the reclaim deadline: the quarantine failed to lift.
	AdoptedUnserved  int   `json:"adopted_unserved"`
	FailoverTimeouts int   `json:"failover_timeouts"`
	Undrained        int64 `json:"undrained"`

	// Metrics-watcher verdict: the run is scraped from /metrics every
	// chaosScrapeInterval and the observability surface itself is verified.
	// MetricsScrapes is 0 and MetricsDisabled true when the targets serve no
	// /metrics (watcher auto-disables on a first-scrape 404).
	MetricsScrapes                int      `json:"metrics_scrapes"`
	MetricsDisabled               bool     `json:"metrics_disabled,omitempty"`
	MetricsFamiliesMissing        []string `json:"metrics_families_missing,omitempty"`
	MetricsMonotonicityViolations uint64   `json:"metrics_monotonicity_violations"`
	// MetricsQuarantines is the highest cluster-wide quarantine-counter sum
	// any sweep observed; MetricsMidKillQuarantines snapshots it at the first
	// sweep after each kill — failover visible in metrics alone.
	MetricsQuarantines        uint64   `json:"metrics_quarantines"`
	MetricsMidKillQuarantines []uint64 `json:"metrics_mid_kill_quarantines,omitempty"`
	// MetricsAdoptedUnobserved counts failed-over partitions that never
	// reappeared in any surviving member's per-partition gauges.
	MetricsAdoptedUnobserved      int      `json:"metrics_adopted_unobserved"`
	MetricsOccupancyDisagreements []string `json:"metrics_occupancy_disagreements,omitempty"`

	// Event-journal verdict: the run sweeps every member's /debug/events on
	// the metrics cadence and audits the merged timeline — the journal must
	// explain every ledger-relevant transition. EventCounts tallies the
	// captured timeline by event type.
	EventsCaptured int            `json:"events_captured"`
	EventsDisabled bool           `json:"events_disabled,omitempty"`
	EventCounts    map[string]int `json:"event_counts,omitempty"`
	// EventsUnexplainedBumps counts epoch_bump events with no recorded cause;
	// EventsDecisionlessFailovers counts steward reassignments whose epoch has
	// no failover_decision event (a failover the journal cannot explain);
	// EventsUnfencedAdoptions counts snapshot_adopt events with no fence_write
	// at the same epoch and partition.
	EventsUnexplainedBumps      int `json:"events_unexplained_bumps"`
	EventsDecisionlessFailovers int `json:"events_decisionless_failovers"`
	EventsUnfencedAdoptions     int `json:"events_unfenced_adoptions"`

	Routing ClientCounters      `json:"routing"`
	Nodes   []NodeStatsResponse `json:"nodes"`
}

// Ops returns the total number of verified operations.
func (r ChaosReport) Ops() uint64 {
	return r.Acquires + r.Renews + r.Releases + r.StaleRejected
}

// Throughput returns verified operations per second of the main phase.
func (r ChaosReport) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Acquires+r.Renews+r.Releases) / r.Elapsed.Seconds()
}

// Violations lists every broken cluster-contract invariant, nil when clean.
func (r ChaosReport) Violations() []string {
	var v []string
	if r.DuplicateNames > 0 {
		v = append(v, fmt.Sprintf("%d duplicate names held concurrently across the cluster", r.DuplicateNames))
	}
	if r.EarlyReissues > 0 {
		v = append(v, fmt.Sprintf("%d names reissued before the previous lease's deadline", r.EarlyReissues))
	}
	if r.LostReleases > 0 {
		v = append(v, fmt.Sprintf("%d releases of live leases rejected (lost release)", r.LostReleases))
	}
	if r.UnexpectedStale > 0 {
		v = append(v, fmt.Sprintf("%d live renews rejected as stale", r.UnexpectedStale))
	}
	if r.StaleAccepted > 0 {
		v = append(v, fmt.Sprintf("%d stale-token operations accepted after the reclaim deadline", r.StaleAccepted))
	}
	if r.OrphansLeaked > 0 {
		v = append(v, fmt.Sprintf("%d of the killed nodes' names leaked (still registered after the reclaim deadline)", r.OrphansLeaked))
	}
	if r.AdoptedUnserved > 0 {
		v = append(v, fmt.Sprintf("%d failed-over partitions never granted after the reclaim deadline", r.AdoptedUnserved))
	}
	if r.FailoverTimeouts > 0 {
		v = append(v, fmt.Sprintf("%d node kills produced no epoch bump", r.FailoverTimeouts))
	}
	if r.RestartFailures > 0 {
		v = append(v, fmt.Sprintf("%d killed nodes failed to restart", r.RestartFailures))
	}
	if r.JoinFailures > 0 {
		v = append(v, fmt.Sprintf("%d join attempts failed", r.JoinFailures))
	}
	if r.DrainFailures > 0 {
		v = append(v, fmt.Sprintf("%d drain requests rejected", r.DrainFailures))
	}
	if r.DrainStuck > 0 {
		v = append(v, fmt.Sprintf("%d drained members never retired", r.DrainStuck))
	}
	if r.Joins > 0 && r.MigrationsCutover == 0 {
		v = append(v, "members joined but no migration ever cut over (joiners never filled)")
	}
	if r.Undrained != 0 {
		v = append(v, fmt.Sprintf("%d leases still active after every deadline passed", r.Undrained))
	}
	if r.MetricsMonotonicityViolations > 0 {
		v = append(v, fmt.Sprintf("%d counter series went backward between scrapes", r.MetricsMonotonicityViolations))
	}
	if len(r.MetricsFamiliesMissing) > 0 {
		v = append(v, fmt.Sprintf("required metric families missing from healthy scrapes: %v", r.MetricsFamiliesMissing))
	}
	if r.MetricsAdoptedUnobserved > 0 {
		v = append(v, fmt.Sprintf("%d failed-over partitions never reappeared in survivors' /metrics", r.MetricsAdoptedUnobserved))
	}
	if len(r.MetricsOccupancyDisagreements) > 0 {
		v = append(v, fmt.Sprintf("occupancy gauges disagree with /stats: %v", r.MetricsOccupancyDisagreements))
	}
	if !r.MetricsDisabled && r.MetricsScrapes > 0 && r.Kills > 0 && r.EpochBumps > 0 && r.MetricsQuarantines == 0 {
		v = append(v, "failover invisible in metrics: quarantine counter never moved despite epoch bumps")
	}
	if r.EventsUnexplainedBumps > 0 {
		v = append(v, fmt.Sprintf("%d epoch bumps journaled without a cause", r.EventsUnexplainedBumps))
	}
	if r.EventsDecisionlessFailovers > 0 {
		v = append(v, fmt.Sprintf("%d steward reassignments have no failover_decision event at their epoch", r.EventsDecisionlessFailovers))
	}
	if r.EventsUnfencedAdoptions > 0 {
		v = append(v, fmt.Sprintf("%d snapshot adoptions have no fence_write event", r.EventsUnfencedAdoptions))
	}
	if !r.EventsDisabled && r.EpochBumps > 0 && r.EventCounts[trace.EvEpochBump] == 0 {
		v = append(v, "epoch bumps invisible in the event journal")
	}
	if !r.EventsDisabled && r.EventsCaptured > 0 && r.MetricsQuarantines > 0 && r.EventCounts[trace.EvQuarantineStart] == 0 {
		v = append(v, "quarantine adoptions invisible in the event journal")
	}
	return v
}

// heldInfo is the ledger's record of one lease some client currently holds.
// deadline is the server's own statement from the grant (or last renew).
// node is the granting (or last-renewing) member — advisory only, since a
// live migration can move the lease to a new owner behind the holder's back.
// partition is authoritative: a name's partition never changes, only the
// partition's owner does, so kill sweeps go by partition.
type heldInfo struct {
	token     uint64
	node      int
	partition int
	deadline  time.Time
}

// orphanInfo tracks one name a killed node held: when it may legitimately
// reappear and whether it did.
type orphanInfo struct {
	name          int
	token         uint64
	earliestLegit time.Time // the dead lease's server-stated deadline
	deadline      time.Time // epoch bump + TTL + 2 ticks + slack
	reissuedAt    time.Time // zero until observed
}

// chaosLedger is the shared verification state. One mutex guards it all:
// operations are HTTP-paced (milliseconds), so contention is negligible.
type chaosLedger struct {
	mu        sync.Mutex
	held      map[int]heldInfo
	abandoned map[int]time.Time // client-crash abandons: the lease deadline
	orphaned  map[int]*orphanInfo
	resolved  []*orphanInfo // orphan records whose reissue was observed
	killed    map[int]bool  // node ID -> killed
	// lapsed records (name, token) sessions whose lease expired under its
	// own holder (the ledger saw the name re-granted at/after the old
	// deadline); the holder's eventual renew/release 409 is then expected.
	// Tokens alone would not do: every partition's manager mints from its
	// own sequence, so a bare token value can be live on several names at
	// once.
	lapsed map[lapseKey]bool
	// adopted records the partitions kills moved to new owners; the
	// post-run probe must see each grant again.
	adopted map[int]bool

	duplicates      atomic.Uint64
	earlyReissues   atomic.Uint64
	lostReleases    atomic.Uint64
	unexpectedStale atomic.Uint64
	staleAccepted   atomic.Uint64
	staleRejected   atomic.Uint64
	fullRetries     atomic.Uint64
	killedSessions  atomic.Uint64
	holderLapses    atomic.Uint64

	acquires      atomic.Uint64
	renews        atomic.Uint64
	releases      atomic.Uint64
	crashes       atomic.Uint64
	fills         atomic.Uint64
	probesDropped atomic.Uint64

	lastAbandon atomic.Int64 // UnixNano of the latest abandoned-lease deadline
}

// lapseKey identifies one session: token values collide across partitions,
// names recycle — together they are unique.
type lapseKey struct {
	name  int
	token uint64
}

func newChaosLedger() *chaosLedger {
	return &chaosLedger{
		held:      make(map[int]heldInfo),
		abandoned: make(map[int]time.Time),
		orphaned:  make(map[int]*orphanInfo),
		killed:    make(map[int]bool),
		lapsed:    make(map[lapseKey]bool),
		adopted:   make(map[int]bool),
	}
}

// onAcquire classifies a fresh grant against everything the ledger knows —
// duplicate of a live lease, orphan reissue (checked against the dead
// lease's deadline), reissue of an expired-under-holder lease, abandoned-
// name reissue — then records the grant as held.
func (led *chaosLedger) onAcquire(g GrantResponse, now time.Time) {
	led.mu.Lock()
	defer led.mu.Unlock()
	switch {
	case led.orphaned[g.Name] != nil:
		rec := led.orphaned[g.Name]
		rec.reissuedAt = now
		if now.Before(rec.earliestLegit) {
			led.earlyReissues.Add(1)
		}
		led.lapsed[lapseKey{g.Name, rec.token}] = true
		led.resolved = append(led.resolved, rec)
		delete(led.orphaned, g.Name)
	case led.held[g.Name].token != 0:
		old := led.held[g.Name]
		switch {
		case led.killed[old.node]:
			// The lease died with its node but the kill sweep had not run
			// yet: an orphan reissue, bounded by the dead lease's deadline.
			if now.Before(old.deadline) {
				led.earlyReissues.Add(1)
			}
			led.lapsed[lapseKey{g.Name, old.token}] = true
			led.resolved = append(led.resolved, &orphanInfo{name: g.Name, token: old.token, earliestLegit: old.deadline, reissuedAt: now})
		case !now.Before(old.deadline):
			// The old lease expired under a holder that outslept its TTL;
			// reissue at/after the deadline is the contract working.
			led.lapsed[lapseKey{g.Name, old.token}] = true
			led.holderLapses.Add(1)
		default:
			led.duplicates.Add(1)
		}
	default:
		if earliest, ok := led.abandoned[g.Name]; ok {
			if now.Before(earliest) {
				led.earlyReissues.Add(1)
			}
			delete(led.abandoned, g.Name)
		}
	}
	led.held[g.Name] = heldInfo{token: g.Token, node: g.NodeID, partition: g.Partition, deadline: time.UnixMilli(g.DeadlineUnixMillis)}
	led.acquires.Add(1)
}

// onRenewOK installs the renewed deadline and refreshes the node attribution:
// the renew response names the current owner, which a migration may have
// moved since the grant.
func (led *chaosLedger) onRenewOK(name int, token uint64, renewed GrantResponse) {
	led.mu.Lock()
	if h, ok := led.held[name]; ok && h.token == token {
		h.deadline = time.UnixMilli(renewed.DeadlineUnixMillis)
		h.node = renewed.NodeID
		led.held[name] = h
	}
	led.mu.Unlock()
	led.renews.Add(1)
}

// failureKind classifies a fenced (or transport-failed) renew/release of the
// lease (name, token).
type failureKind int

const (
	failureViolation failureKind = iota // nothing explains it: a real violation
	failureKilled                       // the lease died with its killed node
	failureLapsed                       // the lease expired under its holder
)

// classifyFailure explains a fenced renew/release. It removes the held
// record for explained failures, since the lease is dead either way.
func (led *chaosLedger) classifyFailure(name int, token uint64, now time.Time) failureKind {
	led.mu.Lock()
	defer led.mu.Unlock()
	if rec, ok := led.orphaned[name]; ok && rec.token == token {
		return failureKilled
	}
	if led.lapsed[lapseKey{name, token}] {
		return failureLapsed
	}
	for _, rec := range led.resolved {
		if rec.name == name && rec.token == token {
			return failureKilled
		}
	}
	if h, ok := led.held[name]; ok && h.token == token {
		if led.killed[h.node] {
			delete(led.held, name)
			return failureKilled
		}
		if !now.Before(h.deadline) {
			delete(led.held, name)
			led.lapsed[lapseKey{name, token}] = true
			return failureLapsed
		}
	}
	return failureViolation
}

// beginRelease removes the held record BEFORE the release request is sent:
// the server frees the name at some instant inside the HTTP exchange, and a
// concurrent client can legitimately be granted it before our response comes
// back — the ledger must not call that a duplicate.
func (led *chaosLedger) beginRelease(name int, token uint64) (heldInfo, bool) {
	led.mu.Lock()
	defer led.mu.Unlock()
	h, ok := led.held[name]
	if !ok || h.token != token {
		return heldInfo{}, false
	}
	delete(led.held, name)
	return h, true
}

// onCrash abandons the lease: the name may be reissued once its
// server-stated deadline passes. Returns the deadline, or false when the
// lease was already orphaned or lapsed.
func (led *chaosLedger) onCrash(name int, token uint64) (time.Time, bool) {
	led.mu.Lock()
	defer led.mu.Unlock()
	h, ok := led.held[name]
	if !ok || h.token != token {
		return time.Time{}, false
	}
	delete(led.held, name)
	led.abandoned[name] = h.deadline
	for {
		last := led.lastAbandon.Load()
		if h.deadline.UnixNano() <= last || led.lastAbandon.CompareAndSwap(last, h.deadline.UnixNano()) {
			break
		}
	}
	led.crashes.Add(1)
	return h.deadline, true
}

// onKill sweeps every lease living on the killed node into the orphan set,
// records the partitions that changed hands, and returns the swept records
// for fencing verification. The sweep keys on the victim's owned partitions
// at death, not on which node granted the lease: a lease granted elsewhere
// and migrated onto the victim died with it, while one migrated off the
// victim before the kill is alive on its new owner and must not be orphaned.
func (led *chaosLedger) onKill(victim int, victimParts []int, bumpAt time.Time, reclaimBound time.Duration) []staleProbe {
	led.mu.Lock()
	defer led.mu.Unlock()
	led.killed[victim] = true
	victimSet := make(map[int]bool, len(victimParts))
	for _, p := range victimParts {
		led.adopted[p] = true
		victimSet[p] = true
	}
	var probes []staleProbe
	for name, h := range led.held {
		if !victimSet[h.partition] {
			continue
		}
		rec := &orphanInfo{
			name:          name,
			token:         h.token,
			earliestLegit: h.deadline,
			deadline:      bumpAt.Add(reclaimBound),
		}
		delete(led.held, name)
		led.orphaned[name] = rec
		probes = append(probes, staleProbe{name: name, token: h.token, notBefore: rec.deadline})
	}
	return probes
}

// adoptedSnapshot returns the partitions that failed over so far.
func (led *chaosLedger) adoptedSnapshot() []int {
	led.mu.Lock()
	defer led.mu.Unlock()
	out := make([]int, 0, len(led.adopted))
	for p := range led.adopted {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// unresolvedOrphans returns the orphan names never observed reissued.
func (led *chaosLedger) unresolvedOrphans() []int {
	led.mu.Lock()
	defer led.mu.Unlock()
	out := make([]int, 0, len(led.orphaned))
	for name := range led.orphaned {
		out = append(out, name)
	}
	sort.Ints(out)
	return out
}

// resolveOrphanFree marks an unresolved orphan verified-free (absent from
// its owner's registered set after the deadline).
func (led *chaosLedger) resolveOrphanFree(name int) {
	led.mu.Lock()
	defer led.mu.Unlock()
	if rec, ok := led.orphaned[name]; ok {
		led.resolved = append(led.resolved, rec)
		delete(led.orphaned, name)
	}
}

// orphanTally counts the orphan records: total events, observed reissues,
// verified-free, and leaked (neither).
func (led *chaosLedger) orphanTally() (events, reissued, free, leaked int) {
	led.mu.Lock()
	defer led.mu.Unlock()
	events = len(led.orphaned) + len(led.resolved)
	for _, rec := range led.resolved {
		if rec.reissuedAt.IsZero() {
			free++
		} else {
			reissued++
		}
	}
	leaked = len(led.orphaned)
	return
}

// staleProbe is one dead token queued for fencing verification.
type staleProbe struct {
	name      int
	token     uint64
	notBefore time.Time
}

// RunChaos drives one chaos run and verifies the cluster lease contract end
// to end. See ChaosConfig and ChaosReport.
func RunChaos(cfg ChaosConfig) (ChaosReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return ChaosReport{}, err
	}
	// The client must outlast a failover: an operation addressed to a node
	// that just died keeps failing until the survivors detect the failure
	// (DownAfter * ProbeInterval), bump the epoch and push the new table.
	// 30 rounds at 150ms give ~4.5s of patience, comfortably beyond the
	// default 750ms detection horizon even on a loaded CI runner.
	client, err := NewClient(ClientConfig{
		Targets:      cfg.Targets,
		HTTPClient:   cfg.HTTPClient,
		RouteRounds:  30,
		RouteBackoff: 150 * time.Millisecond,
		DisableWire:  cfg.DisableWire,
	})
	if err != nil {
		return ChaosReport{}, err
	}
	defer client.Close()

	// The expirer tick comes from a member so reclaim bounds agree with the
	// servers' actual granularity.
	tick := 100 * time.Millisecond
	if s, serr := client.NodeStats(client.Table().Alive()[0].Addr); serr == nil && s.TickMillis > 0 {
		tick = time.Duration(s.TickMillis) * time.Millisecond
	}
	// reclaimBound is the contractual window after an epoch bump within
	// which a killed node's names must be fenced and reissuable: the TTL any
	// of its leases could still run, plus two wheel ticks, plus slack.
	reclaimBound := cfg.TTL + 2*tick + cfg.ReclaimSlack

	// The metrics watcher scrapes /metrics from every member throughout the
	// run; a first-scrape 404 (metrics disabled) silently turns it off. The
	// events watcher sweeps /debug/events the same way, assembling the
	// cluster timeline before kills can destroy in-memory rings.
	watch := startMetricsWatcher(cfg.Targets, cfg.HTTPClient, cfg.Logf)
	evwatch := startEventsWatcher(cfg.Targets, cfg.HTTPClient, cfg.Logf)

	led := newChaosLedger()
	var (
		remaining atomic.Int64
		wg        sync.WaitGroup
		probeWG   sync.WaitGroup
		probes    = make(chan staleProbe, 8192)
		latMu     sync.Mutex
		latencies []time.Duration
		errOnce   sync.Once
		runErr    error
		killDone  = make(chan struct{})
		killStop  = make(chan struct{})
		restartWG sync.WaitGroup
		report    ChaosReport
		reportMu  sync.Mutex // guards report's failover fields written by the killer
	)
	remaining.Store(cfg.Acquires)
	fail := func(err error) {
		errOnce.Do(func() { runErr = err })
		remaining.Store(0)
	}

	// Fencing verifiers: once an orphan or abandon deadline has passed, its
	// token must be dead cluster-wide — renew and release must both bounce.
	for i := 0; i < 4; i++ {
		probeWG.Add(1)
		go func() {
			defer probeWG.Done()
			for p := range probes {
				if wait := time.Until(p.notBefore); wait > 0 {
					time.Sleep(wait)
				}
				if _, status, err := client.Renew(p.name, p.token, cfg.TTL.Milliseconds()); err == nil {
					if status/100 == 2 {
						led.staleAccepted.Add(1)
					} else {
						led.staleRejected.Add(1)
					}
				}
				if status, err := client.Release(p.name, p.token); err == nil {
					if status/100 == 2 {
						led.staleAccepted.Add(1)
					} else {
						led.staleRejected.Add(1)
					}
				}
			}
		}()
	}

	// awaitFailover waits for a kill to resolve: the survivors bump the epoch
	// past before, or — in restart mode — the victim returns first and
	// resumes its recorded partitions under the unchanged epoch (the
	// survivors may lack quorum to fail over at all, and the victim's journal
	// makes the resume safe). Returns (bumped, resumed).
	awaitFailover := func(local *Local, before uint64, victim int, restartMode bool, timeout time.Duration) (bool, bool) {
		deadline := time.Now().Add(timeout)
		for {
			if local.MaxEpoch() > before {
				return true, false
			}
			if restartMode && local.Node(victim) != nil {
				return false, true
			}
			if time.Now().After(deadline) {
				return false, false
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// DrainOne's target: the highest-ID original member. The killer leaves
	// it alone — its fate is the drain's to decide (the kill-during-drain
	// interleaving has its own dedicated test).
	drainee := -1
	if cfg.DrainOne {
		drainee = cfg.Local.Nodes() - 1
	}

	// The killer: every KillEvery, one random live node dies abruptly; the
	// run then observes the epoch bump and sweeps the dead node's leases
	// into the orphan ledger.
	if cfg.KillEvery > 0 {
		go func() {
			defer close(killDone)
			gen := rng.New(rng.KindSplitMix, cfg.Seed^0xD1CEB00C)
			ticker := time.NewTicker(cfg.KillEvery)
			defer ticker.Stop()
			for {
				select {
				case <-killStop:
					return
				case <-ticker.C:
				}
				alive := cfg.Local.AliveIDs()
				if len(alive) <= cfg.MinAlive {
					return
				}
				victim := alive[gen.Intn(len(alive))]
				if victim == drainee {
					continue
				}
				node := cfg.Local.Node(victim)
				if node == nil {
					continue
				}
				// Only serving members are kill-worthy: the prober never
				// suspects a still-joining member and a retired one triggers
				// no failover, so killing either stalls awaitFailover with
				// nothing to verify.
				if tb := node.Table(); victim >= len(tb.Members) || !tb.Members[victim].Serving() {
					continue
				}
				victimParts := node.Table().PartitionsOf(victim)
				before := cfg.Local.MaxEpoch()
				cfg.Logf("chaos: killing node %d (epoch %d, %d alive, partitions %v)", victim, before, len(alive), victimParts)
				cfg.Local.Kill(victim)
				// The restart races the failover from the moment of death,
				// exactly as a supervised process would in production.
				if cfg.RestartAfter > 0 {
					restartWG.Add(1)
					go func(victim int) {
						defer restartWG.Done()
						time.Sleep(cfg.RestartAfter)
						// A back-to-back kill/restart pair on the same victim
						// may already have brought it back; skip, don't fail.
						if cfg.Local.Node(victim) != nil {
							return
						}
						// Before the node answers a single scrape: its fresh
						// registry resets every counter, and a fenced rejoin
						// owns no partitions.
						watch.noteRestart(cfg.Targets[victim])
						if err := cfg.Local.Restart(victim); err != nil {
							cfg.Logf("chaos: restarting node %d: %v", victim, err)
							reportMu.Lock()
							report.RestartFailures++
							reportMu.Unlock()
							return
						}
						cfg.Logf("chaos: node %d restarted (ledger keeps watching)", victim)
						reportMu.Lock()
						report.Restarts++
						report.RestartedNodes = append(report.RestartedNodes, victim)
						reportMu.Unlock()
					}(victim)
				}
				bumped, resumed := awaitFailover(cfg.Local, before, victim, cfg.RestartAfter > 0, 30*time.Second)
				bumpAt := time.Now()
				reportMu.Lock()
				report.Kills++
				report.KilledNodes = append(report.KilledNodes, victim)
				switch {
				case bumped:
					report.EpochBumps++
				case resumed:
					report.RestartPreempts++
				default:
					report.FailoverTimeouts++
				}
				reportMu.Unlock()
				cfg.Logf("chaos: node %d dead; epoch now %d (bump observed: %v, restart preempted: %v)",
					victim, cfg.Local.MaxEpoch(), bumped, resumed)
				watch.noteKill(victimParts)
				for _, p := range led.onKill(victim, victimParts, bumpAt, reclaimBound) {
					select {
					case probes <- p:
					default:
						led.probesDropped.Add(1)
					}
				}
			}
		}()
	} else {
		close(killDone)
	}

	// The grower: elastic scale under load. Every GrowEvery it joins one
	// fresh member until the cluster reaches GrowTo — the steward admits it,
	// the prober promotes it, the planner migrates partitions onto it — all
	// while the clients keep hammering and the killer keeps killing. Once
	// growth completes, DrainOne drains its target and the run verifies the
	// member is migrated empty and retired without losing a single lease.
	growDone := make(chan struct{})
	if cfg.GrowTo > 0 || cfg.DrainOne {
		go func() {
			defer close(growDone)
			pace := func() bool {
				select {
				case <-killStop:
					return false
				case <-time.After(cfg.GrowEvery):
					return true
				}
			}
			for cfg.GrowTo > 0 && cfg.Local.Nodes() < cfg.GrowTo {
				if !pace() {
					break
				}
				id, err := cfg.Local.Join()
				if err != nil {
					cfg.Logf("chaos: join attempt failed: %v", err)
					reportMu.Lock()
					report.JoinFailures++
					reportMu.Unlock()
					continue
				}
				cfg.Logf("chaos: member %d joined (cluster now %d members)", id, cfg.Local.Nodes())
				reportMu.Lock()
				report.Joins++
				report.JoinedNodes = append(report.JoinedNodes, id)
				reportMu.Unlock()
			}
			if drainee < 0 {
				return
			}
			// Drain under load when the run allows; if the load finished
			// first the drain still runs — the retirement verdict is part of
			// the run either way.
			pace()
			cfg.Logf("chaos: draining member %d", drainee)
			if err := cfg.Local.Drain(drainee); err != nil {
				cfg.Logf("chaos: drain of member %d failed: %v", drainee, err)
				reportMu.Lock()
				report.DrainFailures++
				reportMu.Unlock()
				return
			}
			reportMu.Lock()
			report.Drains++
			report.DrainedNodes = append(report.DrainedNodes, drainee)
			reportMu.Unlock()
			if drainee < len(cfg.Targets) {
				watch.noteDrained(cfg.Targets[drainee])
			}
			// Retirement may land after the load ends; keep watching past
			// killStop with a hard bound so the run always reaches a verdict.
			retireBy := time.Now().Add(30 * time.Second)
			for time.Now().Before(retireBy) {
				if tb := cfg.Local.maxEpochTable(); drainee < len(tb.Members) &&
					tb.Members[drainee].EffectiveState() == StateLeft && len(tb.PartitionsOf(drainee)) == 0 {
					cfg.Logf("chaos: member %d migrated empty and retired", drainee)
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
			reportMu.Lock()
			report.DrainStuck++
			reportMu.Unlock()
		}()
	} else {
		close(growDone)
	}

	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			gen := rng.New(rng.KindSplitMix, cfg.Seed+uint64(id)*0x9E3779B97F4A7C15+1)
			for remaining.Add(-1) >= 0 {
				if err := chaosRound(client, cfg, led, gen, tick, probes, &latMu, &latencies); err != nil {
					fail(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	report.Elapsed = time.Since(start)
	close(killStop)
	<-killDone
	<-growDone
	// Pending restarts must land before verification: a restarted node that
	// double-issues would otherwise dodge the ledger, and the caller may
	// Close the cluster as soon as we return.
	restartWG.Wait()
	close(probes)
	probeWG.Wait()
	if runErr != nil {
		watch.finalize(&report)
		evwatch.finalize(&report)
		return ChaosReport{}, fmt.Errorf("chaos: %w", runErr)
	}

	// Post-run verification: wait out every reclaim deadline, then prove the
	// failover healed the namespace — every adopted partition grants again,
	// and none of the killed nodes' names is leaked.
	sleepUntilDeadlines(led, tick, cfg.ReclaimSlack)
	if report.Kills > 0 {
		fillStart := time.Now()
		unserved, err := adoptionProbe(client, cfg, led)
		if err != nil {
			watch.finalize(&report)
			evwatch.finalize(&report)
			return report, err
		}
		report.AdoptedUnserved = unserved
		report.FillElapsed = time.Since(fillStart)
		if leaked, err := verifyOrphansFree(client, led); err != nil {
			cfg.Logf("chaos: orphan collect verification incomplete: %v", err)
		} else if leaked > 0 {
			cfg.Logf("chaos: %d orphans still registered after the deadline", leaked)
		}
	}

	report.Acquires = led.acquires.Load()
	report.Renews = led.renews.Load()
	report.Releases = led.releases.Load()
	report.Crashes = led.crashes.Load()
	report.FullRetries = led.fullRetries.Load()
	report.KilledSessions = led.killedSessions.Load()
	report.HolderLapses = led.holderLapses.Load()
	report.FillAcquired = led.fills.Load()
	report.StaleRejected = led.staleRejected.Load()
	report.ProbesDropped = led.probesDropped.Load()
	if report.ProbesDropped > 0 {
		cfg.Logf("chaos: %d fencing probes dropped (verifier backlog full)", report.ProbesDropped)
	}
	report.DuplicateNames = led.duplicates.Load()
	report.EarlyReissues = led.earlyReissues.Load()
	report.LostReleases = led.lostReleases.Load()
	report.UnexpectedStale = led.unexpectedStale.Load()
	report.StaleAccepted = led.staleAccepted.Load()
	report.OrphanEvents, report.OrphansReissued, report.OrphansFree, report.OrphansLeaked = led.orphanTally()
	report.Routing = client.Counters()

	// Drain: once every deadline has passed and the probe released its
	// grants, no lease may remain active anywhere in the cluster.
	deadline := time.Now().Add(15 * time.Second)
	for {
		active, reporting := client.ClusterActive()
		report.Undrained = active
		if (active == 0 && reporting > 0) || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Stop the watchers and fold their verdicts in while the cluster is
	// still up: the end-of-run occupancy agreement re-scrapes every live
	// member, and the last event sweep catches the final adoptions.
	watch.finalize(&report)
	evwatch.finalize(&report)
	report.FinalEpoch = client.Table().Epoch
	for _, m := range client.Table().Alive() {
		if s, err := client.NodeStats(m.Addr); err == nil {
			report.Nodes = append(report.Nodes, s)
		}
	}
	for _, s := range report.Nodes {
		report.MigrationsPlanned += s.Migrations.Planned
		report.MigrationsStaged += s.Migrations.Staged
		report.MigrationsCutover += s.Migrations.Cutover
		report.MigrationsAborted += s.Migrations.Aborted
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	report.AcquireP50 = chaosPercentile(latencies, 0.50)
	report.AcquireP90 = chaosPercentile(latencies, 0.90)
	report.AcquireP99 = chaosPercentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		report.AcquireMax = latencies[n-1]
	}
	return report, nil
}

// chaosRound is one closed-loop iteration over the routed client.
func chaosRound(client *Client, cfg ChaosConfig, led *chaosLedger, gen rng.Source, tick time.Duration, probes chan<- staleProbe, latMu *sync.Mutex, latencies *[]time.Duration) error {
	ttlMillis := cfg.TTL.Milliseconds()
	var g GrantResponse
	for {
		t0 := time.Now()
		grant, status, hint, err := client.Acquire(ttlMillis)
		lat := time.Since(t0)
		if err != nil {
			return err
		}
		if status/100 == 2 {
			g = grant
			latMu.Lock()
			*latencies = append(*latencies, lat)
			latMu.Unlock()
			break
		}
		if status == http.StatusServiceUnavailable {
			led.fullRetries.Add(1)
			if hint <= 0 {
				hint = tick
			}
			time.Sleep(hint)
			continue
		}
		return fmt.Errorf("acquire returned status %d", status)
	}
	led.onAcquire(g, time.Now())

	chaosHold(cfg, gen)
	if cfg.RenewPercent > 0 && gen.Intn(100) < cfg.RenewPercent {
		renewed, status, err := client.Renew(g.Name, g.Token, ttlMillis)
		switch {
		case err != nil || status/100 != 2:
			// A renew may legitimately fail only because the lease died with
			// its node or expired under us; anything else is a violation.
			switch led.classifyFailure(g.Name, g.Token, time.Now()) {
			case failureKilled:
				led.killedSessions.Add(1)
				return nil
			case failureLapsed:
				led.holderLapses.Add(1)
				return nil
			}
			if err != nil {
				return fmt.Errorf("renew: %w", err)
			}
			led.unexpectedStale.Add(1)
		default:
			led.onRenewOK(g.Name, g.Token, renewed)
		}
		chaosHold(cfg, gen)
	}

	if cfg.CrashPercent > 0 && gen.Intn(100) < cfg.CrashPercent {
		if deadline, ok := led.onCrash(g.Name, g.Token); ok {
			select {
			case probes <- staleProbe{name: g.Name, token: g.Token, notBefore: deadline.Add(2*tick + cfg.ReclaimSlack)}:
			default:
				led.probesDropped.Add(1)
			}
		}
		return nil
	}

	h, ok := led.beginRelease(g.Name, g.Token)
	if !ok {
		// A kill sweep (or an observed lapse) took the lease from under us.
		led.killedSessions.Add(1)
		return nil
	}
	status, err := client.Release(g.Name, g.Token)
	if err != nil || status/100 != 2 {
		switch led.classifyFailure(g.Name, g.Token, time.Now()) {
		case failureKilled:
			led.killedSessions.Add(1)
			return nil
		case failureLapsed:
			led.holderLapses.Add(1)
			return nil
		}
		// classifyFailure no longer sees the held record (beginRelease took
		// it): judge by the record we removed.
		if led.killedNode(h.node) {
			led.killedSessions.Add(1)
			return nil
		}
		if !time.Now().Before(h.deadline) {
			led.holderLapses.Add(1)
			return nil
		}
		if err != nil {
			return fmt.Errorf("release: %w", err)
		}
		led.lostReleases.Add(1)
		return nil
	}
	led.releases.Add(1)
	return nil
}

// killedNode reports whether the node is known killed.
func (led *chaosLedger) killedNode(id int) bool {
	led.mu.Lock()
	defer led.mu.Unlock()
	return led.killed[id]
}

// sleepUntilDeadlines waits until every orphan and abandon deadline has
// passed, so the healing probes and drain check measure obligations, not
// races.
func sleepUntilDeadlines(led *chaosLedger, tick, slack time.Duration) {
	var until time.Time
	led.mu.Lock()
	for _, rec := range led.orphaned {
		if rec.deadline.After(until) {
			until = rec.deadline
		}
	}
	led.mu.Unlock()
	if last := led.lastAbandon.Load(); last != 0 {
		if t := time.Unix(0, last).Add(2*tick + slack); t.After(until) {
			until = t
		}
	}
	if wait := time.Until(until); wait > 0 {
		time.Sleep(wait)
	}
}

// adoptionProbe proves the failover healed: starting at the reclaim
// deadline, it keeps acquiring (and promptly releasing) until every adopted
// partition has granted at least once, and returns how many never did.
// Scale-free: it needs on the order of partitions-many grants, not a full
// namespace sweep.
func adoptionProbe(client *Client, cfg ChaosConfig, led *chaosLedger) (unserved int, err error) {
	waiting := make(map[int]bool)
	for _, p := range led.adoptedSnapshot() {
		waiting[p] = true
	}
	if len(waiting) == 0 {
		return 0, nil
	}
	budget := time.Now().Add(15 * time.Second)
	for len(waiting) > 0 && time.Now().Before(budget) {
		g, status, hint, aerr := client.Acquire(cfg.TTL.Milliseconds())
		if aerr != nil {
			return len(waiting), fmt.Errorf("chaos: adoption probe: %w", aerr)
		}
		switch {
		case status/100 == 2:
			led.onAcquire(g, time.Now())
			led.fills.Add(1)
			delete(waiting, g.Partition)
			if h, ok := led.beginRelease(g.Name, g.Token); ok {
				if status, rerr := client.Release(g.Name, g.Token); rerr == nil && status/100 == 2 {
					led.releases.Add(1)
				} else if time.Now().Before(h.deadline) {
					led.lostReleases.Add(1)
				}
			}
		case status == http.StatusServiceUnavailable:
			// Full or still warming: both push the probe past its budget if
			// they persist, which is exactly the failure being tested for.
			if hint <= 0 {
				hint = 20 * time.Millisecond
			}
			time.Sleep(hint)
		default:
			return len(waiting), fmt.Errorf("chaos: adoption probe acquire returned %d", status)
		}
	}
	return len(waiting), nil
}

// verifyOrphansFree checks every orphan never observed reissued against its
// current owner's /collect: absent means the slot healed (grantable again),
// present means the name is leaked. Returns how many remain leaked.
func verifyOrphansFree(client *Client, led *chaosLedger) (int, error) {
	unresolved := led.unresolvedOrphans()
	if len(unresolved) == 0 {
		return 0, nil
	}
	t := client.Table()
	registered := make(map[int]map[int]bool) // member ID -> registered set
	for _, name := range unresolved {
		owner, ok := t.Owner(t.PartitionOf(name))
		if !ok {
			continue
		}
		set, ok := registered[owner.ID]
		if !ok {
			names, err := client.CollectNode(owner.Addr)
			if err != nil {
				return len(led.unresolvedOrphans()), err
			}
			set = make(map[int]bool, len(names))
			for _, n := range names {
				set[n] = true
			}
			registered[owner.ID] = set
		}
		if !set[name] {
			led.resolveOrphanFree(name)
		}
	}
	return len(led.unresolvedOrphans()), nil
}

// chaosHold sleeps for an exponential draw with mean HoldMean, capped at 10x.
func chaosHold(cfg ChaosConfig, gen rng.Source) {
	if cfg.HoldMean <= 0 {
		return
	}
	u := float64(gen.Uint64()>>11) / float64(1<<53)
	d := time.Duration(-float64(cfg.HoldMean) * math.Log(1-u))
	if d > 10*cfg.HoldMean {
		d = 10 * cfg.HoldMean
	}
	time.Sleep(d)
}

// chaosPercentile returns the q-quantile of sorted latencies (nearest-rank).
func chaosPercentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}
