package cluster

// Failure detection and table propagation: every node health-probes its
// peers; the steward (lowest-ID live member) turns sustained misses into a
// reassignment under a bumped epoch and pushes the new table to the
// survivors. Probes double as anti-entropy — a probed peer reports its
// epoch, and a node that sees a newer one pulls the table — so a node that
// missed a push converges on the next probe round.

import (
	"fmt"
	"sort"
	"time"

	"github.com/levelarray/levelarray/internal/trace"
)

// probeLoop is the background membership goroutine: periodic peer probes
// plus on-demand refresh pulls (requested when a request reveals a newer
// epoch than ours).
func (n *Node) probeLoop() {
	defer close(n.done)
	ticker := time.NewTicker(n.cfg.ProbeInterval)
	defer ticker.Stop()
	misses := make(map[int]int)
	recovers := make(map[int]int)
	for {
		select {
		case <-n.stop:
			return
		case <-n.refreshC:
			n.pullFromPeers()
		case <-ticker.C:
			n.probeOnce(misses, recovers)
		}
	}
}

// probeOnce probes every peer, pulls newer tables it learns of, and — when
// this node is the steward — admits recovered or joining members and
// reassigns the partitions of peers that missed DownAfter consecutive
// probes. Down members are probed too (unless rejoin is disabled): one that
// answers again is a rejoin candidate rather than down-sticky forever.
func (n *Node) probeOnce(misses, recovers map[int]int) {
	t := n.Table()
	self := n.cfg.NodeID
	suspected := make(map[int]bool)
	oks := make(map[int]bool)
	for _, m := range t.Members {
		st := m.EffectiveState()
		if m.ID == self || st == StateLeft {
			delete(misses, m.ID)
			delete(recovers, m.ID)
			continue
		}
		if st == StateDown {
			// Recovery probing only: a down member owns nothing, so misses
			// cost nothing, and consecutive answers feed the rejoin counter.
			if n.cfg.RejoinAfter < 0 {
				continue
			}
			var health HealthResponse
			n.probes.Add(1)
			status, err := getJSON(n.cfg.HTTPClient, m.Addr+"/healthz", &health)
			if err == nil && status/100 == 2 {
				recovers[m.ID]++
				if health.Epoch > t.Epoch {
					n.pullFrom(m.Addr)
					t = n.Table()
				}
			} else {
				delete(recovers, m.ID)
			}
			continue
		}
		var health HealthResponse
		n.probes.Add(1)
		status, err := getJSON(n.cfg.HTTPClient, m.Addr+"/healthz", &health)
		if err == nil && status/100 == 2 {
			misses[m.ID] = 0
			oks[m.ID] = true
			if health.Epoch > t.Epoch {
				n.pullFrom(m.Addr)
				t = n.Table()
			}
			continue
		}
		n.probeMisses.Add(1)
		misses[m.ID]++
		// A joining member is not serving yet — a dead joiner costs nothing,
		// so it is simply never promoted rather than suspected.
		if misses[m.ID] >= n.cfg.DownAfter && st != StateJoining {
			suspected[m.ID] = true
		}
	}

	// Steward admissions run before failure handling so a recovery and a
	// concurrent failure resolve in separate epochs.
	t = n.stewardAdmissions(t, oks, recovers)

	if len(suspected) == 0 {
		return
	}

	// Quorum guard: a node that cannot reach half or more of the live
	// membership must assume IT is the partitioned minority and hold still —
	// otherwise both sides of a network split would elect stewards, bump
	// epochs independently, and double-issue names. With the guard, the
	// minority side never reassigns; its stale epoch is fenced by every
	// client that has seen the majority's table.
	live := 0
	for _, m := range t.Members {
		if m.Serving() {
			live++
		}
	}
	if len(suspected)*2 >= live {
		n.events.Emit(trace.Event{
			Type: trace.EvQuorumHold, Level: trace.LevelWarn,
			Epoch: t.Epoch, Partition: -1, Cause: "probe_timeout",
			Detail: fmt.Sprintf("suspecting %v of %d live members — no quorum, holding still", suspectSet(suspected), live),
		})
		return
	}

	// The steward for this failure set is the lowest live member that is not
	// itself suspected; everyone else holds still and lets the push arrive.
	steward := -1
	for _, m := range t.Members {
		if m.Serving() && !suspected[m.ID] {
			steward = m.ID
			break
		}
	}
	if steward != self {
		return
	}

	cur, changed := t, false
	for _, m := range t.Members {
		if !suspected[m.ID] {
			continue
		}
		nt, ok := cur.Reassign(m.ID)
		if !ok {
			continue
		}
		n.events.Emit(trace.Event{
			Type: trace.EvFailoverDecision, Level: trace.LevelWarn,
			Epoch: nt.Epoch, Partition: -1, Cause: "probe_timeout",
			Detail: fmt.Sprintf("steward marking member %d down after %d missed probes (suspects %v, %d live), epoch %d -> %d",
				m.ID, misses[m.ID], suspectSet(suspected), live, cur.Epoch, nt.Epoch),
		})
		cur, changed = nt, true
	}
	if !changed {
		return
	}
	if err := n.adoptTable(cur, "steward_reassign"); err != nil {
		// Lost a race against a newer table (pull or peer push); the next
		// probe round re-evaluates against it.
		n.cfg.Logf("cluster: node %d: adopting own reassignment failed: %v", self, err)
		return
	}
	n.failovers.Add(1)
	for id := range suspected {
		delete(misses, id)
	}
	n.pushTable(cur)
}

// stewardAdmissions is the steward's membership upkeep each probe round:
// joining members that answered this round's probe are promoted to live
// (the planner then fills them), and down members that answered RejoinAfter
// consecutive probes rejoin as live with no partitions instead of staying
// down-sticky. Non-stewards return the table unchanged.
func (n *Node) stewardAdmissions(t Table, oks map[int]bool, recovers map[int]int) Table {
	st, ok := t.Steward()
	if !ok || st.ID != n.cfg.NodeID {
		return t
	}
	now := n.cfg.Clock().UnixMilli()
	cur, changed := t, false
	for _, m := range t.Members {
		switch m.EffectiveState() {
		case StateJoining:
			if !oks[m.ID] {
				continue
			}
			nt, ok := cur.SetState(m.ID, StateLive, now)
			if !ok {
				continue
			}
			n.events.Eventf(trace.EvMemberJoin, nt.Epoch, -1, "probe_ok",
				"member %d answered probes; joining -> live, epoch %d -> %d", m.ID, cur.Epoch, nt.Epoch)
			cur, changed = nt, true
		case StateDown:
			if n.cfg.RejoinAfter < 0 || recovers[m.ID] < n.cfg.RejoinAfter {
				continue
			}
			nt, ok := cur.Rejoin(m.ID, now)
			if !ok {
				continue
			}
			n.events.Eventf(trace.EvMemberRejoin, nt.Epoch, -1, "probe_recovered",
				"member %d answered %d probes; rejoining live with no partitions, epoch %d -> %d",
				m.ID, recovers[m.ID], cur.Epoch, nt.Epoch)
			cur, changed = nt, true
			delete(recovers, m.ID)
		}
	}
	if !changed {
		return t
	}
	if err := n.adoptTable(cur, "member_update"); err != nil {
		// Lost a race against a newer table; re-evaluate next round.
		n.cfg.Logf("cluster: node %d: adopting admission table failed: %v", n.cfg.NodeID, err)
		return n.Table()
	}
	n.pushTable(cur)
	return cur
}

// pushTable POSTs the table to every other member, including suspects (a
// falsely suspected node learns it lost its partitions and self-fences).
// Best-effort and concurrent: the epoch gate makes duplicate or reordered
// pushes harmless.
func (n *Node) pushTable(t Table) {
	for _, m := range t.Members {
		if m.ID == n.cfg.NodeID {
			continue
		}
		go func(addr string) {
			n.tablePushes.Add(1)
			var reply EpochResponse
			if _, _, err := postJSON(n.cfg.HTTPClient, addr+"/cluster", 0, "", t, &reply, &reply); err != nil {
				n.cfg.Logf("cluster: node %d: push epoch %d to %s failed: %v", n.cfg.NodeID, t.Epoch, addr, err)
			}
		}(m.Addr)
	}
}

// pullFrom fetches one peer's table and adopts it if newer.
func (n *Node) pullFrom(addr string) {
	var t Table
	if status, err := getJSON(n.cfg.HTTPClient, addr+"/cluster", &t); err != nil || status/100 != 2 {
		return
	}
	if err := n.adoptTable(t, "anti_entropy_pull"); err == nil {
		n.tablePulls.Add(1)
		n.cfg.Logf("cluster: node %d: pulled table epoch %d from %s", n.cfg.NodeID, t.Epoch, addr)
	}
}

// suspectSet renders a suspicion map as a sorted member-ID list — the vote
// set a failover decision journals.
func suspectSet(suspected map[int]bool) []int {
	ids := make([]int, 0, len(suspected))
	for id := range suspected {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// pullFromPeers tries every live peer until one yields a newer table.
func (n *Node) pullFromPeers() {
	t := n.Table()
	for _, m := range t.Members {
		if m.ID == n.cfg.NodeID || m.Down {
			continue
		}
		before := n.Epoch()
		n.pullFrom(m.Addr)
		if n.Epoch() > before {
			return
		}
	}
}
