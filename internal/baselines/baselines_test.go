package baselines

import (
	"testing"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/arraytest"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/tas"
)

func allKinds() []Kind {
	return []Kind{KindRandom, KindLinearProbing, KindDeterministic}
}

func TestConformance(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			arraytest.Run(t, func(capacity int) activity.Array {
				return MustNew(kind, Config{Capacity: capacity, Seed: 42})
			})
		})
	}
}

func TestConformanceCompactSlots(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(KindRandom, Config{Capacity: capacity, Seed: 1, CompactSlots: true})
	})
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindRandom:        "Random",
		KindLinearProbing: "LinearProbing",
		KindDeterministic: "Deterministic",
		Kind(0):           "unknown",
		Kind(42):          "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		kind    Kind
		cfg     Config
		wantErr bool
	}{
		{"ok-random", KindRandom, Config{Capacity: 8}, false},
		{"ok-linear", KindLinearProbing, Config{Capacity: 8, SizeFactor: 4}, false},
		{"ok-deterministic", KindDeterministic, Config{Capacity: 8, RNG: rng.KindLehmer}, false},
		{"unknown-kind", Kind(99), Config{Capacity: 8}, true},
		{"zero-capacity", KindRandom, Config{}, true},
		{"size-factor-below-one", KindRandom, Config{Capacity: 8, SizeFactor: 0.5}, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			arr, err := New(c.kind, c.cfg)
			if (err != nil) != c.wantErr {
				t.Fatalf("New error = %v, wantErr %v", err, c.wantErr)
			}
			if err == nil && arr.Kind() != c.kind {
				t.Fatalf("Kind() = %v, want %v", arr.Kind(), c.kind)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(KindRandom, Config{Capacity: -1})
}

func TestSizeFactor(t *testing.T) {
	cases := []struct {
		factor float64
		want   int
	}{
		{0, 32},   // default is 2N
		{2, 32},   // L = 2N
		{3, 48},   // L = 3N
		{4, 64},   // L = 4N (the paper's upper sweep point)
		{1, 16},   // degenerate tight namespace
		{2.5, 40}, // fractional factors are allowed
	}
	for _, c := range cases {
		arr := MustNew(KindRandom, Config{Capacity: 16, SizeFactor: c.factor})
		if arr.Size() != c.want {
			t.Errorf("SizeFactor %v: Size = %d, want %d", c.factor, arr.Size(), c.want)
		}
	}
}

// TestDeterministicProbeCounts pins down the defining cost profile of the
// deterministic baseline: the k-th registration (with no intervening frees)
// takes exactly k probes, which is the Θ(n) behaviour the paper contrasts
// against.
func TestDeterministicProbeCounts(t *testing.T) {
	const n = 32
	arr := MustNew(KindDeterministic, Config{Capacity: n})
	for i := 0; i < n; i++ {
		h := arr.Handle()
		name, err := h.Get()
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if name != i {
			t.Fatalf("deterministic Get %d returned name %d", i, name)
		}
		if h.LastProbes() != i+1 {
			t.Fatalf("Get %d took %d probes, want %d", i, h.LastProbes(), i+1)
		}
	}
}

// TestLinearProbingScansRight checks that LinearProbing acquires the first
// free slot at or after its random start, wrapping around the end.
func TestLinearProbingScansRight(t *testing.T) {
	const n = 16
	arr := MustNew(KindLinearProbing, Config{Capacity: n, Seed: 5})
	// Occupy everything except slot 3.
	for i := 0; i < arr.Size(); i++ {
		if i != 3 {
			arr.Space().TestAndSet(i)
		}
	}
	h := arr.Handle()
	name, err := h.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if name != 3 {
		t.Fatalf("Get = %d, want 3 (the only free slot)", name)
	}
	if h.LastProbes() > arr.Size() {
		t.Fatalf("LastProbes = %d exceeds array size %d", h.LastProbes(), arr.Size())
	}
}

// TestRandomFallbackSweep fills the array completely except one slot and
// verifies Random still terminates and finds it (via its bounded retry plus
// sweep), keeping the operation wait-free.
func TestRandomFallbackSweep(t *testing.T) {
	const n = 8
	arr := MustNew(KindRandom, Config{Capacity: n, Seed: 11})
	for i := 1; i < arr.Size(); i++ {
		arr.Space().TestAndSet(i)
	}
	h := arr.Handle()
	name, err := h.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if name != 0 {
		t.Fatalf("Get = %d, want 0", name)
	}
}

func TestErrFullWhenExhausted(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const n = 4
			arr := MustNew(kind, Config{Capacity: n, Seed: 3})
			handles := make([]activity.Handle, arr.Size())
			for i := range handles {
				handles[i] = arr.Handle()
				if _, err := handles[i].Get(); err != nil {
					t.Fatalf("Get %d: %v", i, err)
				}
			}
			extra := arr.Handle()
			if _, err := extra.Get(); err != activity.ErrFull {
				t.Fatalf("Get on full array = %v, want ErrFull", err)
			}
			// Statistics must not count the failed operation.
			if extra.Stats().Ops != 0 {
				t.Fatalf("failed Get recorded as an op: %+v", extra.Stats())
			}
			if err := handles[0].Free(); err != nil {
				t.Fatalf("Free: %v", err)
			}
			if _, err := extra.Get(); err != nil {
				t.Fatalf("Get after Free: %v", err)
			}
		})
	}
}

// TestRandomVsDeterministicAverage reproduces, at unit-test scale, the
// paper's observation that the deterministic scan is far more expensive on
// average than randomized probing once the array is moderately loaded.
func TestRandomVsDeterministicAverage(t *testing.T) {
	const (
		n      = 128
		rounds = 300
	)
	random := MustNew(KindRandom, Config{Capacity: n, Seed: 7})
	det := MustNew(KindDeterministic, Config{Capacity: n, Seed: 7})

	// Pre-fill half of each array by registering residents that never leave.
	for i := 0; i < n/2; i++ {
		if _, err := random.Handle().Get(); err != nil {
			t.Fatalf("random pre-fill: %v", err)
		}
		if _, err := det.Handle().Get(); err != nil {
			t.Fatalf("det pre-fill: %v", err)
		}
	}

	randomChurn := random.Handle()
	detChurn := det.Handle()
	for i := 0; i < rounds; i++ {
		if _, err := randomChurn.Get(); err != nil {
			t.Fatalf("random churn: %v", err)
		}
		if err := randomChurn.Free(); err != nil {
			t.Fatal(err)
		}
		if _, err := detChurn.Get(); err != nil {
			t.Fatalf("det churn: %v", err)
		}
		if err := detChurn.Free(); err != nil {
			t.Fatal(err)
		}
	}
	randomMean := randomChurn.Stats().Mean()
	detMean := detChurn.Stats().Mean()
	if randomMean >= detMean {
		t.Fatalf("random mean %.2f not below deterministic mean %.2f", randomMean, detMean)
	}
	// The deterministic scan must pay for the pre-filled prefix every time.
	if detMean < float64(n/4) {
		t.Fatalf("deterministic mean %.2f implausibly low for a half-full array", detMean)
	}
}

// TestLinearProbingClustering demonstrates (qualitatively) the primary
// clustering phenomenon the paper cites: with a contiguous occupied prefix,
// linear probing pays long scans whenever its start lands inside the cluster.
func TestLinearProbingClustering(t *testing.T) {
	const n = 64
	arr := MustNew(KindLinearProbing, Config{Capacity: n, Seed: 17})
	// Build a contiguous cluster covering half the array.
	for i := 0; i < arr.Size()/2; i++ {
		arr.Space().TestAndSet(i)
	}
	h := arr.Handle()
	var worst int
	for i := 0; i < 200; i++ {
		if _, err := h.Get(); err != nil {
			t.Fatalf("Get: %v", err)
		}
		if h.LastProbes() > worst {
			worst = h.LastProbes()
		}
		if err := h.Free(); err != nil {
			t.Fatal(err)
		}
	}
	// A start inside the cluster must scan to its end, so the worst case over
	// 200 trials is very likely to be a long walk (> 8 probes).
	if worst <= 8 {
		t.Fatalf("worst case %d probes suspiciously small for a clustered array", worst)
	}
}

func TestCollectIncludesBothHalves(t *testing.T) {
	arr := MustNew(KindRandom, Config{Capacity: 16, Seed: 9})
	arr.Space().TestAndSet(0)
	arr.Space().TestAndSet(arr.Size() - 1)
	got := arr.Collect(nil)
	if len(got) != 2 || got[0] != 0 || got[1] != arr.Size()-1 {
		t.Fatalf("Collect = %v, want [0 %d]", got, arr.Size()-1)
	}
}

func TestSpaceAccessor(t *testing.T) {
	arr := MustNew(KindDeterministic, Config{Capacity: 4})
	if arr.Space().Len() != arr.Size() {
		t.Fatalf("Space().Len() = %d, Size() = %d", arr.Space().Len(), arr.Size())
	}
	if _, ok := arr.Space().(*tas.BitmapSpace); !ok {
		t.Fatalf("default space is %T, want *tas.BitmapSpace", arr.Space())
	}
	padded := MustNew(KindDeterministic, Config{Capacity: 4, Space: tas.KindPadded})
	if _, ok := padded.Space().(*tas.AtomicSpace); !ok {
		t.Fatalf("padded space is %T, want *tas.AtomicSpace", padded.Space())
	}
	compact := MustNew(KindDeterministic, Config{Capacity: 4, CompactSlots: true})
	if _, ok := compact.Space().(*tas.CompactSpace); !ok {
		t.Fatalf("compact space is %T, want *tas.CompactSpace", compact.Space())
	}
}

func TestUnknownSpaceKindRejected(t *testing.T) {
	if _, err := New(KindRandom, Config{Capacity: 8, Space: tas.Kind(99)}); err == nil {
		t.Fatal("unknown Space kind accepted")
	}
}
