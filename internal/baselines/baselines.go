// Package baselines implements the comparator registration algorithms the
// paper evaluates the LevelArray against (Section 6):
//
//   - Random: probe uniformly random slots of the whole array until a
//     test-and-set wins.
//   - LinearProbing: pick a uniformly random start slot and scan linearly to
//     the right (wrapping around) until a test-and-set wins.
//   - Deterministic: scan linearly from slot 0, the classic Moir–Anderson /
//     dynamic-collect strategy with Θ(n) average cost.
//
// All three implement the same activity.Array interface as the LevelArray,
// use the same test-and-set substrate and report the same per-operation probe
// statistics, so the benchmark harness can drive them interchangeably.
package baselines

import (
	"fmt"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/tas"
)

// Kind selects one of the comparator algorithms.
type Kind int

// The comparator algorithms from the paper's evaluation.
const (
	KindRandom Kind = iota + 1
	KindLinearProbing
	KindDeterministic
)

// String returns the algorithm's display name as used in the figures.
func (k Kind) String() string {
	switch k {
	case KindRandom:
		return "Random"
	case KindLinearProbing:
		return "LinearProbing"
	case KindDeterministic:
		return "Deterministic"
	default:
		return "unknown"
	}
}

// Config parameterizes a comparator array.
type Config struct {
	// Capacity is n, the maximum number of simultaneously held names. Must
	// be at least 1.
	Capacity int

	// SizeFactor scales the array: the array holds SizeFactor·Capacity
	// slots. Zero selects 2, matching the LevelArray's default 2n footprint
	// so comparisons are space-fair (the paper sizes all algorithms
	// identically).
	SizeFactor float64

	// RNG selects the generator family for the randomized comparators.
	// Zero selects rng.KindXorshift.
	RNG rng.Kind

	// Seed is the base seed from which per-handle generators are derived.
	Seed uint64

	// Space selects the slot substrate layout. The zero value is the
	// word-packed bitmap (tas.KindBitmap), matching the LevelArray default so
	// comparisons stay substrate-fair.
	Space tas.Kind

	// CompactSlots is a deprecated alias for Space: tas.KindCompact, only
	// honored when Space is left at its zero value.
	CompactSlots bool

	// Instrument, when non-nil, is applied to the freshly built slot space
	// and may return a wrapped tas.Space (e.g. tas.CountingSpace), mirroring
	// core.Config.Instrument so sharded comparator variants are observable
	// the same way. Returning the inner space unchanged (or nil) keeps the
	// bitmap fast path for Collect.
	Instrument func(inner tas.Space) tas.Space
}

// withDefaults returns a copy of c with zero values replaced by defaults.
func (c Config) withDefaults() Config {
	if c.SizeFactor == 0 {
		c.SizeFactor = 2
	}
	if c.RNG == 0 {
		c.RNG = rng.KindXorshift
	}
	if c.Space == tas.KindBitmap && c.CompactSlots {
		c.Space = tas.KindCompact
	}
	return c
}

// validate reports the first problem with the configuration.
func (c Config) validate() error {
	if c.Capacity < 1 {
		return fmt.Errorf("baselines: capacity %d must be at least 1", c.Capacity)
	}
	if c.SizeFactor < 1 {
		return fmt.Errorf("baselines: size factor %v must be at least 1", c.SizeFactor)
	}
	switch c.Space {
	case tas.KindBitmap, tas.KindBitmapPadded, tas.KindPadded, tas.KindCompact:
	default:
		return fmt.Errorf("baselines: unknown Space kind %d", int(c.Space))
	}
	return nil
}

// Array is a comparator activity array. The probing strategy is selected by
// the Kind passed to New.
type Array struct {
	kind  Kind
	cfg   Config
	space tas.Space
	seeds *rng.SeedSequence
}

var _ activity.Array = (*Array)(nil)

// New builds a comparator array of the given kind.
func New(kind Kind, cfg Config) (*Array, error) {
	switch kind {
	case KindRandom, KindLinearProbing, KindDeterministic:
	default:
		return nil, fmt.Errorf("baselines: unknown algorithm kind %d", int(kind))
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	size := int(cfg.SizeFactor * float64(cfg.Capacity))
	if size < cfg.Capacity {
		size = cfg.Capacity
	}
	space := tas.NewSpace(cfg.Space, size)
	if cfg.Instrument != nil {
		if wrapped := cfg.Instrument(space); wrapped != nil {
			space = wrapped
		}
	}
	return &Array{
		kind:  kind,
		cfg:   cfg,
		space: space,
		seeds: rng.NewSeedSequence(cfg.Seed),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(kind Kind, cfg Config) *Array {
	a, err := New(kind, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Kind returns the probing strategy of this array.
func (a *Array) Kind() Kind { return a.kind }

// Capacity returns the contention bound n.
func (a *Array) Capacity() int { return a.cfg.Capacity }

// Size returns the number of slots (the namespace size).
func (a *Array) Size() int { return a.space.Len() }

// Space returns the underlying slot space, for tests and occupancy analysis.
func (a *Array) Space() tas.Space { return a.space }

// Handle returns a new per-participant handle.
func (a *Array) Handle() activity.Handle {
	return &Handle{
		arr: a,
		rng: rng.New(a.cfg.RNG, a.seeds.Next()),
	}
}

// Collect appends every currently observed held name to dst and returns the
// extended slice. Bitmap substrates are scanned 64 slots per atomic load.
func (a *Array) Collect(dst []int) []int {
	if bm, ok := a.space.(*tas.BitmapSpace); ok {
		return bm.AppendSet(dst, 0)
	}
	for i := 0; i < a.space.Len(); i++ {
		if a.space.Read(i) {
			dst = append(dst, i)
		}
	}
	return dst
}

// Handle is the per-participant endpoint of a comparator array. Handles are
// not safe for concurrent use.
type Handle struct {
	arr  *Array
	rng  rng.Source
	name int
	held bool

	lastProbes int
	stats      activity.ProbeStats
}

var _ activity.Handle = (*Handle)(nil)

// Get registers the participant using the array's probing strategy.
func (h *Handle) Get() (int, error) {
	if h.held {
		return 0, activity.ErrAlreadyRegistered
	}
	var (
		slot   int
		probes int
		ok     bool
	)
	switch h.arr.kind {
	case KindRandom:
		slot, probes, ok = h.getRandom()
	case KindLinearProbing:
		slot, probes, ok = h.getLinearProbing()
	default:
		slot, probes, ok = h.getDeterministic()
	}
	if !ok {
		h.lastProbes = probes
		return 0, activity.ErrFull
	}
	h.name = slot
	h.held = true
	h.lastProbes = probes
	// An operation that probed at least a full array's worth of slots is the
	// comparator-side analogue of hitting the LevelArray backup.
	h.stats.Record(probes, probes >= h.arr.space.Len())
	return slot, nil
}

// getRandom probes uniformly random slots until one is acquired. To keep the
// operation wait-free even when the array is pathologically full (a misuse of
// the data structure), it gives up after 4·size consecutive losses and falls
// back to a linear sweep.
func (h *Handle) getRandom() (slot, probes int, ok bool) {
	size := h.arr.space.Len()
	limit := 4 * size
	for probes < limit {
		s := h.rng.Intn(size)
		probes++
		if h.arr.space.TestAndSet(s) {
			return s, probes, true
		}
	}
	for i := 0; i < size; i++ {
		probes++
		if h.arr.space.TestAndSet(i) {
			return i, probes, true
		}
	}
	return 0, probes, false
}

// getLinearProbing picks a random start and scans right with wrap-around.
func (h *Handle) getLinearProbing() (slot, probes int, ok bool) {
	size := h.arr.space.Len()
	start := h.rng.Intn(size)
	for i := 0; i < size; i++ {
		s := (start + i) % size
		probes++
		if h.arr.space.TestAndSet(s) {
			return s, probes, true
		}
	}
	return 0, probes, false
}

// getDeterministic scans from slot 0, the Moir–Anderson strategy.
func (h *Handle) getDeterministic() (slot, probes int, ok bool) {
	size := h.arr.space.Len()
	for s := 0; s < size; s++ {
		probes++
		if h.arr.space.TestAndSet(s) {
			return s, probes, true
		}
	}
	return 0, probes, false
}

// Free releases the name acquired by the most recent Get.
func (h *Handle) Free() error {
	if !h.held {
		return activity.ErrNotRegistered
	}
	h.arr.space.Reset(h.name)
	h.held = false
	h.stats.RecordFree()
	return nil
}

// Name returns the currently held name, if any.
func (h *Handle) Name() (int, bool) {
	if !h.held {
		return 0, false
	}
	return h.name, true
}

// LastProbes returns the number of trials performed by the most recent Get.
func (h *Handle) LastProbes() int { return h.lastProbes }

// Stats returns the cumulative probe statistics recorded by this handle.
func (h *Handle) Stats() activity.ProbeStats { return h.stats }
