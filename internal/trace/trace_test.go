package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: a nil Recorder, Op, and EventLog must absorb every call —
// the untraced production path threads them unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.SetEnabled(true)
	if s, f, sl := r.Counters(); s != 0 || f != 0 || sl != 0 {
		t.Fatalf("nil recorder counters %d/%d/%d", s, f, sl)
	}
	if r.Spans() != nil || r.SlowSpans() != nil {
		t.Fatal("nil recorder returned spans")
	}
	sp := r.Begin("acquire", "la-1")
	if sp != nil {
		t.Fatal("nil recorder began a span")
	}
	// All Op methods on the nil span.
	sp.Force()
	sp.SetNode(1, 2)
	sp.SetEpoch(3)
	sp.Phase(PhaseFsyncWait, time.Millisecond)
	if sp.Traced() || sp.RID() != "" {
		t.Fatal("nil op traced")
	}
	sp.Finish("boom")

	var l *EventLog
	l.Emit(Event{Type: EvEpochBump})
	l.Eventf(EvReplay, 1, 0, "restart", "x")
	if l.Events() != nil {
		t.Fatal("nil event log returned events")
	}
	l.Close()
}

// TestDisabledRecorderBeginsNothing: a constructed-but-disabled recorder must
// behave like the nil one on the hot path.
func TestDisabledRecorderBeginsNothing(t *testing.T) {
	r := New(Config{Enabled: false})
	if sp := r.Begin("acquire", "la-1"); sp != nil {
		t.Fatal("disabled recorder began a span")
	}
	r.SetEnabled(true)
	if sp := r.Begin("acquire", "la-1"); sp == nil {
		t.Fatal("re-enabled recorder refused a span")
	}
}

// TestSpanPhaseAttribution checks phase accumulation, identity stamping, and
// the JSON shape (zero phases dropped, fsync wait attributed separately from
// lock wait).
func TestSpanPhaseAttribution(t *testing.T) {
	r := New(Config{Enabled: true, SlowThreshold: time.Hour, Node: 3})
	sp := r.Begin("acquire", "la-42")
	sp.SetNode(3, 2)
	sp.SetEpoch(7)
	sp.Phase(PhaseLockWait, 2*time.Millisecond)
	sp.Phase(PhaseFsyncWait, 3*time.Millisecond)
	sp.Phase(PhaseFsyncWait, time.Millisecond) // retry rounds accumulate
	sp.Finish("")

	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.RID != "la-42" || s.Op != "acquire" || s.Node != 3 || s.Partition != 2 || s.Epoch != 7 || s.Err != "" {
		t.Fatalf("span identity %+v", s)
	}
	if s.PhaseNanos[PhaseFsyncWait] != (4 * time.Millisecond).Nanoseconds() {
		t.Fatalf("fsync-wait %dns, want 4ms", s.PhaseNanos[PhaseFsyncWait])
	}
	j := s.JSON()
	if j.Phases["fsync-wait"] != (4*time.Millisecond).Nanoseconds() || j.Phases["lock-wait"] != (2*time.Millisecond).Nanoseconds() {
		t.Fatalf("JSON phases %v", j.Phases)
	}
	if _, ok := j.Phases["wal-append"]; ok {
		t.Fatal("zero phase serialized")
	}
	if s.DurationNanos < 0 {
		t.Fatalf("negative duration %d", s.DurationNanos)
	}
}

// TestSlowCaptureIndependentOfSampling: with aggressive sampling, the main
// ring retains almost nothing but the slow ring still sees every span over
// the threshold; Force bypasses sampling for stitched traces.
func TestSlowCaptureIndependentOfSampling(t *testing.T) {
	r := New(Config{Enabled: true, SampleEvery: 1 << 20, SlowThreshold: time.Nanosecond})
	for i := 0; i < 10; i++ {
		sp := r.Begin("acquire", fmt.Sprintf("la-%d", i))
		time.Sleep(10 * time.Microsecond) // guarantees duration >= 1ns
		sp.Finish("")
	}
	if got := len(r.SlowSpans()); got != 10 {
		t.Fatalf("slow ring holds %d spans, want 10", got)
	}
	if got := len(r.Spans()); got != 0 {
		t.Fatalf("main ring holds %d spans under 1-in-2^20 sampling, want 0", got)
	}
	_, _, slow := r.Counters()
	if slow != 10 {
		t.Fatalf("slow counter %d, want 10", slow)
	}

	forced := r.Begin("acquire", "la-forced")
	forced.Force()
	forced.Finish("")
	spans := r.Spans()
	if len(spans) != 1 || spans[0].RID != "la-forced" {
		t.Fatalf("forced span not retained past sampling: %v", spans)
	}
}

// TestRingWrap: the ring keeps only the most recent RingSize spans.
func TestRingWrap(t *testing.T) {
	r := New(Config{Enabled: true, RingSize: 4, SlowThreshold: time.Hour})
	for i := 0; i < 10; i++ {
		r.Begin(fmt.Sprintf("op%d", i), "la-w").Finish("")
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("op%d", 6+i); s.Op != want {
			t.Fatalf("slot %d holds %s, want %s", i, s.Op, want)
		}
	}
}

// TestConcurrentSpanRecording hammers the ring from writer goroutines while
// readers snapshot — the race detector is the assertion here; the counters
// are the sanity check.
func TestConcurrentSpanRecording(t *testing.T) {
	r := New(Config{Enabled: true, RingSize: 64, SlowThreshold: time.Nanosecond, SlowRingSize: 64})
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, s := range r.Spans() {
						_ = s.JSON()
					}
					_ = r.SlowSpans()
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				sp := r.Begin("acquire", fmt.Sprintf("la-%d-%d", g, i))
				sp.SetNode(g, i%4)
				sp.Phase(PhaseLeaseTable, time.Microsecond)
				sp.Finish("")
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	started, finished, _ := r.Counters()
	if started != writers*perWriter || finished != writers*perWriter {
		t.Fatalf("counters started %d finished %d, want %d", started, finished, writers*perWriter)
	}
}

// TestEventLogOrderingAndWrap: sequence numbers are monotonic and the ring
// keeps the most recent RingSize events.
func TestEventLogOrderingAndWrap(t *testing.T) {
	var now int64
	l := NewEventLog(EventConfig{Node: 2, RingSize: 4, Clock: func() time.Time {
		now++
		return time.Unix(0, now)
	}})
	for i := 0; i < 6; i++ {
		l.Eventf(EvEpochBump, uint64(i+1), -1, "test", "bump %d", i)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(3+i) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, 3+i)
		}
		if e.Node != 2 || e.Level != LevelInfo {
			t.Fatalf("event defaults not applied: %+v", e)
		}
		if i > 0 && evs[i-1].TimeUnixNano > e.TimeUnixNano {
			t.Fatal("events out of time order")
		}
	}
}

// TestEventLogDurableFile: with a Dir, every event lands in events.jsonl and
// survives Close.
func TestEventLogDurableFile(t *testing.T) {
	dir := t.TempDir()
	l := NewEventLog(EventConfig{Node: 1, Dir: dir})
	l.Eventf(EvFenceWrite, 2, 3, "snapshot_adopt", "fenced")
	l.Emit(Event{Type: EvQuarantineStart, Level: LevelWarn, Epoch: 2, Partition: 3, Cause: "failover"})
	l.Close()

	f, err := os.Open(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer f.Close()
	var got []Event
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		got = append(got, e)
	}
	if len(got) != 2 {
		t.Fatalf("journal has %d lines, want 2", len(got))
	}
	if got[0].Type != EvFenceWrite || got[0].Seq != 1 || got[1].Type != EvQuarantineStart || got[1].Seq != 2 {
		t.Fatalf("journal contents %+v", got)
	}
}

// TestEventSinkLine: the structured-log mirror renders one greppable line
// per event.
func TestEventSinkLine(t *testing.T) {
	var lines []string
	l := NewEventLog(EventConfig{Node: 4, Sink: func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}})
	l.Emit(Event{Type: EvFailoverDecision, Level: LevelWarn, Epoch: 5, Partition: -1,
		Cause: "probe_timeout", Detail: "suspects [2]", RID: "la-9"})
	if len(lines) != 1 {
		t.Fatalf("sink saw %d lines, want 1", len(lines))
	}
	for _, want := range []string{"level=warn", "node=4", "epoch=5", "type=failover_decision", "cause=probe_timeout", `rid=la-9`, `detail="suspects [2]"`} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("line %q missing %q", lines[0], want)
		}
	}
	if strings.Contains(lines[0], "partition=") {
		t.Fatalf("node-wide event rendered a partition: %q", lines[0])
	}
}

// TestMergeEvents orders by timestamp, then node, then per-node sequence.
func TestMergeEvents(t *testing.T) {
	a := []Event{
		{Seq: 1, TimeUnixNano: 10, Node: 0, Type: EvFailoverDecision},
		{Seq: 2, TimeUnixNano: 30, Node: 0, Type: EvEpochBump},
	}
	b := []Event{
		{Seq: 1, TimeUnixNano: 20, Node: 1, Type: EvEpochBump},
		{Seq: 2, TimeUnixNano: 30, Node: 1, Type: EvQuarantineStart},
	}
	merged := MergeEvents(a, b)
	want := []struct {
		node int
		typ  string
	}{
		{0, EvFailoverDecision}, {1, EvEpochBump}, {0, EvEpochBump}, {1, EvQuarantineStart},
	}
	if len(merged) != len(want) {
		t.Fatalf("merged %d events, want %d", len(merged), len(want))
	}
	for i, w := range want {
		if merged[i].Node != w.node || merged[i].Type != w.typ {
			t.Fatalf("slot %d is node %d %s, want node %d %s", i, merged[i].Node, merged[i].Type, w.node, w.typ)
		}
	}
}

// TestMountEndpoints: the debug endpoints answer even with a nil recorder
// and journal (so probes can tell "tracing off" from "endpoint missing") and
// serve real state when wired.
func TestMountEndpoints(t *testing.T) {
	get := func(srv *httptest.Server, path string, out any) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}

	// Nil recorder and journal: endpoints answer with empty state.
	nilMux := http.NewServeMux()
	Mount(nilMux, nil, nil)
	nilSrv := httptest.NewServer(nilMux)
	defer nilSrv.Close()
	var tr TraceResponse
	get(nilSrv, "/debug/trace", &tr)
	if tr.Enabled || len(tr.Spans) != 0 {
		t.Fatalf("nil recorder response %+v", tr)
	}
	var er EventsResponse
	get(nilSrv, "/debug/events", &er)
	if er.Node != -1 || len(er.Events) != 0 {
		t.Fatalf("nil journal response %+v", er)
	}

	// Wired recorder and journal: state round-trips.
	r := New(Config{Enabled: true, SlowThreshold: time.Nanosecond})
	sp := r.Begin("acquire", "la-h")
	time.Sleep(10 * time.Microsecond)
	sp.Finish("")
	l := NewEventLog(EventConfig{Node: 0})
	l.Eventf(EvEpochBump, 2, -1, "steward_reassign", "epoch 1 -> 2")
	mux := http.NewServeMux()
	Mount(mux, r, l)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	get(srv, "/debug/trace/slow", &tr)
	if !tr.Enabled || len(tr.Spans) != 1 || tr.Spans[0].RID != "la-h" {
		t.Fatalf("slow response %+v", tr)
	}
	get(srv, "/debug/events", &er)
	if len(er.Events) != 1 || er.Events[0].Type != EvEpochBump || er.Events[0].Cause != "steward_reassign" {
		t.Fatalf("events response %+v", er)
	}
}
