// Package trace is the in-process flight recorder of the name service: a
// zero-dependency span recorder with per-phase latency attribution, a
// slow-op capture ring, and a structured cluster event journal.
//
// Every logical operation (acquire/renew/release, the batch opcodes,
// failover adoption, WAL replay) records one Span keyed by the existing
// request ID, subdivided into named phases — so "the p99 is fsync-dominant"
// is an observation, not a guess. Spans land in fixed-size lock-free ring
// buffers (an atomic cursor plus per-slot atomic pointers to immutable
// spans), so recording never blocks the operation it measures and readers
// never block writers. Spans propagate across the binary wire protocol by
// reusing the frame's request-ID field plus a trace flag in the request
// header's status slot, and the routed cluster client mints one request ID
// for all retry rounds of an operation, so cross-failover retries stitch
// into one trace.
//
// The companion EventLog (events.go) journals control-plane transitions —
// epoch bumps, steward failover decisions with cause and vote set, fence
// writes, quarantine start/end, snapshot adoptions, restart/replay
// summaries — into a per-node ring plus an optional durable JSONL file, and
// doubles as the leveled, request-ID-correlated structured logger that
// replaces ad-hoc printf logging on those paths.
package trace

import (
	"sync/atomic"
	"time"
)

// Phase names one attributed slice of an operation's latency. The enum is
// fixed and small so spans accumulate phase time into a flat array with no
// map or allocation on the hot path.
type Phase uint8

const (
	// PhaseQueue is time spent queued behind other work before service —
	// in the WAL it is the wait for the group-commit log mutex.
	PhaseQueue Phase = iota
	// PhaseLockWait is the wait to acquire the per-entry lease lock.
	PhaseLockWait
	// PhaseLeaseTable is the array/table work: probing for a free name
	// (acquire) or validating the handle.
	PhaseLeaseTable
	// PhaseWALAppend is the buffered write of the journal record.
	PhaseWALAppend
	// PhaseFsyncWait is the wait for the group-commit fsync covering the
	// record — the durability tax, attributed separately from lock waits.
	PhaseFsyncWait
	// PhaseWireEncode is response-frame encoding on the wire server.
	PhaseWireEncode
	// PhaseFlush is the response flush (syscall write) on the wire server.
	PhaseFlush
	// PhaseRoute is a routed cluster client's per-hop round-trip time.
	PhaseRoute
	// PhaseBackoff is a routed cluster client's retry backoff sleep.
	PhaseBackoff

	// NumPhases bounds the enum; keep it last.
	NumPhases
)

// phaseNames indexes Phase -> wire name; these strings are the JSON keys of
// SpanJSON.Phases and the column headings of `lactl trace`.
var phaseNames = [NumPhases]string{
	"queue", "lock-wait", "lease-table", "wal-append", "fsync-wait",
	"wire-encode", "flush", "route", "backoff",
}

// String returns the phase's wire name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase?"
}

// PhaseNames lists every phase's wire name in enum order, for renderers that
// want stable column ordering over SpanJSON.Phases maps.
func PhaseNames() []string {
	names := make([]string, NumPhases)
	copy(names, phaseNames[:])
	return names
}

// Span is one completed operation record. Spans are immutable once recorded;
// rings hand out pointers to them.
type Span struct {
	// RID is the operation's request ID — the same identity carried by the
	// HTTP X-Request-ID header and the wire frame's ID field, so one
	// operation keeps one trace across transports and failover retries.
	RID string
	// Op names the operation (acquire, renew, release, acquire_n, replay...).
	Op string
	// Node is the recording node's ID (-1 standalone).
	Node int
	// Partition is the partition served (-1 standalone / not applicable).
	Partition int
	// Epoch is the cluster table epoch at record time (0 standalone).
	Epoch uint64
	// Err is the error code of a failed operation ("" on success).
	Err string
	// StartUnixNano is the operation's start time.
	StartUnixNano int64
	// DurationNanos is the whole-operation latency.
	DurationNanos int64
	// PhaseNanos attributes DurationNanos into named phases; unattributed
	// time is the remainder.
	PhaseNanos [NumPhases]int64
}

// SpanJSON is the wire shape of one span as served by /debug/trace and
// consumed by `lactl trace`.
type SpanJSON struct {
	RID           string           `json:"rid"`
	Op            string           `json:"op"`
	Node          int              `json:"node"`
	Partition     int              `json:"partition"`
	Epoch         uint64           `json:"epoch,omitempty"`
	Err           string           `json:"err,omitempty"`
	StartUnixNano int64            `json:"start_unix_nano"`
	DurationNanos int64            `json:"duration_ns"`
	Phases        map[string]int64 `json:"phases,omitempty"`
}

// JSON converts the span to its wire shape, dropping zero phases.
func (s *Span) JSON() SpanJSON {
	j := SpanJSON{
		RID: s.RID, Op: s.Op, Node: s.Node, Partition: s.Partition,
		Epoch: s.Epoch, Err: s.Err,
		StartUnixNano: s.StartUnixNano, DurationNanos: s.DurationNanos,
	}
	for p, ns := range s.PhaseNanos {
		if ns != 0 {
			if j.Phases == nil {
				j.Phases = make(map[string]int64, 4)
			}
			j.Phases[Phase(p).String()] = ns
		}
	}
	return j
}

// ring is a fixed-size lock-free span buffer: writers claim a slot with one
// atomic add and publish an immutable span with one atomic pointer store;
// readers snapshot with atomic loads. A reader may observe a torn *ordering*
// (a slot overwritten mid-snapshot) but never a torn span.
type ring struct {
	slots  []atomic.Pointer[Span]
	cursor atomic.Uint64
}

func newRing(size int) *ring { return &ring{slots: make([]atomic.Pointer[Span], size)} }

func (r *ring) put(s *Span) {
	idx := r.cursor.Add(1) - 1
	r.slots[idx%uint64(len(r.slots))].Store(s)
}

// snapshot appends every recorded span to dst, oldest-first by best effort.
func (r *ring) snapshot(dst []Span) []Span {
	n := uint64(len(r.slots))
	cur := r.cursor.Load()
	start := uint64(0)
	if cur > n {
		start = cur - n
	}
	for i := start; i < cur; i++ {
		if s := r.slots[i%n].Load(); s != nil {
			dst = append(dst, *s)
		}
	}
	return dst
}

// Defaults for Config zero values.
const (
	DefaultRingSize      = 4096
	DefaultSlowRingSize  = 256
	DefaultSlowThreshold = time.Millisecond
)

// Config parameterizes a Recorder.
type Config struct {
	// Enabled starts the recorder recording; a disabled recorder's Begin
	// returns nil and operations pay only an atomic load.
	Enabled bool
	// SampleEvery retains one in N spans in the main ring (1 = every span).
	// Slow-op capture is independent of sampling: every span is measured,
	// and any span at or above SlowThreshold lands in the slow ring.
	SampleEvery int
	// SlowThreshold is the latency at which a span is retained as a slow op.
	SlowThreshold time.Duration
	// RingSize and SlowRingSize bound the two rings (0 selects defaults).
	RingSize, SlowRingSize int
	// Node and Partition default the identity stamped on spans (-1 unknown).
	Node int
}

// Recorder is one node's flight recorder. All methods are safe for
// concurrent use and safe on a nil receiver (recording disabled).
type Recorder struct {
	enabled     atomic.Bool
	sampleEvery uint64
	slowNanos   atomic.Int64
	node        int

	seq      atomic.Uint64 // sampling counter
	started  atomic.Uint64
	finished atomic.Uint64
	slow     atomic.Uint64

	ring     *ring
	slowRing *ring
}

// New builds a Recorder from cfg, applying defaults for zero values.
func New(cfg Config) *Recorder {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.SlowRingSize <= 0 {
		cfg.SlowRingSize = DefaultSlowRingSize
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	r := &Recorder{
		sampleEvery: uint64(cfg.SampleEvery),
		node:        cfg.Node,
		ring:        newRing(cfg.RingSize),
		slowRing:    newRing(cfg.SlowRingSize),
	}
	r.slowNanos.Store(cfg.SlowThreshold.Nanoseconds())
	r.enabled.Store(cfg.Enabled)
	return r
}

// Enabled reports whether the recorder is recording.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// SetEnabled flips recording at runtime.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// SlowThreshold returns the slow-op retention threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.slowNanos.Load())
}

// Counters reports spans started/finished/retained-as-slow, for tests and
// the metrics bridge.
func (r *Recorder) Counters() (started, finished, slow uint64) {
	if r == nil {
		return 0, 0, 0
	}
	return r.started.Load(), r.finished.Load(), r.slow.Load()
}

// Begin opens a span for one operation, or returns nil when the recorder is
// nil or disabled. A nil *Op is valid: every Op method no-ops on it, so call
// sites thread spans unconditionally.
func (r *Recorder) Begin(op, rid string) *Op {
	if r == nil || !r.enabled.Load() {
		return nil
	}
	r.started.Add(1)
	o := &Op{rec: r}
	o.span.Op = op
	o.span.RID = rid
	o.span.Node = r.node
	o.span.Partition = -1
	o.span.StartUnixNano = time.Now().UnixNano()
	return o
}

// Spans snapshots the main ring.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.ring.snapshot(nil)
}

// SlowSpans snapshots the slow-op ring.
func (r *Recorder) SlowSpans() []Span {
	if r == nil {
		return nil
	}
	return r.slowRing.snapshot(nil)
}

// Op is one in-flight span under construction. The zero of *Op is nil and
// every method tolerates it, so disabled tracing costs only nil checks.
type Op struct {
	rec    *Recorder
	forced bool
	span   Span
}

// Force marks the span for unconditional retention in the main ring,
// bypassing sampling — used for requests that arrive with the wire trace
// flag set, so a stitched cross-node trace is never sampled away.
func (o *Op) Force() {
	if o != nil {
		o.forced = true
	}
}

// RID returns the span's request ID ("" on a nil Op).
func (o *Op) RID() string {
	if o == nil {
		return ""
	}
	return o.span.RID
}

// SetNode stamps the serving node and partition.
func (o *Op) SetNode(node, partition int) {
	if o != nil {
		o.span.Node, o.span.Partition = node, partition
	}
}

// SetEpoch stamps the cluster epoch the operation served under.
func (o *Op) SetEpoch(epoch uint64) {
	if o != nil {
		o.span.Epoch = epoch
	}
}

// Phase adds d to the span's named phase. Phases may be visited repeatedly
// (retry rounds accumulate).
func (o *Op) Phase(p Phase, d time.Duration) {
	if o != nil && p < NumPhases {
		o.span.PhaseNanos[p] += d.Nanoseconds()
	}
}

// Traced reports whether the op carries a live span — the wire client uses
// it to decide whether to set the frame's trace flag.
func (o *Op) Traced() bool { return o != nil }

// Finish seals the span with the operation's outcome and records it: into
// the slow ring when it met the threshold, and into the main ring when the
// sampling counter selects it. errCode is "" for success.
func (o *Op) Finish(errCode string) {
	if o == nil {
		return
	}
	r := o.rec
	o.span.Err = errCode
	o.span.DurationNanos = time.Now().UnixNano() - o.span.StartUnixNano
	r.finished.Add(1)
	if o.span.DurationNanos >= r.slowNanos.Load() {
		r.slow.Add(1)
		r.slowRing.put(&o.span)
	}
	if o.forced || r.sampleEvery == 1 || r.seq.Add(1)%r.sampleEvery == 0 {
		r.ring.put(&o.span)
	}
}
